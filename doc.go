// Package repro reproduces "Surrogate Parenthood: Protected and
// Informative Graphs" (Blaustein, Chapman, Seligman, Allen, Rosenthal —
// PVLDB 4(8), 2011): protected accounts of sensitive graphs built with
// surrogate nodes and edges, the path/node utility and opacity measures,
// the maximally informative Surrogate Generation Algorithm, and the PLUS
// provenance substrate the paper evaluated on.
//
// The implementation lives under internal/:
//
//	internal/graph      directed attributed graphs and traversals
//	internal/privilege  privilege-predicate lattices, lowest(), high-water sets
//	internal/policy     Visible/Hide/Surrogate incidence markings
//	internal/surrogate  surrogate-node registry with infoScores
//	internal/account    protected-account generation, incremental
//	                    maintenance (Maintain) and verification
//	internal/measure    path/node utility and opacity
//	internal/plus       the PLUS substrate: pluggable storage backends
//	                    with a change feed (ChangesSince / DeltaSince /
//	                    Notify) and epoch-stamped durable cursors,
//	                    snapshot-isolated lineage engine, delta-scoped
//	                    answer cache and the HTTP API (v1 and the
//	                    principal-scoped v2 with batch ingest, the
//	                    resumable change-feed protocol, and the
//	                    authenticated trust surface: HMAC-signed
//	                    stateless session tokens over a rotatable
//	                    keyring, with the ingest/replicate/query/admin
//	                    capability split — see plus/auth.go)
//	internal/plusql     PLUSQL: datalog-style queries over protected
//	                    lineage (grammar reference in its doc.go);
//	                    views refresh incrementally from the change feed
//	                    instead of rebuilding on every write
//	internal/obs        dependency-free telemetry: atomic counters,
//	                    gauges, log-linear p50/p95/p99 histograms, a
//	                    named registry with Prometheus-text and JSON
//	                    renderers, request-ID context plumbing and the
//	                    slow-query ring buffer
//	internal/workload   evaluation motifs and synthetic graph generator
//	internal/eval       regeneration of every table and figure
//	internal/core       high-level facade (builder, Protect, Compare,
//	                    Provenance)
//
// The one public package is pkg/plusclient: the typed, context-first Go
// SDK for the v2 wire API — signed session tokens with automatic
// refresh before expiry (typed ErrUnauthorized/ErrForbidden), atomic
// batch ingest, and a change-feed follower with durable cursors and
// automatic snapshot resync. New integrations should consume the server
// through it rather than hand-rolled /v1 calls.
//
// See README.md for a tour, how to run the plusd server and plusctl
// client, the v2 endpoint table and cursor semantics, and the
// storage-backend options. Its "Operations" section catalogues the
// /v2/metrics families, the slow-query log and request-tracing
// headers, pprof, SIGHUP keyring rotation, and the plusctl top /
// slowlog commands. The benchmarks in bench_test.go regenerate
// the workload behind each table and figure.
package repro

// Coalition: protected accounts for consumers holding several
// incomparable privileges at once (a general high-water set, Definition
// 6). A joint task force member is cleared by two agencies whose
// privilege classes — "High-1" and "High-2" in the Figure 1b lattice —
// do not dominate one another; the account generated for the set
// {High-1, High-2} shows the union of what each clearance unlocks, while
// a Hide marking imposed by either side still wins.
//
// Run with:
//
//	go run ./examples/coalition
package main

import (
	"fmt"
	"log"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

func main() {
	lat := privilege.FigureOneLattice()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	reg := surrogate.NewRegistry(lb)

	// Intelligence from two agencies feeding a joint assessment:
	// agency 1's informant (High-1) and agency 2's intercept (High-2)
	// both contribute, through analysis steps, to a shared report.
	g := graph.New()
	type node struct {
		id     graph.NodeID
		lowest privilege.Predicate
	}
	for _, n := range []node{
		{"informant", "High-1"},
		{"intercept", "High-2"},
		{"analysis-1", "Low-2"},
		{"analysis-2", "Low-2"},
		{"joint-report", privilege.Public},
	} {
		g.AddNodeID(n.id)
		if n.lowest != privilege.Public {
			if err := lb.SetNode(n.id, n.lowest); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, e := range [][2]graph.NodeID{
		{"informant", "analysis-1"},
		{"intercept", "analysis-2"},
		{"analysis-1", "joint-report"},
		{"analysis-2", "joint-report"},
	} {
		g.MustAddEdge(e[0], e[1])
	}
	// Each agency publishes a vaguer surrogate of its source.
	for _, s := range []struct {
		forID graph.NodeID
		surr  surrogate.Surrogate
	}{
		{"informant", surrogate.Surrogate{ID: "informant~", Lowest: "Low-2", InfoScore: 0.4,
			Features: graph.Features{"name": "a human source"}}},
		{"intercept", surrogate.Surrogate{ID: "intercept~", Lowest: "Low-2", InfoScore: 0.4,
			Features: graph.Features{"name": "a technical source"}}},
	} {
		if err := reg.Add(s.forID, s.surr); err != nil {
			log.Fatal(err)
		}
	}
	spec := &account.Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: reg}

	show := func(title string, hw []privilege.Predicate) *account.Account {
		a, err := account.GenerateForSet(spec, hw)
		if err != nil {
			log.Fatal(err)
		}
		if err := account.VerifySound(spec, a); err != nil {
			log.Fatal(err)
		}
		u := measure.Utilities(spec, a)
		fmt.Printf("%s (HW=%v): %d nodes, path utility %.2f, node utility %.2f\n",
			title, a.HighWater, a.Graph.NumNodes(), u.Path, u.Node)
		for _, e := range a.Graph.Edges() {
			fmt.Printf("    %s -> %s\n", e.From, e.To)
		}
		return a
	}

	show("agency 1 analyst", []privilege.Predicate{"High-1"})
	show("agency 2 analyst", []privilege.Predicate{"High-2"})
	joint := show("joint task force", []privilege.Predicate{"High-1", "High-2"})
	if joint.Graph.HasNode("informant") && joint.Graph.HasNode("intercept") {
		fmt.Println("  -> the joint member sees both originals; neither singleton view does")
	}

	// Local autonomy across the coalition: agency 2 forbids showing the
	// intercept-to-analysis link to anyone, however cleared, who is not
	// purely theirs — a Hide under one member vetoes the edge for the set.
	e := graph.EdgeID{From: "intercept", To: "analysis-2"}
	if err := pol.SetIncidence("intercept", e, "High-1", policy.Hide); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter agency 2 hides its link from High-1 holders:")
	joint = show("joint task force", []privilege.Predicate{"High-1", "High-2"})
	if !joint.Graph.HasEdge("intercept", "analysis-2") {
		fmt.Println("  -> protection beats information: the edge is gone for the coalition view")
	}
}

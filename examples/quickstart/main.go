// Quickstart: protect a five-node graph that contains one sensitive node,
// compare the naive hide baseline against the surrogate approach, and
// print the paper's utility/opacity measures for both.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

func main() {
	// A two-level lattice: "Protected" above the implicit "Public".
	lat := privilege.TwoLevel()

	// upstream -> secret -> downstream -> report, plus a side channel
	// aux -> downstream. Only "secret" is sensitive; its provider hides
	// its role but allows connectivity through it, and supplies a vaguer
	// surrogate version.
	builder := core.NewBuilder(lat).
		Node("upstream", "", graph.Features{"name": "collection system"}).
		Node("secret", "Protected", graph.Features{"name": "classified fusion step"}).
		Node("downstream", "", graph.Features{"name": "analysis product"}).
		Node("report", "", graph.Features{"name": "published report"}).
		Node("aux", "", graph.Features{"name": "open-source feed"}).
		Edge("upstream", "secret", "input-to").
		Edge("secret", "downstream", "generated").
		Edge("downstream", "report", "input-to").
		Edge("aux", "downstream", "input-to").
		ProtectRole("secret", core.Surrogate).
		WithSurrogate("secret", surrogate.Surrogate{
			ID:        "secret'",
			Features:  graph.Features{"name": "a processing step"},
			Lowest:    privilege.Public,
			InfoScore: 0.4,
		})

	spec, err := builder.Spec()
	if err != nil {
		log.Fatal(err)
	}

	cmp, err := core.Compare(spec, privilege.Public)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("original graph:")
	for _, e := range spec.Graph.Edges() {
		fmt.Printf("  %s -> %s\n", e.From, e.To)
	}

	for _, res := range []*core.Result{cmp.Hide, cmp.Surrogate} {
		fmt.Printf("\n%s account (viewer: Public):\n", res.Mode)
		for _, e := range res.Account.Graph.Edges() {
			marker := ""
			if res.Account.SurrogateEdges[e.ID()] {
				marker = "   [surrogate edge]"
			}
			fmt.Printf("  %s -> %s%s\n", e.From, e.To, marker)
		}
		fmt.Printf("  path utility %.3f, node utility %.3f\n", res.Utility.Path, res.Utility.Node)
	}

	fmt.Printf("\nsurrogate minus hide path utility: %+.3f\n", cmp.DeltaPathUtility())
	fmt.Println("the surrogate account keeps upstream connected to the report while")
	fmt.Println("revealing nothing about the classified step beyond its existence.")
}

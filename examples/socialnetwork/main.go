// Social network: the paper's running example (§1, Figures 1 and 2). A
// criminal-investigation graph links two individuals, c and g, through a
// sensitive gang affiliation f. A "High-2" partner agency should learn
// that c and g are related without learning about the gang.
//
// The example walks through all four Figure 2 strategies and prints the
// Table 1 measures for each.
//
// Run with:
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"repro/internal/account"
	"repro/internal/eval"
	"repro/internal/measure"
)

func main() {
	r := eval.NewRunning()
	adv := measure.Figure5()

	fmt.Println("Figure 1a investigation graph (11 subjects, f = gang affiliation):")
	for _, e := range r.Graph.Edges() {
		fmt.Printf("  %s -> %s\n", e.From, e.To)
	}

	// The naive baseline: standard access controls simply drop what the
	// viewer cannot see, severing the paths through b-c and g-h-i-j.
	spec, naive, err := r.NaiveAccount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive account for a High-2 viewer (Figure 1c): %d nodes, %d edges, path utility %.2f\n",
		naive.Graph.NumNodes(), naive.Graph.NumEdges(), measure.PathUtility(spec, naive))
	fmt.Println("  -> the viewer cannot tell that c and g are related at all")

	scenarios := []struct {
		s    eval.Scenario
		desc string
	}{
		{eval.Fig2a, "surrogate node f' (\"a trusted law enforcement source\") with visible edges"},
		{eval.Fig2b, "f hidden entirely, surrogate edge c->g summarises the path"},
		{eval.Fig2c, "surrogate node f' but edges hidden: f' floats disconnected"},
		{eval.Fig2d, "surrogate node f' plus surrogate edge c->g"},
	}
	for _, sc := range scenarios {
		spec, a, err := r.Account(sc.s)
		if err != nil {
			log.Fatal(err)
		}
		if err := account.VerifySound(spec, a); err != nil {
			log.Fatalf("scenario %v: %v", sc.s, err)
		}
		pu := measure.PathUtility(spec, a)
		op := measure.EdgeOpacity(spec, a, r.FG, adv)
		fmt.Printf("\nFigure %s: %s\n", sc.s, sc.desc)
		fmt.Printf("  account edges:")
		for _, e := range a.Graph.Edges() {
			fmt.Printf(" %s->%s", e.From, e.To)
		}
		fmt.Printf("\n  path utility %.3f, opacity(f->g) %.3f\n", pu, op)
		if a.Graph.HasPath("c", "g") || a.Graph.HasEdge("c", "g") {
			fmt.Println("  -> High-2 learns that c and g are related; the gang stays hidden")
		}
	}

	fmt.Println("\ntakeaway (Table 1): strategy 2a maximises utility; 2d trades some")
	fmt.Println("utility for near-maximal opacity; both dominate the naive baseline.")
}

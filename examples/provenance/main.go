// Provenance: the Appendix A example (Figure 11). An emergency treatment
// plan is derived from patient records, bio-threat intelligence and
// epidemic models; some contributing steps require National Security or
// Medical Provider privileges. An Emergency Responder querying the plan's
// lineage in a prior provenance system would learn nothing past the first
// sensitive ancestor — with surrogates, the chain stays informative.
//
// The example drives the full PLUS substrate: a durable store on disk, the
// lineage query engine, and the HTTP server/client pair.
//
// Run with:
//
//	go run ./examples/provenance
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/plus"
	"repro/internal/privilege"
)

func main() {
	dir, err := os.MkdirTemp("", "plus-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := plus.Open(filepath.Join(dir, "plus.log"), plus.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Figure 11b privilege classes.
	lattice := privilege.AppendixLattice()
	engine := plus.NewEngine(store, lattice)

	// Figure 11a, abbreviated: the backbone from patient records to the
	// emergency treatment plan.
	objects := []plus.Object{
		{ID: "patient-records", Kind: plus.Data, Name: "Patient Records", Lowest: "MedicalProvider", Protect: "surrogate"},
		{ID: "aggregator", Kind: plus.Invocation, Name: "HIPAA-Compliant Aggregator"},
		{ID: "affected-count", Kind: plus.Data, Name: "Number of affected patients at facility"},
		// bio-intel keeps Visible incidences (Figure 2a style): its edges
		// attach to the surrogate version below NationalSecurity.
		{ID: "bio-intel", Kind: plus.Data, Name: "Bio-Threat Intelligence", Lowest: "NationalSecurity"},
		{ID: "projector", Kind: plus.Invocation, Name: "Epidemiological Projector EPFF v3", Lowest: "NationalSecurity", Protect: "surrogate"},
		{ID: "epidemic-model", Kind: plus.Data, Name: "Specific Epidemic Model"},
		{ID: "trend-sim", Kind: plus.Invocation, Name: "Trend Model Simulator"},
		{ID: "threat-level", Kind: plus.Data, Name: "Threat Level"},
		{ID: "supplies", Kind: plus.Data, Name: "Emergency Supplies Stockpile", Lowest: "ClearedEmergencyResponder", Protect: "surrogate"},
		{ID: "planning", Kind: plus.Invocation, Name: "Local Action Planning", Lowest: "ClearedEmergencyResponder", Protect: "surrogate"},
		{ID: "treatment-plan", Kind: plus.Data, Name: "Emergency Treatment Plan", Lowest: "EmergencyResponder"},
	}
	for _, o := range objects {
		if err := store.PutObject(o); err != nil {
			log.Fatal(err)
		}
	}
	edges := [][2]string{
		{"patient-records", "aggregator"},
		{"aggregator", "affected-count"},
		{"bio-intel", "projector"},
		{"projector", "epidemic-model"},
		{"affected-count", "trend-sim"},
		{"epidemic-model", "trend-sim"},
		{"trend-sim", "threat-level"},
		{"threat-level", "planning"},
		{"supplies", "planning"},
		{"planning", "treatment-plan"},
	}
	for _, e := range edges {
		if err := store.PutEdge(plus.Edge{From: e[0], To: e[1], Label: "input-to"}); err != nil {
			log.Fatal(err)
		}
	}
	// Providers publish less sensitive surrogates for two of the steps.
	surrogates := []plus.SurrogateSpec{
		{ForID: "bio-intel", ID: "bio-intel~", Name: "a federal intelligence source", Lowest: "EmergencyResponder", InfoScore: 0.3},
		{ForID: "planning", ID: "planning~", Name: "a regional planning process", Lowest: "EmergencyResponder", InfoScore: 0.5},
	}
	for _, sp := range surrogates {
		if err := store.PutSurrogate(sp); err != nil {
			log.Fatal(err)
		}
	}

	// An Emergency Responder asks: what contributed to the treatment plan?
	fmt.Println("lineage of the Emergency Treatment Plan, viewer = EmergencyResponder")

	hide, err := engine.Lineage(plus.Request{
		Start: "treatment-plan", Direction: graph.Backward,
		Viewer: "EmergencyResponder", Mode: plus.ModeHide,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprior systems (hide): %d nodes reachable\n", hide.Account.Graph.NumNodes())
	for _, e := range hide.Account.Graph.Edges() {
		fmt.Printf("  %s -> %s\n", e.From, e.To)
	}
	if !hide.Account.Graph.HasPath("threat-level", "treatment-plan") {
		fmt.Println("  -> the public Threat Level is cut off: its path runs through a cleared-only step")
	}

	surr, err := engine.Lineage(plus.Request{
		Start: "treatment-plan", Direction: graph.Backward,
		Viewer: "EmergencyResponder", Mode: plus.ModeSurrogate,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith surrogates: %d nodes reachable (%v protect time)\n",
		surr.Account.Graph.NumNodes(), surr.Timing.Protect)
	for _, e := range surr.Account.Graph.Edges() {
		marker := ""
		if surr.Account.SurrogateEdges[e.ID()] {
			marker = "   [surrogate edge]"
		}
		fmt.Printf("  %s -> %s%s\n", e.From, e.To, marker)
	}

	// The same queries work over HTTP.
	server := httptest.NewServer(plus.NewServer(engine))
	defer server.Close()
	client := plus.NewClient(server.URL)
	resp, err := client.Lineage(plus.LineageQuery{Start: "treatment-plan", Viewer: "NationalSecurity"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nover HTTP, a NationalSecurity viewer sees the full lineage: %d nodes, path utility %.2f\n",
		len(resp.Nodes), resp.PathUtility)
}

// Computer network: the §1 scenario in which a company shares its network
// topology selectively — full detail with a newly acquired company
// ("Acquired"), coarse detail with business partners ("Partner"). Links
// through the internal security appliance must not be revealed to
// partners, but reachability between the shared segments should survive.
//
// Run with:
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

func main() {
	// Public < Partner < Acquired: the acquired company sees everything
	// partners see and more.
	lat := privilege.NewLattice()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(lat.SetDominates("Partner", privilege.Public))
	must(lat.SetDominates("Acquired", "Partner"))
	must(lat.Freeze())

	// dmz -> fw (sensitive firewall) -> core switch -> {app, db}; the
	// acquired company's uplink enters at the core switch.
	builder := core.NewBuilder(lat).
		Node("dmz", "", graph.Features{"name": "DMZ load balancer"}).
		Node("fw", "Acquired", graph.Features{"name": "internal firewall", "model": "vendor-x-9000"}).
		Node("core-switch", "", graph.Features{"name": "core switch"}).
		Node("app", "", graph.Features{"name": "app cluster"}).
		Node("db", "Partner", graph.Features{"name": "database cluster"}).
		Node("uplink", "", graph.Features{"name": "acquired-co uplink"}).
		Edge("dmz", "fw", "link").
		Edge("fw", "core-switch", "link").
		Edge("core-switch", "app", "link").
		Edge("core-switch", "db", "link").
		Edge("uplink", "core-switch", "link").
		// The firewall's role is hidden from partners, but traffic flow
		// through it may be summarised.
		ProtectRole("fw", core.Surrogate).
		WithSurrogate("fw", surrogate.Surrogate{
			ID:        "fw~",
			Features:  graph.Features{"name": "a security appliance"},
			Lowest:    "Partner",
			InfoScore: 0.4,
		})

	spec, err := builder.Spec()
	if err != nil {
		log.Fatal(err)
	}

	for _, viewer := range []privilege.Predicate{"Acquired", "Partner", privilege.Public} {
		res, err := core.Protect(spec, viewer, core.Surrogate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("view for %s: %d nodes, %d edges (path utility %.2f, node utility %.2f)\n",
			viewer, res.Account.Graph.NumNodes(), res.Account.Graph.NumEdges(),
			res.Utility.Path, res.Utility.Node)
		for _, e := range res.Account.Graph.Edges() {
			marker := ""
			if res.Account.SurrogateEdges[e.ID()] {
				marker = "   [summarised]"
			}
			fmt.Printf("    %s -> %s%s\n", e.From, e.To, marker)
		}
	}

	fmt.Println("\nthe Partner view names a generic \"security appliance\" and keeps the")
	fmt.Println("dmz -> core-switch reachability; the Public view additionally drops the")
	fmt.Println("database cluster, yet the remaining segments stay connected.")
}

package repro_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/account"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/plus"
	"repro/internal/privilege"
	"repro/internal/workload"
)

// BenchmarkTable1 regenerates Table 1: the four Figure 2 protected
// accounts of the running example plus their path-utility and opacity
// measures.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFigure3 regenerates the Figure 3 walkthrough: the naive account
// G'_N and its utility measures.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the motif analysis: hide and surrogate
// accounts plus measures for all seven Figure 6 motifs.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatal("wrong row count")
		}
	}
}

// benchGrid is a reduced synthetic grid so one benchmark iteration stays
// around a second; cmd/experiments runs the full 50-graph paper grid.
func benchGrid() []workload.SyntheticConfig {
	var cfgs []workload.SyntheticConfig
	for fi, f := range []float64{0.10, 0.50, 0.90} {
		cfgs = append(cfgs, workload.SyntheticConfig{
			Nodes:           100,
			TargetConnected: 30,
			ProtectFraction: f,
			Seed:            int64(9000 + fi),
		})
	}
	return cfgs
}

// BenchmarkFigure8 regenerates the utility-vs-opacity frontier over the
// synthetic sweep.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.SyntheticSweep(benchGrid())
		if err != nil {
			b.Fatal(err)
		}
		if pts := eval.Figure8(rows); len(pts) == 0 {
			b.Fatal("no frontier points")
		}
	}
}

// BenchmarkFigure9 regenerates the surrogate-vs-hide difference surfaces
// over the synthetic sweep.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.SyntheticSweep(benchGrid())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.DeltaUtility() <= 0 {
				b.Fatalf("non-positive utility difference %v", r.DeltaUtility())
			}
		}
	}
}

// BenchmarkFigure10 regenerates the end-to-end performance experiment:
// store creation, cold reopen, lineage fetch, graph build and both
// protection strategies.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "plus-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eval.Figure10(dir, 200); err != nil {
			os.RemoveAll(dir)
			b.Fatal(err)
		}
		os.RemoveAll(dir)
	}
}

// protectFixture builds one 200-node synthetic spec for the micro-benches
// below (the per-activity bars of Figure 10).
func protectFixture(b *testing.B, asSurrogate bool) *account.Spec {
	b.Helper()
	syn, err := workload.GenerateSynthetic(workload.SyntheticConfig{
		Nodes: 200, TargetConnected: 50, ProtectFraction: 0.3, Seed: 4242,
	})
	if err != nil {
		b.Fatal(err)
	}
	spec, err := workload.ProtectSpec(syn.Graph, syn.Protected, asSurrogate)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// BenchmarkProtectViaHide measures the "protect via hide" bar on a
// 200-node graph with 30% of edges protected.
func BenchmarkProtectViaHide(b *testing.B) {
	spec := protectFixture(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := account.GenerateHide(spec, privilege.Public); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtectViaSurrogate measures the "protect via surrogate" bar on
// the same workload.
func BenchmarkProtectViaSurrogate(b *testing.B) {
	spec := protectFixture(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := account.Generate(spec, privilege.Public); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathUtility measures the Path Utility Measure on a 200-node
// protected account.
func BenchmarkPathUtility(b *testing.B) {
	spec := protectFixture(b, true)
	a, err := account.Generate(spec, privilege.Public)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if u := measure.PathUtility(spec, a); u <= 0 {
			b.Fatal("bad utility")
		}
	}
}

// BenchmarkAverageOpacity measures per-edge opacity averaged over the
// protected edges of a 200-node account.
func BenchmarkAverageOpacity(b *testing.B) {
	syn, err := workload.GenerateSynthetic(workload.SyntheticConfig{
		Nodes: 200, TargetConnected: 50, ProtectFraction: 0.3, Seed: 4242,
	})
	if err != nil {
		b.Fatal(err)
	}
	spec, err := workload.ProtectSpec(syn.Graph, syn.Protected, true)
	if err != nil {
		b.Fatal(err)
	}
	a, err := account.Generate(spec, privilege.Public)
	if err != nil {
		b.Fatal(err)
	}
	adv := measure.Figure5()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if op := measure.AverageOpacity(spec, a, syn.Protected, adv); op <= 0 {
			b.Fatal("bad opacity")
		}
	}
}

// BenchmarkSurrogateGeneration scales the Surrogate Generation Algorithm
// across graph sizes (the O(n^2 d) analysis of Appendix B).
func BenchmarkSurrogateGeneration(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		b.Run(sizeName(n), func(b *testing.B) {
			syn, err := workload.GenerateSynthetic(workload.SyntheticConfig{
				Nodes: n, TargetConnected: float64(n) / 4, ProtectFraction: 0.3, Seed: int64(n),
			})
			if err != nil {
				b.Fatal(err)
			}
			spec, err := workload.ProtectSpec(syn.Graph, syn.Protected, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := account.Generate(spec, privilege.Public); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	return fmt.Sprintf("nodes=%d", n)
}

// BenchmarkGenerateForSet measures multi-predicate high-water-set
// generation (two incomparable viewers at once) against the singleton
// path on the running example.
func BenchmarkGenerateForSet(b *testing.B) {
	r := eval.NewRunning()
	spec, err := r.Spec(eval.Fig2d)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("singleton", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := account.Generate(spec, "High-2"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pair", func(b *testing.B) {
		hw := []privilege.Predicate{"High-1", "High-2"}
		for i := 0; i < b.N; i++ {
			if _, err := account.GenerateForSet(spec, hw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchBackends enumerates the storage engines the substrate benches
// compare: the durable log and the sharded in-memory backend.
func benchBackends(b *testing.B) map[string]func() plus.Backend {
	b.Helper()
	return map[string]func() plus.Backend{
		"log": func() plus.Backend {
			store, err := plus.Open(b.TempDir()+"/bench.log", plus.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { store.Close() })
			return store
		},
		"mem": func() plus.Backend {
			m := plus.NewMemBackend(0)
			b.Cleanup(func() { m.Close() })
			return m
		},
	}
}

// populateBackend fills any backend with a 200-node provenance DAG and
// returns the deepest node.
func populateBackend(b *testing.B, store plus.Backend) string {
	b.Helper()
	syn, err := workload.GenerateSynthetic(workload.SyntheticConfig{
		Nodes: 200, TargetConnected: 50, ProtectFraction: 0, Seed: 77,
	})
	if err != nil {
		b.Fatal(err)
	}
	ids := syn.Graph.Nodes()
	for i, id := range ids {
		o := plus.Object{ID: string(id), Kind: plus.Data, Name: "n"}
		if i%2 == 1 {
			o.Kind = plus.Invocation
		}
		if i%5 == 0 {
			o.Lowest = "Protected"
			o.Protect = "surrogate"
		}
		if err := store.PutObject(o); err != nil {
			b.Fatal(err)
		}
	}
	for _, e := range syn.Graph.Edges() {
		if err := store.PutEdge(plus.Edge{From: string(e.From), To: string(e.To)}); err != nil {
			b.Fatal(err)
		}
	}
	return string(ids[len(ids)-1])
}

// plusFixture populates a store with a 200-node provenance DAG for the
// substrate micro-benches.
func plusFixture(b *testing.B) (*plus.Store, string) {
	b.Helper()
	dir := b.TempDir()
	store, err := plus.Open(dir+"/bench.log", plus.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	return store, populateBackend(b, store)
}

// BenchmarkStoreAppend measures raw object append throughput.
func BenchmarkStoreAppend(b *testing.B) {
	dir := b.TempDir()
	store, err := plus.Open(dir+"/append.log", plus.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := plus.Object{ID: fmt.Sprintf("o%08d", i), Kind: plus.Data, Name: "benchmark object"}
		if err := store.PutObject(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLineageQuery measures a full-ancestry protected lineage query —
// the paper's canonical path-traversal workload.
func BenchmarkLineageQuery(b *testing.B) {
	store, sink := plusFixture(b)
	engine := plus.NewEngine(store, privilege.TwoLevel())
	req := plus.Request{Start: sink, Direction: graph.Backward, Viewer: privilege.Public}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Lineage(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLineageQueryCached measures the same query through the
// invalidating cache (steady-state: every call after the first is a hit).
func BenchmarkLineageQueryCached(b *testing.B) {
	store, sink := plusFixture(b)
	engine := plus.NewCachedEngine(plus.NewEngine(store, privilege.TwoLevel()))
	req := plus.Request{Start: sink, Direction: graph.Backward, Viewer: privilege.Public}
	if _, err := engine.Lineage(req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Lineage(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackendAppend compares raw object append throughput across
// storage backends.
func BenchmarkBackendAppend(b *testing.B) {
	for name, open := range benchBackends(b) {
		b.Run(name, func(b *testing.B) {
			store := open()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := plus.Object{ID: fmt.Sprintf("o%08d", i), Kind: plus.Data, Name: "benchmark object"}
				if err := store.PutObject(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackendLineage compares one protected full-ancestry lineage
// query across storage backends.
func BenchmarkBackendLineage(b *testing.B) {
	for name, open := range benchBackends(b) {
		b.Run(name, func(b *testing.B) {
			store := open()
			sink := populateBackend(b, store)
			engine := plus.NewEngine(store, privilege.TwoLevel())
			req := plus.Request{Start: sink, Direction: graph.Backward, Viewer: privilege.Public}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Lineage(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLineageParallel measures concurrent lineage reads through the
// snapshot engine with b.RunParallel: because queries traverse immutable
// snapshots instead of holding the store's read lock, throughput should
// scale with readers (raise -cpu to see the curve) instead of
// serializing on one mutex.
func BenchmarkLineageParallel(b *testing.B) {
	for name, open := range benchBackends(b) {
		b.Run(name, func(b *testing.B) {
			store := open()
			sink := populateBackend(b, store)
			engine := plus.NewEngine(store, privilege.TwoLevel())
			req := plus.Request{Start: sink, Direction: graph.Backward, Viewer: privilege.Public}
			// Warm the snapshot cache so every iteration measures
			// traversal, not the one-off clone.
			if _, err := engine.Lineage(req); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := engine.Lineage(req); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkSnapshot measures the cost of taking a snapshot: the cached
// fast path (steady read-heavy state) versus a fresh clone after every
// write.
func BenchmarkSnapshot(b *testing.B) {
	for name, open := range benchBackends(b) {
		b.Run(name+"/cached", func(b *testing.B) {
			store := open()
			populateBackend(b, store)
			if _, err := store.Snapshot(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/afterWrite", func(b *testing.B) {
			store := open()
			populateBackend(b, store)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := plus.Object{ID: fmt.Sprintf("w%08d", i), Kind: plus.Data, Name: "w"}
				if err := store.PutObject(o); err != nil {
					b.Fatal(err)
				}
				if _, err := store.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGraphReachability measures the ConnectedPairs primitive both
// measures lean on.
func BenchmarkGraphReachability(b *testing.B) {
	syn, err := workload.GenerateSynthetic(workload.SyntheticConfig{
		Nodes: 200, TargetConnected: 60, ProtectFraction: 0.1, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	ids := syn.Graph.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if syn.Graph.ConnectedPairs(ids[i%len(ids)]) < 0 {
			b.Fatal("impossible")
		}
	}
}

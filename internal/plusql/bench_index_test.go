package plusql

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/plus"
	"repro/internal/privilege"
	"repro/internal/workload"
)

// indexBenchQueries is the point-predicate panel: name-anchored lookups
// whose posting size stays constant as the graph grows (the name pool
// scales with the node count), so the indexed latency curve must be flat
// while the naive scan grows linearly.
var indexBenchQueries = []string{
	`name(X, "name00007")`,
	`name(X, "name00012"), kind(X, data)`,
	`name(X, "name00005"), attr(X, "owner", "u0042")`,
}

// largeBackend streams a workload.GenerateLarge DAG into a fresh
// in-memory backend.
func largeBackend(tb testing.TB, nodes int) plus.Backend {
	tb.Helper()
	b := plus.NewMemBackend(0)
	tb.Cleanup(func() { b.Close() })
	err := workload.GenerateLarge(workload.LargeConfig{Nodes: nodes, Seed: 11},
		func(batch plus.Batch) error {
			_, err := b.Apply(batch)
			return err
		})
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// avgQueryUS answers the panel iters times in one mode and returns the
// mean per-query latency in microseconds.
func avgQueryUS(tb testing.TB, e *Engine, naive bool, iters int) float64 {
	tb.Helper()
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, src := range indexBenchQueries {
			if _, err := e.Query(src, Options{Naive: naive}); err != nil {
				tb.Fatalf("%s (naive=%v): %v", src, naive, err)
			}
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(iters*len(indexBenchQueries))
}

// indexScaleResult is one rung of the BENCH_index.json ladder.
type indexScaleResult struct {
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	ViewBuildMS float64 `json:"viewBuildMs"`
	// IndexedUS/ScanUS are mean per-query latencies of the point panel
	// with and without the secondary indexes.
	IndexedUS float64 `json:"indexedUs"`
	ScanUS    float64 `json:"scanUs"`
	Speedup   float64 `json:"speedup"`
	// FindIndexedUS/FindScanUS compare the storage-level name index
	// against a full-object scan for one seed-resolution probe.
	FindIndexedUS float64 `json:"findIndexedUs"`
	FindScanUS    float64 `json:"findScanUs"`
	FindSpeedup   float64 `json:"findSpeedup"`
	// LineageUS is a name-seeded (multi-seed) depth-2 lineage answer.
	LineageUS float64 `json:"lineageUs"`
}

type indexReport struct {
	Queries []string           `json:"queries"`
	Scales  []indexScaleResult `json:"scales"`
}

// benchScales reads the INDEX_BENCH_SCALES ladder (default 10k/50k; CI
// and the committed BENCH_index.json use larger rungs).
func benchScales(tb testing.TB) []int {
	spec := os.Getenv("INDEX_BENCH_SCALES")
	if spec == "" {
		spec = "10000,50000"
	}
	var scales []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1000 {
			tb.Fatalf("bad INDEX_BENCH_SCALES entry %q", f)
		}
		scales = append(scales, n)
	}
	return scales
}

// TestIndexSpeedupReport runs the point-predicate panel indexed and
// naive at every ladder scale, requires the indexed path to win — by
// >=10x from 100k nodes up — with a sublinear indexed latency curve, and
// (with INDEX_BENCH_WRITE=1) emits BENCH_index.json at the repo root.
func TestIndexSpeedupReport(t *testing.T) {
	if testing.Short() {
		t.Skip("index speedup ladder skipped in -short mode")
	}
	report := indexReport{Queries: indexBenchQueries}
	for _, nodes := range benchScales(t) {
		back := largeBackend(t, nodes)
		e := NewEngine(back, privilege.TwoLevel())

		// First query materialises the protected view (and its indexes);
		// everything after runs against the warm cache.
		buildStart := time.Now()
		if _, err := e.Query(`name(X, "name00007")`, Options{}); err != nil {
			t.Fatal(err)
		}
		buildMS := float64(time.Since(buildStart).Microseconds()) / 1000

		// Naive queries scan the whole view; keep the iteration budget
		// roughly constant in total scanned nodes. Both modes take the
		// best of three interleaved rounds so one GC pause or scheduler
		// stall cannot skew the ratio or the cross-scale curve.
		naiveIters := 2_000_000 / nodes
		if naiveIters < 2 {
			naiveIters = 2
		}
		scanUS, indexedUS := math.Inf(1), math.Inf(1)
		for round := 0; round < 3; round++ {
			runtime.GC()
			if us := avgQueryUS(t, e, true, naiveIters); us < scanUS {
				scanUS = us
			}
			runtime.GC()
			if us := avgQueryUS(t, e, false, 50); us < indexedUS {
				indexedUS = us
			}
		}

		// Storage-level index: resolve one name's posting against a full
		// object scan over the same snapshot.
		sn, err := back.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		probe := workload.LargeName(7)
		// The storage index builds lazily on the first probe; warm it so
		// the loop measures steady-state lookups.
		if got := sn.FindByName(probe); len(got) == 0 {
			t.Fatalf("FindByName(%q) found nothing", probe)
		}
		start := time.Now()
		for i := 0; i < 100; i++ {
			if got := sn.FindByName(probe); len(got) == 0 {
				t.Fatalf("FindByName(%q) found nothing", probe)
			}
		}
		findIndexedUS := float64(time.Since(start).Microseconds()) / 100
		start = time.Now()
		var scanHits int
		for _, o := range sn.Objects() {
			if o.Name == probe {
				scanHits++
			}
		}
		findScanUS := float64(time.Since(start).Microseconds())
		if scanHits == 0 {
			t.Fatalf("scan for %q found nothing", probe)
		}

		// Multi-seed lineage, seeded through the same index.
		len8 := plus.NewEngine(back, privilege.TwoLevel())
		start = time.Now()
		if _, err := len8.Lineage(plus.Request{
			StartName: probe, Direction: graph.Backward, Depth: 2,
		}); err != nil {
			t.Fatal(err)
		}
		lineageUS := float64(time.Since(start).Microseconds())

		res := indexScaleResult{
			Nodes:         nodes,
			Edges:         back.NumEdges(),
			ViewBuildMS:   buildMS,
			IndexedUS:     indexedUS,
			ScanUS:        scanUS,
			Speedup:       scanUS / indexedUS,
			FindIndexedUS: findIndexedUS,
			FindScanUS:    findScanUS,
			FindSpeedup:   findScanUS / findIndexedUS,
			LineageUS:     lineageUS,
		}
		report.Scales = append(report.Scales, res)
		t.Logf("%d nodes / %d edges: indexed %.1fus vs scan %.1fus (%.1fx); find %.1fus vs %.1fus (%.1fx); view build %.0fms",
			res.Nodes, res.Edges, res.IndexedUS, res.ScanUS, res.Speedup,
			res.FindIndexedUS, res.FindScanUS, res.FindSpeedup, res.ViewBuildMS)

		if res.Speedup <= 1 {
			t.Errorf("%d nodes: indexed path (%.1fus) does not beat the scan (%.1fus)",
				nodes, res.IndexedUS, res.ScanUS)
		}
		if nodes >= 100_000 && res.Speedup < 10 {
			t.Errorf("%d nodes: speedup %.1fx, want >= 10x", nodes, res.Speedup)
		}
		if res.FindSpeedup <= 1 {
			t.Errorf("%d nodes: storage name index (%.1fus) does not beat the scan (%.1fus)",
				nodes, res.FindIndexedUS, res.FindScanUS)
		}
	}

	// Sublinear curve: between ladder rungs the indexed latency must grow
	// strictly slower than the graph (the scan is the linear reference).
	for i := 1; i < len(report.Scales); i++ {
		a, b := report.Scales[i-1], report.Scales[i]
		growth := float64(b.Nodes) / float64(a.Nodes)
		if ratio := b.IndexedUS / a.IndexedUS; ratio > growth/2 {
			t.Errorf("indexed latency grew %.1fx from %d to %d nodes (graph grew %.0fx): not sublinear",
				ratio, a.Nodes, b.Nodes, growth)
		}
	}

	if os.Getenv("INDEX_BENCH_WRITE") == "1" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("../../BENCH_index.json", append(data, '\n'), 0o644); err != nil {
			t.Logf("could not write BENCH_index.json: %v", err)
		}
	}
}

// BenchmarkPointQueryIndexed measures the point panel with the planner
// allowed to lower predicates into index scans.
func BenchmarkPointQueryIndexed(b *testing.B) { benchPointQuery(b, false) }

// BenchmarkPointQueryNaive measures the same panel with planning
// disabled (linear scan-and-filter).
func BenchmarkPointQueryNaive(b *testing.B) { benchPointQuery(b, true) }

func benchPointQuery(b *testing.B, naive bool) {
	back := largeBackend(b, 50_000)
	e := NewEngine(back, privilege.TwoLevel())
	if _, err := e.Query(`name(X, "name00007")`, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := indexBenchQueries[i%len(indexBenchQueries)]
		if _, err := e.Query(src, Options{Naive: naive}); err != nil {
			b.Fatal(err)
		}
	}
}

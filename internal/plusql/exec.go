package plusql

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/graph"
)

// ExecStats counts the work one query execution performed; the planner
// tests assert planned plans examine strictly fewer candidates than naive
// scan-and-filter.
type ExecStats struct {
	// Examined counts candidate bindings pulled through the pipeline.
	Examined int `json:"examined"`
	// Rejected counts candidates a pushed or checked predicate killed.
	Rejected int `json:"rejected"`
	// Rows counts distinct emitted result rows.
	Rows int `json:"rows"`
}

// Binding is one bound variable of a result row, described with the
// viewer-releasable node attributes.
type Binding struct {
	Var       string `json:"var"`
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	Kind      string `json:"kind,omitempty"`
	Surrogate bool   `json:"surrogate,omitempty"`
}

// ResultSet is the answer to one query.
type ResultSet struct {
	Vars []string    `json:"vars"`
	Rows [][]Binding `json:"rows"`
	// Plan is the executed plan's Explain rendering.
	Plan  string    `json:"plan,omitempty"`
	Stats ExecStats `json:"stats"`
	// Phases is the per-phase timing decomposition, attached by the
	// engine (nil on bare run() results).
	Phases *PhaseTimings `json:"phases,omitempty"`
}

const unboundID = graph.NodeID("")

// exec bundles everything one query evaluation needs: the compiled plan,
// the protected view, the mutable binding array and the work counters.
type exec struct {
	p       *Plan
	v       *View
	binding []graph.NodeID
	stats   ExecStats
}

// term resolves a node-position term: constants to themselves, variables
// to their slot's current binding (unboundID when unbound).
func (ex *exec) term(t Term) graph.NodeID {
	if !t.IsVar {
		return graph.NodeID(t.Text)
	}
	return ex.binding[ex.p.slotOf[t.Text]]
}

// ctxCheckStride is how many backtracking-loop iterations run between
// context checks: frequent enough that a cancelled query stops in
// microseconds, rare enough that the check never shows in profiles.
const ctxCheckStride = 1 << 12

// run evaluates a compiled plan against a view with a pull-based
// backtracking join: each step holds a cursor of candidate extensions
// computed from the binding prefix above it, and rows are produced one at
// a time so limits short-circuit all upstream enumeration. The context is
// checked every ctxCheckStride iterations.
func run(ctx context.Context, p *Plan, v *View, maxRows int) (*ResultSet, error) {
	rs := &ResultSet{Vars: make([]string, len(p.Proj))}
	for i, s := range p.Proj {
		rs.Vars[i] = p.Vars[s]
	}
	limit := p.Limit
	if maxRows > 0 && (limit == 0 || maxRows < limit) {
		limit = maxRows
	}

	ex := &exec{p: p, v: v, binding: make([]graph.NodeID, len(p.Vars))}
	seen := map[string]bool{}

	// emit projects the current full binding into a row (set semantics).
	emit := func() {
		row := make([]Binding, len(p.Proj))
		var key strings.Builder
		for i, slot := range p.Proj {
			id := ex.binding[slot]
			key.WriteString(string(id))
			key.WriteByte(0)
			feats := v.Features(id)
			row[i] = Binding{
				Var:       p.Vars[slot],
				ID:        string(id),
				Name:      feats["name"],
				Kind:      feats["kind"],
				Surrogate: v.IsSurrogate(id),
			}
		}
		if seen[key.String()] {
			return
		}
		seen[key.String()] = true
		rs.Rows = append(rs.Rows, row)
		ex.stats.Rows++
	}

	if len(p.Steps) > 0 {
		cursors := make([]*cursor, len(p.Steps))
		depth := 0
		c, err := ex.open(&p.Steps[0])
		if err != nil {
			return nil, err
		}
		cursors[0] = c
		var steps uint
		for depth >= 0 {
			if limit > 0 && ex.stats.Rows >= limit {
				break
			}
			if steps++; steps%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("plusql: %w", err)
				}
			}
			if !cursors[depth].next() {
				cursors[depth].unbind()
				depth--
				continue
			}
			if depth == len(p.Steps)-1 {
				emit()
				continue
			}
			depth++
			c, err := ex.open(&p.Steps[depth])
			if err != nil {
				return nil, err
			}
			cursors[depth] = c
		}
	}
	rs.Stats = ex.stats
	return rs, nil
}

// cursor streams the candidate extensions of one step under the binding
// prefix established by earlier steps.
type cursor struct {
	ex   *exec
	step *Step

	ids []graph.NodeID // single-slot candidates
	i   int

	// Pair scans stream lazily: outer walks the node list, inner holds
	// the current outer node's partners, so a satisfied limit stops the
	// enumeration (and the closure memoisation) early.
	outer    []graph.NodeID
	oi       int
	cur      graph.NodeID
	inner    []graph.NodeID
	ii       int
	label    string
	hasLabel bool

	checked bool // StepCheck consumed
	passed  bool
}

// open computes the candidate stream of a step under the current binding.
func (ex *exec) open(s *Step) (*cursor, error) {
	c := &cursor{ex: ex, step: s}
	a := s.Atom
	switch s.Kind {
	case StepCheck:
		c.passed = ex.check(a)
		return c, nil

	case StepScan:
		switch {
		case s.ScanKind != "":
			c.ids = ex.v.NodesByKind(s.ScanKind)
		case s.ScanName != "":
			c.ids = ex.v.NodesByName(s.ScanName)
		case s.ScanAttrKey != "":
			c.ids = ex.v.NodesByAttr(s.ScanAttrKey, s.ScanAttrVal)
		default:
			c.ids = ex.v.Nodes()
		}
		return c, nil

	case StepExpand:
		// One node argument is the unbound variable (slot s.Slot); the
		// other resolves to a node id.
		boundArg := -1
		for i, t := range a.Args {
			if !a.isNodePos(i) {
				continue
			}
			if t.IsVar && ex.p.slotOf[t.Text] == s.Slot && ex.binding[s.Slot] == unboundID {
				continue
			}
			boundArg = i
		}
		if boundArg < 0 {
			return nil, fmt.Errorf("plusql: internal: expand step %s has no bound side", a)
		}
		from := ex.term(a.Args[boundArg])
		if !ex.v.Has(from) {
			// Unknown or policy-hidden anchor: no bindings.
			return c, nil
		}
		dir := expandDirection(a, boundArg)
		if closurePred(a.Pred) {
			c.ids = ex.v.Reach(from, dir)
			return c, nil
		}
		var label string
		hasLabel := false
		if a.Pred == PredEdge && len(a.Args) == 3 {
			label, hasLabel = a.Args[2].Text, true
		}
		adj := ex.v.Out(from)
		if dir == graph.Backward {
			adj = ex.v.In(from)
		}
		for _, nb := range adj {
			if hasLabel && nb.Label != label {
				continue
			}
			c.ids = append(c.ids, nb.To)
		}
		return c, nil

	case StepScanPair:
		// Both sides unbound: stream (arg0, arg1) pairs node by node —
		// direct atoms walk each node's out-edges, closures its
		// descendant set — so nothing is materialised up front.
		if a.Pred == PredEdge && len(a.Args) == 3 {
			c.label, c.hasLabel = a.Args[2].Text, true
		}
		c.outer = ex.v.Nodes()
		return c, nil
	}
	return nil, fmt.Errorf("plusql: internal: unknown step kind %v", s.Kind)
}

// orientPair maps a traversal (from -> to along dataflow) onto the atom's
// argument order: descendant atoms list the downstream node first.
func orientPair(a Atom, from, to graph.NodeID) [2]graph.NodeID {
	if a.Pred == PredDescendant || a.Pred == PredDescendantT {
		return [2]graph.NodeID{to, from}
	}
	return [2]graph.NodeID{from, to}
}

// next advances the cursor, installing the next candidate into the
// binding. Pushed predicates filter candidates here, before the binding
// ever extends downstream.
func (c *cursor) next() bool {
	s := c.step
	ex := c.ex
	switch s.Kind {
	case StepCheck:
		if c.checked {
			return false
		}
		c.checked = true
		ex.stats.Examined++
		if !c.passed {
			ex.stats.Rejected++
			return false
		}
		return true

	case StepScanPair:
		for {
			for c.ii < len(c.inner) {
				to := c.inner[c.ii]
				c.ii++
				ex.stats.Examined++
				pr := orientPair(s.Atom, c.cur, to)
				// edge(X, X)-style atoms reuse one slot for both sides
				// and only match when the pair agrees.
				if s.Slot == s.Slot2 && pr[0] != pr[1] {
					ex.stats.Rejected++
					continue
				}
				ex.binding[s.Slot] = pr[0]
				ex.binding[s.Slot2] = pr[1]
				if c.applyPushed() {
					return true
				}
				ex.stats.Rejected++
			}
			if c.oi >= len(c.outer) {
				break
			}
			c.cur = c.outer[c.oi]
			c.oi++
			c.ii = 0
			if closurePred(s.Atom.Pred) {
				c.inner = ex.v.Reach(c.cur, graph.Forward)
				continue
			}
			c.inner = c.inner[:0]
			for _, nb := range ex.v.Out(c.cur) {
				if c.hasLabel && nb.Label != c.label {
					continue
				}
				c.inner = append(c.inner, nb.To)
			}
		}
		ex.binding[s.Slot] = unboundID
		ex.binding[s.Slot2] = unboundID
		return false

	default: // StepScan, StepExpand
		for c.i < len(c.ids) {
			id := c.ids[c.i]
			c.i++
			ex.stats.Examined++
			ex.binding[s.Slot] = id
			if c.applyPushed() {
				return true
			}
			ex.stats.Rejected++
		}
		ex.binding[s.Slot] = unboundID
		return false
	}
}

// applyPushed evaluates the step's pushed filters on a fresh candidate.
func (c *cursor) applyPushed() bool {
	for _, a := range c.step.Pushed {
		if !c.ex.check(a) {
			return false
		}
	}
	return true
}

// unbind clears the step's slots when its cursor is exhausted.
func (c *cursor) unbind() {
	if c.step.Slot >= 0 {
		c.ex.binding[c.step.Slot] = unboundID
	}
	if c.step.Slot2 >= 0 {
		c.ex.binding[c.step.Slot2] = unboundID
	}
}

// check evaluates an atom whose node arguments are all bound or constant.
func (ex *exec) check(a Atom) bool {
	v := ex.v
	switch a.Pred {
	case PredNode:
		return v.Has(ex.term(a.Args[0]))
	case PredSurrogate:
		return v.IsSurrogate(ex.term(a.Args[0]))
	case PredKind:
		return v.Features(ex.term(a.Args[0]))["kind"] == a.Args[1].Text
	case PredName:
		return v.Features(ex.term(a.Args[0]))["name"] == a.Args[1].Text
	case PredAttr:
		return v.Features(ex.term(a.Args[0]))[a.Args[1].Text] == a.Args[2].Text
	case PredEdge, PredAncestor, PredDescendant:
		from, to := ex.term(a.Args[0]), ex.term(a.Args[1])
		if a.Pred == PredDescendant {
			from, to = to, from
		}
		label, ok := v.HasEdge(from, to)
		if !ok {
			return false
		}
		if a.Pred == PredEdge && len(a.Args) == 3 {
			return label == a.Args[2].Text
		}
		return true
	case PredAncestorT, PredDescendantT:
		from, to := ex.term(a.Args[0]), ex.term(a.Args[1])
		if a.Pred == PredDescendantT {
			from, to = to, from
		}
		if !v.Has(from) || !v.Has(to) {
			return false
		}
		return v.CanReach(from, to)
	}
	return false
}

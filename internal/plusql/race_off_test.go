//go:build !race

package plusql

const raceEnabled = false

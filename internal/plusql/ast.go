package plusql

import (
	"fmt"
	"strings"
)

// Pos is a 1-based line/column position in the query source.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// ParseError is a syntax or semantic error tagged with where it happened.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("plusql: parse error at %s: %s", e.Pos, e.Msg)
}

func errAt(pos Pos, format string, args ...interface{}) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Term is one argument of an atom: a variable or a string constant.
type Term struct {
	Pos   Pos
	IsVar bool
	// Text is the variable name or the constant value.
	Text string
}

func (t Term) String() string {
	if t.IsVar {
		return t.Text
	}
	return fmt.Sprintf("%q", t.Text)
}

// Predicate names. Starred predicates are the transitive closures.
const (
	PredNode        = "node"
	PredKind        = "kind"
	PredName        = "name"
	PredAttr        = "attr"
	PredSurrogate   = "surrogate"
	PredEdge        = "edge"
	PredAncestor    = "ancestor"
	PredDescendant  = "descendant"
	PredAncestorT   = "ancestor*"
	PredDescendantT = "descendant*"
)

// arities maps each predicate to its admissible argument counts.
var arities = map[string][]int{
	PredNode:        {1},
	PredKind:        {2},
	PredName:        {2},
	PredAttr:        {3},
	PredSurrogate:   {1},
	PredEdge:        {2, 3},
	PredAncestor:    {2},
	PredDescendant:  {2},
	PredAncestorT:   {2},
	PredDescendantT: {2},
}

// nodePositions maps each predicate to the argument indexes that denote
// nodes (and therefore may be variables); all other positions must be
// constants.
var nodePositions = map[string][]int{
	PredNode:        {0},
	PredKind:        {0},
	PredName:        {0},
	PredAttr:        {0},
	PredSurrogate:   {0},
	PredEdge:        {0, 1},
	PredAncestor:    {0, 1},
	PredDescendant:  {0, 1},
	PredAncestorT:   {0, 1},
	PredDescendantT: {0, 1},
}

// Atom is one body conjunct: pred(arg, ...).
type Atom struct {
	Pos  Pos
	Pred string
	Args []Term
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// isNodePos reports whether argument i of the atom is a node position.
func (a Atom) isNodePos(i int) bool {
	for _, p := range nodePositions[a.Pred] {
		if p == i {
			return true
		}
	}
	return false
}

// Query is a parsed PLUSQL query.
type Query struct {
	// Head holds the projected variable names; nil means "all variables
	// in order of first appearance in the body".
	Head []string
	// HeadName is the head predicate's name ("ans" in "ans(X) :- ...");
	// empty when the query has no head.
	HeadName string
	// headTerms retains the head's parsed terms for error positions.
	headTerms []Term
	Atoms     []Atom
	// Limit bounds the result rows; 0 means unbounded.
	Limit int
}

// Vars returns the query's variables in order of first appearance in the
// body.
func (q *Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar && !seen[t.Text] {
				seen[t.Text] = true
				out = append(out, t.Text)
			}
		}
	}
	return out
}

// Projection returns the projected variables: the head when present,
// otherwise all body variables in order of first appearance.
func (q *Query) Projection() []string {
	if q.Head != nil {
		return q.Head
	}
	return q.Vars()
}

func (q *Query) String() string {
	var sb strings.Builder
	if q.Head != nil {
		name := q.HeadName
		if name == "" {
			name = "ans"
		}
		sb.WriteString(name + "(" + strings.Join(q.Head, ", ") + ") :- ")
	}
	for i, a := range q.Atoms {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " limit %d", q.Limit)
	}
	return sb.String()
}

package plusql

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/plus"
	"repro/internal/privilege"
)

// indexedStats is testStats plus secondary-index cardinalities, for the
// planner goldens that exercise the index-aware cost model.
var indexedStats = Stats{
	Nodes: 1000,
	Edges: 2500,
	ByKind: map[string]int{
		"data":       400,
		"invocation": 100,
	},
	NameCount: func(name string) int {
		return map[string]int{"raw": 2}[name]
	},
	AttrCount: func(key, value string) int {
		if key == "owner" && value == "alice" {
			return 5
		}
		return 0
	},
}

// TestPlanIndexedGolden pins the planner's behaviour when the view
// exposes name/attr secondary indexes: selective predicates become the
// generator, lowered to index scans instead of pushed filters.
func TestPlanIndexedGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			// With a name index the 2-row name posting beats the 400-row
			// kind index as the generator; everything else folds in.
			name: "name_index_wins",
			src:  `node(X), attr(X, "owner", "alice"), kind(X, data), name(X, "raw")`,
			want: "plan (planned):\n" +
				"  1. scan X [name=raw] push[attr(X, \"owner\", \"alice\"); kind(X, \"data\")] (est 2)\n" +
				"  project X\n",
		},
		{
			// A selective attr posting anchors the closure instead of the
			// other way round.
			name: "attr_index_anchors_closure",
			src:  `attr(X, "owner", "alice"), ancestor*(X, "t")`,
			want: "plan (planned):\n" +
				"  1. scan X [attr owner=alice] (est 5)\n" +
				"  2. check ancestor*(X, \"t\") (est 1)\n" +
				"  project X\n",
		},
		{
			// A name absent from the index costs ~1 and still scans the
			// (empty) posting list.
			name: "unknown_name_is_cheap",
			src:  `name(X, "nope"), kind(X, data)`,
			want: "plan (planned):\n" +
				"  1. scan X [name=nope] push[kind(X, \"data\")] (est 1)\n" +
				"  project X\n",
		},
		{
			// Empty constants never use the indexes: an absent key also
			// matches "" under map-lookup semantics, which only a scan
			// sees.
			name: "empty_value_stays_scan",
			src:  `attr(X, "owner", "")`,
			want: "plan (planned):\n" +
				"  1. scan X via attr(X, \"owner\", \"\") push[attr(X, \"owner\", \"\")] (est 1000)\n" +
				"  project X\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Compile(q, indexedStats, false)
			if err != nil {
				t.Fatal(err)
			}
			if got := p.Explain(); got != tc.want {
				t.Errorf("plan for %q:\n%s\nwant:\n%s", tc.src, got, tc.want)
			}
		})
	}
}

// TestIndexNaiveParityRandomized is the end-to-end parity property: over
// a random mutation sequence (objects added and replaced, edges, the
// occasional protected node with a surrogate), every query in the panel
// must return byte-identical results with and without the secondary
// indexes, for Public and privileged viewers alike. The same engine is
// reused across rounds, so the view-advance (delta patch) path of the
// index maintenance is exercised, not just fresh builds. Runs under
// -race in CI.
func TestIndexNaiveParityRandomized(t *testing.T) {
	b := plus.NewMemBackend(4)
	t.Cleanup(func() { b.Close() })
	e := NewEngine(b, privilege.TwoLevel())
	rng := rand.New(rand.NewSource(7))

	kinds := []plus.ObjectKind{plus.Data, plus.Invocation}
	names := []string{"alpha", "beta", "gamma", "delta", ""}
	owners := []string{"alice", "bob", "carol"}
	queries := []string{
		`name(X, "alpha")`,
		`attr(X, "owner", "alice")`,
		`kind(X, invocation), attr(X, "stage", "s1")`,
		`attr(X, "owner", "bob"), edge(X, Y)`,
		`name(X, "beta"), ancestor*(Y, X)`,
		`attr(X, "owner", "")`, // empty constant: both sides must scan
		`name(X, "gamma"), kind(X, data), attr(X, "owner", "carol")`,
	}
	viewers := []privilege.Predicate{privilege.Public, "Protected"}

	nextID := 0
	for round := 0; round < 12; round++ {
		// Mutate: a mix of fresh objects, replacements and edges.
		for w := 0; w < 15; w++ {
			switch {
			case nextID == 0 || rng.Intn(4) > 0: // new or replaced object
				id := nextID
				fresh := true
				if nextID > 0 && rng.Intn(3) == 0 {
					id, fresh = rng.Intn(nextID), false // replace an existing object
				} else {
					nextID++
				}
				// Protection is a function of the id so a replacement never
				// strands a surrogate on an unprotected original.
				protected := id%10 == 5
				o := plus.Object{
					ID:   fmt.Sprintf("o%03d", id),
					Kind: kinds[rng.Intn(len(kinds))],
					Name: names[rng.Intn(len(names))],
					Features: map[string]string{
						"owner": owners[rng.Intn(len(owners))],
						"stage": fmt.Sprintf("s%d", rng.Intn(3)),
					},
				}
				if protected {
					o.Lowest, o.Protect = "Protected", "surrogate"
				}
				if err := b.PutObject(o); err != nil {
					t.Fatal(err)
				}
				if protected && fresh {
					sp := plus.SurrogateSpec{
						ForID: o.ID, ID: o.ID + "~",
						Name:      "redacted",
						Features:  map[string]string{"kind": string(o.Kind)},
						InfoScore: 0.5,
					}
					if err := b.PutSurrogate(sp); err != nil {
						t.Fatal(err)
					}
				}
			default: // edge between existing objects (lower id -> higher id)
				if nextID < 2 {
					continue
				}
				i := rng.Intn(nextID - 1)
				j := i + 1 + rng.Intn(nextID-i-1)
				e := plus.Edge{
					From:  fmt.Sprintf("o%03d", i),
					To:    fmt.Sprintf("o%03d", j),
					Label: "input-to",
				}
				// Duplicate edges are expected over a random sequence.
				_ = b.PutEdge(e)
			}
		}
		// Verify: planned (index-backed) results must equal naive
		// scan-and-filter results exactly.
		for _, viewer := range viewers {
			for _, src := range queries {
				planned, err := e.Query(src, Options{Viewer: viewer})
				if err != nil {
					t.Fatalf("round %d viewer %s planned %q: %v", round, viewer, src, err)
				}
				naive, err := e.Query(src, Options{Viewer: viewer, Naive: true})
				if err != nil {
					t.Fatalf("round %d viewer %s naive %q: %v", round, viewer, src, err)
				}
				if !reflect.DeepEqual(planned.Vars, naive.Vars) {
					t.Fatalf("round %d viewer %s %q: vars %v vs %v", round, viewer, src, planned.Vars, naive.Vars)
				}
				if !reflect.DeepEqual(planned.Rows, naive.Rows) {
					t.Fatalf("round %d viewer %s %q:\nindexed: %+v\nnaive:   %+v",
						round, viewer, src, planned.Rows, naive.Rows)
				}
			}
		}
	}
	// The panel must actually have exercised the index path.
	st := e.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("view cache never hit: %+v", st)
	}
}

package plusql

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/plus"
	"repro/internal/privilege"
)

// assertSameView checks an advanced view is indistinguishable from a view
// built from scratch off the same snapshot: same nodes, kinds, adjacency
// and reachability answers.
func assertSameView(t *testing.T, label string, got, want *View) {
	t.Helper()
	if got.Revision() != want.Revision() {
		t.Fatalf("%s: revision %d != %d", label, got.Revision(), want.Revision())
	}
	if fmt.Sprint(got.Nodes()) != fmt.Sprint(want.Nodes()) {
		t.Fatalf("%s: nodes differ:\n got %v\nwant %v", label, got.Nodes(), want.Nodes())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: edges %d != %d", label, got.NumEdges(), want.NumEdges())
	}
	if !got.Account().Graph.Equal(want.Account().Graph) {
		t.Fatalf("%s: account graphs differ:\n got %v\nwant %v",
			label, got.Account().Graph.Edges(), want.Account().Graph.Edges())
	}
	for _, kind := range []string{"data", "invocation"} {
		if fmt.Sprint(got.NodesByKind(kind)) != fmt.Sprint(want.NodesByKind(kind)) {
			t.Fatalf("%s: kind %q index differs:\n got %v\nwant %v",
				label, kind, got.NodesByKind(kind), want.NodesByKind(kind))
		}
	}
	for _, id := range want.Nodes() {
		if fmt.Sprint(got.Out(id)) != fmt.Sprint(want.Out(id)) {
			t.Fatalf("%s: Out(%s) differs:\n got %v\nwant %v", label, id, got.Out(id), want.Out(id))
		}
		if fmt.Sprint(got.In(id)) != fmt.Sprint(want.In(id)) {
			t.Fatalf("%s: In(%s) differs:\n got %v\nwant %v", label, id, got.In(id), want.In(id))
		}
		if fmt.Sprint(got.Features(id)) != fmt.Sprint(want.Features(id)) {
			t.Fatalf("%s: Features(%s) differ", label, id)
		}
		if fmt.Sprint(got.Reach(id, graph.Forward)) != fmt.Sprint(want.Reach(id, graph.Forward)) {
			t.Fatalf("%s: Reach(%s, fwd) differs:\n got %v\nwant %v",
				label, id, got.Reach(id, graph.Forward), want.Reach(id, graph.Backward))
		}
		if fmt.Sprint(got.Reach(id, graph.Backward)) != fmt.Sprint(want.Reach(id, graph.Backward)) {
			t.Fatalf("%s: Reach(%s, back) differs", label, id)
		}
	}
}

// advanceParity drives interleaved writes and view advances against one
// backend, asserting parity with from-scratch builds at every revision.
func advanceParity(t *testing.T, b plus.Backend, mode plus.Mode) {
	lat := privilege.TwoLevel()
	sn, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(sn, lat, privilege.Public, mode)
	if err != nil {
		t.Fatal(err)
	}

	// Warm some reachability memos so the patch path has state to keep.
	for _, id := range v.Nodes() {
		v.Reach(id, graph.Forward)
	}

	check := func(label string) {
		t.Helper()
		sn, err := b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		nv, info, ok := v.Advance(sn)
		if !ok {
			t.Fatalf("%s: advance refused", label)
		}
		want, err := NewView(sn, lat, privilege.Public, mode)
		if err != nil {
			t.Fatal(err)
		}
		assertSameView(t, fmt.Sprintf("%s (dirty=%d rebuilt=%v)", label, info.Dirty, info.AccountRebuilt), nv, want)
		v = nv
	}

	// Additive growth: a fresh branch with a protected node + surrogate in
	// one batch.
	batch := plus.Batch{
		Objects: []plus.Object{
			{ID: "n1", Kind: plus.Data, Name: "n1"},
			{ID: "n2", Kind: plus.Invocation, Name: "n2", Lowest: "Protected", Protect: "surrogate"},
		},
		Edges:      []plus.Edge{{From: "b", To: "n1", Label: "input-to"}, {From: "n1", To: "n2", Label: "input-to"}},
		Surrogates: []plus.SurrogateSpec{{ForID: "n2", ID: "n2~", Name: "anon", InfoScore: 0.4}},
	}
	if _, err := b.Apply(batch); err != nil {
		t.Fatal(err)
	}
	check("batch with protected node")

	// A single public write.
	if err := b.PutObject(plus.Object{ID: "n3", Kind: plus.Data, Name: "n3"}); err != nil {
		t.Fatal(err)
	}
	check("single object")

	// An edge into the protected chain.
	if err := b.PutEdge(plus.Edge{From: "n3", To: "n2", Label: "input-to"}); err != nil {
		t.Fatal(err)
	}
	check("edge into protected chain")

	// A benign feature refresh of an existing node.
	if err := b.PutObject(plus.Object{ID: "a", Kind: plus.Data, Name: "raw v2", Features: map[string]string{"owner": "alice"}}); err != nil {
		t.Fatal(err)
	}
	check("feature refresh")

	// A protection change: node becomes hidden. Localisation fails for the
	// surrogate generator (account rebuild) but the advance still lands on
	// the scratch view; hide mode patches it incrementally.
	if err := b.PutObject(plus.Object{ID: "n1", Kind: plus.Data, Name: "n1", Lowest: "Protected", Protect: "hide"}); err != nil {
		t.Fatal(err)
	}
	check("reclassification")

	// A marked edge.
	if err := b.PutObject(plus.Object{ID: "n4", Kind: plus.Data, Name: "n4"}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutEdge(plus.Edge{From: "n4", To: "n3", Label: "input-to", Marking: "surrogate", Lowest: "Protected"}); err != nil {
		t.Fatal(err)
	}
	check("marked edge")
}

func TestViewAdvanceParitySurrogate(t *testing.T) {
	advanceParity(t, exampleBackend(t), plus.ModeSurrogate)
}

func TestViewAdvanceParityHide(t *testing.T) {
	advanceParity(t, exampleBackend(t), plus.ModeHide)
}

func TestViewAdvanceSpecIsOneShot(t *testing.T) {
	b := exampleBackend(t)
	lat := privilege.TwoLevel()
	sn, _ := b.Snapshot()
	v, err := NewView(sn, lat, privilege.Public, plus.ModeSurrogate)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PutObject(plus.Object{ID: "z", Kind: plus.Data, Name: "z"}); err != nil {
		t.Fatal(err)
	}
	sn2, _ := b.Snapshot()
	if _, _, ok := v.Advance(sn2); !ok {
		t.Fatal("first advance refused")
	}
	if _, _, ok := v.Advance(sn2); ok {
		t.Fatal("second advance from the same view must refuse: spec was consumed")
	}
}

// TestEngineAdvanceStats checks the engine serves repeated queries across
// writes by advancing views rather than rebuilding them.
func TestEngineAdvanceStats(t *testing.T) {
	b := exampleBackend(t)
	e := NewEngine(b, privilege.TwoLevel())
	q := `node(X), kind(X, data)`
	if _, err := e.Query(q, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("w%d", i)
		if err := b.PutObject(plus.Object{ID: id, Kind: plus.Data, Name: id}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Query(q, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.CacheStats()
	if st.FullBuilds != 1 {
		t.Errorf("full builds = %d, want 1 (only the cold start)", st.FullBuilds)
	}
	if st.Advanced != 10 {
		t.Errorf("advanced = %d, want 10", st.Advanced)
	}
	if st.Views != 1 {
		t.Errorf("cached views = %d, want 1", st.Views)
	}

	// With incremental refresh off, every write forces a full build.
	e2 := NewEngine(exampleBackend(t), privilege.TwoLevel())
	e2.SetIncremental(false)
	if _, err := e2.Query(q, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := e2.store.PutObject(plus.Object{ID: "w", Kind: plus.Data, Name: "w"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Query(q, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := e2.CacheStats(); st.FullBuilds != 2 || st.Advanced != 0 {
		t.Errorf("non-incremental stats = %+v, want 2 full builds", st)
	}
}

// TestEngineAdvanceConcurrent interleaves writers with query goroutines
// for two viewers, so view advances race with queries holding the old
// views (exercised under -race in CI).
func TestEngineAdvanceConcurrent(t *testing.T) {
	b := exampleBackend(t)
	e := NewEngine(b, privilege.TwoLevel())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 30; i++ {
			id := fmt.Sprintf("c%d", i)
			batch := plus.Batch{
				Objects: []plus.Object{{ID: id, Kind: plus.Data, Name: id}},
				Edges:   []plus.Edge{{From: "b", To: id, Label: "input-to"}},
			}
			if _, err := b.Apply(batch); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			viewer := privilege.Public
			if g%2 == 0 {
				viewer = "Protected"
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Query(`descendant*(X, "b")`, Options{Viewer: viewer}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Converge: the final answer matches a fresh engine's.
	rs, err := e.Query(`descendant*(X, "b")`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewEngine(b, privilege.TwoLevel()).Query(`descendant*(X, "b")`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != len(fresh.Rows) || len(rs.Rows) != 30 {
		t.Errorf("converged rows = %d, fresh = %d, want 30", len(rs.Rows), len(fresh.Rows))
	}
}

// TestEngineAdvanceTooFarBehind drives more writes than the mem backend's
// change ring retains: the advance falls back to a full build and answers
// stay correct.
func TestEngineAdvanceTooFarBehind(t *testing.T) {
	b := plus.NewMemBackend(2)
	t.Cleanup(func() { b.Close() })
	b.SetChangeHorizon(2)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("s%d", i)
		if err := b.PutObject(plus.Object{ID: id, Kind: plus.Data, Name: id}); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(b, privilege.TwoLevel())
	q := `node(X)`
	rs, err := e.Query(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rs.Rows))
	}
	// Burst far past the per-shard horizon.
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("t%d", i)
		if err := b.PutObject(plus.Object{ID: id, Kind: plus.Data, Name: id}); err != nil {
			t.Fatal(err)
		}
	}
	rs, err = e.Query(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 43 {
		t.Fatalf("rows after burst = %d, want 43", len(rs.Rows))
	}
	st := e.CacheStats()
	if st.Fallbacks == 0 || st.FullBuilds != 2 {
		t.Errorf("stats = %+v, want a fallback and 2 full builds", st)
	}
}

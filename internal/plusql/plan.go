package plusql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// StepKind classifies how one plan step is executed.
type StepKind int

const (
	// StepScan enumerates candidate nodes for a fresh variable, either
	// over the whole view or over a kind index, applying pushed
	// predicates inline.
	StepScan StepKind = iota
	// StepExpand binds a fresh variable from an already-bound node via an
	// edge or transitive-closure atom.
	StepExpand
	// StepScanPair enumerates node pairs for an edge/closure atom with
	// both sides unbound (the planner avoids this unless the query forces
	// it).
	StepScanPair
	// StepCheck verifies an atom whose node arguments are all bound.
	StepCheck
)

func (k StepKind) String() string {
	switch k {
	case StepScan:
		return "scan"
	case StepExpand:
		return "expand"
	case StepScanPair:
		return "scan-pair"
	case StepCheck:
		return "check"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step is one operator of a compiled plan.
type Step struct {
	Atom Atom
	Kind StepKind
	// Slot is the variable slot this step binds (-1 for checks). Pair
	// scans additionally bind Slot2.
	Slot  int
	Slot2 int
	// ScanKind, when non-empty, restricts a StepScan to the view's kind
	// index instead of the full node list. ScanName and the ScanAttr pair
	// do the same against the name and attr secondary indexes; at most
	// one of the three access paths is set per step.
	ScanKind    string
	ScanName    string
	ScanAttrKey string
	ScanAttrVal string
	// Pushed holds filter atoms folded down into this step; they are
	// applied to each candidate before the binding is extended.
	Pushed []Atom
	// Est is the planner's work estimate (candidate bindings examined).
	Est float64
}

// Plan is an ordered pipeline of steps plus the projection and limit.
type Plan struct {
	Vars   []string // slot -> variable name
	slotOf map[string]int
	Proj   []int // projected slots, in projection order
	Steps  []Step
	Limit  int
	Naive  bool
}

// Stats is the per-view cardinality information the planner orders atoms
// with.
type Stats struct {
	Nodes  int
	Edges  int
	ByKind map[string]int
	// NameCount and AttrCount, when non-nil, report secondary-index
	// posting sizes; the planner then costs name()/attr() predicates at
	// their true selectivity and lowers them to index scans. Nil means
	// the view has no such indexes and those predicates cost a full scan
	// (the pre-index behaviour, kept for hand-built Stats).
	NameCount func(name string) int
	AttrCount func(key, value string) int
}

// ViewStats extracts planner statistics from a view.
func ViewStats(v *View) Stats {
	by := make(map[string]int, len(v.byKind))
	for k, ids := range v.byKind {
		by[k] = len(ids)
	}
	return Stats{
		Nodes:     v.NumNodes(),
		Edges:     v.NumEdges(),
		ByKind:    by,
		NameCount: v.NameCount,
		AttrCount: v.AttrCount,
	}
}

// indexableName / indexableAttr report whether a name()/attr() atom can
// be served by the secondary indexes: stats must expose them and the
// constants must be non-empty (an empty constant also matches nodes
// LACKING the feature, which only a scan sees).
func indexableName(a Atom, st Stats, naive bool) bool {
	return !naive && st.NameCount != nil && !a.Args[1].IsVar && a.Args[1].Text != ""
}

func indexableAttr(a Atom, st Stats, naive bool) bool {
	return !naive && st.AttrCount != nil &&
		!a.Args[1].IsVar && a.Args[1].Text != "" &&
		!a.Args[2].IsVar && a.Args[2].Text != ""
}

// isFilterAtom reports whether an atom is a pure single-node filter
// (pushable into the step that generates its variable).
func isFilterAtom(a Atom) bool {
	switch a.Pred {
	case PredKind, PredName, PredAttr, PredSurrogate, PredNode:
		return true
	}
	return false
}

// closurePred reports whether the predicate is a transitive closure.
func closurePred(p string) bool { return p == PredAncestorT || p == PredDescendantT }

// Compile lowers a parsed query to an executable plan against a view with
// the given statistics. In planned mode (naive=false) atoms are greedily
// ordered by estimated work given the bindings accumulated so far, and
// kind/name/attr/surrogate predicates are pushed down into the scans and
// expansions that generate their variable. In naive mode the atoms run in
// source order with full scan-and-filter generators and no pushdown —
// the baseline the benchmarks compare against.
func Compile(q *Query, st Stats, naive bool) (*Plan, error) {
	vars := q.Vars()
	p := &Plan{Vars: vars, slotOf: map[string]int{}, Limit: q.Limit, Naive: naive}
	for i, v := range vars {
		p.slotOf[v] = i
	}
	for _, v := range q.Projection() {
		p.Proj = append(p.Proj, p.slotOf[v])
	}

	bound := map[string]bool{}
	remaining := append([]Atom(nil), q.Atoms...)
	for len(remaining) > 0 {
		pick := 0
		if !naive {
			best := estimate(remaining[0], bound, st, naive)
			for i := 1; i < len(remaining); i++ {
				if e := estimate(remaining[i], bound, st, naive); e < best {
					best, pick = e, i
				}
			}
		}
		a := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		step := lower(a, bound, p.slotOf, st, naive)
		for _, t := range a.Args {
			if t.IsVar {
				bound[t.Text] = true
			}
		}
		p.Steps = append(p.Steps, step)
	}

	if !naive {
		pushDown(p, st)
	}
	return p, nil
}

// estimate guesses the work (candidates examined) of evaluating the atom
// next, given the currently bound variables.
func estimate(a Atom, bound map[string]bool, st Stats, naive bool) float64 {
	n := float64(st.Nodes)
	if n < 1 {
		n = 1
	}
	avgDeg := float64(st.Edges) / n
	if avgDeg < 1 {
		avgDeg = 1
	}
	unboundNodes := 0
	for i, t := range a.Args {
		if a.isNodePos(i) && t.IsVar && !bound[t.Text] {
			unboundNodes++
		}
	}
	switch {
	case unboundNodes == 0:
		// Pure check; run as early as possible.
		return 1
	case isFilterAtom(a):
		if a.Pred == PredKind && !naive {
			if c, ok := st.ByKind[a.Args[1].Text]; ok {
				return float64(c)
			}
			return 1 // unknown kind: empty index
		}
		if a.Pred == PredName && indexableName(a, st, naive) {
			if c := st.NameCount(a.Args[1].Text); c > 0 {
				return float64(c)
			}
			return 1 // unknown name: empty index
		}
		if a.Pred == PredAttr && indexableAttr(a, st, naive) {
			if c := st.AttrCount(a.Args[1].Text, a.Args[2].Text); c > 0 {
				return float64(c)
			}
			return 1 // unknown pair: empty index
		}
		if a.Pred == PredNode {
			return n
		}
		// Full scan with an inline filter.
		return n
	case closurePred(a.Pred):
		if unboundNodes == 1 {
			// One closure enumeration from the bound side.
			return n / 4
		}
		return n * n / 4
	default: // edge / ancestor / descendant
		if unboundNodes == 1 {
			return avgDeg
		}
		return float64(st.Edges)
	}
}

// lower turns one atom into a step given the current bindings.
func lower(a Atom, bound map[string]bool, slotOf map[string]int, st Stats, naive bool) Step {
	step := Step{Atom: a, Slot: -1, Slot2: -1, Est: estimate(a, bound, st, naive)}
	var unbound []int // arg indexes of unbound node variables
	for i, t := range a.Args {
		if a.isNodePos(i) && t.IsVar && !bound[t.Text] {
			unbound = append(unbound, i)
		}
	}
	switch {
	case len(unbound) == 0:
		step.Kind = StepCheck
	case isFilterAtom(a):
		step.Kind = StepScan
		step.Slot = slotOf[a.Args[unbound[0]].Text]
		if a.Pred == PredKind && !naive {
			step.ScanKind = a.Args[1].Text
		} else if a.Pred == PredName && indexableName(a, st, naive) {
			step.ScanName = a.Args[1].Text
		} else if a.Pred == PredAttr && indexableAttr(a, st, naive) {
			step.ScanAttrKey, step.ScanAttrVal = a.Args[1].Text, a.Args[2].Text
		} else if a.Pred != PredNode {
			// The generating atom itself filters the scan (naive mode
			// keeps kind() here too: full scan, filter after).
			step.Pushed = append(step.Pushed, a)
		}
	case len(unbound) == 1:
		step.Kind = StepExpand
		step.Slot = slotOf[a.Args[unbound[0]].Text]
	default:
		step.Kind = StepScanPair
		step.Slot = slotOf[a.Args[unbound[0]].Text]
		step.Slot2 = slotOf[a.Args[unbound[1]].Text]
	}
	return step
}

// pushDown folds later single-variable filter checks into the step that
// generates their variable, so candidates are rejected before the binding
// ever extends. A kind()/name()/attr() check pushed into an index-less
// scan upgrades the scan to the matching secondary index (first upgrade
// wins; a scan has one access path).
func pushDown(p *Plan, st Stats) {
	genOf := map[int]int{} // slot -> index of generating step
	for i, s := range p.Steps {
		if s.Slot >= 0 {
			genOf[s.Slot] = i
		}
		if s.Slot2 >= 0 {
			genOf[s.Slot2] = i
		}
	}
	out := make([]Step, 0, len(p.Steps))
	for i, s := range p.Steps {
		// Only variable filters fold into a generator; an all-constant
		// check (e.g. node("id")) stays a standalone step.
		if s.Kind != StepCheck || !isFilterAtom(s.Atom) || !s.Atom.Args[0].IsVar {
			out = append(out, s)
			continue
		}
		slot := p.slotOf[s.Atom.Args[0].Text]
		gi, ok := genOf[slot]
		if !ok || gi >= i {
			out = append(out, s)
			continue
		}
		// Fold into the generator (steps are addressed by identity in
		// out: the generator precedes i and was already appended).
		for j := range out {
			if out[j].Slot == slot || out[j].Slot2 == slot {
				g := &out[j]
				unrestricted := g.Kind == StepScan && g.ScanKind == "" &&
					g.ScanName == "" && g.ScanAttrKey == ""
				switch {
				case s.Atom.Pred == PredKind && unrestricted:
					g.ScanKind = s.Atom.Args[1].Text
				case s.Atom.Pred == PredName && unrestricted && indexableName(s.Atom, st, false):
					g.ScanName = s.Atom.Args[1].Text
				case s.Atom.Pred == PredAttr && unrestricted && indexableAttr(s.Atom, st, false):
					g.ScanAttrKey, g.ScanAttrVal = s.Atom.Args[1].Text, s.Atom.Args[2].Text
				case s.Atom.Pred != PredNode:
					g.Pushed = append(g.Pushed, s.Atom)
				}
				break
			}
		}
	}
	p.Steps = out
}

// Explain renders the plan deterministically for logs and golden tests.
func (p *Plan) Explain() string {
	var sb strings.Builder
	mode := "planned"
	if p.Naive {
		mode = "naive"
	}
	fmt.Fprintf(&sb, "plan (%s):\n", mode)
	for i, s := range p.Steps {
		fmt.Fprintf(&sb, "  %d. %s", i+1, s.Kind)
		switch s.Kind {
		case StepScan:
			fmt.Fprintf(&sb, " %s", p.Vars[s.Slot])
			if s.ScanKind != "" {
				fmt.Fprintf(&sb, " [kind=%s]", s.ScanKind)
			}
			if s.ScanName != "" {
				fmt.Fprintf(&sb, " [name=%s]", s.ScanName)
			}
			if s.ScanAttrKey != "" {
				fmt.Fprintf(&sb, " [attr %s=%s]", s.ScanAttrKey, s.ScanAttrVal)
			}
			if !scanConsumesAtom(s) {
				fmt.Fprintf(&sb, " via %s", s.Atom)
			}
		case StepExpand:
			fmt.Fprintf(&sb, " %s via %s", p.Vars[s.Slot], s.Atom)
		case StepScanPair:
			fmt.Fprintf(&sb, " (%s, %s) via %s", p.Vars[s.Slot], p.Vars[s.Slot2], s.Atom)
		case StepCheck:
			fmt.Fprintf(&sb, " %s", s.Atom)
		}
		if len(s.Pushed) > 0 {
			push := make([]string, len(s.Pushed))
			for j, a := range s.Pushed {
				push[j] = a.String()
			}
			sort.Strings(push)
			fmt.Fprintf(&sb, " push[%s]", strings.Join(push, "; "))
		}
		fmt.Fprintf(&sb, " (est %g)\n", s.Est)
	}
	if p.Limit > 0 {
		fmt.Fprintf(&sb, "  limit %d\n", p.Limit)
	}
	proj := make([]string, len(p.Proj))
	for i, s := range p.Proj {
		proj[i] = p.Vars[s]
	}
	fmt.Fprintf(&sb, "  project %s\n", strings.Join(proj, ", "))
	return sb.String()
}

// scanConsumesAtom reports whether a scan step's own atom IS its access
// path (the index enumerates exactly the atom's matches), in which case
// Explain omits the redundant "via" clause.
func scanConsumesAtom(s Step) bool {
	a := s.Atom
	switch a.Pred {
	case PredKind:
		return s.ScanKind == a.Args[1].Text && s.ScanKind != ""
	case PredName:
		return s.ScanName == a.Args[1].Text && s.ScanName != ""
	case PredAttr:
		return s.ScanAttrKey == a.Args[1].Text && s.ScanAttrVal == a.Args[2].Text && s.ScanAttrKey != ""
	}
	return false
}

// expandDirection resolves how a one-side-bound edge/closure atom expands:
// which argument is bound, which direction the traversal runs, and the
// traversal primitive (adjacency vs reachability). Used by the executor.
func expandDirection(a Atom, boundArg int) graph.Direction {
	// Edges run along dataflow From -> To. ancestor(X, Y) / edge(X, Y):
	// X -> Y. descendant(X, Y): Y -> X.
	forwardAtom := a.Pred != PredDescendant && a.Pred != PredDescendantT
	if forwardAtom {
		if boundArg == 0 {
			return graph.Forward
		}
		return graph.Backward
	}
	if boundArg == 0 {
		return graph.Backward
	}
	return graph.Forward
}

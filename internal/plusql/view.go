package plusql

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/intern"
	"repro/internal/plus"
	"repro/internal/privilege"
)

// View is the viewer-protected, immutable face a query executes against:
// the protected account of one storage snapshot for one viewer, plus the
// indexes the planner pushes predicates into. Everything a query can bind
// is a node or edge of this account, so results are policy-safe by
// construction — a hidden original simply is not here, and a surrogated
// original appears only as its surrogate.
//
// A View is built once per (snapshot revision, viewer, mode) and shared
// between queries; all exported methods are safe for concurrent use.
type View struct {
	rev    uint64
	viewer privilege.Predicate
	mode   plus.Mode

	acct *account.Account

	nodes  []graph.NodeID            // all account nodes, sorted
	byKind map[string][]graph.NodeID // "kind" feature -> sorted nodes
	// byName and byAttr are the view-level secondary indexes: interned
	// "name" feature -> sorted nodes, and interned (attr key, attr value)
	// pair -> sorted nodes. Unnamed nodes, empty attr values and the
	// reserved kind/name keys are not posted (the planner never uses the
	// indexes for those probes), keeping index-served enumeration
	// byte-identical to a sorted scan-and-filter.
	byName map[intern.Sym][]graph.NodeID
	byAttr map[uint64][]graph.NodeID
	out    map[graph.NodeID][]Neighbor // adjacency, sorted by neighbour
	in     map[graph.NodeID][]Neighbor
	edges  int

	mu        sync.Mutex
	fwdReach  map[graph.NodeID][]graph.NodeID
	backReach map[graph.NodeID][]graph.NodeID

	// spec is the account's generation spec, retained so the view can be
	// advanced by a change-feed delta instead of rebuilt from a snapshot.
	// It roughly doubles a cached view's footprint — the price of
	// incremental maintenance. Ownership is one-shot: Advance mutates the
	// spec forward and moves it to the successor view, so it is guarded by
	// mu and nilled once consumed.
	spec *account.Spec
}

// Neighbor is one adjacency entry of a view node.
type Neighbor struct {
	To    graph.NodeID // the far endpoint
	Label string
}

// NewView materialises the protected account of a snapshot for a viewer.
// mode selects the account generator: plus.ModeSurrogate (default) runs
// the Surrogate Generation Algorithm, plus.ModeHide the all-or-nothing
// baseline.
func NewView(sn *plus.Snapshot, lattice *privilege.Lattice, viewer privilege.Predicate, mode plus.Mode) (*View, error) {
	if viewer == "" {
		viewer = privilege.Public
	}
	if mode == "" {
		mode = plus.ModeSurrogate
	}
	if !lattice.Known(viewer) {
		return nil, fmt.Errorf("plusql: unknown viewer predicate %q", viewer)
	}
	spec, err := plus.SpecFromSnapshot(sn, lattice)
	if err != nil {
		return nil, err
	}
	var acct *account.Account
	switch mode {
	case plus.ModeSurrogate:
		acct, err = account.Generate(spec, viewer)
	case plus.ModeHide:
		acct, err = account.GenerateHide(spec, viewer)
	default:
		err = fmt.Errorf("plusql: unknown mode %q", mode)
	}
	if err != nil {
		return nil, err
	}

	v := &View{
		rev:    sn.Revision(),
		viewer: viewer,
		mode:   mode,
		acct:   acct,
		spec:   spec,
	}
	v.index()
	return v, nil
}

// index (re)builds the scan indexes from the account graph.
func (v *View) index() {
	acct := v.acct
	v.byKind = map[string][]graph.NodeID{}
	v.out = map[graph.NodeID][]Neighbor{}
	v.in = map[graph.NodeID][]Neighbor{}
	v.fwdReach = map[graph.NodeID][]graph.NodeID{}
	v.backReach = map[graph.NodeID][]graph.NodeID{}
	v.edges = 0
	v.byName = map[intern.Sym][]graph.NodeID{}
	v.byAttr = map[uint64][]graph.NodeID{}
	v.nodes = acct.Graph.Nodes() // sorted, so every posting list is sorted
	for _, id := range v.nodes {
		n, _ := acct.Graph.NodeByID(id)
		if k := n.Features["kind"]; k != "" {
			v.byKind[k] = append(v.byKind[k], id)
		}
		if name := n.Features["name"]; name != "" {
			v.byName[intern.S(name)] = append(v.byName[intern.S(name)], id)
		}
		for _, p := range attrPairs(n.Features) {
			v.byAttr[p] = append(v.byAttr[p], id)
		}
	}
	for _, e := range acct.Graph.Edges() { // sorted by (From, To)
		v.out[e.From] = append(v.out[e.From], Neighbor{To: e.To, Label: e.Label})
		v.in[e.To] = append(v.in[e.To], Neighbor{To: e.From, Label: e.Label})
		v.edges++
	}
	for id := range v.in {
		es := v.in[id]
		sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
	}
}

// Revision reports the snapshot revision the view was built from.
func (v *View) Revision() uint64 { return v.rev }

// Viewer reports the privilege-predicate the view protects for.
func (v *View) Viewer() privilege.Predicate { return v.viewer }

// Account exposes the underlying protected account (read-only).
func (v *View) Account() *account.Account { return v.acct }

// NumNodes reports how many nodes the viewer may see.
func (v *View) NumNodes() int { return len(v.nodes) }

// NumEdges reports how many edges the viewer may see.
func (v *View) NumEdges() int { return v.edges }

// KindCount reports how many visible nodes carry the kind feature k.
func (v *View) KindCount(k string) int { return len(v.byKind[k]) }

// Nodes returns all visible nodes in sorted order. Callers must not
// mutate the returned slice.
func (v *View) Nodes() []graph.NodeID { return v.nodes }

// NodesByKind returns the visible nodes whose "kind" feature equals k,
// sorted. Callers must not mutate the returned slice.
func (v *View) NodesByKind(k string) []graph.NodeID { return v.byKind[k] }

// attrPairs maps a node's feature set to its secondary-index keys:
// one interned (key, value) pair per feature, skipping the reserved
// kind/name keys (they have their own indexes) and empty values (the
// planner routes empty-constant probes to scans, because an absent key
// also matches an empty constant under map-lookup semantics).
func attrPairs(f graph.Features) []uint64 {
	var out []uint64
	for k, val := range f {
		if k == "kind" || k == "name" || val == "" {
			continue
		}
		out = append(out, intern.Pair(intern.S(k), intern.S(val)))
	}
	return out
}

// NodesByName returns the visible nodes whose "name" feature equals the
// non-empty name, sorted. Callers must not mutate the returned slice.
func (v *View) NodesByName(name string) []graph.NodeID {
	sym, known := intern.Lookup(name)
	if !known || sym == intern.None {
		return nil
	}
	return v.byName[sym]
}

// NameCount reports how many visible nodes carry the name feature.
func (v *View) NameCount(name string) int { return len(v.NodesByName(name)) }

// NodesByAttr returns the visible nodes whose feature map contains the
// (non-empty) pair key=value, sorted. The reserved keys "kind" and
// "name" route to their dedicated indexes. Callers must not mutate the
// returned slice.
func (v *View) NodesByAttr(key, value string) []graph.NodeID {
	switch key {
	case "kind":
		return v.byKind[value]
	case "name":
		return v.NodesByName(value)
	}
	ksym, kok := intern.Lookup(key)
	vsym, vok := intern.Lookup(value)
	if !kok || !vok {
		return nil
	}
	return v.byAttr[intern.Pair(ksym, vsym)]
}

// AttrCount reports how many visible nodes carry the feature pair.
func (v *View) AttrCount(key, value string) int { return len(v.NodesByAttr(key, value)) }

// Has reports whether id is a visible node.
func (v *View) Has(id graph.NodeID) bool { return v.acct.Graph.HasNode(id) }

// Features returns a visible node's features (nil for unknown ids).
// Surrogate nodes expose only the provider-released surrogate features.
func (v *View) Features(id graph.NodeID) graph.Features {
	n, ok := v.acct.Graph.NodeByID(id)
	if !ok {
		return nil
	}
	return n.Features
}

// IsSurrogate reports whether a visible node is a surrogate.
func (v *View) IsSurrogate(id graph.NodeID) bool {
	_, ok := v.acct.SurrogateNodes[id]
	return ok
}

// Out returns id's outgoing (to, label) pairs sorted by neighbour.
func (v *View) Out(id graph.NodeID) []Neighbor { return v.out[id] }

// In returns id's incoming (from, label) pairs sorted by neighbour.
func (v *View) In(id graph.NodeID) []Neighbor { return v.in[id] }

// HasEdge reports a direct visible edge from -> to and its label.
func (v *View) HasEdge(from, to graph.NodeID) (string, bool) {
	e, ok := v.acct.Graph.EdgeByID(graph.EdgeID{From: from, To: to})
	if !ok {
		return "", false
	}
	return e.Label, true
}

// Reach returns the nodes reachable from id over 1+ visible hops in the
// given direction (graph.Forward for descendants, graph.Backward for
// ancestors), sorted, excluding id itself. Closures are memoised on the
// view, so repeated transitive atoms over hot nodes are index lookups.
func (v *View) Reach(id graph.NodeID, dir graph.Direction) []graph.NodeID {
	memo := v.fwdReach
	if dir == graph.Backward {
		memo = v.backReach
	}
	v.mu.Lock()
	got, ok := memo[id]
	v.mu.Unlock()
	if ok {
		return got
	}
	set := v.acct.Graph.Reachable(id, dir)
	out := make([]graph.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	v.mu.Lock()
	memo[id] = out
	v.mu.Unlock()
	return out
}

// CanReach reports whether to is reachable from from over 1+ visible
// hops.
func (v *View) CanReach(from, to graph.NodeID) bool {
	reach := v.Reach(from, graph.Forward)
	i := sort.Search(len(reach), func(i int) bool { return reach[i] >= to })
	return i < len(reach) && reach[i] == to
}

//go:build race

package plusql

// raceEnabled reports that this binary was built with -race, whose
// instrumentation multiplies the cost of the atomics the telemetry
// hooks use and makes relative-overhead timing meaningless.
const raceEnabled = true

package plusql

import (
	"strings"
	"testing"
)

// FuzzParsePLUSQL asserts the parser never panics, and that every error
// is a *ParseError with a sane position. Parsed queries must re-parse
// from their String() rendering (print/parse round trip).
func FuzzParsePLUSQL(f *testing.F) {
	seeds := []string{
		`ancestor*(X, "report"), kind(X, data) limit 10`,
		`ans(X, Y) :- edge(X, Y, "input-to"), attr(X, "owner", "alice")`,
		`node(X)`,
		`surrogate(S), descendant*(S, "src")`,
		`edge(X, Y), edge(Y, Z), kind(Z, invocation) limit 3`,
		`name(X, "a \"quoted\" name")`,
		`kind(X, Y)`,
		`ans() :-`,
		`node(X,`,
		`limit`,
		`ancestor*(`,
		"node(X),\nkind(X, data)",
		`node("ユニコード")`,
		`node(X) limit 999999999999999999999`,
		`:-`,
		`"just a string"`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("Parse(%q): error %T lacks a position: %v", src, err, err)
			}
			if pe.Pos.Line < 1 || pe.Pos.Col < 1 {
				t.Fatalf("Parse(%q): bad error position %s", src, pe.Pos)
			}
			if !strings.Contains(pe.Error(), pe.Pos.String()) {
				t.Fatalf("Parse(%q): message %q omits position", src, pe.Error())
			}
			return
		}
		if len(q.Atoms) == 0 {
			t.Fatalf("Parse(%q): success with no atoms", src)
		}
		// Round trip: the rendering of a valid query parses back.
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q): round trip of %q failed: %v", src, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("Parse(%q): unstable rendering %q vs %q", src, rendered, q2.String())
		}
		// Compilation of any parsed query must not panic either.
		if _, err := Compile(q, testStats, false); err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		if _, err := Compile(q, testStats, true); err != nil {
			t.Fatalf("Compile naive(%q): %v", src, err)
		}
	})
}

package plusql

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plus"
	"repro/internal/privilege"
)

// fullObservability is the most expensive realistic telemetry bundle: a
// live registry and a slow-query ring whose threshold no benchmark query
// crosses, so every evaluation pays the histogram and eligibility-check
// cost without the (rare) ring write.
func fullObservability() *plus.Observability {
	return plus.NewObservability(obs.NewRegistry(), obs.NewSlowLog(128, time.Hour), nil)
}

// obsBenchEngines builds paired engines over one shared motif store:
// identical except for telemetry. Views/caches are pre-warmed so the
// measured loop is the steady-state hot path.
func obsBenchEngines(tb testing.TB) (off, on *Engine, loff, lon *plus.Engine) {
	tb.Helper()
	be := motifStore(tb, 5)
	lat := privilege.TwoLevel()
	off = NewEngine(be, lat)
	on = NewEngine(be, lat)
	on.SetObservability(fullObservability())
	loff = plus.NewEngine(be, lat)
	lon = plus.NewEngine(be, lat)
	lon.SetObservability(fullObservability())
	for _, e := range []*Engine{off, on} {
		if _, err := e.Query(benchQuery, Options{}); err != nil {
			tb.Fatal(err)
		}
	}
	return off, on, loff, lon
}

func benchPlusql(b *testing.B, e *Engine) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := e.Query(benchQuery, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if rs.Stats.Rows == 0 {
			b.Fatal("no rows")
		}
	}
}

func benchLineage(b *testing.B, en *plus.Engine) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := en.Lineage(plus.Request{Start: "t", Direction: graph.Backward})
		if err != nil {
			b.Fatal(err)
		}
		if res.Account.Graph.NumNodes() == 0 {
			b.Fatal("empty account")
		}
	}
}

// BenchmarkObsOverhead pairs the PLUSQL and lineage hot paths with and
// without full instrumentation (registry histograms + slow-query
// eligibility checks). Compare instrumented vs uninstrumented ns/op —
// the delta is the telemetry tax; TestObsOverheadGuard pins it <5%.
func BenchmarkObsOverhead(b *testing.B) {
	off, on, loff, lon := obsBenchEngines(b)
	b.Run("plusql/uninstrumented", func(b *testing.B) { benchPlusql(b, off) })
	b.Run("plusql/instrumented", func(b *testing.B) { benchPlusql(b, on) })
	b.Run("lineage/uninstrumented", func(b *testing.B) { benchLineage(b, loff) })
	b.Run("lineage/instrumented", func(b *testing.B) { benchLineage(b, lon) })
}

// pairedMinPerOp interleaves the two variants round by round and
// reports each one's fastest per-op time — the minimum is the standard
// noise-resistant estimator for paired micro-comparisons, and the
// interleaving makes a slow phase of a shared box (GC, a noisy
// neighbour) hit both variants instead of biasing whichever block
// happened to run inside it.
func pairedMinPerOp(rounds, iters int, off, on func()) (base, inst time.Duration) {
	base, inst = time.Duration(1<<63-1), time.Duration(1<<63-1)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			off()
		}
		if d := time.Since(start) / time.Duration(iters); d < base {
			base = d
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			on()
		}
		if d := time.Since(start) / time.Duration(iters); d < inst {
			inst = d
		}
	}
	return base, inst
}

// TestObsOverheadGuard pins the acceptance criterion: full
// instrumentation adds <5% to the PLUSQL and lineage hot paths. Rounds
// interleave the two variants so CPU-frequency drift hits both equally;
// the guard takes the best of five attempts before declaring a
// regression, since shared CI machines jitter more than the real
// overhead.
func TestObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the atomics the hooks use")
	}
	off, on, loff, lon := obsBenchEngines(t)
	paths := []struct {
		name    string
		off, on func()
		rounds  int
		iters   int
	}{
		{
			name:   "plusql",
			off:    func() { _, _ = off.Query(benchQuery, Options{}) },
			on:     func() { _, _ = on.Query(benchQuery, Options{}) },
			rounds: 5, iters: 200,
		},
		{
			name:   "lineage",
			off:    func() { _, _ = loff.Lineage(plus.Request{Start: "t", Direction: graph.Backward}) },
			on:     func() { _, _ = lon.Lineage(plus.Request{Start: "t", Direction: graph.Backward}) },
			rounds: 5, iters: 20,
		},
	}
	for _, p := range paths {
		t.Run(p.name, func(t *testing.T) {
			var best float64 = 1 << 30
			for attempt := 0; attempt < 5; attempt++ {
				base, inst := pairedMinPerOp(p.rounds, p.iters, p.off, p.on)
				overhead := float64(inst-base) / float64(base)
				if overhead < best {
					best = overhead
				}
				if best < 0.05 {
					t.Logf("%s overhead %.2f%% (base %v, instrumented %v)", p.name, overhead*100, base, inst)
					return
				}
			}
			t.Errorf("%s instrumentation overhead %.2f%%, want <5%%", p.name, best*100)
		})
	}
}

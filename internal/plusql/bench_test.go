package plusql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/plus"
	"repro/internal/privilege"
	"repro/internal/workload"
)

// motifStore tiles the Figure 6 workload motifs into a backend: `copies`
// namespaced instances of each motif, every sink feeding a global target
// "t", with each motif's designated protected node stored at Lowest
// Protected alongside a provider surrogate. Public-viewer queries over
// the result traverse surrogates throughout.
func motifStore(tb testing.TB, copies int) plus.Backend {
	tb.Helper()
	be := plus.NewMemBackend(0)
	tb.Cleanup(func() { be.Close() })
	put := func(err error) {
		if err != nil {
			tb.Fatal(err)
		}
	}
	put(be.PutObject(plus.Object{ID: "t", Kind: plus.Data, Name: "target"}))
	for k := 0; k < copies; k++ {
		for _, m := range workload.Motifs() {
			prefix := fmt.Sprintf("%s%d_", strings.ToLower(m.Name), k)
			protected := prefix + string(m.Protected.To)
			for i, id := range m.Graph.Nodes() {
				kind := plus.Data
				if i%3 == 2 {
					kind = plus.Invocation
				}
				o := plus.Object{ID: prefix + string(id), Kind: kind, Name: string(id)}
				if o.ID == protected {
					o.Lowest = "Protected"
				}
				put(be.PutObject(o))
			}
			for _, e := range m.Graph.Edges() {
				put(be.PutEdge(plus.Edge{
					From: prefix + string(e.From), To: prefix + string(e.To), Label: "input-to",
				}))
			}
			put(be.PutSurrogate(plus.SurrogateSpec{
				ForID: protected, ID: protected + "~", Name: "withheld",
				InfoScore: 0.5, Features: map[string]string{"kind": "data"},
			}))
			for _, id := range m.Graph.Nodes() {
				if m.Graph.OutDegree(id) == 0 {
					put(be.PutEdge(plus.Edge{From: prefix + string(id), To: "t", Label: "input-to"}))
				}
			}
		}
	}
	return be
}

// benchQuery is the motif workload's representative question: "which data
// nodes are in the (protected) lineage of this sink?" — written with the
// filter first, so naive source-order execution scans the whole store and
// reach-checks every data node, while the planner anchors on the closure
// and only examines the few true ancestors.
const benchQuery = `kind(X, data), ancestor*(X, "chain0_e")`

// BenchmarkPLUSQLPlanned measures planned execution (selectivity
// ordering + predicate pushdown) as the Public viewer.
func BenchmarkPLUSQLPlanned(b *testing.B) {
	e := NewEngine(motifStore(b, 30), privilege.TwoLevel())
	if _, err := e.Query(benchQuery, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := e.Query(benchQuery, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if rs.Stats.Rows == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkPLUSQLNaiveScanFilter measures the same query evaluated by
// naive source-order scan-and-filter over the same cached view.
func BenchmarkPLUSQLNaiveScanFilter(b *testing.B) {
	e := NewEngine(motifStore(b, 30), privilege.TwoLevel())
	if _, err := e.Query(benchQuery, Options{Naive: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := e.Query(benchQuery, Options{Naive: true})
		if err != nil {
			b.Fatal(err)
		}
		if rs.Stats.Rows == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkPLUSQLLineageEquivalent measures the closest hand-written
// lineage-engine call: the full protected ancestry account of the target
// for the Public viewer (the fixed-shape query PLUSQL generalises).
func BenchmarkPLUSQLLineageEquivalent(b *testing.B) {
	be := motifStore(b, 30)
	en := plus.NewEngine(be, privilege.TwoLevel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := en.Lineage(plus.Request{Start: "t", Direction: graph.Backward})
		if err != nil {
			b.Fatal(err)
		}
		if res.Account.Graph.NumNodes() == 0 {
			b.Fatal("empty account")
		}
	}
}

// TestBenchWorkloadPlannedBeatsNaive pins the acceptance criterion
// deterministically (benchmarks only report it): on the tiled motif
// workload the planner examines far fewer candidates than naive
// scan-and-filter while returning identical rows.
func TestBenchWorkloadPlannedBeatsNaive(t *testing.T) {
	e := NewEngine(motifStore(t, 10), privilege.TwoLevel())
	planned, err := e.Query(benchQuery, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := e.Query(benchQuery, Options{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(planned.Rows) == 0 || len(planned.Rows) != len(naive.Rows) {
		t.Fatalf("row mismatch: planned %d, naive %d", len(planned.Rows), len(naive.Rows))
	}
	if planned.Stats.Examined*2 > naive.Stats.Examined {
		t.Errorf("planned examined %d, naive %d: want at least 2x reduction",
			planned.Stats.Examined, naive.Stats.Examined)
	}
}

package plusql

import (
	"sort"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/intern"
	"repro/internal/plus"
)

// This file implements delta-scoped view refresh: instead of rebuilding a
// protected view from a whole snapshot after every write, the engine pulls
// the change-feed delta between the view's revision and the snapshot's,
// advances the retained spec record-for-record, incrementally maintains
// the protected account (internal/account.Maintain), and patches the
// view's node/kind/adjacency indexes in place — invalidating only the
// reachability memos the dirty region can reach.

// AdvanceInfo reports how one view advance was served.
type AdvanceInfo struct {
	// AccountRebuilt reports the account was regenerated from the
	// (incrementally advanced) spec because the delta could not be
	// localised; Reason says why.
	AccountRebuilt bool
	Reason         string
	// Dirty is the size of the account's dirty region (original nodes).
	Dirty int
}

// memoDropAllThreshold bounds the per-added-edge reachability scans used
// for scoped memo invalidation; past it, dropping every memo is cheaper.
const memoDropAllThreshold = 32

// Advance derives the view of snapshot sn for the same (viewer, mode) by
// incrementally maintaining this view's account with the changes between
// the two revisions. It returns ok=false when the view cannot advance —
// spec already consumed by a concurrent advance, change feed too far
// behind (or closed), or the delta failed to apply — and the caller falls
// back to a full NewView build.
func (v *View) Advance(sn *plus.Snapshot) (*View, AdvanceInfo, bool) {
	if sn.Revision() < v.rev {
		return nil, AdvanceInfo{}, false
	}
	// One-shot spec ownership: the spec is mutated forward, so only one
	// successor view may ever be derived from it.
	v.mu.Lock()
	spec := v.spec
	v.spec = nil
	v.mu.Unlock()
	if spec == nil {
		return nil, AdvanceInfo{}, false
	}
	if sn.Revision() == v.rev {
		// Same revision: nothing to do; hand the spec back.
		v.mu.Lock()
		v.spec = spec
		v.mu.Unlock()
		return v, AdvanceInfo{}, true
	}
	delta, err := sn.DeltaSince(v.rev)
	if err != nil {
		// Too far behind the retained feed (or the backend closed): the
		// old spec is still intact; restore it for a later attempt.
		v.mu.Lock()
		v.spec = spec
		v.mu.Unlock()
		return nil, AdvanceInfo{}, false
	}
	ad := plus.ClassifyDelta(spec, delta)
	pre := account.Capture(spec, ad)
	if err := plus.ApplyDelta(spec, delta); err != nil {
		// The spec may be half-advanced; it must not be reused.
		return nil, AdvanceInfo{}, false
	}

	var (
		acct2 *account.Account
		st    account.MaintainStats
	)
	if v.mode == plus.ModeHide {
		acct2, st, err = account.MaintainHide(v.acct, spec, ad)
	} else {
		acct2, st, err = account.Maintain(v.acct, spec, ad, pre)
	}
	if err != nil {
		return nil, AdvanceInfo{}, false
	}

	nv := &View{
		rev:    sn.Revision(),
		viewer: v.viewer,
		mode:   v.mode,
		acct:   acct2,
		spec:   spec,
	}
	if st.Rebuilt {
		nv.index()
		return nv, AdvanceInfo{AccountRebuilt: true, Reason: st.Reason}, true
	}
	nv.patch(v, st)
	return nv, AdvanceInfo{Dirty: st.Dirty}, true
}

// patch builds the new view's indexes from the old view's by applying the
// maintenance stats, copy-on-write so live queries on the old view are
// never disturbed.
func (nv *View) patch(old *View, st account.MaintainStats) {
	// Node list.
	if len(st.AddedNodes) == 0 && len(st.RemovedNodes) == 0 {
		nv.nodes = old.nodes
	} else {
		removed := map[graph.NodeID]bool{}
		for _, id := range st.RemovedNodes {
			removed[id] = true
		}
		nodes := make([]graph.NodeID, 0, len(old.nodes)+len(st.AddedNodes))
		for _, id := range old.nodes {
			if !removed[id] {
				nodes = append(nodes, id)
			}
		}
		nodes = append(nodes, st.AddedNodes...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		nv.nodes = nodes
	}

	// Kind index: recompute only the kinds the patch touched. A replaced
	// node may have changed its released "kind" feature, so updated nodes
	// contribute both their old and new kind.
	touchedKinds := map[string]bool{}
	newKind := map[graph.NodeID]string{}
	for _, id := range st.AddedNodes {
		k := nv.Features(id)["kind"]
		newKind[id] = k
		touchedKinds[k] = true
	}
	for _, id := range st.UpdatedNodes {
		oldK := old.Features(id)["kind"]
		k := nv.Features(id)["kind"]
		newKind[id] = k
		if k != oldK {
			touchedKinds[oldK] = true
			touchedKinds[k] = true
		}
	}
	for _, id := range st.RemovedNodes {
		touchedKinds[old.Features(id)["kind"]] = true
		newKind[id] = ""
	}
	delete(touchedKinds, "")
	nv.byKind = make(map[string][]graph.NodeID, len(old.byKind))
	for k, ids := range old.byKind {
		if !touchedKinds[k] {
			nv.byKind[k] = ids
		}
	}
	for k := range touchedKinds {
		var ids []graph.NodeID
		for _, id := range old.byKind[k] {
			if nk, changed := newKind[id]; changed && nk != k {
				continue
			}
			ids = append(ids, id)
		}
		for id, nk := range newKind {
			if nk == k && !contains(old.byKind[k], id) {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if len(ids) > 0 {
			nv.byKind[k] = ids
		}
	}

	// Name and attr secondary indexes: the same recompute-touched-postings
	// scheme as the kind index, via the generic helper (a node has at most
	// one name key but many attr pairs).
	nv.byName = patchPostings(old.byName, old, nv, st, func(f graph.Features) []intern.Sym {
		if n := f["name"]; n != "" {
			return []intern.Sym{intern.S(n)}
		}
		return nil
	})
	nv.byAttr = patchPostings(old.byAttr, old, nv, st, attrPairs)

	// Adjacency: clone the map headers, copy-on-write the slices of the
	// endpoints the patch touched.
	nv.out = make(map[graph.NodeID][]Neighbor, len(old.out))
	for id, ns := range old.out {
		nv.out[id] = ns
	}
	nv.in = make(map[graph.NodeID][]Neighbor, len(old.in))
	for id, ns := range old.in {
		nv.in[id] = ns
	}
	cowOut := map[graph.NodeID]bool{}
	cowIn := map[graph.NodeID]bool{}
	outSlice := func(id graph.NodeID) []Neighbor {
		if !cowOut[id] {
			cowOut[id] = true
			nv.out[id] = append([]Neighbor(nil), nv.out[id]...)
		}
		return nv.out[id]
	}
	inSlice := func(id graph.NodeID) []Neighbor {
		if !cowIn[id] {
			cowIn[id] = true
			nv.in[id] = append([]Neighbor(nil), nv.in[id]...)
		}
		return nv.in[id]
	}
	nv.edges = old.edges
	for _, eid := range st.RemovedEdges {
		nv.out[eid.From] = removeNeighbor(outSlice(eid.From), eid.To)
		nv.in[eid.To] = removeNeighbor(inSlice(eid.To), eid.From)
		nv.edges--
	}
	for _, e := range st.AddedEdges {
		nv.out[e.From] = insertNeighbor(outSlice(e.From), Neighbor{To: e.To, Label: e.Label})
		nv.in[e.To] = insertNeighbor(inSlice(e.To), Neighbor{To: e.From, Label: e.Label})
		nv.edges++
	}

	// Reachability memos: closures only change where the dirty region can
	// reach them. An added edge u->v staleness-taints the forward memos of
	// everything that reaches u and the backward memos of everything v
	// reaches; removals (rare: hide-mode visibility downgrades) drop all.
	old.mu.Lock()
	oldFwd := old.fwdReach
	oldBack := old.backReach
	sampleFwd := make(map[graph.NodeID][]graph.NodeID, len(oldFwd))
	for k, vv := range oldFwd {
		sampleFwd[k] = vv
	}
	sampleBack := make(map[graph.NodeID][]graph.NodeID, len(oldBack))
	for k, vv := range oldBack {
		sampleBack[k] = vv
	}
	old.mu.Unlock()
	if len(sampleFwd) == 0 && len(sampleBack) == 0 {
		// Nothing memoised: skip the staleness scans entirely.
		nv.fwdReach = map[graph.NodeID][]graph.NodeID{}
		nv.backReach = map[graph.NodeID][]graph.NodeID{}
		return
	}
	if len(st.RemovedEdges) > 0 || len(st.RemovedNodes) > 0 ||
		len(st.AddedEdges) > memoDropAllThreshold {
		nv.fwdReach = map[graph.NodeID][]graph.NodeID{}
		nv.backReach = map[graph.NodeID][]graph.NodeID{}
		return
	}
	staleFwd := map[graph.NodeID]bool{}
	staleBack := map[graph.NodeID]bool{}
	for _, e := range st.AddedEdges {
		staleFwd[e.From] = true
		for id := range nv.acct.Graph.Reachable(e.From, graph.Backward) {
			staleFwd[id] = true
		}
		staleBack[e.To] = true
		for id := range nv.acct.Graph.Reachable(e.To, graph.Forward) {
			staleBack[id] = true
		}
	}
	nv.fwdReach = map[graph.NodeID][]graph.NodeID{}
	for id, r := range sampleFwd {
		if !staleFwd[id] {
			nv.fwdReach[id] = r
		}
	}
	nv.backReach = map[graph.NodeID][]graph.NodeID{}
	for id, r := range sampleBack {
		if !staleBack[id] {
			nv.backReach[id] = r
		}
	}
}

// patchPostings derives a successor view's posting map from the old
// view's, copy-on-write: only the keys whose membership the maintenance
// stats could have changed are recomputed (old postings minus departures
// plus arrivals, re-sorted); every untouched posting list is shared with
// the old view. keysOf maps a node's released features to its index keys.
func patchPostings[K comparable](oldIdx map[K][]graph.NodeID, old, nv *View,
	st account.MaintainStats, keysOf func(graph.Features) []K) map[K][]graph.NodeID {
	touched := map[K]bool{}
	newKeys := map[graph.NodeID]map[K]bool{}
	setOf := func(ks []K) map[K]bool {
		if len(ks) == 0 {
			return nil
		}
		m := make(map[K]bool, len(ks))
		for _, k := range ks {
			m[k] = true
		}
		return m
	}
	for _, id := range st.AddedNodes {
		ks := setOf(keysOf(nv.Features(id)))
		newKeys[id] = ks
		for k := range ks {
			touched[k] = true
		}
	}
	for _, id := range st.UpdatedNodes {
		oldKs := setOf(keysOf(old.Features(id)))
		ks := setOf(keysOf(nv.Features(id)))
		newKeys[id] = ks
		for k := range oldKs {
			if !ks[k] {
				touched[k] = true
			}
		}
		for k := range ks {
			if !oldKs[k] {
				touched[k] = true
			}
		}
	}
	for _, id := range st.RemovedNodes {
		for _, k := range keysOf(old.Features(id)) {
			touched[k] = true
		}
		newKeys[id] = nil
	}

	out := make(map[K][]graph.NodeID, len(oldIdx))
	for k, ids := range oldIdx {
		if !touched[k] {
			out[k] = ids
		}
	}
	for k := range touched {
		var ids []graph.NodeID
		for _, id := range oldIdx[k] {
			if ks, changed := newKeys[id]; changed && !ks[k] {
				continue
			}
			ids = append(ids, id)
		}
		for id, ks := range newKeys {
			if ks[k] && !contains(oldIdx[k], id) {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if len(ids) > 0 {
			out[k] = ids
		}
	}
	return out
}

func contains(ids []graph.NodeID, id graph.NodeID) bool {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	return i < len(ids) && ids[i] == id
}

// insertNeighbor inserts nb into a slice sorted by To, keeping it sorted.
func insertNeighbor(ns []Neighbor, nb Neighbor) []Neighbor {
	i := sort.Search(len(ns), func(i int) bool { return ns[i].To >= nb.To })
	ns = append(ns, Neighbor{})
	copy(ns[i+1:], ns[i:])
	ns[i] = nb
	return ns
}

// removeNeighbor removes the entry with the given far endpoint.
func removeNeighbor(ns []Neighbor, to graph.NodeID) []Neighbor {
	i := sort.Search(len(ns), func(i int) bool { return ns[i].To >= to })
	if i < len(ns) && ns[i].To == to {
		return append(ns[:i], ns[i+1:]...)
	}
	return ns
}

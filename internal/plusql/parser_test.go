package plusql

import (
	"strings"
	"testing"
)

func TestParseBareQuery(t *testing.T) {
	q, err := Parse(`ancestor*(X, "report"), kind(X, data) limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 {
		t.Fatalf("atoms = %d, want 2", len(q.Atoms))
	}
	if q.Atoms[0].Pred != PredAncestorT {
		t.Errorf("pred = %q, want ancestor*", q.Atoms[0].Pred)
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d, want 10", q.Limit)
	}
	if got := q.Projection(); len(got) != 1 || got[0] != "X" {
		t.Errorf("projection = %v, want [X]", got)
	}
	// Bare identifier and quoted string constants are interchangeable.
	if q.Atoms[1].Args[1].IsVar || q.Atoms[1].Args[1].Text != "data" {
		t.Errorf("kind constant = %+v", q.Atoms[1].Args[1])
	}
}

func TestParseHeadProjection(t *testing.T) {
	q, err := Parse(`ans(Y) :- edge(X, Y, "input-to"), kind(X, invocation)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.HeadName != "ans" {
		t.Errorf("head name = %q", q.HeadName)
	}
	if got := q.Projection(); len(got) != 1 || got[0] != "Y" {
		t.Errorf("projection = %v, want [Y]", got)
	}
	if got := q.Vars(); len(got) != 2 {
		t.Errorf("vars = %v, want [X Y]", got)
	}
}

func TestParseRoundTripString(t *testing.T) {
	src := `ans(X) :- attr(X, "owner", "alice \"a\""), node(X) limit 3`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip: %q != %q", q2.String(), q.String())
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		src     string
		wantPos string
		wantMsg string
	}{
		{`frobnicate(X)`, "1:1", "unknown predicate"},
		{`kind(X)`, "1:1", "takes"},
		{`kind(X, Y)`, "1:9", "must be a constant"},
		{`node(X`, "1:7", "expected ')'"},
		{`node(X) limit 0`, "1:15", "limit must be positive"},
		{`node(X) garbage`, "1:9", "unexpected"},
		{`ans(X) :- node(Y)`, "1:5", "does not appear in the body"},
		{`ans("c") :- node(X)`, "1:5", "must be a variable"},
		{`node(X), edge(X, "unterminated`, "1:18", "unterminated string"},
		{`node(⊥!)`, "1:6", "unexpected character"},
		{`node(X) :`, "1:9", "end of query"},
		{``, "1:1", "expected"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q): no error", tc.src)
			continue
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("Parse(%q): error %T is not *ParseError: %v", tc.src, err, err)
			continue
		}
		if pe.Pos.String() != tc.wantPos {
			t.Errorf("Parse(%q): pos = %s, want %s (%v)", tc.src, pe.Pos, tc.wantPos, err)
		}
		if !strings.Contains(pe.Msg, tc.wantMsg) {
			t.Errorf("Parse(%q): msg = %q, want contains %q", tc.src, pe.Msg, tc.wantMsg)
		}
	}
}

func TestParseMultiline(t *testing.T) {
	q, err := Parse("node(X),\n  kind(X, data)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[1].Pos.Line != 2 || q.Atoms[1].Pos.Col != 3 {
		t.Errorf("second atom at %s, want 2:3", q.Atoms[1].Pos)
	}
	if _, err := Parse("node(X),\n  bogus(X)"); err == nil {
		t.Fatal("no error for unknown predicate")
	} else if pe := err.(*ParseError); pe.Pos.Line != 2 {
		t.Errorf("error at %s, want line 2", pe.Pos)
	}
}

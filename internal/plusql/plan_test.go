package plusql

import (
	"strings"
	"testing"
)

// testStats is a fixed cardinality profile: 1000 nodes, 2500 edges, 400
// data / 100 invocation, so ordering decisions are deterministic.
var testStats = Stats{
	Nodes: 1000,
	Edges: 2500,
	ByKind: map[string]int{
		"data":       400,
		"invocation": 100,
	},
}

func compilePlan(t *testing.T, src string, naive bool) *Plan {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q, testStats, naive)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlanGolden pins the planner's atom ordering and pushdown on
// representative query shapes.
func TestPlanGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			// The headline motif: a filter written first must not run
			// first. The closure is anchored on a constant, so it becomes
			// the generator and the kind filter is pushed into it.
			name: "closure_before_scan",
			src:  `kind(X, data), ancestor*(X, "t") limit 10`,
			want: "plan (planned):\n" +
				"  1. expand X via ancestor*(X, \"t\") push[kind(X, \"data\")] (est 250)\n" +
				"  limit 10\n" +
				"  project X\n",
		},
		{
			// Selective kind index (invocation: 100) wins over the wider
			// data index (400); the edge atom joins off the bound var and
			// the remaining kind filter is pushed into the expansion.
			name: "index_selectivity_order",
			src:  `kind(X, data), kind(Y, invocation), edge(Y, X)`,
			want: "plan (planned):\n" +
				"  1. scan Y [kind=invocation] (est 100)\n" +
				"  2. expand X via edge(Y, X) push[kind(X, \"data\")] (est 2.5)\n" +
				"  project X, Y\n",
		},
		{
			// Attribute filters on a scan variable collapse into one
			// index scan with pushed predicates: the kind atom is the
			// cheapest generator, and node()/attr()/name() fold into it.
			name: "attr_pushdown",
			src:  `node(X), attr(X, "owner", "alice"), kind(X, data), name(X, "raw")`,
			want: "plan (planned):\n" +
				"  1. scan X [kind=data] push[attr(X, \"owner\", \"alice\"); name(X, \"raw\")] (est 400)\n" +
				"  project X\n",
		},
		{
			// Checks (all node args constant) run before any generator.
			name: "checks_first",
			src:  `node(X), edge("a", "b")`,
			want: "plan (planned):\n" +
				"  1. check edge(\"a\", \"b\") (est 1)\n" +
				"  2. scan X via node(X) (est 1000)\n" +
				"  project X\n",
		},
		{
			// Two closure atoms: the constant-anchored one runs first;
			// the second becomes a bound-side check, not a pair scan.
			name: "closure_chain",
			src:  `ancestor*(X, "t"), ancestor*("s", X)`,
			want: "plan (planned):\n" +
				"  1. expand X via ancestor*(X, \"t\") (est 250)\n" +
				"  2. check ancestor*(\"s\", X) (est 1)\n" +
				"  project X\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := compilePlan(t, tc.src, false).Explain()
			if got != tc.want {
				t.Errorf("plan for %q:\n%s\nwant:\n%s", tc.src, got, tc.want)
			}
		})
	}
}

// TestPlanNaiveGolden pins the naive baseline: source order, full scans,
// no pushdown.
func TestPlanNaiveGolden(t *testing.T) {
	got := compilePlan(t, `kind(X, data), ancestor*(X, "t") limit 10`, true).Explain()
	want := "plan (naive):\n" +
		"  1. scan X via kind(X, \"data\") push[kind(X, \"data\")] (est 1000)\n" +
		"  2. check ancestor*(X, \"t\") (est 1)\n" +
		"  limit 10\n" +
		"  project X\n"
	if got != want {
		t.Errorf("naive plan:\n%s\nwant:\n%s", got, want)
	}
}

// TestPlanAvoidsPairScanWhenBindable: a pair scan only appears when the
// query genuinely forces one.
func TestPlanAvoidsPairScanWhenBindable(t *testing.T) {
	p := compilePlan(t, `edge(X, Y), kind(X, data)`, false)
	for _, s := range p.Steps {
		if s.Kind == StepScanPair {
			return // edge(X, Y) with nothing bound is legitimately a pair scan
		}
	}
	// The planner chose scan+expand: first step must be the kind scan.
	if p.Steps[0].Kind != StepScan || p.Steps[0].ScanKind != "data" {
		t.Errorf("expected kind-index scan first:\n%s", p.Explain())
	}
}

// TestPlanPairScanForced: a lone two-unbound edge atom is a pair scan.
func TestPlanPairScanForced(t *testing.T) {
	p := compilePlan(t, `edge(X, Y)`, false)
	if len(p.Steps) != 1 || p.Steps[0].Kind != StepScanPair {
		t.Errorf("want a single pair scan:\n%s", p.Explain())
	}
}

// TestPlanExplainStable guards that Explain is deterministic (golden
// tests depend on it).
func TestPlanExplainStable(t *testing.T) {
	src := `kind(X, data), attr(X, "a", "1"), attr(X, "b", "2"), ancestor*(X, "t")`
	first := compilePlan(t, src, false).Explain()
	for i := 0; i < 10; i++ {
		if got := compilePlan(t, src, false).Explain(); got != first {
			t.Fatalf("Explain unstable:\n%s\nvs\n%s", got, first)
		}
	}
	if !strings.Contains(first, "push[") {
		t.Errorf("expected pushdown in:\n%s", first)
	}
}

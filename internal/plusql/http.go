package plusql

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/plus"
	"repro/internal/privilege"
)

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Query is the PLUSQL source text.
	Query string `json:"query"`
	// Viewer is the consumer's privilege-predicate (default Public).
	Viewer string `json:"viewer,omitempty"`
	// Mode is "surrogate" (default) or "hide".
	Mode string `json:"mode,omitempty"`
	// Limit caps result rows in addition to the query's own limit.
	Limit int `json:"limit,omitempty"`
	// Explain attaches the executed plan to the response.
	Explain bool `json:"explain,omitempty"`
}

// QueryResponse is the answer to POST /v1/query.
type QueryResponse struct {
	Query  string      `json:"query"`
	Viewer string      `json:"viewer"`
	Mode   string      `json:"mode"`
	Vars   []string    `json:"vars"`
	Rows   [][]Binding `json:"rows"`
	// Truncated reports that more rows were available than returned —
	// the request's limit (or the server's cap) cut the enumeration
	// short. The query's own in-text "limit" never sets it.
	Truncated bool      `json:"truncated,omitempty"`
	Plan      string    `json:"plan,omitempty"`
	Stats     ExecStats `json:"stats"`
	// Phases is the engine's per-phase timing decomposition.
	Phases *PhaseTimings `json:"phases,omitempty"`
	TookUS int64         `json:"tookUs"`
}

// serverMaxRows bounds response sizes for unlimited queries over big
// stores; clients page with explicit limits.
const serverMaxRows = 10000

// maxQueryBytes bounds POST /v1/query bodies; query text is tiny.
const maxQueryBytes = 1 << 16

// NewHandler serves PLUSQL over HTTP: POST /v1/query with a QueryRequest
// body. Errors are the API's standard {"error": ...} JSON; parse errors
// carry their line:column position in the message. The handler is
// unauthorized on its own; Attach mounts it behind the plus server's
// capability middleware.
func NewHandler(e *Engine) http.Handler { return newV1Handler(e, nil) }

// newV1Handler builds the v1 query handler with an optional authorizer
// for the body's client-asserted viewer (Attach wires the plus server's
// capability middleware through it).
func newV1Handler(e *Engine, authorize func(*http.Request, privilege.Predicate) *plus.APIError) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			plus.MethodNotAllowed(w, http.MethodPost)
			return
		}
		var req QueryRequest
		if err := plus.DecodeJSONBody(w, r, maxQueryBytes, &req); err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		viewer := privilege.Predicate(req.Viewer)
		if authorize != nil {
			if apiErr := authorize(r, viewer); apiErr != nil {
				plus.WriteAPIError(w, apiErr)
				return
			}
		}
		serveQuery(w, r, e, req, viewer, nil)
	})
}

// NewV2Handler serves PLUSQL as POST /v2/query: the same request body
// minus the viewer, which travels as the request principal (X-Plus-Viewer
// header or session token) and is validated by the plus server. Errors
// use the v2 structured body.
func NewV2Handler(s *plus.Server, e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			plus.MethodNotAllowed(w, http.MethodPost)
			return
		}
		p, apiErr := s.Authorize(r, plus.CapQuery)
		if apiErr != nil {
			plus.WriteAPIError(w, apiErr)
			return
		}
		viewer := p.Viewer
		var req QueryRequest
		if err := plus.DecodeJSONBody(w, r, maxQueryBytes, &req); err != nil {
			plus.WriteAPIError(w, &plus.APIError{
				Status: http.StatusBadRequest, Code: plus.CodeBadRequest, Message: err.Error()})
			return
		}
		if req.Viewer != "" {
			plus.WriteAPIError(w, &plus.APIError{
				Status: http.StatusBadRequest, Code: plus.CodeBadRequest,
				Message: "plusql: v2 carries the viewer in the " + plus.HeaderViewer + " header or a session, not the request body"})
			return
		}
		serveQuery(w, r, e, req, viewer, func(status int, err error) {
			code := plus.CodeBadRequest
			switch status {
			case http.StatusInternalServerError:
				code = plus.CodeInternal
			case http.StatusServiceUnavailable:
				code = plus.CodeUnavailable
			}
			plus.WriteAPIError(w, &plus.APIError{Status: status, Code: code, Message: err.Error()})
		})
	})
}

// serveQuery runs one decoded query request for an already-resolved
// viewer and writes the response; writeErr overrides the error rendering
// (nil means the v1 {"error": ...} body).
func serveQuery(w http.ResponseWriter, r *http.Request, e *Engine, req QueryRequest, viewer privilege.Predicate, writeErr func(int, error)) {
	if writeErr == nil {
		writeErr = func(status int, err error) { writeQueryError(w, status, err) }
	}
	if req.Query == "" {
		writeErr(http.StatusBadRequest, fmt.Errorf("plusql: empty query"))
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > serverMaxRows {
		limit = serverMaxRows
	}
	t0 := time.Now()
	// Ask for one row beyond the cap so a full page is
	// distinguishable from a truncated one.
	rs, err := e.QueryContext(r.Context(), req.Query, Options{
		Viewer:  viewer,
		Mode:    plus.Mode(req.Mode),
		MaxRows: limit + 1,
		Explain: req.Explain,
	})
	if err != nil {
		// Request faults are 400; backend/materialisation faults are
		// the server's problem.
		status := http.StatusInternalServerError
		switch {
		case IsClientError(err):
			status = http.StatusBadRequest
		case errors.Is(err, plus.ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeErr(status, err)
		return
	}
	respViewer := string(viewer)
	if respViewer == "" {
		respViewer = string(privilege.Public)
	}
	mode := req.Mode
	if mode == "" {
		mode = string(plus.ModeSurrogate)
	}
	truncated := false
	if len(rs.Rows) > limit {
		rs.Rows = rs.Rows[:limit]
		rs.Stats.Rows = limit
		truncated = true
	}
	resp := QueryResponse{
		Query:     req.Query,
		Viewer:    respViewer,
		Mode:      mode,
		Vars:      rs.Vars,
		Rows:      rs.Rows,
		Truncated: truncated,
		Plan:      rs.Plan,
		Stats:     rs.Stats,
		Phases:    rs.Phases,
		TookUS:    time.Since(t0).Microseconds(),
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(resp)
}

func writeQueryError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// Attach mounts the query endpoints (v1 and principal-scoped v2) on a
// plus server, wires the view-cache counters into its healthz payload,
// and — when the server is observable — instruments the engine
// (plus_plusql_seconds{phase}, slow-query capture) and exposes the
// view-cache counters as plus_query_view_* metrics.
func Attach(s *plus.Server, e *Engine) {
	s.Handle("/v1/query", newV1Handler(e, func(r *http.Request, asserted privilege.Predicate) *plus.APIError {
		return s.AuthorizeAsserted(r, plus.CapQuery, asserted)
	}))
	s.Handle("/v2/query", NewV2Handler(s, e))
	s.SetQueryStats(func() plus.QueryCacheHealth {
		st := e.CacheStats()
		return plus.QueryCacheHealth{
			Views:           st.Views,
			Hits:            st.Hits,
			Misses:          st.Misses,
			Advanced:        st.Advanced,
			AdvanceRebuilds: st.AdvanceRebuilds,
			FullBuilds:      st.FullBuilds,
			Fallbacks:       st.Fallbacks,
		}
	})
	o := s.Observability()
	e.SetObservability(o)
	if reg := o.Registry(); reg != nil {
		reg.GaugeFunc("plus_query_view_cache_entries",
			"Live cached protected views.",
			func() float64 { return float64(e.CacheStats().Views) })
		reg.CounterFunc("plus_query_view_hits_total",
			"Protected-view cache hits.",
			func() float64 { return float64(e.CacheStats().Hits) })
		reg.CounterFunc("plus_query_view_misses_total",
			"Protected-view cache misses.",
			func() float64 { return float64(e.CacheStats().Misses) })
		reg.CounterFunc("plus_query_view_advanced_total",
			"Views refreshed in place by a change-feed delta.",
			func() float64 { return float64(e.CacheStats().Advanced) })
		reg.CounterFunc("plus_query_view_full_builds_total",
			"Views built from scratch off a snapshot.",
			func() float64 { return float64(e.CacheStats().FullBuilds) })
		reg.CounterFunc("plus_query_view_fallbacks_total",
			"Advance attempts abandoned for a full build.",
			func() float64 { return float64(e.CacheStats().Fallbacks) })
	}
}

// ClientQuery runs one PLUSQL query against a remote plusd server through
// the standard plus client.
func ClientQuery(c *plus.Client, req QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.PostJSON("/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

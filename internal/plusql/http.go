package plusql

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/plus"
	"repro/internal/privilege"
)

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Query is the PLUSQL source text.
	Query string `json:"query"`
	// Viewer is the consumer's privilege-predicate (default Public).
	Viewer string `json:"viewer,omitempty"`
	// Mode is "surrogate" (default) or "hide".
	Mode string `json:"mode,omitempty"`
	// Limit caps result rows in addition to the query's own limit.
	Limit int `json:"limit,omitempty"`
	// Explain attaches the executed plan to the response.
	Explain bool `json:"explain,omitempty"`
}

// QueryResponse is the answer to POST /v1/query.
type QueryResponse struct {
	Query  string      `json:"query"`
	Viewer string      `json:"viewer"`
	Mode   string      `json:"mode"`
	Vars   []string    `json:"vars"`
	Rows   [][]Binding `json:"rows"`
	// Truncated reports that more rows were available than returned —
	// the request's limit (or the server's cap) cut the enumeration
	// short. The query's own in-text "limit" never sets it.
	Truncated bool      `json:"truncated,omitempty"`
	Plan      string    `json:"plan,omitempty"`
	Stats     ExecStats `json:"stats"`
	TookUS    int64     `json:"tookUs"`
}

// serverMaxRows bounds response sizes for unlimited queries over big
// stores; clients page with explicit limits.
const serverMaxRows = 10000

// maxQueryBytes bounds POST /v1/query bodies; query text is tiny.
const maxQueryBytes = 1 << 16

// NewHandler serves PLUSQL over HTTP: POST /v1/query with a QueryRequest
// body. Errors are the API's standard {"error": ...} JSON; parse errors
// carry their line:column position in the message.
func NewHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			plus.MethodNotAllowed(w, http.MethodPost)
			return
		}
		var req QueryRequest
		if err := plus.DecodeJSONBody(w, r, maxQueryBytes, &req); err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		if req.Query == "" {
			writeQueryError(w, http.StatusBadRequest, fmt.Errorf("plusql: empty query"))
			return
		}
		limit := req.Limit
		if limit <= 0 || limit > serverMaxRows {
			limit = serverMaxRows
		}
		t0 := time.Now()
		// Ask for one row beyond the cap so a full page is
		// distinguishable from a truncated one.
		rs, err := e.Query(req.Query, Options{
			Viewer:  privilege.Predicate(req.Viewer),
			Mode:    plus.Mode(req.Mode),
			MaxRows: limit + 1,
			Explain: req.Explain,
		})
		if err != nil {
			// Request faults are 400; backend/materialisation faults are
			// the server's problem.
			status := http.StatusInternalServerError
			switch {
			case IsClientError(err):
				status = http.StatusBadRequest
			case errors.Is(err, plus.ErrClosed):
				status = http.StatusServiceUnavailable
			}
			writeQueryError(w, status, err)
			return
		}
		viewer := req.Viewer
		if viewer == "" {
			viewer = string(privilege.Public)
		}
		mode := req.Mode
		if mode == "" {
			mode = string(plus.ModeSurrogate)
		}
		truncated := false
		if len(rs.Rows) > limit {
			rs.Rows = rs.Rows[:limit]
			rs.Stats.Rows = limit
			truncated = true
		}
		resp := QueryResponse{
			Query:     req.Query,
			Viewer:    viewer,
			Mode:      mode,
			Vars:      rs.Vars,
			Rows:      rs.Rows,
			Truncated: truncated,
			Plan:      rs.Plan,
			Stats:     rs.Stats,
			TookUS:    time.Since(t0).Microseconds(),
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(resp)
	})
}

func writeQueryError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// Attach mounts the query endpoint on a plus server and wires the
// view-cache counters into its healthz payload.
func Attach(s *plus.Server, e *Engine) {
	s.Handle("/v1/query", NewHandler(e))
	s.SetQueryStats(func() plus.QueryCacheHealth {
		st := e.CacheStats()
		return plus.QueryCacheHealth{
			Views:           st.Views,
			Hits:            st.Hits,
			Misses:          st.Misses,
			Advanced:        st.Advanced,
			AdvanceRebuilds: st.AdvanceRebuilds,
			FullBuilds:      st.FullBuilds,
			Fallbacks:       st.Fallbacks,
		}
	})
}

// ClientQuery runs one PLUSQL query against a remote plusd server through
// the standard plus client.
func ClientQuery(c *plus.Client, req QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.PostJSON("/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

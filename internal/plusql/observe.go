package plusql

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/plus"
)

// PhaseTimings is the per-phase cost decomposition of one query
// evaluation, in microseconds: parse (source text to AST), view
// (protected-view lookup/advance/build), plan (compile + reorder),
// exec (the backtracking join). It rides on ResultSet/QueryResponse so
// clients can see where a slow query spent its time without server
// access, and feeds the plus_plusql_seconds{phase} histograms and the
// slow-query log.
type PhaseTimings struct {
	ParseUS int64 `json:"parseUs"`
	ViewUS  int64 `json:"viewUs"`
	PlanUS  int64 `json:"planUs"`
	ExecUS  int64 `json:"execUs"`
	TotalUS int64 `json:"totalUs"`
	// ViewCacheHit reports the protected view was served from the cache
	// at the current revision (advances and full builds are misses).
	ViewCacheHit bool `json:"viewCacheHit"`
}

// queryTiming carries the evaluation's raw durations between runTimed
// and the telemetry sink at nanosecond precision; PhaseTimings is its
// rounded-to-µs response rendering.
type queryTiming struct {
	parse, view, plan, exec, total time.Duration
	viewHit                        bool
	rows                           int
}

func (t queryTiming) phases() *PhaseTimings {
	return &PhaseTimings{
		ParseUS:      t.parse.Microseconds(),
		ViewUS:       t.view.Microseconds(),
		PlanUS:       t.plan.Microseconds(),
		ExecUS:       t.exec.Microseconds(),
		TotalUS:      t.total.Microseconds(),
		ViewCacheHit: t.viewHit,
	}
}

// queryObs is the engine's telemetry bundle: the per-phase latency
// histograms plus the server's shared slow-query sink.
type queryObs struct {
	o     *plus.Observability
	phase *obs.HistogramVec // parse / view / plan / exec / total
}

// SetObservability instruments the engine: per-phase latency histograms
// (plus_plusql_seconds{phase}) and slow-query capture through o's ring.
// Passing nil uninstruments. Attach wires this automatically; call it
// directly only for engines serving without a plus server.
func (e *Engine) SetObservability(o *plus.Observability) {
	if o == nil || (o.Registry() == nil && o.SlowQueryLog() == nil) {
		// Nothing would record: keep the hot path hook-free.
		e.obsHooks.Store(nil)
		return
	}
	e.obsHooks.Store(&queryObs{
		o: o,
		phase: o.Registry().HistogramVec("plus_plusql_seconds",
			"PLUSQL query latency by phase (parse/view/plan/exec/total).", obs.ScaleNanos, "phase"),
	})
}

// observe records one successful query evaluation's telemetry.
func (e *Engine) observe(ctx context.Context, text string, viewer string, t queryTiming) {
	h := e.obsHooks.Load()
	if h == nil {
		return
	}
	h.phase.With("parse").Observe(t.parse.Nanoseconds())
	h.phase.With("view").Observe(t.view.Nanoseconds())
	h.phase.With("plan").Observe(t.plan.Nanoseconds())
	h.phase.With("exec").Observe(t.exec.Nanoseconds())
	h.phase.With("total").Observe(t.total.Nanoseconds())
	if h.o.SlowQueryLog().Eligible(t.total) {
		h.o.RecordSlowQuery(obs.SlowEntry{
			RequestID: obs.RequestID(ctx),
			Kind:      "plusql",
			Query:     text,
			Viewer:    viewer,
			TotalUS:   t.total.Microseconds(),
			Phases: []obs.Phase{
				{Name: "parse", US: t.parse.Microseconds()},
				{Name: "view", US: t.view.Microseconds()},
				{Name: "plan", US: t.plan.Microseconds()},
				{Name: "exec", US: t.exec.Microseconds()},
			},
			CacheHit: t.viewHit,
			Rows:     t.rows,
		})
	}
}

package plusql

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/plus"
	"repro/internal/privilege"
)

// exampleBackend builds the running-example store:
//
//	d -> a -> p -> b      p: invocation, Lowest Protected, surrogate p~
//	     c ------> b      c: Lowest Protected, Protect hide (no surrogate)
//
// A Public consumer's protected account is d -> a -> p~ -> b: p appears
// only as its surrogate, c not at all.
func exampleBackend(t testing.TB) plus.Backend {
	t.Helper()
	b := plus.NewMemBackend(0)
	t.Cleanup(func() { b.Close() })
	objs := []plus.Object{
		{ID: "a", Kind: plus.Data, Name: "raw", Features: map[string]string{"owner": "alice"}},
		{ID: "b", Kind: plus.Data, Name: "report", Features: map[string]string{"owner": "alice"}},
		{ID: "c", Kind: plus.Data, Name: "secret-src", Lowest: "Protected", Protect: "hide"},
		{ID: "d", Kind: plus.Data, Name: "field-data", Features: map[string]string{"owner": "bob"}},
		{ID: "p", Kind: plus.Invocation, Name: "classified-process", Lowest: "Protected"},
	}
	for _, o := range objs {
		if err := b.PutObject(o); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []plus.Edge{
		{From: "d", To: "a", Label: "input-to"},
		{From: "a", To: "p", Label: "input-to"},
		{From: "p", To: "b", Label: "generated"},
		{From: "c", To: "b", Label: "input-to"},
	} {
		if err := b.PutEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.PutSurrogate(plus.SurrogateSpec{
		ForID: "p", ID: "p~", Name: "a process", InfoScore: 0.5,
		Features: map[string]string{"kind": "invocation"},
	}); err != nil {
		t.Fatal(err)
	}
	return b
}

func ids(t *testing.T, rs *ResultSet, v string) []string {
	t.Helper()
	col := -1
	for i, name := range rs.Vars {
		if name == v {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("var %s not in result vars %v", v, rs.Vars)
	}
	var out []string
	for _, row := range rs.Rows {
		out = append(out, row[col].ID)
	}
	sort.Strings(out)
	return out
}

func strEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQueryPublicViewerTraversesSurrogates(t *testing.T) {
	e := NewEngine(exampleBackend(t), privilege.TwoLevel())

	rs, err := e.Query(`ancestor*(X, "b")`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ids(t, rs, "X"), []string{"a", "d", "p~"}; !strEq(got, want) {
		t.Errorf("Public ancestors of b = %v, want %v", got, want)
	}
	for _, row := range rs.Rows {
		if row[0].ID == "p~" && !row[0].Surrogate {
			t.Errorf("p~ not flagged as surrogate: %+v", row[0])
		}
	}

	// The protected original and the hidden node never appear, and the
	// surrogate's features are the provider-released ones.
	rs, err = e.Query(`node(X)`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rs.Rows {
		switch row[0].ID {
		case "p", "c":
			t.Errorf("policy leak: %s visible to Public", row[0].ID)
		case "p~":
			if row[0].Name != "a process" {
				t.Errorf("surrogate name = %q, want provider-released", row[0].Name)
			}
		}
	}
}

func TestQueryProtectedViewerSeesOriginals(t *testing.T) {
	e := NewEngine(exampleBackend(t), privilege.TwoLevel())
	rs, err := e.Query(`ancestor*(X, "b")`, Options{Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ids(t, rs, "X"), []string{"a", "c", "d", "p"}; !strEq(got, want) {
		t.Errorf("Protected ancestors of b = %v, want %v", got, want)
	}
}

// TestQueryParityWithVerifiedAccount is the acceptance check: Public
// query bindings coincide exactly with the account.Verify-checked
// protected account the Surrogate Generation Algorithm produces.
func TestQueryParityWithVerifiedAccount(t *testing.T) {
	b := exampleBackend(t)
	lat := privilege.TwoLevel()
	e := NewEngine(b, lat)

	sn, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := plus.SpecFromSnapshot(sn, lat)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := account.Generate(spec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	if err := account.VerifySound(spec, acct); err != nil {
		t.Fatalf("reference account unsound: %v", err)
	}
	if err := account.VerifyMaximal(spec, acct); err != nil {
		t.Fatalf("reference account not maximal: %v", err)
	}

	// node(X) must enumerate exactly the verified account's nodes.
	rs, err := e.Query(`node(X)`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, id := range acct.Graph.Nodes() {
		want = append(want, string(id))
	}
	sort.Strings(want)
	if got := ids(t, rs, "X"); !strEq(got, want) {
		t.Errorf("node(X) = %v, want verified account nodes %v", got, want)
	}

	// edge(X, Y) must enumerate exactly the verified account's edges.
	rs, err = e.Query(`edge(X, Y)`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var gotEdges, wantEdges []string
	for _, row := range rs.Rows {
		gotEdges = append(gotEdges, row[0].ID+"->"+row[1].ID)
	}
	for _, ge := range acct.Graph.Edges() {
		wantEdges = append(wantEdges, string(ge.From)+"->"+string(ge.To))
	}
	sort.Strings(gotEdges)
	sort.Strings(wantEdges)
	if !strEq(gotEdges, wantEdges) {
		t.Errorf("edge(X, Y) = %v, want verified account edges %v", gotEdges, wantEdges)
	}

	// ancestor* must match reachability in the verified account graph.
	for _, target := range acct.Graph.Nodes() {
		rs, err := e.Query(fmt.Sprintf("ancestor*(X, %q)", target), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var wantAnc []string
		for id := range acct.Graph.Reachable(target, graph.Backward) {
			wantAnc = append(wantAnc, string(id))
		}
		sort.Strings(wantAnc)
		got := ids(t, rs, "X")
		if !strEq(got, wantAnc) {
			t.Errorf("ancestor*(X, %s) = %v, want %v", target, got, wantAnc)
		}
	}
}

func TestQueryHideModeMatchesGenerateHide(t *testing.T) {
	b := exampleBackend(t)
	lat := privilege.TwoLevel()
	e := NewEngine(b, lat)

	sn, _ := b.Snapshot()
	spec, err := plus.SpecFromSnapshot(sn, lat)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := account.GenerateHide(spec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := e.Query(`node(X)`, Options{Mode: plus.ModeHide})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, id := range acct.Graph.Nodes() {
		want = append(want, string(id))
	}
	sort.Strings(want)
	if got := ids(t, rs, "X"); !strEq(got, want) {
		t.Errorf("hide-mode node(X) = %v, want %v", got, want)
	}
}

func TestQueryPredicates(t *testing.T) {
	e := NewEngine(exampleBackend(t), privilege.TwoLevel())
	cases := []struct {
		src  string
		v    string
		want []string
	}{
		{`kind(X, data)`, "X", []string{"a", "b", "c", "d"}},
		{`kind(X, invocation)`, "X", []string{"p"}},
		{`name(X, "report")`, "X", []string{"b"}},
		{`attr(X, "owner", "bob")`, "X", []string{"d"}},
		{`edge(X, "b", "generated")`, "X", []string{"p"}},
		{`ancestor(X, "p")`, "X", []string{"a"}},
		{`descendant(X, "a")`, "X", []string{"p"}},
		{`descendant*(X, "d")`, "X", []string{"a", "b", "p"}},
		{`ans(Y) :- edge("a", Y)`, "Y", []string{"p"}},
		{`node(X), surrogate(X)`, "X", nil},
		{`kind(X, data), ancestor*(X, "b"), attr(X, "owner", "alice")`, "X", []string{"a"}},
	}
	for _, tc := range cases {
		rs, err := e.Query(tc.src, Options{Viewer: "Protected"})
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if got := ids(t, rs, tc.v); !strEq(got, tc.want) {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestQueryLimitAndSetSemantics(t *testing.T) {
	e := NewEngine(exampleBackend(t), privilege.TwoLevel())
	rs, err := e.Query(`ancestor*(X, "b") limit 2`, Options{Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Errorf("limit 2 returned %d rows", len(rs.Rows))
	}
	// Projection can collapse rows: distinct (X, Y) pairs projected to X
	// must dedupe.
	rs, err = e.Query(`ans(Y) :- ancestor*(X, Y)`, Options{Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, row := range rs.Rows {
		if seen[row[0].ID] {
			t.Fatalf("duplicate projected row %q", row[0].ID)
		}
		seen[row[0].ID] = true
	}
}

// TestQueryPairScanStreamsUnderLimit: a both-unbound closure atom with a
// limit must not enumerate every node's closure — the pair scan streams
// lazily, so execution stops at the first emitted row.
func TestQueryPairScanStreamsUnderLimit(t *testing.T) {
	e := NewEngine(exampleBackend(t), privilege.TwoLevel())
	rs, err := e.Query(`ancestor*(X, Y) limit 1`, Options{Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("limit 1 returned %d rows", len(rs.Rows))
	}
	if rs.Stats.Examined > 2 {
		t.Errorf("pair scan examined %d candidates for limit 1, want <= 2", rs.Stats.Examined)
	}
}

func TestQueryMaxRowsCap(t *testing.T) {
	e := NewEngine(exampleBackend(t), privilege.TwoLevel())
	rs, err := e.Query(`node(X)`, Options{Viewer: "Protected", MaxRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Errorf("MaxRows 1 returned %d rows", len(rs.Rows))
	}
}

func TestQueryUnknownViewerAndMode(t *testing.T) {
	e := NewEngine(exampleBackend(t), privilege.TwoLevel())
	if _, err := e.Query(`node(X)`, Options{Viewer: "Nobody"}); err == nil {
		t.Error("no error for unknown viewer")
	}
	if _, err := e.Query(`node(X)`, Options{Mode: "bogus"}); err == nil {
		t.Error("no error for unknown mode")
	}
}

func TestQueryUnknownConstantAnchor(t *testing.T) {
	e := NewEngine(exampleBackend(t), privilege.TwoLevel())
	rs, err := e.Query(`ancestor*(X, "no-such-node")`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Errorf("unknown anchor returned %d rows", len(rs.Rows))
	}
	// A Protect-hidden node used as a constant anchor is indistinguishable
	// from an unknown one: no rows, no error.
	rs, err = e.Query(`ancestor*(X, "c")`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Errorf("hidden anchor leaked %d rows", len(rs.Rows))
	}
}

// TestQueryConstantCheckNotDropped: an all-constant filter atom must
// survive planning even when the planner orders a generator before it
// (regression: pushDown used to swallow node("const") checks).
func TestQueryConstantCheckNotDropped(t *testing.T) {
	e := NewEngine(exampleBackend(t), privilege.TwoLevel())
	rs, err := e.Query(`ancestor*(X, "b"), node("ghost")`, Options{Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Errorf("node(\"ghost\") conjunct dropped: got %d rows", len(rs.Rows))
	}
	rs, err = e.Query(`ancestor*(X, "b"), node("a"), kind("p", invocation)`, Options{Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Errorf("true constant checks changed results: got %d rows, want 4", len(rs.Rows))
	}
}

// TestQueryViewInvalidation checks queries see writes: the view cache is
// keyed by store revision.
func TestQueryViewInvalidation(t *testing.T) {
	b := exampleBackend(t)
	e := NewEngine(b, privilege.TwoLevel())
	rs, err := e.Query(`kind(X, data)`, Options{Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	before := len(rs.Rows)
	if err := b.PutObject(plus.Object{ID: "z", Kind: plus.Data, Name: "new"}); err != nil {
		t.Fatal(err)
	}
	rs, err = e.Query(`kind(X, data)`, Options{Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != before+1 {
		t.Errorf("after write: %d rows, want %d", len(rs.Rows), before+1)
	}
}

// TestQueryConcurrent exercises the view cache and closure memo under
// the race detector (the CI race step runs this package).
func TestQueryConcurrent(t *testing.T) {
	b := exampleBackend(t)
	e := NewEngine(b, privilege.TwoLevel())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			viewer := privilege.Predicate("Protected")
			if i%2 == 0 {
				viewer = privilege.Public
			}
			for j := 0; j < 20; j++ {
				if _, err := e.Query(`ancestor*(X, "b"), kind(X, data)`, Options{Viewer: viewer}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				id := fmt.Sprintf("w%d-%d", i, j)
				if err := b.PutObject(plus.Object{ID: id, Kind: plus.Data, Name: id}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestPlannedBeatsNaive asserts the planner's ordering + pushdown does
// strictly less work than naive source-order scan-and-filter on the
// pattern the benchmarks measure.
func TestPlannedBeatsNaive(t *testing.T) {
	e := NewEngine(exampleBackend(t), privilege.TwoLevel())
	src := `kind(X, data), ancestor*(X, "b")`
	planned, err := e.Query(src, Options{Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := e.Query(src, Options{Viewer: "Protected", Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strEq(ids(t, planned, "X"), ids(t, naive, "X")) {
		t.Fatalf("planned %v != naive %v", ids(t, planned, "X"), ids(t, naive, "X"))
	}
	if planned.Stats.Examined >= naive.Stats.Examined {
		t.Errorf("planned examined %d >= naive %d", planned.Stats.Examined, naive.Stats.Examined)
	}
}

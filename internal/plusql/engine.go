package plusql

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plus"
	"repro/internal/privilege"
)

// clientError marks evaluation failures the caller caused (bad viewer or
// mode), as opposed to backend/materialisation faults; the HTTP layer
// maps the former to 400 and the latter to 5xx.
type clientError struct{ err error }

func (e clientError) Error() string { return e.err.Error() }
func (e clientError) Unwrap() error { return e.err }

// IsClientError reports whether err was caused by the request itself
// (syntax, unknown viewer, unknown mode) rather than by the server.
func IsClientError(err error) bool {
	var pe *ParseError
	var ce clientError
	return errors.As(err, &pe) || errors.As(err, &ce)
}

// Options tune one query evaluation.
type Options struct {
	// Viewer is the consumer's privilege-predicate; empty means Public.
	Viewer privilege.Predicate
	// Mode picks the protection generator backing the view: surrogate
	// (default) or hide.
	Mode plus.Mode
	// MaxRows caps the result size regardless of the query's own limit
	// (0 = no cap); servers use it to bound response bodies.
	MaxRows int
	// Naive disables atom reordering and predicate pushdown, evaluating
	// the query by scan-and-filter in source order. A benchmarking and
	// debugging knob, not a serving mode.
	Naive bool
	// Explain attaches the executed plan's rendering to the result.
	Explain bool
}

// Engine compiles and runs PLUSQL queries against a storage backend.
// Each evaluation pins one immutable Backend.Snapshot — no store lock is
// held at any point — and runs against the cached protected view for
// (snapshot revision, viewer, mode), so repeated queries by the same
// class of consumer share the account materialisation. Engine is safe
// for concurrent use.
//
// The whole-snapshot view is what makes arbitrary conjunctive queries
// policy-sound without per-binding checks. A write no longer discards it:
// the engine pulls the change-feed delta between the cached view's
// revision and the current one and advances the view in place
// (View.Advance) — the dirty region of the account is regenerated, the
// scan indexes are patched, and only intersecting reachability memos are
// dropped. A full rebuild happens only when the delta cannot be
// localised (protection changes, completion-sweep vetoes) or the backend
// no longer retains the revision window.
type Engine struct {
	store   plus.Backend
	lattice *privilege.Lattice

	mu          sync.Mutex
	views       map[viewKey]*View
	incremental bool
	stats       ViewCacheStats

	// obsHooks holds the engine's telemetry handles (SetObservability);
	// nil means uninstrumented. Atomic so wiring it after construction is
	// safe while queries are in flight.
	obsHooks atomic.Pointer[queryObs]
}

// ViewCacheStats reports the protected-view cache counters.
type ViewCacheStats struct {
	// Views is the live cached view count.
	Views int `json:"views"`
	// Hits / Misses count view lookups by (revision, viewer, mode).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Advanced counts views refreshed by patching the delta's dirty
	// region; AdvanceRebuilds counts advances where the spec moved
	// incrementally but the account had to be regenerated.
	Advanced        uint64 `json:"advanced"`
	AdvanceRebuilds uint64 `json:"advanceRebuilds"`
	// FullBuilds counts views built from scratch off a snapshot;
	// Fallbacks counts advance attempts abandoned (feed too far behind,
	// spec already consumed by a concurrent advance).
	FullBuilds uint64 `json:"fullBuilds"`
	Fallbacks  uint64 `json:"fallbacks"`
}

type viewKey struct {
	rev    uint64
	viewer privilege.Predicate
	mode   plus.Mode
}

// NewEngine binds a backend to the lattice its privilege nicknames refer
// to.
func NewEngine(store plus.Backend, lattice *privilege.Lattice) *Engine {
	return &Engine{store: store, lattice: lattice, views: map[viewKey]*View{}, incremental: true}
}

// Lattice returns the engine's privilege lattice.
func (e *Engine) Lattice() *privilege.Lattice { return e.lattice }

// SetIncremental toggles delta-scoped view refresh (on by default); off
// forces every revision bump to rebuild views from a snapshot. A
// benchmarking knob, not a serving mode.
func (e *Engine) SetIncremental(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.incremental = on
}

// CacheStats reports the view-cache counters.
func (e *Engine) CacheStats() ViewCacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Views = len(e.views)
	return st
}

// view returns the cached protected view for (current revision, viewer,
// mode) and whether it was a cache hit. On miss it first tries to
// advance the newest cached view of the same (viewer, mode) by the
// change-feed delta, then falls back to a full build from the snapshot;
// views of older revisions are evicted.
func (e *Engine) view(viewer privilege.Predicate, mode plus.Mode) (*View, bool, error) {
	sn, err := e.store.Snapshot()
	if err != nil {
		return nil, false, err
	}
	key := viewKey{rev: sn.Revision(), viewer: viewer, mode: mode}
	e.mu.Lock()
	if v, ok := e.views[key]; ok {
		e.stats.Hits++
		e.mu.Unlock()
		return v, true, nil
	}
	e.stats.Misses++
	var prev *View
	if e.incremental {
		var prevRev uint64
		for k, cand := range e.views {
			if k.viewer == viewer && k.mode == mode && k.rev < key.rev && (prev == nil || k.rev > prevRev) {
				prev, prevRev = cand, k.rev
			}
		}
	}
	e.mu.Unlock()

	if prev != nil {
		if nv, info, ok := prev.Advance(sn); ok {
			e.mu.Lock()
			if info.AccountRebuilt {
				e.stats.AdvanceRebuilds++
			} else {
				e.stats.Advanced++
			}
			nv = e.cache(key, nv)
			e.mu.Unlock()
			return nv, false, nil
		}
		e.mu.Lock()
		e.stats.Fallbacks++
		e.mu.Unlock()
	}

	v, err := NewView(sn, e.lattice, viewer, mode)
	if err != nil {
		return nil, false, err
	}
	e.mu.Lock()
	e.stats.FullBuilds++
	v = e.cache(key, v)
	e.mu.Unlock()
	return v, false, nil
}

// cache installs a freshly built or advanced view, keeping whichever view
// won a concurrent race so callers share one closure memo, and never
// letting a slow build for an old revision evict or displace views of a
// newer one. Callers must hold e.mu.
func (e *Engine) cache(key viewKey, v *View) *View {
	switch won, ok := e.views[key]; {
	case ok:
		return won
	case e.newestCached() > key.rev:
		// Stale build: serve it to this caller but don't cache it.
		return v
	default:
		for k := range e.views {
			if k.rev < key.rev {
				delete(e.views, k)
			}
		}
		e.views[key] = v
		return v
	}
}

// newestCached reports the highest revision in the view cache (0 when
// empty). Callers must hold e.mu.
func (e *Engine) newestCached() uint64 {
	var newest uint64
	for k := range e.views {
		if k.rev > newest {
			newest = k.rev
		}
	}
	return newest
}

// Query parses, plans and executes one PLUSQL query.
func (e *Engine) Query(src string, opts Options) (*ResultSet, error) {
	return e.QueryContext(context.Background(), src, opts)
}

// QueryContext is Query with cancellation and deadline propagation: the
// context is checked before the (possibly expensive) protected-view
// materialisation and periodically inside the executor's join loop.
func (e *Engine) QueryContext(ctx context.Context, src string, opts Options) (*ResultSet, error) {
	t0 := time.Now()
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.runTimed(ctx, q, opts, src, time.Since(t0))
}

// Run plans and executes an already-parsed query.
func (e *Engine) Run(q *Query, opts Options) (*ResultSet, error) {
	return e.RunContext(context.Background(), q, opts)
}

// RunContext is Run with cancellation; see QueryContext.
func (e *Engine) RunContext(ctx context.Context, q *Query, opts Options) (*ResultSet, error) {
	return e.runTimed(ctx, q, opts, "", 0)
}

// runTimed evaluates a parsed query, timing each phase; src is the
// original source text when the caller parsed it here ("" for
// pre-parsed queries, re-rendered only if the slow-query log wants it).
func (e *Engine) runTimed(ctx context.Context, q *Query, opts Options, src string, parseD time.Duration) (*ResultSet, error) {
	t0 := time.Now()
	viewer := opts.Viewer
	if viewer == "" {
		viewer = privilege.Public
	}
	mode := opts.Mode
	if mode == "" {
		mode = plus.ModeSurrogate
	}
	if mode != plus.ModeSurrogate && mode != plus.ModeHide {
		return nil, clientError{fmt.Errorf("plusql: unknown mode %q", mode)}
	}
	if !e.lattice.Known(viewer) {
		return nil, clientError{fmt.Errorf("plusql: unknown viewer predicate %q", viewer)}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("plusql: %w", err)
	}
	tView := time.Now()
	v, hit, err := e.view(viewer, mode)
	if err != nil {
		return nil, err
	}
	viewD := time.Since(tView)
	tPlan := time.Now()
	plan, err := Compile(q, ViewStats(v), opts.Naive)
	if err != nil {
		return nil, err
	}
	planD := time.Since(tPlan)
	tExec := time.Now()
	rs, err := run(ctx, plan, v, opts.MaxRows)
	if err != nil {
		return nil, err
	}
	t := queryTiming{
		parse:   parseD,
		view:    viewD,
		plan:    planD,
		exec:    time.Since(tExec),
		total:   parseD + time.Since(t0),
		viewHit: hit,
		rows:    rs.Stats.Rows,
	}
	rs.Phases = t.phases()
	if opts.Explain {
		rs.Plan = plan.Explain()
	}
	if e.obsHooks.Load() != nil {
		if src == "" {
			src = q.String()
		}
		e.observe(ctx, src, string(viewer), t)
	}
	return rs, nil
}

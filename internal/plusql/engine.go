package plusql

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/plus"
	"repro/internal/privilege"
)

// clientError marks evaluation failures the caller caused (bad viewer or
// mode), as opposed to backend/materialisation faults; the HTTP layer
// maps the former to 400 and the latter to 5xx.
type clientError struct{ err error }

func (e clientError) Error() string { return e.err.Error() }
func (e clientError) Unwrap() error { return e.err }

// IsClientError reports whether err was caused by the request itself
// (syntax, unknown viewer, unknown mode) rather than by the server.
func IsClientError(err error) bool {
	var pe *ParseError
	var ce clientError
	return errors.As(err, &pe) || errors.As(err, &ce)
}

// Options tune one query evaluation.
type Options struct {
	// Viewer is the consumer's privilege-predicate; empty means Public.
	Viewer privilege.Predicate
	// Mode picks the protection generator backing the view: surrogate
	// (default) or hide.
	Mode plus.Mode
	// MaxRows caps the result size regardless of the query's own limit
	// (0 = no cap); servers use it to bound response bodies.
	MaxRows int
	// Naive disables atom reordering and predicate pushdown, evaluating
	// the query by scan-and-filter in source order. A benchmarking and
	// debugging knob, not a serving mode.
	Naive bool
	// Explain attaches the executed plan's rendering to the result.
	Explain bool
}

// Engine compiles and runs PLUSQL queries against a storage backend.
// Each evaluation pins one immutable Backend.Snapshot — no store lock is
// held at any point — and runs against the cached protected view for
// (snapshot revision, viewer, mode), so repeated queries by the same
// class of consumer share the account materialisation. Engine is safe
// for concurrent use.
//
// The whole-snapshot view is what makes arbitrary conjunctive queries
// policy-sound without per-binding checks, but it is invalidated by any
// write (like CachedEngine's lineage cache): under a write-heavy mix the
// first query after each write pays an O(store) account rebuild.
// Incremental view maintenance is the known follow-up for that workload.
type Engine struct {
	store   plus.Backend
	lattice *privilege.Lattice

	mu    sync.Mutex
	views map[viewKey]*View
}

type viewKey struct {
	rev    uint64
	viewer privilege.Predicate
	mode   plus.Mode
}

// NewEngine binds a backend to the lattice its privilege nicknames refer
// to.
func NewEngine(store plus.Backend, lattice *privilege.Lattice) *Engine {
	return &Engine{store: store, lattice: lattice, views: map[viewKey]*View{}}
}

// Lattice returns the engine's privilege lattice.
func (e *Engine) Lattice() *privilege.Lattice { return e.lattice }

// view returns the cached protected view for (current revision, viewer,
// mode), building it from a fresh snapshot on miss and evicting views of
// older revisions.
func (e *Engine) view(viewer privilege.Predicate, mode plus.Mode) (*View, error) {
	sn, err := e.store.Snapshot()
	if err != nil {
		return nil, err
	}
	key := viewKey{rev: sn.Revision(), viewer: viewer, mode: mode}
	e.mu.Lock()
	v, ok := e.views[key]
	e.mu.Unlock()
	if ok {
		return v, nil
	}
	v, err = NewView(sn, e.lattice, viewer, mode)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	// Keep whichever view won a concurrent build race so callers share
	// one closure memo; and never let a slow build for an old revision
	// evict or displace views of a newer one.
	switch won, ok := e.views[key]; {
	case ok:
		v = won
	case e.newestCached() > key.rev:
		// Stale build: serve it to this caller but don't cache it.
	default:
		for k := range e.views {
			if k.rev < key.rev {
				delete(e.views, k)
			}
		}
		e.views[key] = v
	}
	e.mu.Unlock()
	return v, nil
}

// newestCached reports the highest revision in the view cache (0 when
// empty). Callers must hold e.mu.
func (e *Engine) newestCached() uint64 {
	var newest uint64
	for k := range e.views {
		if k.rev > newest {
			newest = k.rev
		}
	}
	return newest
}

// Query parses, plans and executes one PLUSQL query.
func (e *Engine) Query(src string, opts Options) (*ResultSet, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Run(q, opts)
}

// Run plans and executes an already-parsed query.
func (e *Engine) Run(q *Query, opts Options) (*ResultSet, error) {
	viewer := opts.Viewer
	if viewer == "" {
		viewer = privilege.Public
	}
	mode := opts.Mode
	if mode == "" {
		mode = plus.ModeSurrogate
	}
	if mode != plus.ModeSurrogate && mode != plus.ModeHide {
		return nil, clientError{fmt.Errorf("plusql: unknown mode %q", mode)}
	}
	if !e.lattice.Known(viewer) {
		return nil, clientError{fmt.Errorf("plusql: unknown viewer predicate %q", viewer)}
	}
	v, err := e.view(viewer, mode)
	if err != nil {
		return nil, err
	}
	plan, err := Compile(q, ViewStats(v), opts.Naive)
	if err != nil {
		return nil, err
	}
	rs, err := run(plan, v, opts.MaxRows)
	if err != nil {
		return nil, err
	}
	if opts.Explain {
		rs.Plan = plan.Explain()
	}
	return rs, nil
}

package plusql

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/plus"
	"repro/internal/privilege"
)

// obsQueryServer is testServer with the full observability stack: a
// registry, a record-everything slow-query ring, and Attach's engine
// instrumentation.
func obsQueryServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	be := exampleBackend(t)
	lat := privilege.TwoLevel()
	reg := obs.NewRegistry()
	o := plus.NewObservability(reg, obs.NewSlowLog(32, 0), nil)
	srv := plus.NewServer(plus.NewEngine(be, lat), plus.WithObservability(o))
	Attach(srv, NewEngine(be, lat))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, reg
}

// postQuery posts one v2 query with a trace header and decodes the
// response.
func postQuery(t *testing.T, url, reqID string, req QueryRequest) QueryResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url+"/v2/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		hreq.Header.Set(plus.HeaderRequestID, reqID)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v2/query = %d: %s", resp.StatusCode, data)
	}
	var out QueryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestQueryPhaseTimingsAndSlowLog: a query's per-phase decomposition
// rides the response, the repeat hits the view cache, and the slow-query
// ring ties both to the request's trace ID.
func TestQueryPhaseTimingsAndSlowLog(t *testing.T) {
	ts, reg := obsQueryServer(t)
	const reqID = "feedface00002222"
	src := `ancestor*(X, "b"), kind(X, data)`

	first := postQuery(t, ts.URL, reqID, QueryRequest{Query: src})
	if first.Phases == nil {
		t.Fatal("response missing phases block")
	}
	if first.Phases.ViewCacheHit {
		t.Error("first query claims a view-cache hit")
	}
	second := postQuery(t, ts.URL, "", QueryRequest{Query: src})
	if second.Phases == nil || !second.Phases.ViewCacheHit {
		t.Errorf("second query phases = %+v, want view-cache hit", second.Phases)
	}

	sreq, _ := http.NewRequest(http.MethodGet, ts.URL+"/v2/slowlog", nil)
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var entries []obs.SlowEntry
	if err := json.NewDecoder(sresp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	var hit *obs.SlowEntry
	for i := range entries {
		if entries[i].RequestID == reqID {
			hit = &entries[i]
		}
	}
	if hit == nil {
		t.Fatalf("no slow-query entry for request id %q (got %+v)", reqID, entries)
	}
	if hit.Kind != "plusql" || hit.Query != src {
		t.Errorf("entry = %+v, want plusql %q", hit, src)
	}
	var phaseNames []string
	for _, p := range hit.Phases {
		phaseNames = append(phaseNames, p.Name)
	}
	if got := strings.Join(phaseNames, ","); got != "parse,view,plan,exec" {
		t.Errorf("phases = %s, want parse,view,plan,exec", got)
	}
	if hit.Rows != first.Stats.Rows {
		t.Errorf("entry rows = %d, want %d", hit.Rows, first.Stats.Rows)
	}

	var sawPhase, sawViews bool
	for _, f := range reg.Gather() {
		switch f.Name {
		case "plus_plusql_seconds":
			sawPhase = len(f.Series) > 0
		case "plus_query_view_hits_total":
			sawViews = len(f.Series) == 1 && f.Series[0].Value >= 1
		}
	}
	if !sawPhase || !sawViews {
		t.Errorf("registry missing plusql series: phase=%v views=%v", sawPhase, sawViews)
	}
}

// TestUninstrumentedEngineStaysQuiet: without Attach/SetObservability the
// engine must not pay for telemetry — and must still answer with phases.
func TestUninstrumentedEngineStaysQuiet(t *testing.T) {
	be := exampleBackend(t)
	e := NewEngine(be, privilege.TwoLevel())
	rs, err := e.Query(`ancestor*(X, "b")`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Phases == nil {
		t.Fatal("uninstrumented result missing phases")
	}
	if e.obsHooks.Load() != nil {
		t.Error("fresh engine has telemetry hooks")
	}
	// Wiring an inert bundle (no registry, no slow log) keeps hooks off.
	e.SetObservability(plus.NewObservability(nil, nil, nil))
	if e.obsHooks.Load() != nil {
		t.Error("inert observability installed hooks")
	}
}

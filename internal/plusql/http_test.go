package plusql

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/plus"
	"repro/internal/privilege"
)

func testServer(t *testing.T) (*httptest.Server, *plus.Client) {
	t.Helper()
	be := exampleBackend(t)
	lat := privilege.TwoLevel()
	srv := plus.NewServer(plus.NewEngine(be, lat))
	Attach(srv, NewEngine(be, lat))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, plus.NewClient(ts.URL)
}

func TestHTTPQuery(t *testing.T) {
	_, c := testServer(t)
	resp, err := ClientQuery(c, QueryRequest{
		Query:   `ancestor*(X, "b"), kind(X, data)`,
		Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Viewer != "Public" || resp.Mode != "surrogate" {
		t.Errorf("defaults: viewer=%q mode=%q", resp.Viewer, resp.Mode)
	}
	// Public ancestors of b are {a, d, p~}; the kind(X, data) filter
	// drops the surrogate (its released kind is invocation).
	if len(resp.Rows) != 2 {
		t.Errorf("rows = %+v, want exactly [a d]", resp.Rows)
	}
	for _, row := range resp.Rows {
		for _, bnd := range row {
			if bnd.ID == "p" || bnd.ID == "c" {
				t.Errorf("policy leak over HTTP: %q", bnd.ID)
			}
		}
	}
	if !strings.Contains(resp.Plan, "plan (planned):") {
		t.Errorf("explain missing plan: %q", resp.Plan)
	}
	if resp.Stats.Examined == 0 {
		t.Error("stats not populated")
	}
}

func TestHTTPQueryViewer(t *testing.T) {
	_, c := testServer(t)
	resp, err := ClientQuery(c, QueryRequest{Query: `ancestor*(X, "b")`, Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, row := range resp.Rows {
		found[row[0].ID] = true
	}
	for _, want := range []string{"a", "c", "d", "p"} {
		if !found[want] {
			t.Errorf("Protected viewer missing %q in %v", want, found)
		}
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	ts, c := testServer(t)

	// Parse errors surface as 400 with the position in the message.
	_, err := ClientQuery(c, QueryRequest{Query: `bogus(X)`})
	if err == nil || !strings.Contains(err.Error(), "1:1") {
		t.Errorf("parse error lost position: %v", err)
	}
	if _, err := ClientQuery(c, QueryRequest{Query: ``}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := ClientQuery(c, QueryRequest{Query: `node(X)`, Viewer: "Nobody"}); err == nil {
		t.Error("unknown viewer accepted")
	}

	// Method not allowed is JSON with an Allow header.
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != http.MethodPost {
		t.Errorf("Allow = %q, want POST", got)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Errorf("405 body not JSON error: %v %v", body, err)
	}
}

func TestHTTPQueryLimit(t *testing.T) {
	_, c := testServer(t)
	resp, err := ClientQuery(c, QueryRequest{Query: `node(X)`, Viewer: "Protected", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 2 {
		t.Errorf("limit 2 returned %d rows", len(resp.Rows))
	}
	// More nodes existed, so the response says the page is partial.
	if !resp.Truncated {
		t.Error("truncated flag not set on a cut-short page")
	}

	// A limit wide enough for everything is not flagged.
	resp, err = ClientQuery(c, QueryRequest{Query: `node(X)`, Viewer: "Protected", Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Error("truncated flag set on a complete result")
	}

	// The query's own in-text limit is the client's choice, not
	// truncation.
	resp, err = ClientQuery(c, QueryRequest{Query: `node(X) limit 2`, Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 2 || resp.Truncated {
		t.Errorf("in-text limit: rows=%d truncated=%v, want 2/false", len(resp.Rows), resp.Truncated)
	}
}

package plusql

import (
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokInt
	tokComma
	tokLParen
	tokRParen
	tokColonDash // ":-"
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokInt:
		return "integer"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokColonDash:
		return "':-'"
	default:
		return "token"
	}
}

type token struct {
	kind tokenKind
	pos  Pos
	// text is the identifier name, decoded string value, or integer
	// literal.
	text string
}

// lexer turns query source into tokens, tracking line/column positions.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off:])
	return r
}

func (lx *lexer) advance() rune {
	r, size := utf8.DecodeRuneInString(lx.src[lx.off:])
	lx.off += size
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }

func isIdentRest(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

// next returns the next token or a position-tagged error.
func (lx *lexer) next() (token, error) {
	for lx.off < len(lx.src) && unicode.IsSpace(lx.peek()) {
		lx.advance()
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	r := lx.peek()
	switch {
	case r == ',':
		lx.advance()
		return token{kind: tokComma, pos: start, text: ","}, nil
	case r == '(':
		lx.advance()
		return token{kind: tokLParen, pos: start, text: "("}, nil
	case r == ')':
		lx.advance()
		return token{kind: tokRParen, pos: start, text: ")"}, nil
	case r == ':':
		lx.advance()
		if lx.off >= len(lx.src) {
			return token{}, errAt(start, "expected ':-', got ':' at end of query")
		}
		if lx.peek() != '-' {
			return token{}, errAt(start, "expected ':-', got ':%c'", lx.peek())
		}
		lx.advance()
		return token{kind: tokColonDash, pos: start, text: ":-"}, nil
	case r == '"':
		return lx.lexString(start)
	case unicode.IsDigit(r):
		var sb strings.Builder
		for lx.off < len(lx.src) && unicode.IsDigit(lx.peek()) {
			sb.WriteRune(lx.advance())
		}
		return token{kind: tokInt, pos: start, text: sb.String()}, nil
	case isIdentStart(r):
		var sb strings.Builder
		sb.WriteRune(lx.advance())
		for lx.off < len(lx.src) && isIdentRest(lx.peek()) {
			sb.WriteRune(lx.advance())
		}
		// A trailing '*' belongs to the identifier: "ancestor*".
		if lx.peek() == '*' {
			sb.WriteRune(lx.advance())
		}
		return token{kind: tokIdent, pos: start, text: sb.String()}, nil
	default:
		return token{}, errAt(start, "unexpected character %q", r)
	}
}

// lexString scans a double-quoted Go-style string literal.
func (lx *lexer) lexString(start Pos) (token, error) {
	var sb strings.Builder
	sb.WriteRune(lx.advance()) // opening quote
	for {
		if lx.off >= len(lx.src) {
			return token{}, errAt(start, "unterminated string")
		}
		r := lx.advance()
		sb.WriteRune(r)
		if r == '\\' {
			if lx.off >= len(lx.src) {
				return token{}, errAt(start, "unterminated string")
			}
			sb.WriteRune(lx.advance())
			continue
		}
		if r == '"' {
			break
		}
		if r == '\n' {
			return token{}, errAt(start, "newline in string")
		}
	}
	val, err := strconv.Unquote(sb.String())
	if err != nil {
		return token{}, errAt(start, "bad string literal %s", sb.String())
	}
	return token{kind: tokString, pos: start, text: val}, nil
}

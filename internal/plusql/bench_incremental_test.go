package plusql

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/plus"
	"repro/internal/privilege"
)

// mixedWorkloadBackend builds a layered provenance DAG of n objects where
// a protected minority (with surrogates) is threaded through public
// chains — the shape whose protected views are expensive to rebuild.
func mixedWorkloadBackend(tb testing.TB, n int) plus.Backend {
	tb.Helper()
	b := plus.NewMemBackend(0)
	tb.Cleanup(func() { b.Close() })
	rng := rand.New(rand.NewSource(42))
	batch := plus.Batch{}
	flush := func() {
		if batch.Len() == 0 {
			return
		}
		if _, err := b.Apply(batch); err != nil {
			tb.Fatal(err)
		}
		batch = plus.Batch{}
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		o := plus.Object{ID: id, Kind: plus.Data, Name: id}
		if i%3 == 0 {
			o.Kind = plus.Invocation
		}
		if i%10 == 5 { // protected minority with surrogates
			o.Lowest = "Protected"
			o.Protect = "surrogate"
			batch.Surrogates = append(batch.Surrogates, plus.SurrogateSpec{
				ForID: id, ID: id + "~", Name: "anon", InfoScore: 0.5,
			})
		}
		batch.Objects = append(batch.Objects, o)
		for t := 0; t < 2 && i > 0; t++ {
			from := fmt.Sprintf("n%d", rng.Intn(i))
			dup := false
			for _, e := range batch.Edges {
				if e.From == from && e.To == id {
					dup = true
				}
			}
			if !dup {
				batch.Edges = append(batch.Edges, plus.Edge{From: from, To: id, Label: "input-to"})
			}
		}
		if batch.Len() >= 128 {
			flush()
		}
	}
	flush()
	return b
}

// runMixedWorkload interleaves writes and queries: every iteration stores
// a small batch (a new node wired into the existing graph, sometimes
// protected with its surrogate) and then answers queries, which forces the
// engine to bring its protected view to the new revision first.
func runMixedWorkload(tb testing.TB, b plus.Backend, e *Engine, iters, queriesPerWrite int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	n := b.NumObjects()
	for i := 0; i < iters; i++ {
		id := fmt.Sprintf("w%d", i)
		o := plus.Object{ID: id, Kind: plus.Data, Name: id}
		batch := plus.Batch{Objects: []plus.Object{o}}
		if i%10 == 5 {
			batch.Objects[0].Lowest = "Protected"
			batch.Objects[0].Protect = "surrogate"
			batch.Surrogates = []plus.SurrogateSpec{{ForID: id, ID: id + "~", Name: "anon", InfoScore: 0.5}}
		}
		batch.Edges = []plus.Edge{{From: fmt.Sprintf("n%d", rng.Intn(n)), To: id, Label: "input-to"}}
		if _, err := b.Apply(batch); err != nil {
			tb.Fatal(err)
		}
		for q := 0; q < queriesPerWrite; q++ {
			if _, err := e.Query(`node(X), kind(X, invocation) limit 5`, Options{}); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

func benchMixed(b *testing.B, incremental bool) {
	back := mixedWorkloadBackend(b, 3200)
	e := NewEngine(back, privilege.TwoLevel())
	e.SetIncremental(incremental)
	// Warm the first view so both modes start from a materialised cache.
	if _, err := e.Query(`node("n0")`, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	runMixedWorkload(b, back, e, b.N, 2)
}

// BenchmarkMixedWorkloadIncremental measures the write-heavy mix with
// delta-scoped view refresh (the serving default).
func BenchmarkMixedWorkloadIncremental(b *testing.B) { benchMixed(b, true) }

// BenchmarkMixedWorkloadRebuild measures the same mix with incremental
// refresh disabled: every write forces a whole-snapshot account rebuild on
// the next query.
func BenchmarkMixedWorkloadRebuild(b *testing.B) { benchMixed(b, false) }

// incrementalReport is the schema of BENCH_incremental.json.
type incrementalReport struct {
	Nodes           int     `json:"nodes"`
	Edges           int     `json:"edges"`
	Writes          int     `json:"writes"`
	QueriesPerWrite int     `json:"queriesPerWrite"`
	IncrementalMS   float64 `json:"incrementalMs"`
	RebuildMS       float64 `json:"rebuildMs"`
	Speedup         float64 `json:"speedup"`
	Advanced        uint64  `json:"advanced"`
	AdvanceRebuilds uint64  `json:"advanceRebuilds"`
	FullBuilds      uint64  `json:"fullBuilds"`
}

// TestIncrementalSpeedupReport runs the write-heavy mix both ways on a
// >=1k-node graph, requires the delta-scoped refresh to beat full rebuild
// by at least 5x, and emits the measurements as BENCH_incremental.json at
// the repository root.
func TestIncrementalSpeedupReport(t *testing.T) {
	const (
		nodes           = 3200
		writes          = 40
		queriesPerWrite = 2
	)
	measure := func(incremental bool) (time.Duration, ViewCacheStats) {
		back := mixedWorkloadBackend(t, nodes)
		e := NewEngine(back, privilege.TwoLevel())
		e.SetIncremental(incremental)
		if _, err := e.Query(`node("n0")`, Options{}); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		runMixedWorkload(t, back, e, writes, queriesPerWrite)
		return time.Since(start), e.CacheStats()
	}

	// Interleave three rounds and keep the best of each mode, which
	// shields the ratio from scheduler noise.
	best := func(samples []time.Duration) time.Duration {
		m := samples[0]
		for _, s := range samples[1:] {
			if s < m {
				m = s
			}
		}
		return m
	}
	var incSamples, rebSamples []time.Duration
	var incStats ViewCacheStats
	for round := 0; round < 3; round++ {
		d, st := measure(true)
		incSamples = append(incSamples, d)
		incStats = st
		d, _ = measure(false)
		rebSamples = append(rebSamples, d)
	}
	inc, reb := best(incSamples), best(rebSamples)
	speedup := float64(reb) / float64(inc)

	if incStats.Advanced == 0 {
		t.Fatalf("incremental run never advanced a view: %+v", incStats)
	}

	back := mixedWorkloadBackend(t, nodes)
	report := incrementalReport{
		Nodes:           nodes,
		Edges:           back.NumEdges(),
		Writes:          writes,
		QueriesPerWrite: queriesPerWrite,
		IncrementalMS:   float64(inc.Microseconds()) / 1000,
		RebuildMS:       float64(reb.Microseconds()) / 1000,
		Speedup:         speedup,
		Advanced:        incStats.Advanced,
		AdvanceRebuilds: incStats.AdvanceRebuilds,
		FullBuilds:      incStats.FullBuilds,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_incremental.json", append(data, '\n'), 0o644); err != nil {
		t.Logf("could not write BENCH_incremental.json: %v", err)
	}
	t.Logf("write-heavy mix over %d nodes: incremental %v, rebuild %v, speedup %.1fx (advanced %d, rebuilds %d)",
		nodes, inc, reb, speedup, incStats.Advanced, incStats.AdvanceRebuilds)

	if speedup < 5 {
		t.Errorf("incremental refresh speedup = %.2fx, want >= 5x (incremental %v, rebuild %v)", speedup, inc, reb)
	}
}

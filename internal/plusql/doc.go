// Package plusql implements PLUSQL, a small datalog-inspired query
// language over protected lineage graphs. A query is a conjunction of
// node, edge and transitive-closure atoms with attribute filters,
// evaluated entirely against an immutable storage snapshot and — crucially
// — against the *protected account* of that snapshot for the querying
// viewer: every binding a query can produce is a node of the account the
// Surrogate Generation Algorithm would release to that viewer, so a
// Public consumer's query traverses surrogates exactly as a protected
// account would and can never observe what Protect hides.
//
// # Grammar
//
//	query   = [ head ":-" ] body [ "limit" INT ] .
//	head    = IDENT "(" VAR { "," VAR } ")" .
//	body    = atom { "," atom } .
//	atom    = PRED "(" term { "," term } ")" .
//	term    = VAR | STRING | IDENT .
//
// Variables begin with an upper-case letter ("X", "Proc"); everything
// else is a constant. STRING constants are double-quoted with Go-style
// escapes; bare IDENT constants ("data", "report") are sugar for the same
// string. Comparisons are exact-match.
//
// # Predicates
//
//	node(X)              X is any node of the protected account
//	kind(X, k)           X's "kind" feature equals k (data | invocation)
//	name(X, n)           X's "name" feature equals n
//	attr(X, key, val)    X's feature key equals val
//	surrogate(X)         X is a surrogate node (not an original)
//	edge(X, Y)           a direct account edge X -> Y exists
//	edge(X, Y, l)        ... with label l ("surrogate" for interposed edges)
//	ancestor(X, Y)       X -> Y is a direct edge (X is a parent of Y)
//	descendant(X, Y)     Y -> X is a direct edge
//	ancestor*(X, Y)      a directed path X -> ... -> Y exists (1+ hops)
//	descendant*(X, Y)    a directed path Y -> ... -> X exists (1+ hops)
//
// Node-position terms (X, Y above) may be variables or node-id constants;
// value positions (k, n, key, val, l) must be constants. The optional
// head projects a subset of the body's variables; without a head every
// variable is projected in order of first appearance. Results use set
// semantics (duplicate rows are suppressed) and are ordered
// deterministically; "limit" bounds the row count and stops execution
// early.
//
// # Example
//
//	ans(X) :- ancestor*(X, "report"), kind(X, data), attr(X, "owner", "alice") limit 10
//
// finds up to ten data nodes owned by alice in the lineage of "report" —
// where "lineage" is the protected lineage the viewer is entitled to see.
//
// # Pipeline
//
// Parse produces a typed AST with position-tagged errors. Compile orders
// the atoms by estimated selectivity (bound constants first, indexed
// scans before full scans, closures only once one side is bound) and
// pushes kind/name/attr predicates down into the generating scans, so a
// query like "kind(X, data), ancestor*(X, \"t\")" never enumerates the
// whole store. Execution is a pull-based backtracking join over the
// compiled steps: iterators yield one binding at a time, so "limit"
// short-circuits all upstream work. Engine caches the protected view per
// (store revision, viewer, mode); queries therefore run lock-free against
// immutable data and never block writers.
//
// Views are maintained incrementally: on a revision bump the engine pulls
// the backend change feed (Snapshot.DeltaSince), advances the cached
// view's spec record-for-record, patches the protected account's dirty
// region (account.Maintain) and the scan indexes in place, and drops only
// the reachability memos the delta can affect (View.Advance). A full
// snapshot rebuild happens only when the delta cannot be localised or the
// feed no longer retains the revision window.
//
// Point predicates additionally lower into the storage layer's interned
// secondary indexes (Snapshot.FindByKind/FindByName/FindByAttr, see
// internal/plus/index.go and the "Storage: interning and secondary
// indexes" section of the README): a kind/name/attr probe is a hash
// lookup on an interned symbol instead of a scan, which is what keeps
// point queries sublinear on million-node graphs (BENCH_index.json).
package plusql

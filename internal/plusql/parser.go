package plusql

import "unicode"

// Parse parses one PLUSQL query. Errors are *ParseError values carrying
// the 1-based line:column position of the offending token.
func Parse(src string) (*Query, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := check(q); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, errAt(p.tok.pos, "expected %s, got %q", k, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

// isVarName reports whether an identifier denotes a variable (upper-case
// first letter, datalog convention).
func isVarName(name string) bool {
	for _, r := range name {
		return unicode.IsUpper(r)
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	first, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokColonDash {
		// The first group was the head: its args must all be variables.
		if err := p.advance(); err != nil {
			return nil, err
		}
		q.HeadName = first.Pred
		q.Head = []string{}
		q.headTerms = first.Args
		for _, t := range first.Args {
			if !t.IsVar {
				return nil, errAt(t.Pos, "head argument %q must be a variable", t.Text)
			}
			q.Head = append(q.Head, t.Text)
		}
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, a)
	} else {
		q.Atoms = append(q.Atoms, first)
	}
	for p.tok.kind == tokComma {
		if err := p.advance(); err != nil {
			return nil, err
		}
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, a)
	}
	if p.tok.kind == tokIdent && p.tok.text == "limit" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		limit := 0
		for _, d := range n.text {
			limit = limit*10 + int(d-'0')
			if limit > 1<<30 {
				return nil, errAt(n.pos, "limit %s too large", n.text)
			}
		}
		if limit == 0 {
			return nil, errAt(n.pos, "limit must be positive")
		}
		q.Limit = limit
	}
	if p.tok.kind != tokEOF {
		return nil, errAt(p.tok.pos, "unexpected %q after query", p.tok.text)
	}
	return q, nil
}

func (p *parser) parseAtom() (Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Pos: name.pos, Pred: name.text}
	if _, err := p.expect(tokLParen); err != nil {
		return Atom{}, err
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Atom{}, err
	}
	return a, nil
}

func (p *parser) parseTerm() (Term, error) {
	switch p.tok.kind {
	case tokIdent:
		t := Term{Pos: p.tok.pos, Text: p.tok.text, IsVar: isVarName(p.tok.text)}
		return t, p.advance()
	case tokString:
		t := Term{Pos: p.tok.pos, Text: p.tok.text}
		return t, p.advance()
	case tokInt:
		t := Term{Pos: p.tok.pos, Text: p.tok.text}
		return t, p.advance()
	default:
		return Term{}, errAt(p.tok.pos, "expected a term, got %q", p.tok.text)
	}
}

// check validates predicates, arities, term positions and head safety.
func check(q *Query) error {
	bodyVars := map[string]bool{}
	for _, a := range q.Atoms {
		admissible, ok := arities[a.Pred]
		if !ok {
			return errAt(a.Pos, "unknown predicate %q", a.Pred)
		}
		arityOK := false
		for _, n := range admissible {
			if len(a.Args) == n {
				arityOK = true
			}
		}
		if !arityOK {
			return errAt(a.Pos, "%s takes %v argument(s), got %d", a.Pred, admissible, len(a.Args))
		}
		for i, t := range a.Args {
			if t.IsVar && !a.isNodePos(i) {
				return errAt(t.Pos, "argument %d of %s must be a constant, got variable %s", i+1, a.Pred, t.Text)
			}
			if t.IsVar {
				bodyVars[t.Text] = true
			}
		}
	}
	for i, v := range q.Head {
		if !bodyVars[v] {
			return errAt(q.headTerms[i].Pos, "head variable %s does not appear in the body", v)
		}
	}
	return nil
}

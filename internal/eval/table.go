package eval

import (
	"fmt"
	"strings"
)

// Table is a minimal text-table builder shared by all experiments: a
// header row, data rows, and column-width-aware rendering for terminals
// plus CSV output for plotting.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends one row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header included).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/privilege"
	"repro/internal/workload"
)

// Table1Row is one column of the paper's Table 1: path utility of a Figure
// 2 account and the opacity of the sensitive edge f->g, next to the values
// the paper reports.
type Table1Row struct {
	Scenario         Scenario
	PathUtility      float64
	OpacityFG        float64
	PaperPathUtility float64
	PaperOpacityFG   float64
}

// Table1 regenerates Table 1 over the running example.
func Table1() ([]Table1Row, error) {
	r := NewRunning()
	adv := measure.Figure5()
	paperPU := map[Scenario]float64{Fig2a: 0.38, Fig2b: 0.27, Fig2c: 0.13, Fig2d: 0.27}
	paperOp := map[Scenario]float64{Fig2a: 0, Fig2b: 1, Fig2c: 0.882, Fig2d: 0.948}
	var rows []Table1Row
	for _, s := range []Scenario{Fig2a, Fig2b, Fig2c, Fig2d} {
		spec, a, err := r.Account(s)
		if err != nil {
			return nil, err
		}
		if err := account.VerifySound(spec, a); err != nil {
			return nil, fmt.Errorf("eval: scenario %v: %w", s, err)
		}
		rows = append(rows, Table1Row{
			Scenario:         s,
			PathUtility:      measure.PathUtility(spec, a),
			OpacityFG:        measure.EdgeOpacity(spec, a, r.FG, adv),
			PaperPathUtility: paperPU[s],
			PaperOpacityFG:   paperOp[s],
		})
	}
	return rows, nil
}

// Table1Table renders Table 1.
func Table1Table() (*Table, error) {
	rows, err := Table1()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 1: Path Utility and Opacity for the Figure 2 accounts",
		Header: []string{"graph", "PathUtility", "paper", "Opacity(f->g)", "paper"},
	}
	for _, r := range rows {
		t.Add(r.Scenario, r.PathUtility, r.PaperPathUtility, r.OpacityFG, r.PaperOpacityFG)
	}
	return t, nil
}

// Fig3Result is the Figure 3b walkthrough: the utilities of the naive
// account G'_N, with the per-node path percentages the prose quotes.
type Fig3Result struct {
	PathUtility      float64 // paper: .13
	NodeUtility      float64 // paper: 6/11
	PathPercentB     float64 // paper: 1/10
	PathPercentH     float64 // paper: 3/10
	PaperPathUtility float64
	PaperNodeUtility float64
}

// Figure3 regenerates the §4.1 worked example.
func Figure3() (*Fig3Result, error) {
	r := NewRunning()
	spec, a, err := r.NaiveAccount()
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		PathUtility:      measure.PathUtility(spec, a),
		NodeUtility:      measure.NodeUtility(spec, a),
		PathPercentB:     measure.PathPercentage(spec, a, "b"),
		PathPercentH:     measure.PathPercentage(spec, a, "h"),
		PaperPathUtility: 0.13,
		PaperNodeUtility: 6.0 / 11.0,
	}, nil
}

// Fig3Table renders the Figure 3 walkthrough.
func Fig3Table() (*Table, error) {
	res, err := Figure3()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 3: utility measures of the naive account G'_N",
		Header: []string{"measure", "measured", "paper"},
	}
	t.Add("PathUtility", res.PathUtility, res.PaperPathUtility)
	t.Add("NodeUtility", res.NodeUtility, res.PaperNodeUtility)
	t.Add("%P(b')", res.PathPercentB, 0.1)
	t.Add("%P(h')", res.PathPercentH, 0.3)
	return t, nil
}

// Fig7Row is one motif's bar pair in Figure 7: the differences
// (surrogate − hide) in opacity of the protected edge and in path utility.
type Fig7Row struct {
	Motif            string
	OpacityHide      float64
	OpacitySurrogate float64
	UtilityHide      float64
	UtilitySurrogate float64
	DeltaOpacity     float64
	DeltaUtility     float64
}

// Figure7 regenerates the motif analysis of §6.2.
func Figure7() ([]Fig7Row, error) {
	adv := measure.Figure5()
	var rows []Fig7Row
	for _, m := range workload.Motifs() {
		row := Fig7Row{Motif: m.Name}
		for _, asSurrogate := range []bool{false, true} {
			spec, err := workload.ProtectSpec(m.Graph, []graph.EdgeID{m.Protected}, asSurrogate)
			if err != nil {
				return nil, err
			}
			a, err := account.Generate(spec, privilege.Public)
			if err != nil {
				return nil, err
			}
			op := measure.EdgeOpacity(spec, a, m.Protected, adv)
			pu := measure.PathUtility(spec, a)
			if asSurrogate {
				row.OpacitySurrogate, row.UtilitySurrogate = op, pu
			} else {
				row.OpacityHide, row.UtilityHide = op, pu
			}
		}
		row.DeltaOpacity = row.OpacitySurrogate - row.OpacityHide
		row.DeltaUtility = row.UtilitySurrogate - row.UtilityHide
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7Table renders Figure 7.
func Fig7Table() (*Table, error) {
	rows, err := Figure7()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 7: surrogating vs hiding per motif (differences, surrogate - hide)",
		Header: []string{"motif", "dOpacity", "dUtility", "opacity(hide)", "opacity(surr)", "utility(hide)", "utility(surr)"},
	}
	for _, r := range rows {
		t.Add(r.Motif, r.DeltaOpacity, r.DeltaUtility, r.OpacityHide, r.OpacitySurrogate, r.UtilityHide, r.UtilitySurrogate)
	}
	return t, nil
}

// SyntheticRow holds both strategies' measurements for one synthetic
// graph; Figures 8 and 9 are different projections of these rows.
type SyntheticRow struct {
	ProtectFraction float64
	TargetConnected float64
	MeanConnected   float64
	Edges           int
	ProtectedEdges  int
	// OpacityHide/OpacitySurrogate average opacity over the protected
	// edges (Figure 9a's quantity), under the normalised Figure 4 reading.
	OpacityHide      float64
	OpacitySurrogate float64
	// OpacityRawHide/OpacityRawSurrogate are the same averages under the
	// scale-free reading (measure.EdgeOpacityScaleFree), which keeps the
	// dynamic range visible at 200 nodes.
	OpacityRawHide      float64
	OpacityRawSurrogate float64
	// GraphOpacityHide/GraphOpacitySurrogate average opacity over every
	// edge of G — §4.2's whole-graph tradeoff number and Figure 8's
	// opacity axis.
	GraphOpacityHide      float64
	GraphOpacitySurrogate float64
	UtilityHide           float64
	UtilitySurrogate      float64
}

// DeltaOpacity is OpacitySurrogate - OpacityHide (Figure 9a's z-axis).
func (r SyntheticRow) DeltaOpacity() float64 { return r.OpacitySurrogate - r.OpacityHide }

// DeltaOpacityRaw is the same difference under the scale-free reading.
func (r SyntheticRow) DeltaOpacityRaw() float64 { return r.OpacityRawSurrogate - r.OpacityRawHide }

// DeltaUtility is UtilitySurrogate - UtilityHide (Figure 9b's z-axis).
func (r SyntheticRow) DeltaUtility() float64 { return r.UtilitySurrogate - r.UtilityHide }

// SyntheticSweep measures hide and surrogate protection over the given
// configurations (the paper grid by default). Opacity is averaged over the
// protected edges; utility is the Path Utility Measure.
func SyntheticSweep(cfgs []workload.SyntheticConfig) ([]SyntheticRow, error) {
	adv := measure.Figure5()
	var rows []SyntheticRow
	for _, cfg := range cfgs {
		syn, err := workload.GenerateSynthetic(cfg)
		if err != nil {
			return nil, err
		}
		row := SyntheticRow{
			ProtectFraction: cfg.ProtectFraction,
			TargetConnected: cfg.TargetConnected,
			MeanConnected:   syn.MeanConnected,
			Edges:           syn.Graph.NumEdges(),
			ProtectedEdges:  len(syn.Protected),
		}
		for _, asSurrogate := range []bool{false, true} {
			spec, err := workload.ProtectSpec(syn.Graph, syn.Protected, asSurrogate)
			if err != nil {
				return nil, err
			}
			a, err := account.Generate(spec, privilege.Public)
			if err != nil {
				return nil, err
			}
			op := measure.AverageOpacity(spec, a, syn.Protected, adv)
			raw := measure.AverageOpacityScaleFree(spec, a, syn.Protected, adv)
			gop := measure.GraphOpacity(spec, a, adv)
			pu := measure.PathUtility(spec, a)
			if asSurrogate {
				row.OpacitySurrogate, row.OpacityRawSurrogate = op, raw
				row.GraphOpacitySurrogate, row.UtilitySurrogate = gop, pu
			} else {
				row.OpacityHide, row.OpacityRawHide = op, raw
				row.GraphOpacityHide, row.UtilityHide = gop, pu
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9Tables renders Figure 9a (opacity difference) and 9b (utility
// difference) grouped by protection fraction.
func Fig9Tables(rows []SyntheticRow) (*Table, *Table) {
	opa := &Table{
		Title:  "Figure 9a: OpacitySurrogate - OpacityHide by connectedness and protection",
		Header: []string{"protected%", "connectedPairs", "dOpacity", "dOpacity(scale-free)"},
	}
	util := &Table{
		Title:  "Figure 9b: UtilitySurrogate - UtilityHide by connectedness and protection",
		Header: []string{"protected%", "connectedPairs", "dUtility"},
	}
	sorted := append([]SyntheticRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ProtectFraction != sorted[j].ProtectFraction {
			return sorted[i].ProtectFraction < sorted[j].ProtectFraction
		}
		return sorted[i].TargetConnected < sorted[j].TargetConnected
	})
	for _, r := range sorted {
		pct := fmt.Sprintf("%.0f%%", r.ProtectFraction*100)
		opa.Add(pct, r.MeanConnected, fmt.Sprintf("%.5f", r.DeltaOpacity()), r.DeltaOpacityRaw())
		util.Add(pct, r.MeanConnected, r.DeltaUtility())
	}
	return opa, util
}

// Fig8Point is one point of the Figure 8 frontier: the maximum utility
// observed at a given opacity bucket for one strategy.
type Fig8Point struct {
	Strategy   string // "Hide" or "Surrogate"
	OpacityBin float64
	MaxUtility float64
}

// Figure8 buckets the sweep into opacity bins of width 0.1 and reports the
// maximum utility per bin per strategy — "Maximum Utility given an Opacity
// rating".
func Figure8(rows []SyntheticRow) []Fig8Point {
	type key struct {
		strategy string
		bin      int
	}
	best := map[key]float64{}
	record := func(strategy string, op, util float64) {
		bin := int(math.Floor(op*10 + 1e-9))
		if bin > 10 {
			bin = 10
		}
		k := key{strategy, bin}
		if util > best[k] {
			best[k] = util
		}
	}
	for _, r := range rows {
		record("Hide", r.GraphOpacityHide, r.UtilityHide)
		record("Surrogate", r.GraphOpacitySurrogate, r.UtilitySurrogate)
	}
	var pts []Fig8Point
	for k, u := range best {
		pts = append(pts, Fig8Point{Strategy: k.strategy, OpacityBin: float64(k.bin) / 10, MaxUtility: u})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Strategy != pts[j].Strategy {
			return pts[i].Strategy < pts[j].Strategy
		}
		return pts[i].OpacityBin < pts[j].OpacityBin
	})
	return pts
}

// Fig8Table renders Figure 8.
func Fig8Table(rows []SyntheticRow) *Table {
	t := &Table{
		Title:  "Figure 8: maximum utility at a given opacity (hide vs surrogate)",
		Header: []string{"strategy", "opacityBin", "maxUtility"},
	}
	for _, p := range Figure8(rows) {
		t.Add(p.Strategy, p.OpacityBin, p.MaxUtility)
	}
	return t
}

package eval

import (
	"testing"

	"repro/internal/workload"
)

func TestRobustnessSweepAllFamiliesPositive(t *testing.T) {
	rows, err := RobustnessSweep(80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 families x 3 protection levels
		t.Fatalf("rows = %d", len(rows))
	}
	seen := map[workload.Family]int{}
	for _, r := range rows {
		seen[r.Family]++
		if r.DeltaUtility() < -1e-9 {
			t.Errorf("%s/%.0f%%: negative utility difference %v", r.Family, r.ProtectFraction*100, r.DeltaUtility())
		}
		if r.DeltaOpacity() < -1e-9 {
			t.Errorf("%s/%.0f%%: negative opacity difference %v", r.Family, r.ProtectFraction*100, r.DeltaOpacity())
		}
		if r.UtilityHide < 0 || r.UtilitySurrogate > 1 {
			t.Errorf("%s: utilities out of range: %+v", r.Family, r)
		}
		if r.Edges == 0 || r.MeanConnected <= 0 {
			t.Errorf("%s: degenerate graph: %+v", r.Family, r)
		}
	}
	for _, fam := range workload.Families() {
		if seen[fam] != 3 {
			t.Errorf("family %s has %d rows, want 3", fam, seen[fam])
		}
	}
	tbl, err := RobustnessTable(80)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

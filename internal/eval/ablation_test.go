package eval

import (
	"strings"
	"testing"
)

func TestAblationAdversarySigns(t *testing.T) {
	tbl, err := AblationAdversary()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4*7 {
		t.Fatalf("rows = %d, want 28", len(tbl.Rows))
	}
	// Under the paper's constants the signs must match Figure 7: zero for
	// Bipartite and Lattice, non-negative elsewhere.
	for _, row := range tbl.Rows {
		variant, motif, sign := row[0], row[1], row[3]
		if variant != "paper(Fig5)" {
			continue
		}
		switch motif {
		case "Bipartite", "Lattice":
			if sign != "0" {
				t.Errorf("%s: sign = %s, want 0", motif, sign)
			}
		default:
			if sign == "-" {
				t.Errorf("%s: negative opacity difference under paper constants", motif)
			}
		}
	}
}

func TestAblationSideDominance(t *testing.T) {
	tbl, err := AblationSide()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		motif := row[0]
		dst, src, hide := row[1], row[2], row[4]
		if dst < src { // string compare works: same width %.3f formatting
			t.Errorf("%s: dst-side utility %s below src-side %s", motif, dst, src)
		}
		if src < hide {
			t.Errorf("%s: src-side utility %s below hide %s", motif, src, hide)
		}
	}
}

func TestAblationNullRestoresConnectivity(t *testing.T) {
	rows, err := AblationNullSurrogates()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The §4.1 claim: nulls add connectivity, not node information.
		if r.PathUtilityNull < r.PathUtilityNoNull {
			t.Errorf("%.0f%%: null lowered path utility (%v -> %v)",
				r.FractionProtected*100, r.PathUtilityNoNull, r.PathUtilityNull)
		}
		if r.PathUtilityNull <= r.PathUtilityNoNull {
			t.Errorf("%.0f%%: null should strictly improve path utility here", r.FractionProtected*100)
		}
		if r.NodeUtilityNull != r.NodeUtilityNoNull {
			t.Errorf("%.0f%%: null changed node utility (%v -> %v)",
				r.FractionProtected*100, r.NodeUtilityNoNull, r.NodeUtilityNull)
		}
	}
	tbl, err := AblationNullTable()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "null") {
		t.Error("table rendering broken")
	}
}

func TestAblationAttackerClass(t *testing.T) {
	tbl, err := AblationAttackerClass()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		naive, advanced := row[1], row[2]
		// Fixed points (2a shown -> 0, 2b endpoint missing -> 1) coincide;
		// on the inference scenarios the naive attacker faces at least as
		// much opacity as the advanced one (same-width %.3f strings make
		// lexicographic comparison valid).
		if naive < advanced {
			t.Errorf("%s: naive opacity %s below advanced %s", row[0], naive, advanced)
		}
	}
}

func TestAblationRedundancy(t *testing.T) {
	tbl, err := AblationRedundancy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] == "0" {
			t.Errorf("%s: no surrogate edges interposed at all", row[0])
		}
	}
}

package eval

import (
	"fmt"
	"math"
	"os"

	"repro/internal/workload"
)

// Claim is one machine-checked reproduction claim: a statement the paper
// makes that this repository verifies programmatically.
type Claim struct {
	ID     string
	Text   string
	Pass   bool
	Detail string
}

// Scorecard evaluates every reproduction claim and returns the verdicts.
// It is the one-shot answer to "did the reproduction work?": each row is
// backed by the same code paths the individual experiments use.
func Scorecard() ([]Claim, error) {
	var claims []Claim
	add := func(id, text string, pass bool, detail string, args ...interface{}) {
		claims = append(claims, Claim{ID: id, Text: text, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	// Table 1 / Figure 3: the worked numbers.
	t1, err := Table1()
	if err != nil {
		return nil, err
	}
	puOK, opOK := true, true
	var worstPU, worstOp float64
	for _, r := range t1 {
		if d := math.Abs(r.PathUtility - r.PaperPathUtility); d > 0.005 {
			puOK = false
		} else if d > worstPU {
			worstPU = d
		}
		if d := math.Abs(r.OpacityFG - r.PaperOpacityFG); d > 0.01 {
			opOK = false
		} else if d > worstOp {
			worstOp = d
		}
	}
	add("T1-utility", "Table 1 path utilities match the paper", puOK, "max |Δ| = %.4f (tol .005)", worstPU)
	add("T1-opacity", "Table 1 opacities match within .01", opOK, "max |Δ| = %.4f (tol .01)", worstOp)

	f3, err := Figure3()
	if err != nil {
		return nil, err
	}
	add("F3", "Figure 3 worked example (%P(b')=1/10, %P(h')=3/10, NU=6/11)",
		math.Abs(f3.PathUtility-0.13) <= 0.005 &&
			f3.PathPercentB == 0.1 && f3.PathPercentH == 0.3 &&
			math.Abs(f3.NodeUtility-6.0/11.0) < 1e-9,
		"PU=%.3f NU=%.3f", f3.PathUtility, f3.NodeUtility)

	// Figure 7: signs and the two stated zeros.
	f7, err := Figure7()
	if err != nil {
		return nil, err
	}
	f7OK := true
	for _, r := range f7 {
		zero := r.Motif == "Bipartite" || r.Motif == "Lattice"
		switch {
		case r.DeltaOpacity < -1e-9 || r.DeltaUtility < -1e-9:
			f7OK = false
		case zero && (r.DeltaOpacity > 1e-9 || r.DeltaUtility > 1e-9):
			f7OK = false
		case !zero && r.DeltaOpacity <= 1e-9 && r.DeltaUtility <= 1e-9:
			f7OK = false
		}
	}
	add("F7", "Figure 7 motif differences: non-negative, zero exactly for Bipartite and Lattice", f7OK, "%d motifs checked", len(f7))

	// Figures 8/9 on a reduced grid (the full grid runs in the eval tests
	// and cmd/experiments).
	grid := []workload.SyntheticConfig{
		{Nodes: 100, TargetConnected: 25, ProtectFraction: 0.1, Seed: 8101},
		{Nodes: 100, TargetConnected: 25, ProtectFraction: 0.5, Seed: 8102},
		{Nodes: 100, TargetConnected: 25, ProtectFraction: 0.9, Seed: 8103},
	}
	rows, err := SyntheticSweep(grid)
	if err != nil {
		return nil, err
	}
	allPositive := true
	for _, r := range rows {
		if r.DeltaUtility() <= 0 || r.DeltaOpacity() < -1e-9 {
			allPositive = false
		}
	}
	add("F9-positive", "Figure 9: surrogating is always at least as good as hiding", allPositive,
		"dU: %.3f / %.3f / %.3f", rows[0].DeltaUtility(), rows[1].DeltaUtility(), rows[2].DeltaUtility())
	add("F9-monotone", "Figure 9a: opacity difference grows with fraction protected",
		rows[2].DeltaOpacity() > rows[0].DeltaOpacity(),
		"dOp 10%%=%.5f vs 90%%=%.5f", rows[0].DeltaOpacity(), rows[2].DeltaOpacity())

	pts := Figure8(rows)
	bestHide, bestSurr := 0.0, 0.0
	for _, p := range pts {
		if p.Strategy == "Hide" && p.MaxUtility > bestHide {
			bestHide = p.MaxUtility
		}
		if p.Strategy == "Surrogate" && p.MaxUtility > bestSurr {
			bestSurr = p.MaxUtility
		}
	}
	add("F8", "Figure 8: the surrogate frontier dominates hide's", bestSurr >= bestHide,
		"max utility %.3f vs %.3f", bestSurr, bestHide)

	// Figure 10: protection subsumed by graph creation + DB access.
	dir, err := os.MkdirTemp("", "plus-scorecard-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	f10, err := Figure10(dir, 150)
	if err != nil {
		return nil, err
	}
	add("F10", "Figure 10: protection cost is subsumed by graph creation and DB access",
		f10.ProtectSurrogate < f10.StoreWrite+f10.DBAccess && f10.ProtectHide < f10.StoreWrite+f10.DBAccess,
		"protect %v/%v vs create+db %v", f10.ProtectHide, f10.ProtectSurrogate, f10.StoreWrite+f10.DBAccess)

	return claims, nil
}

// ScorecardTable renders the scorecard.
func ScorecardTable() (*Table, error) {
	claims, err := Scorecard()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Reproduction scorecard: machine-checked paper claims",
		Header: []string{"claim", "verdict", "statement", "detail"},
	}
	for _, c := range claims {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		t.Add(c.ID, verdict, c.Text, c.Detail)
	}
	return t, nil
}

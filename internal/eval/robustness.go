package eval

import (
	"fmt"

	"repro/internal/account"
	"repro/internal/measure"
	"repro/internal/privilege"
	"repro/internal/workload"
)

// RobustnessRow is one (family, protection) cell of the robustness sweep:
// the surrogate-vs-hide comparison re-run on a structurally different
// graph family.
type RobustnessRow struct {
	Family           workload.Family
	ProtectFraction  float64
	MeanConnected    float64
	Edges            int
	UtilityHide      float64
	UtilitySurrogate float64
	OpacityHide      float64 // scale-free reading over protected edges
	OpacitySurrogate float64
}

// DeltaUtility is the surrogate-minus-hide path-utility difference.
func (r RobustnessRow) DeltaUtility() float64 { return r.UtilitySurrogate - r.UtilityHide }

// DeltaOpacity is the surrogate-minus-hide opacity difference.
func (r RobustnessRow) DeltaOpacity() float64 { return r.OpacitySurrogate - r.OpacityHide }

// RobustnessSweep runs the §6.3 comparison across graph families
// (random, layered workflow, scale-free) and protection levels. The
// extension claim: the paper's conclusion — surrogating is always at least
// as good as hiding — is a property of the mechanism, not of the §6.1.2
// generator.
func RobustnessSweep(nodes int) ([]RobustnessRow, error) {
	adv := measure.Figure5()
	var rows []RobustnessRow
	for _, fam := range workload.Families() {
		for fi, frac := range []float64{0.1, 0.5, 0.9} {
			syn, err := workload.GenerateFamily(fam, workload.SyntheticConfig{
				Nodes:           nodes,
				TargetConnected: float64(nodes) / 4,
				ProtectFraction: frac,
				Seed:            int64(6000 + fi),
			})
			if err != nil {
				return nil, err
			}
			row := RobustnessRow{
				Family:          fam,
				ProtectFraction: frac,
				MeanConnected:   syn.MeanConnected,
				Edges:           syn.Graph.NumEdges(),
			}
			for _, asSurrogate := range []bool{false, true} {
				spec, err := workload.ProtectSpec(syn.Graph, syn.Protected, asSurrogate)
				if err != nil {
					return nil, err
				}
				a, err := account.Generate(spec, privilege.Public)
				if err != nil {
					return nil, err
				}
				pu := measure.PathUtility(spec, a)
				op := measure.AverageOpacityScaleFree(spec, a, syn.Protected, adv)
				if asSurrogate {
					row.UtilitySurrogate, row.OpacitySurrogate = pu, op
				} else {
					row.UtilityHide, row.OpacityHide = pu, op
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RobustnessTable renders the sweep.
func RobustnessTable(nodes int) (*Table, error) {
	rows, err := RobustnessSweep(nodes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Extension: surrogate vs hide across graph families (%d nodes)", nodes),
		Header: []string{"family", "protected%", "dUtility", "dOpacity", "utility(hide)", "utility(surr)"},
	}
	for _, r := range rows {
		t.Add(string(r.Family), fmt.Sprintf("%.0f%%", r.ProtectFraction*100),
			r.DeltaUtility(), r.DeltaOpacity(), r.UtilityHide, r.UtilitySurrogate)
	}
	return t, nil
}

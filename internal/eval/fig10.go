package eval

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/graph"
	"repro/internal/plus"
	"repro/internal/privilege"
	"repro/internal/workload"
)

// Fig10Result is the Figure 10 cost decomposition: the time to produce a
// provenance graph in the PLUS store and to transform a lineage answer
// into a protected account, for the hide and surrogate strategies. The
// paper's takeaway is structural: protection cost is small and subsumed by
// the cost of creating and fetching the graph itself.
type Fig10Result struct {
	Nodes int
	Edges int
	// StoreWrite: appending every object and edge to the log.
	StoreWrite time.Duration
	// DBAccess: reopening the store (log replay + index build) plus
	// fetching the lineage closure.
	DBAccess time.Duration
	// BuildGraph: assembling graph/labeling/policy/surrogates from the
	// fetched records.
	BuildGraph time.Duration
	// ProtectHide / ProtectSurrogate: generating each account.
	ProtectHide      time.Duration
	ProtectSurrogate time.Duration
	// Total: write + reopen + the full surrogate-mode query.
	Total time.Duration
}

// Figure10 runs the performance experiment in dir (a scratch directory):
// it generates a synthetic provenance DAG, stores it object by object,
// reopens the store cold, and answers a full-ancestry lineage query under
// both protection strategies.
func Figure10(dir string, nodes int) (*Fig10Result, error) {
	syn, err := workload.GenerateSynthetic(workload.SyntheticConfig{
		Nodes:           nodes,
		TargetConnected: float64(nodes) / 4,
		ProtectFraction: 0.3,
		Seed:            99,
	})
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "fig10.log")

	// Phase 1: create the provenance graph in the store.
	tWrite0 := time.Now()
	store, err := plus.Open(path, plus.Options{})
	if err != nil {
		return nil, err
	}
	ids := syn.Graph.Nodes()
	for i, id := range ids {
		o := plus.Object{ID: string(id), Name: "object " + string(id)}
		if i%2 == 0 {
			o.Kind = plus.Data
		} else {
			o.Kind = plus.Invocation
		}
		// Every fifth object is sensitive with its role surrogated — the
		// protection workload the two strategies will differ on.
		if i%5 == 0 {
			o.Lowest = string(workload.ProtectedPredicate)
			o.Protect = string(plus.ModeSurrogate)
		}
		if err := store.PutObject(o); err != nil {
			return nil, err
		}
	}
	for _, e := range syn.Graph.Edges() {
		if err := store.PutEdge(plus.Edge{From: string(e.From), To: string(e.To), Label: "input-to"}); err != nil {
			return nil, err
		}
	}
	if err := store.Close(); err != nil {
		return nil, err
	}
	storeWrite := time.Since(tWrite0)

	// Phase 2: cold open — log replay and index rebuild are the DB-access
	// cost a fresh query pays.
	tOpen0 := time.Now()
	store, err = plus.Open(path, plus.Options{})
	if err != nil {
		return nil, err
	}
	defer store.Close()
	openCost := time.Since(tOpen0)

	engine := plus.NewEngine(store, privilege.TwoLevel())
	// Query the full ancestry of the deepest node.
	start := string(ids[len(ids)-1])

	hide, err := engine.Lineage(plus.Request{
		Start: start, Direction: graph.Backward, Viewer: privilege.Public, Mode: plus.ModeHide,
	})
	if err != nil {
		return nil, err
	}
	surr, err := engine.Lineage(plus.Request{
		Start: start, Direction: graph.Backward, Viewer: privilege.Public, Mode: plus.ModeSurrogate,
	})
	if err != nil {
		return nil, err
	}

	return &Fig10Result{
		Nodes:            syn.Graph.NumNodes(),
		Edges:            syn.Graph.NumEdges(),
		StoreWrite:       storeWrite,
		DBAccess:         openCost + surr.Timing.DBAccess,
		BuildGraph:       surr.Timing.Build,
		ProtectHide:      hide.Timing.Protect,
		ProtectSurrogate: surr.Timing.Protect,
		Total:            storeWrite + openCost + surr.Timing.Total,
	}, nil
}

// Fig10Table renders the Figure 10 bars.
func Fig10Table(res *Fig10Result) *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 10: time to produce and protect a provenance graph (%d nodes, %d edges)",
			res.Nodes, res.Edges),
		Header: []string{"activity", "time"},
	}
	t.Add("total", res.Total.String())
	t.Add("create graph (store writes)", res.StoreWrite.String())
	t.Add("DB access", res.DBAccess.String())
	t.Add("build graph", res.BuildGraph.String())
	t.Add("protect via hide", res.ProtectHide.String())
	t.Add("protect via surrogate", res.ProtectSurrogate.String())
	return t
}

package eval

import (
	"fmt"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/workload"
)

// This file holds the ablations for the design choices DESIGN.md calls
// out: adversary-constant sensitivity, the destination-side edge-marking
// convention, the value of <null> default surrogates, and the redundancy
// of interposed surrogate edges.

// AdversaryVariant is one setting of the Figure 5 constants.
type AdversaryVariant struct {
	Name string
	Adv  measure.Advanced
}

// AdversaryVariants spans the Figure 5 constants: the paper's values, a
// flatter attacker (weaker focus contrast), a sharper one, and a wider
// loner definition.
func AdversaryVariants() []AdversaryVariant {
	return []AdversaryVariant{
		{Name: "paper(Fig5)", Adv: measure.Figure5()},
		{Name: "flat", Adv: measure.Advanced{LonerMax: 1, LowDegreeMax: 1, HighFP: 0.5, LowFP: 0.3, HighIE: 0.5, LowIE: 0.3}},
		{Name: "sharp", Adv: measure.Advanced{LonerMax: 1, LowDegreeMax: 1, HighFP: 0.95, LowFP: 0.05, HighIE: 0.95, LowIE: 0.05}},
		{Name: "wide-loner", Adv: measure.Advanced{LonerMax: 2, LowDegreeMax: 2, HighFP: 0.8, LowFP: 0.2, HighIE: 0.8, LowIE: 0.2}},
	}
}

// AblationAdversary re-runs the Figure 7 motif comparison under each
// adversary variant. The design claim under test: the paper's qualitative
// result (surrogating never lowers opacity, zero exactly for Bipartite and
// Lattice) does not hinge on the particular Figure 5 constants.
func AblationAdversary() (*Table, error) {
	t := &Table{
		Title:  "Ablation: motif opacity differences under varied adversary constants",
		Header: []string{"adversary", "motif", "dOpacity", "sign"},
	}
	for _, v := range AdversaryVariants() {
		for _, m := range workload.Motifs() {
			var ops [2]float64
			for i, asSurrogate := range []bool{false, true} {
				spec, err := workload.ProtectSpec(m.Graph, []graph.EdgeID{m.Protected}, asSurrogate)
				if err != nil {
					return nil, err
				}
				a, err := account.Generate(spec, privilege.Public)
				if err != nil {
					return nil, err
				}
				ops[i] = measure.EdgeOpacity(spec, a, m.Protected, v.Adv)
			}
			d := ops[1] - ops[0]
			sign := "0"
			switch {
			case d > 1e-9:
				sign = "+"
			case d < -1e-9:
				sign = "-"
			}
			t.Add(v.Name, m.Name, d, sign)
		}
	}
	return t, nil
}

// AblationSide compares the three choices of which incidence an edge
// protection marks, on the motif workload. The design claim under test:
// destination-side marking (the DESIGN.md convention) dominates
// source-side for utility on these root-anchored motifs, and both-sides
// never beats the better single side.
func AblationSide() (*Table, error) {
	t := &Table{
		Title:  "Ablation: edge-protection side (utility of the surrogate account per motif)",
		Header: []string{"motif", "dst(paper)", "src", "both", "hide"},
	}
	for _, m := range workload.Motifs() {
		utils := map[policy.Side]float64{}
		for _, side := range []policy.Side{policy.DstSide, policy.SrcSide, policy.BothSides} {
			spec, err := workload.ProtectSpecSide(m.Graph, []graph.EdgeID{m.Protected}, true, side)
			if err != nil {
				return nil, err
			}
			a, err := account.Generate(spec, privilege.Public)
			if err != nil {
				return nil, err
			}
			utils[side] = measure.PathUtility(spec, a)
		}
		hideSpec, err := workload.ProtectSpec(m.Graph, []graph.EdgeID{m.Protected}, false)
		if err != nil {
			return nil, err
		}
		h, err := account.Generate(hideSpec, privilege.Public)
		if err != nil {
			return nil, err
		}
		t.Add(m.Name, utils[policy.DstSide], utils[policy.SrcSide], utils[policy.BothSides],
			measure.PathUtility(hideSpec, h))
	}
	return t, nil
}

// NullAblationRow compares accounts with and without <null> default
// surrogates on one node-protection workload.
type NullAblationRow struct {
	FractionProtected float64
	PathUtilityNoNull float64
	PathUtilityNull   float64
	NodeUtilityNoNull float64
	NodeUtilityNull   float64
}

// AblationNullSurrogates runs the §4.1 claim — a featureless <null>
// surrogate adds no node information but can restore connectivity — on
// synthetic graphs with a growing fraction of protected nodes and no
// provider surrogates.
func AblationNullSurrogates() ([]NullAblationRow, error) {
	var rows []NullAblationRow
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4} {
		syn, err := workload.GenerateSynthetic(workload.SyntheticConfig{
			Nodes: 120, TargetConnected: 30, ProtectFraction: 0, Seed: int64(3000 + int(frac*100)),
		})
		if err != nil {
			return nil, err
		}
		nodes := workload.SelectNodes(syn.Graph, frac, 11)
		row := NullAblationRow{FractionProtected: frac}
		for _, withNull := range []bool{false, true} {
			spec, err := workload.NodeProtectSpec(syn.Graph, nodes, withNull)
			if err != nil {
				return nil, err
			}
			a, err := account.Generate(spec, privilege.Public)
			if err != nil {
				return nil, err
			}
			pu := measure.PathUtility(spec, a)
			nu := measure.NodeUtility(spec, a)
			if withNull {
				row.PathUtilityNull, row.NodeUtilityNull = pu, nu
			} else {
				row.PathUtilityNoNull, row.NodeUtilityNoNull = pu, nu
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationNullTable renders the null-surrogate ablation.
func AblationNullTable() (*Table, error) {
	rows, err := AblationNullSurrogates()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: <null> default surrogates on node-protected synthetic graphs",
		Header: []string{"nodes protected", "pathUtil (no null)", "pathUtil (null)", "nodeUtil (no null)", "nodeUtil (null)"},
	}
	for _, r := range rows {
		t.Add(fmt.Sprintf("%.0f%%", r.FractionProtected*100),
			r.PathUtilityNoNull, r.PathUtilityNull, r.NodeUtilityNoNull, r.NodeUtilityNull)
	}
	return t, nil
}

// AblationAttackerClass compares the two attacker classes of §4.2 — the
// naïve attacker with no knowledge of general graph properties, and the
// advanced adversary of Figure 5 — on the running example's Table 1
// scenarios. The design claim under test: opacity is calibrated against
// the stronger attacker; a naïve attacker always faces at least as much
// difficulty.
func AblationAttackerClass() (*Table, error) {
	r := NewRunning()
	naive := measure.Naive{}
	advanced := measure.Figure5()
	t := &Table{
		Title:  "Ablation: opacity of f->g against naive vs advanced attackers",
		Header: []string{"graph", "naive", "advanced(Fig5)"},
	}
	for _, s := range []Scenario{Fig2a, Fig2b, Fig2c, Fig2d} {
		spec, a, err := r.Account(s)
		if err != nil {
			return nil, err
		}
		opNaive := measure.EdgeOpacity(spec, a, r.FG, naive)
		opAdv := measure.EdgeOpacity(spec, a, r.FG, advanced)
		t.Add(s, opNaive, opAdv)
	}
	return t, nil
}

// AblationRedundancy counts how many interposed surrogate edges merely
// restate connectivity already present (the Lattice-motif effect of §6.2),
// across synthetic edge-protection workloads. High redundancy would argue
// for a transitive-reduction post-pass; the paper keeps redundant edges
// because they still raise opacity.
func AblationRedundancy() (*Table, error) {
	t := &Table{
		Title:  "Ablation: redundancy of interposed surrogate edges (synthetic, 120 nodes)",
		Header: []string{"protected%", "surrogateEdges", "redundant", "redundant%"},
	}
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		syn, err := workload.GenerateSynthetic(workload.SyntheticConfig{
			Nodes: 120, TargetConnected: 30, ProtectFraction: frac, Seed: int64(4000 + int(frac*100)),
		})
		if err != nil {
			return nil, err
		}
		spec, err := workload.ProtectSpec(syn.Graph, syn.Protected, true)
		if err != nil {
			return nil, err
		}
		a, err := account.Generate(spec, privilege.Public)
		if err != nil {
			return nil, err
		}
		redundant := 0
		for _, e := range a.Graph.RedundantEdges() {
			if a.SurrogateEdges[e] {
				redundant++
			}
		}
		total := len(a.SurrogateEdges)
		pct := 0.0
		if total > 0 {
			pct = float64(redundant) / float64(total)
		}
		t.Add(fmt.Sprintf("%.0f%%", frac*100), total, redundant, pct)
	}
	return t, nil
}

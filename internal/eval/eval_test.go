package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/account"
	"repro/internal/measure"
	"repro/internal/workload"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v ± %v", name, got, want, tol)
	}
}

func TestRunningExampleStructure(t *testing.T) {
	r := NewRunning()
	if r.Graph.NumNodes() != 11 {
		t.Fatalf("|N| = %d, want 11 (Figure 1a)", r.Graph.NumNodes())
	}
	if !r.Graph.IsDAG() || !r.Graph.IsWeaklyConnected() {
		t.Error("Figure 1a should be a connected DAG")
	}
	// Every node of G is connected (to or from) to all 10 others.
	for _, id := range r.Graph.Nodes() {
		if got := r.Graph.ConnectedPairs(id); got != 10 {
			t.Errorf("ConnectedPairs(%s) = %d, want 10", id, got)
		}
	}
}

func TestNaiveAccountMatchesFigure1c(t *testing.T) {
	r := NewRunning()
	spec, a, err := r.NaiveAccount()
	if err != nil {
		t.Fatal(err)
	}
	if err := account.VerifySound(spec, a); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"b": true, "c": true, "g": true, "h": true, "i": true, "j": true}
	if a.Graph.NumNodes() != len(want) {
		t.Fatalf("naive nodes = %v", a.Graph.Nodes())
	}
	for _, id := range a.Graph.Nodes() {
		if !want[string(id)] {
			t.Errorf("unexpected node %s in G'_N", id)
		}
	}
	// Exactly the Figure 1c edges: b->c and the g/h/i/j chain.
	if a.Graph.NumEdges() != 4 {
		t.Errorf("naive edges = %v", a.Graph.Edges())
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		within(t, "PathUtility("+r.Scenario.String()+")", r.PathUtility, r.PaperPathUtility, 0.005)
		within(t, "Opacity("+r.Scenario.String()+")", r.OpacityFG, r.PaperOpacityFG, 0.01)
	}
	// The paper's ordering across scenarios.
	if !(rows[0].PathUtility > rows[1].PathUtility && rows[1].PathUtility > rows[2].PathUtility) {
		t.Error("path utility ordering 2a > 2b > 2c violated")
	}
	if rows[3].OpacityFG <= rows[2].OpacityFG {
		t.Error("2d should be more opaque than 2c (surrogate edge raises opacity)")
	}
}

func TestFigure3MatchesPaper(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	within(t, "PathUtility", res.PathUtility, 0.13, 0.005)
	within(t, "NodeUtility", res.NodeUtility, 6.0/11.0, 1e-9)
	within(t, "%P(b')", res.PathPercentB, 0.1, 1e-9)
	within(t, "%P(h')", res.PathPercentH, 0.3, 1e-9)
}

func TestFigure7Shape(t *testing.T) {
	rows, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DeltaOpacity < -1e-9 || r.DeltaUtility < -1e-9 {
			t.Errorf("%s: negative difference (dOp=%v dU=%v)", r.Motif, r.DeltaOpacity, r.DeltaUtility)
		}
		switch r.Motif {
		case "Bipartite", "Lattice":
			if r.DeltaOpacity > 1e-9 || r.DeltaUtility > 1e-9 {
				t.Errorf("%s: expected zero differences, got dOp=%v dU=%v", r.Motif, r.DeltaOpacity, r.DeltaUtility)
			}
		default:
			if r.DeltaOpacity < 1e-9 && r.DeltaUtility < 1e-9 {
				t.Errorf("%s: expected a positive difference", r.Motif)
			}
		}
	}
}

// smallGrid keeps the sweep test fast: 3 protection levels x 2 densities
// at 80 nodes.
func smallGrid() []workload.SyntheticConfig {
	var cfgs []workload.SyntheticConfig
	for fi, f := range []float64{0.10, 0.50, 0.90} {
		for ci, target := range []float64{15, 35} {
			cfgs = append(cfgs, workload.SyntheticConfig{
				Nodes:           80,
				TargetConnected: target,
				ProtectFraction: f,
				Seed:            int64(500 + fi*10 + ci),
			})
		}
	}
	return cfgs
}

func TestSyntheticSweepShape(t *testing.T) {
	rows, err := SyntheticSweep(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byFraction := map[float64][]SyntheticRow{}
	for _, r := range rows {
		// §6.3 headline: all differences are positive — surrogating always
		// beats hiding.
		if r.DeltaOpacity() < -1e-9 {
			t.Errorf("prot=%v conn=%v: negative opacity difference %v", r.ProtectFraction, r.MeanConnected, r.DeltaOpacity())
		}
		if r.DeltaUtility() <= 0 {
			t.Errorf("prot=%v conn=%v: non-positive utility difference %v", r.ProtectFraction, r.MeanConnected, r.DeltaUtility())
		}
		if r.UtilityHide < 0 || r.UtilityHide > 1 || r.UtilitySurrogate < 0 || r.UtilitySurrogate > 1 {
			t.Errorf("utilities out of range: %+v", r)
		}
		byFraction[r.ProtectFraction] = append(byFraction[r.ProtectFraction], r)
	}
	// Utility decreases as protection grows (Figure 9b narrative), for
	// both strategies, comparing same-density rows.
	for ci := 0; ci < 2; ci++ {
		u10 := byFraction[0.10][ci].UtilityHide
		u90 := byFraction[0.90][ci].UtilityHide
		if u90 >= u10 {
			t.Errorf("hide utility should fall with protection: 10%%=%v 90%%=%v", u10, u90)
		}
	}
	// Opacity difference grows with the amount protected (Figure 9a).
	var mean10, mean90 float64
	for ci := 0; ci < 2; ci++ {
		mean10 += byFraction[0.10][ci].DeltaOpacity() / 2
		mean90 += byFraction[0.90][ci].DeltaOpacity() / 2
	}
	if mean90 <= mean10 {
		t.Errorf("opacity difference should grow with protection: 10%%=%v 90%%=%v", mean10, mean90)
	}
}

func TestFigure8Dominance(t *testing.T) {
	rows, err := SyntheticSweep(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	pts := Figure8(rows)
	if len(pts) == 0 {
		t.Fatal("no frontier points")
	}
	best := map[string]float64{}
	for _, p := range pts {
		if p.MaxUtility < 0 || p.MaxUtility > 1 || p.OpacityBin < 0 || p.OpacityBin > 1 {
			t.Errorf("point out of range: %+v", p)
		}
		if p.MaxUtility > best[p.Strategy] {
			best[p.Strategy] = p.MaxUtility
		}
	}
	// Surrogate's achievable utility dominates hide's overall.
	if best["Surrogate"] < best["Hide"] {
		t.Errorf("surrogate frontier %v below hide frontier %v", best["Surrogate"], best["Hide"])
	}
}

func TestFigure10Decomposition(t *testing.T) {
	res, err := Figure10(t.TempDir(), 120)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 120 || res.Edges == 0 {
		t.Errorf("result = %+v", res)
	}
	for name, d := range map[string]int64{
		"StoreWrite":       int64(res.StoreWrite),
		"DBAccess":         int64(res.DBAccess),
		"ProtectHide":      int64(res.ProtectHide),
		"ProtectSurrogate": int64(res.ProtectSurrogate),
		"Total":            int64(res.Total),
	} {
		if d <= 0 {
			t.Errorf("%s = %d, want > 0", name, d)
		}
	}
	// The paper's structural claim: protection is subsumed by the cost of
	// creating the graph.
	if res.ProtectSurrogate > res.Total {
		t.Error("protection cost exceeds total")
	}
	if res.StoreWrite+res.DBAccess <= res.ProtectHide {
		t.Errorf("graph creation (%v+%v) should dwarf protection (%v)", res.StoreWrite, res.DBAccess, res.ProtectHide)
	}
	tbl := Fig10Table(res)
	if !strings.Contains(tbl.String(), "protect via surrogate") {
		t.Error("table missing rows")
	}
}

// TestPaperGridSweep validates the §6.3 invariants over the full 50-graph
// paper grid; skipped under -short because it takes a few seconds.
func TestPaperGridSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper grid skipped in -short mode")
	}
	rows, err := SyntheticSweep(workload.PaperGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("rows = %d, want 50", len(rows))
	}
	for _, r := range rows {
		if r.DeltaOpacity() < -1e-9 || r.DeltaUtility() < -1e-9 {
			t.Errorf("prot=%v conn=%.0f: negative difference (dOp=%v dU=%v)",
				r.ProtectFraction, r.MeanConnected, r.DeltaOpacity(), r.DeltaUtility())
		}
		if r.MeanConnected < 30 {
			t.Errorf("connectedness %v below the paper's 30 floor", r.MeanConnected)
		}
	}
}

func TestFig9AndFig8Tables(t *testing.T) {
	rows, err := SyntheticSweep(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	opa, util := Fig9Tables(rows)
	if len(opa.Rows) != len(rows) || len(util.Rows) != len(rows) {
		t.Errorf("table rows = %d/%d, want %d", len(opa.Rows), len(util.Rows), len(rows))
	}
	// Rows are sorted by protection fraction then connectedness.
	prev := ""
	for _, r := range opa.Rows {
		if r[0] < prev {
			t.Errorf("fig9a rows unsorted: %s after %s", r[0], prev)
		}
		prev = r[0]
	}
	if !strings.Contains(opa.Header[3], "scale-free") {
		t.Error("fig9a missing the scale-free column")
	}
	f8 := Fig8Table(rows)
	if len(f8.Rows) == 0 {
		t.Error("fig8 table empty")
	}
	if csv := f8.CSV(); !strings.Contains(csv, "strategy,opacityBin,maxUtility") {
		t.Errorf("fig8 csv header wrong: %s", csv)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.Add("x", 1.23456)
	tbl.Add("with,comma", "quo\"te")
	s := tbl.String()
	if !strings.Contains(s, "1.235") || !strings.Contains(s, "T") {
		t.Errorf("render: %s", s)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, `"with,comma"`) || !strings.Contains(csv, `"quo""te"`) {
		t.Errorf("csv escaping: %s", csv)
	}
}

func TestScenarioString(t *testing.T) {
	if Fig2a.String() != "2a" || Fig2d.String() != "2d" {
		t.Error("scenario strings wrong")
	}
	if Scenario(99).String() == "" {
		t.Error("unknown scenario should render")
	}
}

func TestAllAccountsVerify(t *testing.T) {
	r := NewRunning()
	for _, s := range []Scenario{Fig2a, Fig2b, Fig2c, Fig2d} {
		spec, a, err := r.Account(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := account.VerifySound(spec, a); err != nil {
			t.Errorf("%v unsound: %v", s, err)
		}
		if err := account.VerifyMaximal(spec, a); err != nil {
			t.Errorf("%v not maximal: %v", s, err)
		}
		// Nothing in the account requires more privilege than the viewer
		// has.
		u := measure.Utilities(spec, a)
		if u.Path < 0 || u.Path > 1 || u.Node < 0 || u.Node > 1 {
			t.Errorf("%v utilities out of range: %+v", s, u)
		}
	}
}

// Package eval regenerates every table and figure of the paper's
// evaluation (§6 plus the worked examples of §3–4): Table 1, Figure 3,
// Figure 7, Figure 8, Figure 9 and Figure 10. Each experiment returns
// structured rows and can render itself as a text table; cmd/experiments
// drives them all and EXPERIMENTS.md records paper-vs-measured values.
package eval

import (
	"fmt"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// Running is the paper's running example: the Figure 1a graph, the Figure
// 1b privilege ordering, and the four Figure 2 protection scenarios.
//
// The paper never lists Figure 1a's edge set; this reconstruction is fixed
// so that every number stated in §4.1 comes out exactly: %P(b')=1/10,
// %P(h')=3/10, PathUtility(G'_N)=.13, NodeUtility(G'_N)=6/11 and the
// Figure 2 path utilities .38/.27/.13/.27.
type Running struct {
	Graph   *graph.Graph
	Lattice *privilege.Lattice
	// Viewer is the consumer predicate of the walkthrough: High-2.
	Viewer privilege.Predicate
	// FG is the sensitive edge f->g whose opacity Table 1 reports.
	FG graph.EdgeID
}

// NewRunning builds the running-example fixture.
func NewRunning() *Running {
	g := graph.New()
	for _, id := range []graph.NodeID{"a1", "a2", "b", "c", "d", "e", "f", "g", "h", "i", "j"} {
		g.AddNodeID(id)
	}
	// A backbone chain a1 -> a2 -> b -> c -> d -> e -> f -> g -> h -> i -> j
	// plus the direct c -> f edge whose markings Figure 2 varies. Under the
	// directed to-or-from connectivity of §4.1 every node of G is connected
	// to all 10 others, %P(b')=1/10 and %P(h')=3/10 in the naive account,
	// and the four Figure 2 accounts measure .38/.27/.13/.27.
	for _, e := range [][2]graph.NodeID{
		{"a1", "a2"}, {"a2", "b"},
		{"b", "c"},
		{"c", "d"}, {"d", "e"}, {"e", "f"},
		{"c", "f"},
		{"f", "g"},
		{"g", "h"}, {"h", "i"}, {"i", "j"},
	} {
		g.MustAddEdge(e[0], e[1])
	}
	return &Running{
		Graph:   g,
		Lattice: privilege.FigureOneLattice(),
		Viewer:  "High-2",
		FG:      graph.EdgeID{From: "f", To: "g"},
	}
}

// sensitiveNodes are the Figure 1a nodes shaded above the High-2 viewer's
// privileges: the sources a1, a2 and the middle layer d, e, f.
var sensitiveNodes = []graph.NodeID{"a1", "a2", "d", "e", "f"}

// Scenario identifies one of the Figure 2 protection strategies for the
// sensitive node f (the other sensitive nodes are always hidden outright).
type Scenario int

const (
	// Fig2a: surrogate node f' with visible edges.
	Fig2a Scenario = iota
	// Fig2b: f hidden, its incidences marked Surrogate: surrogate edge c-g.
	Fig2b
	// Fig2c: surrogate node f' with hidden edges: f' isolated.
	Fig2c
	// Fig2d: surrogate node f' and Surrogate-marked incidences: f'
	// isolated plus surrogate edge c-g.
	Fig2d
)

func (s Scenario) String() string {
	switch s {
	case Fig2a:
		return "2a"
	case Fig2b:
		return "2b"
	case Fig2c:
		return "2c"
	case Fig2d:
		return "2d"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// baseSpec labels the sensitive nodes High-1 (incomparable with the High-2
// viewer) and hides the incident edges of every sensitive node except f,
// whose treatment each scenario chooses.
func (r *Running) baseSpec() (*account.Spec, error) {
	lb := privilege.NewLabeling(r.Lattice)
	pol := policy.New(r.Lattice)
	for _, id := range sensitiveNodes {
		if err := lb.SetNode(id, "High-1"); err != nil {
			return nil, err
		}
		if id == "f" {
			continue
		}
		if err := pol.SetNodeThreshold(id, "High-1", policy.Hide); err != nil {
			return nil, err
		}
	}
	return &account.Spec{
		Graph:      r.Graph,
		Labeling:   lb,
		Policy:     pol,
		Surrogates: surrogate.NewRegistry(lb),
	}, nil
}

func (r *Running) addFPrime(spec *account.Spec) error {
	return spec.Surrogates.Add("f", surrogate.Surrogate{
		ID:        "f'",
		Features:  graph.Features{"desc": "a trusted law enforcement source"},
		Lowest:    "Low-2",
		InfoScore: 0.5,
	})
}

// Spec assembles the account.Spec for one Figure 2 scenario.
func (r *Running) Spec(s Scenario) (*account.Spec, error) {
	spec, err := r.baseSpec()
	if err != nil {
		return nil, err
	}
	switch s {
	case Fig2a:
		if err := r.addFPrime(spec); err != nil {
			return nil, err
		}
		// f's incidences stay Visible: the edges attach to f'.
	case Fig2b:
		if err := spec.Policy.SetNodeThreshold("f", "High-1", policy.Surrogate); err != nil {
			return nil, err
		}
	case Fig2c:
		if err := r.addFPrime(spec); err != nil {
			return nil, err
		}
		if err := spec.Policy.SetNodeThreshold("f", "High-1", policy.Hide); err != nil {
			return nil, err
		}
	case Fig2d:
		if err := r.addFPrime(spec); err != nil {
			return nil, err
		}
		if err := spec.Policy.SetNodeThreshold("f", "High-1", policy.Surrogate); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("eval: unknown scenario %v", s)
	}
	return spec, nil
}

// Account generates the protected account for one scenario as seen by the
// High-2 viewer.
func (r *Running) Account(s Scenario) (*account.Spec, *account.Account, error) {
	spec, err := r.Spec(s)
	if err != nil {
		return nil, nil, err
	}
	a, err := account.Generate(spec, r.Viewer)
	if err != nil {
		return nil, nil, err
	}
	return spec, a, nil
}

// NaiveAccount generates G'_N, the Figure 1c all-or-nothing account.
func (r *Running) NaiveAccount() (*account.Spec, *account.Account, error) {
	spec, err := r.baseSpec()
	if err != nil {
		return nil, nil, err
	}
	a, err := account.GenerateHide(spec, r.Viewer)
	if err != nil {
		return nil, nil, err
	}
	return spec, a, nil
}

package eval

import (
	"strings"
	"testing"
)

func TestScorecardAllClaimsPass(t *testing.T) {
	claims, err := Scorecard()
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 8 {
		t.Fatalf("claims = %d, want 8", len(claims))
	}
	ids := map[string]bool{}
	for _, c := range claims {
		if ids[c.ID] {
			t.Errorf("duplicate claim id %s", c.ID)
		}
		ids[c.ID] = true
		if !c.Pass {
			t.Errorf("claim %s FAILED: %s (%s)", c.ID, c.Text, c.Detail)
		}
		if c.Detail == "" {
			t.Errorf("claim %s has no detail", c.ID)
		}
	}
	tbl, err := ScorecardTable()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "PASS") {
		t.Error("rendered scorecard missing verdicts")
	}
}

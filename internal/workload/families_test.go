package workload

import (
	"testing"

	"repro/internal/graph"
)

func familyCfg(seed int64) SyntheticConfig {
	return SyntheticConfig{Nodes: 100, TargetConnected: 20, ProtectFraction: 0.3, Seed: seed}
}

func TestGenerateFamilyInvariants(t *testing.T) {
	for _, fam := range Families() {
		syn, err := GenerateFamily(fam, familyCfg(5))
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		g := syn.Graph
		if g.NumNodes() != 100 {
			t.Errorf("%s: nodes = %d", fam, g.NumNodes())
		}
		if !g.IsDAG() {
			t.Errorf("%s: cyclic", fam)
		}
		if !g.IsWeaklyConnected() {
			t.Errorf("%s: disconnected", fam)
		}
		wantProt := int(0.3*float64(g.NumEdges()) + 0.5)
		if len(syn.Protected) != wantProt {
			t.Errorf("%s: protected = %d, want %d", fam, len(syn.Protected), wantProt)
		}
		if syn.MeanConnected <= 0 {
			t.Errorf("%s: mean connected = %v", fam, syn.MeanConnected)
		}
	}
	if _, err := GenerateFamily("banana", familyCfg(5)); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestGenerateFamilyDeterministic(t *testing.T) {
	for _, fam := range Families() {
		a, err := GenerateFamily(fam, familyCfg(9))
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateFamily(fam, familyCfg(9))
		if err != nil {
			t.Fatal(err)
		}
		if !a.Graph.Equal(b.Graph) {
			t.Errorf("%s: same seed produced different graphs", fam)
		}
	}
}

func TestFamilyShapesDiffer(t *testing.T) {
	layered, err := GenerateFamily(FamilyLayered, familyCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	scaleFree, err := GenerateFamily(FamilyScaleFree, familyCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	// Scale-free graphs have hubs: a markedly higher max degree than the
	// layered family at similar size.
	maxDeg := func(g *graph.Graph) int {
		m := 0
		for _, id := range g.Nodes() {
			if d := g.Degree(id); d > m {
				m = d
			}
		}
		return m
	}
	if maxDeg(scaleFree.Graph) <= maxDeg(layered.Graph) {
		t.Errorf("scale-free max degree %d should exceed layered %d",
			maxDeg(scaleFree.Graph), maxDeg(layered.Graph))
	}
	// Layered graphs have a long directed diameter relative to layers.
	l, _, ok := layered.Graph.LongestPathDAG()
	if !ok || l < 5 {
		t.Errorf("layered longest path = %d, want >= 5", l)
	}
}

package workload

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/plus"
)

func collectLarge(t *testing.T, cfg LargeConfig) []plus.Batch {
	t.Helper()
	var got []plus.Batch
	if err := GenerateLarge(cfg, func(b plus.Batch) error {
		got = append(got, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestGenerateLarge(t *testing.T) {
	cfg := LargeConfig{Nodes: 2000, Seed: 7, BatchSize: 512}
	batches := collectLarge(t, cfg)

	objects, edges, surrogates := 0, 0, 0
	names := map[string]bool{}
	for i, b := range batches {
		if len(b.Objects) > 512 {
			t.Fatalf("batch %d carries %d objects, want <= 512", i, len(b.Objects))
		}
		objects += len(b.Objects)
		edges += len(b.Edges)
		surrogates += len(b.Surrogates)
		for _, o := range b.Objects {
			names[o.Name] = true
			if o.Features["owner"] == "" || o.Features["stage"] == "" || o.Features["batch"] == "" {
				t.Fatalf("object %s missing pooled features: %+v", o.ID, o.Features)
			}
		}
		for _, e := range b.Edges {
			if e.From >= e.To {
				t.Fatalf("edge %s -> %s violates the forward ranking", e.From, e.To)
			}
		}
	}
	if objects != cfg.Nodes {
		t.Fatalf("emitted %d objects, want %d", objects, cfg.Nodes)
	}
	// Each node draws EdgesPerNode sources with within-node dedupe, so the
	// total sits a little under EdgesPerNode*(Nodes-1).
	if edges < 4*cfg.Nodes || edges > 5*cfg.Nodes {
		t.Fatalf("emitted %d edges, want roughly 5 per node", edges)
	}
	if surrogates != cfg.Nodes/1000 {
		t.Fatalf("emitted %d surrogates, want %d", surrogates, cfg.Nodes/1000)
	}
	// The name pool keeps point predicates selective but non-unique.
	if want := cfg.Nodes / 20; len(names) != want {
		t.Fatalf("names drawn = %d, want the full %d-entry pool", len(names), want)
	}

	// Determinism: the same seed streams identical batches.
	if again := collectLarge(t, cfg); !reflect.DeepEqual(batches, again) {
		t.Fatal("GenerateLarge is not deterministic for a fixed seed")
	}

	// The stream must ingest cleanly (edges only reference emitted ranks,
	// surrogates ride with their originals).
	b := plus.NewMemBackend(4)
	t.Cleanup(func() { b.Close() })
	for _, batch := range batches {
		if _, err := b.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.NumObjects(); got != cfg.Nodes {
		t.Fatalf("backend holds %d objects, want %d", got, cfg.Nodes)
	}

	// emit errors abort the stream.
	boom := errors.New("boom")
	calls := 0
	err := GenerateLarge(cfg, func(plus.Batch) error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("emit error: err=%v calls=%d, want first error returned", err, calls)
	}
}

package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/plus"
)

// LargeConfig parameterises GenerateLarge, the streaming synthetic
// provenance DAG behind the index benchmarks. Unlike GenerateSynthetic it
// never materialises a graph: records are emitted in batches, so the only
// bound on Nodes is the target backend's capacity.
type LargeConfig struct {
	// Nodes is the graph size.
	Nodes int
	// EdgesPerNode is how many incoming edges each node draws from random
	// earlier nodes (the DAG is ranked, so edges always point forward);
	// default 5.
	EdgesPerNode int
	// NamePool is the number of distinct names shared across nodes, so a
	// point name predicate matches ~Nodes/NamePool nodes; default
	// Nodes/20 (min 1).
	NamePool int
	// Owners, Stages, Batches are the attribute pool sizes for the
	// owner/stage/batch features; defaults 100, 10, 1000.
	Owners, Stages, Batches int
	// ProtectEvery protects one node in that many with a surrogate
	// (0 disables); default 1000.
	ProtectEvery int
	// Seed drives the deterministic RNG.
	Seed int64
	// BatchSize is the number of objects per emitted batch; default 4096.
	BatchSize int
}

func (c LargeConfig) withDefaults() LargeConfig {
	if c.EdgesPerNode == 0 {
		c.EdgesPerNode = 5
	}
	if c.NamePool == 0 {
		c.NamePool = c.Nodes / 20
	}
	if c.NamePool < 1 {
		c.NamePool = 1
	}
	if c.Owners == 0 {
		c.Owners = 100
	}
	if c.Stages == 0 {
		c.Stages = 10
	}
	if c.Batches == 0 {
		c.Batches = 1000
	}
	if c.ProtectEvery == 0 {
		c.ProtectEvery = 1000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 4096
	}
	return c
}

// LargeNodeID names node i of a GenerateLarge graph.
func LargeNodeID(i int) string { return fmt.Sprintf("n%07d", i) }

// LargeName names the k-th entry of the shared name pool.
func LargeName(k int) string { return fmt.Sprintf("name%05d", k) }

// LargeOwner names the k-th entry of the owner attribute pool.
func LargeOwner(k int) string { return fmt.Sprintf("u%04d", k) }

// GenerateLarge streams a deterministic ranked provenance DAG into emit:
// Nodes objects named from a shared pool, carrying owner/stage/batch
// features drawn from small pools (the shape secondary indexes thrive
// on), wired with EdgesPerNode forward edges each, with a sparse
// protected minority carrying surrogates. emit is called with batches of
// at most BatchSize objects plus their edges; an emit error aborts the
// generation.
func GenerateLarge(cfg LargeConfig, emit func(plus.Batch) error) error {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		return fmt.Errorf("workload: GenerateLarge needs at least 1 node, got %d", cfg.Nodes)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	batch := plus.Batch{}
	flush := func() error {
		if batch.Len() == 0 {
			return nil
		}
		err := emit(batch)
		batch = plus.Batch{}
		return err
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := LargeNodeID(i)
		o := plus.Object{
			ID:   id,
			Kind: plus.Data,
			Name: LargeName(r.Intn(cfg.NamePool)),
			Features: map[string]string{
				"owner": LargeOwner(r.Intn(cfg.Owners)),
				"stage": fmt.Sprintf("s%d", r.Intn(cfg.Stages)),
				"batch": fmt.Sprintf("b%05d", r.Intn(cfg.Batches)),
			},
		}
		if i%4 == 3 {
			o.Kind = plus.Invocation
		}
		if cfg.ProtectEvery > 0 && i%cfg.ProtectEvery == cfg.ProtectEvery/2 {
			o.Lowest, o.Protect = "Protected", "surrogate"
			batch.Surrogates = append(batch.Surrogates, plus.SurrogateSpec{
				ForID: id, ID: id + "~", Name: "redacted", InfoScore: 0.5,
			})
		}
		batch.Objects = append(batch.Objects, o)
		// Forward wiring: draw sources from earlier ranks, dedupe within
		// the node (the rank gap makes cross-node duplicates impossible).
		if i > 0 {
			srcs := map[int]bool{}
			for e := 0; e < cfg.EdgesPerNode; e++ {
				j := r.Intn(i)
				if srcs[j] {
					continue
				}
				srcs[j] = true
				batch.Edges = append(batch.Edges, plus.Edge{
					From: LargeNodeID(j), To: id, Label: "input-to",
				})
			}
		}
		if len(batch.Objects) >= cfg.BatchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

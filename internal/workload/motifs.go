// Package workload builds the evaluation inputs of §6: the seven classic
// graph motifs of Figure 6 (star, chain, lattice, diamond, tree, inverted
// tree, bipartite), each with its designated protected edge, and the
// 200-node synthetic graphs of §6.1.2 with tunable connectedness and
// protection fraction.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// ProtectedPredicate is the single sensitive privilege-predicate used by
// the evaluation workloads (a two-level lattice: Protected above Public).
const ProtectedPredicate privilege.Predicate = "Protected"

// Motif is one of the Figure 6 graphs: a 4–5 node directed graph and the
// edge chosen for protection (the dashed edge of the figure).
type Motif struct {
	Name      string
	Graph     *graph.Graph
	Protected graph.EdgeID
}

func build(name string, protected graph.EdgeID, nodes []graph.NodeID, edges [][2]graph.NodeID) Motif {
	g := graph.New()
	for _, id := range nodes {
		g.AddNodeID(id)
	}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1])
	}
	if _, ok := g.EdgeByID(protected); !ok {
		panic(fmt.Sprintf("workload: motif %s protects missing edge %s", name, protected))
	}
	return Motif{Name: name, Graph: g, Protected: protected}
}

// Motifs returns the seven Figure 6 motifs in the paper's order. The
// figure does not dictate edge directions, so each motif is oriented to
// exhibit the behaviour §6.2 reports: a surrogate edge is possible for all
// motifs except Bipartite (no nodes in deeper levels past the protected
// edge's destination) and is redundant for Lattice (the contraction target
// is already a direct edge).
func Motifs() []Motif {
	return []Motif{
		// Star: hub m with two inputs and two outputs; protecting a->m
		// contracts to a->x, a->y.
		build("Star",
			graph.EdgeID{From: "a", To: "m"},
			[]graph.NodeID{"a", "b", "m", "x", "y"},
			[][2]graph.NodeID{{"a", "m"}, {"b", "m"}, {"m", "x"}, {"m", "y"}}),
		// Chain: protecting the first link contracts to a->c.
		build("Chain",
			graph.EdgeID{From: "a", To: "b"},
			[]graph.NodeID{"a", "b", "c", "d", "e"},
			[][2]graph.NodeID{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}}),
		// Lattice: a->d already exists, so the contraction of a->b is
		// redundant and surrogating equals hiding (§6.2).
		build("Lattice",
			graph.EdgeID{From: "a", To: "b"},
			[]graph.NodeID{"a", "b", "c", "d", "e"},
			[][2]graph.NodeID{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "d"}, {"c", "d"}, {"d", "e"}}),
		// Diamond: two parallel branches re-converging.
		build("Diamond",
			graph.EdgeID{From: "a", To: "b"},
			[]graph.NodeID{"a", "b", "c", "d"},
			[][2]graph.NodeID{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}}),
		// Tree: root fanning out; protecting r->a orphans a subtree when
		// hiding but contracts to r->c, r->d when surrogating.
		build("Tree",
			graph.EdgeID{From: "r", To: "a"},
			[]graph.NodeID{"r", "a", "b", "c", "d"},
			[][2]graph.NodeID{{"r", "a"}, {"r", "b"}, {"a", "c"}, {"a", "d"}}),
		// Inverted tree: leaves converging on a root.
		build("InvertedTree",
			graph.EdgeID{From: "c", To: "a"},
			[]graph.NodeID{"r", "a", "b", "c", "d"},
			[][2]graph.NodeID{{"c", "a"}, {"d", "a"}, {"a", "r"}, {"b", "r"}}),
		// Bipartite: two levels only; the protected edge's destination has
		// no successors, so no surrogate edge can be drawn (§6.2).
		build("Bipartite",
			graph.EdgeID{From: "a", To: "x"},
			[]graph.NodeID{"a", "b", "x", "y"},
			[][2]graph.NodeID{{"a", "x"}, {"a", "y"}, {"b", "x"}, {"b", "y"}}),
	}
}

// ProtectSpec assembles an account.Spec that protects the given edges of g
// for consumers below ProtectedPredicate. With asSurrogate the protected
// edges are marked [Visible, Surrogate] (contraction); otherwise
// [Visible, Hide] (the show/hide baseline). Nodes stay public: §6
// evaluates edge surrogating only.
func ProtectSpec(g *graph.Graph, protected []graph.EdgeID, asSurrogate bool) (*account.Spec, error) {
	return ProtectSpecSide(g, protected, asSurrogate, policy.DstSide)
}

// ProtectSpecSide is ProtectSpec with an explicit choice of which
// incidence the protection marks — the ablation knob for the
// destination-side convention DESIGN.md argues for.
func ProtectSpecSide(g *graph.Graph, protected []graph.EdgeID, asSurrogate bool, side policy.Side) (*account.Spec, error) {
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	for _, e := range protected {
		if _, ok := g.EdgeByID(e); !ok {
			return nil, fmt.Errorf("workload: protected edge %s not in graph", e)
		}
		if err := pol.ProtectEdgeSide(e, ProtectedPredicate, asSurrogate, side); err != nil {
			return nil, err
		}
	}
	return &account.Spec{
		Graph:      g,
		Labeling:   lb,
		Policy:     pol,
		Surrogates: surrogate.NewRegistry(lb),
	}, nil
}

// NodeProtectSpec assembles a spec in which the given nodes are sensitive
// (lowest = ProtectedPredicate) while their incidences stay Visible, the
// Figure 2a style: edges attach to whatever stands in for the node. When
// nullDefaults is set the registry falls back to featureless <null>
// surrogates, so the sensitive nodes remain as connected placeholders;
// without it they vanish and their paths are summarised by surrogate
// edges. This is the workload behind the null-surrogate ablation: the
// paper argues (§4.1) that even a null surrogate "may still play an
// important part in improving the connectivity of the protected account".
func NodeProtectSpec(g *graph.Graph, protected []graph.NodeID, nullDefaults bool) (*account.Spec, error) {
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	reg := surrogate.NewRegistry(lb)
	if nullDefaults {
		reg.EnableNullDefault()
	}
	for _, id := range protected {
		if !g.HasNode(id) {
			return nil, fmt.Errorf("workload: protected node %s not in graph", id)
		}
		if err := lb.SetNode(id, ProtectedPredicate); err != nil {
			return nil, err
		}
	}
	return &account.Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: reg}, nil
}

// SelectNodes deterministically picks a fraction of g's nodes for
// protection.
func SelectNodes(g *graph.Graph, fraction float64, seed int64) []graph.NodeID {
	ids := g.Nodes()
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	k := int(fraction*float64(len(ids)) + 0.5)
	if k > len(ids) {
		k = len(ids)
	}
	picked := append([]graph.NodeID(nil), ids[:k]...)
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	return picked
}

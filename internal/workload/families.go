package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Family names a synthetic graph family. The paper evaluates one family
// (uniform random connected DAGs); the robustness extension sweeps the
// same protection comparison across structurally different families to
// check that "surrogating beats hiding" is not an artefact of the
// generator.
type Family string

const (
	// FamilyRandom is the §6.1.2 generator: a random spanning arborescence
	// plus uniform random forward edges.
	FamilyRandom Family = "random"
	// FamilyLayered arranges nodes in consecutive layers with edges only
	// between adjacent layers — the shape of staged workflow provenance.
	FamilyLayered Family = "layered"
	// FamilyScaleFree grows the graph by preferential attachment: each new
	// node draws edges from existing nodes chosen proportionally to
	// degree, yielding hubs — the shape of social and citation networks.
	FamilyScaleFree Family = "scale-free"
)

// Families lists all supported families.
func Families() []Family {
	return []Family{FamilyRandom, FamilyLayered, FamilyScaleFree}
}

// GenerateFamily builds a synthetic graph of the requested family with the
// usual §6.1.2 guarantees (directed, acyclic, weakly connected) and the
// same protected-edge selection as GenerateSynthetic. The TargetConnected
// tuning applies to the random family only; the structured families derive
// their density from their own growth rules.
func GenerateFamily(family Family, cfg SyntheticConfig) (*Synthetic, error) {
	switch family {
	case FamilyRandom:
		return GenerateSynthetic(cfg)
	case FamilyLayered:
		return generateStructured(cfg, buildLayered)
	case FamilyScaleFree:
		return generateStructured(cfg, buildScaleFree)
	default:
		return nil, fmt.Errorf("workload: unknown family %q", family)
	}
}

func generateStructured(cfg SyntheticConfig, build func(r *rand.Rand, n int) *graph.Graph) (*Synthetic, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := build(r, cfg.Nodes)

	edges := g.Edges()
	r.Shuffle(len(edges), func(a, b int) { edges[a], edges[b] = edges[b], edges[a] })
	k := int(cfg.ProtectFraction*float64(len(edges)) + 0.5)
	protected := make([]graph.EdgeID, 0, k)
	for _, e := range edges[:k] {
		protected = append(protected, e.ID())
	}
	return &Synthetic{
		Config:        cfg,
		Graph:         g,
		Protected:     protected,
		MeanConnected: meanConnectedPairs(g),
	}, nil
}

// buildLayered distributes n nodes over ~sqrt(n) layers; every node in
// layer i+1 receives an edge from a random node in layer i (weak
// connectivity), and extra adjacent-layer edges bring the mean forward
// degree to ~2.
func buildLayered(r *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(fmt.Sprintf("n%03d", i))
		g.AddNodeID(ids[i])
	}
	layers := 1
	for layers*layers < n {
		layers++
	}
	layerOf := func(i int) int { return i * layers / n }
	byLayer := make([][]int, layers)
	for i := 0; i < n; i++ {
		l := layerOf(i)
		byLayer[l] = append(byLayer[l], i)
	}
	// Spanning edges between adjacent layers.
	for l := 1; l < layers; l++ {
		if len(byLayer[l-1]) == 0 || len(byLayer[l]) == 0 {
			continue
		}
		for _, i := range byLayer[l] {
			j := byLayer[l-1][r.Intn(len(byLayer[l-1]))]
			if !g.HasEdge(ids[j], ids[i]) {
				g.MustAddEdge(ids[j], ids[i])
			}
		}
	}
	// Every non-final-layer node must feed the next layer, or early-layer
	// nodes that were never sampled stay isolated.
	for l := 0; l+1 < layers; l++ {
		if len(byLayer[l+1]) == 0 {
			continue
		}
		for _, i := range byLayer[l] {
			if g.OutDegree(ids[i]) > 0 {
				continue
			}
			j := byLayer[l+1][r.Intn(len(byLayer[l+1]))]
			if !g.HasEdge(ids[i], ids[j]) {
				g.MustAddEdge(ids[i], ids[j])
			}
		}
	}
	// Densify within adjacent layers.
	extra := n
	for tries := 0; extra > 0 && tries < 20*n; tries++ {
		l := 1 + r.Intn(layers-1)
		if len(byLayer[l-1]) == 0 || len(byLayer[l]) == 0 {
			continue
		}
		i := byLayer[l][r.Intn(len(byLayer[l]))]
		j := byLayer[l-1][r.Intn(len(byLayer[l-1]))]
		if !g.HasEdge(ids[j], ids[i]) {
			g.MustAddEdge(ids[j], ids[i])
			extra--
		}
	}
	return g
}

// buildScaleFree grows a DAG by preferential attachment: node i (in rank
// order, so the graph stays acyclic) receives m=2 in-edges from earlier
// nodes sampled proportionally to their current degree (plus one, so
// isolated early nodes stay reachable).
func buildScaleFree(r *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(fmt.Sprintf("n%03d", i))
		g.AddNodeID(ids[i])
	}
	const m = 2
	for i := 1; i < n; i++ {
		targets := m
		if i < m {
			targets = i
		}
		for t := 0; t < targets; t++ {
			// Weighted sample over earlier nodes by degree + 1.
			total := 0
			for j := 0; j < i; j++ {
				total += g.Degree(ids[j]) + 1
			}
			pick := r.Intn(total)
			j := 0
			for acc := 0; j < i; j++ {
				acc += g.Degree(ids[j]) + 1
				if pick < acc {
					break
				}
			}
			if j >= i {
				j = i - 1
			}
			if !g.HasEdge(ids[j], ids[i]) {
				g.MustAddEdge(ids[j], ids[i])
			}
		}
	}
	return g
}

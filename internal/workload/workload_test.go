package workload

import (
	"testing"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

func TestMotifsWellFormed(t *testing.T) {
	motifs := Motifs()
	if len(motifs) != 7 {
		t.Fatalf("motifs = %d, want 7", len(motifs))
	}
	names := map[string]bool{}
	for _, m := range motifs {
		if names[m.Name] {
			t.Errorf("duplicate motif name %s", m.Name)
		}
		names[m.Name] = true
		if n := m.Graph.NumNodes(); n < 4 || n > 5 {
			t.Errorf("%s has %d nodes, want 4-5 (§6.1.1)", m.Name, n)
		}
		if !m.Graph.IsWeaklyConnected() {
			t.Errorf("%s is not weakly connected", m.Name)
		}
		if !m.Graph.IsDAG() {
			t.Errorf("%s is not acyclic", m.Name)
		}
		if _, ok := m.Graph.EdgeByID(m.Protected); !ok {
			t.Errorf("%s protected edge %s missing", m.Name, m.Protected)
		}
	}
	for _, want := range []string{"Star", "Chain", "Lattice", "Diamond", "Tree", "InvertedTree", "Bipartite"} {
		if !names[want] {
			t.Errorf("missing motif %s", want)
		}
	}
}

// protect generates hide and surrogate accounts for a motif.
func protect(t *testing.T, m Motif) (hideSpec, surrSpec *account.Spec, hide, surr *account.Account) {
	t.Helper()
	var err error
	hideSpec, err = ProtectSpec(m.Graph, []graph.EdgeID{m.Protected}, false)
	if err != nil {
		t.Fatal(err)
	}
	surrSpec, err = ProtectSpec(m.Graph, []graph.EdgeID{m.Protected}, true)
	if err != nil {
		t.Fatal(err)
	}
	hide, err = account.Generate(hideSpec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	surr, err = account.Generate(surrSpec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	return hideSpec, surrSpec, hide, surr
}

// §6.2: surrogating differs from hiding for every motif except Bipartite
// and Lattice, where the accounts coincide.
func TestMotifSurrogateVsHideShape(t *testing.T) {
	for _, m := range Motifs() {
		_, _, hide, surr := protect(t, m)
		if !hide.Graph.HasNode(graph.NodeID(m.Protected.From)) {
			t.Errorf("%s: protected edge source missing from account", m.Name)
		}
		if hide.Graph.HasEdge(m.Protected.From, m.Protected.To) ||
			surr.Graph.HasEdge(m.Protected.From, m.Protected.To) {
			t.Errorf("%s: protected edge leaked", m.Name)
		}
		same := hide.Graph.Equal(surr.Graph)
		wantSame := m.Name == "Bipartite" || m.Name == "Lattice"
		if same != wantSame {
			t.Errorf("%s: hide==surrogate is %v, want %v\nhide: %v\nsurr: %v",
				m.Name, same, wantSame, hide.Graph.Edges(), surr.Graph.Edges())
		}
	}
}

// The protected consumer always sees the full motif.
func TestMotifProtectedConsumerSeesAll(t *testing.T) {
	for _, m := range Motifs() {
		spec, err := ProtectSpec(m.Graph, []graph.EdgeID{m.Protected}, true)
		if err != nil {
			t.Fatal(err)
		}
		a, err := account.Generate(spec, ProtectedPredicate)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Graph.Equal(m.Graph) {
			t.Errorf("%s: protected consumer account differs from G", m.Name)
		}
	}
}

// Motif utility/opacity differences are never negative (the paper's §6.2
// headline: surrogating is at least as good as hiding on both axes).
func TestMotifDifferencesNonNegative(t *testing.T) {
	adv := measure.Figure5()
	for _, m := range Motifs() {
		hs, ss, hide, surr := protect(t, m)
		du := measure.PathUtility(ss, surr) - measure.PathUtility(hs, hide)
		do := measure.EdgeOpacity(ss, surr, m.Protected, adv) - measure.EdgeOpacity(hs, hide, m.Protected, adv)
		if du < -1e-9 || do < -1e-9 {
			t.Errorf("%s: Δutility=%v Δopacity=%v, want both >= 0", m.Name, du, do)
		}
		zero := m.Name == "Bipartite" || m.Name == "Lattice"
		if zero && (du > 1e-9 || do > 1e-9) {
			t.Errorf("%s: expected zero differences, got Δutility=%v Δopacity=%v", m.Name, du, do)
		}
		if !zero && du <= 1e-9 && do <= 1e-9 {
			t.Errorf("%s: expected some positive difference, got Δutility=%v Δopacity=%v", m.Name, du, do)
		}
	}
}

func TestProtectSpecValidation(t *testing.T) {
	m := Motifs()[0]
	if _, err := ProtectSpec(m.Graph, []graph.EdgeID{{From: "zz", To: "qq"}}, true); err == nil {
		t.Error("missing protected edge accepted")
	}
}

func TestGenerateSyntheticProperties(t *testing.T) {
	cfg := SyntheticConfig{Nodes: 100, TargetConnected: 25, ProtectFraction: 0.3, Seed: 7}
	s, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph.NumNodes() != 100 {
		t.Errorf("nodes = %d", s.Graph.NumNodes())
	}
	if !s.Graph.IsWeaklyConnected() {
		t.Error("synthetic graph disconnected (§6.1.2 requires none)")
	}
	if !s.Graph.IsDAG() {
		t.Error("synthetic graph has a cycle")
	}
	if s.MeanConnected < cfg.TargetConnected {
		t.Errorf("mean connected %.1f below target %.1f", s.MeanConnected, cfg.TargetConnected)
	}
	wantProt := int(0.3*float64(s.Graph.NumEdges()) + 0.5)
	if len(s.Protected) != wantProt {
		t.Errorf("protected = %d, want %d", len(s.Protected), wantProt)
	}
	seen := map[graph.EdgeID]bool{}
	for _, e := range s.Protected {
		if seen[e] {
			t.Errorf("duplicate protected edge %s", e)
		}
		seen[e] = true
		if _, ok := s.Graph.EdgeByID(e); !ok {
			t.Errorf("protected edge %s not in graph", e)
		}
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{Nodes: 60, TargetConnected: 15, ProtectFraction: 0.5, Seed: 42}
	a, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Equal(b.Graph) {
		t.Error("same seed produced different graphs")
	}
	if len(a.Protected) != len(b.Protected) {
		t.Fatal("protected sets differ in size")
	}
	for i := range a.Protected {
		if a.Protected[i] != b.Protected[i] {
			t.Errorf("protected[%d] differs: %s vs %s", i, a.Protected[i], b.Protected[i])
		}
	}
	c, err := GenerateSynthetic(SyntheticConfig{Nodes: 60, TargetConnected: 15, ProtectFraction: 0.5, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.Equal(c.Graph) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{Nodes: 1, TargetConnected: 1, ProtectFraction: 0.5},
		{Nodes: 10, TargetConnected: 0.5, ProtectFraction: 0.5},
		{Nodes: 10, TargetConnected: 50, ProtectFraction: 0.5},
		{Nodes: 10, TargetConnected: 5, ProtectFraction: 1.5},
		{Nodes: 10, TargetConnected: 5, ProtectFraction: -0.1},
	}
	for i, cfg := range bad {
		if _, err := GenerateSynthetic(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestProtectSpecSide(t *testing.T) {
	m := Motifs()[1] // chain a->b->c->d->e, protect a->b
	// Destination-side: surrogate edge a->c. Source-side: a has no
	// predecessors, so no surrogate edge at all.
	dst, err := ProtectSpecSide(m.Graph, []graph.EdgeID{m.Protected}, true, policy.DstSide)
	if err != nil {
		t.Fatal(err)
	}
	aDst, err := account.Generate(dst, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	if !aDst.Graph.HasEdge("a", "c") {
		t.Errorf("dst-side: missing a->c: %v", aDst.Graph.Edges())
	}
	src, err := ProtectSpecSide(m.Graph, []graph.EdgeID{m.Protected}, true, policy.SrcSide)
	if err != nil {
		t.Fatal(err)
	}
	aSrc, err := account.Generate(src, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	if len(aSrc.SurrogateEdges) != 0 {
		t.Errorf("src-side on a root edge should contract to nothing: %v", aSrc.Graph.Edges())
	}
	if _, err := ProtectSpecSide(m.Graph, []graph.EdgeID{{From: "zz", To: "qq"}}, true, policy.DstSide); err == nil {
		t.Error("missing edge accepted")
	}
}

func TestNodeProtectSpec(t *testing.T) {
	m := Motifs()[1] // chain
	spec, err := NodeProtectSpec(m.Graph, []graph.NodeID{"c"}, false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := account.Generate(spec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.HasNode("c") {
		t.Error("protected node visible")
	}
	if !a.Graph.HasEdge("b", "d") {
		t.Errorf("connectivity through c not summarised: %v", a.Graph.Edges())
	}

	withNull, err := NodeProtectSpec(m.Graph, []graph.NodeID{"c"}, true)
	if err != nil {
		t.Fatal(err)
	}
	an, err := account.Generate(withNull, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	nullID := surrogate.NullID("c")
	if !an.Graph.HasNode(nullID) {
		t.Fatalf("null placeholder missing: %v", an.Graph.Nodes())
	}
	if !an.Graph.HasEdge("b", nullID) || !an.Graph.HasEdge(nullID, "d") {
		t.Errorf("edges should attach to the null placeholder: %v", an.Graph.Edges())
	}

	if _, err := NodeProtectSpec(m.Graph, []graph.NodeID{"zz"}, false); err == nil {
		t.Error("missing node accepted")
	}
}

func TestSelectNodes(t *testing.T) {
	m := Motifs()[1]
	picked := SelectNodes(m.Graph, 0.4, 1)
	if len(picked) != 2 {
		t.Errorf("picked = %v, want 2 of 5", picked)
	}
	for _, id := range picked {
		if !m.Graph.HasNode(id) {
			t.Errorf("picked unknown node %s", id)
		}
	}
	again := SelectNodes(m.Graph, 0.4, 1)
	for i := range picked {
		if picked[i] != again[i] {
			t.Error("same seed picked different nodes")
		}
	}
	other := SelectNodes(m.Graph, 0.4, 2)
	same := len(other) == len(picked)
	if same {
		for i := range other {
			if other[i] != picked[i] {
				same = false
			}
		}
	}
	if same {
		t.Log("different seeds picked the same nodes (possible on tiny graphs)")
	}
	if got := SelectNodes(m.Graph, 2.0, 1); len(got) != m.Graph.NumNodes() {
		t.Errorf("overlarge fraction should cap at all nodes, got %d", len(got))
	}
}

func TestPaperGrid(t *testing.T) {
	grid := PaperGrid()
	if len(grid) != 50 {
		t.Fatalf("grid size = %d, want 50", len(grid))
	}
	seeds := map[int64]bool{}
	fractions := map[float64]int{}
	for _, cfg := range grid {
		if cfg.Nodes != 200 {
			t.Errorf("grid nodes = %d, want 200", cfg.Nodes)
		}
		if cfg.TargetConnected < 30 || cfg.TargetConnected > 100 {
			t.Errorf("target %.1f out of 30-100", cfg.TargetConnected)
		}
		if seeds[cfg.Seed] {
			t.Errorf("duplicate seed %d", cfg.Seed)
		}
		seeds[cfg.Seed] = true
		fractions[cfg.ProtectFraction]++
	}
	if len(fractions) != 5 {
		t.Errorf("protection levels = %d, want 5", len(fractions))
	}
	for f, n := range fractions {
		if n != 10 {
			t.Errorf("fraction %v has %d graphs, want 10 (§6.1.2)", f, n)
		}
	}
}

package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// SyntheticConfig parameterises one §6.1.2 synthetic graph.
type SyntheticConfig struct {
	// Nodes is the graph size; the paper uses 200.
	Nodes int
	// TargetConnected is the desired average number of connected pairs per
	// node: |ancestors ∪ descendants|, the §4.1 connectivity notion — the
	// only reading under which the paper's 30–100 range is attainable in a
	// weakly connected graph (see DESIGN.md). The generator adds edges
	// until the average meets or exceeds the target.
	TargetConnected float64
	// ProtectFraction in [0,1] selects the share of edges to protect
	// (10%–90% in the paper).
	ProtectFraction float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// Synthetic is a generated evaluation graph plus its protected edge set.
type Synthetic struct {
	Config    SyntheticConfig
	Graph     *graph.Graph
	Protected []graph.EdgeID
	// MeanConnected is the achieved average connected pairs per node.
	MeanConnected float64
}

func (c SyntheticConfig) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("workload: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.TargetConnected < 1 || c.TargetConnected > float64(c.Nodes-1) {
		return fmt.Errorf("workload: target connected pairs %.1f out of range [1,%d]", c.TargetConnected, c.Nodes-1)
	}
	if c.ProtectFraction < 0 || c.ProtectFraction > 1 {
		return fmt.Errorf("workload: protect fraction %v out of [0,1]", c.ProtectFraction)
	}
	return nil
}

// meanConnectedPairs is the average |ancestors ∪ descendants| per node.
func meanConnectedPairs(g *graph.Graph) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	var sum int
	for _, id := range g.Nodes() {
		sum += g.ConnectedPairs(id)
	}
	return float64(sum) / float64(g.NumNodes())
}

// GenerateSynthetic builds one synthetic graph with the §6.1.2 properties:
// directed, acyclic, no disconnected subgraphs, with edge density tuned
// until the average connected pairs per node reaches the target, and a
// random ProtectFraction share of edges selected for protection.
//
// Construction: nodes are ranked 0..n-1 and edges only go from lower to
// higher rank (acyclicity); a random spanning arborescence guarantees weak
// connectivity; random forward edges are then added in batches until the
// reachability target is met.
func GenerateSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Nodes
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(fmt.Sprintf("n%03d", i))
		g.AddNodeID(ids[i])
	}
	// Spanning structure: every node i > 0 receives an edge from a random
	// earlier node, keeping the graph weakly connected from the start.
	for i := 1; i < n; i++ {
		j := r.Intn(i)
		g.MustAddEdge(ids[j], ids[i])
	}

	// Density tuning: add forward edges until the reachability target is
	// met. Batch size scales with n to keep the retune loop short.
	maxEdges := n * (n - 1) / 2
	batch := n / 4
	if batch < 8 {
		batch = 8
	}
	mean := meanConnectedPairs(g)
	for mean < cfg.TargetConnected && g.NumEdges() < maxEdges {
		for added := 0; added < batch && g.NumEdges() < maxEdges; {
			i := r.Intn(n - 1)
			j := i + 1 + r.Intn(n-i-1)
			if g.HasEdge(ids[i], ids[j]) {
				continue
			}
			g.MustAddEdge(ids[i], ids[j])
			added++
		}
		mean = meanConnectedPairs(g)
	}

	// Protected edge selection: a deterministic shuffle of the edge set.
	edges := g.Edges()
	r.Shuffle(len(edges), func(a, b int) { edges[a], edges[b] = edges[b], edges[a] })
	k := int(cfg.ProtectFraction*float64(len(edges)) + 0.5)
	protected := make([]graph.EdgeID, 0, k)
	for _, e := range edges[:k] {
		protected = append(protected, e.ID())
	}

	return &Synthetic{Config: cfg, Graph: g, Protected: protected, MeanConnected: mean}, nil
}

// PaperGrid returns the 50 synthetic configurations of §6.1.2: five
// protection levels (10%–90%) crossed with ten connectedness targets
// (30–100 average connected pairs), 200 nodes each. Seeds are derived from
// the grid position so the suite is reproducible.
func PaperGrid() []SyntheticConfig {
	fractions := []float64{0.10, 0.30, 0.50, 0.70, 0.90}
	var cfgs []SyntheticConfig
	for fi, f := range fractions {
		for ci := 0; ci < 10; ci++ {
			target := 30 + float64(ci)*(100-30)/9
			cfgs = append(cfgs, SyntheticConfig{
				Nodes:           200,
				TargetConnected: target,
				ProtectFraction: f,
				Seed:            int64(1000 + fi*100 + ci),
			})
		}
	}
	return cfgs
}

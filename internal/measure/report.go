package measure

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/account"
	"repro/internal/graph"
)

// NodeReport breaks the utility measures down per original node — the
// administrator-facing view §4 implies: which nodes lost connectivity,
// which are standing in as surrogates, and what each contributes.
type NodeReport struct {
	Original       graph.NodeID
	Corresponding  graph.NodeID // empty when absent
	Present        bool
	SurrogateUsed  bool
	InfoScore      float64
	ConnectedIn    int     // connected pairs of the original in G
	ConnectedOut   int     // connected pairs of the corresponding node in G'
	PathPercentage float64 // %P(n)
}

// NodeReports computes one row per original node, sorted by id.
func NodeReports(spec *account.Spec, a *account.Account) []NodeReport {
	connG := connectedCounts(spec.Graph)
	connA := connectedCounts(a.Graph)
	var out []NodeReport
	for _, n := range spec.Graph.Nodes() {
		r := NodeReport{
			Original:    n,
			ConnectedIn: connG[n],
		}
		if id, ok := a.Corresponding(n); ok {
			r.Corresponding = id
			r.Present = true
			r.InfoScore = a.InfoScore[id]
			r.ConnectedOut = connA[id]
			_, r.SurrogateUsed = a.SurrogateNodes[id]
		}
		r.PathPercentage = pathPercentage(a, n, connG, connA)
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Original < out[j].Original })
	return out
}

// EdgeReport is the per-edge opacity view of §4.2: "opacity allows an
// administrator to look at specific nodes and incident edges that are of
// high security concern and to evaluate the risk of inference".
type EdgeReport struct {
	Edge             graph.EdgeID
	ShownInAccount   bool
	EndpointMissing  bool
	Opacity          float64
	OpacityScaleFree float64
}

// EdgeReports computes one row per original edge, sorted.
func EdgeReports(spec *account.Spec, a *account.Account, adv Adversary) []EdgeReport {
	conn := connectedCounts(a.Graph)
	var out []EdgeReport
	for _, e := range spec.Graph.Edges() {
		id := e.ID()
		r := EdgeReport{
			Edge:             id,
			Opacity:          edgeOpacityCached(a, id, conn, adv),
			OpacityScaleFree: edgeOpacityScaleFreeCached(a, id, conn, adv),
		}
		n1, ok1 := a.Corresponding(id.From)
		n2, ok2 := a.Corresponding(id.To)
		r.EndpointMissing = !ok1 || !ok2
		r.ShownInAccount = ok1 && ok2 && a.Graph.HasEdge(n1, n2)
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Edge.From != out[j].Edge.From {
			return out[i].Edge.From < out[j].Edge.From
		}
		return out[i].Edge.To < out[j].Edge.To
	})
	return out
}

// Report bundles the whole-account summary with the per-object
// breakdowns.
type Report struct {
	Utility      Utility
	GraphOpacity float64
	Nodes        []NodeReport
	Edges        []EdgeReport
}

// NewReport computes the full report under the given adversary.
func NewReport(spec *account.Spec, a *account.Account, adv Adversary) *Report {
	return &Report{
		Utility:      Utilities(spec, a),
		GraphOpacity: GraphOpacity(spec, a, adv),
		Nodes:        NodeReports(spec, a),
		Edges:        EdgeReports(spec, a, adv),
	}
}

// String renders the report as an aligned text block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "utility: %s  graphOpacity=%.3f\n", r.Utility, r.GraphOpacity)
	b.WriteString("nodes:\n")
	for _, n := range r.Nodes {
		state := "hidden"
		switch {
		case n.Present && n.SurrogateUsed:
			state = "surrogate " + string(n.Corresponding)
		case n.Present:
			state = "shown"
		}
		fmt.Fprintf(&b, "  %-12s %-22s %%P=%.3f infoScore=%.2f connected %d/%d\n",
			n.Original, state, n.PathPercentage, n.InfoScore, n.ConnectedOut, n.ConnectedIn)
	}
	b.WriteString("edges:\n")
	for _, e := range r.Edges {
		state := "dropped"
		switch {
		case e.ShownInAccount:
			state = "shown"
		case e.EndpointMissing:
			state = "endpoint hidden"
		}
		fmt.Fprintf(&b, "  %-16s %-16s opacity=%.3f (scale-free %.3f)\n",
			e.Edge, state, e.Opacity, e.OpacityScaleFree)
	}
	return b.String()
}

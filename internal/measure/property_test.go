package measure

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// randomMeasureSpec builds a random DAG with random protections, mirroring
// the account package's generator but local to these tests.
func randomMeasureSpec(r *rand.Rand) *account.Spec {
	n := 4 + r.Intn(8)
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(fmt.Sprintf("m%02d", i))
		g.AddNodeID(ids[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.35 {
				g.MustAddEdge(ids[i], ids[j])
			}
		}
	}
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	reg := surrogate.NewRegistry(lb)
	for _, id := range ids {
		if r.Float64() < 0.3 {
			if err := lb.SetNode(id, "Protected"); err != nil {
				panic(err)
			}
			if r.Intn(2) == 0 {
				if err := pol.SetNodeThreshold(id, "Protected", policy.Surrogate); err != nil {
					panic(err)
				}
			}
			if r.Intn(2) == 0 {
				if err := reg.Add(id, surrogate.Surrogate{
					ID: id + "'", Lowest: privilege.Public, InfoScore: float64(r.Intn(11)) / 10,
				}); err != nil {
					panic(err)
				}
			}
		}
	}
	for _, e := range g.Edges() {
		if r.Float64() < 0.25 {
			if err := pol.ProtectEdge(e.ID(), "Protected", r.Intn(2) == 0); err != nil {
				panic(err)
			}
		}
	}
	return &account.Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: reg}
}

// Property: utilities are in [0,1]; the full-privilege account scores
// exactly 1 on both; the surrogate account's path utility is never below
// the hide account's.
func TestUtilityInvariantsProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomMeasureSpec(r)
		full, err := account.Generate(spec, "Protected")
		if err != nil {
			return false
		}
		if u := Utilities(spec, full); u.Path != 1 || u.Node != 1 {
			t.Logf("seed %d: full-privilege utilities %v", seed, u)
			return false
		}
		hide, err := account.GenerateHide(spec, privilege.Public)
		if err != nil {
			return false
		}
		surr, err := account.Generate(spec, privilege.Public)
		if err != nil {
			return false
		}
		uh, us := Utilities(spec, hide), Utilities(spec, surr)
		for _, u := range []Utility{uh, us} {
			if u.Path < 0 || u.Path > 1+1e-12 || u.Node < 0 || u.Node > 1+1e-12 {
				t.Logf("seed %d: utilities out of range %v", seed, u)
				return false
			}
		}
		if us.Path < uh.Path-1e-12 {
			t.Logf("seed %d: surrogate path utility %v below hide %v", seed, us.Path, uh.Path)
			return false
		}
		if us.Node < uh.Node-1e-12 {
			t.Logf("seed %d: surrogate node utility %v below hide %v", seed, us.Node, uh.Node)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: opacity respects its fixed points and bounds for every edge of
// every random account, under both formula readings and both adversaries.
func TestOpacityInvariantsProperty(t *testing.T) {
	advs := []Adversary{Figure5(), Naive{}}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomMeasureSpec(r)
		a, err := account.Generate(spec, privilege.Public)
		if err != nil {
			return false
		}
		for _, e := range spec.Graph.Edges() {
			id := e.ID()
			n1, ok1 := a.Corresponding(id.From)
			n2, ok2 := a.Corresponding(id.To)
			for _, adv := range advs {
				for _, op := range []float64{
					EdgeOpacity(spec, a, id, adv),
					EdgeOpacityScaleFree(spec, a, id, adv),
				} {
					if op < 0 || op > 1 {
						t.Logf("seed %d: opacity %v out of range for %s", seed, op, id)
						return false
					}
					if (!ok1 || !ok2) && op != 1 {
						t.Logf("seed %d: absent endpoint but opacity %v for %s", seed, op, id)
						return false
					}
					if ok1 && ok2 && a.Graph.HasEdge(n1, n2) && op != 0 {
						t.Logf("seed %d: shown edge but opacity %v for %s", seed, op, id)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

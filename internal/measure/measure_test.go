package measure

import (
	"math"
	"testing"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) < eps }

// chainSpec builds a -> b -> c -> d -> e over the two-level lattice with
// the given protected edges.
func chainSpec(t *testing.T, surrogateMode bool, protected ...graph.EdgeID) (*account.Spec, *account.Account) {
	t.Helper()
	g := graph.New()
	ids := []graph.NodeID{"a", "b", "c", "d", "e"}
	for _, id := range ids {
		g.AddNodeID(id)
	}
	for i := 0; i+1 < len(ids); i++ {
		g.MustAddEdge(ids[i], ids[i+1])
	}
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	for _, e := range protected {
		if err := pol.ProtectEdge(e, "Protected", surrogateMode); err != nil {
			t.Fatal(err)
		}
	}
	spec := &account.Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: surrogate.NewRegistry(lb)}
	a, err := account.Generate(spec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	return spec, a
}

func TestPathUtilityIdentityAccount(t *testing.T) {
	spec, a := chainSpec(t, true) // nothing protected
	if got := PathUtility(spec, a); !approx(got, 1) {
		t.Errorf("PathUtility(identity) = %v, want 1", got)
	}
	if got := NodeUtility(spec, a); !approx(got, 1) {
		t.Errorf("NodeUtility(identity) = %v, want 1", got)
	}
}

// Hiding a->b disconnects a: %P(a)=0/4, others 3/4 -> PU = (0+4*0.75)/5.
func TestPathUtilityHideChainEdge(t *testing.T) {
	spec, a := chainSpec(t, false, graph.EdgeID{From: "a", To: "b"})
	if got, want := PathUtility(spec, a), 0.6; !approx(got, want) {
		t.Errorf("PathUtility = %v, want %v", got, want)
	}
	// Nodes are all present, so node utility stays 1.
	if got := NodeUtility(spec, a); !approx(got, 1) {
		t.Errorf("NodeUtility = %v, want 1", got)
	}
}

// Surrogating a->b interposes a->c: a regains its three descendants, b
// keeps its three connected pairs, and c, d, e regain a as an ancestor:
// PU = (3/4 + 3/4 + 1 + 1 + 1)/5 = 0.9.
func TestPathUtilitySurrogateChainEdge(t *testing.T) {
	spec, a := chainSpec(t, true, graph.EdgeID{From: "a", To: "b"})
	if !a.Graph.HasEdge("a", "c") {
		t.Fatalf("expected surrogate edge a->c, got %v", a.Graph.Edges())
	}
	if got := PathUtility(spec, a); !approx(got, 0.9) {
		t.Errorf("PathUtility = %v, want 0.9", got)
	}
}

// A hidden node with no surrogate contributes 0 to path utility; the
// all-or-nothing node utility is |N'|/|N|.
func TestUtilityHiddenNode(t *testing.T) {
	g := graph.New()
	for _, id := range []graph.NodeID{"a", "x", "b"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "x")
	g.MustAddEdge("x", "b")
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	if err := lb.SetNode("x", "Protected"); err != nil {
		t.Fatal(err)
	}
	spec := &account.Spec{Graph: g, Labeling: lb, Policy: policy.New(lat), Surrogates: surrogate.NewRegistry(lb)}
	a, err := account.GenerateHide(spec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	// a and b present but disconnected: %P = 0/2 each; x contributes 0.
	if got := PathUtility(spec, a); !approx(got, 0) {
		t.Errorf("PathUtility = %v, want 0", got)
	}
	if got, want := NodeUtility(spec, a), 2.0/3.0; !approx(got, want) {
		t.Errorf("NodeUtility = %v, want %v", got, want)
	}
	if got := PathPercentage(spec, a, "x"); !approx(got, 0) {
		t.Errorf("PathPercentage(x) = %v, want 0", got)
	}
	if got := PathPercentage(spec, a, "a"); !approx(got, 0) {
		t.Errorf("PathPercentage(a) = %v, want 0", got)
	}
}

// Surrogate node infoScores feed node utility.
func TestNodeUtilityWithSurrogates(t *testing.T) {
	g := graph.New()
	for _, id := range []graph.NodeID{"a", "x", "b"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "x")
	g.MustAddEdge("x", "b")
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	if err := lb.SetNode("x", "Protected"); err != nil {
		t.Fatal(err)
	}
	reg := surrogate.NewRegistry(lb)
	if err := reg.Add("x", surrogate.Surrogate{ID: "x'", Lowest: privilege.Public, InfoScore: 0.4}); err != nil {
		t.Fatal(err)
	}
	spec := &account.Spec{Graph: g, Labeling: lb, Policy: policy.New(lat), Surrogates: reg}
	a, err := account.Generate(spec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := NodeUtility(spec, a), (1+1+0.4)/3; !approx(got, want) {
		t.Errorf("NodeUtility = %v, want %v", got, want)
	}
	// x' keeps the chain connected, so path utility is 1.
	if got := PathUtility(spec, a); !approx(got, 1) {
		t.Errorf("PathUtility = %v, want 1", got)
	}
	u := Utilities(spec, a)
	if !approx(u.Path, 1) || !approx(u.Node, (2.4)/3) {
		t.Errorf("Utilities = %+v", u)
	}
	if u.String() == "" {
		t.Error("empty Utility string")
	}
}

func TestIsolatedOriginalPathPercentage(t *testing.T) {
	g := graph.New()
	g.AddNodeID("solo")
	g.AddNodeID("other")
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	spec := &account.Spec{Graph: g, Labeling: lb, Policy: policy.New(lat), Surrogates: surrogate.NewRegistry(lb)}
	a, err := account.Generate(spec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	if got := PathPercentage(spec, a, "solo"); !approx(got, 1) {
		t.Errorf("isolated present node %%P = %v, want 1", got)
	}
}

func TestEdgeOpacityFixedPoints(t *testing.T) {
	adv := Figure5()
	// Edge present in account -> opacity 0.
	spec, a := chainSpec(t, true)
	if got := EdgeOpacity(spec, a, graph.EdgeID{From: "a", To: "b"}, adv); !approx(got, 0) {
		t.Errorf("present edge opacity = %v, want 0", got)
	}

	// Endpoint absent -> opacity 1.
	g := graph.New()
	for _, id := range []graph.NodeID{"a", "x"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "x")
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	if err := lb.SetNode("x", "Protected"); err != nil {
		t.Fatal(err)
	}
	spec2 := &account.Spec{Graph: g, Labeling: lb, Policy: policy.New(lat), Surrogates: surrogate.NewRegistry(lb)}
	a2, err := account.GenerateHide(spec2, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	if got := EdgeOpacity(spec2, a2, graph.EdgeID{From: "a", To: "x"}, adv); !approx(got, 1) {
		t.Errorf("absent endpoint opacity = %v, want 1", got)
	}
}

// Opacity of the hidden chain edge: hiding leaves a as a suspicious loner
// (low opacity); surrogating keeps a connected (higher opacity).
func TestOpacitySurrogateBeatsHide(t *testing.T) {
	adv := Figure5()
	e := graph.EdgeID{From: "a", To: "b"}
	specH, aH := chainSpec(t, false, e)
	specS, aS := chainSpec(t, true, e)
	oh := EdgeOpacity(specH, aH, e, adv)
	os := EdgeOpacity(specS, aS, e, adv)
	if oh <= 0 || oh >= 1 || os <= 0 || os >= 1 {
		t.Fatalf("opacities out of open interval: hide=%v surrogate=%v", oh, os)
	}
	if os <= oh {
		t.Errorf("surrogate opacity %v should exceed hide opacity %v", os, oh)
	}
	// Hand-computed values for the Figure 5 constants (see DESIGN.md):
	// hide: degrees a:0 b:1 c:2 d:2 e:1, a is a loner.
	// R = ½(0.8·0.8/2.0 + 0.2·0.8/2.0) = 0.2 -> opacity 0.8.
	if !approx(oh, 0.8) {
		t.Errorf("hide opacity = %v, want 0.8", oh)
	}
	// surrogate: degrees a:1 b:1 c:3 d:2 e:1, all connected.
	// R = ½(0.2·0.8/2.0 + 0.2·0.8/2.0) = 0.08 -> opacity 0.92.
	if !approx(os, 0.92) {
		t.Errorf("surrogate opacity = %v, want 0.92", os)
	}
}

func TestAverageAndGraphOpacity(t *testing.T) {
	adv := Figure5()
	e := graph.EdgeID{From: "a", To: "b"}
	spec, a := chainSpec(t, false, e)
	if got := AverageOpacity(spec, a, nil, adv); got != 0 {
		t.Errorf("empty AverageOpacity = %v, want 0", got)
	}
	avg := AverageOpacity(spec, a, []graph.EdgeID{e}, adv)
	if !approx(avg, 0.8) {
		t.Errorf("AverageOpacity = %v, want 0.8", avg)
	}
	// Graph opacity: protected edge 0.8, three shown edges 0.
	if got, want := GraphOpacity(spec, a, adv), 0.8/4; !approx(got, want) {
		t.Errorf("GraphOpacity = %v, want %v", got, want)
	}
}

func TestAdversaryModels(t *testing.T) {
	adv := Figure5()
	if adv.FocusProbability(0) != 0.8 || adv.FocusProbability(1) != 0.8 || adv.FocusProbability(2) != 0.2 {
		t.Error("Figure5 FP thresholds wrong")
	}
	if adv.InferenceLikelihood(0) != 0.8 || adv.InferenceLikelihood(1) != 0.8 || adv.InferenceLikelihood(2) != 0.2 {
		t.Error("Figure5 IE thresholds wrong")
	}
	var n Naive
	if n.FocusProbability(0) != n.FocusProbability(100) {
		t.Error("naive FP should be uniform")
	}
	if n.InferenceLikelihood(0) != n.InferenceLikelihood(100) {
		t.Error("naive IE should be uniform")
	}
}

// Opacity is always within [0,1] for arbitrary accounts.
func TestOpacityBounds(t *testing.T) {
	adv := Figure5()
	for _, mode := range []bool{true, false} {
		for _, edges := range [][]graph.EdgeID{
			{{From: "a", To: "b"}},
			{{From: "b", To: "c"}, {From: "c", To: "d"}},
			{{From: "a", To: "b"}, {From: "d", To: "e"}},
		} {
			spec, a := chainSpec(t, mode, edges...)
			for _, e := range spec.Graph.Edges() {
				op := EdgeOpacity(spec, a, e.ID(), adv)
				if op < 0 || op > 1 {
					t.Errorf("opacity(%v) = %v out of bounds (mode=%v)", e.ID(), op, mode)
				}
			}
		}
	}
}

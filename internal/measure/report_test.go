package measure

import (
	"strings"
	"testing"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// reportFixture: a -> x -> b with x surrogated.
func reportFixture(t *testing.T) (*account.Spec, *account.Account) {
	t.Helper()
	g := graph.New()
	for _, id := range []graph.NodeID{"a", "x", "b"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "x")
	g.MustAddEdge("x", "b")
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	if err := lb.SetNode("x", "Protected"); err != nil {
		t.Fatal(err)
	}
	pol := policy.New(lat)
	if err := pol.SetNodeThreshold("x", "Protected", policy.Surrogate); err != nil {
		t.Fatal(err)
	}
	reg := surrogate.NewRegistry(lb)
	if err := reg.Add("x", surrogate.Surrogate{ID: "x'", Lowest: privilege.Public, InfoScore: 0.3}); err != nil {
		t.Fatal(err)
	}
	spec := &account.Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: reg}
	a, err := account.Generate(spec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	return spec, a
}

func TestNodeReports(t *testing.T) {
	spec, a := reportFixture(t)
	rows := NodeReports(spec, a)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byID := map[graph.NodeID]NodeReport{}
	for _, r := range rows {
		byID[r.Original] = r
	}
	if !byID["a"].Present || byID["a"].SurrogateUsed {
		t.Errorf("a report wrong: %+v", byID["a"])
	}
	x := byID["x"]
	if !x.Present || !x.SurrogateUsed || x.Corresponding != "x'" || x.InfoScore != 0.3 {
		t.Errorf("x report wrong: %+v", x)
	}
	// x' is isolated (role surrogated): no connectivity retained.
	if x.ConnectedOut != 0 || x.PathPercentage != 0 {
		t.Errorf("x connectivity wrong: %+v", x)
	}
	// a keeps its connection to b through the surrogate edge.
	if byID["a"].PathPercentage != 0.5 {
		t.Errorf("a %%P = %v, want 0.5 (b retained, x lost)", byID["a"].PathPercentage)
	}
}

func TestEdgeReports(t *testing.T) {
	spec, a := reportFixture(t)
	rows := EdgeReports(spec, a, Figure5())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ShownInAccount {
			t.Errorf("%v should not be shown (x's role is hidden)", r.Edge)
		}
		if r.EndpointMissing {
			t.Errorf("%v endpoints exist (x has a surrogate)", r.Edge)
		}
		if r.Opacity <= 0 || r.Opacity > 1 || r.OpacityScaleFree <= 0 || r.OpacityScaleFree > 1 {
			t.Errorf("%v opacity out of range: %+v", r.Edge, r)
		}
	}
}

func TestFullReportRendering(t *testing.T) {
	spec, a := reportFixture(t)
	rep := NewReport(spec, a, Figure5())
	if rep.Utility.Node <= 0 || rep.GraphOpacity <= 0 {
		t.Errorf("summary wrong: %+v", rep.Utility)
	}
	s := rep.String()
	for _, want := range []string{"surrogate x'", "shown", "opacity="} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// Package measure implements the paper's §4 measures for comparing
// protected accounts: the Path Utility Measure and Node Utility Measure
// (Figure 3) and the per-edge opacity measure (Figure 4) with the advanced
// adversary constants of Figure 5.
package measure

import (
	"fmt"

	"repro/internal/account"
	"repro/internal/graph"
)

// connectedCounts returns, for every node, the number of other nodes it is
// connected to by a directed path of any length to or from it —
// |ancestors ∪ descendants|, the §4.1 connectivity notion (see DESIGN.md).
func connectedCounts(g *graph.Graph) map[graph.NodeID]int {
	counts := make(map[graph.NodeID]int, g.NumNodes())
	for _, id := range g.Nodes() {
		counts[id] = g.ConnectedPairs(id)
	}
	return counts
}

// PathPercentage computes %P(n) for one original node n: the number of
// nodes connected to n's corresponding node in G', divided by the number of
// nodes connected to n in G. Nodes with no corresponding node contribute 0.
// An isolated original (denominator 0) contributes 1 when present — all of
// its (empty) connectivity is retained — and 0 otherwise.
func PathPercentage(spec *account.Spec, a *account.Account, n graph.NodeID) float64 {
	connG := connectedCounts(spec.Graph)
	connA := connectedCounts(a.Graph)
	return pathPercentage(a, n, connG, connA)
}

func pathPercentage(a *account.Account, n graph.NodeID, connG, connA map[graph.NodeID]int) float64 {
	id, ok := a.Corresponding(n)
	if !ok {
		return 0
	}
	denom := connG[n]
	if denom == 0 {
		return 1
	}
	return float64(connA[id]) / float64(denom)
}

// PathUtility computes the Path Utility Measure (Figure 3a): the average of
// %P(n) over every node n of the original graph.
func PathUtility(spec *account.Spec, a *account.Account) float64 {
	if spec.Graph.NumNodes() == 0 {
		return 0
	}
	connG := connectedCounts(spec.Graph)
	connA := connectedCounts(a.Graph)
	var sum float64
	for _, n := range spec.Graph.Nodes() {
		sum += pathPercentage(a, n, connG, connA)
	}
	return sum / float64(spec.Graph.NumNodes())
}

// NodeUtility computes the Node Utility Measure (Figure 3c): the sum of
// infoScore(n') over the account's nodes, divided by |N| of the original
// graph. All-or-nothing accounts therefore score |N'|/|N|, as the paper
// notes.
func NodeUtility(spec *account.Spec, a *account.Account) float64 {
	if spec.Graph.NumNodes() == 0 {
		return 0
	}
	var sum float64
	for _, id := range a.Graph.Nodes() {
		sum += a.InfoScore[id]
	}
	return sum / float64(spec.Graph.NumNodes())
}

// Utility bundles both §4.1 measures.
type Utility struct {
	Path float64
	Node float64
}

// Utilities computes both utility measures in one pass.
func Utilities(spec *account.Spec, a *account.Account) Utility {
	return Utility{Path: PathUtility(spec, a), Node: NodeUtility(spec, a)}
}

func (u Utility) String() string {
	return fmt.Sprintf("path=%.3f node=%.3f", u.Path, u.Node)
}

// Adversary models the attacker background knowledge that parameterises
// the opacity formula: FP, the probability the attacker focuses on a node,
// driven by how connected the node appears; and IE, the likelihood of
// inferring an edge toward a node, driven by that node's apparent degree.
type Adversary interface {
	// FocusProbability is FP for a node connected (by any-length paths) to
	// `connected` other nodes of the protected account.
	FocusProbability(connected int) float64
	// InferenceLikelihood is IE for inferring an edge incident to a node
	// with the given degree in the protected account.
	InferenceLikelihood(degree int) float64
}

// Advanced is the advanced adversary of Figure 5, tuned for original
// graphs with no disconnected subgraphs and average degree > 1: "loner"
// nodes (connected to at most LonerMax others) attract focus with
// probability HighFP, and edges toward low-degree nodes (degree <=
// LowDegreeMax) are inferred with likelihood HighIE.
type Advanced struct {
	LonerMax     int
	LowDegreeMax int
	HighFP       float64
	LowFP        float64
	HighIE       float64
	LowIE        float64
}

// Figure5 returns the advanced adversary with the paper's sample
// constants: FP = 0.8 for 0–1 connected nodes else 0.2; IE = 0.8 for
// degree <= 1 else 0.2.
func Figure5() Advanced {
	return Advanced{LonerMax: 1, LowDegreeMax: 1, HighFP: 0.8, LowFP: 0.2, HighIE: 0.8, LowIE: 0.2}
}

// FocusProbability implements Adversary.
func (adv Advanced) FocusProbability(connected int) float64 {
	if connected <= adv.LonerMax {
		return adv.HighFP
	}
	return adv.LowFP
}

// InferenceLikelihood implements Adversary.
func (adv Advanced) InferenceLikelihood(degree int) float64 {
	if degree <= adv.LowDegreeMax {
		return adv.HighIE
	}
	return adv.LowIE
}

// Naive is the naïve attacker of §4.2, with no knowledge of general graph
// properties: every node draws equal (low) focus and every candidate edge
// is equally likely, so redaction arouses no suspicion beyond the uniform
// baseline.
type Naive struct{}

// FocusProbability implements Adversary with a uniform low focus.
func (Naive) FocusProbability(int) float64 { return 0.2 }

// InferenceLikelihood implements Adversary uniformly.
func (Naive) InferenceLikelihood(int) float64 { return 0.5 }

// EdgeOpacity computes the opacity of one original edge e = (n1 -> n2) of
// G with respect to the protected account (Figure 4):
//
//	0                     if the corresponding edge is present in G',
//	1                     if n1 or n2 has no corresponding node in G',
//	1 − R                 otherwise,
//
// where R averages the two ways an attacker recreates the edge: focusing
// on n1' and inferring an outgoing edge toward n2' among all candidate
// targets, or focusing on n2' and inferring an incoming edge from n1'
// among all candidate sources:
//
//	R = ½ [ FP(n1')·IE(n1'→n2') / Σ_{m≠n1'} IE(n1'→m)
//	      + FP(n2')·IE(m→n2' at m=n1') / Σ_{m≠n2'} IE(m→n2') ] .
//
// IE of a candidate edge is driven by the degree of the node the attacker
// walks toward (Figure 5: "more likely to infer an edge to a node with few
// edges"), so the first sum ranges over target degrees and the second over
// source degrees. The published formula rendering is partially unreadable;
// DESIGN.md records this reading and its fidelity to Table 1.
func EdgeOpacity(spec *account.Spec, a *account.Account, e graph.EdgeID, adv Adversary) float64 {
	return edgeOpacityCached(a, e, connectedCounts(a.Graph), adv)
}

// inferability is R in the Figure 4 formula, for account nodes n1 -> n2.
func inferability(a *account.Account, n1, n2 graph.NodeID, conn map[graph.NodeID]int, adv Adversary) float64 {
	nodes := a.Graph.Nodes()
	if len(nodes) < 2 {
		return 0
	}
	// Attacker focuses on n1 and guesses the target of a missing outgoing
	// edge: candidates weighted by target degree.
	var sumOut float64
	for _, m := range nodes {
		if m != n1 {
			sumOut += adv.InferenceLikelihood(a.Graph.Degree(m))
		}
	}
	var term1 float64
	if sumOut > 0 {
		term1 = adv.FocusProbability(conn[n1]) * adv.InferenceLikelihood(a.Graph.Degree(n2)) / sumOut
	}
	// Attacker focuses on n2 and guesses the source of a missing incoming
	// edge: candidates weighted by source degree.
	var sumIn float64
	for _, m := range nodes {
		if m != n2 {
			sumIn += adv.InferenceLikelihood(a.Graph.Degree(m))
		}
	}
	var term2 float64
	if sumIn > 0 {
		term2 = adv.FocusProbability(conn[n2]) * adv.InferenceLikelihood(a.Graph.Degree(n1)) / sumIn
	}
	return (term1 + term2) / 2
}

// EdgeOpacityScaleFree computes opacity under the alternative scale-free
// reading of Figure 4, in which IE is an absolute likelihood rather than a
// share of a candidate pool:
//
//	R = ½ [ FP(n1')·IE(deg n2') + FP(n2')·IE(deg n1') ] .
//
// The normalised EdgeOpacity matches the paper's Table 1 numbers on the
// 11-node running example but compresses toward 1 on 200-node graphs
// (every candidate share is ~1/n); this variant keeps the dynamic range
// the paper's Figure 9a bars display at scale. EXPERIMENTS.md reports
// both. Fixed points (edge present -> 0, endpoint absent -> 1) are shared.
func EdgeOpacityScaleFree(spec *account.Spec, a *account.Account, e graph.EdgeID, adv Adversary) float64 {
	return edgeOpacityScaleFreeCached(a, e, connectedCounts(a.Graph), adv)
}

func edgeOpacityScaleFreeCached(a *account.Account, e graph.EdgeID, conn map[graph.NodeID]int, adv Adversary) float64 {
	n1, ok1 := a.Corresponding(e.From)
	n2, ok2 := a.Corresponding(e.To)
	if !ok1 || !ok2 {
		return 1
	}
	if a.Graph.HasEdge(n1, n2) {
		return 0
	}
	r := (adv.FocusProbability(conn[n1])*adv.InferenceLikelihood(a.Graph.Degree(n2)) +
		adv.FocusProbability(conn[n2])*adv.InferenceLikelihood(a.Graph.Degree(n1))) / 2
	op := 1 - r
	if op < 0 {
		return 0
	}
	if op > 1 {
		return 1
	}
	return op
}

// AverageOpacityScaleFree is AverageOpacity under the scale-free reading.
func AverageOpacityScaleFree(spec *account.Spec, a *account.Account, edges []graph.EdgeID, adv Adversary) float64 {
	if len(edges) == 0 {
		return 0
	}
	conn := connectedCounts(a.Graph)
	var sum float64
	for _, e := range edges {
		sum += edgeOpacityScaleFreeCached(a, e, conn, adv)
	}
	return sum / float64(len(edges))
}

// AverageOpacity computes the mean opacity over the given original edges
// (typically the protected ones); it returns 0 for an empty set.
func AverageOpacity(spec *account.Spec, a *account.Account, edges []graph.EdgeID, adv Adversary) float64 {
	if len(edges) == 0 {
		return 0
	}
	// Connectivity of the account is shared across all edges; computing it
	// once keeps large sweeps (hundreds of protected edges per synthetic
	// graph) linear instead of quadratic.
	conn := connectedCounts(a.Graph)
	var sum float64
	for _, e := range edges {
		sum += edgeOpacityCached(a, e, conn, adv)
	}
	return sum / float64(len(edges))
}

func edgeOpacityCached(a *account.Account, e graph.EdgeID, conn map[graph.NodeID]int, adv Adversary) float64 {
	n1, ok1 := a.Corresponding(e.From)
	n2, ok2 := a.Corresponding(e.To)
	if !ok1 || !ok2 {
		return 1
	}
	if a.Graph.HasEdge(n1, n2) {
		return 0
	}
	op := 1 - inferability(a, n1, n2, conn, adv)
	if op < 0 {
		return 0
	}
	if op > 1 {
		return 1
	}
	return op
}

// GraphOpacity computes the mean opacity over every edge of the original
// graph — the whole-graph tradeoff number of §4.2.
func GraphOpacity(spec *account.Spec, a *account.Account, adv Adversary) float64 {
	var edges []graph.EdgeID
	for _, e := range spec.Graph.Edges() {
		edges = append(edges, e.ID())
	}
	return AverageOpacity(spec, a, edges, adv)
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms are rendered as summaries: one
// quantile series each for p50/p95/p99 plus the _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.Gather() {
		if err := writePromFamily(w, fam); err != nil {
			return err
		}
	}
	return nil
}

func writePromFamily(w io.Writer, fam Family) error {
	var b strings.Builder
	if fam.Help != "" {
		fmt.Fprintf(&b, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
	}
	fmt.Fprintf(&b, "# TYPE %s %s\n", fam.Name, fam.Type)
	for _, s := range fam.Series {
		switch fam.Type {
		case TypeSummary:
			// Quantiles in ascending order for a deterministic exposition.
			for _, q := range []string{"0.5", "0.95", "0.99"} {
				writePromLine(&b, fam.Name, s.Labels, "quantile", q, s.Quantiles[q])
			}
			writePromLine(&b, fam.Name+"_sum", s.Labels, "", "", s.Sum)
			writePromLine(&b, fam.Name+"_count", s.Labels, "", "", float64(s.Count))
		default:
			writePromLine(&b, fam.Name, s.Labels, "", "", s.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromLine emits one sample, appending an extra label pair (the
// summary quantile) when extraName is non-empty.
func writePromLine(b *strings.Builder, name string, labels []Label, extraName, extraValue string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatPromValue(v))
	b.WriteByte('\n')
}

// formatPromValue renders a float the way Prometheus clients do:
// integers without an exponent, everything else in shortest form.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteJSON renders the registry snapshot as a JSON array of families —
// the same structure Gather returns, which plusctl top decodes.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := r.Gather()
	if fams == nil {
		fams = []Family{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fams)
}

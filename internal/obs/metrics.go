package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// ScaleNanos converts nanosecond observations into rendered seconds.
const ScaleNanos = 1e-9

// Counter is a monotonically increasing value. All methods are no-ops on
// a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// CounterVec addresses the series of a labeled counter family.
type CounterVec struct {
	f *family
}

// With returns the counter for these label values, creating it on first
// use.
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	s := cv.f.seriesFor(values, func() *series { return &series{counter: &Counter{}} })
	return s.counter
}

// Gauge is a value that can go up and down. All methods are no-ops on a
// nil receiver. The value is a float stored as its IEEE bits.
type Gauge struct {
	v atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.v.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// Log-linear histogram layout. Values are non-negative integers (for
// latencies: nanoseconds). Each power-of-two octave above 2^histMantBits
// is split into 2^histMantBits linear sub-buckets, bounding the relative
// quantile error by 2^-histMantBits (12.5%) while keeping the whole
// histogram a flat fixed array of counters — no allocation, no locks.
const (
	histMantBits = 3
	histSubCount = 1 << histMantBits // sub-buckets per octave
	// histNumBuckets covers the full uint64 range: values < histSubCount
	// map to their own bucket; each of the 61 octaves above (bit lengths
	// histMantBits+1 through 64) contributes histSubCount buckets.
	histNumBuckets = histSubCount + (64-histMantBits)*histSubCount
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	b := bits.Len64(v) // v has b significant bits, b >= histMantBits+1
	shift := uint(b - histMantBits - 1)
	// v>>shift is in [histSubCount, 2*histSubCount): top mantissa bits.
	return int(uint(b-histMantBits-1)*histSubCount + uint(v>>shift))
}

// bucketUpper is the largest value mapping to bucket i — the value
// reported for quantiles falling in that bucket.
func bucketUpper(i int) uint64 {
	if i < histSubCount {
		return uint64(i)
	}
	octave := i/histSubCount - 1 // 0-based octave above the linear range
	sub := i % histSubCount
	return (uint64(histSubCount+sub+1) << uint(octave)) - 1
}

// Histogram is a fixed-layout log-linear histogram. Observation is three
// atomic adds; Snapshot walks the bucket array. All methods are no-ops
// on a nil receiver.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histNumBuckets]atomic.Uint64
}

// Observe records one non-negative value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.buckets[bucketIndex(u)].Add(1)
	h.sum.Add(u)
	h.count.Add(1)
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// HistSnapshot is a point-in-time histogram reading. Quantiles carry the
// raw observed unit (nanoseconds for latencies); renderers apply the
// family scale.
type HistSnapshot struct {
	Count uint64
	Sum   uint64
	P50   uint64
	P95   uint64
	P99   uint64
}

// Snapshot reads the histogram and extracts p50/p95/p99. Concurrent
// observations may tear between buckets and the count; quantiles remain
// within one bucket (12.5% relative error) of truth, which is fine for
// monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [histNumBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	snap := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if total == 0 {
		return snap
	}
	snap.P50 = quantile(&counts, total, 0.50)
	snap.P95 = quantile(&counts, total, 0.95)
	snap.P99 = quantile(&counts, total, 0.99)
	return snap
}

// quantile finds the bucket holding the q-th observation and returns its
// upper bound.
func quantile(counts *[histNumBuckets]uint64, total uint64, q float64) uint64 {
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histNumBuckets - 1)
}

// HistogramVec addresses the series of a labeled histogram family.
type HistogramVec struct {
	f *family
}

// With returns the histogram for these label values, creating it on
// first use.
func (hv *HistogramVec) With(values ...string) *Histogram {
	if hv == nil {
		return nil
	}
	s := hv.f.seriesFor(values, func() *series { return &series{hist: &Histogram{}} })
	return s.hist
}

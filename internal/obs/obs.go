// Package obs is the dependency-free observability substrate of the PLUS
// server: a named metrics registry (atomic counters, gauges and
// log-linear latency histograms with p50/p95/p99 extraction), Prometheus
// text-exposition and JSON renderers, request-ID tracing helpers, and a
// ring-buffered slow-query log.
//
// Design constraints, in order:
//
//   - Hot-path cost must be a handful of atomic operations. A counter
//     increment is one atomic add; a histogram observation is three.
//     There are no allocations on the observation path.
//   - Everything is nil-safe. Instrumentation sites call through
//     possibly-nil handles (a *Counter from a nil *Registry), so an
//     uninstrumented server — or a benchmark baseline — pays only a
//     predictable nil check. This is what BenchmarkObsOverhead leans on.
//   - No dependencies. The package imports only the standard library, so
//     every layer (storage, engines, HTTP, SDK) can use it without
//     cycles or new modules.
//
// Metric families are registered by name with an optional fixed label
// set; (name, label-values) pairs address individual series. Renderers
// snapshot the registry (Gather) and emit either the Prometheus text
// exposition format — histograms as summaries with quantile series — or
// a stable JSON document (the same Family/Series structs, which
// `plusctl top` decodes).
package obs

import (
	"sort"
	"sync"
)

// MetricType classifies a family for renderers.
type MetricType string

// Family types. Histograms render as Prometheus summaries (quantile
// series plus _sum and _count), which is what log-linear percentile
// extraction maps onto.
const (
	TypeCounter MetricType = "counter"
	TypeGauge   MetricType = "gauge"
	TypeSummary MetricType = "summary"
)

// Registry is a named set of metric families. All methods are safe for
// concurrent use, and every method is a no-op on a nil receiver, so
// instrumented code never branches on "is observability configured".
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric: a fixed label set and the series keyed by
// their label values.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string
	scale  float64 // multiplies raw histogram values at render time

	mu     sync.RWMutex
	series map[string]*series
}

// series is one (family, label-values) time series. Exactly one of the
// value fields is used, matching the family type; fn, when set, overrides
// the stored value at render time (func-backed gauges and counters).
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// familyFor returns (creating if needed) the family with this name. A
// re-registration with the same name returns the existing family; the
// caller-supplied type and labels must match it (programming error
// otherwise, reported by panic since it can only be caused by code, not
// input).
func (r *Registry) familyFor(name, help string, typ MetricType, scale float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic("obs: metric " + name + " re-registered with a different shape")
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		scale:  scale,
		series: map[string]*series{},
	}
	r.families[name] = f
	return f
}

// seriesKey joins label values with a separator no sane label contains.
func seriesKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	key := values[0]
	for _, v := range values[1:] {
		key += "\x1f" + v
	}
	return key
}

// seriesFor returns (creating if needed) the series for these label
// values. make constructs the series' value holder on first use.
func (f *family) seriesFor(values []string, make func() *series) *series {
	if len(values) != len(f.labels) {
		panic("obs: metric " + f.name + " used with wrong label count")
	}
	key := seriesKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = make()
	s.labelValues = append([]string(nil), values...)
	f.series[key] = s
	return s
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or finds) a counter family with a fixed label
// set; With addresses individual series.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.familyFor(name, help, TypeCounter, 1, labels)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, TypeGauge, 1, nil)
	s := f.seriesFor(nil, func() *series { return &series{gauge: &Gauge{}} })
	return s.gauge
}

// Histogram registers (or finds) an unlabeled histogram. Scale converts
// raw observed values into the rendered unit (ScaleNanos for durations
// observed in nanoseconds and rendered in seconds; 1 for raw counts).
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	return r.HistogramVec(name, help, scale).With()
}

// HistogramVec registers (or finds) a histogram family with a fixed
// label set.
func (r *Registry) HistogramVec(name, help string, scale float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if scale == 0 {
		scale = 1
	}
	return &HistogramVec{f: r.familyFor(name, help, TypeSummary, scale, labels)}
}

// GaugeFunc registers a gauge whose value is computed at render time —
// the bridge for state that already lives elsewhere (store record
// counts, cache sizes). Re-registering the same name replaces the
// callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, TypeGauge, fn)
}

// CounterFunc registers a counter whose value is read at render time
// from an externally maintained monotone counter (cache hit totals,
// notifier wakeups). Re-registering the same name replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, TypeCounter, fn)
}

// GaugeFuncVec is a labeled family of render-time gauges: each label
// tuple carries its own callback (e.g. plus_index_entries{index=...}).
type GaugeFuncVec struct{ f *family }

// GaugeFuncVec registers (or finds) a func-gauge family with a fixed
// label set; Register attaches per-tuple callbacks.
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	if r == nil {
		return nil
	}
	return &GaugeFuncVec{f: r.familyFor(name, help, TypeGauge, 1, labels)}
}

// Register binds the series for these label values to a render-time
// callback, replacing any previous one. A nil receiver or callback is a
// no-op.
func (g *GaugeFuncVec) Register(fn func() float64, labelValues ...string) {
	if g == nil || fn == nil {
		return
	}
	s := g.f.seriesFor(labelValues, func() *series { return &series{} })
	g.f.mu.Lock()
	s.fn = fn
	g.f.mu.Unlock()
}

func (r *Registry) registerFunc(name, help string, typ MetricType, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	f := r.familyFor(name, help, typ, 1, nil)
	s := f.seriesFor(nil, func() *series { return &series{} })
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// Label is one rendered label pair.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Series is one rendered time series.
type Series struct {
	Labels []Label `json:"labels,omitempty"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value"`
	// Count/Sum/Quantiles carry summary (histogram) readings; quantile
	// values are in the family's rendered unit (seconds for latencies).
	Count     uint64             `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Family is one rendered metric family.
type Family struct {
	Name   string     `json:"name"`
	Help   string     `json:"help,omitempty"`
	Type   MetricType `json:"type"`
	Series []Series   `json:"series"`
}

// Gather snapshots every family, sorted by name with series sorted by
// label values — the deterministic input both renderers share.
func (r *Registry) Gather() []Family {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.snapshot())
	}
	return out
}

// snapshot renders one family.
func (f *family) snapshot() Family {
	f.mu.RLock()
	series := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		series = append(series, s)
	}
	f.mu.RUnlock()
	sort.Slice(series, func(i, j int) bool {
		return seriesKey(series[i].labelValues) < seriesKey(series[j].labelValues)
	})

	fam := Family{Name: f.name, Help: f.help, Type: f.typ}
	for _, s := range series {
		rs := Series{Labels: labelPairs(f.labels, s.labelValues)}
		switch {
		case s.fn != nil:
			rs.Value = s.fn()
		case s.counter != nil:
			rs.Value = float64(s.counter.Value())
		case s.gauge != nil:
			rs.Value = s.gauge.Value()
		case s.hist != nil:
			h := s.hist.Snapshot()
			rs.Count = h.Count
			rs.Sum = float64(h.Sum) * f.scale
			rs.Quantiles = map[string]float64{
				"0.5":  float64(h.P50) * f.scale,
				"0.95": float64(h.P95) * f.scale,
				"0.99": float64(h.P99) * f.scale,
			}
		}
		fam.Series = append(fam.Series, rs)
	}
	return fam
}

func labelPairs(names, values []string) []Label {
	if len(names) == 0 {
		return nil
	}
	out := make([]Label, len(names))
	for i, n := range names {
		out[i] = Label{Name: n, Value: values[i]}
	}
	return out
}

package obs

import (
	"sync"
	"time"
)

// Phase is one named timing inside a slow-query entry (parse, plan,
// execute, BFS fetch, protection...).
type Phase struct {
	Name string `json:"name"`
	US   int64  `json:"us"`
}

// SlowEntry is one recorded slow query.
type SlowEntry struct {
	// Time is when the query finished.
	Time time.Time `json:"time"`
	// RequestID is the middleware-assigned (or client-supplied) trace ID.
	RequestID string `json:"requestId,omitempty"`
	// Kind distinguishes the engines: "lineage" or "plusql".
	Kind string `json:"kind"`
	// Query is the query text (PLUSQL source) or a compact description
	// (lineage target and direction).
	Query string `json:"query"`
	// Viewer is the consumer's privilege-predicate.
	Viewer string `json:"viewer,omitempty"`
	// TotalUS is the full server-side duration in microseconds.
	TotalUS int64 `json:"totalUs"`
	// Phases are the per-phase timings in execution order.
	Phases []Phase `json:"phases,omitempty"`
	// Levels is the BFS depth reached (lineage queries).
	Levels int `json:"levels,omitempty"`
	// CacheHit reports whether a cached view/lineage answered the query.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Rows is the result row count (plusql queries).
	Rows int `json:"rows,omitempty"`
}

// SlowLog is a fixed-capacity ring of the most recent queries slower
// than a threshold. A zero threshold records everything (useful in
// tests); a nil *SlowLog records nothing, so handing an unconfigured
// slow log through the engines is free. Safe for concurrent use.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	entries   []SlowEntry
	next      int
	total     uint64
}

// NewSlowLog builds a ring keeping the last capacity entries at or above
// threshold (capacity defaults to 128 when <= 0).
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{threshold: threshold, entries: make([]SlowEntry, 0, capacity)}
}

// SetThreshold replaces the recording threshold.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.threshold = d
	l.mu.Unlock()
}

// Eligible reports whether a query of this duration would be recorded —
// engines use it to skip building the entry on the fast path.
func (l *SlowLog) Eligible(d time.Duration) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	t := l.threshold
	l.mu.Unlock()
	return d >= t
}

// Record appends an entry if it clears the threshold, evicting the
// oldest when the ring is full. Returns whether it was recorded.
func (l *SlowLog) Record(e SlowEntry) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if time.Duration(e.TotalUS)*time.Microsecond < l.threshold {
		return false
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if len(l.entries) < cap(l.entries) {
		l.entries = append(l.entries, e)
	} else {
		l.entries[l.next] = e
		l.next = (l.next + 1) % cap(l.entries)
	}
	l.total++
	return true
}

// Total counts entries ever recorded (including ones evicted from the
// ring).
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the ring contents oldest-first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.entries))
	// When the ring has wrapped, next points at the oldest entry.
	if len(l.entries) == cap(l.entries) {
		out = append(out, l.entries[l.next:]...)
		out = append(out, l.entries[:l.next]...)
	} else {
		out = append(out, l.entries...)
	}
	return out
}

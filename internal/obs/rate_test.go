package obs

import (
	"testing"
	"time"
)

func TestMeterSteadyRate(t *testing.T) {
	m := &Meter{}
	// Simulate 100 events/s for 60 virtual seconds by driving the clock
	// through decayLocked directly.
	now := time.Unix(1000, 0)
	m.mu.Lock()
	m.last = now
	m.mu.Unlock()
	for i := 0; i < 600; i++ {
		now = now.Add(100 * time.Millisecond)
		m.mu.Lock()
		m.decayLocked(now)
		m.weight += 10
		m.mu.Unlock()
	}
	m.mu.Lock()
	m.decayLocked(now)
	rate := m.weight / meterTau.Seconds()
	m.mu.Unlock()
	if rate < 80 || rate > 120 {
		t.Fatalf("steady 100/s drive converged to %.1f/s", rate)
	}
}

func TestMeterDecaysToZero(t *testing.T) {
	m := &Meter{}
	m.Mark(1000)
	m.mu.Lock()
	m.decayLocked(m.last.Add(10 * meterTau))
	rate := m.weight / meterTau.Seconds()
	m.mu.Unlock()
	if rate > 0.01 {
		t.Fatalf("rate %.4f after 10 time constants; want ~0", rate)
	}
}

func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	m.Mark(5)
	if r := m.Rate(); r != 0 {
		t.Fatalf("nil meter rate = %v", r)
	}
}

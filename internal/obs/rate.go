package obs

import (
	"math"
	"sync"
	"time"
)

// meterTau is the decay time constant: a Meter's rate forgets a burst
// with a ~10s half-life-ish horizon, so Rate answers "events per second,
// recently" rather than a lifetime average.
const meterTau = 10 * time.Second

// Meter tracks a recent event rate with exponential decay — the piece a
// replication apply loop needs that counters cannot provide: "how fast
// are events flowing *now*". Mark adds events; Rate reports the decayed
// events-per-second. The zero value is ready; a nil *Meter is a no-op,
// matching the package's nil-safety contract.
type Meter struct {
	mu sync.Mutex
	// weight is the exponentially decayed event mass; dividing by the
	// time constant yields the rate (a steady r events/s converges the
	// mass to r*tau).
	weight float64
	last   time.Time
}

// Mark records n events at the current time.
func (m *Meter) Mark(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.mu.Lock()
	m.decayLocked(time.Now())
	m.weight += float64(n)
	m.mu.Unlock()
}

// Rate reports the decayed event rate in events per second.
func (m *Meter) Rate() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.decayLocked(time.Now())
	return m.weight / meterTau.Seconds()
}

func (m *Meter) decayLocked(now time.Time) {
	if m.last.IsZero() {
		m.last = now
		return
	}
	if dt := now.Sub(m.last); dt > 0 {
		m.weight *= math.Exp(-dt.Seconds() / meterTau.Seconds())
		m.last = now
	}
}

package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registration returns the same series.
	if got := r.Counter("c_total", "a counter").Value(); got != 5 {
		t.Fatalf("re-registered counter = %d, want 5", got)
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}

	cv := r.CounterVec("http_total", "by route", "route", "status")
	cv.With("/v2/query", "200").Add(3)
	cv.With("/v2/query", "500").Inc()
	if got := cv.With("/v2/query", "200").Value(); got != 3 {
		t.Fatalf("labeled counter = %d, want 3", got)
	}
}

func TestGaugeFuncVec(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	gv := r.GaugeFuncVec("idx_entries", "per-index entries", "index")
	gv.Register(func() float64 { return v }, "kind")
	gv.Register(func() float64 { return 2 * v }, "name")
	fams := r.Gather()
	if len(fams) != 1 || len(fams[0].Series) != 2 {
		t.Fatalf("gather = %+v, want one family with two series", fams)
	}
	// Series are sorted by label value: kind before name.
	if s := fams[0].Series[0]; s.Labels[0].Value != "kind" || s.Value != 7 {
		t.Fatalf("series[0] = %+v, want kind=7", s)
	}
	if s := fams[0].Series[1]; s.Labels[0].Value != "name" || s.Value != 14 {
		t.Fatalf("series[1] = %+v, want name=14", s)
	}
	// Callbacks are read at render time, and re-registration replaces.
	v = 9
	gv.Register(func() float64 { return -1 }, "name")
	fams = r.Gather()
	if fams[0].Series[0].Value != 9 || fams[0].Series[1].Value != -1 {
		t.Fatalf("re-gather = %+v, want kind=9 name=-1", fams[0].Series)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every accessor and the handles it returns must be callable on nil.
	r.Counter("x", "").Inc()
	r.CounterVec("y", "", "l").With("v").Add(2)
	r.Gauge("z", "").Set(1)
	r.Histogram("h", "", ScaleNanos).Observe(100)
	r.HistogramVec("hv", "", 1, "l").With("v").ObserveSince(time.Now())
	r.GaugeFunc("gf", "", func() float64 { return 1 })
	r.CounterFunc("cf", "", func() float64 { return 1 })
	r.GaugeFuncVec("gfv", "", "l").Register(func() float64 { return 1 }, "v")
	if fams := r.Gather(); fams != nil {
		t.Fatalf("nil registry Gather = %v, want nil", fams)
	}
	var l *SlowLog
	if l.Record(SlowEntry{}) {
		t.Fatal("nil slowlog recorded an entry")
	}
	if l.Eligible(0) {
		t.Fatal("nil slowlog reported eligible")
	}
	if l.Entries() != nil || l.Total() != 0 {
		t.Fatal("nil slowlog not empty")
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value
	// and within 12.5% relative error.
	vals := []uint64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 4096, 1 << 20, 1<<40 + 12345, math.MaxUint64}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= histNumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		up := bucketUpper(i)
		if up < v {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d < value", v, up)
		}
		if v > 0 && float64(up-v) > 0.125*float64(v) {
			t.Fatalf("bucket error for %d: upper %d exceeds 12.5%%", v, up)
		}
		if i > 0 && bucketUpper(i-1) >= v {
			t.Fatalf("value %d should not fit in bucket %d (upper %d)", v, i-1, bucketUpper(i-1))
		}
	}
	// Bucket uppers must be strictly increasing.
	for i := 1; i < histNumBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not monotone at %d: %d <= %d", i, bucketUpper(i), bucketUpper(i-1))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", 1)
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	snap := h.Snapshot()
	if snap.Count != 1000 {
		t.Fatalf("count = %d, want 1000", snap.Count)
	}
	if snap.Sum != 500500 {
		t.Fatalf("sum = %d, want 500500", snap.Sum)
	}
	check := func(name string, got, want uint64) {
		t.Helper()
		// Quantiles carry up to one bucket (12.5%) of upward error.
		if got < want || float64(got-want) > 0.125*float64(want) {
			t.Fatalf("%s = %d, want within 12.5%% above %d", name, got, want)
		}
	}
	check("p50", snap.P50, 500)
	check("p95", snap.P95, 950)
	check("p99", snap.P99, 990)
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	// Snapshot concurrently with the writers: counts must be monotone.
	var last uint64
	for i := 0; i < 50; i++ {
		snap := h.Snapshot()
		if snap.Count < last {
			t.Fatalf("count went backwards: %d -> %d", last, snap.Count)
		}
		last = snap.Count
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("final count = %d, want 8000", got)
	}
}

func TestGoldenPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("plus_http_requests_total", "HTTP requests served.", "route", "status").With("/v2/query", "200").Add(7)
	r.Gauge("plus_store_objects", "Objects in the store.").Set(42)
	r.GaugeFunc("plus_uptime_seconds", "Seconds since start.", func() float64 { return 3.5 })
	h := r.Histogram("plus_lineage_seconds", "Lineage query latency.", ScaleNanos)
	h.Observe(1000) // single observation: all quantiles hit one bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	up := float64(bucketUpper(bucketIndex(1000))) * ScaleNanos
	upStr := formatPromValue(up)
	sumStr := formatPromValue(float64(uint64(1000)) * ScaleNanos)
	want := strings.Join([]string{
		"# HELP plus_http_requests_total HTTP requests served.",
		"# TYPE plus_http_requests_total counter",
		`plus_http_requests_total{route="/v2/query",status="200"} 7`,
		"# HELP plus_lineage_seconds Lineage query latency.",
		"# TYPE plus_lineage_seconds summary",
		`plus_lineage_seconds{quantile="0.5"} ` + upStr,
		`plus_lineage_seconds{quantile="0.95"} ` + upStr,
		`plus_lineage_seconds{quantile="0.99"} ` + upStr,
		"plus_lineage_seconds_sum " + sumStr,
		"plus_lineage_seconds_count 1",
		"# HELP plus_store_objects Objects in the store.",
		"# TYPE plus_store_objects gauge",
		"plus_store_objects 42",
		"# HELP plus_uptime_seconds Seconds since start.",
		"# TYPE plus_uptime_seconds gauge",
		"plus_uptime_seconds 3.5",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "q").With("say \"hi\"\nback\\slash").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{q="say \"hi\"\nback\\slash"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped exposition missing %q in:\n%s", want, b.String())
	}
}

func TestRequestID(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 {
		t.Fatalf("request ID %q not 16 hex chars", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Fatalf("two request IDs collided: %q", id)
	}
	ctx := WithRequestID(context.Background(), id)
	if got := RequestID(ctx); got != id {
		t.Fatalf("RequestID = %q, want %q", got, id)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID on untagged context = %q, want empty", got)
	}
	// Empty ID is not stored.
	if got := RequestID(WithRequestID(context.Background(), "")); got != "" {
		t.Fatalf("empty ID stored: %q", got)
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(3, 5*time.Millisecond)
	if l.Eligible(time.Millisecond) {
		t.Fatal("1ms eligible under a 5ms threshold")
	}
	if l.Record(SlowEntry{Kind: "plusql", TotalUS: 1000}) {
		t.Fatal("recorded a fast query")
	}
	for i := 0; i < 5; i++ {
		ok := l.Record(SlowEntry{Kind: "plusql", Query: string(rune('a' + i)), TotalUS: 10000 + int64(i)})
		if !ok {
			t.Fatalf("slow entry %d not recorded", i)
		}
	}
	if got := l.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("ring kept %d entries, want 3", len(got))
	}
	// Oldest-first: entries c, d, e survive.
	for i, want := range []string{"c", "d", "e"} {
		if got[i].Query != want {
			t.Fatalf("entry %d = %q, want %q", i, got[i].Query, want)
		}
	}
	// Threshold 0 records everything.
	l.SetThreshold(0)
	if !l.Record(SlowEntry{Kind: "lineage", TotalUS: 0}) {
		t.Fatal("zero-threshold log rejected an entry")
	}
}

func TestSlowLogDefaults(t *testing.T) {
	l := NewSlowLog(0, 0)
	e := SlowEntry{Kind: "plusql"}
	l.Record(e)
	got := l.Entries()
	if len(got) != 1 {
		t.Fatalf("entries = %d, want 1", len(got))
	}
	if got[0].Time.IsZero() {
		t.Fatal("Record did not stamp a time")
	}
}

package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// HeaderRequestID is the HTTP header carrying a request ID in both
// directions: clients may supply one (the SDK's WithRequestID does), and
// the server echoes the effective ID on every response so client-observed
// and server-observed latency can be correlated.
const HeaderRequestID = "X-Plus-Request-Id"

type requestIDKey struct{}

// NewRequestID returns a fresh 16-hex-char random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed
		// fallback keeps tracing non-fatal regardless.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID tags a context with a request ID for propagation through
// engines and the SDK.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID extracts the request ID from a context ("" when untagged).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

package policy

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/privilege"
)

func testEdge() graph.EdgeID { return graph.EdgeID{From: "c", To: "f"} }

func TestDefaultIsVisible(t *testing.T) {
	p := New(privilege.FigureOneLattice())
	e := testEdge()
	if got := p.Mark("c", e, "High-2"); got != Visible {
		t.Errorf("default mark = %v, want Visible", got)
	}
	if got := p.Disposition(e, privilege.Public); got != ShowEdge {
		t.Errorf("default disposition = %v, want Show", got)
	}
}

func TestExplicitIncidenceMark(t *testing.T) {
	p := New(privilege.FigureOneLattice())
	e := testEdge()
	if err := p.SetIncidence("f", e, "High-2", Surrogate); err != nil {
		t.Fatal(err)
	}
	if got := p.Mark("f", e, "High-2"); got != Surrogate {
		t.Errorf("mark(f,e,High-2) = %v, want Surrogate", got)
	}
	// Other predicates keep the default.
	if got := p.Mark("f", e, "High-1"); got != Visible {
		t.Errorf("mark(f,e,High-1) = %v, want Visible", got)
	}
	// Other endpoint unaffected.
	if got := p.Mark("c", e, "High-2"); got != Visible {
		t.Errorf("mark(c,e,High-2) = %v, want Visible", got)
	}
}

func TestSetIncidenceValidation(t *testing.T) {
	p := New(privilege.FigureOneLattice())
	e := testEdge()
	if err := p.SetIncidence("zzz", e, "High-2", Hide); err == nil {
		t.Error("non-endpoint accepted")
	}
	if err := p.SetIncidence("c", e, "Bogus", Hide); err == nil {
		t.Error("unknown predicate accepted")
	}
	if err := p.SetIncidenceThreshold("zzz", e, "High-2", Hide); err == nil {
		t.Error("non-endpoint threshold accepted")
	}
	if err := p.SetIncidenceThreshold("c", e, "Bogus", Hide); err == nil {
		t.Error("unknown threshold predicate accepted")
	}
	if err := p.SetNode("c", "Bogus", Hide); err == nil {
		t.Error("unknown node predicate accepted")
	}
	if err := p.SetNodeThreshold("c", "Bogus", Hide); err == nil {
		t.Error("unknown node threshold predicate accepted")
	}
}

func TestIncidenceThreshold(t *testing.T) {
	l := privilege.FigureOneLattice()
	p := New(l)
	e := testEdge()
	if err := p.SetIncidenceThreshold("f", e, "High-2", Surrogate); err != nil {
		t.Fatal(err)
	}
	if got := p.Mark("f", e, "High-2"); got != Visible {
		t.Errorf("dominating predicate should see Visible, got %v", got)
	}
	if got := p.Mark("f", e, "Low-2"); got != Surrogate {
		t.Errorf("below threshold should be Surrogate, got %v", got)
	}
	if got := p.Mark("f", e, "High-1"); got != Surrogate {
		t.Errorf("incomparable predicate should be Surrogate, got %v", got)
	}
}

func TestNodeLevelMarks(t *testing.T) {
	p := New(privilege.FigureOneLattice())
	e1 := graph.EdgeID{From: "c", To: "f"}
	e2 := graph.EdgeID{From: "f", To: "g"}
	if err := p.SetNode("f", "High-2", Surrogate); err != nil {
		t.Fatal(err)
	}
	if p.Mark("f", e1, "High-2") != Surrogate || p.Mark("f", e2, "High-2") != Surrogate {
		t.Error("node-level mark should cover all incidences of f")
	}
	if p.Mark("c", e1, "High-2") != Visible {
		t.Error("node-level mark should not leak to the other endpoint")
	}
}

func TestNodeThresholdAndPrecedence(t *testing.T) {
	p := New(privilege.FigureOneLattice())
	e := testEdge()
	if err := p.SetNodeThreshold("f", "High-1", Hide); err != nil {
		t.Fatal(err)
	}
	if got := p.Mark("f", e, "High-2"); got != Hide {
		t.Errorf("below node threshold = %v, want Hide", got)
	}
	if got := p.Mark("f", e, "High-1"); got != Visible {
		t.Errorf("at node threshold = %v, want Visible", got)
	}
	// Node-level explicit beats node threshold.
	if err := p.SetNode("f", "High-2", Surrogate); err != nil {
		t.Fatal(err)
	}
	if got := p.Mark("f", e, "High-2"); got != Surrogate {
		t.Errorf("node explicit should win over node threshold, got %v", got)
	}
	// Incidence threshold beats node-level explicit.
	if err := p.SetIncidenceThreshold("f", e, "High-1", Hide); err != nil {
		t.Fatal(err)
	}
	if got := p.Mark("f", e, "High-2"); got != Hide {
		t.Errorf("incidence threshold should win over node marks, got %v", got)
	}
	// Incidence explicit beats everything.
	if err := p.SetIncidence("f", e, "High-2", Visible); err != nil {
		t.Fatal(err)
	}
	if got := p.Mark("f", e, "High-2"); got != Visible {
		t.Errorf("incidence explicit should win, got %v", got)
	}
}

func TestDispositionCombination(t *testing.T) {
	l := privilege.FigureOneLattice()
	e := testEdge()
	cases := []struct {
		src, dst Marking
		want     Disposition
	}{
		{Visible, Visible, ShowEdge},
		{Visible, Surrogate, ContractEdge},
		{Surrogate, Visible, ContractEdge},
		{Surrogate, Surrogate, ContractEdge},
		{Hide, Visible, DropEdge},
		{Visible, Hide, DropEdge},
		{Hide, Surrogate, DropEdge},
		{Surrogate, Hide, DropEdge},
		{Hide, Hide, DropEdge},
	}
	for _, c := range cases {
		p := New(l)
		if err := p.SetIncidence("c", e, "High-2", c.src); err != nil {
			t.Fatal(err)
		}
		if err := p.SetIncidence("f", e, "High-2", c.dst); err != nil {
			t.Fatal(err)
		}
		if got := p.Disposition(e, "High-2"); got != c.want {
			t.Errorf("disposition(%v,%v) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestProtectEdge(t *testing.T) {
	l := privilege.TwoLevel()
	e := graph.EdgeID{From: "a", To: "b"}

	p := New(l)
	if err := p.ProtectEdge(e, "Protected", true); err != nil {
		t.Fatal(err)
	}
	if got := p.Disposition(e, privilege.Public); got != ContractEdge {
		t.Errorf("surrogate-protected edge disposition = %v, want Contract", got)
	}
	if got := p.Disposition(e, "Protected"); got != ShowEdge {
		t.Errorf("protected consumer should see the edge, got %v", got)
	}

	h := New(l)
	if err := h.ProtectEdge(e, "Protected", false); err != nil {
		t.Fatal(err)
	}
	if got := h.Disposition(e, privilege.Public); got != DropEdge {
		t.Errorf("hide-protected edge disposition = %v, want Drop", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(privilege.FigureOneLattice())
	e := testEdge()
	if err := p.SetIncidence("f", e, "High-2", Hide); err != nil {
		t.Fatal(err)
	}
	if err := p.SetNodeThreshold("f", "High-1", Surrogate); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if err := c.SetIncidence("f", e, "High-2", Visible); err != nil {
		t.Fatal(err)
	}
	if got := p.Mark("f", e, "High-2"); got != Hide {
		t.Errorf("clone mutation leaked into original: %v", got)
	}
	if c.Lattice() != p.Lattice() {
		t.Error("clone should share lattice")
	}
}

func TestStringers(t *testing.T) {
	if Visible.String() != "Visible" || Hide.String() != "Hide" || Surrogate.String() != "Surrogate" {
		t.Error("Marking strings wrong")
	}
	if Marking(42).String() == "" || Disposition(42).String() == "" {
		t.Error("unknown values should still render")
	}
	if ShowEdge.String() != "Show" || DropEdge.String() != "Drop" || ContractEdge.String() != "Contract" {
		t.Error("Disposition strings wrong")
	}
}

// Package policy implements release policies for node-edge incidences
// (Definition 7 of the paper): for a privilege-predicate p, every incidence
// (n, e) carries a marking
//
//	mark(n, e, p) ∈ {Visible, Hide, Surrogate}.
//
// Visible — the provider will show this incidence to consumers satisfying
// p. Hide — the incidence may not be shown nor used to compute any edge of
// the protected account. Surrogate — the incidence may be used to maintain
// a path in a protected account although it cannot be shown directly.
//
// Each edge is subject to marking by (at least) the providers of its source
// and destination nodes, and the markings need not agree — local autonomy.
// The final disposition of an edge combines the marks at both ends
// (Algorithm 3): Visible+Visible shows the edge, any Hide kills it, and the
// remaining combinations make it usable only for surrogate-edge
// computation.
package policy

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/privilege"
)

// Marking is the release decision for one node-edge incidence under one
// privilege-predicate.
type Marking int

const (
	// Visible incidences may be shown directly.
	Visible Marking = iota
	// Hide incidences may neither be shown nor traversed.
	Hide
	// Surrogate incidences may be traversed to compute surrogate edges
	// but may not be shown.
	Surrogate
)

func (m Marking) String() string {
	switch m {
	case Visible:
		return "Visible"
	case Hide:
		return "Hide"
	case Surrogate:
		return "Surrogate"
	default:
		return fmt.Sprintf("Marking(%d)", int(m))
	}
}

// Disposition is the per-edge combination of its two incidence markings.
type Disposition int

const (
	// ShowEdge: both incidences Visible; the edge appears in the account.
	ShowEdge Disposition = iota
	// DropEdge: some incidence is Hide; the edge is unusable.
	DropEdge
	// ContractEdge: no Hide and at least one Surrogate; the edge may only
	// be used to compute surrogate edges.
	ContractEdge
)

func (d Disposition) String() string {
	switch d {
	case ShowEdge:
		return "Show"
	case DropEdge:
		return "Drop"
	case ContractEdge:
		return "Contract"
	default:
		return fmt.Sprintf("Disposition(%d)", int(d))
	}
}

type incidence struct {
	node graph.NodeID
	edge graph.EdgeID
}

// threshold expresses the common provider rule "Visible to consumers whose
// predicate dominates T, otherwise M".
type threshold struct {
	at    privilege.Predicate
	below Marking
}

// Policy stores incidence markings. Resolution order for mark(n, e, p):
//
//  1. an explicit marking for exactly (n, e, p);
//  2. a threshold rule for the incidence (n, e);
//  3. an explicit node-level marking for (n, p) — the provider marking
//     "all edges connected to a node" at once, §3.2;
//  4. a threshold rule for node n;
//  5. Visible (information is releasable unless its provider said
//     otherwise; sensitivity of node content itself is handled by
//     privilege.Labeling, not here).
//
// Policy is not safe for concurrent mutation.
type Policy struct {
	lattice *privilege.Lattice

	incExplicit  map[incidence]map[privilege.Predicate]Marking
	incThreshold map[incidence]threshold
	nodeExplicit map[graph.NodeID]map[privilege.Predicate]Marking
	nodeThresh   map[graph.NodeID]threshold
}

// New returns an empty (all-Visible) policy over the lattice.
func New(l *privilege.Lattice) *Policy {
	return &Policy{
		lattice:      l,
		incExplicit:  map[incidence]map[privilege.Predicate]Marking{},
		incThreshold: map[incidence]threshold{},
		nodeExplicit: map[graph.NodeID]map[privilege.Predicate]Marking{},
		nodeThresh:   map[graph.NodeID]threshold{},
	}
}

// Lattice returns the lattice the policy is defined over.
func (p *Policy) Lattice() *privilege.Lattice { return p.lattice }

func (p *Policy) checkPredicate(pr privilege.Predicate) error {
	if !p.lattice.Known(pr) {
		return fmt.Errorf("policy: unknown predicate %q", pr)
	}
	return nil
}

// SetIncidence records an explicit marking for the incidence of node n on
// edge e under predicate pr. n must be an endpoint of e.
func (p *Policy) SetIncidence(n graph.NodeID, e graph.EdgeID, pr privilege.Predicate, m Marking) error {
	if n != e.From && n != e.To {
		return fmt.Errorf("policy: node %s is not an endpoint of %s", n, e)
	}
	if err := p.checkPredicate(pr); err != nil {
		return err
	}
	key := incidence{node: n, edge: e}
	if p.incExplicit[key] == nil {
		p.incExplicit[key] = map[privilege.Predicate]Marking{}
	}
	p.incExplicit[key][pr] = m
	return nil
}

// SetIncidenceThreshold installs a threshold rule for one incidence:
// Visible when the consumer predicate dominates at, otherwise below.
func (p *Policy) SetIncidenceThreshold(n graph.NodeID, e graph.EdgeID, at privilege.Predicate, below Marking) error {
	if n != e.From && n != e.To {
		return fmt.Errorf("policy: node %s is not an endpoint of %s", n, e)
	}
	if err := p.checkPredicate(at); err != nil {
		return err
	}
	p.incThreshold[incidence{node: n, edge: e}] = threshold{at: at, below: below}
	return nil
}

// SetNode records an explicit marking covering every incidence of node n
// under predicate pr ("providers may mark all edges connected to a node",
// §3.2).
func (p *Policy) SetNode(n graph.NodeID, pr privilege.Predicate, m Marking) error {
	if err := p.checkPredicate(pr); err != nil {
		return err
	}
	if p.nodeExplicit[n] == nil {
		p.nodeExplicit[n] = map[privilege.Predicate]Marking{}
	}
	p.nodeExplicit[n][pr] = m
	return nil
}

// SetNodeThreshold installs the common provider rule for all of node n's
// incidences: Visible to consumers dominating at, otherwise below. Using
// below=Surrogate is the paper's device for hiding a node's role while
// preserving connectivity.
func (p *Policy) SetNodeThreshold(n graph.NodeID, at privilege.Predicate, below Marking) error {
	if err := p.checkPredicate(at); err != nil {
		return err
	}
	p.nodeThresh[n] = threshold{at: at, below: below}
	return nil
}

// NodeThreshold reports the threshold rule installed for node n, if any.
// Incremental maintainers compare it across spec revisions to decide
// whether a replaced object changed its protection.
func (p *Policy) NodeThreshold(n graph.NodeID) (at privilege.Predicate, below Marking, ok bool) {
	th, ok := p.nodeThresh[n]
	return th.at, th.below, ok
}

// ClearNodeThreshold removes node n's threshold rule (a replaced object
// whose new version carries no protection marking).
func (p *Policy) ClearNodeThreshold(n graph.NodeID) {
	delete(p.nodeThresh, n)
}

// Mark resolves mark(n, e, pr) per the resolution order documented on
// Policy.
func (p *Policy) Mark(n graph.NodeID, e graph.EdgeID, pr privilege.Predicate) Marking {
	key := incidence{node: n, edge: e}
	if ms, ok := p.incExplicit[key]; ok {
		if m, ok := ms[pr]; ok {
			return m
		}
	}
	if th, ok := p.incThreshold[key]; ok {
		if p.lattice.Dominates(pr, th.at) {
			return Visible
		}
		return th.below
	}
	if ms, ok := p.nodeExplicit[n]; ok {
		if m, ok := ms[pr]; ok {
			return m
		}
	}
	if th, ok := p.nodeThresh[n]; ok {
		if p.lattice.Dominates(pr, th.at) {
			return Visible
		}
		return th.below
	}
	return Visible
}

// Disposition combines the markings at both endpoints of e under pr
// (Algorithm 3): any Hide drops the edge; Visible at both ends shows it;
// everything else contracts it.
func (p *Policy) Disposition(e graph.EdgeID, pr privilege.Predicate) Disposition {
	src := p.Mark(e.From, e, pr)
	dst := p.Mark(e.To, e, pr)
	switch {
	case src == Hide || dst == Hide:
		return DropEdge
	case src == Visible && dst == Visible:
		return ShowEdge
	default:
		return ContractEdge
	}
}

// Clone returns an independent copy of the policy (sharing the lattice).
func (p *Policy) Clone() *Policy {
	c := New(p.lattice)
	for k, ms := range p.incExplicit {
		cp := make(map[privilege.Predicate]Marking, len(ms))
		for pr, m := range ms {
			cp[pr] = m
		}
		c.incExplicit[k] = cp
	}
	for k, th := range p.incThreshold {
		c.incThreshold[k] = th
	}
	for n, ms := range p.nodeExplicit {
		cp := make(map[privilege.Predicate]Marking, len(ms))
		for pr, m := range ms {
			cp[pr] = m
		}
		c.nodeExplicit[n] = cp
	}
	for n, th := range p.nodeThresh {
		c.nodeThresh[n] = th
	}
	return c
}

// Side selects which incidence(s) of an edge a protection rule marks.
type Side int

const (
	// DstSide marks the destination incidence: contraction jumps forward
	// past the destination to its successors.
	DstSide Side = iota
	// SrcSide marks the source incidence: contraction walks backward to
	// the source's predecessors.
	SrcSide
	// BothSides marks both incidences.
	BothSides
)

func (s Side) String() string {
	switch s {
	case DstSide:
		return "dst"
	case SrcSide:
		return "src"
	case BothSides:
		return "both"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

// ProtectEdge is the §6 evaluation helper: it protects a single edge for
// consumers below the given predicate by marking the destination-side
// incidence. With asSurrogate the incidence is marked Surrogate, so account
// generation contracts the edge to the destination's successors; otherwise
// it is marked Hide, the "show/hide" baseline.
//
// The destination side is the right side to mark: the paper's bipartite
// motif discussion ("there are no nodes in deeper levels that can act as
// the destination of a surrogate edge") only makes sense when contraction
// jumps forward past the protected edge's destination incidence.
// ProtectEdgeSide exposes the other choices for ablation.
func (p *Policy) ProtectEdge(e graph.EdgeID, at privilege.Predicate, asSurrogate bool) error {
	return p.ProtectEdgeSide(e, at, asSurrogate, DstSide)
}

// ProtectEdgeSide is ProtectEdge with an explicit choice of marked
// incidence(s).
func (p *Policy) ProtectEdgeSide(e graph.EdgeID, at privilege.Predicate, asSurrogate bool, side Side) error {
	below := Hide
	if asSurrogate {
		below = Surrogate
	}
	switch side {
	case DstSide:
		return p.SetIncidenceThreshold(e.To, e, at, below)
	case SrcSide:
		return p.SetIncidenceThreshold(e.From, e, at, below)
	case BothSides:
		if err := p.SetIncidenceThreshold(e.From, e, at, below); err != nil {
			return err
		}
		return p.SetIncidenceThreshold(e.To, e, at, below)
	default:
		return fmt.Errorf("policy: unknown side %v", side)
	}
}

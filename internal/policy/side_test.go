package policy

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/privilege"
)

func TestProtectEdgeSide(t *testing.T) {
	l := privilege.TwoLevel()
	e := graph.EdgeID{From: "a", To: "b"}
	cases := []struct {
		side     Side
		srcBelow Marking
		dstBelow Marking
	}{
		{DstSide, Visible, Surrogate},
		{SrcSide, Surrogate, Visible},
		{BothSides, Surrogate, Surrogate},
	}
	for _, c := range cases {
		p := New(l)
		if err := p.ProtectEdgeSide(e, "Protected", true, c.side); err != nil {
			t.Fatalf("%v: %v", c.side, err)
		}
		if got := p.Mark("a", e, privilege.Public); got != c.srcBelow {
			t.Errorf("%v: src mark = %v, want %v", c.side, got, c.srcBelow)
		}
		if got := p.Mark("b", e, privilege.Public); got != c.dstBelow {
			t.Errorf("%v: dst mark = %v, want %v", c.side, got, c.dstBelow)
		}
		// Privileged consumers always see the edge.
		if p.Mark("a", e, "Protected") != Visible || p.Mark("b", e, "Protected") != Visible {
			t.Errorf("%v: protected consumer blocked", c.side)
		}
	}
}

func TestProtectEdgeSideHide(t *testing.T) {
	l := privilege.TwoLevel()
	e := graph.EdgeID{From: "a", To: "b"}
	p := New(l)
	if err := p.ProtectEdgeSide(e, "Protected", false, BothSides); err != nil {
		t.Fatal(err)
	}
	if got := p.Disposition(e, privilege.Public); got != DropEdge {
		t.Errorf("disposition = %v, want Drop", got)
	}
}

func TestProtectEdgeSideValidation(t *testing.T) {
	l := privilege.TwoLevel()
	e := graph.EdgeID{From: "a", To: "b"}
	p := New(l)
	if err := p.ProtectEdgeSide(e, "Bogus", true, DstSide); err == nil {
		t.Error("unknown predicate accepted")
	}
	if err := p.ProtectEdgeSide(e, "Protected", true, Side(42)); err == nil {
		t.Error("unknown side accepted")
	}
}

func TestSideString(t *testing.T) {
	if DstSide.String() != "dst" || SrcSide.String() != "src" || BothSides.String() != "both" {
		t.Error("side strings wrong")
	}
	if Side(42).String() == "" {
		t.Error("unknown side should still render")
	}
}

package privilege

import (
	"encoding/json"
	"fmt"
	"sort"
)

// FromPairs builds a frozen lattice from [dominator, dominated] pairs —
// the wire format used by cmd/protect spec files and cmd/plusd lattice
// files. Public is implicit; predicates appearing only as dominators
// implicitly dominate Public.
func FromPairs(pairs [][2]string) (*Lattice, error) {
	l := NewLattice()
	for i, p := range pairs {
		if p[0] == "" || p[1] == "" {
			return nil, fmt.Errorf("privilege: pair %d has an empty name", i)
		}
		if err := l.SetDominates(Predicate(p[0]), Predicate(p[1])); err != nil {
			return nil, err
		}
	}
	if err := l.Freeze(); err != nil {
		return nil, err
	}
	return l, nil
}

// ParseLatticeJSON decodes a JSON array of [dominator, dominated] pairs
// into a frozen lattice.
func ParseLatticeJSON(data []byte) (*Lattice, error) {
	var pairs [][2]string
	if err := json.Unmarshal(data, &pairs); err != nil {
		return nil, fmt.Errorf("privilege: parse lattice: %w", err)
	}
	return FromPairs(pairs)
}

// Pairs renders the lattice's direct dominance edges as [dominator,
// dominated] pairs, sorted, suitable for round-tripping through
// FromPairs. A predicate with no explicit dominance edge is emitted with
// its implicit [p, Public] edge so the pair form is lossless.
func (l *Lattice) Pairs() [][2]string {
	var out [][2]string
	for _, p := range l.Predicates() {
		if p == Public {
			continue
		}
		if len(l.below[p]) == 0 {
			out = append(out, [2]string{string(p), string(Public)})
			continue
		}
		qs := make([]Predicate, len(l.below[p]))
		copy(qs, l.below[p])
		sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
		for _, q := range qs {
			out = append(out, [2]string{string(p), string(q)})
		}
	}
	return out
}

// MarshalJSON encodes the lattice as its dominance pairs.
func (l *Lattice) MarshalJSON() ([]byte, error) {
	pairs := l.Pairs()
	if pairs == nil {
		pairs = [][2]string{}
	}
	return json.Marshal(pairs)
}

package privilege

import (
	"fmt"
	"strings"
)

// DOT renders the lattice's direct dominance edges in Graphviz syntax,
// drawn top-down from most to least privileged (the orientation of the
// paper's Figure 1b), including the implicit Public edge of otherwise
// unrelated predicates.
func (l *Lattice) DOT(name string) string {
	l.ensureFrozen()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", name)
	for _, p := range l.Predicates() {
		fmt.Fprintf(&b, "  %q;\n", string(p))
	}
	for _, pair := range l.Pairs() {
		fmt.Fprintf(&b, "  %q -> %q;\n", pair[0], pair[1])
	}
	b.WriteString("}\n")
	return b.String()
}

package privilege

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestFigureOneLatticeOrdering(t *testing.T) {
	l := FigureOneLattice()
	cases := []struct {
		p, q Predicate
		want bool
	}{
		{"High-1", "Low-2", true},
		{"High-2", "Low-2", true},
		{"High-1", Public, true},
		{"Low-2", Public, true},
		{"High-1", "High-2", false},
		{"High-2", "High-1", false},
		{"Low-2", "High-1", false},
		{Public, "Low-2", false},
		{"High-1", "High-1", true},
		{Public, Public, true},
	}
	for _, c := range cases {
		if got := l.Dominates(c.p, c.q); got != c.want {
			t.Errorf("Dominates(%s,%s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
	if !l.Incomparable("High-1", "High-2") {
		t.Error("High-1 and High-2 should be incomparable")
	}
	if l.Incomparable("High-1", "Low-2") {
		t.Error("High-1 and Low-2 are comparable")
	}
}

func TestLatticeValidation(t *testing.T) {
	l := NewLattice()
	if err := l.SetDominates("A", "A"); err == nil {
		t.Error("self-dominance accepted")
	}
	if err := l.SetDominates(Public, "A"); err == nil {
		t.Error("Public dominating accepted")
	}
	if err := l.Declare(""); err == nil {
		t.Error("empty name accepted")
	}
	if err := l.SetDominates("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := l.SetDominates("B", "A"); err != nil {
		t.Fatal(err)
	}
	if err := l.Freeze(); err == nil {
		t.Error("cycle A<->B passed Freeze")
	}
}

func TestFreezeMakesImmutable(t *testing.T) {
	l := NewLattice()
	if err := l.SetDominates("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := l.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := l.Freeze(); err != nil {
		t.Errorf("second Freeze errored: %v", err)
	}
	if err := l.SetDominates("C", "D"); err == nil {
		t.Error("mutation after freeze accepted")
	}
	if err := l.Declare("E"); err == nil {
		t.Error("Declare after freeze accepted")
	}
}

func TestTransitiveDominance(t *testing.T) {
	l := NewLattice()
	for _, pair := range [][2]Predicate{{"D", "C"}, {"C", "B"}, {"B", "A"}} {
		if err := l.SetDominates(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !l.Dominates("D", "A") {
		t.Error("transitive dominance D>=A missing")
	}
	if l.Dominates("A", "D") {
		t.Error("reverse dominance A>=D present")
	}
	got := l.DominatedBy("D")
	if len(got) != 5 { // A B C D Public
		t.Errorf("DominatedBy(D) = %v", got)
	}
	doms := l.Dominators("A")
	if len(doms) != 4 { // A B C D
		t.Errorf("Dominators(A) = %v", doms)
	}
}

func TestUnknownPredicates(t *testing.T) {
	l := FigureOneLattice()
	if l.Dominates("Nonsense", "Low-2") {
		t.Error("unknown predicate dominates Low-2")
	}
	if l.Dominates("Nonsense", Public) {
		t.Error("undeclared predicate dominates Public")
	}
	if !l.Dominates("Nonsense", "Nonsense") {
		t.Error("reflexivity should hold even for unknown names")
	}
	if l.Known("Nonsense") {
		t.Error("Known true for unknown")
	}
}

func TestMaximalAndAntichain(t *testing.T) {
	l := FigureOneLattice()
	hw := l.Maximal([]Predicate{"High-1", "Low-2", Public, "High-2", "High-1"})
	if len(hw) != 2 || hw[0] != "High-1" || hw[1] != "High-2" {
		t.Errorf("Maximal = %v, want [High-1 High-2]", hw)
	}
	if !l.IsAntichain(hw) {
		t.Error("maximal set is not an antichain")
	}
	if l.IsAntichain([]Predicate{"High-1", "Low-2"}) {
		t.Error("comparable pair reported as antichain")
	}
	if got := l.Maximal([]Predicate{Public}); len(got) != 1 || got[0] != Public {
		t.Errorf("Maximal([Public]) = %v", got)
	}
}

func TestDominatesAllAndSomeMember(t *testing.T) {
	l := FigureOneLattice()
	hw := []Predicate{"High-1", "High-2"}
	if l.DominatesAll("High-1", hw) {
		t.Error("High-1 should not dominate the whole HW set")
	}
	if !l.DominatesAll("High-1", []Predicate{"Low-2", Public}) {
		t.Error("High-1 should dominate Low-2 and Public")
	}
	if !l.SomeMemberDominates(hw, "Low-2") {
		t.Error("HW member should dominate Low-2")
	}
	if l.SomeMemberDominates([]Predicate{"Low-2"}, "High-1") {
		t.Error("Low-2 should not dominate High-1")
	}
}

func TestAppendixLattice(t *testing.T) {
	l := AppendixLattice()
	if !l.Dominates("NationalSecurity", "EmergencyResponder") {
		t.Error("NS should transitively dominate ER")
	}
	if !l.Dominates("NationalSecurity", "MedicalProvider") {
		t.Error("NS should dominate MP")
	}
	if !l.Incomparable("ClearedEmergencyResponder", "MedicalProvider") {
		t.Error("CER and MP should be incomparable")
	}
}

func TestTwoLevel(t *testing.T) {
	l := TwoLevel()
	if !l.Dominates("Protected", Public) || l.Dominates(Public, "Protected") {
		t.Error("two-level ordering wrong")
	}
}

// randomLattice builds a random DAG lattice over k predicates; edges only
// go from higher-indexed to lower-indexed names so it is always acyclic.
func randomLattice(r *rand.Rand, k int) (*Lattice, []Predicate) {
	l := NewLattice()
	names := make([]Predicate, k)
	for i := range names {
		names[i] = Predicate(string(rune('A' + i)))
		if err := l.Declare(names[i]); err != nil {
			panic(err)
		}
	}
	for i := 1; i < k; i++ {
		for j := 0; j < i; j++ {
			if r.Intn(3) == 0 {
				if err := l.SetDominates(names[i], names[j]); err != nil {
					panic(err)
				}
			}
		}
	}
	if err := l.Freeze(); err != nil {
		panic(err)
	}
	return l, names
}

// Property: dominance is a partial order — reflexive, transitive, and
// antisymmetric on random lattices.
func TestDominancePartialOrderProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 3 + r.Intn(8)
		l, names := randomLattice(r, k)
		all := append([]Predicate{Public}, names...)
		for _, p := range all {
			if !l.Dominates(p, p) {
				return false
			}
			for _, q := range all {
				if p != q && l.Dominates(p, q) && l.Dominates(q, p) {
					return false // antisymmetry violated
				}
				for _, s := range all {
					if l.Dominates(p, q) && l.Dominates(q, s) && !l.Dominates(p, s) {
						return false // transitivity violated
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Maximal always returns an antichain that covers its input.
func TestMaximalAntichainProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l, names := randomLattice(r, 3+r.Intn(8))
		var in []Predicate
		for _, n := range names {
			if r.Intn(2) == 0 {
				in = append(in, n)
			}
		}
		in = append(in, Public)
		max := l.Maximal(in)
		if !l.IsAntichain(max) {
			return false
		}
		for _, p := range in {
			if !l.SomeMemberDominates(max, p) {
				return false
			}
		}
		// Every member of the result must come from the input set.
		inSet := map[Predicate]bool{}
		for _, p := range in {
			inSet[p] = true
		}
		for _, m := range max {
			if !inSet[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func figureOneGraph(t *testing.T) (*graph.Graph, *Labeling) {
	t.Helper()
	g := graph.New()
	for _, id := range []graph.NodeID{"a1", "a2", "b", "c", "f", "g"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a1", "b")
	g.MustAddEdge("b", "c")
	g.MustAddEdge("c", "f")
	g.MustAddEdge("f", "g")
	lb := NewLabeling(FigureOneLattice())
	mustSetNode(t, lb, "a1", "High-1")
	mustSetNode(t, lb, "a2", "High-2")
	mustSetNode(t, lb, "f", "Low-2")
	return g, lb
}

func mustSetNode(t *testing.T, lb *Labeling, n graph.NodeID, p Predicate) {
	t.Helper()
	if err := lb.SetNode(n, p); err != nil {
		t.Fatal(err)
	}
}

func TestLabelingDefaultsAndVisibility(t *testing.T) {
	g, lb := figureOneGraph(t)
	if lb.LowestNode("b") != Public {
		t.Error("unlabeled node should default to Public")
	}
	if lb.LowestNode("a1") != "High-1" {
		t.Error("explicit label lost")
	}
	if !lb.NodeVisible("b", Public) {
		t.Error("public node invisible to Public")
	}
	if lb.NodeVisible("a1", "High-2") {
		t.Error("High-1 node visible to incomparable High-2")
	}
	if !lb.NodeVisible("f", "High-2") {
		t.Error("Low-2 node should be visible to High-2")
	}
	vis := lb.VisibleNodes(g, "High-2")
	if len(vis) != 5 { // a2 b c f g
		t.Errorf("VisibleNodes(High-2) = %v", vis)
	}
}

func TestLabelingEdges(t *testing.T) {
	_, lb := figureOneGraph(t)
	e := graph.EdgeID{From: "c", To: "f"}
	if err := lb.SetEdge(e, "High-2"); err != nil {
		t.Fatal(err)
	}
	if lb.EdgeVisible(e, "Low-2") {
		t.Error("High-2 edge visible via Low-2")
	}
	if !lb.EdgeVisible(e, "High-2") {
		t.Error("High-2 edge invisible via High-2")
	}
	if lb.LowestEdge(graph.EdgeID{From: "f", To: "g"}) != Public {
		t.Error("unlabeled edge should default to Public")
	}
	if err := lb.SetEdge(e, "Bogus"); err == nil {
		t.Error("unknown predicate accepted for edge")
	}
	if err := lb.SetNode("c", "Bogus"); err == nil {
		t.Error("unknown predicate accepted for node")
	}
}

func TestHighWater(t *testing.T) {
	g, lb := figureOneGraph(t)
	hw := lb.HighWater(g)
	if len(hw) != 2 || hw[0] != "High-1" || hw[1] != "High-2" {
		t.Errorf("HighWater = %v, want [High-1 High-2]", hw)
	}
	lat := lb.Lattice()
	if !lat.IsAntichain(hw) {
		t.Error("high-water set not an antichain")
	}
	// Definition 6 conditions 2 and 3.
	for _, id := range g.Nodes() {
		if !lat.SomeMemberDominates(hw, lb.LowestNode(id)) {
			t.Errorf("HW does not cover node %s", id)
		}
	}
	for _, p := range hw {
		found := false
		for _, id := range g.Nodes() {
			if lb.LowestNode(id) == p {
				found = true
			}
		}
		if !found {
			t.Errorf("HW member %s is not any node's lowest", p)
		}
	}
}

func TestLabelingClone(t *testing.T) {
	g, lb := figureOneGraph(t)
	c := lb.Clone()
	mustSetNode(t, c, "b", "High-2")
	if lb.LowestNode("b") != Public {
		t.Error("clone shares node map")
	}
	if c.Lattice() != lb.Lattice() {
		t.Error("clone should share the lattice")
	}
	_ = g
}

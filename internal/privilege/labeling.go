package privilege

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Labeling assigns every graph object its lowest() predicate (Definition
// 3): the least privilege via which the object is visible. Objects with no
// explicit assignment default to Public.
//
// The paper treats authorized(c, o) as an oracle evaluated by the object's
// cognizant authority; this library's concrete model is the standard one
// induced by lowest(): o is visible via p iff p dominates lowest(o).
type Labeling struct {
	lattice *Lattice
	nodes   map[graph.NodeID]Predicate
	edges   map[graph.EdgeID]Predicate
}

// NewLabeling returns an empty labeling over the given lattice.
func NewLabeling(l *Lattice) *Labeling {
	return &Labeling{
		lattice: l,
		nodes:   map[graph.NodeID]Predicate{},
		edges:   map[graph.EdgeID]Predicate{},
	}
}

// Lattice returns the lattice the labeling is defined over.
func (lb *Labeling) Lattice() *Lattice { return lb.lattice }

// SetNode assigns lowest(n) = p.
func (lb *Labeling) SetNode(n graph.NodeID, p Predicate) error {
	if !lb.lattice.Known(p) {
		return fmt.Errorf("privilege: unknown predicate %q for node %s", p, n)
	}
	lb.nodes[n] = p
	return nil
}

// ClearNode removes node n's explicit lowest() assignment, restoring the
// Public default (a replaced object whose new version carries no Lowest).
func (lb *Labeling) ClearNode(n graph.NodeID) {
	delete(lb.nodes, n)
}

// SetEdge assigns lowest(e) = p for a whole edge (independent of the
// per-incidence release markings in package policy; this is the edge's own
// sensitivity).
func (lb *Labeling) SetEdge(e graph.EdgeID, p Predicate) error {
	if !lb.lattice.Known(p) {
		return fmt.Errorf("privilege: unknown predicate %q for edge %s", p, e)
	}
	lb.edges[e] = p
	return nil
}

// LowestNode returns lowest(n), defaulting to Public.
func (lb *Labeling) LowestNode(n graph.NodeID) Predicate {
	if p, ok := lb.nodes[n]; ok {
		return p
	}
	return Public
}

// LowestEdge returns lowest(e), defaulting to Public.
func (lb *Labeling) LowestEdge(e graph.EdgeID) Predicate {
	if p, ok := lb.edges[e]; ok {
		return p
	}
	return Public
}

// NodeVisible reports whether node n is visible via consumer predicate p
// (Definition 1).
func (lb *Labeling) NodeVisible(n graph.NodeID, p Predicate) bool {
	return lb.lattice.Dominates(p, lb.LowestNode(n))
}

// EdgeVisible reports whether edge e is visible via consumer predicate p.
func (lb *Labeling) EdgeVisible(e graph.EdgeID, p Predicate) bool {
	return lb.lattice.Dominates(p, lb.LowestEdge(e))
}

// HighWater computes the high-water set of a graph under this labeling
// (Definition 6): the maximal elements of {lowest(n) : n in N}. The result
// is an antichain in which every node's lowest predicate is dominated by
// some member, and every member is some node's lowest predicate.
func (lb *Labeling) HighWater(g *graph.Graph) []Predicate {
	var lows []Predicate
	for _, id := range g.Nodes() {
		lows = append(lows, lb.LowestNode(id))
	}
	return lb.lattice.Maximal(lows)
}

// VisibleNodes returns the ids of nodes visible via p, sorted.
func (lb *Labeling) VisibleNodes(g *graph.Graph, p Predicate) []graph.NodeID {
	var out []graph.NodeID
	for _, id := range g.Nodes() {
		if lb.NodeVisible(id, p) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy of the labeling (sharing the immutable
// lattice).
func (lb *Labeling) Clone() *Labeling {
	c := NewLabeling(lb.lattice)
	for n, p := range lb.nodes {
		c.nodes[n] = p
	}
	for e, p := range lb.edges {
		c.edges[e] = p
	}
	return c
}

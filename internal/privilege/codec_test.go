package privilege

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromPairs(t *testing.T) {
	lat, err := FromPairs([][2]string{
		{"High-1", "Low-2"},
		{"High-2", "Low-2"},
		{"Low-2", "Public"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Dominates("High-1", Public) {
		t.Error("transitive dominance missing")
	}
	if !lat.Incomparable("High-1", "High-2") {
		t.Error("High-1/High-2 should be incomparable")
	}
}

func TestFromPairsErrors(t *testing.T) {
	if _, err := FromPairs([][2]string{{"", "X"}}); err == nil {
		t.Error("empty dominator accepted")
	}
	if _, err := FromPairs([][2]string{{"X", ""}}); err == nil {
		t.Error("empty dominated accepted")
	}
	if _, err := FromPairs([][2]string{{"A", "B"}, {"B", "A"}}); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := FromPairs([][2]string{{"Public", "A"}}); err == nil {
		t.Error("Public as dominator accepted")
	}
}

func TestParseLatticeJSON(t *testing.T) {
	lat, err := ParseLatticeJSON([]byte(`[["A","B"],["B","C"]]`))
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Dominates("A", "C") {
		t.Error("parsed lattice missing transitive dominance")
	}
	if _, err := ParseLatticeJSON([]byte(`{"not":"an array"}`)); err == nil {
		t.Error("bad JSON shape accepted")
	}
	if _, err := ParseLatticeJSON([]byte(`garbage`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPairsRoundTrip(t *testing.T) {
	orig := FigureOneLattice()
	pairs := orig.Pairs()
	back, err := FromPairs(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range orig.Predicates() {
		for _, q := range orig.Predicates() {
			if orig.Dominates(p, q) != back.Dominates(p, q) {
				t.Errorf("round trip changed Dominates(%s,%s)", p, q)
			}
		}
	}
}

func TestLatticeMarshalJSON(t *testing.T) {
	data, err := json.Marshal(FigureOneLattice())
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseLatticeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Dominates("High-2", "Low-2") {
		t.Error("marshalled lattice lost an edge")
	}
	// Empty lattice marshals to [] not null.
	data, err = json.Marshal(NewLattice())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Errorf("empty lattice = %s, want []", data)
	}
}

// Property: Pairs/FromPairs round-trips arbitrary random lattices with an
// identical dominance relation.
func TestPairsRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l, names := randomLattice(r, 3+r.Intn(8))
		back, err := FromPairs(l.Pairs())
		if err != nil {
			return false
		}
		all := append([]Predicate{Public}, names...)
		for _, p := range all {
			for _, q := range all {
				if l.Dominates(p, q) != back.Dominates(p, q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLatticeDOT(t *testing.T) {
	dot := FigureOneLattice().DOT("fig1b")
	for _, want := range []string{`digraph "fig1b"`, `"High-1" -> "Low-2"`, `"Low-2" -> "Public"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// An isolated predicate still shows its implicit Public edge.
	l := NewLattice()
	if err := l.Declare("Loner"); err != nil {
		t.Fatal(err)
	}
	if err := l.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(l.DOT("x"), `"Loner" -> "Public"`) {
		t.Error("implicit Public edge missing")
	}
}

// Package privilege models privilege-predicates and their partial order
// (Definitions 1–3 and 6 of the paper).
//
// A privilege-predicate is a Boolean function over consumer credentials;
// this library follows the paper's convention of naming each predicate with
// a nickname ("High-1", "Low-2", ...) and representing the dominance
// relation explicitly as a DAG: p dominates q when every consumer
// satisfying p also satisfies q. "Public" is the distinguished bottom
// predicate dominated by every other predicate.
//
// Object sensitivity is expressed by assigning each graph object its
// lowest() predicate (Definition 3); an object is visible via p exactly
// when p dominates lowest(object) (Definition 1).
package privilege

import (
	"fmt"
	"sort"
)

// Predicate is the nickname of a privilege-predicate.
type Predicate string

// Public is the bottom of every lattice: the predicate satisfied by all
// consumers. Every other predicate must (transitively) dominate it.
const Public Predicate = "Public"

// Lattice is the partially ordered set of privilege-predicates. The zero
// value is not usable; construct with NewLattice, which pre-declares
// Public.
//
// Lattice is immutable after Freeze (or after the first query, which
// freezes implicitly); it may then be shared freely across goroutines.
type Lattice struct {
	declared map[Predicate]bool
	below    map[Predicate][]Predicate // below[p] = predicates p directly dominates
	closure  map[Predicate]map[Predicate]bool
	frozen   bool
}

// NewLattice returns a lattice containing only Public.
func NewLattice() *Lattice {
	return &Lattice{
		declared: map[Predicate]bool{Public: true},
		below:    map[Predicate][]Predicate{},
	}
}

// Declare registers a predicate name. Declaring Public or an existing name
// is a no-op. Predicates with no explicit dominance edge implicitly
// dominate Public only.
func (l *Lattice) Declare(ps ...Predicate) error {
	if l.frozen {
		return fmt.Errorf("privilege: lattice is frozen")
	}
	for _, p := range ps {
		if p == "" {
			return fmt.Errorf("privilege: empty predicate name")
		}
		l.declared[p] = true
	}
	return nil
}

// SetDominates records that p directly dominates q (every consumer
// satisfying p also satisfies q). Both predicates are declared implicitly.
func (l *Lattice) SetDominates(p, q Predicate) error {
	if l.frozen {
		return fmt.Errorf("privilege: lattice is frozen")
	}
	if p == q {
		return fmt.Errorf("privilege: %s cannot explicitly dominate itself", p)
	}
	if p == Public {
		return fmt.Errorf("privilege: Public cannot dominate %s", q)
	}
	if err := l.Declare(p, q); err != nil {
		return err
	}
	for _, existing := range l.below[p] {
		if existing == q {
			return nil
		}
	}
	l.below[p] = append(l.below[p], q)
	return nil
}

// Freeze validates the lattice and computes the dominance closure. After a
// successful Freeze the lattice is immutable. Freeze is idempotent.
//
// Validation enforces: the direct-dominance graph is acyclic (dominance is
// a partial order, so mutual dominance of distinct nicknames is an error),
// and every non-Public predicate transitively dominates Public (the paper
// assumes a Public predicate dominated by all others, §2).
func (l *Lattice) Freeze() error {
	if l.frozen {
		return nil
	}
	// Cycle check via DFS colouring.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[Predicate]int, len(l.declared))
	var visit func(p Predicate) error
	visit = func(p Predicate) error {
		switch colour[p] {
		case grey:
			return fmt.Errorf("privilege: dominance cycle through %s", p)
		case black:
			return nil
		}
		colour[p] = grey
		for _, q := range l.below[p] {
			if err := visit(q); err != nil {
				return err
			}
		}
		colour[p] = black
		return nil
	}
	for p := range l.declared {
		if err := visit(p); err != nil {
			return err
		}
	}

	// Closure: reflexive-transitive reachability over `below`, with Public
	// implicitly below everything.
	l.closure = make(map[Predicate]map[Predicate]bool, len(l.declared))
	for p := range l.declared {
		reach := map[Predicate]bool{p: true, Public: true}
		stack := []Predicate{p}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, q := range l.below[cur] {
				if !reach[q] {
					reach[q] = true
					stack = append(stack, q)
				}
			}
		}
		l.closure[p] = reach
	}
	l.frozen = true
	return nil
}

func (l *Lattice) ensureFrozen() {
	if !l.frozen {
		if err := l.Freeze(); err != nil {
			panic(err) // construction bug: callers building lattices dynamically should call Freeze and handle the error
		}
	}
}

// Known reports whether p was declared in this lattice.
func (l *Lattice) Known(p Predicate) bool { return l.declared[p] }

// Predicates returns all declared predicates in sorted order.
func (l *Lattice) Predicates() []Predicate {
	ps := make([]Predicate, 0, len(l.declared))
	for p := range l.declared {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// Dominates reports whether p dominates q (Definition 2): reflexively and
// transitively, with Public dominated by everything. Unknown predicates
// dominate nothing and are dominated only per the Public rule.
func (l *Lattice) Dominates(p, q Predicate) bool {
	l.ensureFrozen()
	if p == q {
		return true
	}
	if q == Public {
		return l.declared[p]
	}
	reach, ok := l.closure[p]
	return ok && reach[q]
}

// Incomparable reports whether neither predicate dominates the other.
func (l *Lattice) Incomparable(p, q Predicate) bool {
	return !l.Dominates(p, q) && !l.Dominates(q, p)
}

// DominatedBy returns every predicate that p dominates (including p itself
// and Public), sorted.
func (l *Lattice) DominatedBy(p Predicate) []Predicate {
	l.ensureFrozen()
	reach := l.closure[p]
	out := make([]Predicate, 0, len(reach))
	for q := range reach {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dominators returns every predicate that dominates p (including p),
// sorted.
func (l *Lattice) Dominators(p Predicate) []Predicate {
	l.ensureFrozen()
	var out []Predicate
	for q := range l.declared {
		if l.Dominates(q, p) {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsAntichain reports whether no member of the set dominates another
// distinct member (the shape required of a high-water set, Definition 6).
func (l *Lattice) IsAntichain(ps []Predicate) bool {
	for i, p := range ps {
		for j, q := range ps {
			if i != j && l.Dominates(p, q) {
				return false
			}
		}
	}
	return true
}

// Maximal reduces a predicate set to its maximal elements under dominance:
// the unique minimal antichain that dominates every input. Duplicates are
// removed; the result is sorted.
func (l *Lattice) Maximal(ps []Predicate) []Predicate {
	uniq := map[Predicate]bool{}
	for _, p := range ps {
		uniq[p] = true
	}
	var out []Predicate
	for p := range uniq {
		dominated := false
		for q := range uniq {
			if q != p && l.Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DominatesAll reports whether p dominates every member of the set. A
// consumer whose credentials dominate the conjunction of a high-water set
// can see the complete graph (§3.1); with nickname predicates that is
// exactly "p dominates every member".
func (l *Lattice) DominatesAll(p Predicate, ps []Predicate) bool {
	for _, q := range ps {
		if !l.Dominates(p, q) {
			return false
		}
	}
	return true
}

// SomeMemberDominates reports whether some member of the set dominates q.
// This is the visibility test against a high-water set (Definition 8 uses
// "for some p dominated by a member of HW").
func (l *Lattice) SomeMemberDominates(ps []Predicate, q Predicate) bool {
	for _, p := range ps {
		if l.Dominates(p, q) {
			return true
		}
	}
	return false
}

// FigureOneLattice builds the privilege ordering of Figure 1b:
//
//	Low-2 dominates Public; High-1 and High-2 each dominate Low-2.
//
// High-1 and High-2 are incomparable.
func FigureOneLattice() *Lattice {
	l := NewLattice()
	mustSet(l, "Low-2", Public)
	mustSet(l, "High-1", "Low-2")
	mustSet(l, "High-2", "Low-2")
	if err := l.Freeze(); err != nil {
		panic(err)
	}
	return l
}

// AppendixLattice builds the privilege ordering of Figure 11b (the
// emergency-response provenance example): Cleared Emergency Responder
// dominates Emergency Responder; National Security dominates Cleared
// Emergency Responder and Medical Provider; all dominate Public.
func AppendixLattice() *Lattice {
	l := NewLattice()
	mustSet(l, "EmergencyResponder", Public)
	mustSet(l, "MedicalProvider", Public)
	mustSet(l, "ClearedEmergencyResponder", "EmergencyResponder")
	mustSet(l, "NationalSecurity", "ClearedEmergencyResponder")
	mustSet(l, "NationalSecurity", "MedicalProvider")
	if err := l.Freeze(); err != nil {
		panic(err)
	}
	return l
}

// TwoLevel builds the minimal lattice used by the §6 evaluation workloads:
// a single "Protected" predicate above Public.
func TwoLevel() *Lattice {
	l := NewLattice()
	mustSet(l, "Protected", Public)
	if err := l.Freeze(); err != nil {
		panic(err)
	}
	return l
}

func mustSet(l *Lattice, p, q Predicate) {
	if err := l.SetDominates(p, q); err != nil {
		panic(err)
	}
}

package account

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// incSpec builds an empty spec over a three-level Secret > Protected >
// Public lattice.
func incSpec(t *testing.T) *Spec {
	t.Helper()
	lat := privilege.NewLattice()
	if err := lat.Declare("Secret", "Protected"); err != nil {
		t.Fatal(err)
	}
	if err := lat.SetDominates("Secret", "Protected"); err != nil {
		t.Fatal(err)
	}
	if err := lat.SetDominates("Protected", privilege.Public); err != nil {
		t.Fatal(err)
	}
	if err := lat.Freeze(); err != nil {
		t.Fatal(err)
	}
	lb := privilege.NewLabeling(lat)
	return &Spec{
		Graph:      graph.New(),
		Labeling:   lb,
		Policy:     policy.New(lat),
		Surrogates: surrogate.NewRegistry(lb),
	}
}

// harness drives chained incremental maintenance against from-scratch
// generation over an evolving spec.
type harness struct {
	t      *testing.T
	spec   *Spec
	viewer privilege.Predicate
	acct   *Account // incrementally maintained
	hide   *Account // incrementally maintained hide account

	pending    Delta
	pre        *PreState
	rebuilds   int
	increments int
}

func newHarness(t *testing.T, viewer privilege.Predicate) *harness {
	h := &harness{t: t, spec: incSpec(t), viewer: viewer}
	var err error
	h.acct, err = Generate(h.spec, viewer)
	if err != nil {
		t.Fatal(err)
	}
	h.hide, err = GenerateHide(h.spec, viewer)
	if err != nil {
		t.Fatal(err)
	}
	h.pre = &PreState{nodes: map[graph.NodeID]nodeProtection{}}
	return h
}

func (h *harness) capture(id graph.NodeID) {
	if _, ok := h.pre.nodes[id]; ok {
		return
	}
	np := nodeProtection{lowest: h.spec.Labeling.LowestNode(id)}
	np.thrAt, np.thrBelow, np.hasThr = h.spec.Policy.NodeThreshold(id)
	h.pre.nodes[id] = np
}

// addNode stores (or replaces) a node with the given protection.
func (h *harness) addNode(id graph.NodeID, lowest privilege.Predicate, protect policy.Marking, feats graph.Features) {
	t, s := h.t, h.spec
	if s.Graph.HasNode(id) {
		h.capture(id)
		h.pending.UpdatedNodes = append(h.pending.UpdatedNodes, id)
	} else {
		h.pending.NewNodes = append(h.pending.NewNodes, id)
	}
	s.Graph.AddNode(graph.Node{ID: id, Features: feats})
	if lowest != "" && lowest != privilege.Public {
		if err := s.Labeling.SetNode(id, lowest); err != nil {
			t.Fatal(err)
		}
	} else {
		s.Labeling.ClearNode(id)
	}
	if protect != policy.Visible {
		at := lowest
		if at == "" {
			at = privilege.Public
		}
		if err := s.Policy.SetNodeThreshold(id, at, protect); err != nil {
			t.Fatal(err)
		}
	} else {
		s.Policy.ClearNodeThreshold(id)
	}
}

func (h *harness) addEdge(from, to graph.NodeID) {
	if err := h.spec.Graph.AddEdge(graph.Edge{From: from, To: to, Label: "l"}); err != nil {
		h.t.Fatal(err)
	}
	h.pending.NewEdges = append(h.pending.NewEdges, graph.EdgeID{From: from, To: to})
}

func (h *harness) addSurrogate(forID, id graph.NodeID, lowest privilege.Predicate, score float64) {
	err := h.spec.Surrogates.Add(forID, surrogate.Surrogate{
		ID: id, Features: graph.Features{"name": "s-" + string(id)}, Lowest: lowest, InfoScore: score,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.pending.SurrogateFor = append(h.pending.SurrogateFor, forID)
}

// step maintains both accounts with the pending delta and checks parity
// against from-scratch generation.
func (h *harness) step(wantRebuild bool) MaintainStats {
	t := h.t
	t.Helper()
	d, pre := h.pending, h.pre
	h.pending, h.pre = Delta{}, &PreState{nodes: map[graph.NodeID]nodeProtection{}}

	got, st, err := Maintain(h.acct, h.spec, d, pre)
	if err != nil {
		t.Fatalf("Maintain: %v", err)
	}
	if st.Rebuilt != wantRebuild {
		t.Fatalf("Maintain rebuilt = %v (%q), want %v", st.Rebuilt, st.Reason, wantRebuild)
	}
	want, err := Generate(h.spec, h.viewer)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAccount(t, "surrogate", got, want)
	if err := VerifySound(h.spec, got); err != nil {
		t.Fatalf("VerifySound on maintained account: %v", err)
	}
	if err := VerifyMaximal(h.spec, got); err != nil {
		t.Fatalf("VerifyMaximal on maintained account: %v", err)
	}
	h.acct = got
	if st.Rebuilt {
		h.rebuilds++
	} else {
		h.increments++
	}

	gotHide, hst, err := MaintainHide(h.hide, h.spec, d)
	if err != nil {
		t.Fatalf("MaintainHide: %v", err)
	}
	if hst.Rebuilt {
		t.Fatal("MaintainHide should never rebuild")
	}
	wantHide, err := GenerateHide(h.spec, h.viewer)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAccount(t, "hide", gotHide, wantHide)
	h.hide = gotHide
	return st
}

func assertSameAccount(t *testing.T, label string, got, want *Account) {
	t.Helper()
	if !got.Graph.Equal(want.Graph) {
		t.Fatalf("%s: maintained graph differs from scratch generation:\n got nodes %v edges %v\nwant nodes %v edges %v",
			label, got.Graph.Nodes(), got.Graph.Edges(), want.Graph.Nodes(), want.Graph.Edges())
	}
	if fmt.Sprint(mapPairs(got.ToOriginal)) != fmt.Sprint(mapPairs(want.ToOriginal)) {
		t.Fatalf("%s: ToOriginal differs", label)
	}
	if fmt.Sprint(mapPairs(got.FromOriginal)) != fmt.Sprint(mapPairs(want.FromOriginal)) {
		t.Fatalf("%s: FromOriginal differs", label)
	}
	if len(got.InfoScore) != len(want.InfoScore) {
		t.Fatalf("%s: InfoScore size %d != %d", label, len(got.InfoScore), len(want.InfoScore))
	}
	for k, v := range want.InfoScore {
		if got.InfoScore[k] != v {
			t.Fatalf("%s: InfoScore[%s] = %v, want %v", label, k, got.InfoScore[k], v)
		}
	}
	if len(got.SurrogateNodes) != len(want.SurrogateNodes) {
		t.Fatalf("%s: SurrogateNodes size %d != %d", label, len(got.SurrogateNodes), len(want.SurrogateNodes))
	}
	for k := range want.SurrogateNodes {
		if _, ok := got.SurrogateNodes[k]; !ok {
			t.Fatalf("%s: missing surrogate node %s", label, k)
		}
	}
	if len(got.SurrogateEdges) != len(want.SurrogateEdges) {
		t.Fatalf("%s: SurrogateEdges size %d != %d:\n got %v\nwant %v",
			label, len(got.SurrogateEdges), len(want.SurrogateEdges), got.SurrogateEdges, want.SurrogateEdges)
	}
	for k := range want.SurrogateEdges {
		if !got.SurrogateEdges[k] {
			t.Fatalf("%s: missing surrogate edge %s", label, k)
		}
	}
}

func mapPairs(m map[graph.NodeID]graph.NodeID) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, string(k)+"="+string(v))
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestMaintainAdditiveChain exercises the incremental fast path: additive
// writes (new nodes, edges through protected regions, benign feature
// updates, surrogates bundled with their nodes) patch the account without
// regeneration, and the result matches a from-scratch build exactly.
func TestMaintainAdditiveChain(t *testing.T) {
	h := newHarness(t, privilege.Public)

	// Seed: a public chain through a protected-surrogate middle.
	h.addNode("a", "", policy.Visible, graph.Features{"name": "a", "kind": "data"})
	h.addNode("m", "Protected", policy.Surrogate, graph.Features{"name": "m", "kind": "invocation"})
	h.addSurrogate("m", "m'", privilege.Public, 0.5)
	h.addNode("b", "", policy.Visible, graph.Features{"name": "b", "kind": "data"})
	h.addEdge("a", "m")
	h.addEdge("m", "b")
	h.step(false)
	if !h.acct.Graph.HasNode("m'") {
		t.Fatal("surrogate m' not selected")
	}

	// Grow a new branch into the protected region: the dirty closure must
	// absorb the chain and re-run interposition.
	h.addNode("c", "", policy.Visible, graph.Features{"name": "c", "kind": "data"})
	h.addEdge("c", "m")
	st := h.step(false)
	if st.Dirty == 0 {
		t.Fatal("dirty region empty after edge into protected chain")
	}

	// Benign feature update of a visible node.
	h.addNode("a", "", policy.Visible, graph.Features{"name": "a v2", "kind": "data"})
	h.step(false)

	// A hidden node (no surrogate) bundled with edges in one delta.
	h.addNode("h", "Secret", policy.Hide, graph.Features{"name": "h", "kind": "data"})
	h.addEdge("b", "h")
	h.step(false)

	// A brand-new protected node arriving WITH its surrogate in the same
	// delta stays incremental.
	h.addNode("p", "Protected", policy.Surrogate, graph.Features{"name": "p", "kind": "invocation"})
	h.addSurrogate("p", "p'", privilege.Public, 0.3)
	h.addEdge("b", "p")
	h.addNode("q", "", policy.Visible, graph.Features{"name": "q", "kind": "data"})
	h.addEdge("p", "q")
	h.step(false)

	// Pure growth in public territory.
	for i := 0; i < 5; i++ {
		id := graph.NodeID(fmt.Sprintf("x%d", i))
		h.addNode(id, "", policy.Visible, graph.Features{"name": string(id), "kind": "data"})
		h.addEdge("q", id)
		h.step(false)
	}
	if h.increments == 0 || h.rebuilds != 0 {
		t.Fatalf("increments/rebuilds = %d/%d, want all-incremental", h.increments, h.rebuilds)
	}
}

// TestMaintainHazardsRebuild exercises the escape hatches: protection
// changes and late surrogates cannot be localised and regenerate, still
// landing on the exact scratch account.
func TestMaintainHazardsRebuild(t *testing.T) {
	h := newHarness(t, privilege.Public)
	h.addNode("a", "", policy.Visible, graph.Features{"name": "a", "kind": "data"})
	h.addNode("m", "Protected", policy.Surrogate, graph.Features{"name": "m", "kind": "invocation"})
	h.addNode("b", "", policy.Visible, graph.Features{"name": "b", "kind": "data"})
	h.addEdge("a", "m")
	h.addEdge("m", "b")
	h.step(false)

	// A surrogate arriving AFTER its hidden node was already incorporated
	// flips presence: rebuild.
	h.addSurrogate("m", "m'", privilege.Public, 0.5)
	h.step(true)

	// Reclassifying a visible node to Protected: rebuild.
	h.addNode("a", "Protected", policy.Surrogate, graph.Features{"name": "a", "kind": "data"})
	h.step(true)

	// Clearing protection again: rebuild.
	h.addNode("a", "", policy.Visible, graph.Features{"name": "a", "kind": "data"})
	h.step(true)

	// And afterwards additive writes are incremental again.
	h.addNode("c", "", policy.Visible, graph.Features{"name": "c", "kind": "data"})
	h.addEdge("c", "a")
	h.step(false)
}

// TestMaintainRandomParity drives randomized evolution: each step applies
// a random batch of additive and hazardous mutations, maintains
// incrementally, and requires exact parity with scratch generation for
// both generators and both a Public and a Protected viewer.
func TestMaintainRandomParity(t *testing.T) {
	for _, viewer := range []privilege.Predicate{privilege.Public, "Protected"} {
		for seed := int64(1); seed <= 5; seed++ {
			viewer, seed := viewer, seed
			t.Run(fmt.Sprintf("%s/seed%d", viewer, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				h := newHarness(t, viewer)
				var ids []graph.NodeID
				lowests := []privilege.Predicate{"", "", "", "Protected", "Secret"}
				marks := []policy.Marking{policy.Visible, policy.Visible, policy.Surrogate, policy.Hide}
				nextID := 0
				expectRebuild := false

				for step := 0; step < 60; step++ {
					ops := 1 + rng.Intn(4)
					for i := 0; i < ops; i++ {
						switch k := rng.Intn(10); {
						case k < 4 || len(ids) < 2: // new node (maybe protected, maybe with surrogate)
							id := graph.NodeID(fmt.Sprintf("n%d", nextID))
							nextID++
							lw := lowests[rng.Intn(len(lowests))]
							mk := policy.Visible
							if lw != "" {
								mk = marks[rng.Intn(len(marks))]
							}
							h.addNode(id, lw, mk, graph.Features{"name": string(id), "kind": []string{"data", "invocation"}[rng.Intn(2)]})
							if lw != "" && rng.Intn(2) == 0 {
								h.addSurrogate(id, id+"'", privilege.Public, 0.5)
							}
							if len(ids) > 0 && rng.Intn(3) > 0 {
								from := ids[rng.Intn(len(ids))]
								if !h.spec.Graph.HasEdge(from, id) {
									h.addEdge(from, id)
								}
							}
							ids = append(ids, id)
						case k < 7: // new edge between existing nodes
							from := ids[rng.Intn(len(ids))]
							to := ids[rng.Intn(len(ids))]
							if from != to && !h.spec.Graph.HasEdge(from, to) && !h.spec.Graph.HasEdge(to, from) {
								h.addEdge(from, to)
							}
						case k < 9: // benign feature update
							id := ids[rng.Intn(len(ids))]
							lw := h.spec.Labeling.LowestNode(id)
							if lw == privilege.Public {
								lw = ""
							}
							at, below, hasThr := h.spec.Policy.NodeThreshold(id)
							mk := policy.Visible
							if hasThr {
								mk = below
								_ = at
							}
							n, _ := h.spec.Graph.NodeByID(id)
							feats := n.Features.Clone()
							feats["rev"] = fmt.Sprint(step)
							h.addNode(id, lw, mk, feats)
						default: // hazardous reclassification
							id := ids[rng.Intn(len(ids))]
							lw := lowests[rng.Intn(len(lowests))]
							mk := policy.Visible
							if lw != "" {
								mk = marks[rng.Intn(len(marks))]
							}
							old := h.spec.Labeling.LowestNode(id)
							n, _ := h.spec.Graph.NodeByID(id)
							h.addNode(id, lw, mk, n.Features.Clone())
							newLw := lw
							if newLw == "" {
								newLw = privilege.Public
							}
							_, _, hadThr := h.pre.nodes[id].thrAt, h.pre.nodes[id].thrBelow, h.pre.nodes[id].hasThr
							if old != newLw || hadThr != (mk != policy.Visible) || mk != policy.Visible {
								// May or may not be an actual change; Maintain
								// decides. Don't predict; just allow either.
								expectRebuild = true
							}
						}
					}
					d, pre := h.pending, h.pre
					h.pending, h.pre = Delta{}, &PreState{nodes: map[graph.NodeID]nodeProtection{}}

					got, _, err := Maintain(h.acct, h.spec, d, pre)
					if err != nil {
						t.Fatalf("step %d: Maintain: %v", step, err)
					}
					want, err := Generate(h.spec, viewer)
					if err != nil {
						t.Fatal(err)
					}
					assertSameAccount(t, fmt.Sprintf("step %d surrogate", step), got, want)
					if err := VerifySound(h.spec, got); err != nil {
						t.Fatalf("step %d: VerifySound: %v", step, err)
					}
					h.acct = got

					gotHide, _, err := MaintainHide(h.hide, h.spec, d)
					if err != nil {
						t.Fatalf("step %d: MaintainHide: %v", step, err)
					}
					wantHide, err := GenerateHide(h.spec, viewer)
					if err != nil {
						t.Fatal(err)
					}
					assertSameAccount(t, fmt.Sprintf("step %d hide", step), gotHide, wantHide)
					h.hide = gotHide
				}
				_ = expectRebuild
			})
		}
	}
}

// TestMaintainEmptyDelta returns the same account untouched.
func TestMaintainEmptyDelta(t *testing.T) {
	h := newHarness(t, privilege.Public)
	h.addNode("a", "", policy.Visible, graph.Features{"name": "a"})
	h.step(false)
	got, st, err := Maintain(h.acct, h.spec, Delta{}, &PreState{})
	if err != nil || got != h.acct || st.Rebuilt {
		t.Fatalf("empty delta: got %p (acct %p), st %+v, err %v", got, h.acct, st, err)
	}
}

// TestMaintainDoesNotMutateInput verifies the input account is left
// untouched by an incremental pass (live readers may hold it).
func TestMaintainDoesNotMutateInput(t *testing.T) {
	h := newHarness(t, privilege.Public)
	h.addNode("a", "", policy.Visible, graph.Features{"name": "a"})
	h.addNode("b", "", policy.Visible, graph.Features{"name": "b"})
	h.addEdge("a", "b")
	h.step(false)

	before := h.acct.Clone()
	h.addNode("c", "", policy.Visible, graph.Features{"name": "c"})
	h.addEdge("b", "c")
	d, pre := h.pending, h.pre
	h.pending, h.pre = Delta{}, &PreState{nodes: map[graph.NodeID]nodeProtection{}}
	if _, _, err := Maintain(h.acct, h.spec, d, pre); err != nil {
		t.Fatal(err)
	}
	assertSameAccount(t, "input", h.acct, before)
}

package account

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// randomSpec builds a random DAG with random sensitivity labels, random
// incidence markings and random surrogates over the two-level lattice.
// Everything is driven by the seed, so failures reproduce.
func randomSpec(r *rand.Rand) *Spec {
	n := 4 + r.Intn(8)
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(fmt.Sprintf("n%02d", i))
		g.AddNodeID(ids[i])
	}
	// Forward edges only: acyclic by construction.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.35 {
				g.MustAddEdge(ids[i], ids[j])
			}
		}
	}
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	reg := surrogate.NewRegistry(lb)

	for _, id := range ids {
		if r.Float64() < 0.4 { // sensitive node
			if err := lb.SetNode(id, "Protected"); err != nil {
				panic(err)
			}
			// Its provider marks incidences: mostly Surrogate, sometimes
			// Hide, occasionally left Visible (the effective-mark downgrade
			// path).
			switch r.Intn(4) {
			case 0:
				if err := pol.SetNodeThreshold(id, "Protected", policy.Hide); err != nil {
					panic(err)
				}
			case 1, 2:
				if err := pol.SetNodeThreshold(id, "Protected", policy.Surrogate); err != nil {
					panic(err)
				}
			}
			if r.Float64() < 0.5 { // sometimes a surrogate exists
				if err := reg.Add(id, surrogate.Surrogate{
					ID:        id + "'",
					Lowest:    privilege.Public,
					InfoScore: float64(r.Intn(10)) / 10,
				}); err != nil {
					panic(err)
				}
			}
		}
	}
	// Random extra edge protections.
	for _, e := range g.Edges() {
		if r.Float64() < 0.2 {
			if err := pol.ProtectEdge(e.ID(), "Protected", r.Intn(2) == 0); err != nil {
				panic(err)
			}
		}
	}
	return &Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: reg}
}

// Property: generated accounts are always sound (Definition 5 + the
// protection guarantee) and maximally informative (Definition 9).
func TestGenerateSoundAndMaximalProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		a, err := Generate(spec, privilege.Public)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		if err := VerifySound(spec, a); err != nil {
			t.Logf("seed %d: unsound: %v", seed, err)
			return false
		}
		if err := VerifyMaximal(spec, a); err != nil {
			t.Logf("seed %d: not maximal: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the hide baseline is always sound, and the surrogate account
// weakly dominates it — every hide node is present and every connected
// pair of the hide account stays connected in the surrogate account.
func TestSurrogateDominatesHideProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		h, err := GenerateHide(spec, privilege.Public)
		if err != nil {
			return false
		}
		if err := VerifySound(spec, h); err != nil {
			t.Logf("seed %d: hide unsound: %v", seed, err)
			return false
		}
		s, err := Generate(spec, privilege.Public)
		if err != nil {
			return false
		}
		for orig := range h.FromOriginal {
			if !s.Present(orig) {
				t.Logf("seed %d: node %s in hide but not surrogate account", seed, orig)
				return false
			}
		}
		for _, e := range h.Graph.Edges() {
			su, okU := s.Corresponding(h.ToOriginal[e.From])
			sv, okV := s.Corresponding(h.ToOriginal[e.To])
			if !okU || !okV || !s.Graph.HasPath(su, sv) {
				t.Logf("seed %d: hide edge %s unreflected in surrogate account", seed, e.ID())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: full-privilege consumers always get G back exactly.
func TestFullPrivilegeIdentityProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		a, err := Generate(spec, "Protected")
		if err != nil {
			return false
		}
		return a.Graph.Equal(spec.Graph)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: accounts are deterministic — generating twice yields equal
// graphs.
func TestGenerateDeterministicProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		a1, err1 := Generate(spec, privilege.Public)
		a2, err2 := Generate(spec, privilege.Public)
		if err1 != nil || err2 != nil {
			return false
		}
		return a1.Graph.Equal(a2.Graph)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Package account implements protected accounts (Definition 5) and the
// Surrogate Generation Algorithm (paper Appendix B, Algorithms 1–3): given
// an original graph G, a privilege labeling, incidence markings and a
// surrogate registry, it produces the maximally informative protected
// account G' for a target high-water set (Definition 6) — most commonly a
// singleton {p}, the case the paper's presentation uses.
//
// Two generators are provided: Generate/GenerateForSet, the paper's
// contribution, and GenerateHide/GenerateHideForSet, the naïve
// all-or-nothing baseline of Figure 1c that the evaluation compares
// against.
package account

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// Spec bundles everything needed to protect a graph: the original graph,
// the lowest() labeling of its objects, the incidence-marking policy, and
// the provider-supplied surrogates.
type Spec struct {
	Graph      *graph.Graph
	Labeling   *privilege.Labeling
	Policy     *policy.Policy
	Surrogates *surrogate.Registry
}

// Validate reports structural problems in the spec.
func (s *Spec) Validate() error {
	if s.Graph == nil {
		return fmt.Errorf("account: spec has nil graph")
	}
	if s.Labeling == nil {
		return fmt.Errorf("account: spec has nil labeling")
	}
	if s.Policy == nil {
		return fmt.Errorf("account: spec has nil policy")
	}
	if s.Surrogates == nil {
		return fmt.Errorf("account: spec has nil surrogate registry")
	}
	if s.Labeling.Lattice() != s.Policy.Lattice() {
		return fmt.Errorf("account: labeling and policy use different lattices")
	}
	return nil
}

// Account is a protected account G' of an original graph G, together with
// the node correspondence of Definition 4/5 and the bookkeeping the
// measures need.
type Account struct {
	// Graph is G'.
	Graph *graph.Graph
	// HighWater is the target high-water set the account was built for:
	// every object in the account is visible via some member.
	HighWater []privilege.Predicate
	// Target is the single member for accounts generated with a singleton
	// high-water set (the common case); empty otherwise.
	Target privilege.Predicate
	// ToOriginal maps each G' node to the unique G node it corresponds to.
	ToOriginal map[graph.NodeID]graph.NodeID
	// FromOriginal is the inverse map; G nodes with no corresponding node
	// are absent.
	FromOriginal map[graph.NodeID]graph.NodeID
	// InfoScore holds infoScore(n') for every node of G' (1 when n' = n).
	InfoScore map[graph.NodeID]float64
	// SurrogateNodes records which G' nodes are surrogates (not originals).
	SurrogateNodes map[graph.NodeID]surrogate.Surrogate
	// SurrogateEdges records which G' edges are interposed surrogate edges
	// summarising HW-permitted paths rather than copies of G edges.
	SurrogateEdges map[graph.EdgeID]bool

	// completed records that the generation run needed the global
	// completion sweep (a Definition 8 condition 2 veto occurred). Its
	// edge set is order-sensitive, so incremental maintenance refuses to
	// patch such accounts and regenerates instead.
	completed bool
}

// Clone returns an independent copy of the account (graph structure
// copied, node feature maps shared — see graph.CloneShared). Incremental
// maintenance patches a clone so live readers of the original are never
// disturbed.
func (a *Account) Clone() *Account {
	c := &Account{
		Graph:          a.Graph.CloneShared(),
		HighWater:      append([]privilege.Predicate(nil), a.HighWater...),
		Target:         a.Target,
		ToOriginal:     make(map[graph.NodeID]graph.NodeID, len(a.ToOriginal)),
		FromOriginal:   make(map[graph.NodeID]graph.NodeID, len(a.FromOriginal)),
		InfoScore:      make(map[graph.NodeID]float64, len(a.InfoScore)),
		SurrogateNodes: make(map[graph.NodeID]surrogate.Surrogate, len(a.SurrogateNodes)),
		SurrogateEdges: make(map[graph.EdgeID]bool, len(a.SurrogateEdges)),
		completed:      a.completed,
	}
	for k, v := range a.ToOriginal {
		c.ToOriginal[k] = v
	}
	for k, v := range a.FromOriginal {
		c.FromOriginal[k] = v
	}
	for k, v := range a.InfoScore {
		c.InfoScore[k] = v
	}
	for k, v := range a.SurrogateNodes {
		c.SurrogateNodes[k] = v
	}
	for k, v := range a.SurrogateEdges {
		c.SurrogateEdges[k] = v
	}
	return c
}

// Present reports whether original node n has a corresponding node in the
// account.
func (a *Account) Present(n graph.NodeID) bool {
	_, ok := a.FromOriginal[n]
	return ok
}

// Corresponding returns the G' node corresponding to original n.
func (a *Account) Corresponding(n graph.NodeID) (graph.NodeID, bool) {
	id, ok := a.FromOriginal[n]
	return id, ok
}

// SurrogateEdgeLabel is attached to interposed surrogate edges in G'.
const SurrogateEdgeLabel = "surrogate"

// hwView evaluates visibility and combined incidence markings under a
// high-water set. For a singleton set this degenerates to the plain
// per-predicate policy. For larger sets the combination follows
// Definition 8: an incidence counts as Visible when some member's mark is
// Visible ("marked Visible for some p dominated by a member of HW"),
// counts as Hide when any member's mark is Hide (protecting beats
// informing), and otherwise as Surrogate.
type hwView struct {
	spec *Spec
	hw   []privilege.Predicate
}

// nodeVisible reports whether some member of the high-water set dominates
// lowest(n) (Definition 9, maximal node visibility).
func (v hwView) nodeVisible(n graph.NodeID) bool {
	for _, p := range v.hw {
		if v.spec.Labeling.NodeVisible(n, p) {
			return true
		}
	}
	return false
}

// mark is the combined marking of one incidence across the set.
func (v hwView) mark(n graph.NodeID, e graph.EdgeID) policy.Marking {
	if len(v.hw) == 1 {
		return v.spec.Policy.Mark(n, e, v.hw[0])
	}
	anyVisible, anySurrogate := false, false
	for _, p := range v.hw {
		switch v.spec.Policy.Mark(n, e, p) {
		case policy.Hide:
			return policy.Hide
		case policy.Visible:
			anyVisible = true
		case policy.Surrogate:
			anySurrogate = true
		}
	}
	switch {
	case anyVisible:
		return policy.Visible
	case anySurrogate:
		return policy.Surrogate
	default:
		return policy.Visible
	}
}

func normalizeHW(spec *Spec, hw []privilege.Predicate) ([]privilege.Predicate, error) {
	if len(hw) == 0 {
		return nil, fmt.Errorf("account: empty high-water set")
	}
	lat := spec.Labeling.Lattice()
	for _, p := range hw {
		if !lat.Known(p) && p != privilege.Public {
			return nil, fmt.Errorf("account: unknown predicate %q in high-water set", p)
		}
	}
	// Definition 6 requires an antichain; reduce dominated members away so
	// callers may pass any set.
	return lat.Maximal(hw), nil
}

// GenerateHide produces the naïve all-or-nothing protected account
// (Figure 1c) for a singleton high-water set {p}: only nodes visible via p
// are kept (as themselves), and an edge is kept only when both endpoints
// are kept and both of its incidence markings are Visible. No surrogates
// of any kind are used.
func GenerateHide(spec *Spec, p privilege.Predicate) (*Account, error) {
	return GenerateHideForSet(spec, []privilege.Predicate{p})
}

// GenerateHideForSet is GenerateHide for a general high-water set.
func GenerateHideForSet(spec *Spec, hw []privilege.Predicate) (*Account, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hw, err := normalizeHW(spec, hw)
	if err != nil {
		return nil, err
	}
	a := newAccount(hw)
	v := hwView{spec: spec, hw: hw}
	for _, id := range spec.Graph.Nodes() {
		if v.nodeVisible(id) {
			n, _ := spec.Graph.NodeByID(id)
			a.Graph.AddNode(n)
			a.ToOriginal[id] = id
			a.FromOriginal[id] = id
			a.InfoScore[id] = 1
		}
	}
	for _, e := range spec.Graph.Edges() {
		if !a.Present(e.From) || !a.Present(e.To) {
			continue
		}
		if v.mark(e.From, e.ID()) != policy.Visible || v.mark(e.To, e.ID()) != policy.Visible {
			continue
		}
		if err := a.Graph.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Generate runs the Surrogate Generation Algorithm for the singleton
// high-water set {p} and returns a maximally informative protected account
// (Definition 9):
//
//   - maximal node visibility: originals visible via p appear as
//     themselves;
//   - dominant surrogacy: other nodes appear as their most dominant
//     applicable surrogate (surrogate.Registry.Select), or are omitted;
//   - maximal connectivity: every HW-permitted path between nodes present
//     in G' is reflected by a path in G', interposing surrogate edges
//     computed by contracting chains of Surrogate-marked incidences
//     (Algorithms 2 and 3).
func Generate(spec *Spec, p privilege.Predicate) (*Account, error) {
	return GenerateForSet(spec, []privilege.Predicate{p})
}

// GenerateForSet runs the Surrogate Generation Algorithm for a general
// high-water set (Appendix B: "when there are multiple
// privilege-predicates, the same process is used for each predicate until
// an appropriate surrogate is found"). The set is reduced to its maximal
// antichain first; an object is visible when some member dominates its
// lowest predicate, and incidence markings combine per Definition 8 (see
// hwView).
func GenerateForSet(spec *Spec, hw []privilege.Predicate) (*Account, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hw, err := normalizeHW(spec, hw)
	if err != nil {
		return nil, err
	}
	a := newAccount(hw)
	v := hwView{spec: spec, hw: hw}

	// Algorithm 1 lines 4–10: node selection.
	for _, id := range spec.Graph.Nodes() {
		if v.nodeVisible(id) {
			n, _ := spec.Graph.NodeByID(id)
			a.Graph.AddNode(n)
			a.ToOriginal[id] = id
			a.FromOriginal[id] = id
			a.InfoScore[id] = 1
			continue
		}
		s, ok := spec.Surrogates.SelectForSet(id, hw)
		if !ok {
			continue // omitted: no releasable version exists
		}
		a.Graph.AddNode(graph.Node{ID: s.ID, Features: s.Features})
		a.ToOriginal[s.ID] = id
		a.FromOriginal[id] = s.ID
		a.InfoScore[s.ID] = s.InfoScore
		a.SurrogateNodes[s.ID] = s
	}

	w := &walker{view: v, acct: a}

	// Algorithm 3: classify edges by effective disposition.
	var contract []graph.Edge
	for _, e := range spec.Graph.Edges() {
		switch w.disposition(e.ID()) {
		case policy.ShowEdge:
			// Both incidences effectively Visible, hence both endpoints
			// present: copy the edge onto the corresponding nodes.
			ge := graph.Edge{From: a.FromOriginal[e.From], To: a.FromOriginal[e.To], Label: e.Label}
			if err := a.Graph.AddEdge(ge); err != nil {
				return nil, err
			}
		case policy.ContractEdge:
			contract = append(contract, e)
		}
	}

	// Algorithm 1 lines 12–29: interpose surrogate edges for contracted
	// incidences, followed — only when a Definition 8 condition 2 veto
	// occurred — by the global completion sweep.
	vetoed, err := w.interpose(contract, nil)
	if err != nil {
		return nil, err
	}
	if !vetoed {
		return a, nil
	}
	a.completed = true
	if err := w.completionSweep(); err != nil {
		return nil, err
	}
	return a, nil
}

// interpose connects the anchor pairs of the given contracted edges with
// surrogate edges. For each contracted edge, anchor sets are the nearest
// Visible-incidence nodes upstream and downstream (Algorithm 2's
// stop-at-first-visible walk, which realises the "no shorter HW-permitted
// path" minimality rule). It reports whether any pair was vetoed by
// Definition 8 condition 2 (a restricted direct edge between the anchors),
// in which case only the completion sweep restores maximal connectivity.
// onAdd, when non-nil, observes every edge added (incremental maintenance
// uses it to patch view indexes).
func (w *walker) interpose(contract []graph.Edge, onAdd func(graph.Edge)) (vetoed bool, err error) {
	spec, a := w.spec(), w.acct
	type pair struct{ from, to graph.NodeID }
	added := map[pair]bool{}
	for _, e := range contract {
		var back []graph.NodeID
		if w.effectiveMark(e.From, e.ID()) == policy.Visible {
			back = []graph.NodeID{e.From}
		} else {
			back = w.anchors(e.From, graph.Backward)
		}
		var fwd []graph.NodeID
		if w.effectiveMark(e.To, e.ID()) == policy.Visible {
			fwd = []graph.NodeID{e.To}
		} else {
			fwd = w.anchors(e.To, graph.Forward)
		}
		for _, u := range back {
			for _, vv := range fwd {
				if u == vv || added[pair{u, vv}] {
					continue
				}
				added[pair{u, vv}] = true
				if de, ok := spec.Graph.EdgeByID(graph.EdgeID{From: u, To: vv}); ok {
					// Definition 8 condition 2: a pair with a direct edge
					// may only be connected when that edge's incidences
					// are both Visible — and then the edge is already in
					// G', so a surrogate edge is never interposed. A
					// non-Show direct edge vetoes the pair and may leave
					// longer permitted pairs unserved; the completion
					// sweep repairs exactly those.
					if w.disposition(de.ID()) != policy.ShowEdge {
						vetoed = true
					}
					continue
				}
				gu, gv := a.FromOriginal[u], a.FromOriginal[vv]
				if a.Graph.HasEdge(gu, gv) {
					continue
				}
				ge := graph.Edge{From: gu, To: gv, Label: SurrogateEdgeLabel}
				if err := a.Graph.AddEdge(ge); err != nil {
					return vetoed, err
				}
				a.SurrogateEdges[ge.ID()] = true
				if onAdd != nil {
					onAdd(ge)
				}
			}
		}
	}
	return vetoed, nil
}

// completionSweep repairs the pairs a condition 2 veto left unserved: the
// anchor walk connects nearest Visible anchors, but a restricted direct
// edge between an anchor pair can veto it while a longer pair further out
// remains HW-permitted and unserved. Sweep every present node's
// permitted-reachability set and interpose a surrogate edge for any pair
// maximal connectivity (Definition 9) still misses. Without a veto the
// anchor pass alone is maximal (every anchor pair got its edge, and
// permitted paths compose through anchors), so the sweep is skipped — the
// common fast path.
func (w *walker) completionSweep() error {
	spec, a := w.spec(), w.acct
	origs := make([]graph.NodeID, 0, len(a.FromOriginal))
	for orig := range a.FromOriginal {
		origs = append(origs, orig)
	}
	sort.Slice(origs, func(i, j int) bool { return origs[i] < origs[j] })
	for _, u := range origs {
		permitted := w.permittedFrom(u)
		gu := a.FromOriginal[u]
		var missing []graph.NodeID
		reach := a.Graph.Reachable(gu, graph.Forward)
		for vv := range permitted {
			if vv == u || reach[a.FromOriginal[vv]] {
				continue
			}
			if de, ok := spec.Graph.EdgeByID(graph.EdgeID{From: u, To: vv}); ok && w.disposition(de.ID()) != policy.ShowEdge {
				continue // condition 2 veto
			}
			missing = append(missing, vv)
		}
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		for _, vv := range missing {
			gv := a.FromOriginal[vv]
			if a.Graph.HasPath(gu, gv) {
				continue // an earlier addition already connected the pair
			}
			ge := graph.Edge{From: gu, To: gv, Label: SurrogateEdgeLabel}
			if err := a.Graph.AddEdge(ge); err != nil {
				return err
			}
			a.SurrogateEdges[ge.ID()] = true
		}
	}
	return nil
}

func newAccount(hw []privilege.Predicate) *Account {
	a := &Account{
		Graph:          graph.New(),
		HighWater:      hw,
		ToOriginal:     map[graph.NodeID]graph.NodeID{},
		FromOriginal:   map[graph.NodeID]graph.NodeID{},
		InfoScore:      map[graph.NodeID]float64{},
		SurrogateNodes: map[graph.NodeID]surrogate.Surrogate{},
		SurrogateEdges: map[graph.EdgeID]bool{},
	}
	if len(hw) == 1 {
		a.Target = hw[0]
	}
	return a
}

// walker evaluates effective markings and runs the Algorithm 2 anchor
// searches over one (view, account) pair.
type walker struct {
	view hwView
	acct *Account

	backMemo map[graph.NodeID][]graph.NodeID
	fwdMemo  map[graph.NodeID][]graph.NodeID
}

func (w *walker) spec() *Spec { return w.view.spec }

// effectiveMark is the combined view marking with one safety adjustment: a
// Visible incidence of a node with no corresponding node in G' is
// downgraded to Surrogate. A node whose existence is not releasable cannot
// have edges shown, but the paths through it may still be summarised —
// this keeps inconsistent provider policies from silently destroying
// connectivity (see DESIGN.md).
func (w *walker) effectiveMark(n graph.NodeID, e graph.EdgeID) policy.Marking {
	m := w.view.mark(n, e)
	if m == policy.Visible && !w.acct.Present(n) {
		return policy.Surrogate
	}
	return m
}

// disposition combines effective marks (Algorithm 3).
func (w *walker) disposition(e graph.EdgeID) policy.Disposition {
	src := w.effectiveMark(e.From, e)
	dst := w.effectiveMark(e.To, e)
	switch {
	case src == policy.Hide || dst == policy.Hide:
		return policy.DropEdge
	case src == policy.Visible && dst == policy.Visible:
		return policy.ShowEdge
	default:
		return policy.ContractEdge
	}
}

// permittedFrom returns the set of nodes w (present in G', w != u) for
// which an HW-permitted path u -> ... -> w exists per Definition 8
// condition 1: no Hide incidence anywhere, the first incidence at u and the
// last incidence at w effectively Visible. Condition 2 (the direct-edge
// restriction) is per pair and applied by callers.
func (w *walker) permittedFrom(u graph.NodeID) map[graph.NodeID]bool {
	out := map[graph.NodeID]bool{}
	seen := map[graph.NodeID]bool{u: true}
	queue := []graph.NodeID{u}
	first := true
	for len(queue) > 0 {
		var next []graph.NodeID
		for _, cur := range queue {
			for _, succ := range w.spec().Graph.Successors(cur) {
				e := graph.EdgeID{From: cur, To: succ}
				if w.view.mark(e.From, e) == policy.Hide || w.view.mark(e.To, e) == policy.Hide {
					continue
				}
				// Leaving the start requires a Visible first incidence;
				// re-entering u later makes it an interior node, where any
				// non-Hide marking may be crossed.
				if first && w.effectiveMark(u, e) != policy.Visible {
					continue
				}
				if succ != u && w.effectiveMark(succ, e) == policy.Visible {
					out[succ] = true
				}
				if !seen[succ] {
					seen[succ] = true
					next = append(next, succ)
				}
			}
		}
		queue = next
		first = false
	}
	return out
}

// anchors walks from start in the given direction across non-Hide edges,
// collecting the nearest nodes whose incidence on the edge reaching them is
// effectively Visible (Algorithm 2: BuildVisibleSet). The walk stops at
// each anchor; non-anchor nodes are walked through. Results are sorted for
// determinism and memoised per (node, direction).
func (w *walker) anchors(start graph.NodeID, dir graph.Direction) []graph.NodeID {
	memo := &w.backMemo
	if dir == graph.Forward {
		memo = &w.fwdMemo
	}
	if *memo == nil {
		*memo = map[graph.NodeID][]graph.NodeID{}
	}
	if got, ok := (*memo)[start]; ok {
		return got
	}

	seen := map[graph.NodeID]bool{start: true}
	found := map[graph.NodeID]bool{}
	queue := []graph.NodeID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var steps []graph.NodeID
		if dir == graph.Forward {
			steps = w.spec().Graph.Successors(cur)
		} else {
			steps = w.spec().Graph.Predecessors(cur)
		}
		for _, next := range steps {
			var e graph.EdgeID
			if dir == graph.Forward {
				e = graph.EdgeID{From: cur, To: next}
			} else {
				e = graph.EdgeID{From: next, To: cur}
			}
			// The walk may not cross Hide incidences at either end.
			if w.view.mark(e.From, e) == policy.Hide || w.view.mark(e.To, e) == policy.Hide {
				continue
			}
			if w.effectiveMark(next, e) == policy.Visible {
				found[next] = true // anchor: stop here
				continue
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	out := make([]graph.NodeID, 0, len(found))
	for id := range found {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	(*memo)[start] = out
	return out
}

package account

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// cfgSpec builds the c -> f -> g fragment of Figure 1a/2: c and g are
// public, f requires High-1 (invisible to the High-2 consumer the accounts
// are generated for).
func cfgSpec(t *testing.T) *Spec {
	t.Helper()
	g := graph.New()
	for _, id := range []graph.NodeID{"c", "f", "g"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("c", "f")
	g.MustAddEdge("f", "g")
	lat := privilege.FigureOneLattice()
	lb := privilege.NewLabeling(lat)
	if err := lb.SetNode("f", "High-1"); err != nil {
		t.Fatal(err)
	}
	return &Spec{
		Graph:      g,
		Labeling:   lb,
		Policy:     policy.New(lat),
		Surrogates: surrogate.NewRegistry(lb),
	}
}

func addFSurrogate(t *testing.T, spec *Spec) {
	t.Helper()
	err := spec.Surrogates.Add("f", surrogate.Surrogate{
		ID:        "f'",
		Features:  graph.Features{"desc": "a trusted law enforcement source"},
		Lowest:    "Low-2",
		InfoScore: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func mustGenerate(t *testing.T, spec *Spec, p privilege.Predicate) *Account {
	t.Helper()
	a, err := Generate(spec, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySound(spec, a); err != nil {
		t.Fatalf("unsound account: %v", err)
	}
	return a
}

func mustHide(t *testing.T, spec *Spec, p privilege.Predicate) *Account {
	t.Helper()
	a, err := GenerateHide(spec, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySound(spec, a); err != nil {
		t.Fatalf("unsound hide account: %v", err)
	}
	return a
}

// Figure 2a: surrogate node f' with visible edges -> c->f'->g.
func TestFigure2aSurrogateNodeVisibleEdges(t *testing.T) {
	spec := cfgSpec(t)
	addFSurrogate(t, spec)
	a := mustGenerate(t, spec, "High-2")

	if !a.Graph.HasNode("f'") {
		t.Fatal("surrogate node f' missing")
	}
	if a.Graph.HasNode("f") {
		t.Fatal("original sensitive node f leaked")
	}
	if !a.Graph.HasEdge("c", "f'") || !a.Graph.HasEdge("f'", "g") {
		t.Errorf("edges missing: %v", a.Graph.Edges())
	}
	if a.Graph.HasEdge("c", "g") {
		t.Error("unexpected surrogate edge c->g on an all-visible path")
	}
	if a.InfoScore["f'"] != 0.5 {
		t.Errorf("infoScore(f') = %v", a.InfoScore["f'"])
	}
	if len(a.SurrogateEdges) != 0 {
		t.Errorf("surrogate edges = %v, want none", a.SurrogateEdges)
	}
	if err := VerifyMaximal(spec, a); err != nil {
		t.Errorf("not maximal: %v", err)
	}
}

// Figure 2b: no surrogate node; f's incidences marked Surrogate -> node f
// hidden, surrogate edge c->g interposed.
func TestFigure2bHiddenNodeSurrogateEdge(t *testing.T) {
	spec := cfgSpec(t)
	if err := spec.Policy.SetNode("f", "High-2", policy.Surrogate); err != nil {
		t.Fatal(err)
	}
	a := mustGenerate(t, spec, "High-2")

	if a.Graph.NumNodes() != 2 {
		t.Fatalf("nodes = %v, want c and g", a.Graph.Nodes())
	}
	if !a.Graph.HasEdge("c", "g") {
		t.Fatal("surrogate edge c->g missing")
	}
	if !a.SurrogateEdges[graph.EdgeID{From: "c", To: "g"}] {
		t.Error("c->g not recorded as a surrogate edge")
	}
	e, _ := a.Graph.EdgeByID(graph.EdgeID{From: "c", To: "g"})
	if e.Label != SurrogateEdgeLabel {
		t.Errorf("surrogate edge label = %q", e.Label)
	}
	if err := VerifyMaximal(spec, a); err != nil {
		t.Errorf("not maximal: %v", err)
	}
}

// Figure 2c: surrogate node f' but hidden edges -> f' isolated.
func TestFigure2cSurrogateNodeHiddenEdges(t *testing.T) {
	spec := cfgSpec(t)
	addFSurrogate(t, spec)
	if err := spec.Policy.SetNode("f", "High-2", policy.Hide); err != nil {
		t.Fatal(err)
	}
	a := mustGenerate(t, spec, "High-2")

	if !a.Graph.HasNode("f'") {
		t.Fatal("surrogate node f' missing")
	}
	if a.Graph.NumEdges() != 0 {
		t.Errorf("edges = %v, want none", a.Graph.Edges())
	}
	if err := VerifyMaximal(spec, a); err != nil {
		t.Errorf("not maximal: %v", err)
	}
}

// Figure 2d: surrogate node f' and Surrogate-marked edges -> f' isolated
// plus surrogate edge c->g.
func TestFigure2dSurrogateNodeAndEdge(t *testing.T) {
	spec := cfgSpec(t)
	addFSurrogate(t, spec)
	if err := spec.Policy.SetNode("f", "High-2", policy.Surrogate); err != nil {
		t.Fatal(err)
	}
	a := mustGenerate(t, spec, "High-2")

	if !a.Graph.HasNode("f'") {
		t.Fatal("surrogate node f' missing")
	}
	if !a.Graph.HasEdge("c", "g") {
		t.Fatal("surrogate edge c->g missing")
	}
	if a.Graph.HasEdge("c", "f'") || a.Graph.HasEdge("f'", "g") {
		t.Error("Surrogate-marked incidences leaked as shown edges")
	}
	if a.Graph.Degree("f'") != 0 {
		t.Error("f' should be isolated")
	}
	if err := VerifyMaximal(spec, a); err != nil {
		t.Errorf("not maximal: %v", err)
	}
}

// Figure 1c: the naive hide baseline keeps only visible nodes and fully
// visible edges.
func TestGenerateHideBaseline(t *testing.T) {
	spec := cfgSpec(t)
	addFSurrogate(t, spec) // must be ignored by the baseline
	a := mustHide(t, spec, "High-2")
	if a.Graph.NumNodes() != 2 || a.Graph.NumEdges() != 0 {
		t.Errorf("hide account = %v nodes %v edges", a.Graph.Nodes(), a.Graph.Edges())
	}
	if a.Graph.HasNode("f'") {
		t.Error("hide baseline used a surrogate")
	}
	for id, sc := range a.InfoScore {
		if sc != 1 {
			t.Errorf("hide infoScore[%s] = %v, want 1", id, sc)
		}
	}
}

// A consumer whose predicate dominates everything sees G unchanged.
func TestFullPrivilegeIdentity(t *testing.T) {
	spec := cfgSpec(t)
	addFSurrogate(t, spec)
	a := mustGenerate(t, spec, "High-1")
	// High-1 dominates lowest(f)=High-1 and Public: everything visible.
	if !a.Graph.Equal(spec.Graph) {
		t.Errorf("full-privilege account differs from G:\n%v\nvs\n%v", a.Graph.Edges(), spec.Graph.Edges())
	}
}

// Multi-hop contraction: a->x->y->b with x,y hidden and Surrogate-marked
// collapses to a single surrogate edge a->b.
func TestMultiHopContraction(t *testing.T) {
	g := graph.New()
	for _, id := range []graph.NodeID{"a", "x", "y", "b"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "x")
	g.MustAddEdge("x", "y")
	g.MustAddEdge("y", "b")
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	for _, id := range []graph.NodeID{"x", "y"} {
		if err := lb.SetNode(id, "Protected"); err != nil {
			t.Fatal(err)
		}
		if err := pol.SetNodeThreshold(id, "Protected", policy.Surrogate); err != nil {
			t.Fatal(err)
		}
	}
	spec := &Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: surrogate.NewRegistry(lb)}
	a := mustGenerate(t, spec, privilege.Public)

	if a.Graph.NumNodes() != 2 {
		t.Fatalf("nodes = %v", a.Graph.Nodes())
	}
	if !a.Graph.HasEdge("a", "b") || a.Graph.NumEdges() != 1 {
		t.Errorf("edges = %v, want exactly a->b", a.Graph.Edges())
	}
	if err := VerifyMaximal(spec, a); err != nil {
		t.Errorf("not maximal: %v", err)
	}
}

// Hide anywhere on the chain blocks contraction entirely.
func TestHideBlocksContraction(t *testing.T) {
	g := graph.New()
	for _, id := range []graph.NodeID{"a", "x", "b"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "x")
	g.MustAddEdge("x", "b")
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	if err := lb.SetNode("x", "Protected"); err != nil {
		t.Fatal(err)
	}
	// Incidence on a->x allows contraction, but x->b is Hidden.
	if err := pol.SetIncidence("x", graph.EdgeID{From: "a", To: "x"}, privilege.Public, policy.Surrogate); err != nil {
		t.Fatal(err)
	}
	if err := pol.SetIncidence("x", graph.EdgeID{From: "x", To: "b"}, privilege.Public, policy.Hide); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: surrogate.NewRegistry(lb)}
	a := mustGenerate(t, spec, privilege.Public)
	if a.Graph.NumEdges() != 0 {
		t.Errorf("edges = %v, want none (Hide blocks)", a.Graph.Edges())
	}
}

// Definition 8 condition 2: when a direct edge exists between a pair with
// a restricted incidence, no surrogate edge may reconnect that pair even
// if a longer permitted path exists.
func TestNoSurrogateEdgeOverRestrictedDirectEdge(t *testing.T) {
	g := graph.New()
	for _, id := range []graph.NodeID{"u", "x", "v"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("u", "v") // direct, will be restricted
	g.MustAddEdge("u", "x")
	g.MustAddEdge("x", "v")
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	// Restrict the direct edge at its destination incidence.
	if err := pol.SetIncidence("v", graph.EdgeID{From: "u", To: "v"}, privilege.Public, policy.Surrogate); err != nil {
		t.Fatal(err)
	}
	// Hide x's role: x is protected, incidences Surrogate.
	if err := lb.SetNode("x", "Protected"); err != nil {
		t.Fatal(err)
	}
	if err := pol.SetNodeThreshold("x", "Protected", policy.Surrogate); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: surrogate.NewRegistry(lb)}
	a := mustGenerate(t, spec, privilege.Public)

	if a.Graph.HasEdge("u", "v") {
		t.Error("restricted pair u,v reconnected")
	}
	if PermittedPath(spec, a, "u", "v") {
		t.Error("PermittedPath should be false for restricted direct pair")
	}
	if err := VerifyMaximal(spec, a); err != nil {
		t.Errorf("not maximal: %v", err)
	}
}

// Branching contraction: hidden hub with two visible predecessors and two
// visible successors yields all four surrogate edges.
func TestBranchingContraction(t *testing.T) {
	g := graph.New()
	for _, id := range []graph.NodeID{"p1", "p2", "h", "s1", "s2"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("p1", "h")
	g.MustAddEdge("p2", "h")
	g.MustAddEdge("h", "s1")
	g.MustAddEdge("h", "s2")
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	if err := lb.SetNode("h", "Protected"); err != nil {
		t.Fatal(err)
	}
	if err := pol.SetNodeThreshold("h", "Protected", policy.Surrogate); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: surrogate.NewRegistry(lb)}
	a := mustGenerate(t, spec, privilege.Public)

	for _, want := range [][2]graph.NodeID{{"p1", "s1"}, {"p1", "s2"}, {"p2", "s1"}, {"p2", "s2"}} {
		if !a.Graph.HasEdge(want[0], want[1]) {
			t.Errorf("missing surrogate edge %s->%s", want[0], want[1])
		}
	}
	if a.Graph.NumEdges() != 4 {
		t.Errorf("edges = %v, want exactly 4", a.Graph.Edges())
	}
	if err := VerifyMaximal(spec, a); err != nil {
		t.Errorf("not maximal: %v", err)
	}
}

// Edge protection via ProtectEdge([V,S]) contracts to the destination's
// successors — the §6 evaluation transformation.
func TestProtectEdgeContraction(t *testing.T) {
	g := graph.New()
	for _, id := range []graph.NodeID{"a", "b", "c", "d"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	g.MustAddEdge("c", "d")
	lat := privilege.TwoLevel()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	if err := pol.ProtectEdge(graph.EdgeID{From: "a", To: "b"}, "Protected", true); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: surrogate.NewRegistry(lb)}
	a := mustGenerate(t, spec, privilege.Public)

	if a.Graph.HasEdge("a", "b") {
		t.Error("protected edge a->b leaked")
	}
	if !a.Graph.HasEdge("a", "c") {
		t.Error("surrogate edge a->c missing")
	}
	if !a.Graph.HasEdge("b", "c") || !a.Graph.HasEdge("c", "d") {
		t.Error("unprotected edges should remain")
	}
	if a.Graph.NumNodes() != 4 {
		t.Error("edge protection should not remove nodes")
	}
	// Protected consumer sees everything.
	full := mustGenerate(t, spec, "Protected")
	if !full.Graph.Equal(g) {
		t.Error("Protected consumer's account should equal G")
	}
}

// Null-default registry keeps hidden nodes as featureless placeholders.
func TestNullDefaultSurrogates(t *testing.T) {
	spec := cfgSpec(t)
	spec.Surrogates.EnableNullDefault()
	if err := spec.Policy.SetNode("f", "High-2", policy.Surrogate); err != nil {
		t.Fatal(err)
	}
	a := mustGenerate(t, spec, "High-2")
	nid := surrogate.NullID("f")
	if !a.Graph.HasNode(nid) {
		t.Fatalf("null surrogate missing: %v", a.Graph.Nodes())
	}
	if a.InfoScore[nid] != 0 {
		t.Error("null surrogate should score 0")
	}
	if !a.Graph.HasEdge("c", "g") {
		t.Error("surrogate edge c->g missing alongside null surrogate")
	}
}

func TestSpecValidate(t *testing.T) {
	spec := cfgSpec(t)
	if err := spec.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := *spec
	bad.Graph = nil
	if _, err := Generate(&bad, privilege.Public); err == nil {
		t.Error("nil graph accepted")
	}
	bad = *spec
	bad.Labeling = nil
	if _, err := GenerateHide(&bad, privilege.Public); err == nil {
		t.Error("nil labeling accepted")
	}
	bad = *spec
	bad.Policy = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil policy accepted")
	}
	bad = *spec
	bad.Surrogates = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil registry accepted")
	}
	// Mismatched lattices.
	other := privilege.NewLabeling(privilege.TwoLevel())
	bad = *spec
	bad.Labeling = other
	if err := bad.Validate(); err == nil {
		t.Error("lattice mismatch accepted")
	}
}

func TestVerifySoundCatchesViolations(t *testing.T) {
	spec := cfgSpec(t)
	addFSurrogate(t, spec)
	a := mustGenerate(t, spec, "High-2")

	// Tamper: add an edge with no witnessing path in G.
	tampered := *a
	tampered.Graph = a.Graph.Clone()
	tampered.Graph.MustAddEdge("g", "c")
	if err := VerifySound(spec, &tampered); err == nil {
		t.Error("reversed edge passed soundness")
	}

	// Tamper: expose the sensitive original.
	tampered2 := *a
	tampered2.Graph = a.Graph.Clone()
	tampered2.Graph.AddNodeID("f")
	t2to := map[graph.NodeID]graph.NodeID{}
	for k, v := range a.ToOriginal {
		t2to[k] = v
	}
	t2from := map[graph.NodeID]graph.NodeID{}
	for k, v := range a.FromOriginal {
		t2from[k] = v
	}
	delete(t2to, "f'")
	delete(t2from, "f")
	tampered2.Graph.RemoveNode("f'")
	t2to["f"] = "f"
	t2from["f"] = "f"
	tampered2.ToOriginal = t2to
	tampered2.FromOriginal = t2from
	if err := VerifySound(spec, &tampered2); err == nil {
		t.Error("leaked sensitive node passed soundness")
	}

	// Tamper: two account nodes corresponding to the same original.
	tampered3 := *a
	tampered3.Graph = a.Graph.Clone()
	tampered3.Graph.AddNodeID("dup")
	t3to := map[graph.NodeID]graph.NodeID{"dup": "c"}
	for k, v := range a.ToOriginal {
		t3to[k] = v
	}
	tampered3.ToOriginal = t3to
	if err := VerifySound(spec, &tampered3); err == nil {
		t.Error("duplicate correspondence passed soundness")
	}
}

package account

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// jsonAccount is the wire form of a protected account: enough to rebuild
// the account on the consumer side (graph, correspondence, scores and
// surrogate markers), without any of the original graph's hidden content.
type jsonAccount struct {
	HighWater []string          `json:"highWater"`
	Nodes     []jsonAccountNode `json:"nodes"`
	Edges     []jsonAccountEdge `json:"edges"`
}

type jsonAccountNode struct {
	ID        string            `json:"id"`
	Original  string            `json:"original"`
	Features  map[string]string `json:"features,omitempty"`
	InfoScore float64           `json:"infoScore"`
	Surrogate bool              `json:"surrogate,omitempty"`
	Null      bool              `json:"null,omitempty"`
	Lowest    string            `json:"lowest,omitempty"`
}

type jsonAccountEdge struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Label     string `json:"label,omitempty"`
	Surrogate bool   `json:"surrogate,omitempty"`
}

// MarshalJSON encodes the account deterministically.
func (a *Account) MarshalJSON() ([]byte, error) {
	ja := jsonAccount{}
	for _, p := range a.HighWater {
		ja.HighWater = append(ja.HighWater, string(p))
	}
	for _, id := range a.Graph.Nodes() {
		n, _ := a.Graph.NodeByID(id)
		jn := jsonAccountNode{
			ID:        string(id),
			Original:  string(a.ToOriginal[id]),
			Features:  n.Features,
			InfoScore: a.InfoScore[id],
		}
		if s, ok := a.SurrogateNodes[id]; ok {
			jn.Surrogate = true
			jn.Null = s.IsNull
			jn.Lowest = string(s.Lowest)
		}
		ja.Nodes = append(ja.Nodes, jn)
	}
	for _, e := range a.Graph.Edges() {
		ja.Edges = append(ja.Edges, jsonAccountEdge{
			From:      string(e.From),
			To:        string(e.To),
			Label:     e.Label,
			Surrogate: a.SurrogateEdges[e.ID()],
		})
	}
	return json.Marshal(ja)
}

// UnmarshalJSON rebuilds an account from its wire form. The resulting
// account carries everything the measures and renderers need; it does not
// (and cannot) restore the original graph.
func (a *Account) UnmarshalJSON(data []byte) error {
	var ja jsonAccount
	if err := json.Unmarshal(data, &ja); err != nil {
		return fmt.Errorf("account: decode: %w", err)
	}
	fresh := newAccount(nil)
	for _, p := range ja.HighWater {
		fresh.HighWater = append(fresh.HighWater, privilege.Predicate(p))
	}
	if len(fresh.HighWater) == 1 {
		fresh.Target = fresh.HighWater[0]
	}
	for _, jn := range ja.Nodes {
		if jn.ID == "" || jn.Original == "" {
			return fmt.Errorf("account: decode: node missing id or original")
		}
		id := graph.NodeID(jn.ID)
		orig := graph.NodeID(jn.Original)
		if _, dup := fresh.ToOriginal[id]; dup {
			return fmt.Errorf("account: decode: duplicate node %s", id)
		}
		if _, dup := fresh.FromOriginal[orig]; dup {
			return fmt.Errorf("account: decode: original %s mapped twice", orig)
		}
		fresh.Graph.AddNode(graph.Node{ID: id, Features: jn.Features})
		fresh.ToOriginal[id] = orig
		fresh.FromOriginal[orig] = id
		fresh.InfoScore[id] = jn.InfoScore
		if jn.Surrogate {
			fresh.SurrogateNodes[id] = surrogate.Surrogate{
				ID:        id,
				Features:  graph.Features(jn.Features).Clone(),
				Lowest:    privilege.Predicate(jn.Lowest),
				InfoScore: jn.InfoScore,
				IsNull:    jn.Null,
			}
		}
	}
	for _, je := range ja.Edges {
		e := graph.Edge{From: graph.NodeID(je.From), To: graph.NodeID(je.To), Label: je.Label}
		if err := fresh.Graph.AddEdge(e); err != nil {
			return err
		}
		if je.Surrogate {
			fresh.SurrogateEdges[e.ID()] = true
		}
	}
	*a = *fresh
	return nil
}

// DOT renders the account in Graphviz syntax: surrogate nodes are drawn
// dashed and grey, surrogate edges dashed — the visual convention of the
// paper's Figure 2.
func (a *Account) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, id := range a.Graph.Nodes() {
		n, _ := a.Graph.NodeByID(id)
		label := string(id)
		if l, ok := n.Features["name"]; ok {
			label = l
		}
		if _, ok := a.SurrogateNodes[id]; ok {
			fmt.Fprintf(&b, "  %q [label=%q, style=\"dashed\", color=\"grey40\"];\n", string(id), label)
		} else {
			fmt.Fprintf(&b, "  %q [label=%q];\n", string(id), label)
		}
	}
	for _, e := range a.Graph.Edges() {
		attrs := ""
		if a.SurrogateEdges[e.ID()] {
			attrs = " [style=\"dashed\"]"
		} else if e.Label != "" {
			attrs = fmt.Sprintf(" [label=%q]", e.Label)
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", string(e.From), string(e.To), attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

package account

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
)

func viewOf(spec *Spec, a *Account) hwView {
	hw := a.HighWater
	if len(hw) == 0 && a.Target != "" {
		hw = []privilege.Predicate{a.Target}
	}
	return hwView{spec: spec, hw: hw}
}

// VerifySound checks Definition 5: every node of G' corresponds to a
// unique node of G, and for every path between two nodes of G' there is a
// path in G between the corresponding nodes. Because paths compose, the
// path condition holds iff it holds for every single edge of G'.
//
// It also checks the protection guarantee that motivates the whole
// construction: no original node that is invisible via the account's
// high-water set appears as itself, and no edge with a non-Show
// disposition is exposed directly.
func VerifySound(spec *Spec, a *Account) error {
	v := viewOf(spec, a)

	// Correspondence is a bijection between N' and a subset of N.
	seen := map[graph.NodeID]graph.NodeID{}
	for _, id := range a.Graph.Nodes() {
		orig, ok := a.ToOriginal[id]
		if !ok {
			return fmt.Errorf("account: node %s has no corresponding original", id)
		}
		if !spec.Graph.HasNode(orig) {
			return fmt.Errorf("account: node %s corresponds to unknown original %s", id, orig)
		}
		if prev, dup := seen[orig]; dup {
			return fmt.Errorf("account: original %s has two corresponding nodes (%s, %s)", orig, prev, id)
		}
		seen[orig] = id
		if back, ok := a.FromOriginal[orig]; !ok || back != id {
			return fmt.Errorf("account: FromOriginal[%s]=%s inconsistent with node %s", orig, back, id)
		}
	}

	// Every edge of G' must be witnessed by a directed path in G.
	for _, e := range a.Graph.Edges() {
		fromOrig, toOrig := a.ToOriginal[e.From], a.ToOriginal[e.To]
		if !spec.Graph.HasPath(fromOrig, toOrig) {
			return fmt.Errorf("account: edge %s has no witnessing path %s->%s in G", e.ID(), fromOrig, toOrig)
		}
	}

	// Protection: invisible originals never appear as themselves ...
	for _, id := range a.Graph.Nodes() {
		orig := a.ToOriginal[id]
		if id == orig && !v.nodeVisible(orig) {
			return fmt.Errorf("account: node %s is not visible via %v but appears as itself", orig, v.hw)
		}
	}
	// ... and directly-copied edges never leak a restricted incidence.
	for _, e := range a.Graph.Edges() {
		if a.SurrogateEdges[e.ID()] {
			continue
		}
		orig := graph.EdgeID{From: a.ToOriginal[e.From], To: a.ToOriginal[e.To]}
		if _, exists := spec.Graph.EdgeByID(orig); !exists {
			return fmt.Errorf("account: non-surrogate edge %s does not exist in G", e.ID())
		}
		if v.mark(orig.From, orig) != policy.Visible || v.mark(orig.To, orig) != policy.Visible {
			return fmt.Errorf("account: edge %s shown despite a restricted incidence", orig)
		}
	}
	return nil
}

// PermittedPath reports whether an HW-permitted path (Definition 8) exists
// from n1 to n2 in G for the account's high-water set: a directed path
// with no Hide incidence anywhere, whose first incidence at n1 and last
// incidence at n2 are (effectively) Visible, and — when G contains a
// direct n1->n2 edge — that edge's incidences are both Visible.
func PermittedPath(spec *Spec, a *Account, n1, n2 graph.NodeID) bool {
	if n1 == n2 {
		return false
	}
	w := &walker{view: viewOf(spec, a), acct: a}
	if de, ok := spec.Graph.EdgeByID(graph.EdgeID{From: n1, To: n2}); ok {
		return w.disposition(de.ID()) == policy.ShowEdge
	}
	return w.permittedFrom(n1)[n2]
}

// VerifyMaximal checks the three properties of Definition 9 for the given
// account. It is intended for tests and small graphs: maximal connectivity
// is checked for every ordered pair of present nodes, so cost is
// O(n^2 * (n + e)).
func VerifyMaximal(spec *Spec, a *Account) error {
	v := viewOf(spec, a)
	lat := spec.Labeling.Lattice()

	// 1. Maximal node visibility.
	for _, id := range spec.Graph.Nodes() {
		if v.nodeVisible(id) {
			if got, ok := a.Corresponding(id); !ok || got != id {
				return fmt.Errorf("account: visible node %s missing or replaced (got %q)", id, got)
			}
		}
	}

	// 2. Dominant surrogacy: the chosen surrogate's lowest predicate is
	// not strictly dominated by another applicable surrogate's.
	for gid, chosen := range a.SurrogateNodes {
		orig := a.ToOriginal[gid]
		for _, alt := range spec.Surrogates.Surrogates(orig) {
			if !lat.SomeMemberDominates(v.hw, alt.Lowest) {
				continue // not visible via the high-water set
			}
			if lat.Dominates(alt.Lowest, chosen.Lowest) && !lat.Dominates(chosen.Lowest, alt.Lowest) {
				return fmt.Errorf("account: surrogate %s (lowest %s) chosen for %s but %s (lowest %s) dominates",
					chosen.ID, chosen.Lowest, orig, alt.ID, alt.Lowest)
			}
		}
	}

	// 3. Maximal connectivity.
	origsPresent := make([]graph.NodeID, 0, len(a.FromOriginal))
	for orig := range a.FromOriginal {
		origsPresent = append(origsPresent, orig)
	}
	for _, n1 := range origsPresent {
		for _, n2 := range origsPresent {
			if n1 == n2 || !PermittedPath(spec, a, n1, n2) {
				continue
			}
			if !a.Graph.HasPath(a.FromOriginal[n1], a.FromOriginal[n2]) {
				return fmt.Errorf("account: HW-permitted path %s->%s not reflected in G'", n1, n2)
			}
		}
	}
	return nil
}

package account

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/policy"
)

func TestAccountJSONRoundTrip(t *testing.T) {
	spec := cfgSpec(t)
	addFSurrogate(t, spec)
	if err := spec.Policy.SetNode("f", "High-2", policy.Surrogate); err != nil {
		t.Fatal(err)
	}
	a := mustGenerate(t, spec, "High-2")

	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Account
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Graph.Equal(a.Graph) {
		t.Error("graph changed across round trip")
	}
	if len(back.HighWater) != 1 || back.Target != "High-2" {
		t.Errorf("high water lost: %v / %q", back.HighWater, back.Target)
	}
	for id, orig := range a.ToOriginal {
		if back.ToOriginal[id] != orig {
			t.Errorf("correspondence lost for %s", id)
		}
	}
	for id, sc := range a.InfoScore {
		if back.InfoScore[id] != sc {
			t.Errorf("infoScore lost for %s", id)
		}
	}
	if len(back.SurrogateNodes) != len(a.SurrogateNodes) {
		t.Errorf("surrogate nodes = %d, want %d", len(back.SurrogateNodes), len(a.SurrogateNodes))
	}
	if len(back.SurrogateEdges) != len(a.SurrogateEdges) {
		t.Errorf("surrogate edges = %d, want %d", len(back.SurrogateEdges), len(a.SurrogateEdges))
	}
	s, ok := back.SurrogateNodes["f'"]
	if !ok || s.Lowest != "Low-2" {
		t.Errorf("surrogate metadata lost: %+v", s)
	}
}

func TestAccountJSONRejectsBadInput(t *testing.T) {
	var a Account
	if err := json.Unmarshal([]byte(`garbage`), &a); err == nil {
		t.Error("garbage accepted")
	}
	if err := json.Unmarshal([]byte(`{"nodes":[{"id":"x","original":""}]}`), &a); err == nil {
		t.Error("missing original accepted")
	}
	if err := json.Unmarshal([]byte(`{"nodes":[{"id":"x","original":"o"},{"id":"x","original":"p"}]}`), &a); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := json.Unmarshal([]byte(`{"nodes":[{"id":"x","original":"o"},{"id":"y","original":"o"}]}`), &a); err == nil {
		t.Error("double-mapped original accepted")
	}
	if err := json.Unmarshal([]byte(`{"nodes":[{"id":"x","original":"o"}],"edges":[{"from":"x","to":"zz"}]}`), &a); err == nil {
		t.Error("dangling edge accepted")
	}
}

func TestAccountDOT(t *testing.T) {
	spec := cfgSpec(t)
	addFSurrogate(t, spec)
	if err := spec.Policy.SetNode("f", "High-2", policy.Surrogate); err != nil {
		t.Fatal(err)
	}
	a := mustGenerate(t, spec, "High-2")
	dot := a.DOT("fig2d")
	for _, want := range []string{
		`digraph "fig2d"`,
		`style="dashed", color="grey40"`, // the surrogate node f'
		`"c" -> "g" [style="dashed"]`,    // the surrogate edge
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

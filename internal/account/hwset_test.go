package account

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// hwFixture builds a chain whose nodes sit at incomparable privilege
// levels of the Figure 1 lattice:
//
//	pub -> h1 (High-1) -> low (Low-2) -> h2 (High-2) -> tail
func hwFixture(t *testing.T) *Spec {
	t.Helper()
	g := graph.New()
	for _, id := range []graph.NodeID{"pub", "h1", "low", "h2", "tail"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("pub", "h1")
	g.MustAddEdge("h1", "low")
	g.MustAddEdge("low", "h2")
	g.MustAddEdge("h2", "tail")
	lat := privilege.FigureOneLattice()
	lb := privilege.NewLabeling(lat)
	for id, p := range map[graph.NodeID]privilege.Predicate{
		"h1": "High-1", "low": "Low-2", "h2": "High-2",
	} {
		if err := lb.SetNode(id, p); err != nil {
			t.Fatal(err)
		}
	}
	return &Spec{Graph: g, Labeling: lb, Policy: policy.New(lat), Surrogates: surrogate.NewRegistry(lb)}
}

// A high-water set of both incomparable predicates sees the whole graph.
func TestGenerateForSetUnionVisibility(t *testing.T) {
	spec := hwFixture(t)
	a, err := GenerateForSet(spec, []privilege.Predicate{"High-1", "High-2"})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Equal(spec.Graph) {
		t.Errorf("full HW set should reproduce G, got %v", a.Graph.Edges())
	}
	if a.Target != "" {
		t.Errorf("multi-member account should have empty Target, got %q", a.Target)
	}
	if len(a.HighWater) != 2 {
		t.Errorf("HighWater = %v", a.HighWater)
	}
	if err := VerifySound(spec, a); err != nil {
		t.Error(err)
	}
	if err := VerifyMaximal(spec, a); err != nil {
		t.Error(err)
	}
}

// Each singleton member alone sees only its own branch.
func TestGenerateForSetSingletonsDiffer(t *testing.T) {
	spec := hwFixture(t)
	a1, err := GenerateForSet(spec, []privilege.Predicate{"High-1"})
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Graph.HasNode("h1") || a1.Graph.HasNode("h2") {
		t.Errorf("High-1 view wrong: %v", a1.Graph.Nodes())
	}
	a2, err := GenerateForSet(spec, []privilege.Predicate{"High-2"})
	if err != nil {
		t.Fatal(err)
	}
	if a2.Graph.HasNode("h1") || !a2.Graph.HasNode("h2") {
		t.Errorf("High-2 view wrong: %v", a2.Graph.Nodes())
	}
}

// The set is reduced to its maximal antichain: {High-1, Low-2, Public}
// behaves exactly like {High-1}.
func TestGenerateForSetNormalisesAntichain(t *testing.T) {
	spec := hwFixture(t)
	a, err := GenerateForSet(spec, []privilege.Predicate{"High-1", "Low-2", privilege.Public})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.HighWater) != 1 || a.HighWater[0] != "High-1" {
		t.Errorf("HighWater = %v, want [High-1]", a.HighWater)
	}
	if a.Target != "High-1" {
		t.Errorf("Target = %q, want High-1 after reduction", a.Target)
	}
	b, err := Generate(spec, "High-1")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Equal(b.Graph) {
		t.Error("reduced set differs from singleton generation")
	}
}

// A Hide marking under any member kills the edge even when another member
// sees it Visible (protection beats information, Definition 8).
func TestGenerateForSetHideWinsAcrossMembers(t *testing.T) {
	spec := hwFixture(t)
	e := graph.EdgeID{From: "pub", To: "h1"}
	// Visible for High-1 viewers, Hide for High-2 viewers.
	if err := spec.Policy.SetIncidence("pub", e, "High-2", policy.Hide); err != nil {
		t.Fatal(err)
	}
	a, err := GenerateForSet(spec, []privilege.Predicate{"High-1", "High-2"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.HasEdge("pub", "h1") {
		t.Error("edge shown despite a Hide marking under one member")
	}
	if err := VerifySound(spec, a); err != nil {
		t.Error(err)
	}
}

// Surrogate selection across the set: a node invisible to every member
// uses the best surrogate visible via any member.
func TestGenerateForSetSurrogateSelection(t *testing.T) {
	g := graph.New()
	for _, id := range []graph.NodeID{"a", "x", "b"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "x")
	g.MustAddEdge("x", "b")
	lat := privilege.FigureOneLattice()
	lb := privilege.NewLabeling(lat)
	// x needs more than either member offers: label it High-1 and query
	// with {High-2, Low-2}-ish sets. High-1 is invisible to High-2.
	if err := lb.SetNode("x", "High-1"); err != nil {
		t.Fatal(err)
	}
	reg := surrogate.NewRegistry(lb)
	if err := reg.Add("x", surrogate.Surrogate{ID: "x-pub", Lowest: privilege.Public, InfoScore: 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("x", surrogate.Surrogate{ID: "x-h2", Lowest: "High-2", InfoScore: 0.8}); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Graph: g, Labeling: lb, Policy: policy.New(lat), Surrogates: reg}

	a, err := GenerateForSet(spec, []privilege.Predicate{"High-2"})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.HasNode("x-h2") {
		t.Errorf("High-2 member should unlock the High-2 surrogate: %v", a.Graph.Nodes())
	}
	b, err := GenerateForSet(spec, []privilege.Predicate{privilege.Public})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Graph.HasNode("x-pub") {
		t.Errorf("Public set should fall back to the public surrogate: %v", b.Graph.Nodes())
	}
}

func TestGenerateForSetValidation(t *testing.T) {
	spec := hwFixture(t)
	if _, err := GenerateForSet(spec, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := GenerateForSet(spec, []privilege.Predicate{"Bogus"}); err == nil {
		t.Error("unknown predicate accepted")
	}
	if _, err := GenerateHideForSet(spec, nil); err == nil {
		t.Error("hide: empty set accepted")
	}
}

func TestGenerateHideForSet(t *testing.T) {
	spec := hwFixture(t)
	a, err := GenerateHideForSet(spec, []privilege.Predicate{"High-1", "High-2"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumNodes() != 5 || a.Graph.NumEdges() != 4 {
		t.Errorf("union hide account = %v", a.Graph.Edges())
	}
	if err := VerifySound(spec, a); err != nil {
		t.Error(err)
	}
}

// Property: union monotonicity — everything present in a singleton
// account is present (and connected the same way or better) in the
// two-member account.
func TestGenerateForSetMonotoneProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomHWSpec(r)
		single, err := GenerateForSet(spec, []privilege.Predicate{"High-1"})
		if err != nil {
			return false
		}
		union, err := GenerateForSet(spec, []privilege.Predicate{"High-1", "High-2"})
		if err != nil {
			return false
		}
		if err := VerifySound(spec, union); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for orig := range single.FromOriginal {
			if !union.Present(orig) {
				t.Logf("seed %d: node %s lost in union account", seed, orig)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// randomHWSpec builds random DAGs over the Figure 1 lattice with random
// labels and role protections.
func randomHWSpec(r *rand.Rand) *Spec {
	n := 4 + r.Intn(7)
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(string(rune('a' + i)))
		g.AddNodeID(ids[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.4 {
				g.MustAddEdge(ids[i], ids[j])
			}
		}
	}
	lat := privilege.FigureOneLattice()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	reg := surrogate.NewRegistry(lb)
	levels := []privilege.Predicate{privilege.Public, "Low-2", "High-1", "High-2"}
	for _, id := range ids {
		lv := levels[r.Intn(len(levels))]
		if lv != privilege.Public {
			if err := lb.SetNode(id, lv); err != nil {
				panic(err)
			}
			if r.Intn(2) == 0 {
				below := policy.Surrogate
				if r.Intn(3) == 0 {
					below = policy.Hide
				}
				if err := pol.SetNodeThreshold(id, lv, below); err != nil {
					panic(err)
				}
			}
			if r.Intn(2) == 0 {
				if err := reg.Add(id, surrogate.Surrogate{
					ID:        id + "'",
					Lowest:    privilege.Public,
					InfoScore: float64(r.Intn(10)) / 10,
				}); err != nil {
					panic(err)
				}
			}
		}
	}
	return &Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: reg}
}

// Property: multi-member accounts remain sound and maximally informative.
func TestGenerateForSetSoundMaximalProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomHWSpec(r)
		a, err := GenerateForSet(spec, []privilege.Predicate{"High-1", "High-2"})
		if err != nil {
			return false
		}
		if err := VerifySound(spec, a); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := VerifyMaximal(spec, a); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package account

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/privilege"
)

// TestGenerateMaximalStress runs the soundness + maximality property over
// a much larger sample than the default property test; it is the safety
// net for the veto-driven fast path that skips the completion sweep.
func TestGenerateMaximalStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		a, err := Generate(spec, privilege.Public)
		if err != nil {
			return false
		}
		if err := VerifySound(spec, a); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := VerifyMaximal(spec, a); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

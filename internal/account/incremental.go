// Incremental protected-account maintenance. A generated account is a
// derived structure over its Spec; when the spec advances by a delta
// (records are append-only upstream: objects stored or replaced, edges and
// surrogates added), most of the account is unaffected. Maintain computes
// the dirty region — the touched nodes plus everything whose surrogate
// wiring can transitively change through chains of restricted incidences —
// and regenerates only that region, falling back to full regeneration
// whenever the delta's effects cannot be localised (a replaced object
// changed its protection, a hidden node's surrogate selection moved, or a
// Definition 8 condition 2 veto demands the global completion sweep). The
// patched account is identical to one generated from scratch at the same
// spec; the parity tests assert exactly that, and VerifySound/VerifyMaximal
// hold on it.

package account

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
)

// Delta describes, in account terms, how a Spec advanced: which graph
// nodes are new, which were replaced in place, which edges and surrogate
// registrations were added. Upstream layers translate their storage change
// feed into this form (see plus.ClassifyDelta).
type Delta struct {
	// NewNodes are graph nodes absent before the delta.
	NewNodes []graph.NodeID
	// UpdatedNodes are pre-existing nodes whose record was replaced
	// (features, labeling or protection may have changed).
	UpdatedNodes []graph.NodeID
	// NewEdges are edges added by the delta. Edges are never replaced.
	NewEdges []graph.EdgeID
	// SurrogateFor lists originals that gained a surrogate registration.
	SurrogateFor []graph.NodeID
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool {
	return len(d.NewNodes) == 0 && len(d.UpdatedNodes) == 0 &&
		len(d.NewEdges) == 0 && len(d.SurrogateFor) == 0
}

// nodeProtection is the protection-relevant state of one node: its
// lowest() label and its node-level policy threshold.
type nodeProtection struct {
	lowest   privilege.Predicate
	thrAt    privilege.Predicate
	thrBelow policy.Marking
	hasThr   bool
}

// PreState captures the protection-relevant state of a delta's updated
// nodes before the spec is mutated; Maintain compares it against the
// advanced spec to decide whether the delta is purely additive.
type PreState struct {
	nodes map[graph.NodeID]nodeProtection
}

// Capture records the pre-mutation protection state of the delta's
// updated nodes. Call it on the old spec, before applying the delta.
func Capture(spec *Spec, d Delta) *PreState {
	ps := &PreState{nodes: make(map[graph.NodeID]nodeProtection, len(d.UpdatedNodes))}
	for _, u := range d.UpdatedNodes {
		if _, ok := ps.nodes[u]; ok {
			continue
		}
		np := nodeProtection{lowest: spec.Labeling.LowestNode(u)}
		np.thrAt, np.thrBelow, np.hasThr = spec.Policy.NodeThreshold(u)
		ps.nodes[u] = np
	}
	return ps
}

// MaintainStats reports what one maintenance pass did; the view layer uses
// the added/updated/removed sets to patch its indexes in place.
type MaintainStats struct {
	// Rebuilt reports that the account was regenerated from scratch
	// because the delta could not be localised; Reason says why.
	Rebuilt bool
	Reason  string
	// Dirty is the size of the closed dirty region (original nodes).
	Dirty int
	// AddedNodes / UpdatedNodes / RemovedNodes are account (G') node ids.
	AddedNodes   []graph.NodeID
	UpdatedNodes []graph.NodeID
	RemovedNodes []graph.NodeID
	// AddedEdges / RemovedEdges are account (G') edges.
	AddedEdges   []graph.Edge
	RemovedEdges []graph.EdgeID
}

// Maintain advances an account produced by Generate/GenerateForSet (in
// this process) to the account GenerateForSet(spec, hw) would produce,
// where spec is the ALREADY-ADVANCED spec and pre the Capture taken before
// advancing it. The input account is never mutated: the incremental path
// patches a clone, the fallback path generates fresh. The result is
// structurally identical to a from-scratch generation at the same spec.
//
// The incremental path applies when the delta is effect-additive: no
// pre-existing node changed its visibility, node-level protection or
// surrogate selection. Then no account node or edge ever disappears, old
// anchor walks keep their results, and only contract edges touching the
// dirty region can gain anchor pairs — so patching the dirty region is
// exact. Any other delta falls back to GenerateForSet.
func Maintain(acct *Account, spec *Spec, d Delta, pre *PreState) (*Account, MaintainStats, error) {
	if d.Empty() {
		return acct, MaintainStats{}, nil
	}
	rebuild := func(reason string) (*Account, MaintainStats, error) {
		a2, err := GenerateForSet(spec, acct.HighWater)
		return a2, MaintainStats{Rebuilt: true, Reason: reason}, err
	}
	if acct.completed {
		// Completion-sweep edge sets are order-sensitive; patching one
		// incrementally cannot guarantee parity with a scratch build.
		return rebuild("account was built with the completion sweep")
	}
	v := viewOf(spec, acct)

	newSet := make(map[graph.NodeID]bool, len(d.NewNodes))
	for _, u := range d.NewNodes {
		newSet[u] = true
	}

	// Hazard checks: a pre-existing node whose protection-relevant state
	// changed invalidates walks and mappings arbitrarily far away.
	if pre == nil {
		return rebuild("no pre-state captured")
	}
	for _, u := range d.UpdatedNodes {
		st, ok := pre.nodes[u]
		if !ok {
			return rebuild(fmt.Sprintf("no pre-state for updated node %s", u))
		}
		if spec.Labeling.LowestNode(u) != st.lowest {
			return rebuild(fmt.Sprintf("node %s changed its lowest predicate", u))
		}
		at, below, has := spec.Policy.NodeThreshold(u)
		if has != st.hasThr || at != st.thrAt || below != st.thrBelow {
			return rebuild(fmt.Sprintf("node %s changed its protection threshold", u))
		}
	}
	for _, u := range d.SurrogateFor {
		if newSet[u] {
			continue // handled by node addition below
		}
		mapped, present := acct.FromOriginal[u]
		if present && mapped == u {
			continue // visible as itself; surrogates are irrelevant
		}
		s, ok := spec.Surrogates.SelectForSet(u, v.hw)
		switch {
		case !present && ok:
			return rebuild(fmt.Sprintf("hidden node %s gained a releasable surrogate", u))
		case present && (!ok || s.ID != mapped):
			return rebuild(fmt.Sprintf("node %s changed its surrogate selection", u))
		}
	}

	a := acct.Clone()
	var st MaintainStats

	// Patch nodes. Updated nodes keep their mapping (no hazard); visible
	// ones refresh their released features. New nodes run the Algorithm 1
	// node-selection rule.
	for _, u := range sortedIDs(d.UpdatedNodes) {
		if gid, ok := a.FromOriginal[u]; ok && gid == u {
			n, _ := spec.Graph.NodeByID(u)
			a.Graph.AddNode(n)
			st.UpdatedNodes = append(st.UpdatedNodes, u)
		}
	}
	for _, u := range sortedIDs(d.NewNodes) {
		if v.nodeVisible(u) {
			n, _ := spec.Graph.NodeByID(u)
			a.Graph.AddNode(n)
			a.ToOriginal[u] = u
			a.FromOriginal[u] = u
			a.InfoScore[u] = 1
			st.AddedNodes = append(st.AddedNodes, u)
			continue
		}
		if s, ok := spec.Surrogates.SelectForSet(u, v.hw); ok {
			a.Graph.AddNode(graph.Node{ID: s.ID, Features: s.Features})
			a.ToOriginal[s.ID] = u
			a.FromOriginal[u] = s.ID
			a.InfoScore[s.ID] = s.InfoScore
			a.SurrogateNodes[s.ID] = s
			st.AddedNodes = append(st.AddedNodes, s.ID)
		}
	}

	// Dirty-region closure: seed with everything the delta touched, then
	// trace the anchor-walk chains backward. An effect-additive delta
	// changes a walk only by growing a branch at a seed the walk passes
	// through (or starts at); a walk occupies a node u only when u's own
	// incidence on the edge that reached it is non-Visible, and it
	// traverses only edges free of Hide marks. So from a region node u,
	// cross an edge exactly when u's effective incidence on it is neither
	// Visible nor blocked by a Hide at either end — this follows every
	// chain back to its generating contract edges without spilling across
	// Visible anchors, keeping the region proportional to the restricted
	// neighbourhood of the delta. Walks that merely STOP at a seed (a
	// Visible incidence) are unaffected by anything beyond it and need no
	// recomputation.
	w := &walker{view: v, acct: a}
	dirty := map[graph.NodeID]bool{}
	var queue []graph.NodeID
	mark := func(u graph.NodeID) {
		if !dirty[u] {
			dirty[u] = true
			queue = append(queue, u)
		}
	}
	for _, u := range d.NewNodes {
		mark(u)
	}
	for _, u := range d.UpdatedNodes {
		mark(u)
	}
	for _, u := range d.SurrogateFor {
		mark(u)
	}
	for _, e := range d.NewEdges {
		mark(e.From)
		mark(e.To)
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		incidentEdges(spec.Graph, u, func(e graph.Edge) {
			eid := e.ID()
			if v.mark(e.From, eid) == policy.Hide || v.mark(e.To, eid) == policy.Hide {
				return // walks never traverse a Hide incidence
			}
			if w.effectiveMark(u, eid) == policy.Visible {
				return // walks stop at u here; nothing propagates
			}
			if e.From != u {
				mark(e.From)
			}
			if e.To != u {
				mark(e.To)
			}
		})
	}
	st.Dirty = len(dirty)

	// Patch direct edges incident to the region and collect its contract
	// edges for re-interposition.
	var contract []graph.Edge
	seenEdge := map[graph.EdgeID]bool{}
	for _, u := range sortedKeys(dirty) {
		incidentEdges(spec.Graph, u, func(e graph.Edge) {
			if seenEdge[e.ID()] {
				return
			}
			seenEdge[e.ID()] = true
			switch w.disposition(e.ID()) {
			case policy.ShowEdge:
				gu, gv := a.FromOriginal[e.From], a.FromOriginal[e.To]
				gid := graph.EdgeID{From: gu, To: gv}
				if a.SurrogateEdges[gid] {
					// A pair previously served by an interposed surrogate
					// edge now has a direct Show edge; the scratch build
					// copies the direct edge instead.
					a.Graph.RemoveEdge(gu, gv)
					delete(a.SurrogateEdges, gid)
					st.RemovedEdges = append(st.RemovedEdges, gid)
				}
				if !a.Graph.HasEdge(gu, gv) {
					ge := graph.Edge{From: gu, To: gv, Label: e.Label}
					if err := a.Graph.AddEdge(ge); err != nil {
						panic(err) // endpoints present by construction
					}
					st.AddedEdges = append(st.AddedEdges, ge)
				}
			case policy.ContractEdge:
				contract = append(contract, e)
			}
		})
	}

	vetoed, err := w.interpose(contract, func(ge graph.Edge) {
		st.AddedEdges = append(st.AddedEdges, ge)
	})
	if err != nil {
		return nil, st, err
	}
	if vetoed {
		// A restricted direct edge vetoed an anchor pair; the repair is
		// the global completion sweep, which cannot be localised.
		return rebuild("anchor pair vetoed by a restricted direct edge")
	}
	return a, st, nil
}

// MaintainHide advances an account produced by GenerateHide. The hide
// baseline is purely local — a node is kept iff visible, an edge iff both
// endpoints are kept and both incidence marks are Visible — so maintenance
// is always incremental and exact, including protection changes.
func MaintainHide(acct *Account, spec *Spec, d Delta) (*Account, MaintainStats, error) {
	if d.Empty() {
		return acct, MaintainStats{}, nil
	}
	v := viewOf(spec, acct)
	a := acct.Clone()
	var st MaintainStats

	dirty := map[graph.NodeID]bool{}
	for _, u := range d.NewNodes {
		dirty[u] = true
	}
	for _, u := range d.UpdatedNodes {
		dirty[u] = true
	}
	for _, e := range d.NewEdges {
		dirty[e.From] = true
		dirty[e.To] = true
	}

	// Patch nodes: presence tracks visibility exactly (hide mode never
	// substitutes surrogates).
	for _, u := range sortedKeys(dirty) {
		if !spec.Graph.HasNode(u) {
			continue
		}
		vis := v.nodeVisible(u)
		present := a.Present(u)
		switch {
		case vis && !present:
			n, _ := spec.Graph.NodeByID(u)
			a.Graph.AddNode(n)
			a.ToOriginal[u] = u
			a.FromOriginal[u] = u
			a.InfoScore[u] = 1
			st.AddedNodes = append(st.AddedNodes, u)
		case vis && present:
			n, _ := spec.Graph.NodeByID(u)
			a.Graph.AddNode(n)
			st.UpdatedNodes = append(st.UpdatedNodes, u)
		case !vis && present:
			for _, nb := range a.Graph.Successors(u) {
				st.RemovedEdges = append(st.RemovedEdges, graph.EdgeID{From: u, To: nb})
			}
			for _, nb := range a.Graph.Predecessors(u) {
				st.RemovedEdges = append(st.RemovedEdges, graph.EdgeID{From: nb, To: u})
			}
			a.Graph.RemoveNode(u)
			delete(a.ToOriginal, u)
			delete(a.FromOriginal, u)
			delete(a.InfoScore, u)
			st.RemovedNodes = append(st.RemovedNodes, u)
		}
	}

	// Patch edges incident to the dirty region.
	seenEdge := map[graph.EdgeID]bool{}
	for _, u := range sortedKeys(dirty) {
		incidentEdges(spec.Graph, u, func(e graph.Edge) {
			id := e.ID()
			if seenEdge[id] {
				return
			}
			seenEdge[id] = true
			shown := a.Present(e.From) && a.Present(e.To) &&
				v.mark(e.From, id) == policy.Visible && v.mark(e.To, id) == policy.Visible
			has := a.Graph.HasEdge(e.From, e.To)
			if shown && !has {
				if err := a.Graph.AddEdge(e); err != nil {
					panic(err) // endpoints present by construction
				}
				st.AddedEdges = append(st.AddedEdges, e)
			}
			if !shown && has {
				a.Graph.RemoveEdge(e.From, e.To)
				st.RemovedEdges = append(st.RemovedEdges, id)
			}
		})
	}
	return a, st, nil
}

// incidentEdges calls fn for every edge incident to u in g (outgoing then
// incoming), in sorted neighbour order.
func incidentEdges(g *graph.Graph, u graph.NodeID, fn func(graph.Edge)) {
	for _, to := range g.Successors(u) {
		if e, ok := g.EdgeByID(graph.EdgeID{From: u, To: to}); ok {
			fn(e)
		}
	}
	for _, from := range g.Predecessors(u) {
		if e, ok := g.EdgeByID(graph.EdgeID{From: from, To: u}); ok {
			fn(e)
		}
	}
}

func sortedIDs(ids []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(set map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

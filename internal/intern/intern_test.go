package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	tb := NewTable()
	a := tb.S("data")
	b := tb.S("invocation")
	if a == b {
		t.Fatalf("distinct strings got one symbol %d", a)
	}
	if got := tb.S("data"); got != a {
		t.Fatalf("re-intern of data = %d, want %d", got, a)
	}
	if got := tb.Str(a); got != "data" {
		t.Fatalf("Str(%d) = %q, want data", a, got)
	}
	if got := tb.Str(b); got != "invocation" {
		t.Fatalf("Str(%d) = %q, want invocation", b, got)
	}
	if n := tb.Count(); n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
	if got := tb.Bytes(); got != int64(len("data")+len("invocation")) {
		t.Fatalf("Bytes = %d", got)
	}
}

func TestEmptyStringIsNone(t *testing.T) {
	tb := NewTable()
	if got := tb.S(""); got != None {
		t.Fatalf("S(\"\") = %d, want None", got)
	}
	if got := tb.Str(None); got != "" {
		t.Fatalf("Str(None) = %q, want empty", got)
	}
	sym, ok := tb.Lookup("")
	if !ok || sym != None {
		t.Fatalf("Lookup(\"\") = %d, %v", sym, ok)
	}
	if tb.Count() != 0 {
		t.Fatalf("empty string counted: %d", tb.Count())
	}
}

func TestLookupNeverInserts(t *testing.T) {
	tb := NewTable()
	if _, ok := tb.Lookup("ghost"); ok {
		t.Fatal("Lookup found a string never interned")
	}
	if tb.Count() != 0 {
		t.Fatalf("Lookup grew the table to %d", tb.Count())
	}
	tb.S("ghost")
	if sym, ok := tb.Lookup("ghost"); !ok || sym == None {
		t.Fatalf("Lookup after intern = %d, %v", sym, ok)
	}
}

func TestCanonSharesBacking(t *testing.T) {
	tb := NewTable()
	c1 := tb.Canon("alice")
	c2 := tb.Canon("al" + "ice"[0:3])
	if c1 != "alice" || c2 != "alice" {
		t.Fatalf("canon values wrong: %q %q", c1, c2)
	}
	// The canonical copies must be the same string header data; Go can't
	// observe pointer identity portably, but the symbol identity proves
	// both resolved to one entry.
	s1, _ := tb.Lookup(c1)
	s2, _ := tb.Lookup(c2)
	if s1 != s2 {
		t.Fatalf("canon copies have different symbols %d %d", s1, s2)
	}
}

func TestStrUnknownSymbol(t *testing.T) {
	tb := NewTable()
	if got := tb.Str(Sym(99)); got != "" {
		t.Fatalf("Str(unknown) = %q, want empty", got)
	}
}

func TestPair(t *testing.T) {
	if Pair(1, 2) == Pair(2, 1) {
		t.Fatal("Pair is symmetric; key and value must not commute")
	}
	if Pair(0, 7) == Pair(7, 0) {
		t.Fatal("Pair collides across positions")
	}
}

// TestConcurrentIntern hammers one table from many goroutines over an
// overlapping key space; run under -race in CI.
func TestConcurrentIntern(t *testing.T) {
	tb := NewTable()
	const workers = 8
	const keys = 512
	var wg sync.WaitGroup
	results := make([][]Sym, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			syms := make([]Sym, keys)
			for i := 0; i < keys; i++ {
				syms[i] = tb.S(fmt.Sprintf("k%d", i))
				if _, ok := tb.Lookup(fmt.Sprintf("k%d", i)); !ok {
					t.Errorf("worker %d: lookup miss after intern", w)
					return
				}
			}
			results[w] = syms
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d disagreed on symbol of k%d", w, i)
			}
		}
	}
	if tb.Count() != keys {
		t.Fatalf("Count = %d, want %d", tb.Count(), keys)
	}
	for i := 0; i < keys; i++ {
		if tb.Str(results[0][i]) != fmt.Sprintf("k%d", i) {
			t.Fatalf("reverse lookup of k%d wrong", i)
		}
	}
}

func BenchmarkInternHit(b *testing.B) {
	tb := NewTable()
	tb.S("invocation")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.S("invocation")
	}
}

func BenchmarkLookup(b *testing.B) {
	tb := NewTable()
	tb.S("invocation")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Lookup("invocation")
	}
}

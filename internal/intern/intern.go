// Package intern implements a global two-way string <-> symbol table for
// the storage and query layers: node kinds, names and feature keys/values
// repeat massively across a provenance graph, so they are mapped to small
// integer symbols once at ingest and compared as ints ever after. Interning
// also canonicalises the strings themselves — every copy of "invocation"
// in every snapshot, spec and account clone shares one backing array —
// which is where the resident-memory cut on million-node graphs comes
// from.
//
// The table is insert-only and sharded: lookups of already-interned
// strings take one shard read-lock, and distinct shards never contend.
// Two entry points matter for correctness:
//
//   - builders (backends at ingest, index construction) call S or Canon,
//     which insert on miss, so every stored string has a symbol;
//   - query paths call Lookup, which never inserts, so an unknown query
//     constant stays a cheap miss instead of growing the table.
package intern

import (
	"sync"
	"sync/atomic"
)

// Sym is an interned string's integer identity. Two strings are equal iff
// their symbols are equal (within one Table). The zero symbol None is the
// empty string.
type Sym uint32

// None is the symbol of the empty string (and the zero value of Sym).
const None Sym = 0

const numShards = 64

type entry struct {
	sym Sym
	// str is the canonical backing copy of the interned string; Canon
	// hands it out so callers' duplicates become garbage.
	str string
}

type shard struct {
	mu   sync.RWMutex
	syms map[string]entry
}

// Table is one two-way intern table. The zero value is not usable; use
// NewTable. Methods are safe for concurrent use.
type Table struct {
	shards [numShards]shard

	// mu guards strs, the sym -> string direction. strs[0] is always "".
	mu   sync.RWMutex
	strs []string

	bytes atomic.Int64
}

// NewTable returns an empty table (the empty string is pre-interned as
// None).
func NewTable() *Table {
	t := &Table{strs: []string{""}}
	for i := range t.shards {
		t.shards[i].syms = make(map[string]entry)
	}
	return t
}

// fnv1a is the shard hash; a fixed function (not a per-process seed) so
// the shard of a string is stable and cheap.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (t *Table) shardFor(s string) *shard {
	return &t.shards[fnv1a(s)%numShards]
}

// intern returns the entry for s, inserting it on first sight.
func (t *Table) intern(s string) entry {
	if s == "" {
		return entry{sym: None, str: ""}
	}
	sh := t.shardFor(s)
	sh.mu.RLock()
	e, ok := sh.syms[s]
	sh.mu.RUnlock()
	if ok {
		return e
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok = sh.syms[s]; ok {
		return e
	}
	// Materialise a private backing copy so the canonical string never
	// pins a caller's larger buffer.
	canon := string(append([]byte(nil), s...))
	t.mu.Lock()
	sym := Sym(len(t.strs))
	t.strs = append(t.strs, canon)
	t.mu.Unlock()
	e = entry{sym: sym, str: canon}
	sh.syms[canon] = e
	t.bytes.Add(int64(len(canon)))
	return e
}

// S interns s and returns its symbol, assigning one on first sight.
func (t *Table) S(s string) Sym { return t.intern(s).sym }

// Canon interns s and returns the canonical backing copy: value-equal to
// s, shared by every other holder of the same interned string.
func (t *Table) Canon(s string) string { return t.intern(s).str }

// Lookup returns the symbol of s if it has ever been interned. It never
// inserts — the query-side entry point, so probing for constants that do
// not occur in any stored record cannot grow the table.
func (t *Table) Lookup(s string) (Sym, bool) {
	if s == "" {
		return None, true
	}
	sh := t.shardFor(s)
	sh.mu.RLock()
	e, ok := sh.syms[s]
	sh.mu.RUnlock()
	return e.sym, ok
}

// Str returns the string a symbol stands for ("" for None or an unknown
// symbol).
func (t *Table) Str(sym Sym) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(sym) >= len(t.strs) {
		return ""
	}
	return t.strs[sym]
}

// Count reports how many distinct non-empty strings are interned.
func (t *Table) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.strs) - 1
}

// Bytes reports the total length in bytes of the distinct interned
// strings — the resident cost of the table's string data (map and slice
// overhead excluded).
func (t *Table) Bytes() int64 { return t.bytes.Load() }

// Pair packs two symbols into one comparable key; the (attribute key,
// attribute value) composite the secondary indexes are keyed by.
func Pair(k, v Sym) uint64 { return uint64(k)<<32 | uint64(v) }

// Default is the process-wide table the storage and query layers share.
var Default = NewTable()

// S interns s in the default table.
func S(s string) Sym { return Default.S(s) }

// Canon interns s in the default table and returns the canonical copy.
func Canon(s string) string { return Default.Canon(s) }

// Lookup probes the default table without inserting.
func Lookup(s string) (Sym, bool) { return Default.Lookup(s) }

// Str resolves a symbol of the default table.
func Str(sym Sym) string { return Default.Str(sym) }

// Count reports the default table's distinct string count.
func Count() int { return Default.Count() }

// Bytes reports the default table's interned string bytes.
func Bytes() int64 { return Default.Bytes() }

package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
	"repro/pkg/plusclient"
)

// newCountingPrimary is newPrimary with a snapshot-download counter, so
// restart tests can prove a resume replayed the feed instead of
// re-bootstrapping.
func newCountingPrimary(t *testing.T) (*plus.MemBackend, *httptest.Server, *plusclient.Client, *atomic.Int64) {
	t.Helper()
	m := plus.NewMemBackend(4)
	t.Cleanup(func() { m.Close() })
	lat := privilege.TwoLevel()
	srv := plus.NewServer(plus.NewEngine(m, lat))
	plusql.Attach(srv, plusql.NewEngine(m, lat))
	var snapshots atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v2/snapshot" {
			snapshots.Add(1)
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return m, ts, plusclient.New(ts.URL, plusclient.WithViewer("Protected")), &snapshots
}

// durableFollower builds a replica over a LogBackend at dir with a state
// sidecar, simulating one plusd -follow process lifetime.
func durableFollower(t *testing.T, primary, dir string) (*Replica, *plus.LogBackend) {
	t.Helper()
	dbPath := filepath.Join(dir, "follower.db")
	lb, err := plus.Open(dbPath, plus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{
		Primary:      primary,
		Backend:      lb,
		StatePath:    DefaultStatePath(dbPath),
		FlushEvery:   8,
		Wait:         100 * time.Millisecond,
		PollInterval: -1,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, lb
}

// TestRestartResumesCursor kills a durable follower mid-life, restarts
// it, and proves the second life resumed from the persisted cursor —
// no snapshot re-download — while converging exactly-once.
func TestRestartResumesCursor(t *testing.T) {
	pm, ts, c, snapshots := newCountingPrimary(t)
	ingestChain(t, c, "first", 20)
	dir := t.TempDir()

	// First life: bootstrap (one snapshot), catch up, die.
	r1, lb1 := durableFollower(t, ts.URL, dir)
	ctx1, cancel1 := context.WithCancel(context.Background())
	if err := r1.Start(ctx1); err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- r1.Run(ctx1) }()
	waitForRev(t, r1, pm.Revision())
	cancel1()
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	if err := lb1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := snapshots.Load(); got != 1 {
		t.Fatalf("first life downloaded %d snapshots, want 1", got)
	}

	// The primary moves on while the follower is dead.
	ingestChain(t, c, "second", 20)

	// Second life: resume from the sidecar, replay only the gap.
	r2, lb2 := durableFollower(t, ts.URL, dir)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	if err := r2.Start(ctx2); err != nil {
		t.Fatal(err)
	}
	if lb2.NumObjects() != 20 {
		t.Fatalf("reopened store has %d objects, want 20", lb2.NumObjects())
	}
	done2 := make(chan error, 1)
	go func() { done2 <- r2.Run(ctx2) }()
	waitForRev(t, r2, pm.Revision())

	if got := snapshots.Load(); got != 1 {
		t.Errorf("restart re-downloaded the snapshot (%d total), cursor resume broken", got)
	}
	if pm.NumObjects() != lb2.NumObjects() || pm.NumEdges() != lb2.NumEdges() {
		t.Errorf("counts: primary %d/%d vs follower %d/%d",
			pm.NumObjects(), pm.NumEdges(), lb2.NumObjects(), lb2.NumEdges())
	}
	// Exactly-once: History holds superseded versions, so any replayed
	// re-apply of these never-overwritten objects would show up here.
	for i := 0; i < 20; i++ {
		for _, prefix := range []string{"first", "second"} {
			id := fmt.Sprintf("%s-%d", prefix, i)
			if n := len(lb2.History(id)); n != 0 {
				t.Errorf("history(%s) = %d superseded entries, want 0", id, n)
			}
		}
	}
	h := r2.Health()
	if h.State != string(StateFollowing) || h.LagRevisions != 0 {
		t.Errorf("post-restart health = %+v", h)
	}
	cancel2()
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop")
	}
	if err := lb2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartReplayAfterTornCursor simulates the crash window between a
// flushed apply and the cursor write: the sidecar points BEFORE records
// the store already holds, so the restart replays them — and the
// idempotent filter must absorb the replay without duplicates.
func TestRestartReplayAfterTornCursor(t *testing.T) {
	pm, ts, c, _ := newCountingPrimary(t)
	ingestChain(t, c, "early", 10)
	earlySnapshotRev := pm.Revision()
	dir := t.TempDir()

	r1, lb1 := durableFollower(t, ts.URL, dir)
	ctx1, cancel1 := context.WithCancel(context.Background())
	if err := r1.Start(ctx1); err != nil {
		t.Fatal(err)
	}
	earlyCursor := r1.Cursor()
	done1 := make(chan error, 1)
	go func() { done1 <- r1.Run(ctx1) }()
	ingestChain(t, c, "late", 10)
	waitForRev(t, r1, pm.Revision())
	cancel1()
	<-done1
	if err := lb1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the sidecar back to the bootstrap-time cursor: the store holds
	// the "late" records the cursor claims not to have seen.
	statePath := DefaultStatePath(filepath.Join(dir, "follower.db"))
	st := stateFile{Cursor: earlyCursor, Lattice: privilege.TwoLevel().Pairs()}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(statePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, lb2 := durableFollower(t, ts.URL, dir)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	if err := r2.Start(ctx2); err != nil {
		t.Fatal(err)
	}
	if got := r2.Health().AppliedRev; got != earlySnapshotRev {
		t.Fatalf("resumed at rev %d, want torn rev %d", got, earlySnapshotRev)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- r2.Run(ctx2) }()
	waitForRev(t, r2, pm.Revision())

	// The replayed window covered the "late" records the store already
	// held; the idempotent filter must have absorbed them (History holds
	// superseded versions, so a blind re-apply would leave one each).
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("late-%d", i)
		if n := len(lb2.History(id)); n != 0 {
			t.Errorf("history(%s) = %d superseded entries after replay, want 0", id, n)
		}
	}
	if pm.NumEdges() != lb2.NumEdges() {
		t.Errorf("edges: primary %d vs follower %d", pm.NumEdges(), lb2.NumEdges())
	}
	cancel2()
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop")
	}
	if err := lb2.Close(); err != nil {
		t.Fatal(err)
	}
}

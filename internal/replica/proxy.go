package replica

import (
	"net/http"
	"net/http/httputil"
	"net/url"

	"repro/internal/plus"
)

// WriteProxy builds the handler a follower mounts behind
// -follow-proxy-writes: refused writes are forwarded verbatim — auth
// headers intact, so the primary authorizes the original principal —
// to the primary, whose answer (including its cursor) flows back
// unchanged. The follower itself observes the write later through the
// change feed; callers reading their own writes back must target the
// primary or wait out the lag. hc supplies the transport (its TLS
// trust in particular); nil uses the default.
func WriteProxy(primary string, hc *http.Client) (http.Handler, error) {
	u, err := url.Parse(primary)
	if err != nil {
		return nil, err
	}
	p := httputil.NewSingleHostReverseProxy(u)
	if hc != nil && hc.Transport != nil {
		p.Transport = hc.Transport
	}
	p.ErrorLog = nil
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		plus.WriteAPIError(w, &plus.APIError{
			Status:  http.StatusBadGateway,
			Code:    plus.CodeUnavailable,
			Message: "plus: primary unreachable: " + err.Error(),
		})
	}
	return p, nil
}

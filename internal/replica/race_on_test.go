//go:build race

package replica

const raceEnabled = true

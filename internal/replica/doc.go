// Package replica turns a plusd process into a read replica of another
// plusd (the primary): the read scale-out topology of the PLUS
// provenance store. See the README's "Replication" section for the
// operator view; this note covers the mechanics.
//
// A Replica owns a local Backend that only its apply loop writes.
// Start bootstraps it: a fresh store downloads GET /v2/snapshot and
// applies the whole graph (adopting the primary's privilege lattice
// from the payload), while a durable store that kept its cursor state
// file resumes exactly where it stopped, without re-downloading. Run
// then follows the primary's change feed through the SDK's Follow —
// jittered-backoff reconnects, automatic 410 snapshot resync —
// coalescing change events into batched local Apply calls, so a
// follower pays a fraction of the per-record cost the primary paid to
// ingest the same data. Config.Coalesce (plusd -follow-coalesce) extends
// the batching into group commit: buffered events are held up to that
// window before one batched apply, so a follower under continuous
// primary ingest collapses many writes into one cache-invalidation round
// and keeps serving mostly-cached reads — at the price of reads trailing
// the primary by at most the window plus apply time. Every query surface (lineage, PLUSQL, point
// reads, the follower's own snapshots/changes) is served locally from
// the replicated store; writes are refused with a structured 403
// "read_only" or, behind -follow-proxy-writes, forwarded verbatim to
// the primary (WriteProxy).
//
// Consistency model. Apply is idempotent: before each local batch the
// loop drops records the store already holds (byte-equal objects,
// present (from,to) edges, deep-equal surrogate specs), so
// at-least-once delivery — a crash between data apply and cursor flush,
// a replayed cursor — converges to exactly-once effect. A 410 resync
// diff-applies the snapshot against local state as ordinary writes,
// which keeps revisions monotonic (caches stay valid) and restores
// live-state parity; condensed object history and byte-identical
// re-puts are the documented approximations. A local record the
// primary does not have is divergence: the loop stops with ErrDiverged
// rather than serve answers two stores disagree on.
//
// Lag accounting. appliedRev tracks the last primary revision applied
// locally; primaryRev the newest primary revision observed (change
// events, sync events, and a periodic healthz poll). Their difference
// is the lag in revisions; the wall-clock lag is how long the follower
// has continuously been behind. Both are exported through Health (the
// healthz "replica" block, which plusctl status renders and its
// -max-lag flag alerts on) and RegisterMetrics (the plus_replica_*
// series).
package replica

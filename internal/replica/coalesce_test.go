package replica

import (
	"context"
	"testing"
	"time"
)

// TestCoalesceBatchesApplies proves the group-commit window holds
// trickled events back and applies them in far fewer local batches than
// events, while still converging within the window.
func TestCoalesceBatchesApplies(t *testing.T) {
	pm, ts, c := newPrimary(t)
	r, fm := newFollower(t, ts.URL, func(cfg *Config) {
		cfg.Coalesce = 60 * time.Millisecond
		cfg.FlushEvery = 10_000 // let the window, not the cap, drive flushes
	})
	_, _ = runFollower(t, r)

	// Trickle writes one at a time: without coalescing each would sync
	// (and flush) individually.
	const writes = 40
	for i := 0; i < writes; i++ {
		ingestChain(t, c, chainName(i), 1)
		time.Sleep(2 * time.Millisecond)
	}
	waitForRev(t, r, pm.Revision())

	h := r.Health()
	if h.Applied != writes {
		t.Fatalf("applied %d events, want %d", h.Applied, writes)
	}
	// ~80ms of trickle at a 60ms window: a handful of batches. The exact
	// count is timing-dependent; the claim is only "far fewer than one
	// per event".
	if h.Batches >= writes/2 {
		t.Errorf("batches = %d for %d events; coalescing did nothing", h.Batches, writes)
	}
	if fm.NumObjects() != pm.NumObjects() {
		t.Errorf("objects = %d, want %d", fm.NumObjects(), pm.NumObjects())
	}
}

// A coalescing follower left idle must still drain its buffer: the
// armed window fires without any further event arriving.
func TestCoalesceDrainsWithoutFurtherEvents(t *testing.T) {
	pm, ts, c := newPrimary(t)
	r, _ := newFollower(t, ts.URL, func(cfg *Config) {
		cfg.Coalesce = 30 * time.Millisecond
	})
	_, _ = runFollower(t, r)

	ingestChain(t, c, "only", 3)
	// No more writes: only the AfterFunc can flush this.
	waitForRev(t, r, pm.Revision())
	if err := r.WaitCaughtUp(contextWithTimeout(t)); err != nil {
		t.Fatal(err)
	}
}

func chainName(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+i/26))
}

func contextWithTimeout(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

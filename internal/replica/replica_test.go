package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
	"repro/pkg/plusclient"
)

// newPrimary serves a fresh MemBackend over the full API surface and
// returns the backend, the server, and an SDK client for ingest.
func newPrimary(t *testing.T) (*plus.MemBackend, *httptest.Server, *plusclient.Client) {
	t.Helper()
	m := plus.NewMemBackend(4)
	t.Cleanup(func() { m.Close() })
	lat := privilege.TwoLevel()
	srv := plus.NewServer(plus.NewEngine(m, lat))
	plusql.Attach(srv, plusql.NewEngine(m, lat))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return m, ts, plusclient.New(ts.URL, plusclient.WithViewer("Protected"))
}

// newFollower builds a replica over a fresh MemBackend following
// primary, with test-friendly pacing (fast flushes, no healthz polling).
func newFollower(t *testing.T, primary string, mutate ...func(*Config)) (*Replica, *plus.MemBackend) {
	t.Helper()
	m := plus.NewMemBackend(4)
	t.Cleanup(func() { m.Close() })
	cfg := Config{
		Primary:      primary,
		Backend:      m,
		FlushEvery:   8,
		Wait:         100 * time.Millisecond,
		PollInterval: -1,
		Logf:         t.Logf,
	}
	for _, f := range mutate {
		f(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, m
}

// runFollower starts the apply loop and returns its cancel plus a done
// channel carrying Run's error.
func runFollower(t *testing.T, r *Replica) (context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	if err := r.Start(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("Run did not stop")
		}
	})
	return cancel, done
}

func waitCaughtUp(t *testing.T, r *Replica) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("follower never caught up: %v (health %+v)", err, r.Health())
	}
}

// waitForRev blocks until the follower has applied at least rev —
// unlike WaitCaughtUp it cannot be fooled by calling it before the
// follower has observed a fresh primary write.
func waitForRev(t *testing.T, r *Replica, rev uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.Health().AppliedRev < rev {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %+v waiting for rev %d", r.Health(), rev)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ingestChain writes a linear provenance chain of n objects.
func ingestChain(t *testing.T, c *plusclient.Client, prefix string, n int) {
	t.Helper()
	var b plusclient.BatchRequest
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		b.Objects = append(b.Objects, plus.Object{ID: id, Kind: plus.Data, Name: prefix})
		if i > 0 {
			b.Edges = append(b.Edges, plus.Edge{From: fmt.Sprintf("%s-%d", prefix, i-1), To: id, Label: "input-to"})
		}
	}
	if _, err := c.Batch(context.Background(), b); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapThenFollow(t *testing.T) {
	pm, ts, c := newPrimary(t)
	ingestChain(t, c, "pre", 20)

	r, fm := newFollower(t, ts.URL)
	_, _ = runFollower(t, r)

	// Bootstrap already delivered the pre-existing records.
	if got := fm.NumObjects(); got != 20 {
		t.Fatalf("bootstrapped %d objects, want 20", got)
	}
	if !samePairs(r.Lattice().Pairs(), privilege.TwoLevel().Pairs()) {
		t.Errorf("adopted lattice = %v", r.Lattice().Pairs())
	}

	// Live changes stream in.
	ingestChain(t, c, "live", 30)
	waitForRev(t, r, pm.Revision())
	if got, want := fm.NumObjects(), pm.NumObjects(); got != want {
		t.Errorf("objects = %d, want %d", got, want)
	}
	if got, want := fm.NumEdges(), pm.NumEdges(); got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}

	h := r.Health()
	if h.Role != "follower" || h.State != string(StateFollowing) {
		t.Errorf("health = %+v", h)
	}
	if h.AppliedRev != pm.Revision() || h.LagRevisions != 0 {
		t.Errorf("applied %d vs primary %d (lag %d)", h.AppliedRev, pm.Revision(), h.LagRevisions)
	}
	if h.Applied == 0 || h.Batches == 0 {
		t.Errorf("apply counters empty: %+v", h)
	}
}

func TestRunStopsCleanly(t *testing.T) {
	_, ts, c := newPrimary(t)
	ingestChain(t, c, "a", 5)
	r, _ := newFollower(t, ts.URL)
	cancel, done := runFollower(t, r)
	waitCaughtUp(t, r)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v on cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run hung after cancel")
	}
	if got := r.State(); got != StateStopped {
		t.Errorf("state after cancel = %s", got)
	}
	done <- nil // refill so the cleanup's drain finds a value
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Backend: plus.NewMemBackend(1)}); err == nil {
		t.Error("missing primary accepted")
	}
	if _, err := New(Config{Primary: "http://x"}); err == nil {
		t.Error("missing backend accepted")
	}
}

// A follower holding records the primary lacks must refuse with
// ErrDiverged instead of serving a history that never happened.
func TestBootstrapDetectsDivergence(t *testing.T) {
	_, ts, c := newPrimary(t)
	ingestChain(t, c, "p", 3)

	r, fm := newFollower(t, ts.URL)
	if _, err := fm.Apply(plus.Batch{Objects: []plus.Object{{ID: "ghost", Kind: plus.Data, Name: "local-only"}}}); err != nil {
		t.Fatal(err)
	}
	err := r.Start(context.Background())
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("Start = %v, want divergence", err)
	}
}

// The follower's read surface refuses writes with the structured 403 and
// reports replication state in healthz.
func TestFollowerServingSurface(t *testing.T) {
	_, ts, c := newPrimary(t)
	ingestChain(t, c, "n", 10)

	r, fm := newFollower(t, ts.URL)
	_, _ = runFollower(t, r)
	waitCaughtUp(t, r)

	lat := r.Lattice()
	fsrv := plus.NewServer(plus.NewEngine(fm, lat),
		plus.WithReadOnly(nil), plus.WithReplicaHealth(r.Health))
	plusql.Attach(fsrv, plusql.NewEngine(fm, lat))
	fts := httptest.NewServer(fsrv)
	defer fts.Close()
	fc := plusclient.New(fts.URL, plusclient.WithViewer("Protected"))
	ctx := context.Background()

	// Lineage and PLUSQL answer locally.
	res, err := fc.Lineage(ctx, plusclient.LineageRequest{Start: "n-9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 10 {
		t.Errorf("lineage nodes = %d, want 10", len(res.Nodes))
	}
	qr, err := fc.Query(ctx, `ancestor*(X, "n-9"), kind(X, data)`, plusclient.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) == 0 {
		t.Error("PLUSQL returned no rows on the follower")
	}

	// Writes refuse with the structured code.
	_, err = fc.Batch(ctx, plusclient.BatchRequest{Objects: []plus.Object{{ID: "w", Kind: plus.Data, Name: "w"}}})
	var apiErr *plusclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusForbidden || apiErr.Code != plus.CodeReadOnly {
		t.Fatalf("follower write error = %v", err)
	}

	// Healthz carries the replica block.
	h, err := fc.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Replica == nil || h.Replica.Primary != ts.URL {
		t.Errorf("healthz replica = %+v", h.Replica)
	}
	_ = c
}

// Writes through a proxying follower land on the primary and come back
// around the feed.
func TestWriteProxyRoundTrip(t *testing.T) {
	pm, ts, _ := newPrimary(t)
	r, fm := newFollower(t, ts.URL)
	_, _ = runFollower(t, r)

	proxy, err := WriteProxy(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	fsrv := plus.NewServer(plus.NewEngine(fm, privilege.TwoLevel()), plus.WithReadOnly(proxy))
	fts := httptest.NewServer(fsrv)
	defer fts.Close()

	fc := plusclient.New(fts.URL, plusclient.WithViewer("Protected"))
	if _, err := fc.Batch(context.Background(), plusclient.BatchRequest{
		Objects: []plus.Object{{ID: "via-proxy", Kind: plus.Data, Name: "w"}},
	}); err != nil {
		t.Fatalf("proxied write: %v", err)
	}
	if _, err := pm.GetObject("via-proxy"); err != nil {
		t.Fatalf("primary never saw the proxied write: %v", err)
	}
	waitForRev(t, r, pm.Revision())
	if _, err := fm.GetObject("via-proxy"); err != nil {
		t.Fatalf("follower never replicated its own proxied write: %v", err)
	}
}

// A proxying follower whose primary is down answers 502 unavailable, not
// a hang or a panic.
func TestWriteProxyPrimaryDown(t *testing.T) {
	proxy, err := WriteProxy("http://127.0.0.1:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	fsrv := plus.NewServer(plus.NewEngine(plus.NewMemBackend(1), privilege.TwoLevel()), plus.WithReadOnly(proxy))
	fts := httptest.NewServer(fsrv)
	defer fts.Close()

	resp, err := http.Post(fts.URL+"/v2/batch", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestMetricsExported(t *testing.T) {
	_, ts, c := newPrimary(t)
	ingestChain(t, c, "m", 5)
	r, _ := newFollower(t, ts.URL)
	_, _ = runFollower(t, r)
	waitCaughtUp(t, r)

	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"plus_replica_applied_revision",
		"plus_replica_primary_revision",
		"plus_replica_lag_revisions",
		"plus_replica_lag_seconds",
		"plus_replica_apply_per_sec",
		"plus_replica_applied_total",
		"plus_replica_apply_batches_total",
		"plus_replica_resyncs_total",
		"plus_replica_reconnects_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metric %s missing", name)
		}
	}
	if !strings.Contains(out, "plus_replica_lag_revisions 0") {
		t.Errorf("lag gauge not zero after catch-up:\n%s", out)
	}
}

func TestDefaultStatePath(t *testing.T) {
	if got := DefaultStatePath("/var/lib/plus/plus.db"); got != "/var/lib/plus/plus.db.replica" {
		t.Errorf("DefaultStatePath = %q", got)
	}
}

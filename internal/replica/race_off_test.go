//go:build !race

package replica

// raceEnabled reports whether the race detector is compiled in; the
// scaling benchmark skips under it (its numbers would be meaningless).
const raceEnabled = false

package replica

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
	"repro/pkg/plusclient"
)

// TestTortureConvergence hammers the primary with randomized concurrent
// ingest — including duplicate objects, duplicate edges and overwrites,
// the cases the idempotent apply filter exists for — while a follower
// replicates live, then quiesces and proves the follower converged to
// the primary: record-level parity, lineage parity, PLUSQL parity and
// secondary-index parity. Run it with -race; the apply loop, the lag
// poller and the serving surface all touch shared state.
func TestTortureConvergence(t *testing.T) {
	pm, ts, _ := newPrimary(t)
	r, fm := newFollower(t, ts.URL, func(cfg *Config) {
		cfg.FlushEvery = 16
		cfg.PollInterval = 20 * time.Millisecond
	})
	_, _ = runFollower(t, r)

	const (
		writers          = 3
		batchesPerWriter = 40
	)
	// Surrogate registrations are once-only per ID: the primary's query
	// engine refuses duplicate registrations, so concurrent writers must
	// not repeat them (the follower's idempotent filter would absorb the
	// duplicates anyway).
	var surrogatesWritten sync.Map
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 42))
			c := plusclient.New(ts.URL, plusclient.WithViewer("Protected"))
			for i := 0; i < batchesPerWriter; i++ {
				var b plusclient.BatchRequest
				for j := 0; j < 1+rng.Intn(6); j++ {
					// Colliding ID space across writers: overwrites and
					// byte-identical re-puts both occur.
					id := fmt.Sprintf("obj-%d", rng.Intn(200))
					o := plus.Object{
						ID: id, Kind: plus.Data,
						Name:     fmt.Sprintf("name-%d", rng.Intn(20)),
						Features: map[string]string{"owner": fmt.Sprintf("o%d", rng.Intn(5))},
					}
					if rng.Intn(10) == 0 {
						// Protected objects live in their own ID space so a
						// later overwrite never strips the Lowest their
						// surrogates depend on.
						o.ID = fmt.Sprintf("sec-%d", rng.Intn(40))
						o.Kind = plus.Invocation
						o.Lowest = "Protected"
						o.Protect = "surrogate"
					}
					b.Objects = append(b.Objects, o)
					if rng.Intn(2) == 0 {
						// Edges between random existing-ish IDs; duplicates
						// (same from,to) are rejected by the primary and must
						// not wedge the follower either.
						b.Edges = append(b.Edges, plus.Edge{
							From:  o.ID,
							To:    fmt.Sprintf("obj-%d", 200+rng.Intn(50)),
							Label: "input-to",
						})
					}
					if o.Protect == "surrogate" && rng.Intn(2) == 0 {
						if _, dup := surrogatesWritten.LoadOrStore(o.ID, true); !dup {
							b.Surrogates = append(b.Surrogates, plus.SurrogateSpec{
								ForID: o.ID, ID: o.ID + "'", Name: "redacted", InfoScore: 0.3,
							})
						}
					}
				}
				// Duplicate edges within one batch 400 the whole batch;
				// ingest records one at a time instead so partial overlap
				// with earlier writers is tolerated.
				ctx := context.Background()
				for _, o := range b.Objects {
					if err := c.PutObject(ctx, o); err != nil {
						t.Error(err)
					}
				}
				for _, e := range b.Edges {
					_ = c.PutEdge(ctx, e) // duplicate (from,to) rejections are expected
				}
				for _, sp := range b.Surrogates {
					if err := c.PutSurrogate(ctx, sp); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	waitForRev(t, r, pm.Revision())
	assertParity(t, pm, fm, r)
}

// assertParity proves follower fm converged to primary pm across every
// read surface a consumer can hit.
func assertParity(t *testing.T, pm, fm plus.Backend, r *Replica) {
	t.Helper()

	// Record-level parity.
	if pm.NumObjects() != fm.NumObjects() || pm.NumEdges() != fm.NumEdges() {
		t.Fatalf("counts: primary %d/%d vs follower %d/%d",
			pm.NumObjects(), pm.NumEdges(), fm.NumObjects(), fm.NumEdges())
	}
	psnap, err := pm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fsnap, err := fm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pids := psnap.FindByKind(string(plus.Data))
	fids := fsnap.FindByKind(string(plus.Data))
	sort.Strings(pids)
	sort.Strings(fids)
	if !reflect.DeepEqual(pids, fids) {
		t.Fatalf("kind index: primary %d data objects, follower %d", len(pids), len(fids))
	}
	for _, id := range pids {
		po, err1 := pm.GetObject(id)
		fo, err2 := fm.GetObject(id)
		if err1 != nil || err2 != nil {
			t.Fatalf("GetObject(%s): %v / %v", id, err1, err2)
		}
		if !objectsEqual(po, fo) {
			t.Fatalf("object %s differs: %+v vs %+v", id, po, fo)
		}
		if pe, fe := pm.EdgesFrom(id), fm.EdgesFrom(id); len(pe) != len(fe) {
			t.Fatalf("edges from %s: %d vs %d", id, len(pe), len(fe))
		}
		if ps, fs := pm.SurrogatesOf(id), fm.SurrogatesOf(id); len(ps) != len(fs) {
			t.Fatalf("surrogates of %s: %d vs %d", id, len(ps), len(fs))
		}
	}

	// Name-index parity on a sample of names.
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("name-%d", i)
		pn, fn := psnap.FindByName(name), fsnap.FindByName(name)
		sort.Strings(pn)
		sort.Strings(fn)
		if !reflect.DeepEqual(pn, fn) {
			t.Fatalf("name index %q: %v vs %v", name, pn, fn)
		}
	}
	// Attribute-index parity.
	for i := 0; i < 5; i++ {
		owner := fmt.Sprintf("o%d", i)
		pa, fa := psnap.FindByAttr("owner", owner), fsnap.FindByAttr("owner", owner)
		sort.Strings(pa)
		sort.Strings(fa)
		if !reflect.DeepEqual(pa, fa) {
			t.Fatalf("attr index owner=%q: %d vs %d ids", owner, len(pa), len(fa))
		}
	}

	// Serving-surface parity: lineage and PLUSQL answers must match over
	// HTTP, follower read-only.
	lat := r.Lattice()
	psrv := httptest.NewServer(newFullServer(pm, lat))
	defer psrv.Close()
	fsrv := httptest.NewServer(newFullServer(fm, lat, plus.WithReadOnly(nil), plus.WithReplicaHealth(r.Health)))
	defer fsrv.Close()
	pc := plusclient.New(psrv.URL, plusclient.WithViewer("Protected"))
	fc := plusclient.New(fsrv.URL, plusclient.WithViewer("Protected"))
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		start := fmt.Sprintf("obj-%d", 200+i)
		if _, err := pm.GetObject(start); err != nil {
			continue
		}
		pl, err1 := pc.Lineage(ctx, plusclient.LineageRequest{Start: start})
		fl, err2 := fc.Lineage(ctx, plusclient.LineageRequest{Start: start})
		if err1 != nil || err2 != nil {
			t.Fatalf("lineage(%s): %v / %v", start, err1, err2)
		}
		if !reflect.DeepEqual(lineageIDs(pl), lineageIDs(fl)) {
			t.Fatalf("lineage(%s) differs: %v vs %v", start, lineageIDs(pl), lineageIDs(fl))
		}
	}

	for _, src := range []string{
		`kind(X, data), attr(X, "owner", "o1")`,
		`name(X, "name-3")`,
		`ancestor(X, "obj-205")`,
	} {
		pq, err1 := pc.Query(ctx, src, plusclient.QueryOptions{})
		fq, err2 := fc.Query(ctx, src, plusclient.QueryOptions{})
		if err1 != nil || err2 != nil {
			t.Fatalf("query %q: %v / %v", src, err1, err2)
		}
		if !reflect.DeepEqual(queryIDs(pq), queryIDs(fq)) {
			t.Fatalf("query %q differs:\n%v\nvs\n%v", src, queryIDs(pq), queryIDs(fq))
		}
	}
}

func newFullServer(b plus.Backend, lat *privilege.Lattice, opts ...plus.ServerOption) *plus.Server {
	srv := plus.NewServer(plus.NewEngine(b, lat), opts...)
	plusql.Attach(srv, plusql.NewEngine(b, lat))
	return srv
}

func lineageIDs(r *plus.LineageResponse) []string {
	ids := make([]string, 0, len(r.Nodes))
	for _, n := range r.Nodes {
		ids = append(ids, n.ID)
	}
	sort.Strings(ids)
	return ids
}

func queryIDs(q *plusql.QueryResponse) []string {
	var ids []string
	for _, row := range q.Rows {
		for _, b := range row {
			ids = append(ids, b.ID)
		}
	}
	sort.Strings(ids)
	return ids
}

package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/plus"
	"repro/internal/privilege"
	"repro/pkg/plusclient"
)

// ErrDiverged reports that the local store holds records the primary
// does not: replaying or resyncing cannot reconcile them, so the
// follower refuses to serve. Recovery is operational — delete the local
// store and state file and re-bootstrap.
var ErrDiverged = errors.New("replica: local store diverged from primary; delete local state and re-bootstrap")

// State names a replica's lifecycle phase (ReplicaHealth.State).
type State string

// Replica states, in the order a healthy follower passes through them.
const (
	StateBootstrapping State = "bootstrapping"
	StateFollowing     State = "following"
	StateResyncing     State = "resyncing"
	// StateDegraded means repeated follow/resync attempts are failing
	// (e.g. the primary is down); reads keep serving the last applied
	// state while the loop retries.
	StateDegraded State = "degraded"
	StateFailed   State = "failed"
	StateStopped  State = "stopped"
)

// Config wires a Replica.
type Config struct {
	// Primary is the primary's base URL (http:// or https://).
	Primary string
	// Token authenticates the replication link (a session holding the
	// replicate capability); empty against open-mode primaries.
	Token string
	// Viewer is the open-mode principal to assert when no Token is set.
	Viewer string
	// CAFile verifies an https Primary against a custom chain (the
	// cert.pem a self-signed primary serves with).
	CAFile string
	// HTTPClient overrides the transport (tests); CAFile still applies
	// on top of it.
	HTTPClient *http.Client
	// Backend is the local store the apply loop writes and the follower
	// serves from. Required; the replica does not close it.
	Backend plus.Backend
	// StatePath, when set, persists the applied cursor (and the adopted
	// lattice) through a temp-file rename after every flush, so a
	// restart over a durable Backend resumes its cursor instead of
	// re-downloading the snapshot.
	StatePath string
	// FlushEvery caps how many change events buffer before a local
	// Apply (default 256); sync events always flush, so the cap only
	// bounds memory during catch-up bursts.
	FlushEvery int
	// Coalesce, when positive, is a group-commit window: instead of
	// flushing on every sync event — which under trickle ingest means one
	// local Apply (and one cache-invalidation round) per primary write —
	// the follower holds buffered events up to this long and applies them
	// as one batch. The price is bounded, self-chosen staleness (reads
	// trail the primary by at most the window plus apply time); the gain
	// is that many primary writes collapse into one invalidation, so a
	// follower under heavy ingest keeps serving mostly-cached reads.
	// Zero (the default) preserves flush-on-sync.
	Coalesce time.Duration
	// Wait is the change-feed long-poll budget (default 10s).
	Wait time.Duration
	// PollInterval paces the primary healthz poll that keeps primaryRev
	// (and therefore lag) honest while the feed idles (default 2s; <0
	// disables).
	PollInterval time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...interface{})
}

// Replica replicates one primary into a local backend and reports its
// health. Construct with New, then Start (bootstrap or resume) before
// building engines over the backend, then Run the apply loop.
type Replica struct {
	cfg     Config
	client  *plusclient.Client
	backend plus.Backend

	// stats is shared with every Follow call so reconnect/resync counts
	// accumulate across rejoins.
	stats plusclient.FollowStats
	// meter tracks recent apply throughput (events/s).
	meter obs.Meter

	// mu guards cursor, buf, lattice and state transitions; held across
	// local Apply calls so flushes serialize.
	mu      sync.Mutex
	cursor  string
	buf     []plusclient.Event
	lattice *privilege.Lattice
	state   State
	// flushTimer is the armed group-commit deadline (Coalesce > 0): set
	// when the first event lands in an empty buffer, cleared when it
	// fires. Guarded by mu.
	flushTimer *time.Timer

	appliedRev   atomic.Uint64
	primaryRev   atomic.Uint64
	applied      atomic.Uint64
	batches      atomic.Uint64
	extraResyncs atomic.Uint64
	// behindSince is the unix-nano instant the follower fell behind the
	// primary (0 = caught up); LagSeconds derives from it.
	behindSince atomic.Int64
}

// New validates cfg and builds the replica (no I/O yet; Start contacts
// the primary).
func New(cfg Config) (*Replica, error) {
	if cfg.Primary == "" {
		return nil, errors.New("replica: no primary URL")
	}
	if cfg.Backend == nil {
		return nil, errors.New("replica: no local backend")
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 256
	}
	if cfg.Wait <= 0 {
		cfg.Wait = 10 * time.Second
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 2 * time.Second
	}
	var opts []plusclient.Option
	if cfg.HTTPClient != nil {
		opts = append(opts, plusclient.WithHTTPClient(cfg.HTTPClient))
	}
	if cfg.CAFile != "" {
		opts = append(opts, plusclient.WithCAFile(cfg.CAFile))
	}
	if cfg.Token != "" {
		opts = append(opts, plusclient.WithToken(cfg.Token))
	} else if cfg.Viewer != "" {
		opts = append(opts, plusclient.WithViewer(cfg.Viewer))
	}
	return &Replica{
		cfg:     cfg,
		client:  plusclient.New(cfg.Primary, opts...),
		backend: cfg.Backend,
		state:   StateBootstrapping,
	}, nil
}

func (r *Replica) logf(format string, args ...interface{}) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// State reports the lifecycle phase.
func (r *Replica) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

func (r *Replica) setState(s State) {
	r.mu.Lock()
	changed := r.state != s
	r.state = s
	r.mu.Unlock()
	if changed {
		r.logf("replica: %s", s)
	}
}

// Cursor reports the durable change-feed position of the last flush.
func (r *Replica) Cursor() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cursor
}

// Lattice reports the privilege lattice adopted from the primary; valid
// after Start. Engines over the replicated backend must be built with
// it, or protection decisions would disagree across the fleet.
func (r *Replica) Lattice() *privilege.Lattice {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lattice
}

// stateFile is the StatePath payload: everything a restart needs that
// the backend itself does not persist.
type stateFile struct {
	Cursor  string      `json:"cursor"`
	Lattice [][2]string `json:"lattice"`
}

// loadState reads StatePath; (nil, nil) when unset or absent.
func (r *Replica) loadState() (*stateFile, error) {
	if r.cfg.StatePath == "" {
		return nil, nil
	}
	data, err := os.ReadFile(r.cfg.StatePath)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("replica: state file: %w", err)
	}
	var st stateFile
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("replica: state file %s: %w", r.cfg.StatePath, err)
	}
	return &st, nil
}

// saveStateLocked writes the cursor sidecar atomically (temp + rename);
// mu must be held. A write failure is worth surfacing but never worth
// stopping replication over: the cost is a larger replay after restart.
func (r *Replica) saveStateLocked() {
	if r.cfg.StatePath == "" {
		return
	}
	st := stateFile{Cursor: r.cursor}
	if r.lattice != nil {
		st.Lattice = r.lattice.Pairs()
	}
	data, err := json.Marshal(st)
	if err != nil {
		r.logf("replica: encode state: %v", err)
		return
	}
	tmp := r.cfg.StatePath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		r.logf("replica: write state: %v", err)
		return
	}
	if err := os.Rename(tmp, r.cfg.StatePath); err != nil {
		r.logf("replica: write state: %v", err)
	}
}

// Start brings the local backend to a servable revision of the primary:
// resuming from the persisted cursor when the durable backend and state
// file both survived, bootstrapping from GET /v2/snapshot otherwise.
// After Start, Lattice is valid and the backend answers queries; Run
// keeps it current.
func (r *Replica) Start(ctx context.Context) error {
	if st, err := r.loadState(); err == nil && st != nil && st.Cursor != "" && r.backend.Revision() > 0 {
		lat, lerr := privilege.FromPairs(st.Lattice)
		cur, cerr := plus.DecodeCursor(st.Cursor)
		if lerr == nil && cerr == nil {
			r.mu.Lock()
			r.lattice = lat
			r.cursor = st.Cursor
			r.state = StateFollowing
			r.mu.Unlock()
			r.appliedRev.Store(cur.Rev)
			r.logf("replica: resuming from cursor rev %d (%d objects local)", cur.Rev, r.backend.NumObjects())
			return nil
		}
		r.logf("replica: ignoring unusable state file (lattice: %v, cursor: %v); bootstrapping", lerr, cerr)
	} else if err != nil {
		r.logf("replica: %v; bootstrapping", err)
	}
	r.setState(StateBootstrapping)
	snap, err := r.client.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("replica: bootstrap snapshot: %w", err)
	}
	lat, err := privilege.FromPairs(snap.Lattice)
	if err != nil {
		return fmt.Errorf("replica: primary lattice: %w", err)
	}
	r.mu.Lock()
	r.lattice = lat
	r.mu.Unlock()
	if err := r.rebase(snap); err != nil {
		return err
	}
	r.setState(StateFollowing)
	r.logf("replica: bootstrapped %d objects, %d edges at primary rev %d",
		len(snap.Objects), len(snap.Edges), snap.Revision)
	return nil
}

// Run drives the apply loop until ctx ends: Follow the primary's
// change feed, coalesce events into batched local applies, heal any
// follow failure by rebasing from a fresh snapshot, and keep retrying
// (serving the last applied state meanwhile) for as long as the
// primary might come back. Only divergence is fatal.
func (r *Replica) Run(ctx context.Context) error {
	if r.cfg.PollInterval > 0 {
		go r.pollPrimary(ctx)
	}
	consecutive := 0
	for {
		if ctx.Err() != nil {
			r.setState(StateStopped)
			return nil
		}
		r.setState(StateFollowing)
		err := r.client.Follow(ctx, r.Cursor(), plusclient.FollowOptions{
			Wait:  r.cfg.Wait,
			Stats: &r.stats,
		}, r.onEvent)
		if ctx.Err() != nil {
			r.setState(StateStopped)
			return nil
		}
		if errors.Is(err, ErrDiverged) {
			r.setState(StateFailed)
			return err
		}
		consecutive++
		r.logf("replica: follow interrupted (attempt %d): %v", consecutive, err)
		if consecutive > 3 {
			r.setState(StateDegraded)
		} else {
			r.setState(StateResyncing)
		}
		if rerr := r.resync(ctx); rerr != nil {
			if ctx.Err() != nil {
				r.setState(StateStopped)
				return nil
			}
			if errors.Is(rerr, ErrDiverged) {
				r.setState(StateFailed)
				return rerr
			}
			r.logf("replica: resync failed: %v", rerr)
			delay := time.Duration(consecutive) * time.Second
			if delay > 5*time.Second {
				delay = 5 * time.Second
			}
			select {
			case <-ctx.Done():
				r.setState(StateStopped)
				return nil
			case <-time.After(delay):
			}
			continue
		}
		consecutive = 0
	}
}

// onEvent is the Follow handler: buffer changes, flush on sync or when
// the buffer fills, rebase on resync.
func (r *Replica) onEvent(ev plusclient.Event) error {
	switch ev.Type {
	case plusclient.EventChange:
		r.observePrimaryRev(ev.Rev)
		r.mu.Lock()
		r.buf = append(r.buf, ev)
		var err error
		if len(r.buf) >= r.cfg.FlushEvery {
			err = r.flushLocked()
		} else if r.cfg.Coalesce > 0 && r.flushTimer == nil {
			// First event of a group-commit window: arm the deadline. The
			// timer flush cannot return its error to Follow, but a failed
			// flush keeps the buffer, so the next flush (or the loop's
			// resync heal) retries it.
			r.flushTimer = time.AfterFunc(r.cfg.Coalesce, func() {
				r.mu.Lock()
				r.flushTimer = nil
				ferr := r.flushLocked()
				r.mu.Unlock()
				if ferr != nil {
					r.logf("replica: coalesced flush: %v", ferr)
				}
			})
		}
		r.mu.Unlock()
		return err
	case plusclient.EventSync:
		r.observePrimaryRev(ev.Rev)
		if r.cfg.Coalesce > 0 {
			// Group commit: let the armed window flush; a sync with an
			// empty buffer has nothing to hold back anyway.
			r.updateLagClock()
			return nil
		}
		r.mu.Lock()
		err := r.flushLocked()
		r.mu.Unlock()
		r.updateLagClock()
		return err
	case plusclient.EventResync:
		r.setState(StateResyncing)
		r.mu.Lock()
		// Buffered events precede the snapshot's revision; it subsumes
		// them.
		r.buf = r.buf[:0]
		r.mu.Unlock()
		if err := r.rebase(ev.Snapshot); err != nil {
			return err
		}
		r.setState(StateFollowing)
	}
	return nil
}

// flushLocked applies the buffered change events as one idempotently
// filtered batch; mu must be held. The cursor only advances after the
// data is applied, so a crash between the two replays — and the filter
// absorbs the replay.
func (r *Replica) flushLocked() error {
	if r.flushTimer != nil {
		r.flushTimer.Stop()
		r.flushTimer = nil
	}
	if len(r.buf) == 0 {
		return nil
	}
	var batch plus.Batch
	for _, ev := range r.buf {
		switch {
		case ev.Object != nil:
			if cur, err := r.backend.GetObject(ev.Object.ID); err != nil || !objectsEqual(cur, *ev.Object) {
				batch.Objects = append(batch.Objects, *ev.Object)
			}
		case ev.Edge != nil:
			if !hasEdge(r.backend, *ev.Edge) {
				batch.Edges = append(batch.Edges, *ev.Edge)
			}
		case ev.Surrogate != nil:
			if !hasSurrogate(r.backend, *ev.Surrogate) {
				batch.Surrogates = append(batch.Surrogates, *ev.Surrogate)
			}
		}
	}
	if batch.Len() > 0 {
		if _, err := r.backend.Apply(batch); err != nil {
			return fmt.Errorf("replica: apply %d records: %w", batch.Len(), err)
		}
	}
	last := r.buf[len(r.buf)-1]
	n := len(r.buf)
	r.buf = r.buf[:0]
	r.cursor = last.Cursor
	r.appliedRev.Store(last.Rev)
	r.applied.Add(uint64(n))
	r.batches.Add(1)
	r.meter.Mark(n)
	r.updateLagClock()
	r.saveStateLocked()
	return nil
}

// resync drops buffered events and rebases from a fresh snapshot — the
// heal for apply failures and interrupted streams.
func (r *Replica) resync(ctx context.Context) error {
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.mu.Unlock()
	snap, err := r.client.Snapshot(ctx)
	if err != nil {
		return err
	}
	r.extraResyncs.Add(1)
	return r.rebase(snap)
}

// rebase converges the local store onto a snapshot by applying only the
// records it is missing, as ordinary writes: revisions stay monotonic
// (a backend swap would rewind them and poison delta-scoped caches),
// and at-least-once redelivery stays harmless. Records are append-only,
// so a snapshot is a superset of any honest follower; local records the
// snapshot lacks mean divergence.
func (r *Replica) rebase(snap *plusclient.SnapshotResponse) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lattice != nil {
		lat, err := privilege.FromPairs(snap.Lattice)
		if err != nil {
			return fmt.Errorf("replica: primary lattice: %w", err)
		}
		if !samePairs(r.lattice.Pairs(), lat.Pairs()) {
			return fmt.Errorf("%w: primary lattice changed", ErrDiverged)
		}
	}
	var batch plus.Batch
	for _, o := range snap.Objects {
		if cur, err := r.backend.GetObject(o.ID); err != nil || !objectsEqual(cur, o) {
			batch.Objects = append(batch.Objects, o)
		}
	}
	for _, e := range snap.Edges {
		if !hasEdge(r.backend, e) {
			batch.Edges = append(batch.Edges, e)
		}
	}
	for _, sp := range snap.Surrogates {
		if !hasSurrogate(r.backend, sp) {
			batch.Surrogates = append(batch.Surrogates, sp)
		}
	}
	if batch.Len() > 0 {
		if _, err := r.backend.Apply(batch); err != nil {
			return fmt.Errorf("replica: rebase apply: %w", err)
		}
	}
	if r.backend.NumObjects() != len(snap.Objects) || r.backend.NumEdges() != len(snap.Edges) {
		return fmt.Errorf("%w: local %d objects/%d edges vs primary snapshot %d/%d",
			ErrDiverged, r.backend.NumObjects(), r.backend.NumEdges(), len(snap.Objects), len(snap.Edges))
	}
	r.cursor = snap.Cursor
	r.appliedRev.Store(snap.Revision)
	r.observePrimaryRev(snap.Revision)
	r.applied.Add(uint64(batch.Len()))
	if batch.Len() > 0 {
		r.batches.Add(1)
		r.meter.Mark(batch.Len())
	}
	r.updateLagClock()
	r.saveStateLocked()
	return nil
}

// pollPrimary keeps primaryRev honest while the feed idles or the
// stream is down: the healthz probe is principal-free and cheap.
func (r *Replica) pollPrimary(ctx context.Context) {
	t := time.NewTicker(r.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if h, err := r.client.Healthz(ctx); err == nil {
				r.observePrimaryRev(h.Revision)
			}
		}
	}
}

// observePrimaryRev raises primaryRev monotonically.
func (r *Replica) observePrimaryRev(rev uint64) {
	for {
		cur := r.primaryRev.Load()
		if rev <= cur {
			break
		}
		if r.primaryRev.CompareAndSwap(cur, rev) {
			break
		}
	}
	r.updateLagClock()
}

// updateLagClock starts or clears the behind-since stopwatch.
func (r *Replica) updateLagClock() {
	if r.appliedRev.Load() >= r.primaryRev.Load() {
		r.behindSince.Store(0)
	} else {
		r.behindSince.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// Health assembles the replication block served in healthz and rendered
// by plusctl status; safe to call from any goroutine.
func (r *Replica) Health() *plus.ReplicaHealth {
	applied, primary := r.appliedRev.Load(), r.primaryRev.Load()
	var lagRevs uint64
	if primary > applied {
		lagRevs = primary - applied
	}
	var lagSec float64
	if bs := r.behindSince.Load(); bs != 0 {
		lagSec = time.Since(time.Unix(0, bs)).Seconds()
	}
	return &plus.ReplicaHealth{
		Role:         "follower",
		Primary:      r.cfg.Primary,
		State:        string(r.State()),
		AppliedRev:   applied,
		PrimaryRev:   primary,
		LagRevisions: lagRevs,
		LagSeconds:   lagSec,
		Applied:      r.applied.Load(),
		Batches:      r.batches.Load(),
		ApplyPerSec:  r.meter.Rate(),
		Resyncs:      r.stats.Resyncs() + r.extraResyncs.Load(),
		Reconnects:   r.stats.Reconnects(),
	}
}

// WaitCaughtUp blocks until the follower has applied everything the
// primary reports (lag 0 with a known primary revision) or ctx ends —
// the readiness gate tests and smoke probes use.
func (r *Replica) WaitCaughtUp(ctx context.Context) error {
	for {
		h := r.Health()
		if h.PrimaryRev > 0 && h.LagRevisions == 0 && h.State == string(StateFollowing) {
			return nil
		}
		if h.State == string(StateFailed) {
			return fmt.Errorf("replica: failed while waiting to catch up")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// DefaultStatePath places the cursor sidecar next to a durable store
// file (plusd derives it from -db when -follow-state is not given).
func DefaultStatePath(dbPath string) string {
	return filepath.Join(filepath.Dir(dbPath), filepath.Base(dbPath)+".replica")
}

// objectsEqual reports deep equality of two objects (Features compared
// by content).
func objectsEqual(a, b plus.Object) bool {
	if a.ID != b.ID || a.Kind != b.Kind || a.Name != b.Name ||
		a.Lowest != b.Lowest || a.Protect != b.Protect || len(a.Features) != len(b.Features) {
		return false
	}
	for k, v := range a.Features {
		if bv, ok := b.Features[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// hasEdge reports whether the store already holds the (from,to) edge —
// the store's own duplicate-edge identity.
func hasEdge(b plus.Backend, e plus.Edge) bool {
	for _, cur := range b.EdgesFrom(e.From) {
		if cur.To == e.To {
			return true
		}
	}
	return false
}

// hasSurrogate reports whether a deep-equal spec is already stored for
// the object (surrogates accumulate, so presence is the only identity).
func hasSurrogate(b plus.Backend, sp plus.SurrogateSpec) bool {
	for _, cur := range b.SurrogatesOf(sp.ForID) {
		if cur.ID == sp.ID && cur.Name == sp.Name && cur.Lowest == sp.Lowest &&
			cur.InfoScore == sp.InfoScore && len(cur.Features) == len(sp.Features) {
			same := true
			for k, v := range sp.Features {
				if cv, ok := cur.Features[k]; !ok || cv != v {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
	}
	return false
}

// samePairs compares two lattice pair sets order-insensitively.
func samePairs(a, b [][2]string) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[[2]string]int, len(a))
	for _, p := range a {
		seen[p]++
	}
	for _, p := range b {
		if seen[p] == 0 {
			return false
		}
		seen[p]--
	}
	return true
}

package replica

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestResyncAfterHorizonEviction parks a follower on a cursor, evicts
// that cursor from the primary's change window, and proves the restarted
// follow loop heals through the 410 with a snapshot rebase — counted in
// Health().Resyncs — and converges without duplicating records.
func TestResyncAfterHorizonEviction(t *testing.T) {
	pm, ts, c := newPrimary(t)
	ingestChain(t, c, "base", 10)

	r, fm := newFollower(t, ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	if err := r.Start(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	waitForRev(t, r, pm.Revision())
	staleCursor := r.Cursor()

	// Park the follower, then push the primary far past its (shrunken)
	// change horizon so staleCursor stops resolving.
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	pm.SetChangeHorizon(8)
	for i := 0; i < 100; i++ {
		ingestChain(t, c, fmt.Sprintf("post-%d", i), 2)
	}

	if r.Cursor() != staleCursor {
		t.Fatalf("cursor moved while parked")
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done2 := make(chan error, 1)
	go func() { done2 <- r.Run(ctx2) }()
	waitForRev(t, r, pm.Revision())

	h := r.Health()
	if h.Resyncs < 1 {
		t.Errorf("resyncs = %d, want >= 1", h.Resyncs)
	}
	if pm.NumObjects() != fm.NumObjects() || pm.NumEdges() != fm.NumEdges() {
		t.Errorf("post-resync counts: primary %d/%d vs follower %d/%d",
			pm.NumObjects(), pm.NumEdges(), fm.NumObjects(), fm.NumEdges())
	}
	// The rebase applied records as ordinary writes: no object picked up
	// a duplicate history entry.
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("base-%d", i)
		if ph, fh := len(pm.History(id)), len(fm.History(id)); ph != fh {
			t.Errorf("history(%s): primary %d vs follower %d", id, ph, fh)
		}
	}
	cancel2()
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop")
	}
	assertParity(t, pm, fm, r)
}

// TestResyncHealsApplyFailure: a mid-stream failure path — the follow
// loop's resync() (snapshot rebase outside a 410) also converges and
// counts on the resyncs metric.
func TestManualResyncConverges(t *testing.T) {
	pm, ts, c := newPrimary(t)
	ingestChain(t, c, "a", 10)
	r, fm := newFollower(t, ts.URL)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ingestChain(t, c, "b", 10)
	if err := r.resync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fm.NumObjects() != pm.NumObjects() {
		t.Fatalf("objects = %d, want %d", fm.NumObjects(), pm.NumObjects())
	}
	if got := r.Health().Resyncs; got != 1 {
		t.Errorf("resyncs = %d, want 1", got)
	}
}

package replica

import "repro/internal/obs"

// RegisterMetrics exports the plus_replica_* series on reg (nil-safe),
// mirroring the Health block so dashboards and probes read the same
// numbers. Gauges and counters are render-time callbacks — the replica
// already maintains the state atomically, so scrapes cost no extra
// bookkeeping on the apply path.
func (r *Replica) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("plus_replica_applied_revision",
		"Last primary revision applied to the local store.",
		func() float64 { return float64(r.appliedRev.Load()) })
	reg.GaugeFunc("plus_replica_primary_revision",
		"Newest primary revision the follower has observed.",
		func() float64 { return float64(r.primaryRev.Load()) })
	reg.GaugeFunc("plus_replica_lag_revisions",
		"Replication lag in revisions (primary - applied).",
		func() float64 { return float64(r.Health().LagRevisions) })
	reg.GaugeFunc("plus_replica_lag_seconds",
		"How long the follower has continuously been behind the primary.",
		func() float64 { return r.Health().LagSeconds })
	reg.GaugeFunc("plus_replica_apply_per_sec",
		"Recent change-event apply throughput (events/s, decayed).",
		func() float64 { return r.meter.Rate() })
	reg.CounterFunc("plus_replica_applied_total",
		"Change events applied to the local store since boot.",
		func() float64 { return float64(r.applied.Load()) })
	reg.CounterFunc("plus_replica_apply_batches_total",
		"Local Apply calls the change events were coalesced into.",
		func() float64 { return float64(r.batches.Load()) })
	reg.CounterFunc("plus_replica_resyncs_total",
		"Snapshot rebases (410 resyncs plus apply-failure heals).",
		func() float64 { return float64(r.stats.Resyncs() + r.extraResyncs.Load()) })
	reg.CounterFunc("plus_replica_reconnects_total",
		"Change-feed transport reconnects.",
		func() float64 { return float64(r.stats.Reconnects()) })
}

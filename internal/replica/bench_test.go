package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/plus"
	"repro/internal/privilege"
	"repro/pkg/plusclient"
)

// benchEnv reads an integer knob from the environment.
func benchEnv(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

type benchScenario struct {
	Name            string  `json:"name"`
	Followers       int     `json:"followers"`
	Readers         int     `json:"readers"`
	DurationSec     float64 `json:"durationSec"`
	Queries         uint64  `json:"queries"`
	QPS             float64 `json:"qps"`
	QueryErrors     uint64  `json:"queryErrors"`
	IngestWrites    uint64  `json:"ingestWrites"`
	MaxLagRevisions uint64  `json:"maxLagRevisions"`
	MaxLagSeconds   float64 `json:"maxLagSeconds"`
	ApplyEvents     uint64  `json:"applyEvents,omitempty"`
	ApplyBatches    uint64  `json:"applyBatches,omitempty"`
}

type benchReport struct {
	Benchmark string `json:"benchmark"`
	Command   string `json:"command"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Config    struct {
		Chains          int `json:"chains"`
		SeedDepth       int `json:"seedDepth"`
		WriteIntervalMS int `json:"writeIntervalMs"`
		CoalesceMS      int `json:"coalesceMs"`
	} `json:"config"`
	Scenarios []benchScenario `json:"scenarios"`
	// SpeedupAggregate3x is 3-follower aggregate qps over single-node qps
	// under identical concurrent primary ingest.
	SpeedupAggregate3x float64 `json:"speedupAggregate3x"`
}

// TestFollowerScalingReport measures aggregate read throughput against a
// primary under continuous ingest, then against 1 and 3 read replicas of
// it, and writes BENCH_replica.json at the repo root. The contrast it
// demonstrates is the one replicas exist for: on the primary every write
// lands individually, so each lineage query pays a cache refresh and —
// when the write touched the queried closure — a full recompute, while a
// coalescing follower applies the same stream in group-committed batches
// and serves the reads between batches from cache. Lag is sampled
// throughout and reported, bounding the staleness the throughput was
// bought with.
//
// Scale knobs (environment): REPLICA_BENCH_SECONDS per scenario (default
// 3), REPLICA_BENCH_READERS (default 4), REPLICA_BENCH_CHAINS (default
// 2), REPLICA_BENCH_DEPTH seed depth (default 250),
// REPLICA_BENCH_WRITE_INTERVAL_MS (default 10), REPLICA_BENCH_COALESCE_MS
// (default 600).
func TestFollowerScalingReport(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling benchmark skipped in -short")
	}
	if raceEnabled {
		t.Skip("scaling benchmark skipped under the race detector: its throughput numbers would be meaningless")
	}
	var (
		seconds   = benchEnv("REPLICA_BENCH_SECONDS", 3)
		readers   = benchEnv("REPLICA_BENCH_READERS", 4)
		chains    = benchEnv("REPLICA_BENCH_CHAINS", 2)
		seedDepth = benchEnv("REPLICA_BENCH_DEPTH", 250)
		writeMS   = benchEnv("REPLICA_BENCH_WRITE_INTERVAL_MS", 10)
		coalesce  = time.Duration(benchEnv("REPLICA_BENCH_COALESCE_MS", 600)) * time.Millisecond
	)

	// Primary: cache-fronted, like plusd serves by default.
	pm := plus.NewMemBackend(4)
	defer pm.Close()
	lat := privilege.TwoLevel()
	psrv := plus.NewCachedServer(plus.NewCachedEngine(plus.NewEngine(pm, lat)))
	pts := httptest.NewServer(psrv)
	defer pts.Close()

	// Seed: `chains` linear provenance chains, deep enough that an
	// uncached lineage recompute costs real work.
	for c := 0; c < chains; c++ {
		var b plus.Batch
		for i := 0; i < seedDepth; i++ {
			b.Objects = append(b.Objects, plus.Object{ID: chainID(c, i), Kind: plus.Data, Name: fmt.Sprintf("chain-%d", c)})
			if i > 0 {
				b.Edges = append(b.Edges, plus.Edge{From: chainID(c, i-1), To: chainID(c, i), Label: "input-to"})
			}
		}
		if _, err := pm.Apply(b); err != nil {
			t.Fatal(err)
		}
	}

	// Continuous ingest: annotate a rotating chain node through the
	// primary's public API at a fixed pace, for the whole measurement —
	// every re-store touches the closure every reader queries (the primary
	// must evict and recompute), while the graph itself stays at its
	// seeded size so per-scenario costs are comparable.
	ingestCtx, stopIngest := context.WithCancel(context.Background())
	defer stopIngest()
	var ingestWrites atomic.Uint64
	go func() {
		c := plusclient.New(pts.URL, plusclient.WithViewer("Protected"))
		tick := time.NewTicker(time.Duration(writeMS) * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-ingestCtx.Done():
				return
			case <-tick.C:
			}
			ch := i % chains
			_, err := c.Batch(ingestCtx, plusclient.BatchRequest{
				Objects: []plus.Object{{
					ID:       chainID(ch, (i/chains)%seedDepth),
					Kind:     plus.Data,
					Name:     fmt.Sprintf("chain-%d", ch),
					Features: map[string]string{"annotated": strconv.Itoa(i)},
				}},
			})
			if err != nil {
				if ingestCtx.Err() == nil {
					t.Errorf("ingest: %v", err)
				}
				return
			}
			ingestWrites.Add(1)
		}
	}()

	report := benchReport{
		Benchmark: "TestFollowerScalingReport",
		Command:   "REPLICA_BENCH_SECONDS=... go test ./internal/replica -run TestFollowerScalingReport -count=1",
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	report.Config.Chains = chains
	report.Config.SeedDepth = seedDepth
	report.Config.WriteIntervalMS = writeMS
	report.Config.CoalesceMS = int(coalesce / time.Millisecond)

	// measure runs one scenario: `readers` goroutines spread round-robin
	// over urls, querying full-chain lineage for `seconds`.
	measure := func(name string, urls []string, reps []*Replica) benchScenario {
		sc := benchScenario{Name: name, Followers: len(reps), Readers: readers, DurationSec: float64(seconds)}
		before := ingestWrites.Load()
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(seconds)*time.Second)
		defer cancel()
		var queries, qerrs atomic.Uint64
		var maxLagRev atomic.Uint64
		var maxLagSec atomic.Uint64 // milliseconds, really
		if len(reps) > 0 {
			go func() {
				for ctx.Err() == nil {
					for _, r := range reps {
						h := r.Health()
						if h.LagRevisions > maxLagRev.Load() {
							maxLagRev.Store(h.LagRevisions)
						}
						if ms := uint64(h.LagSeconds * 1000); ms > maxLagSec.Load() {
							maxLagSec.Store(ms)
						}
					}
					time.Sleep(10 * time.Millisecond)
				}
			}()
		}
		var wg sync.WaitGroup
		for i := 0; i < readers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := plusclient.New(urls[i%len(urls)], plusclient.WithViewer("Protected"))
				for n := 0; ctx.Err() == nil; n++ {
					_, err := c.Lineage(ctx, plusclient.LineageRequest{
						Start:     chainID(n%chains, 0),
						Direction: "descendants",
					})
					if err != nil {
						if ctx.Err() == nil {
							qerrs.Add(1)
						}
						continue
					}
					queries.Add(1)
				}
			}(i)
		}
		wg.Wait()
		sc.Queries = queries.Load()
		sc.QueryErrors = qerrs.Load()
		sc.QPS = float64(sc.Queries) / sc.DurationSec
		sc.IngestWrites = ingestWrites.Load() - before
		sc.MaxLagRevisions = maxLagRev.Load()
		sc.MaxLagSeconds = float64(maxLagSec.Load()) / 1000
		for _, r := range reps {
			h := r.Health()
			sc.ApplyEvents += h.Applied
			sc.ApplyBatches += h.Batches
		}
		return sc
	}

	// startFollower boots one coalescing read replica with its own
	// cache-fronted read-only serving surface.
	type follower struct {
		rep *Replica
		url string
	}
	startFollower := func(i int) follower {
		fm := plus.NewMemBackend(4)
		t.Cleanup(func() { fm.Close() })
		r, err := New(Config{
			Primary:      pts.URL,
			Backend:      fm,
			Coalesce:     coalesce,
			FlushEvery:   100_000,
			Wait:         2 * time.Second,
			PollInterval: 250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		if err := r.Start(ctx); err != nil {
			t.Fatal(err)
		}
		go func() {
			if err := r.Run(ctx); err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
		}()
		fsrv := plus.NewCachedServer(plus.NewCachedEngine(plus.NewEngine(fm, r.Lattice())),
			plus.WithReadOnly(nil), plus.WithReplicaHealth(r.Health))
		fts := httptest.NewServer(fsrv)
		t.Cleanup(fts.Close)
		return follower{rep: r, url: fts.URL}
	}

	// Scenario 1: every read hits the ingest-burdened primary.
	sc := measure("single-node", []string{pts.URL}, nil)
	report.Scenarios = append(report.Scenarios, sc)
	singleQPS := sc.QPS

	// Scenario 2: one follower takes the reads.
	f0 := startFollower(0)
	waitBenchCaughtUp(t, f0.rep)
	sc = measure("followers-1", []string{f0.url}, []*Replica{f0.rep})
	report.Scenarios = append(report.Scenarios, sc)

	// Scenario 3: three followers share the reads.
	f1, f2 := startFollower(1), startFollower(2)
	waitBenchCaughtUp(t, f1.rep)
	waitBenchCaughtUp(t, f2.rep)
	sc = measure("followers-3",
		[]string{f0.url, f1.url, f2.url},
		[]*Replica{f0.rep, f1.rep, f2.rep})
	report.Scenarios = append(report.Scenarios, sc)
	if singleQPS > 0 {
		report.SpeedupAggregate3x = sc.QPS / singleQPS
	}

	for _, s := range report.Scenarios {
		t.Logf("%-12s followers=%d qps=%.0f (queries=%d errs=%d ingest=%d maxLag=%drev/%.2fs batches=%d)",
			s.Name, s.Followers, s.QPS, s.Queries, s.QueryErrors, s.IngestWrites,
			s.MaxLagRevisions, s.MaxLagSeconds, s.ApplyBatches)
		if s.QueryErrors > 0 {
			t.Errorf("%s: %d query errors", s.Name, s.QueryErrors)
		}
		// Staleness must stay bounded: the coalesce window plus apply and
		// polling slack, far under any runaway threshold.
		if s.MaxLagSeconds > 5 {
			t.Errorf("%s: lag reached %.2fs; replication is not keeping up", s.Name, s.MaxLagSeconds)
		}
	}
	t.Logf("aggregate speedup (3 followers vs single node): %.2fx", report.SpeedupAggregate3x)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_replica.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func chainID(chain, i int) string {
	return fmt.Sprintf("chain-%d-%d", chain, i)
}

// waitBenchCaughtUp waits until the follower has fully caught up with
// the (still-moving) primary — WaitCaughtUp alone would return before
// the follower has observed fresh ingest.
func waitBenchCaughtUp(t *testing.T, r *Replica) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		h := r.Health()
		if h.PrimaryRev > 0 && h.LagRevisions == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package core

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
)

// Provenance is the facade over the PLUS substrate: one handle bundling a
// storage backend, a privilege lattice and a cache-fronted,
// snapshot-isolated lineage engine, so callers get "store records, ask
// protected lineage questions, score the answers" without wiring the
// layers themselves.
type Provenance struct {
	backend plus.Backend
	engine  *plus.CachedEngine
	query   *plusql.Engine
	lattice *privilege.Lattice
}

// ProvenanceOptions configure OpenProvenance.
type ProvenanceOptions struct {
	// Path is the durable log file. Empty selects the sharded in-memory
	// backend instead (contents die with the process).
	Path string
	// Shards sets the in-memory backend's partition count (0 = default);
	// ignored for the durable backend.
	Shards int
	// Sync makes every durable append fsync before returning.
	Sync bool
	// Lattice is the privilege lattice the store's Lowest nicknames refer
	// to; nil means the two-level Protected/Public lattice.
	Lattice *privilege.Lattice
}

// OpenProvenance opens (or creates) a provenance service over the backend
// the options select.
func OpenProvenance(opts ProvenanceOptions) (*Provenance, error) {
	lat := opts.Lattice
	if lat == nil {
		lat = privilege.TwoLevel()
	}
	var (
		backend plus.Backend
		err     error
	)
	if opts.Path != "" {
		backend, err = plus.Open(opts.Path, plus.Options{Sync: opts.Sync})
		if err != nil {
			return nil, fmt.Errorf("core: open provenance: %w", err)
		}
	} else {
		backend = plus.NewMemBackend(opts.Shards)
	}
	return NewProvenance(backend, lat), nil
}

// NewProvenance wraps an already-open backend; Close still closes it.
func NewProvenance(backend plus.Backend, lat *privilege.Lattice) *Provenance {
	if lat == nil {
		lat = privilege.TwoLevel()
	}
	return &Provenance{
		backend: backend,
		engine:  plus.NewCachedEngine(plus.NewEngine(backend, lat)),
		query:   plusql.NewEngine(backend, lat),
		lattice: lat,
	}
}

// Backend exposes the underlying storage backend for ingestion.
func (p *Provenance) Backend() plus.Backend { return p.backend }

// Lattice returns the service's privilege lattice.
func (p *Provenance) Lattice() *privilege.Lattice { return p.lattice }

// Lineage answers one lineage query through the invalidating cache.
// Cancellation and deadlines on ctx propagate into the engine's closure
// walk; the request struct carries the query options.
func (p *Provenance) Lineage(ctx context.Context, req plus.Request) (*plus.Result, error) {
	return p.engine.LineageContext(ctx, req)
}

// Query answers one declarative PLUSQL query (see internal/plusql for the
// grammar). Results are drawn from the protected account of the current
// snapshot for opts.Viewer, so they never reveal what policy hides.
// Cancellation and deadlines on ctx propagate into view materialisation
// and the executor's join loop.
func (p *Provenance) Query(ctx context.Context, src string, opts plusql.Options) (*plusql.ResultSet, error) {
	return p.query.QueryContext(ctx, src, opts)
}

// Server wires an HTTP API around the service's engine, including the
// PLUSQL query endpoint and the cache counters in /v1/healthz. Options
// pass through to the server — plus.WithObservability instruments both
// engines and exposes GET /v2/metrics; plus.WithAuth turns on token
// authentication.
func (p *Provenance) Server(opts ...plus.ServerOption) *plus.Server {
	srv := plus.NewCachedServer(p.engine, opts...)
	plusql.Attach(srv, p.query)
	return srv
}

// CacheStats bundles the delta-scoped cache counters of both query paths:
// the lineage answer cache (evictions scoped to the closures a write
// touches) and the PLUSQL protected-view cache (views advanced by
// change-feed deltas instead of rebuilt).
type CacheStats struct {
	Lineage plus.LineageCacheStats `json:"lineage"`
	Views   plusql.ViewCacheStats  `json:"views"`
}

// CacheStats reports the service's cache counters.
func (p *Provenance) CacheStats() CacheStats {
	return CacheStats{Lineage: p.engine.Stats(), Views: p.query.CacheStats()}
}

// CompareLineage fetches the full ancestry of start and protects it both
// ways (hide and surrogate) for the viewer, returning the paper's
// comparison measures. This is the "what would each strategy cost this
// consumer" question asked directly of stored provenance.
func (p *Provenance) CompareLineage(ctx context.Context, start string, viewer privilege.Predicate) (*Comparison, error) {
	if viewer == "" {
		viewer = privilege.Public
	}
	res, err := p.engine.LineageContext(ctx, plus.Request{
		Start:     start,
		Direction: graph.Backward,
		Viewer:    viewer,
	})
	if err != nil {
		return nil, err
	}
	return Compare(res.Spec, viewer)
}

// Close releases the backend.
func (p *Provenance) Close() error { return p.backend.Close() }

package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// SpecFile is the JSON interchange format for a sensitive graph plus its
// protection inputs, shared by cmd/protect and cmd/audit:
//
//	{
//	  "lattice":    [["High-1","Low-2"], ["Low-2","Public"]],
//	  "nodes":      [{"id":"f","lowest":"High-1","protect":"surrogate",
//	                  "features":{"name":"..."}}],
//	  "edges":      [{"from":"c","to":"f","label":"knows",
//	                  "protectAt":"High-2","protectMode":"surrogate"}],
//	  "surrogates": [{"for":"f","id":"f'","lowest":"Low-2","infoScore":0.5}]
//	}
//
// Lattice pairs are [dominator, dominated]; "Public" is implicit. Node
// protect modes are "surrogate", "hide" or empty (incidences stay
// Visible); edge protectMode likewise, applied at the destination
// incidence below protectAt.
type SpecFile struct {
	Lattice    [][2]string         `json:"lattice"`
	Nodes      []SpecFileNode      `json:"nodes"`
	Edges      []SpecFileEdge      `json:"edges"`
	Surrogates []SpecFileSurrogate `json:"surrogates"`
}

// SpecFileNode describes one node of the spec file.
type SpecFileNode struct {
	ID       string            `json:"id"`
	Lowest   string            `json:"lowest,omitempty"`
	Protect  string            `json:"protect,omitempty"`
	Features map[string]string `json:"features,omitempty"`
}

// SpecFileEdge describes one edge of the spec file.
type SpecFileEdge struct {
	From        string `json:"from"`
	To          string `json:"to"`
	Label       string `json:"label,omitempty"`
	ProtectAt   string `json:"protectAt,omitempty"`
	ProtectMode string `json:"protectMode,omitempty"`
}

// SpecFileSurrogate describes one provider surrogate of the spec file.
type SpecFileSurrogate struct {
	For       string            `json:"for"`
	ID        string            `json:"id"`
	Lowest    string            `json:"lowest,omitempty"`
	InfoScore float64           `json:"infoScore"`
	Features  map[string]string `json:"features,omitempty"`
}

// BuildSpec assembles the account.Spec a parsed spec file describes.
func (sf *SpecFile) BuildSpec() (*account.Spec, error) {
	lat, err := privilege.FromPairs(sf.Lattice)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(lat)
	for _, n := range sf.Nodes {
		b.Node(graph.NodeID(n.ID), privilege.Predicate(n.Lowest), n.Features)
		switch n.Protect {
		case "surrogate":
			b.ProtectRole(graph.NodeID(n.ID), Surrogate)
		case "hide":
			b.ProtectRole(graph.NodeID(n.ID), Hide)
		case "":
		default:
			return nil, fmt.Errorf("core: node %s: unknown protect mode %q", n.ID, n.Protect)
		}
	}
	for _, e := range sf.Edges {
		b.Edge(graph.NodeID(e.From), graph.NodeID(e.To), e.Label)
		if e.ProtectAt != "" {
			mode := Surrogate
			switch e.ProtectMode {
			case "", "surrogate":
			case "hide":
				mode = Hide
			default:
				return nil, fmt.Errorf("core: edge %s->%s: unknown protect mode %q", e.From, e.To, e.ProtectMode)
			}
			b.ProtectEdge(graph.NodeID(e.From), graph.NodeID(e.To), privilege.Predicate(e.ProtectAt), mode)
		}
	}
	for _, s := range sf.Surrogates {
		lowest := privilege.Predicate(s.Lowest)
		if s.Lowest == "" {
			lowest = privilege.Public
		}
		b.WithSurrogate(graph.NodeID(s.For), surrogate.Surrogate{
			ID:        graph.NodeID(s.ID),
			Lowest:    lowest,
			InfoScore: s.InfoScore,
			Features:  s.Features,
		})
	}
	return b.Spec()
}

// ParseSpecJSON decodes a spec file and builds its account.Spec.
func ParseSpecJSON(data []byte) (*account.Spec, error) {
	var sf SpecFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("core: parse spec: %w", err)
	}
	return sf.BuildSpec()
}

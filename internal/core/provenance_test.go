package core

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
)

func seedProvenance(t *testing.T, p *Provenance) {
	t.Helper()
	b := p.Backend()
	_, err := b.Apply(plus.Batch{
		Objects: []plus.Object{
			{ID: "src", Kind: plus.Data, Name: "raw feed"},
			{ID: "proc", Kind: plus.Invocation, Name: "secret analytic", Lowest: "Protected", Protect: "surrogate"},
			{ID: "out", Kind: plus.Data, Name: "derived table"},
		},
		Edges: []plus.Edge{
			{From: "src", To: "proc", Label: "input-to"},
			{From: "proc", To: "out", Label: "generated"},
		},
		Surrogates: []plus.SurrogateSpec{
			{ForID: "proc", ID: "proc'", Name: "an analytic", InfoScore: 0.4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProvenanceFacadeBothBackends(t *testing.T) {
	cases := []struct {
		name string
		opts ProvenanceOptions
	}{
		{"log", ProvenanceOptions{Path: ""}}, // patched below
		{"mem", ProvenanceOptions{}},
	}
	cases[0].opts.Path = filepath.Join(t.TempDir(), "prov.log")

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := OpenProvenance(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			seedProvenance(t, p)

			res, err := p.Lineage(context.Background(), plus.Request{Start: "out", Viewer: privilege.Public})
			if err != nil {
				t.Fatal(err)
			}
			if res.Account == nil || res.Account.Graph.NumNodes() == 0 {
				t.Fatal("empty lineage account")
			}

			cmp, err := p.CompareLineage(context.Background(), "out", privilege.Public)
			if err != nil {
				t.Fatal(err)
			}
			// The surrogate strategy must beat hide on path utility for a
			// public consumer of a protected ancestor (the paper's core
			// claim).
			if cmp.DeltaPathUtility() <= 0 {
				t.Errorf("surrogate - hide path utility = %v, want > 0", cmp.DeltaPathUtility())
			}

			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Lineage(context.Background(), plus.Request{Start: "out"}); !errors.Is(err, plus.ErrClosed) {
				t.Errorf("lineage after close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestProvenanceContextCancellation proves deadlines and cancellation
// reach both query paths through the facade: a pre-cancelled context must
// fail the lineage walk and the PLUSQL executor instead of running to
// completion.
func TestProvenanceContextCancellation(t *testing.T) {
	p, err := OpenProvenance(ProvenanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seedProvenance(t, p)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Lineage(ctx, plus.Request{Start: "out"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled lineage = %v, want context.Canceled", err)
	}
	if _, err := p.Query(ctx, `node(X)`, plusql.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled query = %v, want context.Canceled", err)
	}
	if _, err := p.CompareLineage(ctx, "out", privilege.Public); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled compare = %v, want context.Canceled", err)
	}
	// A live context still answers.
	if _, err := p.Lineage(context.Background(), plus.Request{Start: "out"}); err != nil {
		t.Errorf("live context lineage: %v", err)
	}
}

func TestProvenanceServerHealthz(t *testing.T) {
	p, err := OpenProvenance(ProvenanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seedProvenance(t, p)
	if p.Server() == nil {
		t.Fatal("nil server")
	}
	if p.Backend().NumObjects() != 3 || p.Backend().NumEdges() != 2 {
		t.Errorf("counts = %d objects %d edges, want 3, 2",
			p.Backend().NumObjects(), p.Backend().NumEdges())
	}
}

// TestProvenanceCacheStats drives the facade through a write-heavy mix
// and checks both caches serve incrementally: lineage answers survive
// disjoint writes, and PLUSQL views advance by deltas instead of full
// rebuilds.
func TestProvenanceCacheStats(t *testing.T) {
	p, err := OpenProvenance(ProvenanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seedProvenance(t, p)

	req := plus.Request{Start: "out", Direction: graph.Backward}
	if _, err := p.Lineage(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Query(context.Background(), `node(X)`, plusql.Options{}); err != nil {
		t.Fatal(err)
	}
	// Disjoint writes: the lineage entry stays cached, the view advances.
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("iso%d", i)
		if err := p.Backend().PutObject(plus.Object{ID: id, Kind: plus.Data, Name: id}); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Lineage(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Query(context.Background(), `node(X)`, plusql.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := p.CacheStats()
	if st.Lineage.Hits != 3 || st.Lineage.DeltaEvictions != 0 {
		t.Errorf("lineage stats = %+v, want 3 hits and no evictions from disjoint writes", st.Lineage)
	}
	if st.Views.Advanced != 3 || st.Views.FullBuilds != 1 {
		t.Errorf("view stats = %+v, want 3 advances over 1 full build", st.Views)
	}

	// A write inside the lineage closure evicts that answer.
	if err := p.Backend().PutObject(plus.Object{ID: "src", Kind: plus.Data, Name: "src v2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Lineage(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Lineage.DeltaEvictions != 1 {
		t.Errorf("lineage evictions = %d, want 1 after closure write", st.Lineage.DeltaEvictions)
	}
}

func TestProvenanceQuery(t *testing.T) {
	p, err := OpenProvenance(ProvenanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seedProvenance(t, p)

	// Public: the protected analytic's incidences contract, so its
	// ancestry collapses to a surrogate edge src -> out and "proc" can
	// never be bound.
	rs, err := p.Query(context.Background(), `ancestor*(X, "out")`, plusql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].ID != "src" {
		t.Errorf("Public ancestors of out = %+v, want [src]", rs.Rows)
	}
	rs, err = p.Query(context.Background(), `node(X)`, plusql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rs.Rows {
		if row[0].ID == "proc" {
			t.Error("policy leak: proc bound for Public viewer")
		}
	}

	// Protected sees the original.
	rs, err = p.Query(context.Background(), `ancestor*(X, "out"), kind(X, invocation)`, plusql.Options{Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].ID != "proc" {
		t.Errorf("Protected invocation ancestors = %+v, want [proc]", rs.Rows)
	}

	// Parse errors surface with positions through the facade.
	if _, err := p.Query(context.Background(), `nope(X)`, plusql.Options{}); err == nil {
		t.Error("unknown predicate accepted")
	}
}

func TestProvenanceServerServesQuery(t *testing.T) {
	p, err := OpenProvenance(ProvenanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seedProvenance(t, p)
	srv := httptest.NewServer(p.Server())
	defer srv.Close()

	resp, err := plusql.ClientQuery(plus.NewClient(srv.URL), plusql.QueryRequest{
		Query: `ancestor*(X, "out")`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 || resp.Rows[0][0].ID != "src" {
		t.Errorf("HTTP query rows = %+v, want [src]", resp.Rows)
	}
}

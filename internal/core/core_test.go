package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// builderFixture: a -> secret -> b with a surrogate for the secret node.
func builderFixture() *Builder {
	lat := privilege.TwoLevel()
	return NewBuilder(lat).
		Node("a", "", graph.Features{"name": "alpha"}).
		Node("secret", "Protected", graph.Features{"name": "the source"}).
		Node("b", "", nil).
		Edge("a", "secret", "knows").
		Edge("secret", "b", "knows").
		ProtectRole("secret", Surrogate).
		WithSurrogate("secret", surrogate.Surrogate{
			ID: "secret'", Lowest: privilege.Public, InfoScore: 0.5,
		})
}

func TestBuilderAndProtect(t *testing.T) {
	spec, err := builderFixture().Spec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Protect(spec, privilege.Public, Surrogate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Account.Graph.HasNode("secret") {
		t.Error("sensitive node leaked")
	}
	if !res.Account.Graph.HasNode("secret'") {
		t.Error("surrogate node missing")
	}
	if !res.Account.Graph.HasEdge("a", "b") {
		t.Errorf("surrogate edge missing: %v", res.Account.Graph.Edges())
	}
	if res.Utility.Path <= 0 || res.Utility.Path > 1 {
		t.Errorf("path utility = %v", res.Utility.Path)
	}
	if res.Utility.Node <= 0 || res.Utility.Node > 1 {
		t.Errorf("node utility = %v", res.Utility.Node)
	}
	if res.GraphOpacity < 0 || res.GraphOpacity > 1 {
		t.Errorf("graph opacity = %v", res.GraphOpacity)
	}
}

func TestProtectHideMode(t *testing.T) {
	spec, err := builderFixture().Spec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Protect(spec, privilege.Public, Hide)
	if err != nil {
		t.Fatal(err)
	}
	if res.Account.Graph.NumNodes() != 2 || res.Account.Graph.NumEdges() != 0 {
		t.Errorf("hide account = %v / %v", res.Account.Graph.Nodes(), res.Account.Graph.Edges())
	}
}

func TestCompare(t *testing.T) {
	spec, err := builderFixture().Spec()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(spec, privilege.Public)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DeltaPathUtility() <= 0 {
		t.Errorf("surrogate should beat hide on utility: %v", cmp.DeltaPathUtility())
	}
	// With the whole node hidden, its incident edges hit the Figure 4
	// fixed point opacity=1, so hide maximises whole-graph opacity here;
	// surrogating trades a little opacity for a lot of utility. (The
	// surrogate-beats-hide opacity claim of §6 concerns edge protection,
	// covered by the eval tests.)
	if cmp.Hide.GraphOpacity != 1 {
		t.Errorf("hide graph opacity = %v, want 1 (absent endpoints)", cmp.Hide.GraphOpacity)
	}
	if cmp.Surrogate.GraphOpacity <= 0 || cmp.Surrogate.GraphOpacity > 1 {
		t.Errorf("surrogate graph opacity = %v", cmp.Surrogate.GraphOpacity)
	}
	if cmp.Hide.Mode != Hide || cmp.Surrogate.Mode != Surrogate {
		t.Error("modes mislabeled")
	}
}

func TestBuilderCollectsErrors(t *testing.T) {
	lat := privilege.TwoLevel()
	b := NewBuilder(lat).
		Node("a", "", nil).
		Edge("a", "missing", ""). // dangling edge
		Node("x", "Bogus", nil)   // unknown predicate
	if _, err := b.Spec(); err == nil {
		t.Error("builder errors not reported")
	}
}

func TestProtectEdgeViaBuilder(t *testing.T) {
	lat := privilege.TwoLevel()
	b := NewBuilder(lat).
		Node("a", "", nil).Node("b", "", nil).Node("c", "", nil).
		Edge("a", "b", "").Edge("b", "c", "").
		ProtectEdge("a", "b", "Protected", Surrogate)
	spec, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Protect(spec, privilege.Public, Surrogate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Account.Graph.HasEdge("a", "b") || !res.Account.Graph.HasEdge("a", "c") {
		t.Errorf("edge protection wrong: %v", res.Account.Graph.Edges())
	}
}

func TestWithNullDefaults(t *testing.T) {
	lat := privilege.TwoLevel()
	b := NewBuilder(lat).
		Node("a", "", nil).
		Node("secret", "Protected", nil).
		Node("b", "", nil).
		Edge("a", "secret", "").Edge("secret", "b", "").
		WithNullDefaults()
	spec, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Protect(spec, privilege.Public, Surrogate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Account.Graph.HasNode(surrogate.NullID("secret")) {
		t.Errorf("null surrogate missing: %v", res.Account.Graph.Nodes())
	}
}

func TestModeString(t *testing.T) {
	if Hide.String() != "hide" || Surrogate.String() != "surrogate" {
		t.Error("mode strings wrong")
	}
}

package core

import (
	"math"
	"testing"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/privilege"
)

// TestSpecFilePipelineRunningExample drives the full public pipeline —
// JSON spec file -> builder -> protected accounts -> measures — on the
// paper's running example expressed as a spec file, and checks the Table 1
// path utilities come out of the spec-file path too.
func TestSpecFilePipelineRunningExample(t *testing.T) {
	specJSON := []byte(`{
	  "lattice": [["High-1","Low-2"], ["High-2","Low-2"], ["Low-2","Public"]],
	  "nodes": [
	    {"id":"a1","lowest":"High-1","protect":"surrogate"},
	    {"id":"a2","lowest":"High-1","protect":"surrogate"},
	    {"id":"b"}, {"id":"c"},
	    {"id":"d","lowest":"High-1","protect":"surrogate"},
	    {"id":"e","lowest":"High-1","protect":"surrogate"},
	    {"id":"f","lowest":"High-1","protect":"surrogate"},
	    {"id":"g"}, {"id":"h"}, {"id":"i"}, {"id":"j"}
	  ],
	  "edges": [
	    {"from":"a1","to":"a2"}, {"from":"a2","to":"b"}, {"from":"b","to":"c"},
	    {"from":"c","to":"d"}, {"from":"d","to":"e"}, {"from":"e","to":"f"},
	    {"from":"c","to":"f"}, {"from":"f","to":"g"},
	    {"from":"g","to":"h"}, {"from":"h","to":"i"}, {"from":"i","to":"j"}
	  ],
	  "surrogates": [
	    {"for":"f","id":"f'","lowest":"Low-2","infoScore":0.5,
	     "features":{"name":"a trusted law enforcement source"}}
	  ]
	}`)
	spec, err := ParseSpecJSON(specJSON)
	if err != nil {
		t.Fatal(err)
	}

	// High-2 viewer: the Figure 2d configuration (surrogate node + edge).
	res, err := Protect(spec, "High-2", Surrogate)
	if err != nil {
		t.Fatal(err)
	}
	if err := account.VerifyMaximal(spec, res.Account); err != nil {
		t.Errorf("not maximal: %v", err)
	}
	if got, want := res.Utility.Path, 0.273; math.Abs(got-want) > 0.005 {
		t.Errorf("High-2 path utility = %.3f, want ~%.3f (Table 1, 2d)", got, want)
	}
	if !res.Account.Graph.HasEdge("c", "g") || !res.Account.Graph.HasNode("f'") {
		t.Errorf("2d shape wrong: %v", res.Account.Graph.Edges())
	}
	op := measure.EdgeOpacity(spec, res.Account, fgEdge(), measure.Figure5())
	if math.Abs(op-0.948) > 0.01 {
		t.Errorf("opacity(f->g) = %.3f, want ~.948 (Table 1, 2d)", op)
	}

	// The full-privilege union view reproduces G.
	union, err := ProtectSet(spec, []privilege.Predicate{"High-1", "High-2"}, Surrogate)
	if err != nil {
		t.Fatal(err)
	}
	if !union.Account.Graph.Equal(spec.Graph) {
		t.Error("full-privilege set should reproduce G")
	}
}

func fgEdge() graph.EdgeID { return graph.EdgeID{From: "f", To: "g"} }

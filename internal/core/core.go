// Package core is the library's high-level facade: a builder for
// assembling a sensitive graph with its privilege labels, release policy
// and surrogates, and one-call entry points for generating protected
// accounts and scoring them with the paper's measures.
//
// The subpackages remain the primary API for fine-grained control
// (internal/graph, internal/privilege, internal/policy,
// internal/surrogate, internal/account, internal/measure); core exists so
// that the common path — "protect this graph for that consumer and tell me
// what it cost" — is a few lines.
package core

import (
	"fmt"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// Mode selects the protection strategy.
type Mode int

const (
	// Surrogate runs the paper's Surrogate Generation Algorithm.
	Surrogate Mode = iota
	// Hide runs the naive all-or-nothing baseline.
	Hide
)

func (m Mode) String() string {
	if m == Hide {
		return "hide"
	}
	return "surrogate"
}

// Builder accumulates a graph, its labeling, policy and surrogates. Errors
// are collected and reported once by Spec, so construction code can chain
// calls without per-call error handling.
type Builder struct {
	graph    *graph.Graph
	labeling *privilege.Labeling
	policy   *policy.Policy
	reg      *surrogate.Registry
	errs     []error
}

// NewBuilder starts a builder over the given privilege lattice.
func NewBuilder(lat *privilege.Lattice) *Builder {
	lb := privilege.NewLabeling(lat)
	return &Builder{
		graph:    graph.New(),
		labeling: lb,
		policy:   policy.New(lat),
		reg:      surrogate.NewRegistry(lb),
	}
}

func (b *Builder) fail(err error) {
	if err != nil {
		b.errs = append(b.errs, err)
	}
}

// Node adds a node with optional features; lowest "" means Public.
func (b *Builder) Node(id graph.NodeID, lowest privilege.Predicate, features graph.Features) *Builder {
	b.graph.AddNode(graph.Node{ID: id, Features: features})
	if lowest != "" && lowest != privilege.Public {
		b.fail(b.labeling.SetNode(id, lowest))
	}
	return b
}

// Edge adds a directed edge.
func (b *Builder) Edge(from, to graph.NodeID, label string) *Builder {
	b.fail(b.graph.AddEdge(graph.Edge{From: from, To: to, Label: label}))
	return b
}

// ProtectRole marks all of a node's incidences for consumers that cannot
// see the node: with Surrogate the node's role is hidden but connectivity
// through it is preserved; with Hide its edges are severed.
func (b *Builder) ProtectRole(id graph.NodeID, mode Mode) *Builder {
	below := policy.Surrogate
	if mode == Hide {
		below = policy.Hide
	}
	b.fail(b.policy.SetNodeThreshold(id, b.labeling.LowestNode(id), below))
	return b
}

// ProtectEdge restricts a single edge for consumers below at: Surrogate
// contracts it toward the destination's successors, Hide drops it.
func (b *Builder) ProtectEdge(from, to graph.NodeID, at privilege.Predicate, mode Mode) *Builder {
	b.fail(b.policy.ProtectEdge(graph.EdgeID{From: from, To: to}, at, mode == Surrogate))
	return b
}

// WithSurrogate registers a provider surrogate for a node.
func (b *Builder) WithSurrogate(forID graph.NodeID, s surrogate.Surrogate) *Builder {
	b.fail(b.reg.Add(forID, s))
	return b
}

// WithNullDefaults enables the implicit <null> surrogate fallback.
func (b *Builder) WithNullDefaults() *Builder {
	b.reg.EnableNullDefault()
	return b
}

// Spec finalises the builder. It fails if any accumulated step failed.
func (b *Builder) Spec() (*account.Spec, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("core: builder has %d errors, first: %w", len(b.errs), b.errs[0])
	}
	return &account.Spec{
		Graph:      b.graph,
		Labeling:   b.labeling,
		Policy:     b.policy,
		Surrogates: b.reg,
	}, nil
}

// Result is a protected account together with its quality measures.
type Result struct {
	Spec    *account.Spec
	Account *account.Account
	Mode    Mode
	Utility measure.Utility
	// GraphOpacity is the average opacity over every edge of G under the
	// Figure 5 advanced adversary.
	GraphOpacity float64
}

// Protect generates and scores a protected account of spec for a consumer
// with the given privilege-predicate. The account is verified sound
// (Definition 5) before being returned.
func Protect(spec *account.Spec, viewer privilege.Predicate, mode Mode) (*Result, error) {
	return ProtectSet(spec, []privilege.Predicate{viewer}, mode)
}

// ProtectSet is Protect for a consumer holding several incomparable
// privileges at once (a general high-water set, Definition 6).
func ProtectSet(spec *account.Spec, viewers []privilege.Predicate, mode Mode) (*Result, error) {
	var (
		a   *account.Account
		err error
	)
	switch mode {
	case Hide:
		a, err = account.GenerateHideForSet(spec, viewers)
	case Surrogate:
		a, err = account.GenerateForSet(spec, viewers)
	default:
		return nil, fmt.Errorf("core: unknown mode %v", mode)
	}
	if err != nil {
		return nil, err
	}
	if err := account.VerifySound(spec, a); err != nil {
		return nil, fmt.Errorf("core: generated account failed verification: %w", err)
	}
	adv := measure.Figure5()
	return &Result{
		Spec:         spec,
		Account:      a,
		Mode:         mode,
		Utility:      measure.Utilities(spec, a),
		GraphOpacity: measure.GraphOpacity(spec, a, adv),
	}, nil
}

// Comparison holds both strategies' results for one viewer.
type Comparison struct {
	Hide      *Result
	Surrogate *Result
}

// DeltaPathUtility is surrogate minus hide path utility.
func (c *Comparison) DeltaPathUtility() float64 {
	return c.Surrogate.Utility.Path - c.Hide.Utility.Path
}

// DeltaOpacity is surrogate minus hide whole-graph opacity.
func (c *Comparison) DeltaOpacity() float64 {
	return c.Surrogate.GraphOpacity - c.Hide.GraphOpacity
}

// Compare protects the spec both ways for the viewer.
func Compare(spec *account.Spec, viewer privilege.Predicate) (*Comparison, error) {
	h, err := Protect(spec, viewer, Hide)
	if err != nil {
		return nil, err
	}
	s, err := Protect(spec, viewer, Surrogate)
	if err != nil {
		return nil, err
	}
	return &Comparison{Hide: h, Surrogate: s}, nil
}

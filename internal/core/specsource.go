package core

import (
	"context"
	"fmt"
	"os"

	"repro/internal/account"
	"repro/pkg/plusclient"
)

// LoadSpecSource resolves a provider-side account spec from exactly one
// of a local JSON spec file (the core.SpecFile format) or a live plusd
// server, pulled through the v2 SDK's snapshot endpoint. Both the
// protect and audit CLIs share this resolution, so their -spec/-server
// flags behave identically. token, when non-empty, authenticates the
// server pull (the snapshot endpoint needs the replicate capability on
// an auth-required plusd).
func LoadSpecSource(ctx context.Context, specPath, serverURL, token string) (*account.Spec, error) {
	switch {
	case specPath != "" && serverURL != "":
		return nil, fmt.Errorf("core: -spec and -server are mutually exclusive")
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		spec, err := ParseSpecJSON(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", specPath, err)
		}
		return spec, nil
	case serverURL != "":
		var opts []plusclient.Option
		if token != "" {
			opts = append(opts, plusclient.WithToken(token))
		}
		spec, _, err := plusclient.New(serverURL, opts...).Spec(ctx)
		return spec, err
	default:
		return nil, fmt.Errorf("core: missing -spec or -server (run with -h for usage)")
	}
}

package surrogate

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/privilege"
)

// fixture: Figure 1 lattice; node f has lowest=High-2 so surrogates must
// not dominate High-2.
func fixture(t *testing.T) (*privilege.Labeling, *Registry) {
	t.Helper()
	lb := privilege.NewLabeling(privilege.FigureOneLattice())
	if err := lb.SetNode("f", "High-2"); err != nil {
		t.Fatal(err)
	}
	return lb, NewRegistry(lb)
}

func TestAddValidSurrogate(t *testing.T) {
	_, r := fixture(t)
	s := Surrogate{ID: "f'", Features: graph.Features{"desc": "a trusted source"}, Lowest: "Low-2", InfoScore: 0.6}
	if err := r.Add("f", s); err != nil {
		t.Fatal(err)
	}
	got := r.Surrogates("f")
	if len(got) != 1 || got[0].ID != "f'" {
		t.Fatalf("Surrogates(f) = %v", got)
	}
	if orig, ok := r.OriginalOf("f'"); !ok || orig != "f" {
		t.Errorf("OriginalOf(f') = %v,%v", orig, ok)
	}
}

func TestAddRejectsDominatingLowest(t *testing.T) {
	_, r := fixture(t)
	// lowest(f)=High-2; a surrogate at High-2 dominates (reflexively) and
	// must be rejected.
	err := r.Add("f", Surrogate{ID: "f'", Lowest: "High-2", InfoScore: 0.9})
	if err == nil || !strings.Contains(err.Error(), "dominates") {
		t.Errorf("dominating surrogate accepted: %v", err)
	}
}

func TestAddAllowsIncomparableLowest(t *testing.T) {
	_, r := fixture(t)
	// High-1 is incomparable with lowest(f)=High-2 — explicitly allowed
	// (§3.1 note).
	if err := r.Add("f", Surrogate{ID: "f'", Lowest: "High-1", InfoScore: 0.9}); err != nil {
		t.Errorf("incomparable surrogate rejected: %v", err)
	}
}

func TestAddValidation(t *testing.T) {
	_, r := fixture(t)
	if err := r.Add("f", Surrogate{ID: "", Lowest: "Low-2"}); err == nil {
		t.Error("empty id accepted")
	}
	if err := r.Add("f", Surrogate{ID: "f", Lowest: "Low-2"}); err == nil {
		t.Error("surrogate id equal to original accepted")
	}
	if err := r.Add("f", Surrogate{ID: "f'", Lowest: "Low-2", InfoScore: 1.5}); err == nil {
		t.Error("infoScore > 1 accepted")
	}
	if err := r.Add("f", Surrogate{ID: "f'", Lowest: "Low-2", InfoScore: -0.1}); err == nil {
		t.Error("negative infoScore accepted")
	}
	if err := r.Add("f", Surrogate{ID: "f'", Lowest: "Bogus"}); err == nil {
		t.Error("unknown predicate accepted")
	}
	if err := r.Add("f", Surrogate{ID: "f'", Lowest: "Low-2", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("g", Surrogate{ID: "f'", Lowest: "Low-2"}); err == nil {
		t.Error("duplicate surrogate id across nodes accepted")
	}
}

func TestInfoScoreMonotonicity(t *testing.T) {
	_, r := fixture(t)
	// Low-2 dominates Public, so the Low-2 surrogate must score >= the
	// Public one (§4.1: "surrogates visible via more restrictive
	// privilege-predicates are more informative").
	if err := r.Add("f", Surrogate{ID: "f-low", Lowest: "Low-2", InfoScore: 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("f", Surrogate{ID: "f-pub", Lowest: privilege.Public, InfoScore: 0.9}); err == nil {
		t.Error("less-privileged surrogate with higher score accepted")
	}
	if err := r.Add("f", Surrogate{ID: "f-pub", Lowest: privilege.Public, InfoScore: 0.3}); err != nil {
		t.Errorf("monotone sibling rejected: %v", err)
	}
	// Adding a new dominating sibling below an existing one's score.
	lb := privilege.NewLabeling(privilege.FigureOneLattice())
	r2 := NewRegistry(lb)
	if err := lb.SetNode("x", "High-1"); err != nil {
		t.Fatal(err)
	}
	if err := r2.Add("x", Surrogate{ID: "x-pub", Lowest: privilege.Public, InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := r2.Add("x", Surrogate{ID: "x-low", Lowest: "Low-2", InfoScore: 0.2}); err == nil {
		t.Error("dominating sibling with lower score accepted")
	}
}

func TestSelectPrefersMostDominant(t *testing.T) {
	_, r := fixture(t)
	if err := r.Add("f", Surrogate{ID: "f-pub", Lowest: privilege.Public, InfoScore: 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("f", Surrogate{ID: "f-low", Lowest: "Low-2", InfoScore: 0.7}); err != nil {
		t.Fatal(err)
	}
	s, ok := r.Select("f", "Low-2")
	if !ok || s.ID != "f-low" {
		t.Errorf("Select(Low-2) = %v,%v; want f-low", s.ID, ok)
	}
	// A Public consumer can only see the Public surrogate.
	s, ok = r.Select("f", privilege.Public)
	if !ok || s.ID != "f-pub" {
		t.Errorf("Select(Public) = %v,%v; want f-pub", s.ID, ok)
	}
}

func TestSelectNoCandidate(t *testing.T) {
	_, r := fixture(t)
	if _, ok := r.Select("f", privilege.Public); ok {
		t.Error("Select returned a surrogate with empty registry")
	}
	r.EnableNullDefault()
	s, ok := r.Select("f", privilege.Public)
	if !ok || !s.IsNull || s.ID != NullID("f") {
		t.Errorf("null default not applied: %+v ok=%v", s, ok)
	}
	if len(s.Features) != 0 {
		t.Error("null surrogate should have no features")
	}
	if s.InfoScore != 0 {
		t.Error("null surrogate should score 0")
	}
}

func TestSelectIncomparableTieBreak(t *testing.T) {
	lb := privilege.NewLabeling(privilege.FigureOneLattice())
	r := NewRegistry(lb)
	// Node at an (undeclared-in-test) top: give x lowest High-1 so High-2
	// surrogates are incomparable and allowed; then make a consumer that
	// dominates both candidates.
	if err := lb.SetNode("x", "High-1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("x", Surrogate{ID: "x-a", Lowest: "Low-2", InfoScore: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("x", Surrogate{ID: "x-b", Lowest: "High-2", InfoScore: 0.8}); err != nil {
		t.Fatal(err)
	}
	// High-2 consumer: both visible; High-2 surrogate dominates Low-2 one.
	s, ok := r.Select("x", "High-2")
	if !ok || s.ID != "x-b" {
		t.Errorf("Select(High-2) = %v, want x-b", s.ID)
	}
	// Low-2 consumer: only x-a visible.
	s, ok = r.Select("x", "Low-2")
	if !ok || s.ID != "x-a" {
		t.Errorf("Select(Low-2) = %v, want x-a", s.ID)
	}
}

func TestSelectTieBreakByScoreThenID(t *testing.T) {
	lb := privilege.NewLabeling(privilege.FigureOneLattice())
	r := NewRegistry(lb)
	if err := lb.SetNode("x", "High-1"); err != nil {
		t.Fatal(err)
	}
	// Two surrogates at the same predicate: higher score wins.
	if err := r.Add("x", Surrogate{ID: "x-2", Lowest: "Low-2", InfoScore: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("x", Surrogate{ID: "x-1", Lowest: "Low-2", InfoScore: 0.6}); err != nil {
		t.Fatal(err)
	}
	if s, _ := r.Select("x", "Low-2"); s.ID != "x-1" {
		t.Errorf("score tie-break failed: %v", s.ID)
	}
	// Equal scores: lexicographically smaller id wins.
	r2 := NewRegistry(lb)
	if err := r2.Add("x", Surrogate{ID: "x-b", Lowest: "Low-2", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := r2.Add("x", Surrogate{ID: "x-a", Lowest: "Low-2", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	if s, _ := r2.Select("x", "Low-2"); s.ID != "x-a" {
		t.Errorf("id tie-break failed: %v", s.ID)
	}
}

func TestAddNull(t *testing.T) {
	_, r := fixture(t)
	if err := r.AddNull("f", privilege.Public); err != nil {
		t.Fatal(err)
	}
	s, ok := r.Select("f", privilege.Public)
	if !ok || !s.IsNull || s.InfoScore != 0 {
		t.Errorf("explicit null not selected: %+v ok=%v", s, ok)
	}
}

func TestCloneIndependence(t *testing.T) {
	_, r := fixture(t)
	if err := r.Add("f", Surrogate{ID: "f'", Lowest: "Low-2", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	c := r.Clone()
	if err := c.Add("f", Surrogate{ID: "f''", Lowest: "Low-2", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	if len(r.Surrogates("f")) != 1 {
		t.Error("clone mutation leaked")
	}
	if !c.NullDefaultEnabled() && c.Labeling() != r.Labeling() {
		t.Error("clone should share labeling")
	}
}

func TestNullID(t *testing.T) {
	if NullID("f") != "f∅" {
		t.Errorf("NullID = %s", NullID("f"))
	}
}

// Package surrogate implements the registry of surrogate nodes (§3.1):
// alternate, less sensitive versions of nodes that providers release to
// consumers lacking access to the original.
//
// Each surrogate carries the lowest privilege-predicate via which it is
// visible and an infoScore in [0,1] reflecting how close it is to the
// original (§4.1). The registry enforces the paper's two validity rules:
//
//   - lowest(n') must not dominate lowest(n) — a surrogate may not require
//     more privilege than the original (incomparability is allowed);
//   - infoScores of surrogates for the same node respect the dominance
//     order: if lowest(n') dominates lowest(n”), then
//     infoScore(n') >= infoScore(n”).
package surrogate

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/privilege"
)

// NullID derives the conventional identifier of the <null> surrogate for an
// original node: the original id with a "∅" suffix. The <null> surrogate
// has no features and, by default, an infoScore of zero (§3.1: "a <null>
// surrogate node with no features; <null> can be used as a default
// surrogate").
func NullID(original graph.NodeID) graph.NodeID {
	return original + "∅"
}

// Surrogate is one alternate version of an original node.
type Surrogate struct {
	// ID is the surrogate node's identifier in protected accounts. It must
	// be unique across the registry and distinct from original node ids.
	ID graph.NodeID
	// Features are the (reduced or generalised) attribute-value pairs the
	// surrogate exposes, e.g. <name,"a trusted law enforcement source">.
	Features graph.Features
	// Lowest is the least privilege-predicate via which the surrogate is
	// visible (Definition 3 applied to the surrogate).
	Lowest privilege.Predicate
	// InfoScore in [0,1] reflects closeness to the original node; 1 means
	// identical (§4.1).
	InfoScore float64
	// IsNull marks the featureless default surrogate.
	IsNull bool
}

// Registry maps original nodes to their provider-supplied surrogates.
// There is no requirement that surrogates exist for every node (§3.1).
type Registry struct {
	labeling *privilege.Labeling
	byNode   map[graph.NodeID][]Surrogate
	ids      map[graph.NodeID]graph.NodeID // surrogate id -> original
	// nullDefault, when true, makes Select fall back to a synthesised
	// <null> surrogate (visible via Public) for nodes with no applicable
	// provider surrogate.
	nullDefault bool
}

// NewRegistry returns an empty registry bound to the labeling that defines
// lowest() for original nodes.
func NewRegistry(lb *privilege.Labeling) *Registry {
	return &Registry{
		labeling: lb,
		byNode:   map[graph.NodeID][]Surrogate{},
		ids:      map[graph.NodeID]graph.NodeID{},
	}
}

// EnableNullDefault makes every node implicitly carry a Public <null>
// surrogate used when no provider surrogate applies. The paper allows but
// does not require this ("<null> can be used as a default surrogate").
func (r *Registry) EnableNullDefault() { r.nullDefault = true }

// NullDefaultEnabled reports whether the implicit <null> fallback is on.
func (r *Registry) NullDefaultEnabled() bool { return r.nullDefault }

// Add registers a surrogate for an original node, validating the paper's
// constraints against the labeling and previously registered siblings.
func (r *Registry) Add(original graph.NodeID, s Surrogate) error {
	if s.ID == "" {
		return fmt.Errorf("surrogate: empty surrogate id for %s", original)
	}
	if s.ID == original {
		return fmt.Errorf("surrogate: surrogate id equals original id %s", original)
	}
	if s.InfoScore < 0 || s.InfoScore > 1 {
		return fmt.Errorf("surrogate: infoScore %v for %s out of [0,1]", s.InfoScore, s.ID)
	}
	lat := r.labeling.Lattice()
	if !lat.Known(s.Lowest) {
		return fmt.Errorf("surrogate: unknown predicate %q on %s", s.Lowest, s.ID)
	}
	if prev, dup := r.ids[s.ID]; dup {
		return fmt.Errorf("surrogate: id %s already registered for %s", s.ID, prev)
	}
	origLowest := r.labeling.LowestNode(original)
	if lat.Dominates(s.Lowest, origLowest) {
		return fmt.Errorf("surrogate: lowest(%s)=%s dominates lowest(%s)=%s",
			s.ID, s.Lowest, original, origLowest)
	}
	for _, sib := range r.byNode[original] {
		if sib.Lowest == s.Lowest {
			continue // equal predicates carry no ordering constraint
		}
		if lat.Dominates(s.Lowest, sib.Lowest) && s.InfoScore < sib.InfoScore {
			return fmt.Errorf("surrogate: infoScore(%s)=%v < infoScore(%s)=%v but %s dominates %s",
				s.ID, s.InfoScore, sib.ID, sib.InfoScore, s.Lowest, sib.Lowest)
		}
		if lat.Dominates(sib.Lowest, s.Lowest) && sib.InfoScore < s.InfoScore {
			return fmt.Errorf("surrogate: infoScore(%s)=%v > infoScore(%s)=%v but %s dominates %s",
				s.ID, s.InfoScore, sib.ID, sib.InfoScore, sib.Lowest, s.Lowest)
		}
	}
	s.Features = s.Features.Clone()
	r.byNode[original] = append(r.byNode[original], s)
	r.ids[s.ID] = original
	return nil
}

// AddNull registers an explicit <null> surrogate for the node, visible via
// the given predicate with infoScore 0.
func (r *Registry) AddNull(original graph.NodeID, lowest privilege.Predicate) error {
	return r.Add(original, Surrogate{
		ID:     NullID(original),
		Lowest: lowest,
		IsNull: true,
	})
}

// Surrogates returns the registered surrogates for a node, sorted by ID.
func (r *Registry) Surrogates(original graph.NodeID) []Surrogate {
	out := append([]Surrogate(nil), r.byNode[original]...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OriginalOf resolves a surrogate id back to its original node.
func (r *Registry) OriginalOf(id graph.NodeID) (graph.NodeID, bool) {
	orig, ok := r.ids[id]
	return orig, ok
}

// Select returns the surrogate to stand in for the original node in a
// protected account with high-water predicate p, implementing the dominant
// surrogacy property (Definition 9 part 2): among surrogates visible via p
// (p dominates lowest(s)), choose one whose lowest predicate is maximal;
// ties are broken by higher infoScore, then by id, keeping selection
// deterministic. If incomparable candidates remain, the infoScore/id
// tie-break plays the role of the paper's "domain-dependent function".
//
// The boolean result is false when no surrogate applies (and the null
// default is disabled): the node is simply omitted from the account.
func (r *Registry) Select(original graph.NodeID, p privilege.Predicate) (Surrogate, bool) {
	return r.SelectForSet(original, []privilege.Predicate{p})
}

// SelectForSet generalises Select to a high-water set (Appendix B): a
// surrogate is applicable when some member of the set dominates its lowest
// predicate; among applicable surrogates the dominance-maximal ones are
// preferred, with infoScore and id as deterministic tie-breaks.
func (r *Registry) SelectForSet(original graph.NodeID, hw []privilege.Predicate) (Surrogate, bool) {
	lat := r.labeling.Lattice()
	var candidates []Surrogate
	for _, s := range r.byNode[original] {
		if lat.SomeMemberDominates(hw, s.Lowest) {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		if r.nullDefault {
			return Surrogate{ID: NullID(original), Lowest: privilege.Public, IsNull: true}, true
		}
		return Surrogate{}, false
	}
	// Keep only candidates whose lowest predicate is maximal.
	var maximal []Surrogate
	for _, s := range candidates {
		dominated := false
		for _, t := range candidates {
			if t.ID != s.ID && lat.Dominates(t.Lowest, s.Lowest) && !lat.Dominates(s.Lowest, t.Lowest) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, s)
		}
	}
	sort.Slice(maximal, func(i, j int) bool {
		if maximal[i].InfoScore != maximal[j].InfoScore {
			return maximal[i].InfoScore > maximal[j].InfoScore
		}
		return maximal[i].ID < maximal[j].ID
	})
	return maximal[0], true
}

// Labeling returns the labeling the registry validates against.
func (r *Registry) Labeling() *privilege.Labeling { return r.labeling }

// Clone returns an independent copy of the registry (sharing the labeling).
func (r *Registry) Clone() *Registry {
	c := NewRegistry(r.labeling)
	c.nullDefault = r.nullDefault
	for n, ss := range r.byNode {
		cp := make([]Surrogate, len(ss))
		for i, s := range ss {
			s.Features = s.Features.Clone()
			cp[i] = s
		}
		c.byNode[n] = cp
	}
	for id, orig := range r.ids {
		c.ids[id] = orig
	}
	return c
}

package surrogate

import "repro/internal/graph"

// CompletenessScore is the default infoScore the paper alludes to in §4.1
// ("the value function infoScore ... can depend on completeness, semantic
// analysis, etc. ... we can use defaults"): the fraction of the original
// node's feature pairs the surrogate preserves exactly.
//
//	score = |{(k,v) ∈ original : surrogate[k] == v}| / |original|
//
// A surrogate identical to the original scores 1; a featureless (<null>)
// surrogate scores 0. When the original has no features, any surrogate
// scores 1 (there was nothing to lose). Changed values count as lost:
// generalising <name,"heroin"> to <name,"illegal substance"> drops that
// pair's contribution, which matches the measure's intent even though the
// generalisation retains partial meaning — semantic scoring is the
// provider's to supply.
func CompletenessScore(original, surr graph.Features) float64 {
	if len(original) == 0 {
		return 1
	}
	kept := 0
	for k, v := range original {
		if sv, ok := surr[k]; ok && sv == v {
			kept++
		}
	}
	return float64(kept) / float64(len(original))
}

// ScoreAgainst fills in a zero InfoScore using CompletenessScore against
// the original node's features, returning the (possibly updated)
// surrogate. Explicit nonzero scores are left alone, so providers can
// always override the default.
func ScoreAgainst(original graph.Node, s Surrogate) Surrogate {
	if s.InfoScore == 0 && !s.IsNull {
		s.InfoScore = CompletenessScore(original.Features, s.Features)
	}
	return s
}

package surrogate

import (
	"testing"

	"repro/internal/graph"
)

func TestCompletenessScore(t *testing.T) {
	orig := graph.Features{"name": "Joe", "phone": "123-456-7890"}
	cases := []struct {
		name string
		surr graph.Features
		want float64
	}{
		{"identical", graph.Features{"name": "Joe", "phone": "123-456-7890"}, 1},
		{"dropped one", graph.Features{"name": "Joe"}, 0.5},
		{"empty (null)", nil, 0},
		{"changed value", graph.Features{"name": "Joe", "phone": "redacted"}, 0.5},
		{"extra keys ignored", graph.Features{"name": "Joe", "phone": "123-456-7890", "note": "x"}, 1},
	}
	for _, c := range cases {
		if got := CompletenessScore(orig, c.surr); got != c.want {
			t.Errorf("%s: score = %v, want %v", c.name, got, c.want)
		}
	}
	if got := CompletenessScore(nil, graph.Features{"a": "b"}); got != 1 {
		t.Errorf("featureless original should score 1, got %v", got)
	}
}

func TestScoreAgainst(t *testing.T) {
	orig := graph.Node{ID: "n", Features: graph.Features{"a": "1", "b": "2"}}
	s := ScoreAgainst(orig, Surrogate{ID: "n'", Features: graph.Features{"a": "1"}})
	if s.InfoScore != 0.5 {
		t.Errorf("defaulted score = %v, want 0.5", s.InfoScore)
	}
	// Explicit scores are preserved.
	s = ScoreAgainst(orig, Surrogate{ID: "n'", Features: graph.Features{"a": "1"}, InfoScore: 0.9})
	if s.InfoScore != 0.9 {
		t.Errorf("explicit score overwritten: %v", s.InfoScore)
	}
	// Null surrogates stay at zero.
	s = ScoreAgainst(orig, Surrogate{ID: "n0", IsNull: true})
	if s.InfoScore != 0 {
		t.Errorf("null surrogate scored: %v", s.InfoScore)
	}
}

package audit

import (
	"strings"
	"testing"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// auditFixture: a diamond where each branch is visible to a different
// incomparable predicate:
//
//	src -> l (High-1) -> dst,  src -> r (High-2) -> dst
//
// The High-1 account shows the left branch, the High-2 account the right;
// composition shows both.
func auditFixture(t *testing.T) (*account.Spec, []*account.Account) {
	t.Helper()
	g := graph.New()
	for _, id := range []graph.NodeID{"src", "l", "r", "dst"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("src", "l")
	g.MustAddEdge("l", "dst")
	g.MustAddEdge("src", "r")
	g.MustAddEdge("r", "dst")
	lat := privilege.FigureOneLattice()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	for id, p := range map[graph.NodeID]privilege.Predicate{"l": "High-1", "r": "High-2"} {
		if err := lb.SetNode(id, p); err != nil {
			t.Fatal(err)
		}
		if err := pol.SetNodeThreshold(id, p, policy.Surrogate); err != nil {
			t.Fatal(err)
		}
	}
	spec := &account.Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: surrogate.NewRegistry(lb)}
	var accounts []*account.Account
	for _, p := range []privilege.Predicate{"High-1", "High-2"} {
		a, err := account.Generate(spec, p)
		if err != nil {
			t.Fatal(err)
		}
		accounts = append(accounts, a)
	}
	return spec, accounts
}

func TestComposeUnionsAccounts(t *testing.T) {
	spec, accounts := auditFixture(t)
	comp, err := Compose(spec, accounts...)
	if err != nil {
		t.Fatal(err)
	}
	// The union shows both branches even though each account shows one.
	if !comp.Union.HasEdge("src", "l") || !comp.Union.HasEdge("src", "r") {
		t.Errorf("union edges = %v", comp.Union.Edges())
	}
	if comp.Union.NumNodes() != 4 {
		t.Errorf("union nodes = %v", comp.Union.Nodes())
	}
	// Each direct edge is attributed to the right account.
	if srcs := comp.Sources[graph.EdgeID{From: "src", To: "l"}]; len(srcs) != 1 || srcs[0] != 0 {
		t.Errorf("sources(src->l) = %v", srcs)
	}
	if srcs := comp.Sources[graph.EdgeID{From: "src", To: "r"}]; len(srcs) != 1 || srcs[0] != 1 {
		t.Errorf("sources(src->r) = %v", srcs)
	}
}

func TestComposeRevealedPairs(t *testing.T) {
	spec, accounts := auditFixture(t)
	comp, err := Compose(spec, accounts...)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs like src->r are revealed only by composition for the High-1
	// holder (r is absent from their account). Because unification is by
	// original id, src->l / src->r each exist in exactly one account, so
	// they are not "revealed"; genuinely new pairs are those crossing
	// accounts — here every pair exists in some account, except those
	// involving both l and r at once. l and r are never connected, so the
	// revealed set is empty on this fixture.
	for _, p := range comp.RevealedPairs {
		t.Errorf("unexpected revealed pair %v", p)
	}
}

// A fixture where composition genuinely reveals a pair: a chain whose two
// halves are visible to different predicates.
func TestComposeChainReveal(t *testing.T) {
	g := graph.New()
	for _, id := range []graph.NodeID{"a", "m", "b"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "m")
	g.MustAddEdge("m", "b")
	lat := privilege.FigureOneLattice()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	// a->m visible only to High-1 viewers; m->b only to High-2.
	if err := pol.SetIncidenceThreshold("m", graph.EdgeID{From: "a", To: "m"}, "High-1", policy.Hide); err != nil {
		t.Fatal(err)
	}
	if err := pol.SetIncidenceThreshold("m", graph.EdgeID{From: "m", To: "b"}, "High-2", policy.Hide); err != nil {
		t.Fatal(err)
	}
	spec := &account.Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: surrogate.NewRegistry(lb)}
	var accounts []*account.Account
	for _, p := range []privilege.Predicate{"High-1", "High-2"} {
		a, err := account.Generate(spec, p)
		if err != nil {
			t.Fatal(err)
		}
		accounts = append(accounts, a)
	}
	comp, err := Compose(spec, accounts...)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range comp.RevealedPairs {
		if p[0] == "a" && p[1] == "b" {
			found = true
		}
	}
	if !found {
		t.Errorf("a->b should be revealed only by composition: %v", comp.RevealedPairs)
	}
}

func TestAuditEdgesDegradation(t *testing.T) {
	spec, accounts := auditFixture(t)
	adv := measure.Figure5()
	edges := []graph.EdgeID{{From: "src", To: "l"}, {From: "src", To: "r"}}
	findings, err := AuditEdges(spec, accounts, edges, adv)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %d", len(findings))
	}
	for _, f := range findings {
		if len(f.PerAccountOpacity) != 2 {
			t.Errorf("%v: per-account = %v", f.Edge, f.PerAccountOpacity)
		}
		// The composed view contains each branch edge directly, so its
		// composed opacity is 0 — but one single account already showed
		// it plainly (min per-account = 0), so composition adds nothing
		// beyond the best-informed viewer: degradation 0.
		if f.ComposedOpacity != 0 {
			t.Errorf("%v: composed opacity = %v, want 0 (edge in union)", f.Edge, f.ComposedOpacity)
		}
		if f.Degradation != 0 {
			t.Errorf("%v: degradation = %v, want 0", f.Edge, f.Degradation)
		}
	}
}

// The genuine composition risk: an edge whose endpoints are each known to
// a different consumer class. Every single account scores opacity 1 (an
// endpoint is missing), but the union names both endpoints and the edge
// becomes inferable — positive degradation.
func TestAuditCrossAccountEndpoints(t *testing.T) {
	g := graph.New()
	for _, id := range []graph.NodeID{"f", "g", "pub"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("f", "g")
	g.MustAddEdge("pub", "f")
	g.MustAddEdge("pub", "g")
	lat := privilege.FigureOneLattice()
	lb := privilege.NewLabeling(lat)
	pol := policy.New(lat)
	if err := lb.SetNode("f", "High-1"); err != nil {
		t.Fatal(err)
	}
	if err := lb.SetNode("g", "High-2"); err != nil {
		t.Fatal(err)
	}
	// The f-g relationship itself is releasable to no one below the top.
	if err := pol.SetIncidence("f", graph.EdgeID{From: "f", To: "g"}, "High-1", policy.Hide); err != nil {
		t.Fatal(err)
	}
	if err := pol.SetIncidence("g", graph.EdgeID{From: "f", To: "g"}, "High-2", policy.Hide); err != nil {
		t.Fatal(err)
	}
	spec := &account.Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: surrogate.NewRegistry(lb)}
	var accounts []*account.Account
	for _, p := range []privilege.Predicate{"High-1", "High-2"} {
		a, err := account.Generate(spec, p)
		if err != nil {
			t.Fatal(err)
		}
		accounts = append(accounts, a)
	}
	adv := measure.Figure5()
	findings, err := AuditEdges(spec, accounts, []graph.EdgeID{{From: "f", To: "g"}}, adv)
	if err != nil {
		t.Fatal(err)
	}
	f := findings[0]
	for i, op := range f.PerAccountOpacity {
		if op != 1 {
			t.Errorf("account %d opacity = %v, want 1 (endpoint missing)", i, op)
		}
	}
	if f.ComposedOpacity >= 1 {
		t.Errorf("composed opacity = %v, want < 1 (both endpoints named)", f.ComposedOpacity)
	}
	if f.Degradation <= 0 {
		t.Errorf("degradation = %v, want > 0", f.Degradation)
	}
}

func TestReportRendering(t *testing.T) {
	spec, accounts := auditFixture(t)
	rep, err := Report(spec, []privilege.Predicate{"High-1", "High-2"}, accounts,
		[]graph.EdgeID{{From: "src", To: "l"}}, measure.Figure5())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"composition audit over 2 accounts", "union view", "degradation"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestComposeErrors(t *testing.T) {
	spec, _ := auditFixture(t)
	if _, err := Compose(spec); err == nil {
		t.Error("empty composition accepted")
	}
}

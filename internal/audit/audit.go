// Package audit analyses the composition risk of releasing several
// protected accounts of the same graph: an attacker holding accounts for
// different privilege-predicates can union what they show and infer
// topology that no single account reveals. This extends the paper's §4.2
// opacity analysis (which scores one account at a time) to the
// multi-account setting an administrator actually faces when serving
// several consumer classes.
//
// The audit is worst-case: it assumes the attacker can link surrogate
// nodes across accounts back to a common original (e.g. by position or
// shared features), so account nodes are unified by their corresponding
// original node.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/privilege"
)

// Composition is the union of what a set of accounts reveals, expressed
// over original node ids.
type Composition struct {
	// Union contains a node per original that appears (as itself or via a
	// surrogate) in at least one account, and an edge per ordered pair
	// some account connects directly.
	Union *graph.Graph
	// Sources records which accounts contributed each union edge (indexes
	// into the audited account list).
	Sources map[graph.EdgeID][]int
	// RevealedPairs lists ordered pairs that are connected in the union
	// but in none of the individual accounts — pure composition gain.
	RevealedPairs [][2]graph.NodeID
}

// Compose unions the given accounts of one spec.
func Compose(spec *account.Spec, accounts ...*account.Account) (*Composition, error) {
	if len(accounts) == 0 {
		return nil, fmt.Errorf("audit: no accounts to compose")
	}
	union := graph.New()
	sources := map[graph.EdgeID][]int{}
	for i, a := range accounts {
		for _, id := range a.Graph.Nodes() {
			orig, ok := a.ToOriginal[id]
			if !ok {
				return nil, fmt.Errorf("audit: account %d node %s has no original", i, id)
			}
			if !spec.Graph.HasNode(orig) {
				return nil, fmt.Errorf("audit: account %d references unknown original %s", i, orig)
			}
			union.AddNodeID(orig)
		}
		for _, e := range a.Graph.Edges() {
			oe := graph.Edge{From: a.ToOriginal[e.From], To: a.ToOriginal[e.To]}
			if !union.HasEdge(oe.From, oe.To) {
				if err := union.AddEdge(oe); err != nil {
					return nil, err
				}
			}
			sources[oe.ID()] = append(sources[oe.ID()], i)
		}
	}

	// Composition gain: pairs connected in the union but in no account.
	var revealed [][2]graph.NodeID
	for _, u := range union.Nodes() {
		reach := union.Reachable(u, graph.Forward)
		for v := range reach {
			inSome := false
			for _, a := range accounts {
				au, okU := a.Corresponding(u)
				av, okV := a.Corresponding(v)
				if okU && okV && a.Graph.HasPath(au, av) {
					inSome = true
					break
				}
			}
			if !inSome {
				revealed = append(revealed, [2]graph.NodeID{u, v})
			}
		}
	}
	sort.Slice(revealed, func(i, j int) bool {
		if revealed[i][0] != revealed[j][0] {
			return revealed[i][0] < revealed[j][0]
		}
		return revealed[i][1] < revealed[j][1]
	})
	return &Composition{Union: union, Sources: sources, RevealedPairs: revealed}, nil
}

// asAccount wraps the union as a pseudo-account over original ids so the
// opacity measure can score it: the attacker's combined view.
func (c *Composition) asAccount() *account.Account {
	to := map[graph.NodeID]graph.NodeID{}
	from := map[graph.NodeID]graph.NodeID{}
	scores := map[graph.NodeID]float64{}
	for _, id := range c.Union.Nodes() {
		to[id] = id
		from[id] = id
		scores[id] = 1
	}
	return &account.Account{
		Graph:        c.Union,
		ToOriginal:   to,
		FromOriginal: from,
		InfoScore:    scores,
	}
}

// EdgeOpacity scores one original edge against the combined view: the
// residual difficulty of inferring it once every released account is in
// the attacker's hands.
func (c *Composition) EdgeOpacity(spec *account.Spec, e graph.EdgeID, adv measure.Adversary) float64 {
	return measure.EdgeOpacity(spec, c.asAccount(), e, adv)
}

// Finding summarises the audit of one sensitive edge across the released
// accounts and their composition.
type Finding struct {
	Edge              graph.EdgeID
	PerAccountOpacity []float64
	ComposedOpacity   float64
	// Degradation is min(per-account) − composed: how much protection the
	// combination costs relative to the safest single release.
	Degradation float64
}

// AuditEdges scores each given edge under every account individually and
// under the composition.
func AuditEdges(spec *account.Spec, accounts []*account.Account, edges []graph.EdgeID, adv measure.Adversary) ([]Finding, error) {
	comp, err := Compose(spec, accounts...)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, e := range edges {
		f := Finding{Edge: e}
		minOp := 1.0
		for _, a := range accounts {
			op := measure.EdgeOpacity(spec, a, e, adv)
			f.PerAccountOpacity = append(f.PerAccountOpacity, op)
			if op < minOp {
				minOp = op
			}
		}
		f.ComposedOpacity = comp.EdgeOpacity(spec, e, adv)
		f.Degradation = minOp - f.ComposedOpacity
		out = append(out, f)
	}
	return out, nil
}

// Report renders an audit in text form for administrators.
func Report(spec *account.Spec, viewers []privilege.Predicate, accounts []*account.Account, edges []graph.EdgeID, adv measure.Adversary) (string, error) {
	findings, err := AuditEdges(spec, accounts, edges, adv)
	if err != nil {
		return "", err
	}
	comp, err := Compose(spec, accounts...)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "composition audit over %d accounts (%v)\n", len(accounts), viewers)
	fmt.Fprintf(&b, "union view: %d nodes, %d edges; %d pairs revealed only by composition\n",
		comp.Union.NumNodes(), comp.Union.NumEdges(), len(comp.RevealedPairs))
	for _, p := range comp.RevealedPairs {
		fmt.Fprintf(&b, "  revealed pair: %s -> %s\n", p[0], p[1])
	}
	for _, f := range findings {
		fmt.Fprintf(&b, "edge %-14s composed opacity %.3f (per account:", f.Edge, f.ComposedOpacity)
		for _, op := range f.PerAccountOpacity {
			fmt.Fprintf(&b, " %.3f", op)
		}
		fmt.Fprintf(&b, "), degradation %.3f\n", f.Degradation)
	}
	return b.String(), nil
}

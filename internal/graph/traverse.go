package graph

// Direction selects which adjacency a traversal follows.
type Direction int

const (
	// Forward follows edges from source to destination.
	Forward Direction = iota
	// Backward follows edges from destination to source.
	Backward
	// Undirected follows edges in both directions (weak connectivity).
	Undirected
)

func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	case Undirected:
		return "undirected"
	default:
		return "unknown"
	}
}

func (g *Graph) step(id NodeID, d Direction) []NodeID {
	switch d {
	case Forward:
		return g.out[id]
	case Backward:
		return g.in[id]
	default:
		return append(append([]NodeID(nil), g.out[id]...), g.in[id]...)
	}
}

// Reachable returns the set of nodes reachable from start in the given
// direction, excluding start itself. BFS order; the result set is keyed by
// node id.
func (g *Graph) Reachable(start NodeID, d Direction) map[NodeID]bool {
	if !g.HasNode(start) {
		return nil
	}
	seen := map[NodeID]bool{start: true}
	queue := []NodeID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.step(cur, d) {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	delete(seen, start)
	return seen
}

// ConnectedCount returns |Reachable(start, d)|: the number of nodes other
// than start that are connected to start in the given direction.
func (g *Graph) ConnectedCount(start NodeID, d Direction) int {
	return len(g.Reachable(start, d))
}

// ConnectedPairs returns |ancestors ∪ descendants| of id: the number of
// nodes connected to id by a directed path to or from it. This is the
// connectivity notion behind the Path Utility Measure's %P and the
// "connected pairs" density of §6.1.2 — the only reading under which every
// worked number in §4.1 and the paper's 30–100 density range hold together
// (see DESIGN.md).
func (g *Graph) ConnectedPairs(id NodeID) int {
	if !g.HasNode(id) {
		return 0
	}
	union := g.Reachable(id, Forward)
	for n := range g.Reachable(id, Backward) {
		union[n] = true
	}
	delete(union, id)
	return len(union)
}

// WeakComponents partitions the nodes into weakly connected components.
// Components are returned sorted by their smallest member, and members are
// sorted within each component.
func (g *Graph) WeakComponents() [][]NodeID {
	seen := make(map[NodeID]bool, len(g.nodes))
	var comps [][]NodeID
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		comp := []NodeID{start}
		seen[start] = true
		queue := []NodeID{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range g.step(cur, Undirected) {
				if !seen[next] {
					seen[next] = true
					comp = append(comp, next)
					queue = append(queue, next)
				}
			}
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsWeaklyConnected reports whether the graph has at most one weak
// component (the property the synthetic evaluation graphs must have,
// §6.1.2: "no disconnected subgraphs").
func (g *Graph) IsWeaklyConnected() bool {
	return len(g.WeakComponents()) <= 1
}

// ShortestPath returns one shortest directed path from src to dst as a node
// sequence including both endpoints, or nil if dst is unreachable. Among
// equal-length paths the lexicographically first (by node id at each hop)
// is returned, keeping results deterministic.
func (g *Graph) ShortestPath(src, dst NodeID) []NodeID {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return nil
	}
	if src == dst {
		return []NodeID{src}
	}
	prev := map[NodeID]NodeID{src: src}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.Successors(cur) { // sorted: deterministic tie-break
			if _, ok := prev[next]; ok {
				continue
			}
			prev[next] = cur
			if next == dst {
				return rebuildPath(prev, src, dst)
			}
			queue = append(queue, next)
		}
	}
	return nil
}

func rebuildPath(prev map[NodeID]NodeID, src, dst NodeID) []NodeID {
	var rev []NodeID
	for cur := dst; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Distances returns the BFS hop count from start to every reachable node in
// the given direction (start maps to 0).
func (g *Graph) Distances(start NodeID, d Direction) map[NodeID]int {
	if !g.HasNode(start) {
		return nil
	}
	dist := map[NodeID]int{start: 0}
	queue := []NodeID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.step(cur, d) {
			if _, ok := dist[next]; !ok {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	return dist
}

// TopoSort returns the nodes in a topological order and true, or nil and
// false if the graph contains a directed cycle. Kahn's algorithm with a
// sorted frontier for determinism.
func (g *Graph) TopoSort() ([]NodeID, bool) {
	indeg := make(map[NodeID]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.in[id])
	}
	var frontier []NodeID
	for id, d := range indeg {
		if d == 0 {
			frontier = append(frontier, id)
		}
	}
	sortNodeIDs(frontier)
	var order []NodeID
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		order = append(order, cur)
		next := make([]NodeID, 0, 2)
		for _, v := range g.Successors(cur) {
			indeg[v]--
			if indeg[v] == 0 {
				next = append(next, v)
			}
		}
		// Keep the frontier sorted after appending the newly freed nodes.
		frontier = append(frontier, next...)
		sortNodeIDs(frontier)
	}
	if len(order) != len(g.nodes) {
		return nil, false
	}
	return order, true
}

// IsDAG reports whether the graph is acyclic (provenance graphs are DAGs,
// footnote 1 of the paper).
func (g *Graph) IsDAG() bool {
	_, ok := g.TopoSort()
	return ok
}

// HasPath reports whether a directed path (of length >= 0) exists from src
// to dst.
func (g *Graph) HasPath(src, dst NodeID) bool {
	if src == dst {
		return g.HasNode(src)
	}
	return g.Reachable(src, Forward)[dst]
}

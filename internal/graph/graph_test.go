package graph

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustEdge(t *testing.T, g *Graph, from, to NodeID) {
	t.Helper()
	if err := g.AddEdge(Edge{From: from, To: to}); err != nil {
		t.Fatalf("AddEdge(%s->%s): %v", from, to, err)
	}
}

// chain builds a->b->c->d->e.
func chain(t *testing.T) *Graph {
	t.Helper()
	g := New()
	ids := []NodeID{"a", "b", "c", "d", "e"}
	for _, id := range ids {
		g.AddNodeID(id)
	}
	for i := 0; i+1 < len(ids); i++ {
		mustEdge(t, g, ids[i], ids[i+1])
	}
	return g
}

func TestAddNodeReplacesAndCopiesFeatures(t *testing.T) {
	g := New()
	feats := Features{"name": "Joe"}
	g.AddNode(Node{ID: "n", Features: feats})
	feats["name"] = "mutated"
	n, ok := g.NodeByID("n")
	if !ok {
		t.Fatal("node missing")
	}
	if n.Features["name"] != "Joe" {
		t.Errorf("feature mutated through caller map: got %q", n.Features["name"])
	}
	g.AddNode(Node{ID: "n", Features: Features{"name": "Jane"}})
	n, _ = g.NodeByID("n")
	if n.Features["name"] != "Jane" {
		t.Errorf("AddNode did not replace: got %q", n.Features["name"])
	}
	if g.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	g.AddNodeID("a")
	g.AddNodeID("b")
	if err := g.AddEdge(Edge{From: "a", To: "a"}); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(Edge{From: "a", To: "zzz"}); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := g.AddEdge(Edge{From: "zzz", To: "a"}); err == nil {
		t.Error("edge from unknown node accepted")
	}
	mustEdge(t, g, "a", "b")
	if err := g.AddEdge(Edge{From: "a", To: "b"}); err == nil {
		t.Error("duplicate edge accepted")
	}
	// Reverse direction is a distinct edge.
	mustEdge(t, g, "b", "a")
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestRemoveEdgeAndNode(t *testing.T) {
	g := chain(t)
	if !g.RemoveEdge("a", "b") {
		t.Fatal("RemoveEdge a->b returned false")
	}
	if g.RemoveEdge("a", "b") {
		t.Error("second RemoveEdge returned true")
	}
	if g.HasEdge("a", "b") {
		t.Error("edge still present after removal")
	}
	if g.OutDegree("a") != 0 || g.InDegree("b") != 0 {
		t.Error("adjacency not updated after edge removal")
	}

	if !g.RemoveNode("c") {
		t.Fatal("RemoveNode c returned false")
	}
	if g.HasNode("c") || g.HasEdge("b", "c") || g.HasEdge("c", "d") {
		t.Error("node removal left dangling state")
	}
	if g.RemoveNode("c") {
		t.Error("second RemoveNode returned true")
	}
	if g.NumNodes() != 4 || g.NumEdges() != 1 {
		t.Errorf("after removals: nodes=%d edges=%d, want 4,1", g.NumNodes(), g.NumEdges())
	}
}

func TestAdjacencyAccessors(t *testing.T) {
	g := New()
	for _, id := range []NodeID{"x", "a", "b", "c"} {
		g.AddNodeID(id)
	}
	mustEdge(t, g, "x", "b")
	mustEdge(t, g, "x", "a")
	mustEdge(t, g, "c", "x")

	if got := g.Successors("x"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Successors(x) = %v, want [a b]", got)
	}
	if got := g.Predecessors("x"); len(got) != 1 || got[0] != "c" {
		t.Errorf("Predecessors(x) = %v, want [c]", got)
	}
	if got := g.Neighbors("x"); len(got) != 3 {
		t.Errorf("Neighbors(x) = %v, want 3 nodes", got)
	}
	if g.Degree("x") != 3 || g.OutDegree("x") != 2 || g.InDegree("x") != 1 {
		t.Errorf("degrees wrong: %d/%d/%d", g.Degree("x"), g.OutDegree("x"), g.InDegree("x"))
	}
}

func TestReachableDirections(t *testing.T) {
	g := chain(t)
	fwd := g.Reachable("c", Forward)
	if len(fwd) != 2 || !fwd["d"] || !fwd["e"] {
		t.Errorf("forward from c = %v", fwd)
	}
	back := g.Reachable("c", Backward)
	if len(back) != 2 || !back["a"] || !back["b"] {
		t.Errorf("backward from c = %v", back)
	}
	und := g.Reachable("c", Undirected)
	if len(und) != 4 {
		t.Errorf("undirected from c = %v, want 4 nodes", und)
	}
	if g.Reachable("missing", Forward) != nil {
		t.Error("Reachable on missing node should be nil")
	}
}

func TestWeakComponents(t *testing.T) {
	g := chain(t)
	g.AddNodeID("z1")
	g.AddNodeID("z2")
	mustEdge(t, g, "z1", "z2")
	comps := g.WeakComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 5 || len(comps[1]) != 2 {
		t.Errorf("component sizes = %d,%d want 5,2", len(comps[0]), len(comps[1]))
	}
	if g.IsWeaklyConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestShortestPath(t *testing.T) {
	g := chain(t)
	// Add a shortcut a->c; shortest a->e is then a,c,d,e.
	mustEdge(t, g, "a", "c")
	p := g.ShortestPath("a", "e")
	want := []NodeID{"a", "c", "d", "e"}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if p := g.ShortestPath("e", "a"); p != nil {
		t.Errorf("path e->a = %v, want nil", p)
	}
	if p := g.ShortestPath("a", "a"); len(p) != 1 || p[0] != "a" {
		t.Errorf("path a->a = %v, want [a]", p)
	}
}

func TestDistances(t *testing.T) {
	g := chain(t)
	d := g.Distances("a", Forward)
	for i, id := range []NodeID{"a", "b", "c", "d", "e"} {
		if d[id] != i {
			t.Errorf("dist(a,%s) = %d, want %d", id, d[id], i)
		}
	}
	if len(g.Distances("e", Forward)) != 1 {
		t.Error("e should reach only itself forward")
	}
}

func TestTopoSortAndDAG(t *testing.T) {
	g := chain(t)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("chain reported cyclic")
	}
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("topo order violates edge %s", e.ID())
		}
	}
	if !g.IsDAG() {
		t.Error("chain not a DAG")
	}
	mustEdge(t, g, "e", "a") // close the cycle
	if _, ok := g.TopoSort(); ok {
		t.Error("cyclic graph topo-sorted")
	}
	if g.IsDAG() {
		t.Error("cyclic graph reported acyclic")
	}
}

func TestHasPath(t *testing.T) {
	g := chain(t)
	if !g.HasPath("a", "e") {
		t.Error("a should reach e")
	}
	if g.HasPath("e", "a") {
		t.Error("e should not reach a")
	}
	if !g.HasPath("c", "c") {
		t.Error("node should reach itself")
	}
	if g.HasPath("zz", "zz") {
		t.Error("missing node reaches itself")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := chain(t)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.RemoveNode("c")
	if g.NumNodes() != 5 {
		t.Error("mutating clone affected original")
	}
	if g.Equal(c) {
		t.Error("Equal true after divergence")
	}
}

func TestEqualComparesFeaturesAndLabels(t *testing.T) {
	a, b := New(), New()
	a.AddNode(Node{ID: "n", Features: Features{"k": "v"}})
	b.AddNode(Node{ID: "n", Features: Features{"k": "other"}})
	if a.Equal(b) {
		t.Error("feature mismatch not detected")
	}
	b.AddNode(Node{ID: "n", Features: Features{"k": "v"}})
	a.AddNodeID("m")
	b.AddNodeID("m")
	if err := a.AddEdge(Edge{From: "n", To: "m", Label: "input-to"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(Edge{From: "n", To: "m", Label: "derived"}); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Error("label mismatch not detected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := chain(t)
	g.AddNode(Node{ID: "f", Features: Features{"name": "Joe", "phone": "123"}})
	mustEdge(t, g, "e", "f")
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(&back) {
		t.Error("round trip changed the graph")
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"nodes":[{"id":""}]}`), &g); err == nil {
		t.Error("empty node id accepted")
	}
	if err := json.Unmarshal([]byte(`{"nodes":[{"id":"a"}],"edges":[{"from":"a","to":"zz"}]}`), &g); err == nil {
		t.Error("dangling edge accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &g); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDOTOutput(t *testing.T) {
	g := New()
	g.AddNode(Node{ID: "a", Features: Features{"label": "Alpha"}})
	g.AddNodeID("b")
	mustEdge(t, g, "a", "b")
	dot := g.DOT("test")
	for _, want := range []string{`digraph "test"`, `"a" [label="Alpha"]`, `"a" -> "b"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q in:\n%s", want, dot)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := chain(t)
	g.AddNodeID("lone")
	s := g.ComputeStats()
	if s.Nodes != 6 || s.Edges != 4 {
		t.Errorf("stats size wrong: %+v", s)
	}
	if s.WeakComponents != 2 || s.IsolatedNodes != 1 || !s.IsDAG {
		t.Errorf("stats structure wrong: %+v", s)
	}
	// Chain reachability: 4+3+2+1+0 for a..e plus 0 for lone = 10/6.
	if got, want := s.MeanReachable, 10.0/6.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("MeanReachable = %v, want %v", got, want)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestFeaturesHelpers(t *testing.T) {
	f := Features{"b": "2", "a": "1"}
	if got := f.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Keys = %v", got)
	}
	c := f.Clone()
	c["a"] = "mut"
	if f["a"] != "1" {
		t.Error("Clone shares storage")
	}
	if !f.Equal(Features{"a": "1", "b": "2"}) {
		t.Error("Equal false for equal maps")
	}
	if f.Equal(Features{"a": "1"}) {
		t.Error("Equal true for different sizes")
	}
	var nilF Features
	if nilF.Clone() != nil {
		t.Error("nil clone should be nil")
	}
	if !nilF.Equal(Features{}) {
		t.Error("nil and empty should be Equal")
	}
}

func TestEdgeIDHelpers(t *testing.T) {
	e := EdgeID{From: "a", To: "b"}
	if e.String() != "a->b" {
		t.Errorf("String = %q", e.String())
	}
	if r := e.Reverse(); r.From != "b" || r.To != "a" {
		t.Errorf("Reverse = %v", r)
	}
}

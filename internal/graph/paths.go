package graph

import "sort"

// Ancestors returns all nodes with a directed path to id, sorted.
func (g *Graph) Ancestors(id NodeID) []NodeID {
	return setToSorted(g.Reachable(id, Backward))
}

// Descendants returns all nodes reachable from id, sorted.
func (g *Graph) Descendants(id NodeID) []NodeID {
	return setToSorted(g.Reachable(id, Forward))
}

func setToSorted(set map[NodeID]bool) []NodeID {
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sortNodeIDs(out)
	return out
}

// Induced returns the subgraph induced by the given node set: those nodes
// (with their features) and every edge of g whose endpoints are both in
// the set.
func (g *Graph) Induced(ids []NodeID) *Graph {
	sub := New()
	keep := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		if n, ok := g.NodeByID(id); ok {
			keep[id] = true
			sub.AddNode(n)
		}
	}
	for _, e := range g.Edges() {
		if keep[e.From] && keep[e.To] {
			// Both endpoints kept, so the insert cannot fail.
			if err := sub.AddEdge(e); err != nil {
				panic(err)
			}
		}
	}
	return sub
}

// TransitiveClosure returns, for every node, the set of nodes it reaches.
// Intended for analysis and tests; O(n·(n+e)).
func (g *Graph) TransitiveClosure() map[NodeID]map[NodeID]bool {
	out := make(map[NodeID]map[NodeID]bool, g.NumNodes())
	for _, id := range g.Nodes() {
		out[id] = g.Reachable(id, Forward)
	}
	return out
}

// RedundantEdges returns the edges (u,v) for which a longer directed path
// u -> ... -> v exists that avoids the edge itself — the edges a
// transitive reduction would delete. On protected accounts these are
// exactly the surrogate edges that restate connectivity already present,
// which the redundancy analysis in internal/eval counts.
func (g *Graph) RedundantEdges() []EdgeID {
	var out []EdgeID
	for _, e := range g.Edges() {
		if g.hasPathAvoiding(e.From, e.To, e.ID()) {
			out = append(out, e.ID())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// hasPathAvoiding reports a directed path src -> dst that never traverses
// the excluded edge.
func (g *Graph) hasPathAvoiding(src, dst NodeID, excluded EdgeID) bool {
	seen := map[NodeID]bool{src: true}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.out[cur] {
			if cur == excluded.From && next == excluded.To {
				continue
			}
			if next == dst {
				return true
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// TransitiveReduction returns a copy of the graph with every redundant
// edge removed. For DAGs this is the unique minimal graph with the same
// reachability.
func (g *Graph) TransitiveReduction() *Graph {
	red := g.Clone()
	for _, e := range g.RedundantEdges() {
		red.RemoveEdge(e.From, e.To)
	}
	return red
}

// SimplePaths enumerates directed simple paths from src to dst, up to the
// given limit (0 means no limit) and maximum length in edges (0 means no
// bound). Paths are emitted in lexicographic successor order, each as a
// node sequence including both endpoints. Intended for small graphs and
// tests; the worst case is exponential.
func (g *Graph) SimplePaths(src, dst NodeID, limit, maxLen int) [][]NodeID {
	if !g.HasNode(src) || !g.HasNode(dst) || src == dst {
		return nil
	}
	var out [][]NodeID
	onPath := map[NodeID]bool{src: true}
	path := []NodeID{src}
	var dfs func(cur NodeID) bool // returns false when the limit is hit
	dfs = func(cur NodeID) bool {
		if maxLen > 0 && len(path)-1 >= maxLen {
			return true
		}
		for _, next := range g.Successors(cur) {
			if onPath[next] {
				continue
			}
			path = append(path, next)
			if next == dst {
				cp := make([]NodeID, len(path))
				copy(cp, path)
				out = append(out, cp)
				path = path[:len(path)-1]
				if limit > 0 && len(out) >= limit {
					return false
				}
				continue
			}
			onPath[next] = true
			ok := dfs(next)
			onPath[next] = false
			path = path[:len(path)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(src)
	return out
}

// LongestPathDAG returns the length in edges of the longest directed path
// in the graph and one such path. It requires a DAG; ok is false
// otherwise.
func (g *Graph) LongestPathDAG() (length int, path []NodeID, ok bool) {
	order, isDAG := g.TopoSort()
	if !isDAG {
		return 0, nil, false
	}
	dist := make(map[NodeID]int, len(order))
	prev := make(map[NodeID]NodeID, len(order))
	bestEnd := NodeID("")
	best := 0
	for _, id := range order {
		if _, ok := dist[id]; !ok {
			dist[id] = 0
		}
		if bestEnd == "" {
			bestEnd = id
		}
		for _, next := range g.Successors(id) {
			if dist[id]+1 > dist[next] {
				dist[next] = dist[id] + 1
				prev[next] = id
				if dist[next] > best {
					best = dist[next]
					bestEnd = next
				}
			}
		}
	}
	if bestEnd == "" {
		return 0, nil, g.NumNodes() == 0
	}
	var rev []NodeID
	for cur := bestEnd; ; {
		rev = append(rev, cur)
		p, ok := prev[cur]
		if !ok {
			break
		}
		cur = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return best, rev, true
}

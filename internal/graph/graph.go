// Package graph implements the directed, attributed graph model that the
// rest of the library is built on: nodes carrying feature (attribute,
// value) pairs, directed edges, adjacency indexes and the traversal
// primitives (reachability, weak components, shortest paths) that the
// protected-account algorithms and the utility/opacity measures need.
//
// The model follows §2 of the paper: a graph G = (N, E) of nodes and
// directed edges; bi-directional relationships are modelled as two
// directed edges; node features are attribute-value pairs.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/intern"
)

// NodeID identifies a node within one graph. IDs are opaque strings chosen
// by the caller (e.g. "c", "f'", or a provenance object UUID).
type NodeID string

// EdgeID identifies a directed edge by its endpoints. A graph holds at most
// one edge per ordered (From, To) pair; parallel edges are not needed by the
// paper's model and are rejected on insert.
type EdgeID struct {
	From NodeID
	To   NodeID
}

// String renders the edge as "from->to".
func (e EdgeID) String() string { return string(e.From) + "->" + string(e.To) }

// Reverse returns the edge identifier with the endpoints swapped.
func (e EdgeID) Reverse() EdgeID { return EdgeID{From: e.To, To: e.From} }

// Features is the attribute-value map attached to a node ("timestamp",
// "author", ... per §2). A nil Features map is equivalent to an empty one.
type Features map[string]string

// Clone returns an independent copy of the feature map.
func (f Features) Clone() Features {
	if f == nil {
		return nil
	}
	out := make(Features, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Equal reports whether two feature maps contain exactly the same pairs.
func (f Features) Equal(g Features) bool {
	if len(f) != len(g) {
		return false
	}
	for k, v := range f {
		if gv, ok := g[k]; !ok || gv != v {
			return false
		}
	}
	return true
}

// Interned returns an independent copy of the feature map whose keys and
// values are the canonical interned strings (intern.Canon): value-equal to
// the originals, but every graph holding the same attribute or value
// shares one backing array, and each carries a symbol for integer
// comparison in the secondary indexes.
func (f Features) Interned() Features {
	if f == nil {
		return nil
	}
	out := make(Features, len(f))
	for k, v := range f {
		out[intern.Canon(k)] = intern.Canon(v)
	}
	return out
}

// Keys returns the attribute names in sorted order.
func (f Features) Keys() []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Node is a graph node: an identifier plus its feature set. Nodes are value
// types; Graph stores copies, so mutating a Node after insertion does not
// change the graph.
type Node struct {
	ID       NodeID
	Features Features
}

// Clone returns a deep copy of the node.
func (n Node) Clone() Node {
	return Node{ID: n.ID, Features: n.Features.Clone()}
}

// Edge is a directed edge together with an optional label (e.g. the
// provenance relationship kind such as "input-to").
type Edge struct {
	From  NodeID
	To    NodeID
	Label string
}

// ID returns the edge's identifier.
func (e Edge) ID() EdgeID { return EdgeID{From: e.From, To: e.To} }

// Graph is a mutable directed graph. It maintains forward and reverse
// adjacency indexes so that both traversal directions are O(out-degree) /
// O(in-degree). Graph is not safe for concurrent mutation; concurrent
// readers are safe once mutation has stopped.
type Graph struct {
	nodes map[NodeID]Node
	edges map[EdgeID]Edge
	out   map[NodeID][]NodeID // successors, sorted lazily on demand
	in    map[NodeID][]NodeID // predecessors
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]Node),
		edges: make(map[EdgeID]Edge),
		out:   make(map[NodeID][]NodeID),
		in:    make(map[NodeID][]NodeID),
	}
}

// NumNodes returns |N|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode inserts a node, replacing any node with the same ID. The node's
// feature map is copied, with keys and values canonicalised through the
// global intern table so every graph shares one backing string per
// distinct attribute or value.
func (g *Graph) AddNode(n Node) {
	n.Features = n.Features.Interned()
	g.nodes[n.ID] = n
	if _, ok := g.out[n.ID]; !ok {
		g.out[n.ID] = nil
		g.in[n.ID] = nil
	}
}

// AddNodeID inserts a featureless node with the given id if not present.
func (g *Graph) AddNodeID(id NodeID) {
	if _, ok := g.nodes[id]; !ok {
		g.AddNode(Node{ID: id})
	}
}

// HasNode reports whether id names a node of the graph.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.nodes[id]
	return ok
}

// NodeByID returns the node with the given id.
func (g *Graph) NodeByID(id NodeID) (Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// AddEdge inserts a directed edge. Both endpoints must already exist and a
// duplicate (From,To) pair is an error, as is a self loop.
func (g *Graph) AddEdge(e Edge) error {
	if e.From == e.To {
		return fmt.Errorf("graph: self loop %s rejected", e.From)
	}
	if !g.HasNode(e.From) {
		return fmt.Errorf("graph: edge %s: unknown source node", e.ID())
	}
	if !g.HasNode(e.To) {
		return fmt.Errorf("graph: edge %s: unknown destination node", e.ID())
	}
	id := e.ID()
	if _, dup := g.edges[id]; dup {
		return fmt.Errorf("graph: duplicate edge %s", id)
	}
	g.edges[id] = e
	g.out[e.From] = append(g.out[e.From], e.To)
	g.in[e.To] = append(g.in[e.To], e.From)
	return nil
}

// MustAddEdge is AddEdge for static construction code; it panics on error.
func (g *Graph) MustAddEdge(from, to NodeID) {
	if err := g.AddEdge(Edge{From: from, To: to}); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the directed edge from->to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	_, ok := g.edges[EdgeID{From: from, To: to}]
	return ok
}

// EdgeByID returns the edge with the given endpoints.
func (g *Graph) EdgeByID(id EdgeID) (Edge, bool) {
	e, ok := g.edges[id]
	return e, ok
}

// RemoveEdge deletes the directed edge from->to if present and reports
// whether an edge was removed.
func (g *Graph) RemoveEdge(from, to NodeID) bool {
	id := EdgeID{From: from, To: to}
	if _, ok := g.edges[id]; !ok {
		return false
	}
	delete(g.edges, id)
	g.out[from] = removeFirst(g.out[from], to)
	g.in[to] = removeFirst(g.in[to], from)
	return true
}

// RemoveNode deletes a node and every edge incident to it, reporting
// whether the node existed.
func (g *Graph) RemoveNode(id NodeID) bool {
	if !g.HasNode(id) {
		return false
	}
	for _, to := range append([]NodeID(nil), g.out[id]...) {
		g.RemoveEdge(id, to)
	}
	for _, from := range append([]NodeID(nil), g.in[id]...) {
		g.RemoveEdge(from, id)
	}
	delete(g.nodes, id)
	delete(g.out, id)
	delete(g.in, id)
	return true
}

func removeFirst(s []NodeID, v NodeID) []NodeID {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Nodes returns all node IDs in sorted order. Sorting keeps every consumer
// of the library deterministic, which matters for reproducible experiments.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	return ids
}

// Edges returns all edges sorted by (From, To).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	return es
}

// Successors returns the targets of the node's outgoing edges, sorted.
func (g *Graph) Successors(id NodeID) []NodeID {
	return sortedCopy(g.out[id])
}

// Predecessors returns the sources of the node's incoming edges, sorted.
func (g *Graph) Predecessors(id NodeID) []NodeID {
	return sortedCopy(g.in[id])
}

// Neighbors returns the union of successors and predecessors, sorted and
// de-duplicated. This is the undirected adjacency used by weak-connectivity
// computations.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	seen := make(map[NodeID]bool, len(g.out[id])+len(g.in[id]))
	var ns []NodeID
	for _, v := range g.out[id] {
		if !seen[v] {
			seen[v] = true
			ns = append(ns, v)
		}
	}
	for _, v := range g.in[id] {
		if !seen[v] {
			seen[v] = true
			ns = append(ns, v)
		}
	}
	sortNodeIDs(ns)
	return ns
}

// OutDegree returns the number of outgoing edges of id.
func (g *Graph) OutDegree(id NodeID) int { return len(g.out[id]) }

// InDegree returns the number of incoming edges of id.
func (g *Graph) InDegree(id NodeID) int { return len(g.in[id]) }

// Degree returns the total number of incident edges (in + out).
func (g *Graph) Degree(id NodeID) int { return len(g.out[id]) + len(g.in[id]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, n := range g.nodes {
		c.AddNode(n)
	}
	for _, e := range g.edges {
		if err := c.AddEdge(e); err != nil {
			// Unreachable: the source graph is well formed by construction.
			panic(err)
		}
	}
	return c
}

// CloneShared returns an independent copy of the graph's structure that
// SHARES the node feature maps with the source. The clone may be mutated
// freely (nodes and edges added or removed) without affecting the source,
// but callers must treat the feature maps of carried-over nodes as
// immutable — replacing a node via AddNode is fine, writing into a
// returned Features map is not. This is the fast path for incremental
// account maintenance, which patches a copy while readers hold the
// original.
func (g *Graph) CloneShared() *Graph {
	c := &Graph{
		nodes: make(map[NodeID]Node, len(g.nodes)),
		edges: make(map[EdgeID]Edge, len(g.edges)),
		out:   make(map[NodeID][]NodeID, len(g.out)),
		in:    make(map[NodeID][]NodeID, len(g.in)),
	}
	for id, n := range g.nodes {
		c.nodes[id] = n
	}
	for id, e := range g.edges {
		c.edges[id] = e
	}
	for id, s := range g.out {
		// Exact-length copies so later appends reallocate instead of
		// growing into a backing array another clone could share.
		cp := make([]NodeID, len(s))
		copy(cp, s)
		c.out[id] = cp
	}
	for id, s := range g.in {
		cp := make([]NodeID, len(s))
		copy(cp, s)
		c.in[id] = cp
	}
	return c
}

// Equal reports structural equality: same node IDs with equal features and
// the same edge set (labels included).
func (g *Graph) Equal(h *Graph) bool {
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for id, n := range g.nodes {
		hn, ok := h.nodes[id]
		if !ok || !n.Features.Equal(hn.Features) {
			return false
		}
	}
	for id, e := range g.edges {
		he, ok := h.edges[id]
		if !ok || he.Label != e.Label {
			return false
		}
	}
	return true
}

func sortedCopy(s []NodeID) []NodeID {
	out := append([]NodeID(nil), s...)
	sortNodeIDs(out)
	return out
}

func sortNodeIDs(s []NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

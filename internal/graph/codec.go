package graph

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// jsonGraph is the wire representation used by MarshalJSON/UnmarshalJSON
// and by the cmd/protect CLI input format.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID       string            `json:"id"`
	Features map[string]string `json:"features,omitempty"`
}

type jsonEdge struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Label string `json:"label,omitempty"`
}

// MarshalJSON encodes the graph as {"nodes":[...],"edges":[...]} with
// deterministic ordering.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{}
	for _, id := range g.Nodes() {
		n, _ := g.NodeByID(id)
		jg.Nodes = append(jg.Nodes, jsonNode{ID: string(n.ID), Features: n.Features})
	}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, jsonEdge{From: string(e.From), To: string(e.To), Label: e.Label})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously encoded by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	*g = *New()
	for _, jn := range jg.Nodes {
		if jn.ID == "" {
			return fmt.Errorf("graph: decode: node with empty id")
		}
		g.AddNode(Node{ID: NodeID(jn.ID), Features: jn.Features})
	}
	for _, je := range jg.Edges {
		if err := g.AddEdge(Edge{From: NodeID(je.From), To: NodeID(je.To), Label: je.Label}); err != nil {
			return err
		}
	}
	return nil
}

// DOT renders the graph in Graphviz dot syntax. Node feature "label" (if
// present) becomes the display label; otherwise the node id is used.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, id := range g.Nodes() {
		n, _ := g.NodeByID(id)
		label := string(id)
		if l, ok := n.Features["label"]; ok {
			label = l
		}
		fmt.Fprintf(&b, "  %q [label=%q];\n", string(id), label)
	}
	for _, e := range g.Edges() {
		if e.Label != "" {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", string(e.From), string(e.To), e.Label)
		} else {
			fmt.Fprintf(&b, "  %q -> %q;\n", string(e.From), string(e.To))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarises a graph for reporting: size, degree distribution and the
// reachability density used by the synthetic workload ("connected pairs").
type Stats struct {
	Nodes           int
	Edges           int
	WeakComponents  int
	MaxDegree       int
	MeanDegree      float64
	MeanReachable   float64 // avg |descendants| per node (directed)
	MeanConnected   float64 // avg |weak-component mates| per node
	IsDAG           bool
	IsolatedNodes   int
	DegreeHistogram map[int]int
}

// ComputeStats walks the whole graph once per metric; intended for offline
// reporting, not hot paths.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:           g.NumNodes(),
		Edges:           g.NumEdges(),
		DegreeHistogram: make(map[int]int),
	}
	s.WeakComponents = len(g.WeakComponents())
	s.IsDAG = g.IsDAG()
	var degSum, reachSum, connSum int
	for _, id := range g.Nodes() {
		d := g.Degree(id)
		degSum += d
		s.DegreeHistogram[d]++
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.IsolatedNodes++
		}
		reachSum += g.ConnectedCount(id, Forward)
		connSum += g.ConnectedCount(id, Undirected)
	}
	if s.Nodes > 0 {
		s.MeanDegree = float64(degSum) / float64(s.Nodes)
		s.MeanReachable = float64(reachSum) / float64(s.Nodes)
		s.MeanConnected = float64(connSum) / float64(s.Nodes)
	}
	return s
}

// String renders the stats on one line for logs and experiment tables.
func (s Stats) String() string {
	degrees := make([]int, 0, len(s.DegreeHistogram))
	for d := range s.DegreeHistogram {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	return fmt.Sprintf("nodes=%d edges=%d components=%d dag=%v meanDegree=%.2f meanReachable=%.2f",
		s.Nodes, s.Edges, s.WeakComponents, s.IsDAG, s.MeanDegree, s.MeanReachable)
}

package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds a->b, a->c, b->d, c->d, a->d (a redundant shortcut).
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("a", "c")
	g.MustAddEdge("b", "d")
	g.MustAddEdge("c", "d")
	g.MustAddEdge("a", "d")
	return g
}

func TestAncestorsDescendants(t *testing.T) {
	g := diamond(t)
	if got := g.Ancestors("d"); len(got) != 3 {
		t.Errorf("Ancestors(d) = %v", got)
	}
	if got := g.Descendants("a"); len(got) != 3 {
		t.Errorf("Descendants(a) = %v", got)
	}
	if got := g.Ancestors("a"); len(got) != 0 {
		t.Errorf("Ancestors(a) = %v", got)
	}
	if got := g.ConnectedPairs("b"); got != 2 {
		t.Errorf("ConnectedPairs(b) = %d, want 2 (a and d)", got)
	}
}

func TestInduced(t *testing.T) {
	g := diamond(t)
	g.AddNode(Node{ID: "b", Features: Features{"k": "v"}})
	g.MustAddEdge("b", "a") // make b's features and extra edge visible... (b->a creates a cycle; fine for Induced)
	sub := g.Induced([]NodeID{"a", "b", "d", "zzz"})
	if sub.NumNodes() != 3 {
		t.Errorf("induced nodes = %v", sub.Nodes())
	}
	if !sub.HasEdge("a", "b") || !sub.HasEdge("b", "d") || !sub.HasEdge("a", "d") || !sub.HasEdge("b", "a") {
		t.Errorf("induced edges = %v", sub.Edges())
	}
	if sub.HasEdge("a", "c") || sub.HasEdge("c", "d") {
		t.Error("induced subgraph leaked edges through excluded node")
	}
	n, _ := sub.NodeByID("b")
	if n.Features["k"] != "v" {
		t.Error("induced subgraph lost features")
	}
}

func TestRedundantEdgesAndReduction(t *testing.T) {
	g := diamond(t)
	red := g.RedundantEdges()
	if len(red) != 1 || red[0] != (EdgeID{From: "a", To: "d"}) {
		t.Errorf("RedundantEdges = %v, want [a->d]", red)
	}
	tr := g.TransitiveReduction()
	if tr.HasEdge("a", "d") {
		t.Error("reduction kept the shortcut")
	}
	if tr.NumEdges() != 4 {
		t.Errorf("reduction edges = %d, want 4", tr.NumEdges())
	}
	// Reachability is preserved.
	for _, u := range g.Nodes() {
		for _, v := range g.Nodes() {
			if g.HasPath(u, v) != tr.HasPath(u, v) {
				t.Errorf("reduction changed reachability %s->%s", u, v)
			}
		}
	}
	// The original graph is untouched.
	if !g.HasEdge("a", "d") {
		t.Error("TransitiveReduction mutated the receiver")
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := diamond(t)
	tc := g.TransitiveClosure()
	if !tc["a"]["d"] || !tc["b"]["d"] {
		t.Error("closure missing reachable pairs")
	}
	if tc["d"]["a"] {
		t.Error("closure contains impossible pair")
	}
}

func TestSimplePaths(t *testing.T) {
	g := diamond(t)
	paths := g.SimplePaths("a", "d", 0, 0)
	if len(paths) != 3 { // a-d, a-b-d, a-c-d
		t.Fatalf("paths = %v", paths)
	}
	// Lexicographic successor order: a->b->d, a->c->d, a->d.
	if len(paths[0]) != 3 || paths[0][1] != "b" {
		t.Errorf("first path = %v", paths[0])
	}
	// Limit and maxLen.
	if got := g.SimplePaths("a", "d", 2, 0); len(got) != 2 {
		t.Errorf("limit ignored: %d paths", len(got))
	}
	if got := g.SimplePaths("a", "d", 0, 1); len(got) != 1 {
		t.Errorf("maxLen=1 should yield only the direct edge: %v", got)
	}
	if got := g.SimplePaths("d", "a", 0, 0); got != nil {
		t.Errorf("no paths expected: %v", got)
	}
	if got := g.SimplePaths("a", "a", 0, 0); got != nil {
		t.Errorf("src==dst should be nil: %v", got)
	}
}

func TestSimplePathsWithCycle(t *testing.T) {
	g := New()
	for _, id := range []NodeID{"a", "b", "c"} {
		g.AddNodeID(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "a")
	g.MustAddEdge("b", "c")
	paths := g.SimplePaths("a", "c", 0, 0)
	if len(paths) != 1 {
		t.Errorf("paths = %v (cycle should not repeat nodes)", paths)
	}
}

func TestLongestPathDAG(t *testing.T) {
	g := diamond(t)
	length, path, ok := g.LongestPathDAG()
	if !ok || length != 2 {
		t.Fatalf("longest = %d ok=%v", length, ok)
	}
	if len(path) != 3 || path[0] != "a" || path[2] != "d" {
		t.Errorf("path = %v", path)
	}
	g.MustAddEdge("d", "a") // cycle
	if _, _, ok := g.LongestPathDAG(); ok {
		t.Error("cyclic graph should report !ok")
	}
	empty := New()
	if l, _, ok := empty.LongestPathDAG(); !ok || l != 0 {
		t.Errorf("empty graph: %d %v", l, ok)
	}
}

// Property: transitive reduction of random DAGs preserves reachability and
// removes every redundant edge.
func TestTransitiveReductionProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		g := New()
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = NodeID(string(rune('a' + i)))
			g.AddNodeID(ids[i])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.4 {
					g.MustAddEdge(ids[i], ids[j])
				}
			}
		}
		tr := g.TransitiveReduction()
		for _, u := range ids {
			for _, v := range ids {
				if g.HasPath(u, v) != tr.HasPath(u, v) {
					return false
				}
			}
		}
		return len(tr.RedundantEdges()) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package graph

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON feeds arbitrary bytes into the graph decoder: it must
// never panic, and anything it accepts must re-encode and decode to an
// equal graph.
func FuzzGraphJSON(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"id":"a"},{"id":"b","features":{"k":"v"}}],"edges":[{"from":"a","to":"b","label":"l"}]}`))
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"id":"a"}],"edges":[{"from":"a","to":"a"}]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected: fine
		}
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("accepted graph failed to marshal: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed to decode: %v", err)
		}
		if !g.Equal(&back) {
			t.Fatal("round trip changed the graph")
		}
		// Basic invariants hold on anything accepted.
		if g.NumEdges() > 0 && g.NumNodes() == 0 {
			t.Fatal("edges without nodes")
		}
		for _, e := range g.Edges() {
			if !g.HasNode(e.From) || !g.HasNode(e.To) {
				t.Fatalf("dangling edge %s", e.ID())
			}
		}
	})
}

package plus

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"time"
)

// SelfSignedCert mints an ECDSA P-256 serving certificate for hosts
// (DNS names or IP literals; defaults to localhost/127.0.0.1/::1). The
// certificate is its own chain — self-signed with CA:true — so the same
// cert.pem both serves TLS and verifies it when handed to clients as the
// CA bundle (-tls-ca). It is a deployment convenience for single-host
// and test topologies, not a PKI: production fleets bring their own
// certificates via plusd -tls.
func SelfSignedCert(hosts ...string) (certPEM, keyPEM []byte, err error) {
	if len(hosts) == 0 {
		hosts = []string{"localhost", "127.0.0.1", "::1"}
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("plus: tls key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, nil, fmt.Errorf("plus: tls serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "plusd self-signed", Organization: []string{"PLUS"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(2 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, fmt.Errorf("plus: tls cert: %w", err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, fmt.Errorf("plus: tls key: %w", err)
	}
	certPEM = pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM = pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	return certPEM, keyPEM, nil
}

// WriteSelfSignedCert materialises cert.pem/key.pem in dir (created as
// needed), generating them once: existing files are kept so restarts
// keep their identity and clients keep their pinned CA. It returns the
// two paths (plusd -tls-self-signed).
func WriteSelfSignedCert(dir string, hosts ...string) (certPath, keyPath string, err error) {
	certPath = filepath.Join(dir, "cert.pem")
	keyPath = filepath.Join(dir, "key.pem")
	_, cerr := os.Stat(certPath)
	_, kerr := os.Stat(keyPath)
	if cerr == nil && kerr == nil {
		return certPath, keyPath, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", fmt.Errorf("plus: tls dir: %w", err)
	}
	certPEM, keyPEM, err := SelfSignedCert(hosts...)
	if err != nil {
		return "", "", err
	}
	if err := os.WriteFile(certPath, certPEM, 0o644); err != nil {
		return "", "", fmt.Errorf("plus: write cert: %w", err)
	}
	if err := os.WriteFile(keyPath, keyPEM, 0o600); err != nil {
		return "", "", fmt.Errorf("plus: write key: %w", err)
	}
	return certPath, keyPath, nil
}

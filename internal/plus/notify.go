package plus

import (
	"sync"
	"sync/atomic"
)

// notifier is the closed-channel broadcast behind Backend.Notify: the
// standard Go idiom for "wake every waiter at once, zero cost when
// nobody waits". Waiters grab the current channel; the next mutation
// closes it (waking all of them) and lazily replaces it. Arm-then-check
// ordering on the consumer side (grab the channel, THEN re-check the
// revision) makes missed wakeups impossible: a write that lands between
// the check and the select has already closed the grabbed channel.
//
// Both backends embed it; the /v2/changes long-poll consumes it instead
// of the 20ms polling loop it replaced, so an idle follower burns zero
// wakeups and a write is delivered at channel-close latency.
type notifier struct {
	mu sync.Mutex
	ch chan struct{}

	// wakeups counts broadcasts that actually woke waiters (a closed
	// channel); broadcasts with nobody parked are free and uncounted.
	// Observability reads it to report follower wakeup traffic.
	wakeups atomic.Uint64
}

// Notify returns a channel that is closed after the next mutation (or
// Close). Each call may return the same channel until a broadcast
// happens; callers must re-arm by calling Notify again after a wakeup.
func (n *notifier) Notify() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ch == nil {
		n.ch = make(chan struct{})
	}
	return n.ch
}

// broadcast wakes every waiter. Cheap when nobody is waiting (nil
// channel, one mutex round-trip).
func (n *notifier) broadcast() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ch != nil {
		close(n.ch)
		n.ch = nil
		n.wakeups.Add(1)
	}
}

// Wakeups reports how many broadcasts found waiters to wake. Both
// backends inherit it (Backend embeds notifier), giving the metrics
// layer a change-feed wakeup counter.
func (n *notifier) Wakeups() uint64 { return n.wakeups.Load() }

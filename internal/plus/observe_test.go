package plus

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/privilege"
)

// obsServer builds an open-mode MemBackend server with a live registry,
// a record-everything slow-query ring and the backend latency decorator
// — the full observability stack plusd -slow-query 1ns would wire.
func obsServer(t *testing.T) (*httptest.Server, *Server, *obs.Registry) {
	t.Helper()
	m := NewMemBackend(4)
	t.Cleanup(func() { m.Close() })
	reg := obs.NewRegistry()
	o := NewObservability(reg, obs.NewSlowLog(64, 0), nil)
	b := NewObserveBackend(m, reg)
	srv := NewCachedServer(NewCachedEngine(NewEngine(b, privilege.TwoLevel())), WithObservability(o))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, reg
}

// get runs one GET with optional headers, returning status, body and
// the response headers.
func get(t *testing.T, url string, headers map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func TestMetricsEndpointFormats(t *testing.T) {
	ts, _, _ := obsServer(t)
	c := NewClient(ts.URL)
	loadFixture(t, c)
	if _, err := c.Lineage(LineageQuery{Start: "report", Direction: "ancestors"}); err != nil {
		t.Fatal(err)
	}

	st, body, hdr := get(t, ts.URL+"/v2/metrics", nil)
	if st != http.StatusOK {
		t.Fatalf("GET /v2/metrics = %d: %s", st, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE plus_http_requests_total counter",
		"# TYPE plus_http_request_seconds summary",
		"plus_store_objects 4",
		"plus_store_edges 3",
		`plus_backend_op_seconds_count{op="put_object"}`,
		`plus_lineage_seconds_count{phase="total"}`,
		"plus_changefeed_ring_depth",
		"plus_lineage_cache_entries",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	st, body, hdr = get(t, ts.URL+"/v2/metrics?format=json", nil)
	if st != http.StatusOK {
		t.Fatalf("GET /v2/metrics?format=json = %d: %s", st, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("json content type = %q", ct)
	}
	var fams []obs.Family
	if err := json.Unmarshal(body, &fams); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "plus_store_objects" {
			found = true
			if len(f.Series) != 1 || f.Series[0].Value != 4 {
				t.Errorf("plus_store_objects = %+v, want single series of 4", f.Series)
			}
		}
	}
	if !found {
		t.Error("json snapshot missing plus_store_objects")
	}

	if st, _, _ = get(t, ts.URL+"/v2/metrics?format=xml", nil); st != http.StatusBadRequest {
		t.Errorf("unknown format status = %d, want 400", st)
	}
}

// TestMetricsRequireAdminCapability: on an authenticated server the
// registry (and slow-query ring) are operator surface, not public.
func TestMetricsRequireAdminCapability(t *testing.T) {
	kr := testKeyring(t)
	m := NewMemBackend(2)
	t.Cleanup(func() { m.Close() })
	reg := obs.NewRegistry()
	srv := NewServer(NewEngine(m, privilege.TwoLevel()),
		WithAuth(AuthConfig{Keyring: kr, Require: true}),
		WithObservability(NewObservability(reg, obs.NewSlowLog(8, 0), nil)))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	reader := operatorToken(t, kr, "Protected", CapQuery)
	admin := operatorToken(t, kr, "Protected", CapAdmin)
	for _, path := range []string{"/v2/metrics", "/v2/slowlog"} {
		if st, _, _ := get(t, ts.URL+path, nil); st != http.StatusUnauthorized {
			t.Errorf("tokenless GET %s = %d, want 401", path, st)
		}
		if st, _, _ := get(t, ts.URL+path, sessionHeader(reader)); st != http.StatusForbidden {
			t.Errorf("query-cap GET %s = %d, want 403", path, st)
		}
		if st, _, _ := get(t, ts.URL+path, sessionHeader(admin)); st != http.StatusOK {
			t.Errorf("admin GET %s = %d, want 200", path, st)
		}
	}
}

// TestRequestIDTracing: a client-supplied trace ID is echoed on the
// response and lands in the slow-query entry the lineage engine
// records; absent one, the middleware mints a 16-hex-char ID.
func TestRequestIDTracing(t *testing.T) {
	ts, _, _ := obsServer(t)
	c := NewClient(ts.URL)
	loadFixture(t, c)

	const reqID = "deadbeef00001111"
	st, body, hdr := get(t, ts.URL+"/v1/lineage?start=report&direction=ancestors",
		map[string]string{HeaderRequestID: reqID})
	if st != http.StatusOK {
		t.Fatalf("lineage = %d: %s", st, body)
	}
	if got := hdr.Get(HeaderRequestID); got != reqID {
		t.Errorf("echoed request id = %q, want %q", got, reqID)
	}

	st, body, _ = get(t, ts.URL+"/v2/slowlog", nil)
	if st != http.StatusOK {
		t.Fatalf("slowlog = %d: %s", st, body)
	}
	var entries []obs.SlowEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	var hit *obs.SlowEntry
	for i := range entries {
		if entries[i].RequestID == reqID {
			hit = &entries[i]
		}
	}
	if hit == nil {
		t.Fatalf("no slow-query entry carries request id %q: %s", reqID, body)
	}
	if hit.Kind != "lineage" || !strings.Contains(hit.Query, "start=report") {
		t.Errorf("entry = %+v, want lineage start=report", hit)
	}
	if len(hit.Phases) != 3 {
		t.Errorf("entry phases = %+v, want dbAccess/build/protect", hit.Phases)
	}

	// No header: the middleware mints one.
	st, _, hdr = get(t, ts.URL+"/v1/stats", nil)
	if st != http.StatusOK {
		t.Fatal("stats failed")
	}
	if got := hdr.Get(HeaderRequestID); len(got) != 16 {
		t.Errorf("minted request id = %q, want 16 hex chars", got)
	}
}

// TestHealthzAndStatsReportChangeFeed: the change-feed window (base,
// depth, horizon, epoch) the follower protocol depends on is visible in
// both health surfaces — it used to be unobservable.
func TestHealthzAndStatsReportChangeFeed(t *testing.T) {
	run := func(t *testing.T, c *Client) {
		loadFixture(t, c)
		h, err := c.Healthz()
		if err != nil {
			t.Fatal(err)
		}
		if h.ChangeFeed == nil {
			t.Fatal("healthz missing changeFeed block")
		}
		if h.ChangeFeed.Horizon <= 0 || h.ChangeFeed.Epoch == "" {
			t.Errorf("changeFeed = %+v, want positive horizon and an epoch", h.ChangeFeed)
		}
		if h.ChangeFeed.Revision != h.Revision {
			t.Errorf("changeFeed revision %d != healthz revision %d", h.ChangeFeed.Revision, h.Revision)
		}
		s, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if s.ChangeFeed == nil || s.ChangeFeed.Depth <= 0 {
			t.Errorf("stats changeFeed = %+v, want resident changes after ingest", s.ChangeFeed)
		}
	}
	t.Run("log", func(t *testing.T) {
		c, _ := testServer(t)
		run(t, c)
	})
	t.Run("mem", func(t *testing.T) {
		m := NewMemBackend(4)
		t.Cleanup(func() { m.Close() })
		ts := httptest.NewServer(NewServer(NewEngine(m, privilege.TwoLevel())))
		t.Cleanup(ts.Close)
		run(t, NewClient(ts.URL))
	})
}

// TestKeyringReloadSwapsLiveKeyring: SIGHUP's substance — a keyring file
// rewritten on disk swaps in atomically, old-key tokens die, new-key
// tokens work, and a corrupt file leaves the serving keyring untouched.
func TestKeyringReloadSwapsLiveKeyring(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	write := func(content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	write("k1:secret-secret-secret-aaaa\n")
	kr1, err := LoadKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemBackend(2)
	t.Cleanup(func() { m.Close() })
	reg := obs.NewRegistry()
	srv := NewServer(NewEngine(m, privilege.TwoLevel()),
		WithAuth(AuthConfig{Keyring: kr1, Require: true}),
		WithObservability(NewObservability(reg, nil, nil)))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	tok1 := operatorToken(t, kr1, "Protected")
	if st, _, _ := get(t, ts.URL+"/v1/stats", sessionHeader(tok1)); st != http.StatusOK {
		t.Fatalf("pre-reload token status = %d, want 200", st)
	}

	write("k2:secret-secret-secret-bbbb\n")
	if err := srv.ReloadKeyringFromFile(path); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if st, _, _ := get(t, ts.URL+"/v1/stats", sessionHeader(tok1)); st != http.StatusUnauthorized {
		t.Errorf("rotated-out token status = %d, want 401", st)
	}
	kr2, err := LoadKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	tok2 := operatorToken(t, kr2, "Protected")
	if st, _, _ := get(t, ts.URL+"/v1/stats", sessionHeader(tok2)); st != http.StatusOK {
		t.Errorf("new-key token status = %d, want 200", st)
	}

	// A corrupt file must not take down the serving keyring.
	write("this is not a keyring\n")
	if err := srv.ReloadKeyringFromFile(path); err == nil {
		t.Fatal("reload of corrupt file succeeded, want error")
	}
	if st, _, _ := get(t, ts.URL+"/v1/stats", sessionHeader(tok2)); st != http.StatusOK {
		t.Errorf("token after failed reload status = %d, want 200 (keyring kept)", st)
	}

	wantOutcome := map[string]float64{"ok": 1, "error": 1}
	for _, f := range reg.Gather() {
		if f.Name != "plus_keyring_reloads_total" {
			continue
		}
		for _, s := range f.Series {
			for _, l := range s.Labels {
				if l.Name == "outcome" && s.Value != wantOutcome[l.Value] {
					t.Errorf("plus_keyring_reloads_total{outcome=%q} = %v, want %v",
						l.Value, s.Value, wantOutcome[l.Value])
				}
			}
		}
	}
}

// seriesCounts flattens a gathered snapshot into comparable cumulative
// readings: counter values and summary counts, keyed by family+labels.
func seriesCounts(fams []obs.Family) map[string]float64 {
	out := map[string]float64{}
	for _, f := range fams {
		for _, s := range f.Series {
			key := f.Name
			for _, l := range s.Labels {
				key += "|" + l.Name + "=" + l.Value
			}
			switch f.Type {
			case obs.TypeCounter:
				out[key] = s.Value
			case obs.TypeSummary:
				out[key] = float64(s.Count)
			}
		}
	}
	return out
}

// TestMetricsUnderConcurrentTraffic hammers ingest, lineage queries and
// metric scrapes concurrently (the race detector does the memory-model
// auditing), then checks cumulative series never move backwards and
// summary quantiles are ordered.
func TestMetricsUnderConcurrentTraffic(t *testing.T) {
	ts, _, reg := obsServer(t)
	c := NewClient(ts.URL)
	loadFixture(t, c)

	const (
		workers = 4
		iters   = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(3)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = c.PutObject(Object{ID: fmt.Sprintf("obj-%d-%d", w, i), Kind: Data, Name: "x"})
				_ = c.PutEdge(Edge{From: fmt.Sprintf("obj-%d-%d", w, i), To: "report", Label: "input-to"})
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, _ = c.Lineage(LineageQuery{Start: "report", Direction: "ancestors"})
				_, _ = c.Healthz()
			}
		}()
		go func(w int) {
			defer wg.Done()
			format := ""
			if w%2 == 1 {
				format = "?format=json"
			}
			for i := 0; i < iters; i++ {
				st, body, _ := get(t, ts.URL+"/v2/metrics"+format, nil)
				if st != http.StatusOK {
					t.Errorf("scrape = %d: %s", st, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	before := seriesCounts(reg.Gather())
	for i := 0; i < 5; i++ {
		if _, err := c.Lineage(LineageQuery{Start: "report", Direction: "ancestors"}); err != nil {
			t.Fatal(err)
		}
	}
	after := seriesCounts(reg.Gather())
	if len(before) == 0 {
		t.Fatal("no cumulative series gathered")
	}
	for key, b := range before {
		if a, ok := after[key]; !ok || a < b {
			t.Errorf("series %s moved backwards: %v -> %v", key, b, a)
		}
	}
	if after["plus_http_requests_total|route=/v1/lineage|method=GET|status=200"] < float64(workers*iters) {
		t.Errorf("lineage request count = %v, want >= %d",
			after["plus_http_requests_total|route=/v1/lineage|method=GET|status=200"], workers*iters)
	}

	for _, f := range reg.Gather() {
		if f.Type != obs.TypeSummary {
			continue
		}
		for _, s := range f.Series {
			q := s.Quantiles
			if q["0.5"] > q["0.95"] || q["0.95"] > q["0.99"] {
				t.Errorf("%s quantiles out of order: %+v", f.Name, q)
			}
		}
	}
}

package plus

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/privilege"
)

// This file is the v2 wire API: the principal-scoped redesign of the
// HTTP surface. Three things distinguish it from /v1:
//
//   - Who is asking travels out-of-band. Every request resolves a
//     principal — a validated privilege-predicate — from the
//     X-Plus-Viewer header or an X-Plus-Session token minted by
//     POST /v2/sessions, never from a loose query parameter. An unknown
//     predicate is a 400 with a structured error body, not a silent
//     Public fallback.
//   - Writes batch. POST /v2/batch ingests objects, edges and surrogates
//     in one atomic revision window (Backend.Apply), amortising
//     per-request overhead on write-heavy workloads.
//   - Reads resume. GET /v2/changes streams the change feed as NDJSON
//     with opaque durable cursors (revision + backend epoch); a consumer
//     that fell past the retained window gets a typed 410 with a resync
//     hint pointing at GET /v2/snapshot.
//
// Errors carry a machine-readable code alongside the human message:
//
//	{"error": "...", "code": "unknown_viewer", ...}
//
// Trust model: the surface splits into consumer endpoints — lineage,
// query, object fetch — whose answers are protected for the resolved
// principal, and provider/replication endpoints — batch, changes,
// snapshot (and v1's OPM interchange) — which carry raw records, since a
// replica must hold the full graph to serve its own viewers. The split
// is enforced by the capability model (auth.go/token.go): with a keyring
// configured (plusd -auth-keys), every request must carry an HMAC-signed
// stateless session token whose capability set covers the endpoint —
// "ingest" for writes, "replicate" for raw-record reads, "query" for
// protected reads, "admin" for operations — and any node sharing the
// keyring verifies any node's tokens, no session state replicated.
// Without a keyring the server runs in the legacy open mode: principals
// are validated but client-asserted, and every caller holds every
// capability.
//
// /v1 remains mounted for compatibility, gated by the same capabilities
// and answering with Deprecation/Sunset headers.

// v2 principal headers.
const (
	// HeaderViewer carries the caller's privilege-predicate nickname.
	HeaderViewer = "X-Plus-Viewer"
	// HeaderSession carries a token minted by POST /v2/sessions.
	HeaderSession = "X-Plus-Session"
)

// Error codes of the v2 structured error body.
const (
	CodeBadRequest     = "bad_request"
	CodeUnknownViewer  = "unknown_viewer"
	CodeUnauthorized   = "unauthorized"
	CodeBadToken       = "bad_token"
	CodeTokenExpired   = "token_expired"
	CodeViewerConflict = "viewer_conflict"
	CodeNotFound       = "not_found"
	CodeForbidden      = "forbidden"
	CodeBadCursor      = "bad_cursor"
	CodeTooFarBehind   = "too_far_behind"
	CodeUnavailable    = "unavailable"
	CodeInternal       = "internal"
)

// APIError is the v2 structured error body. Status is the HTTP status it
// is served with (not serialised; the status line carries it).
type APIError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"error"`
	// ResyncCursor and ResyncURL accompany too_far_behind: the cursor of
	// the present and where to fetch a full snapshot to rebase onto.
	ResyncCursor string `json:"resyncCursor,omitempty"`
	ResyncURL    string `json:"resyncURL,omitempty"`
}

// Error implements error.
func (e *APIError) Error() string { return e.Message }

// v2Errorf builds an APIError.
func v2Errorf(status int, code, format string, args ...interface{}) *APIError {
	return &APIError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// WriteAPIError serves a v2 structured error. Extension subsystems
// (PLUSQL's /v2/query) share it so every v2 endpoint fails identically.
func WriteAPIError(w http.ResponseWriter, e *APIError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	_ = json.NewEncoder(w).Encode(e)
}

// v2StoreError maps a storage/engine error onto the structured body.
func v2StoreError(err error) *APIError {
	switch {
	case errors.Is(err, ErrNotFound):
		return v2Errorf(http.StatusNotFound, CodeNotFound, "%s", err)
	case errors.Is(err, ErrClosed):
		return v2Errorf(http.StatusServiceUnavailable, CodeUnavailable, "%s", err)
	default:
		return v2Errorf(http.StatusBadRequest, CodeBadRequest, "%s", err)
	}
}

// SessionRequest is the body of POST /v2/sessions: mint a stateless
// signed session token. Under required auth the caller must itself hold
// a valid token, and the minted token's *privileges* can only attenuate
// it: a viewer the caller's viewer equals or dominates, and a
// capability subset. Expiry deliberately does NOT attenuate — holding a
// valid token entitles the holder to a fresh one (sliding sessions, the
// SDK's auto-refresh), so expiry bounds credential staleness, not
// privilege; revoking a principal for real means rotating its key out
// of the keyring.
type SessionRequest struct {
	// Viewer is the privilege-predicate the session acts as; empty means
	// the caller's own viewer (Public in open mode without a header).
	Viewer string `json:"viewer,omitempty"`
	// Capabilities lists the minted token's capability set; empty means
	// everything the caller holds.
	Capabilities []string `json:"capabilities,omitempty"`
	// TTLSeconds is the requested lifetime; 0 means the server default,
	// and the server caps it at AuthConfig.MaxTTL.
	TTLSeconds int64 `json:"ttlSeconds,omitempty"`
}

// SessionResponse is the answer to POST /v2/sessions.
type SessionResponse struct {
	Token        string   `json:"token"`
	Viewer       string   `json:"viewer"`
	Capabilities []string `json:"capabilities"`
	// ExpiresAt is the token expiry in unix seconds; clients refresh
	// before it (the SDK does so automatically).
	ExpiresAt int64  `json:"expiresAt"`
	KeyID     string `json:"keyId"`
}

func (s *Server) handleV2Sessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		MethodNotAllowed(w, http.MethodPost)
		return
	}
	// Minting needs a resolved principal but no particular capability:
	// any authenticated caller may attenuate its own token. Anonymous
	// callers can mint only in open mode (where the principal holds
	// every capability by definition).
	caller, apiErr := s.principal(r)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	if s.auth.Require && caller.Token == nil {
		WriteAPIError(w, v2Errorf(http.StatusUnauthorized, CodeUnauthorized,
			"plus: minting a session requires an authenticated principal"))
		return
	}
	var req SessionRequest
	if err := decodeBody(w, r, &req); err != nil {
		WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadRequest, "%s", err))
		return
	}

	viewer := privilege.Predicate(req.Viewer)
	if viewer == "" {
		viewer = caller.Viewer
	}
	if !s.engine.lattice.Known(viewer) {
		WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeUnknownViewer,
			"plus: unknown viewer predicate %q", viewer))
		return
	}
	if caller.Token != nil && viewer != caller.Viewer && !s.engine.lattice.Dominates(caller.Viewer, viewer) {
		WriteAPIError(w, v2Errorf(http.StatusForbidden, CodeForbidden,
			"plus: cannot mint viewer %q from a token for %q", viewer, caller.Viewer))
		return
	}

	caps, err := ParseCapabilities(req.Capabilities)
	if err != nil {
		WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadRequest, "%s", err))
		return
	}
	if len(caps) == 0 {
		caps = caller.Capabilities
	} else if !capsSubset(caps, caller.Capabilities) {
		WriteAPIError(w, v2Errorf(http.StatusForbidden, CodeForbidden,
			"plus: requested capabilities %v exceed the caller's %v", caps, caller.Capabilities))
		return
	}

	if req.TTLSeconds < 0 {
		WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadRequest,
			"plus: negative ttlSeconds"))
		return
	}
	ttl := s.auth.DefaultTTL
	if req.TTLSeconds > 0 {
		ttl = time.Duration(req.TTLSeconds) * time.Second
	}
	if ttl > s.auth.MaxTTL {
		ttl = s.auth.MaxTTL
	}
	// Viewer and capabilities attenuate (never exceed the caller's), but
	// expiry deliberately slides: holding a valid credential entitles you
	// to a fresh one (how the SDK's auto-refresh keeps long-lived
	// followers alive). Expiry bounds credential staleness; actually
	// cutting a principal off is key rotation's job.
	now := time.Now()
	exp := now.Add(ttl)

	claims := Claims{
		Viewer:       string(viewer),
		Capabilities: caps,
		IssuedAt:     now.Unix(),
		ExpiresAt:    exp.Unix(),
	}
	kr := s.Keyring()
	token, err := kr.Mint(claims)
	if err != nil {
		WriteAPIError(w, v2Errorf(http.StatusInternalServerError, CodeInternal, "%s", err))
		return
	}
	writeJSON(w, http.StatusCreated, SessionResponse{
		Token:        token,
		Viewer:       string(viewer),
		Capabilities: capStrings(caps),
		ExpiresAt:    claims.ExpiresAt,
		KeyID:        kr.Active(),
	})
}

// BatchRequest is the body of POST /v2/batch: a whole ingest unit applied
// atomically under one revision window. Objects are applied before edges
// and surrogates, so intra-batch references work.
type BatchRequest struct {
	Objects    []Object        `json:"objects,omitempty"`
	Edges      []Edge          `json:"edges,omitempty"`
	Surrogates []SurrogateSpec `json:"surrogates,omitempty"`
}

// BatchResponse reports the applied batch: the backend revision after the
// apply and the change-feed cursor positioned at it.
type BatchResponse struct {
	Revision   uint64 `json:"revision"`
	Cursor     string `json:"cursor"`
	Objects    int    `json:"objects"`
	Edges      int    `json:"edges"`
	Surrogates int    `json:"surrogates"`
}

// maxBatchBytes bounds POST /v2/batch bodies; bulk ingest units are
// allowed to be big, but not unbounded.
const maxBatchBytes = 64 << 20

func (s *Server) handleV2Batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		MethodNotAllowed(w, http.MethodPost)
		return
	}
	if s.gateWrite(w, r) {
		return
	}
	if _, apiErr := s.Authorize(r, CapIngest); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	var req BatchRequest
	if err := DecodeJSONBody(w, r, maxBatchBytes, &req); err != nil {
		WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadRequest, "%s", err))
		return
	}
	b := Batch{Objects: req.Objects, Edges: req.Edges, Surrogates: req.Surrogates}
	// Apply reports the revision of the batch's own last record (read
	// under its locks), so the returned cursor never skips a concurrent
	// writer's records.
	rev, err := s.engine.store.Apply(b)
	if err != nil {
		WriteAPIError(w, v2StoreError(err))
		return
	}
	s.obs.batchRecords.Observe(int64(len(req.Objects) + len(req.Edges) + len(req.Surrogates)))
	writeJSON(w, http.StatusOK, BatchResponse{
		Revision:   rev,
		Cursor:     Cursor{Epoch: s.engine.store.Epoch(), Rev: rev}.Encode(),
		Objects:    len(req.Objects),
		Edges:      len(req.Edges),
		Surrogates: len(req.Surrogates),
	})
}

func (s *Server) handleV2ObjectByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		MethodNotAllowed(w, http.MethodGet)
		return
	}
	p, apiErr := s.Authorize(r, CapQuery)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	viewer := p.Viewer
	id := strings.TrimPrefix(r.URL.Path, "/v2/objects/")
	o, err := s.engine.store.GetObject(id)
	if err != nil {
		WriteAPIError(w, v2StoreError(err))
		return
	}
	// Principal-scoped fetch: a record above the caller's privilege is
	// refused, not served. (v1 leaves this to the lineage layer; the v2
	// point read enforces it directly.)
	if o.Lowest != "" && !s.engine.lattice.Dominates(viewer, privilege.Predicate(o.Lowest)) {
		WriteAPIError(w, v2Errorf(http.StatusForbidden, CodeForbidden,
			"plus: object %q requires privilege %q", id, o.Lowest))
		return
	}
	writeJSON(w, http.StatusOK, o)
}

func (s *Server) handleV2Lineage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		MethodNotAllowed(w, http.MethodGet)
		return
	}
	p, apiErr := s.Authorize(r, CapQuery)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	q := r.URL.Query()
	if q.Get("viewer") != "" {
		WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadRequest,
			"plus: v2 carries the viewer in the %s header or a session, not a query parameter", HeaderViewer))
		return
	}
	req, err := parseLineageParams(q)
	if err != nil {
		WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadRequest, "%s", err))
		return
	}
	req.Viewer = p.Viewer
	res, err := s.answerer.LineageContext(r.Context(), req)
	if err != nil {
		WriteAPIError(w, v2StoreError(err))
		return
	}
	writeJSON(w, http.StatusOK, buildLineageResponse(req, res))
}

// SnapshotResponse is the answer to GET /v2/snapshot: the full store at
// one revision, with the cursor to resume the change feed from and the
// privilege lattice the records' nicknames refer to. This is the resync
// payload a consumer rebases onto after a 410, and enough for a client to
// reconstruct a local replica (see pkg/plusclient).
type SnapshotResponse struct {
	Cursor     string          `json:"cursor"`
	Revision   uint64          `json:"revision"`
	Epoch      string          `json:"epoch"`
	Lattice    [][2]string     `json:"lattice,omitempty"`
	Objects    []Object        `json:"objects"`
	Edges      []Edge          `json:"edges"`
	Surrogates []SurrogateSpec `json:"surrogates"`
}

func (s *Server) handleV2Snapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		MethodNotAllowed(w, http.MethodGet)
		return
	}
	if _, apiErr := s.Authorize(r, CapReplicate); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	sn, err := s.engine.store.Snapshot()
	if err != nil {
		WriteAPIError(w, v2StoreError(err))
		return
	}
	resp := SnapshotResponse{
		Cursor:   Cursor{Epoch: s.engine.store.Epoch(), Rev: sn.Revision()}.Encode(),
		Revision: sn.Revision(),
		Epoch:    s.engine.store.Epoch(),
		Lattice:  s.engine.lattice.Pairs(),
		Objects:  sn.Objects(),
	}
	sort.Slice(resp.Objects, func(i, j int) bool { return resp.Objects[i].ID < resp.Objects[j].ID })
	for _, o := range resp.Objects {
		resp.Edges = append(resp.Edges, sn.Out(o.ID)...)
		resp.Surrogates = append(resp.Surrogates, sn.Surrogates(o.ID)...)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ChangeEvent is one NDJSON line of GET /v2/changes.
type ChangeEvent struct {
	// Type is "change" (one applied record; Cursor resumes after it) or
	// "sync" (the consumer is caught up to Cursor; no record attached).
	Type   string `json:"type"`
	Cursor string `json:"cursor"`
	Rev    uint64 `json:"rev,omitempty"`
	// Kind selects which record field is set on a change event:
	// "object", "edge" or "surrogate".
	Kind      string         `json:"kind,omitempty"`
	Object    *Object        `json:"object,omitempty"`
	Edge      *Edge          `json:"edge,omitempty"`
	Surrogate *SurrogateSpec `json:"surrogate,omitempty"`
}

// changeEvent renders one feed record as its wire event.
func changeEvent(c Change, epoch string) ChangeEvent {
	ev := ChangeEvent{
		Type:   "change",
		Cursor: Cursor{Epoch: epoch, Rev: c.Rev}.Encode(),
		Rev:    c.Rev,
	}
	switch c.Kind {
	case ChangeObject:
		o := c.Object
		ev.Kind, ev.Object = "object", &o
	case ChangeEdge:
		e := c.Edge
		ev.Kind, ev.Edge = "edge", &e
	case ChangeSurrogate:
		sp := c.Surrogate
		ev.Kind, ev.Surrogate = "surrogate", &sp
	}
	return ev
}

// maxChangeWait caps the wait parameter so handlers cannot be parked
// indefinitely; clients reconnect (cheaply, with a cursor) to keep
// following.
const maxChangeWait = 30 * time.Second

// v2ResyncError builds the typed 410: the consumer's position no longer
// resolves (aged past the retained window, or an epoch from a previous
// life of the store), so it must rebase onto a snapshot.
func (s *Server) v2ResyncError(why string) *APIError {
	e := v2Errorf(http.StatusGone, CodeTooFarBehind, "plus: %s; resync from a snapshot", why)
	e.ResyncCursor = Cursor{Epoch: s.engine.store.Epoch(), Rev: s.engine.store.Revision()}.Encode()
	e.ResyncURL = "/v2/snapshot"
	return e
}

// handleV2Changes streams the change feed as NDJSON. Query parameters:
//
//	cursor  resume position (a token from a previous event, batch response
//	        or snapshot); absent means from the beginning of history
//	limit   stop after this many change events (0 = unbounded)
//	wait    long-poll budget, e.g. "5s" or "1500ms": after catching up,
//	        hold the stream open this long waiting for more writes
//
// Every change event carries the cursor that resumes *after* it, so a
// consumer that persists the last cursor it applied gets exactly-once
// delivery across disconnects and server restarts (durable backends).
func (s *Server) handleV2Changes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		MethodNotAllowed(w, http.MethodGet)
		return
	}
	if _, apiErr := s.Authorize(r, CapReplicate); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	q := r.URL.Query()
	epoch := s.engine.store.Epoch()
	cur := Cursor{Epoch: epoch, Rev: 0}
	if cstr := q.Get("cursor"); cstr != "" {
		var err error
		cur, err = DecodeCursor(cstr)
		if err != nil {
			WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadCursor, "%s", err))
			return
		}
	}
	limit := 0
	if lstr := q.Get("limit"); lstr != "" {
		n, err := strconv.Atoi(lstr)
		if err != nil || n < 0 {
			WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadRequest, "plus: bad limit %q", lstr))
			return
		}
		limit = n
	}
	var wait time.Duration
	if wstr := q.Get("wait"); wstr != "" {
		d, err := time.ParseDuration(wstr)
		if err != nil || d < 0 {
			WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadRequest, "plus: bad wait %q", wstr))
			return
		}
		if d > maxChangeWait {
			d = maxChangeWait
		}
		wait = d
	}

	if cur.Epoch != epoch {
		WriteAPIError(w, s.v2ResyncError(fmt.Sprintf("cursor epoch %q is not the store's %q", cur.Epoch, epoch)))
		return
	}
	// Probe before committing to a 200: a cursor past the retained window
	// (or from a diverged, e.g. crash-truncated, history) must fail the
	// whole request with a typed 410, not mid-stream.
	changes, err := s.engine.store.ChangesSince(cur.Rev)
	if err != nil {
		switch {
		case errors.Is(err, ErrTooFarBehind):
			WriteAPIError(w, s.v2ResyncError(fmt.Sprintf("revision %d aged out of the retained change window", cur.Rev)))
		case errors.Is(err, ErrClosed):
			WriteAPIError(w, v2Errorf(http.StatusServiceUnavailable, CodeUnavailable, "%s", err))
		default:
			// A future revision: the history this cursor saw no longer
			// exists (e.g. a torn tail was truncated by crash recovery).
			WriteAPIError(w, s.v2ResyncError(fmt.Sprintf("revision %d is beyond the store's history", cur.Rev)))
		}
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}

	emitted := 0
	deadline := time.Now().Add(wait)
	wroteSync := false
	for {
		for _, c := range changes {
			_ = enc.Encode(changeEvent(c, epoch))
			cur.Rev = c.Rev
			emitted++
			wroteSync = false
			if limit > 0 && emitted >= limit {
				flush()
				return
			}
		}
		if !wroteSync {
			_ = enc.Encode(ChangeEvent{Type: "sync", Cursor: cur.Encode(), Rev: cur.Rev})
			wroteSync = true
		}
		flush()
		// Caught up: long-poll for more writes within the wait budget. The
		// backend's Notify channel is armed BEFORE re-checking the revision,
		// so a write landing between the check and the wait still wakes us —
		// no missed wakeups, no polling interval.
		for {
			if wait <= 0 || time.Now().After(deadline) || r.Context().Err() != nil {
				return
			}
			notify := s.engine.store.Notify()
			if s.engine.store.Epoch() != epoch {
				// Compaction rotated the epoch mid-stream: every cursor this
				// stream could stamp is already dead. End it; the client
				// reconnects and resyncs through the pre-stream 410 probe.
				return
			}
			if s.engine.store.Revision() > cur.Rev {
				break
			}
			if s.engine.store.Ping() != nil {
				return
			}
			timer := time.NewTimer(time.Until(deadline))
			select {
			case <-r.Context().Done():
				timer.Stop()
				return
			case <-notify:
				timer.Stop()
			case <-timer.C:
				return
			}
		}
		changes, err = s.engine.store.ChangesSince(cur.Rev)
		if err != nil {
			// Mid-stream loss (horizon overtaken while waiting): end the
			// stream; the client reconnects with its cursor and receives
			// the typed 410 through the pre-stream probe.
			return
		}
	}
}

// compactor is the optional backend capability behind POST /v2/compact;
// LogBackend implements it, volatile backends do not.
type compactor interface{ Compact() error }

// CompactResponse reports a completed compaction: the store's footprint
// after the rewrite and the cursor of the new epoch (compaction rotates
// the epoch, so followers holding old cursors resync via 410).
type CompactResponse struct {
	Status   string `json:"status"`
	LogBytes int64  `json:"logBytes"`
	Revision uint64 `json:"revision"`
	Cursor   string `json:"cursor"`
}

// handleV2Compact rewrites the durable log to live records only
// (LogBackend.Compact) under the admin capability.
func (s *Server) handleV2Compact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		MethodNotAllowed(w, http.MethodPost)
		return
	}
	if s.gateWrite(w, r) {
		return
	}
	if _, apiErr := s.Authorize(r, CapAdmin); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	c, ok := unwrapBackend(s.engine.store).(compactor)
	if !ok {
		WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadRequest,
			"plus: this backend does not support compaction"))
		return
	}
	if err := c.Compact(); err != nil {
		WriteAPIError(w, v2StoreError(err))
		return
	}
	writeJSON(w, http.StatusOK, CompactResponse{
		Status:   "compacted",
		LogBytes: s.engine.store.Size(),
		Revision: s.engine.store.Revision(),
		Cursor:   Cursor{Epoch: s.engine.store.Epoch(), Rev: s.engine.store.Revision()}.Encode(),
	})
}

// parseLineageParams decodes the shared lineage query parameters (start
// or startName, direction, depth, mode, label, kind) used by both API
// versions. The viewer is NOT parsed here: v1 reads it from the query
// string, v2 from the request principal.
func parseLineageParams(q interface{ Get(string) string }) (Request, error) {
	start := q.Get("start")
	startName := q.Get("startName")
	if start == "" && startName == "" {
		return Request{}, fmt.Errorf("plus: missing start parameter")
	}
	if start != "" && startName != "" {
		return Request{}, fmt.Errorf("plus: start and startName are mutually exclusive")
	}
	dir, err := parseDirection(q.Get("direction"))
	if err != nil {
		return Request{}, err
	}
	depth := 0
	if d := q.Get("depth"); d != "" {
		depth, err = strconv.Atoi(d)
		if err != nil || depth < 0 {
			return Request{}, fmt.Errorf("plus: bad depth %q", d)
		}
	}
	mode := Mode(q.Get("mode"))
	if mode == "" {
		mode = ModeSurrogate
	}
	if mode != ModeHide && mode != ModeSurrogate {
		return Request{}, fmt.Errorf("plus: unknown mode %q", mode)
	}
	kind := ObjectKind(q.Get("kind"))
	if kind != "" && kind != Data && kind != Invocation {
		return Request{}, fmt.Errorf("plus: unknown kind %q", kind)
	}
	return Request{
		Start:       start,
		StartName:   startName,
		Direction:   dir,
		Depth:       depth,
		Mode:        mode,
		LabelFilter: q.Get("label"),
		KindFilter:  kind,
	}, nil
}

// buildLineageResponse renders a protected lineage answer as the wire
// response shared by both API versions.
func buildLineageResponse(req Request, res *Result) LineageResponse {
	pathUtil, nodeUtil := res.Utilities()
	resp := LineageResponse{
		Start:       req.Start,
		StartName:   req.StartName,
		Viewer:      string(req.Viewer),
		Mode:        string(req.Mode),
		PathUtility: pathUtil,
		NodeUtility: nodeUtil,
		Timing: LineageTiming{
			DBAccessUS: res.Timing.DBAccess.Microseconds(),
			BuildUS:    res.Timing.Build.Microseconds(),
			ProtectUS:  res.Timing.Protect.Microseconds(),
			TotalUS:    res.Timing.Total.Microseconds(),
		},
	}
	for _, id := range res.Account.Graph.Nodes() {
		n, _ := res.Account.Graph.NodeByID(id)
		_, isSurr := res.Account.SurrogateNodes[id]
		resp.Nodes = append(resp.Nodes, LineageNode{ID: string(id), Features: n.Features, Surrogate: isSurr})
	}
	for _, e := range res.Account.Graph.Edges() {
		resp.Edges = append(resp.Edges, LineageEdge{
			From:      string(e.From),
			To:        string(e.To),
			Label:     e.Label,
			Surrogate: res.Account.SurrogateEdges[e.ID()],
		})
	}
	return resp
}

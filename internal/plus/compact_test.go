package plus

import (
	"testing"
)

func TestCompactShrinksAndPreservesState(t *testing.T) {
	s, path := openTemp(t)
	putChain(t, s, "a", "b", "c")
	if err := s.PutSurrogate(SurrogateSpec{ForID: "b", ID: "b'", Name: "anon", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	// Replace object a many times to accumulate superseded records.
	for i := 0; i < 50; i++ {
		if err := s.PutObject(Object{ID: "a", Kind: Data, Name: "version"}); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Size()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Size()
	if after >= before {
		t.Errorf("compaction did not shrink: %d -> %d", before, after)
	}
	if s.NumObjects() != 3 || s.NumEdges() != 2 {
		t.Errorf("state after compact: %d objects %d edges", s.NumObjects(), s.NumEdges())
	}
	o, err := s.GetObject("a")
	if err != nil || o.Name != "version" {
		t.Errorf("latest version lost: %+v %v", o, err)
	}

	// The store remains writable and the log replays cleanly.
	if err := s.PutObject(Object{ID: "d", Kind: Data, Name: "after"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumObjects() != 4 || s2.NumEdges() != 2 {
		t.Errorf("reopen after compact: %d objects %d edges", s2.NumObjects(), s2.NumEdges())
	}
	if len(s2.SurrogatesOf("b")) != 1 {
		t.Error("surrogate lost across compact + reopen")
	}
}

func TestObjectHistory(t *testing.T) {
	s, path := openTemp(t)
	for i, name := range []string{"v1", "v2", "v3"} {
		if err := s.PutObject(Object{ID: "doc", Kind: Data, Name: name}); err != nil {
			t.Fatal(err)
		}
		if got := len(s.History("doc")); got != i {
			t.Errorf("after %s: history = %d, want %d", name, got, i)
		}
	}
	h := s.History("doc")
	if len(h) != 2 || h[0].Name != "v1" || h[1].Name != "v2" {
		t.Errorf("history = %+v", h)
	}
	if o, _ := s.GetObject("doc"); o.Name != "v3" {
		t.Errorf("live = %+v", o)
	}
	// History survives reopen (replayed from the log) ...
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(s2.History("doc")) != 2 {
		t.Errorf("history lost on reopen: %d", len(s2.History("doc")))
	}
	// ... and is dropped by compaction.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if len(s2.History("doc")) != 0 {
		t.Error("compaction should drop history")
	}
	if o, _ := s2.GetObject("doc"); o.Name != "v3" {
		t.Error("compaction lost the live version")
	}
	if got := s2.History("never-existed"); len(got) != 0 {
		t.Errorf("history of unknown id = %v", got)
	}
}

func TestCompactOnClosedStore(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err == nil {
		t.Error("compact on closed store accepted")
	}
}

func TestEdgeAccessors(t *testing.T) {
	s, _ := openTemp(t)
	putChain(t, s, "a", "b", "c")
	if got := s.EdgesFrom("a"); len(got) != 1 || got[0].To != "b" {
		t.Errorf("EdgesFrom(a) = %v", got)
	}
	if got := s.EdgesTo("c"); len(got) != 1 || got[0].From != "b" {
		t.Errorf("EdgesTo(c) = %v", got)
	}
	if got := s.EdgesFrom("c"); len(got) != 0 {
		t.Errorf("EdgesFrom(c) = %v", got)
	}
	// Returned slices are copies.
	es := s.EdgesFrom("a")
	es[0].To = "mutated"
	if s.EdgesFrom("a")[0].To != "b" {
		t.Error("EdgesFrom returned shared storage")
	}
}

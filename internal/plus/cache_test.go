package plus

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/privilege"
)

func TestCachedEngineHitsAndInvalidation(t *testing.T) {
	en := lineageFixture(t)
	ce := NewCachedEngine(en)
	req := Request{Start: "report", Direction: graph.Backward, Viewer: privilege.Public}

	r1, err := ce.Lineage(req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ce.Lineage(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second identical query should be served from cache")
	}
	hits, misses, entries := ce.CacheStats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/1/1", hits, misses, entries)
	}

	// Different viewer is a different entry.
	if _, err := ce.Lineage(Request{Start: "report", Direction: graph.Backward, Viewer: "Protected"}); err != nil {
		t.Fatal(err)
	}
	if _, _, entries := ce.CacheStats(); entries != 2 {
		t.Errorf("entries = %d, want 2", entries)
	}

	// A mutation outside the cached closures leaves them valid: the
	// delta-scoped refresh keeps both entries and keeps serving them.
	if err := en.store.PutObject(Object{ID: "unrelated", Kind: Data, Name: "unrelated"}); err != nil {
		t.Fatal(err)
	}
	r3, err := ce.Lineage(req)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Error("disjoint write evicted an unaffected cached account")
	}
	if _, _, entries := ce.CacheStats(); entries != 2 {
		t.Errorf("entries after disjoint write = %d, want 2", entries)
	}

	// A mutation touching the closure evicts exactly the affected
	// answers: re-storing an ancestor of report invalidates both viewers'
	// entries for it.
	if err := en.store.PutObject(Object{ID: "src", Kind: Data, Name: "raw feed v2"}); err != nil {
		t.Fatal(err)
	}
	r4, err := ce.Lineage(req)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Error("stale account served after a write inside its closure")
	}
	st := ce.Stats()
	if st.DeltaEvictions != 2 || st.Wipes != 0 {
		t.Errorf("delta evictions/wipes = %d/%d, want 2/0", st.DeltaEvictions, st.Wipes)
	}
}

func TestCachedEngineSensitivityChange(t *testing.T) {
	s, _ := openTemp(t)
	for _, o := range []Object{
		{ID: "a", Kind: Data, Name: "a"},
		{ID: "x", Kind: Data, Name: "x"},
		{ID: "b", Kind: Data, Name: "b"},
	} {
		if err := s.PutObject(o); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []Edge{{From: "a", To: "x"}, {From: "x", To: "b"}} {
		if err := s.PutEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	ce := NewCachedEngine(NewEngine(s, privilege.TwoLevel()))
	req := Request{Start: "b", Direction: graph.Backward, Viewer: privilege.Public}

	r1, err := ce.Lineage(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Account.Graph.HasNode("x") {
		t.Fatal("x should be public initially")
	}

	// The provider reclassifies x: replace-on-put with a higher lowest.
	// The §7 claim: no manual view maintenance — the next query just sees
	// the new sensitivity.
	if err := s.PutObject(Object{ID: "x", Kind: Data, Name: "x", Lowest: "Protected"}); err != nil {
		t.Fatal(err)
	}
	r2, err := ce.Lineage(req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Account.Graph.HasNode("x") {
		t.Error("reclassified node still visible; stale cache?")
	}
	if !r2.Account.Graph.HasEdge("a", "b") {
		t.Errorf("connectivity not summarised after reclassification: %v", r2.Account.Graph.Edges())
	}
}

func TestCachedEngineConcurrent(t *testing.T) {
	en := lineageFixture(t)
	ce := NewCachedEngine(en)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				viewer := privilege.Public
				if (i+j)%2 == 0 {
					viewer = "Protected"
				}
				if _, err := ce.Lineage(Request{Start: "report", Direction: graph.Backward, Viewer: viewer}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	hits, misses, _ := ce.CacheStats()
	if hits+misses != 160 {
		t.Errorf("hits+misses = %d, want 160", hits+misses)
	}
	if ce.String() == "" {
		t.Error("empty cache string")
	}
}

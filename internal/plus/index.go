package plus

import (
	"sync"
	"sync/atomic"

	"repro/internal/intern"
)

// This file implements the persistent secondary indexes of the storage
// layer: kind -> object ids, name -> object ids and (attr key, attr
// value) -> object ids, all keyed by interned symbols so a probe is one
// map lookup on an integer instead of a linear scan comparing strings.
//
// Each backend owns ONE live backendIndex, maintained lazily: queries go
// through Snapshot.FindByKind/FindByName/FindByAttr, and the first probe
// at a new revision advances the index by replaying the change feed
// (Snapshot.DeltaSince) from the revision it last covered. When the feed
// has aged out (ErrTooFarBehind) — or anything else goes wrong with the
// delta — the index is rebuilt in full from the probing snapshot, the
// same resync escape hatch every other change-feed consumer uses. Ingest
// itself never touches the index, so batch-load throughput is unchanged
// and index upkeep is billed to the queries that benefit from it.
//
// A probe from a snapshot OLDER than the index (a reader holding a stale
// snapshot while newer queries advanced the index) cannot be answered
// from the postings — entries added after the old snapshot would leak in.
// Those probes fall back to a linear scan of the probing snapshot and are
// counted as index misses.

// indexRow is what the index remembers about one live object: enough to
// unpublish its old postings when a replacement arrives on the feed.
type indexRow struct {
	kind  intern.Sym
	name  intern.Sym
	attrs []uint64 // intern.Pair(key, value) per feature
}

func rowFor(o Object) indexRow {
	row := indexRow{
		kind: intern.S(string(o.Kind)),
		name: intern.S(o.Name),
	}
	if len(o.Features) > 0 {
		row.attrs = make([]uint64, 0, len(o.Features))
		for k, v := range o.Features {
			row.attrs = append(row.attrs, intern.Pair(intern.S(k), intern.S(v)))
		}
	}
	return row
}

func (r indexRow) equal(s indexRow) bool {
	if r.kind != s.kind || r.name != s.name || len(r.attrs) != len(s.attrs) {
		return false
	}
	// Feature maps are tiny; quadratic membership is cheaper than sorting.
	for _, p := range r.attrs {
		found := false
		for _, q := range s.attrs {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// IndexStats is a point-in-time report of one backend's secondary-index
// state, surfaced through /v1/healthz, plusctl status and the metrics
// registry.
type IndexStats struct {
	// Rev is the revision the index currently covers.
	Rev uint64 `json:"rev"`
	// KindEntries/NameEntries/AttrEntries count postings per index (an
	// object contributes one kind entry, one name entry when named, and
	// one attr entry per feature pair).
	KindEntries int `json:"kindEntries"`
	NameEntries int `json:"nameEntries"`
	AttrEntries int `json:"attrEntries"`
	// Hits counts probes answered from the index; Misses counts probes
	// that fell back to a linear scan (stale snapshot, or no index).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Advances counts incremental catch-ups through the change feed;
	// Builds the initial constructions; Rebuilds the hazard resyncs
	// (ErrTooFarBehind and friends).
	Advances uint64 `json:"advances"`
	Builds   uint64 `json:"builds"`
	Rebuilds uint64 `json:"rebuilds"`
}

// backendIndex is the live secondary index of one backend. Probes take
// the read lock when the index already covers the probing snapshot's
// revision; the first probe at a newer revision takes the write lock and
// advances. Postings are unordered (consumers needing determinism sort).
type backendIndex struct {
	mu     sync.RWMutex
	built  bool
	rev    uint64
	byKind map[intern.Sym][]string
	byName map[intern.Sym][]string
	byAttr map[uint64][]string
	rows   map[string]indexRow

	attrEntries int // total feature pairs indexed

	hits     atomic.Uint64
	misses   atomic.Uint64
	advances atomic.Uint64
	builds   atomic.Uint64
	rebuilds atomic.Uint64
}

func newBackendIndex() *backendIndex { return &backendIndex{} }

func (ix *backendIndex) stats() IndexStats {
	ix.mu.RLock()
	st := IndexStats{
		Rev:         ix.rev,
		KindEntries: len(ix.rows),
		NameEntries: 0,
		AttrEntries: ix.attrEntries,
	}
	for _, ids := range ix.byName {
		st.NameEntries += len(ids)
	}
	ix.mu.RUnlock()
	st.Hits = ix.hits.Load()
	st.Misses = ix.misses.Load()
	st.Advances = ix.advances.Load()
	st.Builds = ix.builds.Load()
	st.Rebuilds = ix.rebuilds.Load()
	return st
}

// lookup answers one probe against the index at sn's revision, advancing
// the index first if it is behind. The read callback runs under the
// index lock and must only read the postings maps; lookup returns a
// private copy of its result. ok=false means the index cannot serve this
// snapshot (it is ahead of it) and the caller must scan.
func (ix *backendIndex) lookup(sn *Snapshot, read func() []string) (ids []string, ok bool) {
	ix.mu.RLock()
	if ix.built && ix.rev == sn.rev {
		ids = append([]string(nil), read()...)
		ix.mu.RUnlock()
		ix.hits.Add(1)
		return ids, true
	}
	ahead := ix.built && ix.rev > sn.rev
	ix.mu.RUnlock()
	if ahead {
		ix.misses.Add(1)
		return nil, false
	}
	ix.mu.Lock()
	if !ix.built || ix.rev < sn.rev {
		ix.advanceLocked(sn)
	}
	if ix.rev != sn.rev {
		// Another probe advanced past us between the unlock and relock.
		ix.mu.Unlock()
		ix.misses.Add(1)
		return nil, false
	}
	ids = append([]string(nil), read()...)
	ix.mu.Unlock()
	ix.hits.Add(1)
	return ids, true
}

// advanceLocked brings the index up to sn's revision: incrementally via
// the change feed when possible, by full rebuild from sn on the first
// build or on any feed hazard (ErrTooFarBehind, epoch rewrite, missing
// source). Caller holds the write lock.
func (ix *backendIndex) advanceLocked(sn *Snapshot) {
	if !ix.built {
		ix.rebuildLocked(sn)
		ix.builds.Add(1)
		return
	}
	// The walk skips the []Change materialization and merge-sort of
	// DeltaSince: edges and surrogates don't carry kind/name/attr
	// postings, and applyObjectLocked only needs per-object revision
	// order, which the walk guarantees. A failed walk may have applied a
	// partial delta; the rebuild below discards it wholesale.
	if err := sn.walkObjectChanges(ix.rev, ix.applyObjectLocked); err != nil {
		ix.rebuildLocked(sn)
		ix.rebuilds.Add(1)
		return
	}
	ix.rev = sn.rev
	ix.advances.Add(1)
}

func (ix *backendIndex) rebuildLocked(sn *Snapshot) {
	n := len(sn.objects)
	ix.byKind = make(map[intern.Sym][]string, 8)
	ix.byName = make(map[intern.Sym][]string, n)
	ix.byAttr = make(map[uint64][]string, n)
	ix.rows = make(map[string]indexRow, n)
	ix.attrEntries = 0
	for id, o := range sn.objects {
		row := rowFor(o)
		ix.rows[id] = row
		ix.publishLocked(id, row)
	}
	ix.rev = sn.rev
	ix.built = true
}

// applyObjectLocked folds one object store/replace from the change feed
// into the postings.
func (ix *backendIndex) applyObjectLocked(o Object) {
	row := rowFor(o)
	if old, existed := ix.rows[o.ID]; existed {
		if old.equal(row) {
			return
		}
		ix.unpublishLocked(o.ID, old)
	}
	ix.rows[o.ID] = row
	ix.publishLocked(o.ID, row)
}

func (ix *backendIndex) publishLocked(id string, row indexRow) {
	ix.byKind[row.kind] = append(ix.byKind[row.kind], id)
	if row.name != intern.None {
		ix.byName[row.name] = append(ix.byName[row.name], id)
	}
	for _, p := range row.attrs {
		ix.byAttr[p] = append(ix.byAttr[p], id)
	}
	ix.attrEntries += len(row.attrs)
}

func (ix *backendIndex) unpublishLocked(id string, row indexRow) {
	ix.byKind[row.kind] = removeID(ix.byKind[row.kind], id)
	if row.name != intern.None {
		ix.byName[row.name] = removeID(ix.byName[row.name], id)
	}
	for _, p := range row.attrs {
		ix.byAttr[p] = removeID(ix.byAttr[p], id)
	}
	ix.attrEntries -= len(row.attrs)
}

// removeID swap-deletes the first occurrence of id (postings are
// unordered).
func removeID(ids []string, id string) []string {
	for i, x := range ids {
		if x == id {
			ids[i] = ids[len(ids)-1]
			return ids[:len(ids)-1]
		}
	}
	return ids
}

// FindByKind returns the ids of the snapshot's objects with the given
// kind, in unspecified order. Served from the backend's secondary index
// when it covers this snapshot's revision; otherwise (stale snapshot,
// index-less snapshot) a linear scan, counted as an index miss.
func (sn *Snapshot) FindByKind(kind string) []string {
	if ix := sn.idx; ix != nil {
		sym, known := intern.Lookup(kind)
		if !known {
			// Never interned: no stored record anywhere carries this
			// string, so no object in this snapshot can match.
			ix.hits.Add(1)
			return nil
		}
		if ids, ok := ix.lookup(sn, func() []string { return ix.byKind[sym] }); ok {
			return ids
		}
	}
	var out []string
	for id, o := range sn.objects {
		if string(o.Kind) == kind {
			out = append(out, id)
		}
	}
	return out
}

// FindByName returns the ids of the snapshot's objects with the given
// (non-empty) name, in unspecified order; see FindByKind for the serving
// strategy.
func (sn *Snapshot) FindByName(name string) []string {
	if name == "" {
		// Unnamed objects are not indexed; scan for them.
		var out []string
		for id, o := range sn.objects {
			if o.Name == "" {
				out = append(out, id)
			}
		}
		return out
	}
	if ix := sn.idx; ix != nil {
		sym, known := intern.Lookup(name)
		if !known {
			ix.hits.Add(1)
			return nil
		}
		if ids, ok := ix.lookup(sn, func() []string { return ix.byName[sym] }); ok {
			return ids
		}
	}
	var out []string
	for id, o := range sn.objects {
		if o.Name == name {
			out = append(out, id)
		}
	}
	return out
}

// FindByAttr returns the ids of the snapshot's objects whose feature map
// contains exactly the pair (key, value), in unspecified order. The
// reserved keys "kind" and "name" are routed to the kind and name
// indexes (the view layer exposes both as features). Note the contract
// is contains-pair: an object LACKING key entirely does not match even
// when value is empty — callers wanting missing-key semantics must scan.
func (sn *Snapshot) FindByAttr(key, value string) []string {
	switch key {
	case "kind":
		return sn.FindByKind(value)
	case "name":
		return sn.FindByName(value)
	}
	if ix := sn.idx; ix != nil {
		ksym, kok := intern.Lookup(key)
		vsym, vok := intern.Lookup(value)
		if !kok || !vok {
			ix.hits.Add(1)
			return nil
		}
		pair := intern.Pair(ksym, vsym)
		if ids, ok := ix.lookup(sn, func() []string { return ix.byAttr[pair] }); ok {
			return ids
		}
	}
	var out []string
	for id, o := range sn.objects {
		if v, ok := o.Features[key]; ok && v == value {
			out = append(out, id)
		}
	}
	return out
}

// indexStatsProvider is implemented by backends that own a secondary
// index; healthz and the metrics registry discover it by assertion
// (through unwrapBackend for decorated stores).
type indexStatsProvider interface {
	IndexStats() IndexStats
}

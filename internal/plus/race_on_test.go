//go:build race

package plus_test

// raceEnabled reports that this binary was built with -race, whose
// instrumentation distorts the timing ratios the overhead guards check.
const raceEnabled = true

package plus

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

// storeModel is the trivially-correct reference the real store is checked
// against: last-writer-wins objects, append-only unique edges, append-only
// surrogates.
type storeModel struct {
	objects    map[string]Object
	edges      map[[2]string]Edge
	surrogates map[string][]SurrogateSpec
}

func newStoreModel() *storeModel {
	return &storeModel{
		objects:    map[string]Object{},
		edges:      map[[2]string]Edge{},
		surrogates: map[string][]SurrogateSpec{},
	}
}

// applyRandomOps drives the same random operation sequence into the store
// and the model, recording only operations the store accepted.
func applyRandomOps(r *rand.Rand, s *Store, m *storeModel, n int) error {
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0, 1: // put object (replace allowed)
			o := Object{
				ID:   ids[r.Intn(len(ids))],
				Kind: Data,
				Name: fmt.Sprintf("v%d", i),
			}
			if r.Intn(2) == 0 {
				o.Kind = Invocation
			}
			if r.Intn(3) == 0 {
				o.Lowest = "Protected"
				o.Protect = "surrogate"
			}
			if err := s.PutObject(o); err != nil {
				return err
			}
			m.objects[o.ID] = o
		case 2: // put edge (may be rejected: missing endpoint, dup, self)
			e := Edge{From: ids[r.Intn(len(ids))], To: ids[r.Intn(len(ids))], Label: "l"}
			if err := s.PutEdge(e); err == nil {
				m.edges[[2]string{e.From, e.To}] = e
			}
		case 3: // put surrogate (may be rejected: missing original, dup id)
			orig := ids[r.Intn(len(ids))]
			sp := SurrogateSpec{ForID: orig, ID: fmt.Sprintf("%s~%d", orig, i), Name: "s", InfoScore: 0.5}
			if err := s.PutSurrogate(sp); err == nil {
				m.surrogates[orig] = append(m.surrogates[orig], sp)
			}
		}
	}
	return nil
}

// agree checks that store and model describe the same contents.
func agree(t *testing.T, s *Store, m *storeModel, stage string) {
	t.Helper()
	if s.NumObjects() != len(m.objects) {
		t.Fatalf("%s: objects %d vs model %d", stage, s.NumObjects(), len(m.objects))
	}
	for id, want := range m.objects {
		got, err := s.GetObject(id)
		if err != nil {
			t.Fatalf("%s: missing object %s: %v", stage, id, err)
		}
		if got.Name != want.Name || got.Kind != want.Kind || got.Lowest != want.Lowest {
			t.Fatalf("%s: object %s = %+v, want %+v", stage, id, got, want)
		}
	}
	edgeCount := 0
	for id := range m.objects {
		for _, e := range s.EdgesFrom(id) {
			if _, ok := m.edges[[2]string{e.From, e.To}]; !ok {
				t.Fatalf("%s: store has unexpected edge %s->%s", stage, e.From, e.To)
			}
			edgeCount++
		}
		if got, want := len(s.SurrogatesOf(id)), len(m.surrogates[id]); got != want {
			t.Fatalf("%s: surrogates of %s = %d, want %d", stage, id, got, want)
		}
	}
	if edgeCount != len(m.edges) {
		t.Fatalf("%s: edges %d vs model %d", stage, edgeCount, len(m.edges))
	}
}

// Property: after any random operation sequence, the store agrees with the
// model — live, after reopen, and after compaction + reopen.
func TestStoreModelProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	check := func(seed int64) bool {
		i++
		path := filepath.Join(dir, fmt.Sprintf("model-%d.log", i))
		s, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		m := newStoreModel()
		if err := applyRandomOps(r, s, m, 60); err != nil {
			t.Fatal(err)
		}
		agree(t, s, m, "live")

		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s, err = Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		agree(t, s, m, "reopened")

		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		agree(t, s, m, "compacted")

		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s, err = Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		agree(t, s, m, "compacted+reopened")
		s.Close()
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

package plus

import (
	"fmt"
	"net/http"
)

// CodeReadOnly is the structured error code a follower answers writes
// with: the node serves queries from replicated state and accepts no
// mutations of its own (readonly.go / internal/replica).
const CodeReadOnly = "read_only"

// readOnly is the server's follower-mode write policy (WithReadOnly).
type readOnly struct {
	enabled bool
	// proxy, when non-nil, forwards refused writes to the primary
	// (plusd -follow-proxy-writes) instead of answering 403.
	proxy http.Handler
}

// WithReadOnly puts the server in follower mode: every mutating endpoint
// (/v1/objects, /v1/edges, /v1/surrogates, POST /v1/opm, /v2/batch,
// /v2/compact) refuses with a structured 403 code "read_only" instead of
// touching the local store, which only the replication apply loop may
// write. A non-nil proxy reverses the refusal into a pass-through: the
// original request — auth headers intact, so the primary authorizes the
// original principal — is forwarded to it, and the follower observes the
// write later through the change feed like any other. Reads (lineage,
// PLUSQL, point reads, snapshot, changes, sessions) are untouched.
func WithReadOnly(proxy http.Handler) ServerOption {
	return func(s *Server) { s.readOnly = readOnly{enabled: true, proxy: proxy} }
}

// gateWrite enforces the read-only policy on one mutating request. It
// reports true when the request was fully answered here (refused or
// proxied) and the handler must return. The gate runs before
// authorization: the follower may not even hold the keyring material to
// judge an ingest token, and when proxying, authorization is the
// primary's call to make.
func (s *Server) gateWrite(w http.ResponseWriter, r *http.Request) bool {
	if !s.readOnly.enabled {
		return false
	}
	if s.readOnly.proxy != nil {
		s.readOnly.proxy.ServeHTTP(w, r)
		return true
	}
	WriteAPIError(w, v2Errorf(http.StatusForbidden, CodeReadOnly,
		"plus: this node is a read replica; write to the primary"))
	return true
}

// ReplicaHealth is the replication block of the healthz payload (and of
// plusctl status): where this node replicates from and how far behind it
// is. internal/replica assembles it; the server only renders it
// (WithReplicaHealth), keeping the dependency one-way.
type ReplicaHealth struct {
	// Role is "follower" (a primary serves no block at all).
	Role string `json:"role"`
	// Primary is the base URL the node replicates from.
	Primary string `json:"primary"`
	// State is bootstrapping | following | resyncing | degraded | failed |
	// stopped.
	State string `json:"state"`
	// AppliedRev is the last primary revision applied locally; PrimaryRev
	// the newest primary revision the follower has observed.
	AppliedRev uint64 `json:"appliedRev"`
	PrimaryRev uint64 `json:"primaryRev"`
	// LagRevisions is PrimaryRev-AppliedRev (0 when caught up);
	// LagSeconds is how long the follower has continuously been behind.
	LagRevisions uint64  `json:"lagRevisions"`
	LagSeconds   float64 `json:"lagSeconds"`
	// Applied counts change events applied since boot, Batches the local
	// Apply calls they were coalesced into, ApplyPerSec the recent apply
	// throughput (events/s, exponentially decayed).
	Applied     uint64  `json:"applied"`
	Batches     uint64  `json:"batches"`
	ApplyPerSec float64 `json:"applyPerSec"`
	// Resyncs counts snapshot rebases (bootstrap excluded), Reconnects the
	// change-feed transport reconnects.
	Resyncs    uint64 `json:"resyncs"`
	Reconnects uint64 `json:"reconnects"`
}

// String renders the one-line summary plusd logs on state changes.
func (h *ReplicaHealth) String() string {
	return fmt.Sprintf("replica %s of %s: applied %d/%d (lag %d revs, %.1fs), %d resyncs, %d reconnects",
		h.State, h.Primary, h.AppliedRev, h.PrimaryRev, h.LagRevisions, h.LagSeconds, h.Resyncs, h.Reconnects)
}

// WithReplicaHealth registers the provider of the healthz replication
// block. The callback must be safe for concurrent use and may return nil
// while replication has not started.
func WithReplicaHealth(fn func() *ReplicaHealth) ServerOption {
	return func(s *Server) { s.replicaHealth = fn }
}

package plus

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/privilege"
)

// newReadOnlyServer serves a MemBackend in follower mode (refusing
// writes, no proxy) and returns it plus the backend.
func newReadOnlyServer(t *testing.T, opts ...ServerOption) (*httptest.Server, *MemBackend) {
	t.Helper()
	m := NewMemBackend(4)
	t.Cleanup(func() { m.Close() })
	opts = append([]ServerOption{WithReadOnly(nil)}, opts...)
	srv := NewServer(NewEngine(m, privilege.TwoLevel()), opts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, m
}

func decodeAPIError(t *testing.T, resp *http.Response) *APIError {
	t.Helper()
	defer resp.Body.Close()
	var e APIError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return &e
}

func TestReadOnlyRefusesWrites(t *testing.T) {
	ts, m := newReadOnlyServer(t)

	writes := []struct{ path, body string }{
		{"/v1/objects", `{"id":"a","kind":"data","name":"x"}`},
		{"/v1/edges", `{"from":"a","to":"b","label":"input-to"}`},
		{"/v1/surrogates", `{"for":"a","id":"a2","name":"y"}`},
		{"/v2/batch", `{"objects":[{"id":"a","kind":"data","name":"x"}]}`},
		{"/v2/compact", `{}`},
	}
	for _, wr := range writes {
		resp, err := http.Post(ts.URL+wr.path, "application/json", strings.NewReader(wr.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("POST %s: status = %d, want 403", wr.path, resp.StatusCode)
		}
		if e := decodeAPIError(t, resp); e.Code != CodeReadOnly {
			t.Errorf("POST %s: code = %q, want %q", wr.path, e.Code, CodeReadOnly)
		}
	}
	if n := m.NumObjects(); n != 0 {
		t.Errorf("read-only store mutated: %d objects", n)
	}
}

func TestReadOnlyLeavesReadsAlone(t *testing.T) {
	ts, m := newReadOnlyServer(t)
	// The replication apply loop writes the backend directly, below the
	// HTTP surface.
	if _, err := m.Apply(Batch{Objects: []Object{{ID: "a", Kind: Data, Name: "x"}}}); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{
		"/v1/healthz",
		"/v1/objects/a",
		"/v1/lineage?start=a",
		"/v2/snapshot",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestReadOnlyProxyForwardsWrites(t *testing.T) {
	var got struct {
		method, path, auth string
	}
	proxy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.method, got.path, got.auth = r.Method, r.URL.Path, r.Header.Get("Authorization")
		w.WriteHeader(http.StatusAccepted)
	})
	m := NewMemBackend(4)
	defer m.Close()
	srv := NewServer(NewEngine(m, privilege.TwoLevel()), WithReadOnly(proxy))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v2/batch", strings.NewReader(`{}`))
	req.Header.Set("Authorization", "Bearer original-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("proxied status = %d, want 202", resp.StatusCode)
	}
	if got.method != http.MethodPost || got.path != "/v2/batch" {
		t.Errorf("proxy saw %s %s", got.method, got.path)
	}
	if got.auth != "Bearer original-token" {
		t.Errorf("proxy lost auth header: %q", got.auth)
	}
}

func TestReplicaHealthInHealthz(t *testing.T) {
	fake := &ReplicaHealth{
		Role: "follower", Primary: "http://primary:7601", State: "following",
		AppliedRev: 41, PrimaryRev: 44, LagRevisions: 3, LagSeconds: 1.5,
	}
	ts, _ := newReadOnlyServer(t, WithReplicaHealth(func() *ReplicaHealth { return fake }))

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Replica == nil {
		t.Fatal("healthz has no replica block")
	}
	if h.Replica.Primary != fake.Primary || h.Replica.LagRevisions != 3 {
		t.Errorf("replica block = %+v", h.Replica)
	}
	if s := h.Replica.String(); !strings.Contains(s, "lag 3 revs") {
		t.Errorf("String() = %q", s)
	}
}

// A primary (no WithReplicaHealth) must keep the block absent, so
// followers of followers cannot be configured by accident.
func TestHealthzOmitsReplicaOnPrimary(t *testing.T) {
	m := NewMemBackend(4)
	defer m.Close()
	ts := httptest.NewServer(NewServer(NewEngine(m, privilege.TwoLevel())))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["replica"]; ok {
		t.Error("primary healthz carries a replica block")
	}
}

package plus

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/privilege"
)

// wideDAG stores a 3-level fan-in DAG wide enough to trip the parallel
// frontier (width > parallelFrontier): `width` leaves feed `width`
// mid-level invocations (each leaf into two invocations), which all feed
// one sink. Returns the sink id.
func wideDAG(t testing.TB, b Backend, width int) string {
	t.Helper()
	var batch Batch
	for i := 0; i < width; i++ {
		batch.Objects = append(batch.Objects, Object{ID: fmt.Sprintf("leaf%03d", i), Kind: Data, Name: "leaf"})
	}
	for i := 0; i < width; i++ {
		id := fmt.Sprintf("mid%03d", i)
		o := Object{ID: id, Kind: Invocation, Name: "mid"}
		if i%4 == 0 {
			o.Lowest = "Protected"
			o.Protect = "surrogate"
		}
		batch.Objects = append(batch.Objects, o)
		batch.Edges = append(batch.Edges,
			Edge{From: fmt.Sprintf("leaf%03d", i), To: id, Label: "input-to"},
			Edge{From: fmt.Sprintf("leaf%03d", (i+1)%width), To: id, Label: "input-to"},
		)
	}
	batch.Objects = append(batch.Objects, Object{ID: "sink", Kind: Data, Name: "sink"})
	for i := 0; i < width; i++ {
		batch.Edges = append(batch.Edges, Edge{From: fmt.Sprintf("mid%03d", i), To: "sink", Label: "generated"})
	}
	if _, err := b.Apply(batch); err != nil {
		t.Fatal(err)
	}
	return "sink"
}

// TestParallelFetchMatchesSequential pins the tentpole invariant: the
// worker-pool frontier BFS must fetch exactly the same closure, in the
// same order, as the single-threaded walk.
func TestParallelFetchMatchesSequential(t *testing.T) {
	for _, h := range conformanceHarnesses() {
		t.Run(h.name, func(t *testing.T) {
			b, _ := h.open(t)
			sink := wideDAG(t, b, 200)

			seq := NewEngine(b, privilege.TwoLevel())
			seq.SetFetchWorkers(1)
			par := NewEngine(b, privilege.TwoLevel())
			par.SetFetchWorkers(8)

			for _, req := range []Request{
				{Start: sink, Direction: graph.Backward},
				{Start: sink, Direction: graph.Backward, Depth: 1},
				{Start: "leaf000", Direction: graph.Forward},
				{Start: "leaf000", Direction: graph.Undirected},
				{Start: sink, Direction: graph.Backward, LabelFilter: "generated"},
				{Start: sink, Direction: graph.Backward, KindFilter: Invocation},
			} {
				fs, err := seq.fetch(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				fp, err := par.fetch(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if len(fs.objects) != len(fp.objects) || len(fs.edges) != len(fp.edges) {
					t.Fatalf("req %+v: sequential %d objects/%d edges, parallel %d/%d",
						req, len(fs.objects), len(fs.edges), len(fp.objects), len(fp.edges))
				}
				for i := range fs.objects {
					if fs.objects[i].ID != fp.objects[i].ID {
						t.Fatalf("req %+v: object order diverges at %d: %s vs %s",
							req, i, fs.objects[i].ID, fp.objects[i].ID)
					}
				}
				for i := range fs.edges {
					if fs.edges[i] != fp.edges[i] {
						t.Fatalf("req %+v: edge order diverges at %d", req, i)
					}
				}
			}
		})
	}
}

// TestSnapshotQueriesDoNotBlockWriters drives concurrent lineage reads
// and writes: with snapshot isolation both must make progress, and every
// answer must be internally consistent (each fetched edge's endpoints
// are in the fetched object set).
func TestSnapshotQueriesDoNotBlockWriters(t *testing.T) {
	for _, h := range conformanceHarnesses() {
		t.Run(h.name, func(t *testing.T) {
			b, _ := h.open(t)
			sink := wideDAG(t, b, 100)
			en := NewEngine(b, privilege.TwoLevel())

			stop := make(chan struct{})
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					id := fmt.Sprintf("extra%05d", i)
					if err := b.PutObject(Object{ID: id, Kind: Data, Name: "extra"}); err != nil {
						t.Errorf("writer: %v", err)
						return
					}
				}
			}()
			var readers sync.WaitGroup
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for i := 0; i < 30; i++ {
						res, err := en.Lineage(Request{Start: sink, Direction: graph.Backward})
						if err != nil {
							t.Errorf("reader: %v", err)
							return
						}
						ids := map[graph.NodeID]bool{}
						for _, id := range res.Spec.Graph.Nodes() {
							ids[id] = true
						}
						for _, e := range res.Spec.Graph.Edges() {
							if !ids[e.From] || !ids[e.To] {
								t.Errorf("torn closure: edge %s->%s without endpoints", e.From, e.To)
								return
							}
						}
					}
				}()
			}
			// The writer runs for as long as the readers take, so reads
			// and writes genuinely overlap.
			readers.Wait()
			close(stop)
			<-writerDone
		})
	}
}

package plus

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay writes arbitrary bytes as a log file and opens it: replay
// must never panic; it either recovers a store (possibly empty, after
// truncating a torn tail) or fails with an error. Stores it does recover
// must survive an append and a reopen.
func FuzzReplay(f *testing.F) {
	// Seed with a real log prefix.
	dir, err := os.MkdirTemp("", "plus-fuzz-seed-*")
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(dir, "seed.log")
	s, err := Open(path, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := s.PutObject(Object{ID: "a", Kind: Data, Name: "seed"}); err != nil {
		f.Fatal(err)
	}
	if err := s.PutObject(Object{ID: "b", Kind: Invocation, Name: "seed2"}); err != nil {
		f.Fatal(err)
	}
	if err := s.PutEdge(Edge{From: "a", To: "b"}); err != nil {
		f.Fatal(err)
	}
	s.Close()
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	os.RemoveAll(dir)

	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // torn mid-record
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		fpath := filepath.Join(fdir, "fuzz.log")
		if err := os.WriteFile(fpath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(fpath, Options{})
		if err != nil {
			return // rejected as corrupt: fine
		}
		defer st.Close()
		// A recovered store must stay consistent and writable.
		if st.NumObjects() < 0 || st.NumEdges() < 0 {
			t.Fatal("negative counts")
		}
		if err := st.PutObject(Object{ID: "post-recovery", Kind: Data, Name: "x"}); err != nil {
			t.Fatalf("recovered store rejects appends: %v", err)
		}
		n := st.NumObjects()
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		st2, err := Open(fpath, Options{})
		if err != nil {
			t.Fatalf("reopen after recovery+append failed: %v", err)
		}
		defer st2.Close()
		if st2.NumObjects() != n {
			t.Fatalf("reopen lost objects: %d vs %d", st2.NumObjects(), n)
		}
	})
}

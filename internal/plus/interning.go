package plus

import "repro/internal/intern"

// This file canonicalises stored records through the global intern table
// (internal/intern) at every backend's ingest funnel. Object ids are NOT
// interned — they are unique per record and never compared in bulk — but
// kinds, names, feature keys/values, privilege nicknames, protection
// modes and edge labels repeat across the whole graph: after interning,
// every snapshot, change-feed entry, spec and account clone holding the
// same string shares one backing array, and the secondary indexes compare
// them as integer symbols.

// internObject returns o with its repeated strings canonicalised.
func internObject(o Object) Object {
	o.Kind = ObjectKind(intern.Canon(string(o.Kind)))
	o.Name = intern.Canon(o.Name)
	o.Lowest = intern.Canon(o.Lowest)
	o.Protect = intern.Canon(o.Protect)
	o.Features = internFeatures(o.Features)
	return o
}

// internEdge returns e with its repeated strings canonicalised.
func internEdge(e Edge) Edge {
	e.Label = intern.Canon(e.Label)
	e.Marking = intern.Canon(e.Marking)
	e.Lowest = intern.Canon(e.Lowest)
	return e
}

// internSurrogate returns sp with its repeated strings canonicalised.
func internSurrogate(sp SurrogateSpec) SurrogateSpec {
	sp.Name = intern.Canon(sp.Name)
	sp.Lowest = intern.Canon(sp.Lowest)
	sp.Features = internFeatures(sp.Features)
	return sp
}

func internFeatures(f map[string]string) map[string]string {
	if len(f) == 0 {
		return f
	}
	out := make(map[string]string, len(f))
	for k, v := range f {
		out[intern.Canon(k)] = intern.Canon(v)
	}
	return out
}

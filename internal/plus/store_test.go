package plus

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plus.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func putChain(t *testing.T, s *Store, ids ...string) {
	t.Helper()
	for _, id := range ids {
		if err := s.PutObject(Object{ID: id, Kind: Data, Name: "obj " + id}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := s.PutEdge(Edge{From: ids[i], To: ids[i+1], Label: "input-to"}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPutAndGetObject(t *testing.T) {
	s, _ := openTemp(t)
	o := Object{ID: "d1", Kind: Data, Name: "report", Features: map[string]string{"fmt": "pdf"}, Lowest: "Secret"}
	if err := s.PutObject(o); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetObject("d1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "report" || got.Features["fmt"] != "pdf" || got.Lowest != "Secret" {
		t.Errorf("got %+v", got)
	}
	if _, err := s.GetObject("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object error = %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.PutObject(Object{ID: "", Kind: Data}); err == nil {
		t.Error("empty id accepted")
	}
	if err := s.PutObject(Object{ID: "x", Kind: "banana"}); err == nil {
		t.Error("unknown kind accepted")
	}
	putChain(t, s, "a", "b")
	if err := s.PutEdge(Edge{From: "a", To: "zzz"}); err == nil {
		t.Error("edge to missing object accepted")
	}
	if err := s.PutEdge(Edge{From: "zzz", To: "a"}); err == nil {
		t.Error("edge from missing object accepted")
	}
	if err := s.PutEdge(Edge{From: "a", To: "a"}); err == nil {
		t.Error("self edge accepted")
	}
	if err := s.PutEdge(Edge{From: "a", To: "b"}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := s.PutSurrogate(SurrogateSpec{ForID: "zzz", ID: "z'"}); err == nil {
		t.Error("surrogate for missing object accepted")
	}
	if err := s.PutSurrogate(SurrogateSpec{ForID: "a", ID: "a"}); err == nil {
		t.Error("surrogate id == original accepted")
	}
	if err := s.PutSurrogate(SurrogateSpec{ForID: "a", ID: "a'", InfoScore: 2}); err == nil {
		t.Error("bad infoScore accepted")
	}
}

func TestReopenRecoversState(t *testing.T) {
	s, path := openTemp(t)
	putChain(t, s, "a", "b", "c")
	if err := s.PutSurrogate(SurrogateSpec{ForID: "b", ID: "b'", Name: "anon", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumObjects() != 3 || s2.NumEdges() != 2 {
		t.Errorf("recovered %d objects %d edges, want 3, 2", s2.NumObjects(), s2.NumEdges())
	}
	o, err := s2.GetObject("b")
	if err != nil || o.Name != "obj b" {
		t.Errorf("recovered object b = %+v, %v", o, err)
	}
	if len(s2.surrogates["b"]) != 1 {
		t.Error("surrogate lost on reopen")
	}
	// The store stays writable after recovery.
	if err := s2.PutObject(Object{ID: "d", Kind: Invocation, Name: "proc"}); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	s, path := openTemp(t)
	putChain(t, s, "a", "b")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: append garbage that looks like a
	// half-written record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if s2.NumObjects() != 2 || s2.NumEdges() != 1 {
		t.Errorf("recovered %d objects %d edges, want 2, 1", s2.NumObjects(), s2.NumEdges())
	}
	// New appends land where the torn tail was removed.
	if err := s2.PutObject(Object{ID: "c", Kind: Data, Name: "after-crash"}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.NumObjects() != 3 {
		t.Errorf("objects after re-recovery = %d, want 3", s3.NumObjects())
	}
}

func TestCorruptTailChecksumTruncated(t *testing.T) {
	s, path := openTemp(t)
	putChain(t, s, "a", "b")
	sizeBefore := s.Size()
	if err := s.PutObject(Object{ID: "c", Kind: Data}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the final record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[sizeBefore+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("tail corruption should truncate, got %v", err)
	}
	defer s2.Close()
	if s2.NumObjects() != 2 {
		t.Errorf("objects = %d, want 2 (corrupt tail dropped)", s2.NumObjects())
	}
}

func TestMidLogCorruptionFailsLoudly(t *testing.T) {
	s, path := openTemp(t)
	putChain(t, s, "a", "b", "c", "d")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte early in the log (inside the first record).
	data[10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("mid-log corruption silently accepted")
	}
}

func TestUseAfterClose(t *testing.T) {
	s, _ := openTemp(t)
	putChain(t, s, "a", "b")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := s.PutObject(Object{ID: "x", Kind: Data}); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close = %v", err)
	}
	if _, err := s.GetObject("a"); !errors.Is(err, ErrClosed) {
		t.Errorf("get after close = %v", err)
	}
}

func TestSyncOptionAndSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plus.log")
	s, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A fresh store holds no records, but it is stamped with its epoch
	// identity on creation, so the log is not zero bytes.
	if s.NumObjects() != 0 || s.Revision() != 0 {
		t.Error("fresh store should be empty")
	}
	if s.Size() == 0 {
		t.Error("fresh store missing its epoch stamp")
	}
	if s.Epoch() == "" {
		t.Error("fresh store has no epoch")
	}
	before := s.Size()
	putChain(t, s, "a", "b")
	if s.Size() <= before {
		t.Error("size did not grow")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != s.Size() {
		t.Errorf("file size %d != tracked size %d", info.Size(), s.Size())
	}
}

func TestObjectsListing(t *testing.T) {
	s, _ := openTemp(t)
	putChain(t, s, "a", "b", "c")
	objs := s.Objects()
	if len(objs) != 3 {
		t.Errorf("Objects() = %d items", len(objs))
	}
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	s, _ := openTemp(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := string(rune('a'+w)) + string(rune('0'+i%10)) + string(rune('0'+i/10))
				if err := s.PutObject(Object{ID: id, Kind: Data, Name: id}); err != nil {
					t.Errorf("put %s: %v", id, err)
					return
				}
				if _, err := s.GetObject(id); err != nil {
					t.Errorf("get %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.NumObjects() != workers*25 {
		t.Errorf("objects = %d, want %d", s.NumObjects(), workers*25)
	}
}

package plus

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

// sortedIDs normalises an unordered posting list for comparison.
func sortedIDs(ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	return out
}

// scanByKind / scanByName / scanByAttr are the linear-scan reference the
// index is checked against.
func scanByKind(sn *Snapshot, kind string) []string {
	var out []string
	for _, o := range sn.Objects() {
		if string(o.Kind) == kind {
			out = append(out, o.ID)
		}
	}
	return sortedIDs(out)
}

func scanByName(sn *Snapshot, name string) []string {
	var out []string
	for _, o := range sn.Objects() {
		if o.Name == name {
			out = append(out, o.ID)
		}
	}
	return sortedIDs(out)
}

func scanByAttr(sn *Snapshot, key, value string) []string {
	var out []string
	for _, o := range sn.Objects() {
		switch key {
		case "kind":
			if string(o.Kind) == value {
				out = append(out, o.ID)
			}
		case "name":
			if o.Name == value {
				out = append(out, o.ID)
			}
		default:
			if v, ok := o.Features[key]; ok && v == value {
				out = append(out, o.ID)
			}
		}
	}
	return sortedIDs(out)
}

func indexTestBackends(t *testing.T) map[string]Backend {
	t.Helper()
	lb, err := Open(filepath.Join(t.TempDir(), "plus.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lb.Close() })
	mb := NewMemBackend(4)
	t.Cleanup(func() { mb.Close() })
	return map[string]Backend{"log": lb, "mem": mb}
}

func TestFindByIndexBasics(t *testing.T) {
	for label, b := range indexTestBackends(t) {
		t.Run(label, func(t *testing.T) {
			for i := 0; i < 20; i++ {
				kind := Data
				if i%3 == 0 {
					kind = Invocation
				}
				o := Object{
					ID:   fmt.Sprintf("o%02d", i),
					Kind: kind,
					Name: fmt.Sprintf("n%d", i%5),
					Features: map[string]string{
						"owner": fmt.Sprintf("u%d", i%4),
					},
				}
				if err := b.PutObject(o); err != nil {
					t.Fatal(err)
				}
			}
			sn, err := b.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sortedIDs(sn.FindByKind("invocation")), scanByKind(sn, "invocation"); !equalStrings(got, want) {
				t.Fatalf("FindByKind = %v, want %v", got, want)
			}
			if got, want := sortedIDs(sn.FindByName("n2")), scanByName(sn, "n2"); !equalStrings(got, want) {
				t.Fatalf("FindByName = %v, want %v", got, want)
			}
			if got, want := sortedIDs(sn.FindByAttr("owner", "u1")), scanByAttr(sn, "owner", "u1"); !equalStrings(got, want) {
				t.Fatalf("FindByAttr = %v, want %v", got, want)
			}
			// Reserved keys route to the kind/name indexes.
			if got, want := sortedIDs(sn.FindByAttr("kind", "data")), scanByKind(sn, "data"); !equalStrings(got, want) {
				t.Fatalf("FindByAttr(kind) = %v, want %v", got, want)
			}
			if got, want := sortedIDs(sn.FindByAttr("name", "n0")), scanByName(sn, "n0"); !equalStrings(got, want) {
				t.Fatalf("FindByAttr(name) = %v, want %v", got, want)
			}
			// Constants never stored anywhere answer empty without scanning.
			if got := sn.FindByName("never-stored-name-xyzzy"); len(got) != 0 {
				t.Fatalf("unknown name matched %v", got)
			}
			st := mustIndexStats(t, b)
			if st.Hits == 0 {
				t.Fatalf("no index hits recorded: %+v", st)
			}
			if st.Builds != 1 {
				t.Fatalf("builds = %d, want 1", st.Builds)
			}
			if st.KindEntries != 20 {
				t.Fatalf("kind entries = %d, want 20", st.KindEntries)
			}
		})
	}
}

func mustIndexStats(t *testing.T, b Backend) IndexStats {
	t.Helper()
	p, ok := b.(indexStatsProvider)
	if !ok {
		t.Fatalf("backend %T has no index stats", b)
	}
	return p.IndexStats()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIndexAdvancesIncrementally proves later probes catch up through the
// change feed instead of rebuilding.
func TestIndexAdvancesIncrementally(t *testing.T) {
	for label, b := range indexTestBackends(t) {
		t.Run(label, func(t *testing.T) {
			put := func(i int) {
				o := Object{ID: fmt.Sprintf("o%03d", i), Kind: Data, Name: fmt.Sprintf("n%d", i)}
				if err := b.PutObject(o); err != nil {
					t.Fatal(err)
				}
			}
			put(0)
			sn, _ := b.Snapshot()
			sn.FindByKind("data") // first probe: initial build
			for i := 1; i <= 5; i++ {
				put(i)
				sn, _ = b.Snapshot()
				if got := sortedIDs(sn.FindByKind("data")); len(got) != i+1 {
					t.Fatalf("after %d writes FindByKind returned %d ids", i, len(got))
				}
			}
			st := mustIndexStats(t, b)
			if st.Builds != 1 || st.Rebuilds != 0 {
				t.Fatalf("builds=%d rebuilds=%d, want 1/0", st.Builds, st.Rebuilds)
			}
			if st.Advances != 5 {
				t.Fatalf("advances = %d, want 5", st.Advances)
			}
		})
	}
}

// TestIndexRebuildOnTooFarBehind is the regression test for the hazard
// path: with a tiny change horizon the feed ages out between probes and
// the index must rebuild from the probing snapshot instead of serving a
// stale answer.
func TestIndexRebuildOnTooFarBehind(t *testing.T) {
	type horizoned interface {
		Backend
		SetChangeHorizon(int)
	}
	for label, b := range indexTestBackends(t) {
		t.Run(label, func(t *testing.T) {
			hb := b.(horizoned)
			hb.SetChangeHorizon(0) // retain nothing: every delta request fails
			put := func(i int, name string) {
				o := Object{ID: fmt.Sprintf("o%03d", i), Kind: Data, Name: name}
				if err := b.PutObject(o); err != nil {
					t.Fatal(err)
				}
			}
			put(0, "first")
			sn, _ := b.Snapshot()
			if got := sn.FindByName("first"); len(got) != 1 {
				t.Fatalf("initial probe found %v", got)
			}
			// Age the feed past the index: with horizon 0, DeltaSince from
			// the index's revision must fail with ErrTooFarBehind.
			for i := 1; i <= 10; i++ {
				put(i, fmt.Sprintf("bulk%d", i))
			}
			sn, _ = b.Snapshot()
			if _, err := sn.DeltaSince(sn.Revision() - 1); err != ErrTooFarBehind {
				t.Fatalf("DeltaSince = %v, want ErrTooFarBehind", err)
			}
			if got := sortedIDs(sn.FindByKind("data")); len(got) != 11 {
				t.Fatalf("post-hazard probe returned %d ids, want 11", len(got))
			}
			st := mustIndexStats(t, b)
			if st.Rebuilds == 0 {
				t.Fatalf("no rebuild recorded after feed aged out: %+v", st)
			}
			if st.Rev != sn.Revision() {
				t.Fatalf("index rev %d, snapshot rev %d", st.Rev, sn.Revision())
			}
		})
	}
}

// TestIndexStaleSnapshotFallsBack holds an old snapshot while newer
// probes advance the index, then checks the old snapshot still answers
// correctly (by scan) and the fallback is counted as a miss.
func TestIndexStaleSnapshotFallsBack(t *testing.T) {
	for label, b := range indexTestBackends(t) {
		t.Run(label, func(t *testing.T) {
			if err := b.PutObject(Object{ID: "a", Kind: Data, Name: "old"}); err != nil {
				t.Fatal(err)
			}
			old, _ := b.Snapshot()
			if err := b.PutObject(Object{ID: "b", Kind: Data, Name: "new"}); err != nil {
				t.Fatal(err)
			}
			cur, _ := b.Snapshot()
			// Advance the index to the current revision.
			if got := sortedIDs(cur.FindByKind("data")); !equalStrings(got, []string{"a", "b"}) {
				t.Fatalf("current probe = %v", got)
			}
			before := mustIndexStats(t, b)
			// The stale snapshot must not see "b".
			if got := sortedIDs(old.FindByKind("data")); !equalStrings(got, []string{"a"}) {
				t.Fatalf("stale probe = %v, want [a]", got)
			}
			after := mustIndexStats(t, b)
			if after.Misses != before.Misses+1 {
				t.Fatalf("stale probe not counted as miss: %+v -> %+v", before, after)
			}
		})
	}
}

// TestIndexReplacementMovesPostings replaces an object with new
// kind/name/attrs and checks the old postings are unpublished.
func TestIndexReplacementMovesPostings(t *testing.T) {
	for label, b := range indexTestBackends(t) {
		t.Run(label, func(t *testing.T) {
			o := Object{ID: "x", Kind: Data, Name: "before", Features: map[string]string{"stage": "raw"}}
			if err := b.PutObject(o); err != nil {
				t.Fatal(err)
			}
			sn, _ := b.Snapshot()
			sn.FindByKind("data") // build
			o2 := Object{ID: "x", Kind: Invocation, Name: "after", Features: map[string]string{"stage": "cooked"}}
			if err := b.PutObject(o2); err != nil {
				t.Fatal(err)
			}
			sn, _ = b.Snapshot()
			checks := []struct {
				got  []string
				want []string
				what string
			}{
				{sn.FindByKind("data"), nil, "kind data"},
				{sn.FindByKind("invocation"), []string{"x"}, "kind invocation"},
				{sn.FindByName("before"), nil, "name before"},
				{sn.FindByName("after"), []string{"x"}, "name after"},
				{sn.FindByAttr("stage", "raw"), nil, "attr raw"},
				{sn.FindByAttr("stage", "cooked"), []string{"x"}, "attr cooked"},
			}
			for _, c := range checks {
				if !equalStrings(sortedIDs(c.got), c.want) {
					t.Fatalf("%s = %v, want %v", c.what, c.got, c.want)
				}
			}
		})
	}
}

// TestIndexRandomizedParity drives a random mutation sequence and checks
// after every step that the index-served answers are identical to linear
// scans for a panel of probes — the storage half of the parity
// guarantee (the PLUSQL half lives in internal/plusql).
func TestIndexRandomizedParity(t *testing.T) {
	for label, b := range indexTestBackends(t) {
		t.Run(label, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			kinds := []ObjectKind{Data, Invocation}
			names := []string{"alpha", "beta", "gamma", ""}
			owners := []string{"alice", "bob", "carol"}
			for step := 0; step < 200; step++ {
				id := fmt.Sprintf("o%02d", rng.Intn(40)) // collisions force replacements
				o := Object{
					ID:   id,
					Kind: kinds[rng.Intn(len(kinds))],
					Name: names[rng.Intn(len(names))],
				}
				if rng.Intn(3) > 0 {
					o.Features = map[string]string{"owner": owners[rng.Intn(len(owners))]}
					if rng.Intn(2) == 0 {
						o.Features["stage"] = fmt.Sprintf("s%d", rng.Intn(3))
					}
				}
				if err := b.PutObject(o); err != nil {
					t.Fatal(err)
				}
				if step%7 != 0 {
					continue // probe every few steps, not after every write
				}
				sn, err := b.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range kinds {
					if got, want := sortedIDs(sn.FindByKind(string(k))), scanByKind(sn, string(k)); !equalStrings(got, want) {
						t.Fatalf("step %d: FindByKind(%s) = %v, want %v", step, k, got, want)
					}
				}
				for _, n := range names[:3] {
					if got, want := sortedIDs(sn.FindByName(n)), scanByName(sn, n); !equalStrings(got, want) {
						t.Fatalf("step %d: FindByName(%s) = %v, want %v", step, n, got, want)
					}
				}
				for _, u := range owners {
					if got, want := sortedIDs(sn.FindByAttr("owner", u)), scanByAttr(sn, "owner", u); !equalStrings(got, want) {
						t.Fatalf("step %d: FindByAttr(owner,%s) = %v, want %v", step, u, got, want)
					}
				}
			}
			st := mustIndexStats(t, b)
			if st.Hits == 0 {
				t.Fatalf("parity run never hit the index: %+v", st)
			}
		})
	}
}

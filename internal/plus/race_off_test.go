//go:build !race

package plus_test

const raceEnabled = false

package plus

import (
	"cmp"
	"fmt"
	"hash/maphash"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// MemBackend is the volatile, serving-optimised storage engine: the index
// is hash-partitioned into shards with per-shard RWMutexes, so point
// reads and writes on different objects proceed concurrently instead of
// funnelling through one global lock. It offers the same contract as
// LogBackend minus durability (Size is 0 and contents die with the
// process), and the same snapshot isolation: lineage queries run over
// immutable revision-stamped clones. It implements Backend.
//
// Sharding invariants: an object, its history, its outgoing edges and its
// surrogates live in the shard of its id; an edge's incoming copy lives
// in the shard of its To id. Cross-shard operations (PutEdge, Apply,
// Snapshot) take the shards they need in index order, so lock ordering is
// global and deadlock-free.
type MemBackend struct {
	shards []memShard
	seed   maphash.Seed

	// horizon bounds each shard's change ring: the backend retains at
	// least the last horizon changes overall (more when writes spread
	// across shards). Guarded by holding every shard lock.
	horizon int

	// epoch is minted per instance: contents die with the process, so a
	// cursor from an earlier life must be refused, not resumed.
	epoch string

	// notifier wakes change-feed followers on every applied mutation
	// (Backend.Notify); it has its own lock, independent of the shards'.
	notifier

	// idx is the lazily-maintained secondary index (kind/name/attr ->
	// ids); see index.go. It has its own lock and is advanced by query
	// probes, never by the write path.
	idx *backendIndex

	revision atomic.Uint64
	edges    atomic.Int64
	snap     atomic.Pointer[Snapshot]
	closed   atomic.Bool
}

type memShard struct {
	mu         sync.RWMutex
	objects    map[string]Object
	history    map[string][]Object
	out        map[string][]Edge
	in         map[string][]Edge
	surrogates map[string][]SurrogateSpec

	// changes is a bounded ring of this shard's recent mutations (a
	// record lands in the shard of its primary id: the object's, the
	// edge's From, the surrogate's ForID). ChangesSince merges the rings
	// by revision; a request older than the retained window fails with
	// ErrTooFarBehind — the "too far behind, rebuild from a snapshot"
	// escape hatch.
	changes changeRing
}

// changeRing is a fixed-capacity circular buffer of changes in revision
// order (per shard). Writers push under the shard's write lock.
type changeRing struct {
	buf  []Change
	next int // write position once the buffer is full
}

// push appends a change, evicting the oldest once capacity cap is reached.
func (r *changeRing) push(c Change, capacity int) {
	if capacity <= 0 {
		return
	}
	if len(r.buf) < capacity {
		r.buf = append(r.buf, c)
		return
	}
	if len(r.buf) > capacity {
		// Horizon was lowered: keep the newest entries.
		r.trim(capacity)
	}
	r.buf[r.next] = c
	r.next = (r.next + 1) % len(r.buf)
}

// trim shrinks the ring to the newest capacity entries, normalising the
// write position to 0.
func (r *changeRing) trim(capacity int) {
	ordered := r.ordered(nil)
	if len(ordered) > capacity {
		ordered = ordered[len(ordered)-capacity:]
	}
	r.buf = append([]Change(nil), ordered...)
	r.next = 0
}

// ordered appends the ring's contents in push order to out.
func (r *changeRing) ordered(out []Change) []Change {
	if r.next < len(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// at returns the change at logical position i (0 = oldest retained).
func (r *changeRing) at(i int) Change { return *r.ptrAt(i) }

// ptrAt returns a pointer to the change at logical position i, valid only
// while the shard lock is held (writers overwrite ring slots in place).
func (r *changeRing) ptrAt(i int) *Change {
	if r.next < len(r.buf) {
		return &r.buf[(r.next+i)%len(r.buf)]
	}
	return &r.buf[i]
}

// collect appends the ring entries newer than since to out. Revisions are
// monotone in logical order, so the matching entries are a suffix found by
// binary search — O(log n + matches) instead of a full ring copy.
func (r *changeRing) collect(since uint64, out []Change) []Change {
	n := len(r.buf)
	lo := sort.Search(n, func(i int) bool { return r.ptrAt(i).Rev > since })
	for i := lo; i < n; i++ {
		out = append(out, r.at(i))
	}
	return out
}

// DefaultMemShards is the shard count NewMemBackend uses when given 0.
const DefaultMemShards = 16

// DefaultMemChangeHorizon is the per-shard change-ring capacity: how many
// recent mutations each shard retains for ChangesSince before readers are
// told to rebuild from a snapshot.
const DefaultMemChangeHorizon = 4096

var _ Backend = (*MemBackend)(nil)

// NewMemBackend creates an empty in-memory backend with the given number
// of hash partitions (0 means DefaultMemShards).
func NewMemBackend(shards int) *MemBackend {
	if shards <= 0 {
		shards = DefaultMemShards
	}
	m := &MemBackend{
		shards:  make([]memShard, shards),
		seed:    maphash.MakeSeed(),
		horizon: DefaultMemChangeHorizon,
		epoch:   newEpoch(),
		idx:     newBackendIndex(),
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.objects = map[string]Object{}
		sh.history = map[string][]Object{}
		sh.out = map[string][]Edge{}
		sh.in = map[string][]Edge{}
		sh.surrogates = map[string][]SurrogateSpec{}
	}
	return m
}

// NumShards reports the partition count.
func (m *MemBackend) NumShards() int { return len(m.shards) }

func (m *MemBackend) shardIndex(id string) int {
	return int(maphash.String(m.seed, id) % uint64(len(m.shards)))
}

func (m *MemBackend) shardFor(id string) *memShard {
	return &m.shards[m.shardIndex(id)]
}

// lockAll / runlockAll take every shard in index order; used by Apply and
// Snapshot, which need a globally consistent view.
func (m *MemBackend) lockAll() {
	for i := range m.shards {
		m.shards[i].mu.Lock()
	}
}

func (m *MemBackend) unlockAll() {
	for i := range m.shards {
		m.shards[i].mu.Unlock()
	}
}

func (m *MemBackend) rlockAll() {
	for i := range m.shards {
		m.shards[i].mu.RLock()
	}
}

func (m *MemBackend) runlockAll() {
	for i := range m.shards {
		m.shards[i].mu.RUnlock()
	}
}

// PutObject stores (or replaces) a provenance object.
func (m *MemBackend) PutObject(o Object) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if err := validateObject(o); err != nil {
		return err
	}
	o = internObject(o)
	sh := m.shardFor(o.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, existed := sh.objects[o.ID]; existed {
		sh.history[o.ID] = append(sh.history[o.ID], prev)
	}
	sh.objects[o.ID] = o
	sh.changes.push(Change{Rev: m.revision.Add(1), Kind: ChangeObject, Object: o}, m.horizon)
	m.broadcast()
	return nil
}

// PutEdge stores a provenance edge; both endpoints must exist.
func (m *MemBackend) PutEdge(e Edge) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if e.From == e.To {
		return fmt.Errorf("plus: self edge %s rejected", e.From)
	}
	fi, ti := m.shardIndex(e.From), m.shardIndex(e.To)
	// Lock the two shards in index order (one lock when they collide).
	lo, hi := fi, ti
	if lo > hi {
		lo, hi = hi, lo
	}
	m.shards[lo].mu.Lock()
	defer m.shards[lo].mu.Unlock()
	if hi != lo {
		m.shards[hi].mu.Lock()
		defer m.shards[hi].mu.Unlock()
	}
	from, to := &m.shards[fi], &m.shards[ti]
	if _, ok := from.objects[e.From]; !ok {
		return fmt.Errorf("plus: edge %s->%s: %w (from)", e.From, e.To, ErrNotFound)
	}
	if _, ok := to.objects[e.To]; !ok {
		return fmt.Errorf("plus: edge %s->%s: %w (to)", e.From, e.To, ErrNotFound)
	}
	for _, prev := range from.out[e.From] {
		if prev.To == e.To {
			return fmt.Errorf("plus: duplicate edge %s->%s", e.From, e.To)
		}
	}
	e = internEdge(e)
	from.out[e.From] = append(from.out[e.From], e)
	to.in[e.To] = append(to.in[e.To], e)
	m.edges.Add(1)
	from.changes.push(Change{Rev: m.revision.Add(1), Kind: ChangeEdge, Edge: e}, m.horizon)
	m.broadcast()
	return nil
}

// PutSurrogate stores a surrogate version of an object.
func (m *MemBackend) PutSurrogate(sp SurrogateSpec) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if err := validateSurrogate(sp); err != nil {
		return err
	}
	sh := m.shardFor(sp.ForID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.objects[sp.ForID]; !ok {
		return fmt.Errorf("plus: surrogate for %s: %w", sp.ForID, ErrNotFound)
	}
	sp = internSurrogate(sp)
	sh.surrogates[sp.ForID] = append(sh.surrogates[sp.ForID], sp)
	sh.changes.push(Change{Rev: m.revision.Add(1), Kind: ChangeSurrogate, Surrogate: sp}, m.horizon)
	m.broadcast()
	return nil
}

// Apply stores a whole batch under all shard locks, returning the
// revision after the batch's last record: validation failures leave the
// backend untouched, and readers never observe a half-applied batch.
func (m *MemBackend) Apply(b Batch) (uint64, error) {
	if m.closed.Load() {
		return 0, ErrClosed
	}
	m.lockAll()
	defer m.unlockAll()
	err := b.validate(
		func(id string) bool {
			_, ok := m.shardFor(id).objects[id]
			return ok
		},
		func(from, to string) bool {
			for _, prev := range m.shardFor(from).out[from] {
				if prev.To == to {
					return true
				}
			}
			return false
		},
	)
	if err != nil {
		return 0, err
	}
	for _, o := range b.Objects {
		o = internObject(o)
		sh := m.shardFor(o.ID)
		if prev, existed := sh.objects[o.ID]; existed {
			sh.history[o.ID] = append(sh.history[o.ID], prev)
		}
		sh.objects[o.ID] = o
		sh.changes.push(Change{Rev: m.revision.Add(1), Kind: ChangeObject, Object: o}, m.horizon)
	}
	for _, e := range b.Edges {
		e = internEdge(e)
		from, to := m.shardFor(e.From), m.shardFor(e.To)
		from.out[e.From] = append(from.out[e.From], e)
		to.in[e.To] = append(to.in[e.To], e)
		m.edges.Add(1)
		from.changes.push(Change{Rev: m.revision.Add(1), Kind: ChangeEdge, Edge: e}, m.horizon)
	}
	for _, sp := range b.Surrogates {
		sp = internSurrogate(sp)
		sh := m.shardFor(sp.ForID)
		sh.surrogates[sp.ForID] = append(sh.surrogates[sp.ForID], sp)
		sh.changes.push(Change{Rev: m.revision.Add(1), Kind: ChangeSurrogate, Surrogate: sp}, m.horizon)
	}
	m.broadcast()
	// All shard locks are still held, so no concurrent writer can have
	// advanced the counter past this batch's last record.
	return m.revision.Load(), nil
}

// GetObject fetches one object by id.
func (m *MemBackend) GetObject(id string) (Object, error) {
	if m.closed.Load() {
		return Object{}, ErrClosed
	}
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[id]
	if !ok {
		return Object{}, fmt.Errorf("plus: %q: %w", id, ErrNotFound)
	}
	return o, nil
}

// History returns the superseded versions of an object, oldest first.
func (m *MemBackend) History(id string) []Object {
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]Object(nil), sh.history[id]...)
}

// Objects returns every object (unspecified order).
func (m *MemBackend) Objects() []Object {
	var out []Object
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, o := range sh.objects {
			out = append(out, o)
		}
		sh.mu.RUnlock()
	}
	return out
}

// EdgesFrom returns the outgoing edges of an object, in insertion order.
func (m *MemBackend) EdgesFrom(id string) []Edge {
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]Edge(nil), sh.out[id]...)
}

// EdgesTo returns the incoming edges of an object, in insertion order.
func (m *MemBackend) EdgesTo(id string) []Edge {
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]Edge(nil), sh.in[id]...)
}

// SurrogatesOf returns the stored surrogate specs for an object.
func (m *MemBackend) SurrogatesOf(id string) []SurrogateSpec {
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]SurrogateSpec(nil), sh.surrogates[id]...)
}

// NumObjects reports how many objects the backend holds.
func (m *MemBackend) NumObjects() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.objects)
		sh.mu.RUnlock()
	}
	return n
}

// NumEdges reports how many edges the backend holds.
func (m *MemBackend) NumEdges() int { return int(m.edges.Load()) }

// Revision returns a counter that increases with every stored record.
func (m *MemBackend) Revision() uint64 { return m.revision.Load() }

// Epoch identifies this instance's revision numbering; volatile backends
// mint a fresh epoch per construction.
func (m *MemBackend) Epoch() string { return m.epoch }

// SetChangeHorizon resizes the per-shard change rings (minimum 0, which
// retains nothing and forces every delta reader to rebuild). Safe to call
// at any time; shrinking discards the oldest retained changes.
func (m *MemBackend) SetChangeHorizon(n int) {
	if n < 0 {
		n = 0
	}
	m.lockAll()
	defer m.unlockAll()
	m.horizon = n
	for i := range m.shards {
		m.shards[i].changes.trim(n)
	}
}

// ChangeHorizon reports the per-shard change-ring capacity.
func (m *MemBackend) ChangeHorizon() int {
	m.shards[0].mu.RLock()
	defer m.shards[0].mu.RUnlock()
	return m.horizon
}

// ChangeWindow reports the resident change-feed window across the
// per-shard rings. The base is conservative: a ring at capacity may have
// evicted, so the oldest position the merged feed is guaranteed to serve
// is just before the oldest entry of the fullest-aged ring. Depth is the
// total resident change count.
func (m *MemBackend) ChangeWindow() FeedWindow {
	m.rlockAll()
	defer m.runlockAll()
	w := FeedWindow{Horizon: m.horizon}
	for i := range m.shards {
		ring := &m.shards[i].changes
		w.Depth += len(ring.buf)
		if len(ring.buf) >= m.horizon && len(ring.buf) > 0 {
			// This ring may have evicted history: the feed can only
			// resume at or after its oldest retained entry.
			if base := ring.at(0).Rev - 1; base > w.Base {
				w.Base = base
			}
		}
	}
	return w
}

// ChangesSince merges the per-shard rings into the ordered record deltas
// applied after revision since. When part of that window has been evicted
// from a ring it fails with ErrTooFarBehind: the caller is too far behind
// the bounded feed and must rebuild from a fresh snapshot.
func (m *MemBackend) ChangesSince(since uint64) ([]Change, error) {
	if m.closed.Load() {
		return nil, ErrClosed
	}
	m.rlockAll()
	defer m.runlockAll()
	if m.closed.Load() {
		return nil, ErrClosed
	}
	rev := m.revision.Load()
	if since > rev {
		return nil, errFutureRevision(since, rev)
	}
	var out []Change
	for i := range m.shards {
		out = m.shards[i].changes.collect(since, out)
	}
	slices.SortFunc(out, func(a, b Change) int { return cmp.Compare(a.Rev, b.Rev) })
	if err := checkContiguous(out, since, rev); err != nil {
		return nil, err
	}
	return out, nil
}

// walkChangesSince streams every retained change with revision in
// (since, upTo] to visit, shard by shard: no merging, no copying. Within
// one shard — and therefore per primary id — changes arrive in revision
// order; cross-shard order is unspecified. See changeWalker for the
// contract, including the partial-visit-then-ErrTooFarBehind hazard.
func (m *MemBackend) walkChangesSince(since, upTo uint64, visit func(*Change)) error {
	if m.closed.Load() {
		return ErrClosed
	}
	m.rlockAll()
	defer m.runlockAll()
	if m.closed.Load() {
		return ErrClosed
	}
	rev := m.revision.Load()
	if since > rev {
		return errFutureRevision(since, rev)
	}
	if upTo > rev {
		upTo = rev
	}
	var seen uint64
	for i := range m.shards {
		ring := &m.shards[i].changes
		n := len(ring.buf)
		lo := sort.Search(n, func(i int) bool { return ring.ptrAt(i).Rev > since })
		for j := lo; j < n; j++ {
			c := ring.ptrAt(j)
			if c.Rev > upTo {
				break
			}
			visit(c)
			seen++
		}
	}
	if seen != upTo-since {
		// Some shard evicted part of the window; the visits already made
		// are moot, the caller must rebuild.
		return ErrTooFarBehind
	}
	return nil
}

// Snapshot returns an immutable view of the backend at its current
// revision, cached per revision like LogBackend's. The slow path briefly
// read-locks every shard, which blocks writers but not other snapshot
// readers; the fast path is a single atomic load.
func (m *MemBackend) Snapshot() (*Snapshot, error) {
	if m.closed.Load() {
		return nil, ErrClosed
	}
	if sn := m.snap.Load(); sn != nil && sn.rev == m.revision.Load() {
		return sn, nil
	}
	m.rlockAll()
	defer m.runlockAll()
	if m.closed.Load() {
		return nil, ErrClosed
	}
	// With every shard read-locked no writer can hold a shard lock, so
	// the revision is stable for the duration of the clone.
	rev := m.revision.Load()
	if sn := m.snap.Load(); sn != nil && sn.rev == rev {
		return sn, nil
	}
	sn := &Snapshot{
		source:     m,
		idx:        m.idx,
		rev:        rev,
		objects:    map[string]Object{},
		out:        map[string][]Edge{},
		in:         map[string][]Edge{},
		surrogates: map[string][]SurrogateSpec{},
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sn.mergeInto(sh.objects, sh.out, sh.in, sh.surrogates)
	}
	m.snap.Store(sn)
	return sn, nil
}

// IndexStats reports the secondary index's current state.
func (m *MemBackend) IndexStats() IndexStats { return m.idx.stats() }

// Size reports the durable footprint: always 0, the backend is volatile.
func (m *MemBackend) Size() int64 { return 0 }

// Ping reports whether the backend is open.
func (m *MemBackend) Ping() error {
	if m.closed.Load() {
		return ErrClosed
	}
	return nil
}

// Close marks the backend closed; contents are discarded with the
// process. Double close is a no-op.
func (m *MemBackend) Close() error {
	m.closed.Store(true)
	m.snap.Store(nil)
	m.broadcast() // wake parked followers so they observe the close
	return nil
}

package plus

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// MemBackend is the volatile, serving-optimised storage engine: the index
// is hash-partitioned into shards with per-shard RWMutexes, so point
// reads and writes on different objects proceed concurrently instead of
// funnelling through one global lock. It offers the same contract as
// LogBackend minus durability (Size is 0 and contents die with the
// process), and the same snapshot isolation: lineage queries run over
// immutable revision-stamped clones. It implements Backend.
//
// Sharding invariants: an object, its history, its outgoing edges and its
// surrogates live in the shard of its id; an edge's incoming copy lives
// in the shard of its To id. Cross-shard operations (PutEdge, Apply,
// Snapshot) take the shards they need in index order, so lock ordering is
// global and deadlock-free.
type MemBackend struct {
	shards []memShard
	seed   maphash.Seed

	revision atomic.Uint64
	edges    atomic.Int64
	snap     atomic.Pointer[Snapshot]
	closed   atomic.Bool
}

type memShard struct {
	mu         sync.RWMutex
	objects    map[string]Object
	history    map[string][]Object
	out        map[string][]Edge
	in         map[string][]Edge
	surrogates map[string][]SurrogateSpec
}

// DefaultMemShards is the shard count NewMemBackend uses when given 0.
const DefaultMemShards = 16

var _ Backend = (*MemBackend)(nil)

// NewMemBackend creates an empty in-memory backend with the given number
// of hash partitions (0 means DefaultMemShards).
func NewMemBackend(shards int) *MemBackend {
	if shards <= 0 {
		shards = DefaultMemShards
	}
	m := &MemBackend{
		shards: make([]memShard, shards),
		seed:   maphash.MakeSeed(),
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.objects = map[string]Object{}
		sh.history = map[string][]Object{}
		sh.out = map[string][]Edge{}
		sh.in = map[string][]Edge{}
		sh.surrogates = map[string][]SurrogateSpec{}
	}
	return m
}

// NumShards reports the partition count.
func (m *MemBackend) NumShards() int { return len(m.shards) }

func (m *MemBackend) shardIndex(id string) int {
	return int(maphash.String(m.seed, id) % uint64(len(m.shards)))
}

func (m *MemBackend) shardFor(id string) *memShard {
	return &m.shards[m.shardIndex(id)]
}

// lockAll / runlockAll take every shard in index order; used by Apply and
// Snapshot, which need a globally consistent view.
func (m *MemBackend) lockAll() {
	for i := range m.shards {
		m.shards[i].mu.Lock()
	}
}

func (m *MemBackend) unlockAll() {
	for i := range m.shards {
		m.shards[i].mu.Unlock()
	}
}

func (m *MemBackend) rlockAll() {
	for i := range m.shards {
		m.shards[i].mu.RLock()
	}
}

func (m *MemBackend) runlockAll() {
	for i := range m.shards {
		m.shards[i].mu.RUnlock()
	}
}

// PutObject stores (or replaces) a provenance object.
func (m *MemBackend) PutObject(o Object) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if err := validateObject(o); err != nil {
		return err
	}
	sh := m.shardFor(o.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, existed := sh.objects[o.ID]; existed {
		sh.history[o.ID] = append(sh.history[o.ID], prev)
	}
	sh.objects[o.ID] = o
	m.revision.Add(1)
	return nil
}

// PutEdge stores a provenance edge; both endpoints must exist.
func (m *MemBackend) PutEdge(e Edge) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if e.From == e.To {
		return fmt.Errorf("plus: self edge %s rejected", e.From)
	}
	fi, ti := m.shardIndex(e.From), m.shardIndex(e.To)
	// Lock the two shards in index order (one lock when they collide).
	lo, hi := fi, ti
	if lo > hi {
		lo, hi = hi, lo
	}
	m.shards[lo].mu.Lock()
	defer m.shards[lo].mu.Unlock()
	if hi != lo {
		m.shards[hi].mu.Lock()
		defer m.shards[hi].mu.Unlock()
	}
	from, to := &m.shards[fi], &m.shards[ti]
	if _, ok := from.objects[e.From]; !ok {
		return fmt.Errorf("plus: edge %s->%s: %w (from)", e.From, e.To, ErrNotFound)
	}
	if _, ok := to.objects[e.To]; !ok {
		return fmt.Errorf("plus: edge %s->%s: %w (to)", e.From, e.To, ErrNotFound)
	}
	for _, prev := range from.out[e.From] {
		if prev.To == e.To {
			return fmt.Errorf("plus: duplicate edge %s->%s", e.From, e.To)
		}
	}
	from.out[e.From] = append(from.out[e.From], e)
	to.in[e.To] = append(to.in[e.To], e)
	m.edges.Add(1)
	m.revision.Add(1)
	return nil
}

// PutSurrogate stores a surrogate version of an object.
func (m *MemBackend) PutSurrogate(sp SurrogateSpec) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if err := validateSurrogate(sp); err != nil {
		return err
	}
	sh := m.shardFor(sp.ForID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.objects[sp.ForID]; !ok {
		return fmt.Errorf("plus: surrogate for %s: %w", sp.ForID, ErrNotFound)
	}
	sh.surrogates[sp.ForID] = append(sh.surrogates[sp.ForID], sp)
	m.revision.Add(1)
	return nil
}

// Apply stores a whole batch under all shard locks: validation failures
// leave the backend untouched, and readers never observe a half-applied
// batch.
func (m *MemBackend) Apply(b Batch) error {
	if m.closed.Load() {
		return ErrClosed
	}
	m.lockAll()
	defer m.unlockAll()
	err := b.validate(
		func(id string) bool {
			_, ok := m.shardFor(id).objects[id]
			return ok
		},
		func(from, to string) bool {
			for _, prev := range m.shardFor(from).out[from] {
				if prev.To == to {
					return true
				}
			}
			return false
		},
	)
	if err != nil {
		return err
	}
	for _, o := range b.Objects {
		sh := m.shardFor(o.ID)
		if prev, existed := sh.objects[o.ID]; existed {
			sh.history[o.ID] = append(sh.history[o.ID], prev)
		}
		sh.objects[o.ID] = o
		m.revision.Add(1)
	}
	for _, e := range b.Edges {
		from, to := m.shardFor(e.From), m.shardFor(e.To)
		from.out[e.From] = append(from.out[e.From], e)
		to.in[e.To] = append(to.in[e.To], e)
		m.edges.Add(1)
		m.revision.Add(1)
	}
	for _, sp := range b.Surrogates {
		sh := m.shardFor(sp.ForID)
		sh.surrogates[sp.ForID] = append(sh.surrogates[sp.ForID], sp)
		m.revision.Add(1)
	}
	return nil
}

// GetObject fetches one object by id.
func (m *MemBackend) GetObject(id string) (Object, error) {
	if m.closed.Load() {
		return Object{}, ErrClosed
	}
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[id]
	if !ok {
		return Object{}, fmt.Errorf("plus: %q: %w", id, ErrNotFound)
	}
	return o, nil
}

// History returns the superseded versions of an object, oldest first.
func (m *MemBackend) History(id string) []Object {
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]Object(nil), sh.history[id]...)
}

// Objects returns every object (unspecified order).
func (m *MemBackend) Objects() []Object {
	var out []Object
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, o := range sh.objects {
			out = append(out, o)
		}
		sh.mu.RUnlock()
	}
	return out
}

// EdgesFrom returns the outgoing edges of an object, in insertion order.
func (m *MemBackend) EdgesFrom(id string) []Edge {
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]Edge(nil), sh.out[id]...)
}

// EdgesTo returns the incoming edges of an object, in insertion order.
func (m *MemBackend) EdgesTo(id string) []Edge {
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]Edge(nil), sh.in[id]...)
}

// SurrogatesOf returns the stored surrogate specs for an object.
func (m *MemBackend) SurrogatesOf(id string) []SurrogateSpec {
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]SurrogateSpec(nil), sh.surrogates[id]...)
}

// NumObjects reports how many objects the backend holds.
func (m *MemBackend) NumObjects() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.objects)
		sh.mu.RUnlock()
	}
	return n
}

// NumEdges reports how many edges the backend holds.
func (m *MemBackend) NumEdges() int { return int(m.edges.Load()) }

// Revision returns a counter that increases with every stored record.
func (m *MemBackend) Revision() uint64 { return m.revision.Load() }

// Snapshot returns an immutable view of the backend at its current
// revision, cached per revision like LogBackend's. The slow path briefly
// read-locks every shard, which blocks writers but not other snapshot
// readers; the fast path is a single atomic load.
func (m *MemBackend) Snapshot() (*Snapshot, error) {
	if m.closed.Load() {
		return nil, ErrClosed
	}
	if sn := m.snap.Load(); sn != nil && sn.rev == m.revision.Load() {
		return sn, nil
	}
	m.rlockAll()
	defer m.runlockAll()
	if m.closed.Load() {
		return nil, ErrClosed
	}
	// With every shard read-locked no writer can hold a shard lock, so
	// the revision is stable for the duration of the clone.
	rev := m.revision.Load()
	if sn := m.snap.Load(); sn != nil && sn.rev == rev {
		return sn, nil
	}
	sn := &Snapshot{
		rev:        rev,
		objects:    map[string]Object{},
		out:        map[string][]Edge{},
		in:         map[string][]Edge{},
		surrogates: map[string][]SurrogateSpec{},
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sn.mergeInto(sh.objects, sh.out, sh.in, sh.surrogates)
	}
	m.snap.Store(sn)
	return sn, nil
}

// Size reports the durable footprint: always 0, the backend is volatile.
func (m *MemBackend) Size() int64 { return 0 }

// Ping reports whether the backend is open.
func (m *MemBackend) Ping() error {
	if m.closed.Load() {
		return ErrClosed
	}
	return nil
}

// Close marks the backend closed; contents are discarded with the
// process. Double close is a no-op.
func (m *MemBackend) Close() error {
	m.closed.Store(true)
	m.snap.Store(nil)
	return nil
}

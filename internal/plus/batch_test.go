package plus

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestApplyBatch(t *testing.T) {
	s, path := openTemp(t)
	b := Batch{
		Objects: []Object{
			{ID: "a", Kind: Data, Name: "a"},
			{ID: "p", Kind: Invocation, Name: "p", Lowest: "Protected", Protect: "surrogate"},
			{ID: "b", Kind: Data, Name: "b"},
		},
		Edges: []Edge{
			{From: "a", To: "p"},
			{From: "p", To: "b"},
		},
		Surrogates: []SurrogateSpec{
			{ForID: "p", ID: "p~", Name: "a step", InfoScore: 0.5},
		},
	}
	if b.Len() != 6 {
		t.Errorf("Len = %d", b.Len())
	}
	if _, err := s.Apply(b); err != nil {
		t.Fatal(err)
	}
	if s.NumObjects() != 3 || s.NumEdges() != 2 || len(s.SurrogatesOf("p")) != 1 {
		t.Errorf("state after batch: %d/%d", s.NumObjects(), s.NumEdges())
	}
	// Batched records replay like individual ones.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumObjects() != 3 || s2.NumEdges() != 2 {
		t.Errorf("replay after batch: %d/%d", s2.NumObjects(), s2.NumEdges())
	}
}

func TestApplyBatchValidationLeavesStoreUntouched(t *testing.T) {
	s, _ := openTemp(t)
	putChain(t, s, "x", "y")
	sizeBefore := s.Size()

	bad := []Batch{
		{Objects: []Object{{ID: "", Kind: Data}}},
		{Objects: []Object{{ID: "q", Kind: "banana"}}},
		{Objects: []Object{{ID: "q", Kind: Data, Protect: "banana"}}},
		{Edges: []Edge{{From: "x", To: "x"}}},
		{Edges: []Edge{{From: "x", To: "missing"}}},
		{Edges: []Edge{{From: "x", To: "y"}}}, // already stored
		{Objects: []Object{{ID: "q", Kind: Data}}, Edges: []Edge{{From: "x", To: "q"}, {From: "x", To: "q"}}},
		{Surrogates: []SurrogateSpec{{ForID: "missing", ID: "m~"}}},
		{Surrogates: []SurrogateSpec{{ForID: "x", ID: "x"}}},
		{Surrogates: []SurrogateSpec{{ForID: "x", ID: "x~", InfoScore: 5}}},
	}
	for i, b := range bad {
		if _, err := s.Apply(b); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
	}
	if s.Size() != sizeBefore || s.NumObjects() != 2 || s.NumEdges() != 1 {
		t.Error("failed batches mutated the store")
	}
}

func TestApplyBatchIntraBatchReferences(t *testing.T) {
	s, _ := openTemp(t)
	// The edge references an object defined in the same batch.
	b := Batch{
		Objects: []Object{{ID: "n1", Kind: Data, Name: "1"}, {ID: "n2", Kind: Data, Name: "2"}},
		Edges:   []Edge{{From: "n1", To: "n2"}},
	}
	if _, err := s.Apply(b); err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != 1 {
		t.Error("intra-batch edge lost")
	}
}

func TestApplyEmptyBatchAndClosed(t *testing.T) {
	s, _ := openTemp(t)
	if _, err := s.Apply(Batch{}); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(Batch{Objects: []Object{{ID: "a", Kind: Data}}}); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("apply on closed store: %v", err)
	}
}

// TestApplyReturnsOwnRevision runs concurrent single-record batches and
// checks each returned revision names that batch's own record — not a
// later concurrent writer's — so the cursor POST /v2/batch hands back
// never skips another batch's records.
func TestApplyReturnsOwnRevision(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    Backend
	}{
		{"log", func() Backend { s, _ := openTemp(t); return s }()},
		{"mem", NewMemBackend(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const writers = 16
			revs := make([]uint64, writers)
			var wg sync.WaitGroup
			for i := 0; i < writers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					id := fmt.Sprintf("w%02d", i)
					rev, err := tc.b.Apply(Batch{Objects: []Object{{ID: id, Kind: Data, Name: id}}})
					if err != nil {
						t.Error(err)
						return
					}
					revs[i] = rev
				}(i)
			}
			wg.Wait()
			changes, err := tc.b.ChangesSince(0)
			if err != nil {
				t.Fatal(err)
			}
			for i, rev := range revs {
				id := fmt.Sprintf("w%02d", i)
				if rev == 0 || rev > uint64(len(changes)) {
					t.Fatalf("writer %d got revision %d", i, rev)
				}
				if c := changes[rev-1]; c.Object.ID != id {
					t.Errorf("writer %d: revision %d holds %q, want own record %q", i, rev, c.Object.ID, id)
				}
			}
			tc.b.Close()
		})
	}
}

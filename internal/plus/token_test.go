package plus

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func testKeyring(t *testing.T, ids ...string) *Keyring {
	t.Helper()
	if len(ids) == 0 {
		ids = []string{"k1"}
	}
	keys := make([]Key, len(ids))
	for i, id := range ids {
		keys[i] = Key{ID: id, Secret: []byte("secret-secret-secret-" + id)}
	}
	kr, err := NewKeyring(keys...)
	if err != nil {
		t.Fatal(err)
	}
	return kr
}

func testClaims(viewer string, caps []Capability, ttl time.Duration) Claims {
	now := time.Now()
	return Claims{
		Viewer:       viewer,
		Capabilities: caps,
		IssuedAt:     now.Unix(),
		ExpiresAt:    now.Add(ttl).Unix(),
	}
}

func TestTokenMintVerifyRoundTrip(t *testing.T) {
	kr := testKeyring(t)
	tok, err := kr.Mint(testClaims("Protected", []Capability{CapQuery, CapIngest}, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tok, tokenPrefix) {
		t.Errorf("token %q missing prefix", tok)
	}
	c, err := kr.Verify(tok, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if c.Viewer != "Protected" || c.KeyID != "k1" {
		t.Errorf("claims = %+v", c)
	}
	if !c.Can(CapQuery) || !c.Can(CapIngest) || c.Can(CapAdmin) || c.Can(CapReplicate) {
		t.Errorf("capabilities = %v", c.Capabilities)
	}
}

func TestTokenExpiryRejected(t *testing.T) {
	kr := testKeyring(t)
	tok, err := kr.Mint(testClaims("Protected", []Capability{CapQuery}, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kr.Verify(tok, time.Now()); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
	_, err = kr.Verify(tok, time.Now().Add(2*time.Hour))
	if !errors.Is(err, ErrTokenExpired) {
		t.Errorf("expired verify error = %v, want ErrTokenExpired", err)
	}
}

func TestTokenTamperRejected(t *testing.T) {
	kr := testKeyring(t)
	tok, err := kr.Mint(testClaims("Public", []Capability{CapQuery}, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one signature byte.
	tampered := tok[:len(tok)-2] + "AA"
	if _, err := kr.Verify(tampered, time.Now()); !errors.Is(err, ErrBadToken) {
		t.Errorf("tampered signature error = %v, want ErrBadToken", err)
	}
	// Swap the payload for another claim set while keeping the signature.
	other, err := kr.Mint(testClaims("Protected", []Capability{CapAdmin}, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	dot := strings.LastIndexByte(tok, '.')
	otherDot := strings.LastIndexByte(other, '.')
	spliced := other[:otherDot] + tok[dot:]
	if _, err := kr.Verify(spliced, time.Now()); !errors.Is(err, ErrBadToken) {
		t.Errorf("spliced payload error = %v, want ErrBadToken", err)
	}
	// Garbage.
	for _, bad := range []string{"", "garbage", tokenPrefix, tokenPrefix + "x", tokenPrefix + "e30.sig!"} {
		if _, err := kr.Verify(bad, time.Now()); !errors.Is(err, ErrBadToken) {
			t.Errorf("Verify(%q) = %v, want ErrBadToken", bad, err)
		}
	}
}

// TestTokenKeyRotation: a token signed with a rotated-out-of-active key
// keeps verifying while the key stays listed, and stops once removed.
func TestTokenKeyRotation(t *testing.T) {
	old := testKeyring(t, "k1")
	tok, err := old.Mint(testClaims("Protected", []Capability{CapQuery}, time.Hour))
	if err != nil {
		t.Fatal(err)
	}

	// Rotation: prepend k2 (now active), retain k1 for verification.
	rotated := testKeyring(t, "k2", "k1")
	if rotated.Active() != "k2" {
		t.Fatalf("active = %q", rotated.Active())
	}
	if _, err := rotated.Verify(tok, time.Now()); err != nil {
		t.Errorf("old-key token rejected after rotation: %v", err)
	}
	// New tokens sign with the new key.
	tok2, err := rotated.Mint(testClaims("Protected", []Capability{CapQuery}, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if c, err := rotated.Verify(tok2, time.Now()); err != nil || c.KeyID != "k2" {
		t.Errorf("new token: claims=%+v err=%v", c, err)
	}

	// k1 dropped: its tokens stop verifying.
	final := testKeyring(t, "k2")
	if _, err := final.Verify(tok, time.Now()); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("dropped-key token error = %v, want ErrUnknownKey", err)
	}
	if _, err := final.Verify(tok2, time.Now()); err != nil {
		t.Errorf("active-key token rejected: %v", err)
	}
}

func TestParseKeyringFormat(t *testing.T) {
	kr, err := ParseKeyring([]byte(`
# active key first
k2026: 9c2fa0b1d4e57788aabbccdd
k2025:legacy-secret-still-listed
`))
	if err != nil {
		t.Fatal(err)
	}
	if kr.Active() != "k2026" {
		t.Errorf("active = %q", kr.Active())
	}
	if ids := kr.KeyIDs(); len(ids) != 2 || ids[1] != "k2025" {
		t.Errorf("ids = %v", ids)
	}

	bad := []string{
		"",                  // no keys
		"# only comments\n", // no keys
		"noseparator\n",     // missing colon
		"k1:short\n",        // secret too short
		"k1:" + strings.Repeat("s", 20) + "\nk1:" + strings.Repeat("t", 20) + "\n", // dup id
	}
	for _, data := range bad {
		if _, err := ParseKeyring([]byte(data)); err == nil {
			t.Errorf("ParseKeyring(%q) accepted", data)
		}
	}
}

func TestParseCapabilities(t *testing.T) {
	caps, err := ParseCapabilities([]string{"query", " ingest", "query", ""})
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 2 || caps[0] != CapIngest || caps[1] != CapQuery {
		t.Errorf("caps = %v", caps)
	}
	if _, err := ParseCapabilities([]string{"root"}); err == nil {
		t.Error("unknown capability accepted")
	}
}

func TestDecodeTokenClaimsWithoutVerification(t *testing.T) {
	kr := testKeyring(t)
	tok, err := kr.Mint(testClaims("Protected", []Capability{CapAdmin}, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	c, err := DecodeTokenClaims(tok)
	if err != nil {
		t.Fatal(err)
	}
	if c.Viewer != "Protected" || !c.Can(CapAdmin) {
		t.Errorf("claims = %+v", c)
	}
	// Decoding inspects even tokens this keyring cannot verify.
	foreign := testKeyring(t, "other")
	ftok, err := foreign.Mint(testClaims("Public", []Capability{CapQuery}, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTokenClaims(ftok); err != nil {
		t.Errorf("foreign decode failed: %v", err)
	}
	if _, err := kr.Verify(ftok, time.Now()); err == nil {
		t.Error("foreign token verified")
	}
}

func TestMintValidation(t *testing.T) {
	kr := testKeyring(t)
	cases := []Claims{
		{},
		{Viewer: "P", Capabilities: []Capability{CapQuery}},                                 // no expiry
		{Viewer: "P", ExpiresAt: time.Now().Add(time.Hour).Unix()},                          // no caps
		{Capabilities: []Capability{CapQuery}, ExpiresAt: time.Now().Add(time.Hour).Unix()}, // no viewer
	}
	for i, c := range cases {
		if _, err := kr.Mint(c); err == nil {
			t.Errorf("case %d: bad claims minted", i)
		}
	}
	if _, err := kr.Mint(Claims{
		Viewer: "P", Capabilities: []Capability{CapQuery},
		ExpiresAt: time.Now().Add(time.Hour).Unix(), KeyID: "ghost",
	}); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("unknown key mint error = %v", err)
	}
}

package plus

import (
	"bytes"
	"strings"
	"testing"
)

func opmFixture(t *testing.T) *Store {
	t.Helper()
	s, _ := openTemp(t)
	objs := []Object{
		{ID: "raw", Kind: Data, Name: "raw data"},
		{ID: "clean", Kind: Invocation, Name: "cleaning step", Lowest: "Protected", Protect: "surrogate"},
		{ID: "table", Kind: Data, Name: "clean table"},
	}
	for _, o := range objs {
		if err := s.PutObject(o); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []Edge{
		{From: "raw", To: "clean", Label: "input"},
		{From: "clean", To: "table", Label: "output"},
	} {
		if err := s.PutEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestOPMExportShape(t *testing.T) {
	s := opmFixture(t)
	var buf bytes.Buffer
	if err := s.ExportOPM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"artifacts"`, `"processes"`, `"used"`, `"wasGeneratedBy"`,
		`"id": "raw"`, `"id": "clean"`,
		`"x-plus"`, `"lowest": "Protected"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
	// raw -> clean is a "used" arc (process consumed artifact).
	if !strings.Contains(out, `"effect": "clean"`) {
		t.Error("used arc direction wrong")
	}
}

func TestOPMRoundTrip(t *testing.T) {
	src := opmFixture(t)
	var buf bytes.Buffer
	if err := src.ExportOPM(&buf); err != nil {
		t.Fatal(err)
	}

	dst, _ := openTemp(t)
	if err := dst.ImportOPM(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.NumObjects() != src.NumObjects() || dst.NumEdges() != src.NumEdges() {
		t.Fatalf("round trip size: %d/%d vs %d/%d",
			dst.NumObjects(), dst.NumEdges(), src.NumObjects(), src.NumEdges())
	}
	o, err := dst.GetObject("clean")
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != Invocation || o.Lowest != "Protected" || o.Protect != "surrogate" {
		t.Errorf("sensitivity lost across OPM: %+v", o)
	}
	if got := dst.EdgesFrom("raw"); len(got) != 1 || got[0].To != "clean" || got[0].Label != "input" {
		t.Errorf("edge lost or relabelled: %v", got)
	}
}

func TestOPMImportForeignDocument(t *testing.T) {
	// A document from another system: no x-plus blocks, default roles.
	doc := `{
	  "artifacts": [{"id":"a1","value":"input file"},{"id":"a2","value":"result"}],
	  "processes": [{"id":"p1","value":"transform"}],
	  "used": [{"effect":"p1","cause":"a1"}],
	  "wasGeneratedBy": [{"effect":"a2","cause":"p1"}]
	}`
	s, _ := openTemp(t)
	if err := s.ImportOPM(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if s.NumObjects() != 3 || s.NumEdges() != 2 {
		t.Errorf("import size: %d objects %d edges", s.NumObjects(), s.NumEdges())
	}
	o, err := s.GetObject("a1")
	if err != nil || o.Lowest != "" {
		t.Errorf("foreign artifact should be public: %+v %v", o, err)
	}
	if got := s.EdgesFrom("p1"); len(got) != 1 || got[0].Label != "wasGeneratedBy" {
		t.Errorf("default role missing: %v", got)
	}
}

func TestOPMImportErrors(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.ImportOPM(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	if err := s.ImportOPM(strings.NewReader(`{"used":[{"effect":"p","cause":"a"}]}`)); err == nil {
		t.Error("dependency on unknown entities accepted")
	}
}

func TestOPMExportOnClosedStore(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.ExportOPM(&buf); err == nil {
		t.Error("export on closed store accepted")
	}
}

package plus

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/privilege"
)

// authTestServer wires a MemBackend server that REQUIRES tokens signed
// by kr.
func authTestServer(t *testing.T, kr *Keyring, anonymous bool) (*httptest.Server, *MemBackend) {
	t.Helper()
	m := NewMemBackend(4)
	t.Cleanup(func() { m.Close() })
	srv := httptest.NewServer(NewServer(
		NewEngine(m, privilege.TwoLevel()),
		WithAuth(AuthConfig{Keyring: kr, Require: true, AnonymousRead: anonymous}),
	))
	t.Cleanup(srv.Close)
	return srv, m
}

// operatorToken mints the bootstrap credential an operator would create
// with `plusctl session mint`: all capabilities, top viewer.
func operatorToken(t *testing.T, kr *Keyring, viewer string, caps ...Capability) string {
	t.Helper()
	if len(caps) == 0 {
		caps = AllCapabilities()
	}
	tok, err := kr.Mint(testClaims(viewer, caps, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

func sessionHeader(token string) map[string]string {
	return map[string]string{HeaderSession: token}
}

// TestAuthRequiredRejectsMissingAndInvalidTokens: with -auth-keys set,
// every v2 endpoint answers 401 with a structured body to tokenless,
// tampered and expired requests.
func TestAuthRequiredRejectsMissingAndInvalidTokens(t *testing.T) {
	kr := testKeyring(t)
	srv, _ := authTestServer(t, kr, false)
	valid := operatorToken(t, kr, "Protected")
	expired, err := kr.Mint(Claims{
		Viewer: "Protected", Capabilities: AllCapabilities(),
		IssuedAt: time.Now().Add(-2 * time.Hour).Unix(), ExpiresAt: time.Now().Add(-time.Hour).Unix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tampered := valid[:len(valid)-2] + "zz"

	endpoints := []struct {
		method, path string
		body         interface{}
	}{
		{http.MethodPost, "/v2/batch", BatchRequest{}},
		{http.MethodGet, "/v2/changes", nil},
		{http.MethodGet, "/v2/snapshot", nil},
		{http.MethodGet, "/v2/lineage?start=x", nil},
		{http.MethodGet, "/v2/objects/x", nil},
		{http.MethodPost, "/v2/compact", nil},
		{http.MethodPost, "/v2/sessions", SessionRequest{}},
	}
	for _, ep := range endpoints {
		var apiErr APIError
		if st := doJSON(t, ep.method, srv.URL+ep.path, nil, ep.body, &apiErr); st != http.StatusUnauthorized {
			t.Errorf("%s %s tokenless: status = %d, want 401", ep.method, ep.path, st)
		}
		if apiErr.Code != CodeUnauthorized || apiErr.Message == "" {
			t.Errorf("%s %s tokenless: body = %+v", ep.method, ep.path, apiErr)
		}

		apiErr = APIError{}
		if st := doJSON(t, ep.method, srv.URL+ep.path, sessionHeader(tampered), ep.body, &apiErr); st != http.StatusUnauthorized {
			t.Errorf("%s %s tampered: status = %d, want 401", ep.method, ep.path, st)
		}
		if apiErr.Code != CodeBadToken {
			t.Errorf("%s %s tampered: code = %q", ep.method, ep.path, apiErr.Code)
		}

		apiErr = APIError{}
		if st := doJSON(t, ep.method, srv.URL+ep.path, sessionHeader(expired), ep.body, &apiErr); st != http.StatusUnauthorized {
			t.Errorf("%s %s expired: status = %d, want 401", ep.method, ep.path, st)
		}
		if apiErr.Code != CodeTokenExpired {
			t.Errorf("%s %s expired: code = %q", ep.method, ep.path, apiErr.Code)
		}
	}
}

// TestAuthCapabilitySplit: provider, consumer and admin operations each
// demand their own capability; a token scoped to one gets 403 (not 401)
// elsewhere.
func TestAuthCapabilitySplit(t *testing.T) {
	kr := testKeyring(t)
	srv, _ := authTestServer(t, kr, false)
	ingest := operatorToken(t, kr, "Protected", CapIngest)
	query := operatorToken(t, kr, "Protected", CapQuery)
	replicate := operatorToken(t, kr, "Protected", CapReplicate)

	// ingest can batch...
	var br BatchResponse
	if st := doJSON(t, http.MethodPost, srv.URL+"/v2/batch", sessionHeader(ingest), v2Fixture(), &br); st != http.StatusOK {
		t.Fatalf("ingest batch status = %d", st)
	}

	deny := []struct {
		name, method, path, token string
		body                      interface{}
	}{
		{"query cannot batch", http.MethodPost, "/v2/batch", query, BatchRequest{}},
		{"ingest cannot read changes", http.MethodGet, "/v2/changes", ingest, nil},
		{"ingest cannot snapshot", http.MethodGet, "/v2/snapshot", ingest, nil},
		{"replicate cannot lineage", http.MethodGet, "/v2/lineage?start=report", replicate, nil},
		{"replicate cannot point-read", http.MethodGet, "/v2/objects/report", replicate, nil},
		{"query cannot compact", http.MethodPost, "/v2/compact", query, nil},
		{"query cannot stats", http.MethodGet, "/v1/stats", query, nil},
		{"query cannot opm-export", http.MethodGet, "/v1/opm", query, nil},
		{"replicate cannot v1-ingest", http.MethodPost, "/v1/objects", replicate, Object{ID: "x", Kind: Data}},
	}
	for _, d := range deny {
		var apiErr APIError
		if st := doJSON(t, d.method, srv.URL+d.path, sessionHeader(d.token), d.body, &apiErr); st != http.StatusForbidden {
			t.Errorf("%s: status = %d, want 403", d.name, st)
		}
		if apiErr.Code != CodeForbidden || apiErr.Message == "" {
			t.Errorf("%s: body = %+v", d.name, apiErr)
		}
	}

	// ...and each capability's own surface works.
	var resp LineageResponse
	if st := doJSON(t, http.MethodGet, srv.URL+"/v2/lineage?start=report", sessionHeader(query), nil, &resp); st != http.StatusOK {
		t.Errorf("query lineage status = %d", st)
	}
	if resp.Viewer != "Protected" {
		t.Errorf("lineage viewer = %q", resp.Viewer)
	}
	var snap SnapshotResponse
	if st := doJSON(t, http.MethodGet, srv.URL+"/v2/snapshot", sessionHeader(replicate), nil, &snap); st != http.StatusOK {
		t.Errorf("replicate snapshot status = %d", st)
	}
}

// TestAuthCrossInstanceTokens is the stateless multi-node acceptance
// case: a token minted through one Server's POST /v2/sessions is
// accepted by a second Server instance sharing only the keyring.
func TestAuthCrossInstanceTokens(t *testing.T) {
	kr := testKeyring(t, "k2", "k1")
	srvA, _ := authTestServer(t, kr, false)
	srvB, _ := authTestServer(t, kr, false)

	// Bootstrap on node A: operator token mints a narrowed session.
	boot := operatorToken(t, kr, "Protected")
	var sess SessionResponse
	st := doJSON(t, http.MethodPost, srvA.URL+"/v2/sessions", sessionHeader(boot),
		SessionRequest{Capabilities: []string{"ingest", "query"}}, &sess)
	if st != http.StatusCreated {
		t.Fatalf("mint on A: status = %d", st)
	}
	if sess.KeyID != "k2" || sess.Viewer != "Protected" || len(sess.Capabilities) != 2 {
		t.Fatalf("session = %+v", sess)
	}

	// Node B never saw that mint, but verifies the signature.
	var br BatchResponse
	if st := doJSON(t, http.MethodPost, srvB.URL+"/v2/batch", sessionHeader(sess.Token), v2Fixture(), &br); st != http.StatusOK {
		t.Fatalf("cross-instance batch status = %d", st)
	}
	var resp LineageResponse
	if st := doJSON(t, http.MethodGet, srvB.URL+"/v2/lineage?start=report", sessionHeader(sess.Token), nil, &resp); st != http.StatusOK {
		t.Errorf("cross-instance lineage status = %d", st)
	}

	// A server with a DIFFERENT keyring rejects the same token.
	other := testKeyring(t, "other")
	srvC, _ := authTestServer(t, other, false)
	var apiErr APIError
	if st := doJSON(t, http.MethodGet, srvC.URL+"/v2/lineage?start=report", sessionHeader(sess.Token), nil, &apiErr); st != http.StatusUnauthorized {
		t.Errorf("foreign keyring status = %d, want 401", st)
	}
}

// TestAuthSessionAttenuationOnly: POST /v2/sessions can only narrow the
// caller's credential — capability supersets, undominated viewers and
// longer lifetimes are refused or clamped.
func TestAuthSessionAttenuationOnly(t *testing.T) {
	kr := testKeyring(t)
	srv, _ := authTestServer(t, kr, false)
	narrow, err := kr.Mint(testClaims("Public", []Capability{CapQuery}, time.Hour))
	if err != nil {
		t.Fatal(err)
	}

	// Capability escalation: 403.
	var apiErr APIError
	st := doJSON(t, http.MethodPost, srv.URL+"/v2/sessions", sessionHeader(narrow),
		SessionRequest{Capabilities: []string{"ingest"}}, &apiErr)
	if st != http.StatusForbidden || apiErr.Code != CodeForbidden {
		t.Errorf("capability escalation: status=%d code=%q", st, apiErr.Code)
	}

	// Viewer escalation (Public cannot mint Protected): 403.
	apiErr = APIError{}
	st = doJSON(t, http.MethodPost, srv.URL+"/v2/sessions", sessionHeader(narrow),
		SessionRequest{Viewer: "Protected"}, &apiErr)
	if st != http.StatusForbidden || apiErr.Code != CodeForbidden {
		t.Errorf("viewer escalation: status=%d code=%q", st, apiErr.Code)
	}

	// Viewer attenuation (Protected mints Public) works, and the expiry
	// slides past the minting credential's — holding a valid token
	// entitles the holder to a fresh one (the SDK refresh path).
	shortLived, err := kr.Mint(testClaims("Protected", AllCapabilities(), 2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	var sess SessionResponse
	st = doJSON(t, http.MethodPost, srv.URL+"/v2/sessions", sessionHeader(shortLived),
		SessionRequest{Viewer: "Public", Capabilities: []string{"query"}, TTLSeconds: 3600}, &sess)
	if st != http.StatusCreated {
		t.Fatalf("attenuation mint status = %d", st)
	}
	if sess.Viewer != "Public" {
		t.Errorf("minted viewer = %q", sess.Viewer)
	}
	if !time.Unix(sess.ExpiresAt, 0).After(time.Now().Add(30 * time.Minute)) {
		t.Errorf("minted expiry %d did not honour the requested ttl", sess.ExpiresAt)
	}
}

// TestAuthAnonymousReadOnly: the legacy back-compat mode keeps the query
// surface open to tokenless requests (validated client-asserted viewers)
// while writes, replication and admin still demand tokens.
func TestAuthAnonymousReadOnly(t *testing.T) {
	kr := testKeyring(t)
	srv, _ := authTestServer(t, kr, true)
	ingest := operatorToken(t, kr, "Protected", CapIngest)
	if st := doJSON(t, http.MethodPost, srv.URL+"/v2/batch", sessionHeader(ingest), v2Fixture(), nil); st != http.StatusOK {
		t.Fatalf("seed batch status = %d", st)
	}

	// Tokenless query works, with the legacy asserted-viewer semantics.
	var resp LineageResponse
	if st := doJSON(t, http.MethodGet, srv.URL+"/v2/lineage?start=report",
		map[string]string{HeaderViewer: "Protected"}, nil, &resp); st != http.StatusOK {
		t.Fatalf("anonymous lineage status = %d", st)
	}
	if resp.Viewer != "Protected" {
		t.Errorf("anonymous viewer = %q", resp.Viewer)
	}
	var v1 LineageResponse
	if st := doJSON(t, http.MethodGet, srv.URL+"/v1/lineage?start=report&viewer=Public", nil, nil, &v1); st != http.StatusOK {
		t.Errorf("anonymous v1 lineage status = %d", st)
	}

	// Tokenless writes/replication/admin stay shut.
	for _, ep := range []struct {
		method, path string
		body         interface{}
	}{
		{http.MethodPost, "/v2/batch", BatchRequest{}},
		{http.MethodGet, "/v2/changes", nil},
		{http.MethodGet, "/v2/snapshot", nil},
		{http.MethodPost, "/v2/compact", nil},
		{http.MethodPost, "/v1/objects", Object{ID: "x", Kind: Data}},
		{http.MethodGet, "/v1/stats", nil},
		{http.MethodPost, "/v2/sessions", SessionRequest{}},
	} {
		var apiErr APIError
		if st := doJSON(t, ep.method, srv.URL+ep.path, nil, ep.body, &apiErr); st != http.StatusUnauthorized {
			t.Errorf("%s %s anonymous: status = %d, want 401", ep.method, ep.path, st)
		}
	}
}

// TestAuthV1AssertedViewerBounded: under required auth, v1's
// client-asserted viewers cannot exceed the token's viewer.
func TestAuthV1AssertedViewerBounded(t *testing.T) {
	kr := testKeyring(t)
	srv, _ := authTestServer(t, kr, false)
	ingest := operatorToken(t, kr, "Protected", CapIngest)
	if st := doJSON(t, http.MethodPost, srv.URL+"/v2/batch", sessionHeader(ingest), v2Fixture(), nil); st != http.StatusOK {
		t.Fatalf("seed batch status = %d", st)
	}

	public := operatorToken(t, kr, "Public", CapQuery)
	var apiErr APIError
	st := doJSON(t, http.MethodGet, srv.URL+"/v1/lineage?start=report&viewer=Protected", sessionHeader(public), nil, &apiErr)
	if st != http.StatusForbidden || apiErr.Code != CodeForbidden {
		t.Errorf("viewer escalation through v1: status=%d code=%q", st, apiErr.Code)
	}
	// The token's own viewer (or below) is fine.
	var resp LineageResponse
	if st := doJSON(t, http.MethodGet, srv.URL+"/v1/lineage?start=report&viewer=Public", sessionHeader(public), nil, &resp); st != http.StatusOK {
		t.Errorf("dominated viewer status = %d", st)
	}

	protected := operatorToken(t, kr, "Protected", CapQuery)
	if st := doJSON(t, http.MethodGet, srv.URL+"/v1/lineage?start=report&viewer=Public", sessionHeader(protected), nil, &resp); st != http.StatusOK {
		t.Errorf("attenuated asserted viewer status = %d", st)
	}
}

// TestAuthV1ObjectReadBoundedByToken: a scoped token cannot use the
// legacy v1 point read to fetch raw records above its viewer — the v2
// dominance check applies to authenticated v1 reads too.
func TestAuthV1ObjectReadBoundedByToken(t *testing.T) {
	kr := testKeyring(t)
	srv, _ := authTestServer(t, kr, false)
	ingest := operatorToken(t, kr, "Protected", CapIngest)
	if st := doJSON(t, http.MethodPost, srv.URL+"/v2/batch", sessionHeader(ingest), v2Fixture(), nil); st != http.StatusOK {
		t.Fatalf("seed batch status = %d", st)
	}

	public := operatorToken(t, kr, "Public", CapQuery)
	var apiErr APIError
	if st := doJSON(t, http.MethodGet, srv.URL+"/v1/objects/proc", sessionHeader(public), nil, &apiErr); st != http.StatusForbidden {
		t.Errorf("public token raw read of protected object: status = %d, want 403", st)
	}
	var o Object
	if st := doJSON(t, http.MethodGet, srv.URL+"/v1/objects/src", sessionHeader(public), nil, &o); st != http.StatusOK || o.Name != "raw feed" {
		t.Errorf("public token read of public object: status=%d o=%+v", st, o)
	}
	protected := operatorToken(t, kr, "Protected", CapQuery)
	if st := doJSON(t, http.MethodGet, srv.URL+"/v1/objects/proc", sessionHeader(protected), nil, &o); st != http.StatusOK {
		t.Errorf("protected token read: status = %d", st)
	}
}

// TestV2ChangesStreamEndsOnCompact: a parked long-poll follower is woken
// by compaction and its stream ends (the epoch its cursors are stamped
// with is dead) instead of sleeping out the wait budget or emitting
// stale-epoch cursors.
func TestV2ChangesStreamEndsOnCompact(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "plus.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(NewServer(NewEngine(s, privilege.TwoLevel())))
	defer srv.Close()
	ingestV2Fixture(t, srv.URL)

	head := Cursor{Epoch: s.Epoch(), Rev: s.Revision()}.Encode()
	done := make(chan []ChangeEvent, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v2/changes?cursor=" + head + "&wait=30s")
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		done <- readEvents(t, resp.Body)
	}()
	time.Sleep(100 * time.Millisecond) // let the handler catch up and park
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	select {
	case evs := <-done:
		for _, ev := range evs {
			if ev.Type == "change" {
				t.Errorf("post-compact stream emitted a change event: %+v", ev)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after compaction (parked past the rotation)")
	}
}

// TestAuthHealthzStaysOpen: the readiness probe never demands a token.
func TestAuthHealthzStaysOpen(t *testing.T) {
	kr := testKeyring(t)
	srv, _ := authTestServer(t, kr, false)
	var h HealthzResponse
	if st := doJSON(t, http.MethodGet, srv.URL+"/v1/healthz", nil, nil, &h); st != http.StatusOK {
		t.Errorf("healthz status = %d", st)
	}
	if h.Status != "ok" {
		t.Errorf("healthz = %+v", h)
	}
}

// TestAuthTokenViewerConflictAndUnknownLattice: an X-Plus-Viewer header
// contradicting the token is 400; a well-signed token for a predicate
// the lattice does not know is 403.
func TestAuthTokenViewerConflictAndUnknownLattice(t *testing.T) {
	kr := testKeyring(t)
	srv, _ := authTestServer(t, kr, false)
	tok := operatorToken(t, kr, "Protected", CapQuery)

	var apiErr APIError
	st := doJSON(t, http.MethodGet, srv.URL+"/v2/lineage?start=x",
		map[string]string{HeaderSession: tok, HeaderViewer: "Public"}, nil, &apiErr)
	if st != http.StatusBadRequest || apiErr.Code != CodeViewerConflict {
		t.Errorf("conflict: status=%d code=%q", st, apiErr.Code)
	}

	alien := operatorToken(t, kr, "Overlord", CapQuery)
	apiErr = APIError{}
	st = doJSON(t, http.MethodGet, srv.URL+"/v2/lineage?start=x", sessionHeader(alien), nil, &apiErr)
	if st != http.StatusForbidden || apiErr.Code != CodeForbidden {
		t.Errorf("unknown-lattice viewer: status=%d code=%q", st, apiErr.Code)
	}
}

// TestV2CompactEndpoint: admin-gated compaction rewrites a log backend
// (rotating the epoch) and politely refuses on volatile backends.
func TestV2CompactEndpoint(t *testing.T) {
	kr := testKeyring(t)

	// Volatile backend: 400.
	memSrv, _ := authTestServer(t, kr, false)
	admin := operatorToken(t, kr, "Protected", CapAdmin, CapIngest)
	var apiErr APIError
	if st := doJSON(t, http.MethodPost, memSrv.URL+"/v2/compact", sessionHeader(admin), nil, &apiErr); st != http.StatusBadRequest {
		t.Errorf("mem compact status = %d", st)
	}

	// Log backend: live records only, epoch rotated.
	s, err := Open(filepath.Join(t.TempDir(), "plus.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	logSrv := httptest.NewServer(NewServer(NewEngine(s, privilege.TwoLevel()),
		WithAuth(AuthConfig{Keyring: kr, Require: true})))
	defer logSrv.Close()
	if st := doJSON(t, http.MethodPost, logSrv.URL+"/v2/batch", sessionHeader(admin), v2Fixture(), nil); st != http.StatusOK {
		t.Fatalf("log seed status = %d", st)
	}
	before := s.Epoch()
	var cr CompactResponse
	if st := doJSON(t, http.MethodPost, logSrv.URL+"/v2/compact", sessionHeader(admin), nil, &cr); st != http.StatusOK {
		t.Fatalf("log compact status = %d", st)
	}
	if cr.Status != "compacted" || cr.LogBytes <= 0 {
		t.Errorf("compact response = %+v", cr)
	}
	if s.Epoch() == before {
		t.Error("compaction did not rotate the epoch")
	}
	cur, err := DecodeCursor(cr.Cursor)
	if err != nil || cur.Epoch != s.Epoch() {
		t.Errorf("compact cursor = %+v (err %v)", cur, err)
	}
}

// TestV1DeprecationHeaders: every /v1 answer (except the healthz probe)
// carries machine-readable Deprecation and Sunset headers; /v2 does not.
func TestV1DeprecationHeaders(t *testing.T) {
	srv, _ := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)

	for _, path := range []string{"/v1/lineage?start=report", "/v1/stats", "/v1/objects/report", "/v1/opm"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		dep := resp.Header.Get("Deprecation")
		if dep == "" || dep[0] != '@' {
			t.Errorf("%s: Deprecation = %q", path, dep)
		}
		sunset := resp.Header.Get("Sunset")
		if _, err := time.Parse(http.TimeFormat, sunset); err != nil {
			t.Errorf("%s: Sunset = %q: %v", path, sunset, err)
		}
	}
	for _, path := range []string{"/v1/healthz", "/v2/snapshot", "/v2/lineage?start=report"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "" || resp.Header.Get("Sunset") != "" {
			t.Errorf("%s unexpectedly deprecated", path)
		}
	}
}

// TestOpenModeSessionsAreStateless: without a configured keyring the
// server still mints signed tokens (ephemeral per-process key), so the
// old in-memory session table is gone but open-mode semantics survive.
func TestOpenModeSessionsAreStateless(t *testing.T) {
	srv, _ := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)

	var sess SessionResponse
	if st := doJSON(t, http.MethodPost, srv.URL+"/v2/sessions", nil, SessionRequest{Viewer: "Protected"}, &sess); st != http.StatusCreated {
		t.Fatalf("open-mode mint status = %d", st)
	}
	claims, err := DecodeTokenClaims(sess.Token)
	if err != nil {
		t.Fatalf("open-mode token is not a signed token: %v", err)
	}
	if claims.Viewer != "Protected" || len(claims.Capabilities) != len(AllCapabilities()) {
		t.Errorf("open-mode claims = %+v", claims)
	}
	var resp LineageResponse
	if st := doJSON(t, http.MethodGet, srv.URL+"/v2/lineage?start=report", sessionHeader(sess.Token), nil, &resp); st != http.StatusOK || resp.Viewer != "Protected" {
		t.Errorf("open-mode token lineage: status=%d viewer=%q", st, resp.Viewer)
	}

	// A second open-mode server (different ephemeral key) refuses it:
	// process-bound lifetime, like the old session table.
	srv2, _ := v2TestServer(t)
	var apiErr APIError
	if st := doJSON(t, http.MethodGet, srv2.URL+"/v2/lineage?start=report", sessionHeader(sess.Token), nil, &apiErr); st != http.StatusUnauthorized {
		t.Errorf("foreign ephemeral token status = %d, want 401", st)
	}
}

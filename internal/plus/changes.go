package plus

import (
	"errors"
	"fmt"
	"sort"
)

// This file defines the change feed: the ordered stream of record deltas a
// backend applied between two revisions. The feed is what turns the
// revision counter from a bare invalidation signal ("something changed,
// throw every derived structure away") into a maintenance signal ("these
// records changed, patch what they touch"). The protected-account and
// PLUSQL view layers consume it to refresh caches incrementally instead of
// rebuilding whole-snapshot accounts on every write.

// ChangeKind tags one change-feed record.
type ChangeKind byte

const (
	// ChangeObject is an object stored (new) or replaced (the previous
	// version moved to history).
	ChangeObject ChangeKind = 1
	// ChangeEdge is an edge stored. Edges are never replaced or removed.
	ChangeEdge ChangeKind = 2
	// ChangeSurrogate is a surrogate spec stored. Surrogates accumulate.
	ChangeSurrogate ChangeKind = 3
)

// Change is one applied record together with the revision it produced.
// Exactly one of Object, Edge and Surrogate is meaningful, selected by
// Kind.
type Change struct {
	Rev       uint64
	Kind      ChangeKind
	Object    Object
	Edge      Edge
	Surrogate SurrogateSpec
}

// ErrTooFarBehind is returned by ChangesSince when the requested start
// revision has aged out of the backend's retained change window; callers
// fall back to a full rebuild from a fresh snapshot.
var ErrTooFarBehind = errors.New("plus: revision too far behind retained change feed")

// errFutureRevision reports a ChangesSince start beyond the backend's
// current revision.
func errFutureRevision(since, rev uint64) error {
	return fmt.Errorf("plus: revision %d is in the future (backend at %d)", since, rev)
}

// Delta is the change set between two revisions of one backend, as seen
// from a snapshot: every record applied after Since, up to and including
// Rev, in application order.
type Delta struct {
	// Since is the revision the delta starts after (exclusive).
	Since uint64
	// Rev is the revision the delta ends at (inclusive).
	Rev uint64
	// Changes holds the applied records in revision order.
	Changes []Change
}

// Empty reports whether the delta carries no changes.
func (d *Delta) Empty() bool { return len(d.Changes) == 0 }

// Touched returns the ids of every object the delta touches directly:
// objects stored or replaced, endpoints of new edges, and originals of new
// surrogates. This is the seed of any dirty-region computation.
func (d *Delta) Touched() map[string]bool {
	out := make(map[string]bool, len(d.Changes))
	for _, c := range d.Changes {
		switch c.Kind {
		case ChangeObject:
			out[c.Object.ID] = true
		case ChangeEdge:
			out[c.Edge.From] = true
			out[c.Edge.To] = true
		case ChangeSurrogate:
			out[c.Surrogate.ForID] = true
		}
	}
	return out
}

// changeWalker is implemented by backends that can stream their retained
// change feed in place. Unlike ChangesSince it neither copies the Change
// records nor merge-sorts them: visit observes each change with revision
// in (since, upTo] exactly once, in revision order PER PRIMARY ID but in
// unspecified order across ids. The pointer passed to visit is only valid
// for the duration of the call. When part of the window has been evicted
// the walk fails with ErrTooFarBehind — possibly after visiting some
// changes, so callers must treat any error as "discard partial work and
// rebuild".
type changeWalker interface {
	walkChangesSince(since, upTo uint64, visit func(*Change)) error
}

// walkObjectChanges streams the object changes applied after revision
// since, up to the snapshot's revision, into visit. It is the allocation-
// free sibling of DeltaSince for consumers — like the secondary index —
// that only fold per-object state and don't care about cross-object
// ordering: when the source backend supports in-place walking, nothing is
// copied and nothing is sorted. On any feed hazard (ErrTooFarBehind,
// missing source) the caller must discard partial work and rebuild.
func (sn *Snapshot) walkObjectChanges(since uint64, visit func(Object)) error {
	if since > sn.rev {
		return errFutureRevision(since, sn.rev)
	}
	if w, ok := sn.source.(changeWalker); ok {
		return w.walkChangesSince(since, sn.rev, func(c *Change) {
			if c.Kind == ChangeObject {
				visit(c.Object)
			}
		})
	}
	d, err := sn.DeltaSince(since)
	if err != nil {
		return err
	}
	for i := range d.Changes {
		if d.Changes[i].Kind == ChangeObject {
			visit(d.Changes[i].Object)
		}
	}
	return nil
}

// DeltaSince returns the changes applied after revision since, up to this
// snapshot's revision, drawn from the backend the snapshot was taken of.
// It fails with ErrTooFarBehind when the backend no longer retains the
// window (callers rebuild from scratch) and with an error when since is
// newer than the snapshot.
func (sn *Snapshot) DeltaSince(since uint64) (*Delta, error) {
	if since > sn.rev {
		return nil, errFutureRevision(since, sn.rev)
	}
	if sn.source == nil {
		return nil, fmt.Errorf("plus: snapshot has no change-feed source")
	}
	changes, err := sn.source.ChangesSince(since)
	if err != nil {
		return nil, err
	}
	// The backend may have advanced past this snapshot; keep only the
	// window the snapshot covers.
	i := sort.Search(len(changes), func(i int) bool { return changes[i].Rev > sn.rev })
	return &Delta{Since: since, Rev: sn.rev, Changes: changes[:i]}, nil
}

// checkContiguous verifies a gathered change window covers (since, rev]
// with no gaps; a gap means part of the window aged out of a bounded feed.
func checkContiguous(changes []Change, since, rev uint64) error {
	if uint64(len(changes)) != rev-since {
		return ErrTooFarBehind
	}
	for i, c := range changes {
		if c.Rev != since+uint64(i)+1 {
			return ErrTooFarBehind
		}
	}
	return nil
}

package plus

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	cases := []Cursor{
		{Epoch: "deadbeefcafef00d", Rev: 0},
		{Epoch: "00", Rev: 1},
		{Epoch: "abc123", Rev: 1<<63 + 17},
	}
	for _, c := range cases {
		enc := c.Encode()
		if !strings.HasPrefix(enc, cursorPrefix) {
			t.Errorf("Encode(%+v) = %q, missing prefix", c, enc)
		}
		got, err := DecodeCursor(enc)
		if err != nil {
			t.Fatalf("DecodeCursor(%q): %v", enc, err)
		}
		if got != c {
			t.Errorf("round trip %+v -> %+v", c, got)
		}
	}
}

func TestCursorDecodeRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"plusv2",
		"not-a-cursor",
		cursorPrefix + "!!!not base64!!!",
		cursorPrefix + "bm90IGpzb24",       // "not json"
		Cursor{Epoch: "", Rev: 3}.Encode(), // empty epoch
		"v1." + strings.TrimPrefix(Cursor{Epoch: "e"}.Encode(), cursorPrefix), // wrong prefix
	}
	for _, s := range bad {
		if _, err := DecodeCursor(s); err == nil {
			t.Errorf("DecodeCursor(%q) accepted garbage", s)
		}
	}
}

func TestEpochFreshPerMemBackend(t *testing.T) {
	a, b := NewMemBackend(2), NewMemBackend(2)
	if a.Epoch() == "" || b.Epoch() == "" {
		t.Fatal("mem backend missing epoch")
	}
	if a.Epoch() == b.Epoch() {
		t.Error("distinct mem backends share an epoch")
	}
	if a.Epoch() != a.Epoch() {
		t.Error("epoch not stable across calls")
	}
}

func TestEpochSurvivesLogReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plus.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	epoch := s.Epoch()
	if epoch == "" {
		t.Fatal("no epoch on fresh log")
	}
	putChain(t, s, "a", "b")
	rev := s.Revision()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Epoch() != epoch {
		t.Errorf("epoch changed across reopen: %q -> %q", epoch, s2.Epoch())
	}
	if s2.Revision() != rev {
		t.Errorf("revision changed across reopen: %d -> %d", rev, s2.Revision())
	}
	// The change window replays too: a cursor from before the restart
	// resumes without gaps.
	changes, err := s2.ChangesSince(0)
	if err != nil {
		t.Fatalf("ChangesSince after reopen: %v", err)
	}
	if uint64(len(changes)) != rev {
		t.Errorf("replayed %d changes, want %d", len(changes), rev)
	}
}

// TestCompactRebasesChangeWindow is the regression test for serving
// pre-compact feed entries under the post-compact epoch: compaction
// renumbers history, so the resident change window must be dropped —
// readers behind the compaction point get ErrTooFarBehind (the 410
// resync path), never old records stamped with the new numbering.
func TestCompactRebasesChangeWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plus.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	putChain(t, s, "a", "b", "c")
	if err := s.PutObject(Object{ID: "a", Kind: Data, Name: "a2"}); err != nil {
		t.Fatal(err)
	}
	rev := s.Revision()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ChangesSince(0); !errors.Is(err, ErrTooFarBehind) {
		t.Errorf("ChangesSince(0) after compact = %v, want ErrTooFarBehind", err)
	}
	if _, err := s.ChangesSince(rev - 1); !errors.Is(err, ErrTooFarBehind) {
		t.Errorf("ChangesSince(rev-1) after compact = %v, want ErrTooFarBehind", err)
	}
	// The feed continues cleanly from the compaction point, and the
	// post-compact numbering survives a reopen.
	if err := s.PutObject(Object{ID: "d", Kind: Data}); err != nil {
		t.Fatal(err)
	}
	changes, err := s.ChangesSince(rev)
	if err != nil || len(changes) != 1 || changes[0].Object.ID != "d" {
		t.Fatalf("post-compact feed = %v, %v", changes, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	changes2, err := s2.ChangesSince(rev)
	if err != nil || len(changes2) != 1 || changes2[0].Object.ID != "d" {
		t.Fatalf("post-restart feed from rev %d = %v, %v", rev, changes2, err)
	}
}

func TestCompactRotatesEpochAndKeepsRevisionHeight(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plus.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	putChain(t, s, "a", "b", "c")
	// Supersede an object so compaction actually drops history.
	if err := s.PutObject(Object{ID: "a", Kind: Data, Name: "a2"}); err != nil {
		t.Fatal(err)
	}
	oldEpoch := s.Epoch()
	rev := s.Revision()

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() == oldEpoch {
		t.Error("compact did not rotate the epoch")
	}
	if s.Revision() != rev {
		t.Errorf("compact moved the in-process revision: %d -> %d", rev, s.Revision())
	}
	// Write after compaction, then reopen: the replayed counter must
	// resume the same numbering the live process used.
	if err := s.PutObject(Object{ID: "d", Kind: Data}); err != nil {
		t.Fatal(err)
	}
	postEpoch, postRev := s.Epoch(), s.Revision()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Epoch() != postEpoch {
		t.Errorf("epoch changed across post-compact reopen: %q -> %q", postEpoch, s2.Epoch())
	}
	if s2.Revision() != postRev {
		t.Errorf("revision diverged across post-compact reopen: %d -> %d", postRev, s2.Revision())
	}
	if _, err := s2.GetObject("d"); err != nil {
		t.Errorf("post-compact write lost: %v", err)
	}
}

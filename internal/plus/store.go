// Package plus reimplements the substrate the paper evaluated on: the
// PLUS provenance prototype ("PLUS: Synthesizing privacy, lineage,
// uncertainty and security", ICDE Workshops 2008). It provides a durable
// provenance store for lineage DAGs — data objects, process invocations
// and the edges between them — together with a privilege-aware lineage
// query engine that answers path-traversal queries ("what contributed to
// this data?") with protected accounts, and an HTTP server/client pair.
//
// Storage is pluggable behind the Backend interface. LogBackend is the
// durable engine: a single append-only log file where each record is
// length-prefixed, type-tagged and CRC-guarded; an in-memory index (object
// id -> offset, plus adjacency) is rebuilt by scanning the log on open,
// and a torn tail from a crashed writer is detected and truncated. This is
// deliberately the classical minimal write-ahead design: the paper's
// Figure 10 experiment decomposes query cost into DB access, graph build
// and protection, and this engine reproduces that decomposition honestly.
// MemBackend (membackend.go) is the volatile, shard-partitioned engine for
// read-heavy serving. Both hand queries immutable revision-stamped
// snapshots, so lineage traversal never blocks writers, and both expose
// the change feed (ChangesSince / Snapshot.DeltaSince) that the account,
// view and cache layers consume for incremental maintenance.
package plus

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// ObjectKind distinguishes provenance node types (Open Provenance Model
// terminology: artifacts and processes).
type ObjectKind string

const (
	// Data is an artifact: a file, record, report, model, ...
	Data ObjectKind = "data"
	// Invocation is a process execution that consumed and produced data.
	Invocation ObjectKind = "invocation"
)

// Object is one provenance node.
type Object struct {
	ID       string            `json:"id"`
	Kind     ObjectKind        `json:"kind"`
	Name     string            `json:"name"`
	Features map[string]string `json:"features,omitempty"`
	// Lowest is the nickname of the object's lowest privilege-predicate;
	// empty means Public.
	Lowest string `json:"lowest,omitempty"`
	// Protect selects how the object's node-edge incidences are marked
	// for consumers below Lowest (§3.2: providers may mark all edges
	// connected to a node): "surrogate" preserves connectivity through
	// the hidden node, "hide" severs it, "" leaves the incidences
	// Visible (edges then attach to the object's surrogate, if any).
	Protect string `json:"protect,omitempty"`
}

// Edge is one provenance relationship (e.g. "input-to", "generated-by")
// from object From to object To, directed along dataflow.
type Edge struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Label string `json:"label,omitempty"`
	// Marking optionally restricts the edge for consumers below Lowest:
	// "surrogate" contracts it, "hide" drops it, "" shows it.
	Marking string `json:"marking,omitempty"`
	// Lowest is the predicate at or above which the edge is fully visible
	// when Marking is set.
	Lowest string `json:"lowest,omitempty"`
}

// SurrogateSpec is a provider-supplied surrogate version of an object.
type SurrogateSpec struct {
	ForID     string            `json:"for"`
	ID        string            `json:"id"`
	Name      string            `json:"name"`
	Features  map[string]string `json:"features,omitempty"`
	Lowest    string            `json:"lowest,omitempty"`
	InfoScore float64           `json:"infoScore"`
}

// record type tags in the log.
const (
	recObject    = byte(1)
	recEdge      = byte(2)
	recSurrogate = byte(3)
	// recEpoch stamps the log with its epoch identity (see Backend.Epoch).
	// It carries no provenance data: applying it never bumps the revision
	// or enters the change feed. A freshly created log gets one as its
	// first record; Compact writes a new one (the rewrite renumbers
	// revisions, so the old epoch's cursors must stop resolving); a legacy
	// log without one has an epoch appended at open.
	recEpoch = byte(4)
)

// epochRecord is the payload of a recEpoch record. Base, when the record
// heads the log, is the revision the replay counter starts from: a
// compacted log holds only live records, but in-process consumers hold
// revision-numbered state, so replay must resume the old numbering's
// height rather than restart at zero.
type epochRecord struct {
	Epoch string `json:"epoch"`
	Base  uint64 `json:"base,omitempty"`
}

// ErrNotFound is returned when an object id is unknown.
var ErrNotFound = errors.New("plus: object not found")

// ErrClosed is returned on use after Close.
var ErrClosed = errors.New("plus: store closed")

// LogBackend is the durable provenance store: a CRC-guarded append-only
// log with a full in-memory index. All methods are safe for concurrent
// use. It implements Backend.
type LogBackend struct {
	mu   sync.RWMutex
	f    *os.File
	path string
	size int64
	sync bool

	objects    map[string]Object
	history    map[string][]Object // superseded versions, oldest first
	out        map[string][]Edge   // keyed by From
	in         map[string][]Edge   // keyed by To
	surrogates map[string][]SurrogateSpec

	// revision increments on every applied record; engines use it to
	// invalidate cached protected accounts and snapshots when the store
	// changes. Atomic so the snapshot fast path never takes mu.
	revision atomic.Uint64

	// snap caches the last snapshot clone; valid while its revision
	// matches the store's. Readers hitting the cache never touch mu.
	snap atomic.Pointer[Snapshot]

	// changes is the bounded in-memory change feed: changes[i] was
	// applied at revision changesBase+i+1. The append-only log is the
	// full history on disk, but only a recent window is kept resident —
	// long-lived update-heavy stores would otherwise duplicate their
	// whole write history in memory. Requests past the window fail with
	// ErrTooFarBehind and callers rebuild from a snapshot.
	changes       []Change
	changesBase   uint64
	changeHorizon int

	// epoch identifies this log's revision numbering (Backend.Epoch).
	// Persisted as a recEpoch record, so it survives restarts; rotated by
	// Compact. Guarded by mu.
	epoch string

	// notifier wakes change-feed followers on every applied mutation
	// (Backend.Notify); it has its own lock and never touches mu.
	notifier

	// idx is the lazily-maintained secondary index (kind/name/attr ->
	// ids); see index.go. It has its own lock and is advanced by query
	// probes, never by the write path.
	idx *backendIndex

	closed atomic.Bool
}

// DefaultLogChangeHorizon is how many recent changes the durable backend
// keeps resident for ChangesSince.
const DefaultLogChangeHorizon = 1 << 16

// Store is the historical name of the durable engine, kept as an alias so
// existing callers and tests keep compiling.
type Store = LogBackend

var _ Backend = (*LogBackend)(nil)

// Options configure Open.
type Options struct {
	// Sync makes every append fsync before returning (durable but slow);
	// off by default, matching typical prototype deployments.
	Sync bool
}

// Open opens (or creates) a store at path, replaying the log to rebuild
// the in-memory index. A torn final record — a crash mid-append — is
// truncated away; any earlier corruption is reported as an error.
func Open(path string, opts Options) (*LogBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("plus: open %s: %w", path, err)
	}
	s := &LogBackend{
		f:             f,
		path:          path,
		sync:          opts.Sync,
		objects:       map[string]Object{},
		history:       map[string][]Object{},
		out:           map[string][]Edge{},
		in:            map[string][]Edge{},
		surrogates:    map[string][]SurrogateSpec{},
		changeHorizon: DefaultLogChangeHorizon,
		idx:           newBackendIndex(),
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if s.epoch == "" {
		// A new log (or one created before epochs existed): mint and
		// persist an identity. For a legacy log the record lands at the
		// tail, which is fine — replay applies it wherever it sits.
		if err := s.append(recEpoch, epochRecord{Epoch: newEpoch()}); err != nil {
			f.Close()
			return nil, fmt.Errorf("plus: stamp epoch: %w", err)
		}
	}
	return s, nil
}

// replay scans the log, applying every intact record and truncating a
// torn tail.
func (s *LogBackend) replay() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("plus: stat: %w", err)
	}
	total := info.Size()
	var off int64
	r := io.NewSectionReader(s.f, 0, total)
	for off < total {
		payload, n, err := readRecord(r)
		if err != nil {
			tornAtTail := errors.Is(err, errTornRecord) ||
				(errors.Is(err, errBadChecksum) && off+n >= total)
			if tornAtTail {
				// Crash mid-append: discard the tail.
				if terr := s.f.Truncate(off); terr != nil {
					return fmt.Errorf("plus: truncate torn tail: %w", terr)
				}
				break
			}
			return fmt.Errorf("plus: replay at offset %d: %w", off, err)
		}
		if err := s.apply(payload[0], payload[1:]); err != nil {
			return fmt.Errorf("plus: replay at offset %d: %w", off, err)
		}
		off += n
	}
	s.size = off
	if _, err := s.f.Seek(s.size, io.SeekStart); err != nil {
		return fmt.Errorf("plus: seek: %w", err)
	}
	return nil
}

// errTornRecord marks an incomplete record at the very end of the log;
// errBadChecksum marks a record whose payload fails its CRC. A bad
// checksum at the tail is a torn write (truncated by replay); anywhere
// else it is corruption and replay fails loudly.
var (
	errTornRecord  = errors.New("plus: torn record")
	errBadChecksum = errors.New("plus: record checksum mismatch")
)

// record layout: 4-byte little-endian payload length, 4-byte CRC32C of the
// payload, payload (1 type byte + JSON body).
func readRecord(r io.Reader) ([]byte, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, 0, errTornRecord
		}
		return nil, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > 1<<24 {
		return nil, 0, fmt.Errorf("plus: implausible record length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, 0, errTornRecord
		}
		return nil, 0, err
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, int64(8 + length), errBadChecksum
	}
	return payload, int64(8 + length), nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func (s *LogBackend) apply(kind byte, body []byte) error {
	if kind == recEpoch {
		var er epochRecord
		if err := json.Unmarshal(body, &er); err != nil {
			return err
		}
		if er.Epoch == "" {
			return fmt.Errorf("plus: epoch record with empty epoch")
		}
		s.epoch = er.Epoch
		// Base only applies at the head of the log (a compacted rewrite);
		// an epoch record appended mid-history never rewinds the counter.
		if s.revision.Load() == 0 && er.Base > 0 {
			s.revision.Store(er.Base)
			s.changesBase = er.Base
		}
		return nil
	}
	c := Change{}
	switch kind {
	case recObject:
		var o Object
		if err := json.Unmarshal(body, &o); err != nil {
			return err
		}
		o = internObject(o)
		if prev, existed := s.objects[o.ID]; existed {
			s.history[o.ID] = append(s.history[o.ID], prev)
		}
		s.objects[o.ID] = o
		c.Kind, c.Object = ChangeObject, o
	case recEdge:
		var e Edge
		if err := json.Unmarshal(body, &e); err != nil {
			return err
		}
		e = internEdge(e)
		s.out[e.From] = append(s.out[e.From], e)
		s.in[e.To] = append(s.in[e.To], e)
		c.Kind, c.Edge = ChangeEdge, e
	case recSurrogate:
		var sp SurrogateSpec
		if err := json.Unmarshal(body, &sp); err != nil {
			return err
		}
		sp = internSurrogate(sp)
		s.surrogates[sp.ForID] = append(s.surrogates[sp.ForID], sp)
		c.Kind, c.Surrogate = ChangeSurrogate, sp
	default:
		return fmt.Errorf("plus: unknown record type %d", kind)
	}
	c.Rev = s.revision.Add(1)
	s.changes = append(s.changes, c)
	s.trimChanges()
	return nil
}

// trimChanges drops the oldest retained changes once the window exceeds
// the horizon by half (slack keeps the copy amortised O(1) per write).
func (s *LogBackend) trimChanges() {
	h := s.changeHorizon
	if h < 0 {
		h = 0
	}
	if len(s.changes) <= h+h/2 {
		return
	}
	drop := len(s.changes) - h
	s.changesBase += uint64(drop)
	s.changes = append(s.changes[:0:0], s.changes[drop:]...)
}

// SetChangeHorizon resizes the resident change window (minimum 0, which
// retains nothing). Shrinking discards the oldest retained changes.
func (s *LogBackend) SetChangeHorizon(n int) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.changeHorizon = n
	if len(s.changes) > n {
		drop := len(s.changes) - n
		s.changesBase += uint64(drop)
		s.changes = append(s.changes[:0:0], s.changes[drop:]...)
	}
}

// ChangeHorizon reports the resident change-window capacity.
func (s *LogBackend) ChangeHorizon() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.changeHorizon
}

// ChangeWindow reports the resident change-feed window; followers use it
// (via /v1/stats and healthz) to compute their lag against the oldest
// position the feed can still serve.
func (s *LogBackend) ChangeWindow() FeedWindow {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return FeedWindow{
		Base:    s.changesBase,
		Depth:   len(s.changes),
		Horizon: s.changeHorizon,
	}
}

// Revision returns a counter that increases with every stored record;
// equal revisions imply identical store contents (within one process).
func (s *LogBackend) Revision() uint64 {
	return s.revision.Load()
}

// Epoch identifies this log's revision numbering; stable across restarts,
// rotated by Compact.
func (s *LogBackend) Epoch() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// ChangesSince returns the records applied after revision since, in
// order. Only the recent window (ChangeHorizon) is resident; a request
// past it fails with ErrTooFarBehind and the caller rebuilds from a
// snapshot.
func (s *LogBackend) ChangesSince(since uint64) ([]Change, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	rev := s.revision.Load()
	if since > rev {
		return nil, errFutureRevision(since, rev)
	}
	if since < s.changesBase {
		return nil, ErrTooFarBehind
	}
	return append([]Change(nil), s.changes[since-s.changesBase:rev-s.changesBase]...), nil
}

// walkChangesSince streams the retained changes with revision in
// (since, upTo] to visit straight out of the resident window, copying
// nothing. The window is a single revision-ordered slice, so unlike
// MemBackend's shard-by-shard walk the visits here are globally ordered.
// See changeWalker for the contract.
func (s *LogBackend) walkChangesSince(since, upTo uint64, visit func(*Change)) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	rev := s.revision.Load()
	if since > rev {
		return errFutureRevision(since, rev)
	}
	if since < s.changesBase {
		return ErrTooFarBehind
	}
	if upTo > rev {
		upTo = rev
	}
	for i := since - s.changesBase; i < upTo-s.changesBase; i++ {
		visit(&s.changes[i])
	}
	return nil
}

// Snapshot returns an immutable view of the store at its current
// revision. The clone is cached: consecutive snapshots with no
// intervening write return the same *Snapshot without taking the store
// lock, so concurrent lineage readers scale with cores instead of
// serializing on mu.
func (s *LogBackend) Snapshot() (*Snapshot, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if sn := s.snap.Load(); sn != nil && sn.rev == s.revision.Load() {
		return sn, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	// Re-check under the lock: another reader may have cloned already.
	rev := s.revision.Load()
	if sn := s.snap.Load(); sn != nil && sn.rev == rev {
		return sn, nil
	}
	sn := cloneIndex(s, rev, s.objects, s.out, s.in, s.surrogates)
	sn.idx = s.idx
	s.snap.Store(sn)
	return sn, nil
}

// IndexStats reports the secondary index's current state.
func (s *LogBackend) IndexStats() IndexStats { return s.idx.stats() }

// Ping reports whether the store is open.
func (s *LogBackend) Ping() error {
	if s.closed.Load() {
		return ErrClosed
	}
	return nil
}

// append writes one record and updates the index via apply.
func (s *LogBackend) append(kind byte, v interface{}) error {
	if s.closed.Load() {
		return ErrClosed
	}
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("plus: encode: %w", err)
	}
	payload := append([]byte{kind}, body...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := s.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("plus: write: %w", err)
	}
	if _, err := s.f.Write(payload); err != nil {
		return fmt.Errorf("plus: write: %w", err)
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("plus: sync: %w", err)
		}
	}
	s.size += int64(8 + len(payload))
	if err := s.apply(kind, body); err != nil {
		return err
	}
	s.broadcast()
	return nil
}

// PutObject stores (or replaces) a provenance object.
func (s *LogBackend) PutObject(o Object) error {
	if err := validateObject(o); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(recObject, o)
}

// PutEdge stores a provenance edge; both endpoints must exist.
func (s *LogBackend) PutEdge(e Edge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[e.From]; !ok {
		return fmt.Errorf("plus: edge %s->%s: %w (from)", e.From, e.To, ErrNotFound)
	}
	if _, ok := s.objects[e.To]; !ok {
		return fmt.Errorf("plus: edge %s->%s: %w (to)", e.From, e.To, ErrNotFound)
	}
	if e.From == e.To {
		return fmt.Errorf("plus: self edge %s rejected", e.From)
	}
	for _, prev := range s.out[e.From] {
		if prev.To == e.To {
			return fmt.Errorf("plus: duplicate edge %s->%s", e.From, e.To)
		}
	}
	return s.append(recEdge, e)
}

// PutSurrogate stores a surrogate version of an object.
func (s *LogBackend) PutSurrogate(sp SurrogateSpec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[sp.ForID]; !ok {
		return fmt.Errorf("plus: surrogate for %s: %w", sp.ForID, ErrNotFound)
	}
	if err := validateSurrogate(sp); err != nil {
		return err
	}
	return s.append(recSurrogate, sp)
}

// GetObject fetches one object by id.
func (s *LogBackend) GetObject(id string) (Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return Object{}, ErrClosed
	}
	o, ok := s.objects[id]
	if !ok {
		return Object{}, fmt.Errorf("plus: %q: %w", id, ErrNotFound)
	}
	return o, nil
}

// NumObjects reports how many objects the store holds.
func (s *LogBackend) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// NumEdges reports how many edges the store holds.
func (s *LogBackend) NumEdges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, es := range s.out {
		n += len(es)
	}
	return n
}

// History returns the superseded versions of an object, oldest first; the
// live version is not included. Because the log is append-only the full
// history replays on open; Compact drops it (only live state is
// rewritten), which callers trade off against space.
func (s *LogBackend) History(id string) []Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Object(nil), s.history[id]...)
}

// Objects returns every object (unspecified order).
func (s *LogBackend) Objects() []Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Object, 0, len(s.objects))
	for _, o := range s.objects {
		out = append(out, o)
	}
	return out
}

// Close flushes and closes the log file.
func (s *LogBackend) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil
	}
	s.closed.Store(true)
	s.snap.Store(nil)
	s.broadcast() // wake parked followers so they observe the close
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("plus: close sync: %w", err)
	}
	return s.f.Close()
}

// Size returns the log size in bytes.
func (s *LogBackend) Size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

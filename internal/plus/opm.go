package plus

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file implements import/export in an Open Provenance Model flavoured
// JSON form. The paper grounds its provenance terminology in OPM (footnote
// 1 cites the OPM core specification); PLUS deployments exchanged lineage
// with other systems in OPM terms: artifacts, processes, and the "used" /
// "wasGeneratedBy" dependencies between them. The mapping onto the store
// is direct: artifacts are Data objects, processes are Invocations,
// used(P, A) is an edge A -> P and wasGeneratedBy(A, P) is an edge P -> A
// (store edges point along dataflow).
//
// Sensitivity annotations (lowest / protect) travel in an "x-plus"
// extension block per entity, so a round trip through OPM preserves the
// release policy; foreign documents without the block import as public.

// OPMDocument is the interchange shape.
type OPMDocument struct {
	Artifacts      []OPMArtifact   `json:"artifacts"`
	Processes      []OPMProcess    `json:"processes"`
	Used           []OPMDependency `json:"used"`
	WasGeneratedBy []OPMDependency `json:"wasGeneratedBy"`
}

// OPMArtifact is an OPM artifact (a Data object).
type OPMArtifact struct {
	ID    string            `json:"id"`
	Value string            `json:"value,omitempty"` // display name
	Notes map[string]string `json:"notes,omitempty"`
	XPlus *OPMXPlus         `json:"x-plus,omitempty"`
}

// OPMProcess is an OPM process (an Invocation).
type OPMProcess struct {
	ID    string            `json:"id"`
	Value string            `json:"value,omitempty"`
	Notes map[string]string `json:"notes,omitempty"`
	XPlus *OPMXPlus         `json:"x-plus,omitempty"`
}

// OPMDependency is one used/wasGeneratedBy arc. For used, Effect is the
// process and Cause the artifact consumed; for wasGeneratedBy, Effect is
// the artifact and Cause the generating process.
type OPMDependency struct {
	Effect string `json:"effect"`
	Cause  string `json:"cause"`
	Role   string `json:"role,omitempty"`
}

// OPMXPlus carries the PLUS sensitivity extension.
type OPMXPlus struct {
	Lowest  string `json:"lowest,omitempty"`
	Protect string `json:"protect,omitempty"`
}

// ExportOPM writes a backend's whole contents as an OPM document. The
// export runs over one immutable snapshot, so a concurrent writer can
// never tear the document.
func ExportOPM(b Backend, w io.Writer) error {
	sn, err := b.Snapshot()
	if err != nil {
		return err
	}
	doc := OPMDocument{
		Artifacts:      []OPMArtifact{},
		Processes:      []OPMProcess{},
		Used:           []OPMDependency{},
		WasGeneratedBy: []OPMDependency{},
	}
	ids := make([]string, 0, len(sn.objects))
	for id := range sn.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	kind := map[string]ObjectKind{}
	for _, id := range ids {
		o := sn.objects[id]
		kind[id] = o.Kind
		var x *OPMXPlus
		if o.Lowest != "" || o.Protect != "" {
			x = &OPMXPlus{Lowest: o.Lowest, Protect: o.Protect}
		}
		if o.Kind == Data {
			doc.Artifacts = append(doc.Artifacts, OPMArtifact{ID: id, Value: o.Name, Notes: o.Features, XPlus: x})
		} else {
			doc.Processes = append(doc.Processes, OPMProcess{ID: id, Value: o.Name, Notes: o.Features, XPlus: x})
		}
	}
	for _, id := range ids {
		for _, e := range sn.Out(id) {
			dep := OPMDependency{Role: e.Label}
			if kind[e.To] == Invocation {
				// artifact -> process: the process used the artifact.
				dep.Effect, dep.Cause = e.To, e.From
				doc.Used = append(doc.Used, dep)
			} else {
				// anything -> artifact (or process -> process, which OPM
				// models as generation of the downstream entity).
				dep.Effect, dep.Cause = e.To, e.From
				doc.WasGeneratedBy = append(doc.WasGeneratedBy, dep)
			}
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ExportOPM writes the whole store as an OPM document.
func (s *LogBackend) ExportOPM(w io.Writer) error { return ExportOPM(s, w) }

// ExportOPM writes the whole backend as an OPM document.
func (m *MemBackend) ExportOPM(w io.Writer) error { return ExportOPM(m, w) }

// ImportOPM reads an OPM document and stores its contents in a backend.
// Entities are inserted before dependencies, so a well-formed document
// always imports; dependencies naming unknown entities are an error. Edge
// direction follows dataflow: used(P, A) becomes A -> P,
// wasGeneratedBy(A, P) becomes P -> A.
func ImportOPM(b Backend, r io.Reader) error {
	var doc OPMDocument
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("plus: opm decode: %w", err)
	}
	for _, a := range doc.Artifacts {
		o := Object{ID: a.ID, Kind: Data, Name: a.Value, Features: a.Notes}
		if a.XPlus != nil {
			o.Lowest, o.Protect = a.XPlus.Lowest, a.XPlus.Protect
		}
		if err := b.PutObject(o); err != nil {
			return err
		}
	}
	for _, p := range doc.Processes {
		o := Object{ID: p.ID, Kind: Invocation, Name: p.Value, Features: p.Notes}
		if p.XPlus != nil {
			o.Lowest, o.Protect = p.XPlus.Lowest, p.XPlus.Protect
		}
		if err := b.PutObject(o); err != nil {
			return err
		}
	}
	for _, d := range doc.Used {
		if err := b.PutEdge(Edge{From: d.Cause, To: d.Effect, Label: roleOr(d.Role, "used")}); err != nil {
			return err
		}
	}
	for _, d := range doc.WasGeneratedBy {
		if err := b.PutEdge(Edge{From: d.Cause, To: d.Effect, Label: roleOr(d.Role, "wasGeneratedBy")}); err != nil {
			return err
		}
	}
	return nil
}

func roleOr(role, fallback string) string {
	if role != "" {
		return role
	}
	return fallback
}

// ImportOPM reads an OPM document into the store.
func (s *LogBackend) ImportOPM(r io.Reader) error { return ImportOPM(s, r) }

// ImportOPM reads an OPM document into the backend.
func (m *MemBackend) ImportOPM(r io.Reader) error { return ImportOPM(m, r) }

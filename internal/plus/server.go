package plus

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/intern"
	"repro/internal/privilege"
)

// lineageAnswerer lets the server run against either a plain Engine or a
// CachedEngine; handlers always pass the request context so cancellation
// propagates into the closure walk.
type lineageAnswerer interface {
	LineageContext(context.Context, Request) (*Result, error)
}

// Server exposes a store and its query engine over HTTP with a small JSON
// API:
//
//	POST /v1/objects            store an Object
//	POST /v1/edges              store an Edge
//	POST /v1/surrogates         store a SurrogateSpec
//	GET  /v1/objects/{id}       fetch an Object
//	GET  /v1/lineage            lineage query (see LineageResponse)
//	GET  /v1/stats              store statistics
//	GET  /v1/healthz            readiness probe (store open, counts, revision)
//	GET  /v1/opm                export the store as an OPM document
//	POST /v1/opm                import an OPM document
//
// Lineage query parameters: start (required), direction
// (ancestors|descendants|both, default ancestors), depth (int, default 0 =
// unbounded), viewer (predicate nickname, default Public), mode
// (hide|surrogate, default surrogate), label (edge-label filter), kind
// (data|invocation traversal filter).
//
// The server also mounts the v2 surface (see v2.go): principal-scoped
// requests, POST /v2/batch, the durable-cursor change feed GET /v2/changes
// with its GET /v2/snapshot resync payload, POST /v2/sessions (stateless
// signed tokens), POST /v2/compact, GET /v2/lineage and
// GET /v2/objects/{id}. /v1 stays for compatibility, gated by the same
// capability model and answering with Deprecation/Sunset headers
// (auth.go documents the trust surface).
type Server struct {
	engine   *Engine
	answerer lineageAnswerer
	mux      *http.ServeMux
	auth     AuthConfig

	// keyring is the live token keyring, swapped atomically so plusd's
	// SIGHUP reload rotates keys with zero downtime: requests in flight
	// keep the ring they resolved, new requests see the new one.
	keyring atomic.Pointer[Keyring]

	// obs is the telemetry bundle (WithObservability); never nil after
	// newServer, with every sink disabled by default.
	obs *Observability

	// queryStats, when set (SetQueryStats), surfaces the PLUSQL view-cache
	// counters in the healthz payload without this package importing the
	// query subsystem.
	queryStats func() QueryCacheHealth

	// readOnly is the follower-mode write policy (WithReadOnly): refuse
	// or proxy mutations so only the replication loop writes the store.
	readOnly readOnly

	// replicaHealth, when set (WithReplicaHealth), supplies the healthz
	// replication block without this package importing internal/replica.
	replicaHealth func() *ReplicaHealth
}

// ServerOption configures NewServer/NewCachedServer.
type ServerOption func(*Server)

// WithAuth installs the server's trust configuration: the token keyring,
// whether authentication is required, the anonymous read-only escape
// hatch, and session lifetimes. Without it the server runs in the legacy
// open mode (AuthConfig zero value).
func WithAuth(cfg AuthConfig) ServerOption {
	return func(s *Server) { s.auth = cfg }
}

// NewServer wires the HTTP handlers around an engine.
func NewServer(engine *Engine, opts ...ServerOption) *Server {
	return newServer(engine, engine, opts...)
}

// NewCachedServer wires the handlers around a cache-fronted engine;
// lineage answers are memoised until the store changes.
func NewCachedServer(engine *CachedEngine, opts ...ServerOption) *Server {
	return newServer(engine.Engine, engine, opts...)
}

func newServer(engine *Engine, answerer lineageAnswerer, opts ...ServerOption) *Server {
	s := &Server{engine: engine, answerer: answerer, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	s.auth = s.auth.normalize()
	s.keyring.Store(s.auth.Keyring)
	if s.obs == nil {
		s.obs = NewObservability(nil, nil, nil)
	}
	if s.obs.Registry() != nil || s.obs.SlowQueryLog() != nil {
		s.engine.SetObservability(s.obs)
	}
	s.registerServerMetrics()
	s.Handle("/v1/objects", http.HandlerFunc(s.handleObjects))
	s.Handle("/v1/objects/", http.HandlerFunc(s.handleObjectByID))
	s.Handle("/v1/edges", http.HandlerFunc(s.handleEdges))
	s.Handle("/v1/surrogates", http.HandlerFunc(s.handleSurrogates))
	s.Handle("/v1/lineage", http.HandlerFunc(s.handleLineage))
	s.Handle("/v1/stats", http.HandlerFunc(s.handleStats))
	s.Handle("/v1/healthz", http.HandlerFunc(s.handleHealthz))
	s.Handle("/v1/opm", http.HandlerFunc(s.handleOPM))
	s.Handle("/v2/sessions", http.HandlerFunc(s.handleV2Sessions))
	s.Handle("/v2/batch", http.HandlerFunc(s.handleV2Batch))
	s.Handle("/v2/changes", http.HandlerFunc(s.handleV2Changes))
	s.Handle("/v2/snapshot", http.HandlerFunc(s.handleV2Snapshot))
	s.Handle("/v2/lineage", http.HandlerFunc(s.handleV2Lineage))
	s.Handle("/v2/objects/", http.HandlerFunc(s.handleV2ObjectByID))
	s.Handle("/v2/compact", http.HandlerFunc(s.handleV2Compact))
	s.Handle("/v2/metrics", http.HandlerFunc(s.handleV2Metrics))
	s.Handle("/v2/slowlog", http.HandlerFunc(s.handleV2Slowlog))
	return s
}

// ServeHTTP implements http.Handler through the observability middleware:
// every request gets a trace ID, route metrics and (when configured) a
// structured log line on its way into the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.serveObserved(w, r) }

// Keyring returns the live token keyring.
func (s *Server) Keyring() *Keyring { return s.keyring.Load() }

// SetKeyring atomically replaces the live token keyring; nil is ignored.
func (s *Server) SetKeyring(kr *Keyring) {
	if kr != nil {
		s.keyring.Store(kr)
	}
}

// ReloadKeyringFromFile re-reads an "id:secret"-per-line keyring file and
// swaps it in without restarting — plusd's SIGHUP handler. A parse
// failure leaves the current keyring serving and is reported (and
// counted) rather than applied.
func (s *Server) ReloadKeyringFromFile(path string) error {
	kr, err := LoadKeyring(path)
	if err != nil {
		s.obs.keyringLoads.With("error").Inc()
		return err
	}
	s.keyring.Store(kr)
	s.obs.keyringLoads.With("ok").Inc()
	return nil
}

// The v1 deprecation policy, announced in the README and carried on the
// wire (RFC 9745 Deprecation + RFC 8594 Sunset headers) so clients can
// detect the deprecated surface mechanically. /v1/healthz is exempt: it
// is the shared readiness probe, not part of the deprecated surface.
var (
	v1DeprecatedAt = time.Date(2026, time.August, 1, 0, 0, 0, 0, time.UTC)
	v1SunsetAt     = time.Date(2027, time.August, 1, 0, 0, 0, 0, time.UTC)
)

// deprecateV1 stamps every /v1 response with the deprecation headers.
func deprecateV1(h http.Handler) http.Handler {
	deprecation := fmt.Sprintf("@%d", v1DeprecatedAt.Unix())
	sunset := v1SunsetAt.Format(http.TimeFormat)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", deprecation)
		w.Header().Set("Sunset", sunset)
		h.ServeHTTP(w, r)
	})
}

// Handle registers an additional route on the server's mux, letting
// higher layers (e.g. the PLUSQL query subsystem) extend the API without
// this package importing them. Routes under /v1/ (except the healthz
// probe) automatically carry the Deprecation/Sunset headers.
func (s *Server) Handle(pattern string, h http.Handler) {
	if strings.HasPrefix(pattern, "/v1/") && pattern != "/v1/healthz" {
		h = deprecateV1(h)
	}
	s.mux.Handle(pattern, h)
}

// SetQueryStats registers the provider of the query-subsystem view-cache
// counters rendered in healthz (plusql.Attach wires it).
func (s *Server) SetQueryStats(fn func() QueryCacheHealth) { s.queryStats = fn }

// MethodNotAllowed writes the API's standard JSON method-not-allowed
// response with an Allow header listing the admissible methods.
func MethodNotAllowed(w http.ResponseWriter, allowed ...string) {
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "method not allowed"})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	default:
		// Validation failures from the store/engine are client errors.
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// maxBodyBytes bounds mutation request bodies; provenance records are
// small, so anything near a megabyte is malformed or hostile.
const maxBodyBytes = 1 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) error {
	return DecodeJSONBody(w, r, maxBodyBytes, v)
}

// DecodeJSONBody decodes a JSON request body under the API's shared
// conventions: a hard size cap and unknown fields rejected. Extension
// handlers (e.g. PLUSQL's /v1/query) use it so request parsing stays
// uniform across every endpoint.
func DecodeJSONBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("plus: bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		MethodNotAllowed(w, http.MethodPost)
		return
	}
	if s.gateWrite(w, r) {
		return
	}
	if _, apiErr := s.Authorize(r, CapIngest); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	var o Object
	if err := decodeBody(w, r, &o); err != nil {
		writeError(w, err)
		return
	}
	if err := s.engine.store.PutObject(o); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, o)
}

func (s *Server) handleObjectByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		MethodNotAllowed(w, http.MethodGet)
		return
	}
	p, apiErr := s.Authorize(r, CapQuery)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/objects/")
	o, err := s.engine.store.GetObject(id)
	if err != nil {
		writeError(w, err)
		return
	}
	// Historically v1 served raw records and left protection to the
	// lineage layer. That stays true for the legacy open/anonymous
	// surfaces, but a scoped token means the caller opted into the
	// capability model: query = protected reads only, so the v2 dominance
	// check applies here too.
	if p.Token != nil && o.Lowest != "" && !s.engine.lattice.Dominates(p.Viewer, privilege.Predicate(o.Lowest)) {
		WriteAPIError(w, v2Errorf(http.StatusForbidden, CodeForbidden,
			"plus: object %q requires privilege %q", id, o.Lowest))
		return
	}
	writeJSON(w, http.StatusOK, o)
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		MethodNotAllowed(w, http.MethodPost)
		return
	}
	if s.gateWrite(w, r) {
		return
	}
	if _, apiErr := s.Authorize(r, CapIngest); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	var e Edge
	if err := decodeBody(w, r, &e); err != nil {
		writeError(w, err)
		return
	}
	if err := s.engine.store.PutEdge(e); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, e)
}

func (s *Server) handleSurrogates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		MethodNotAllowed(w, http.MethodPost)
		return
	}
	if s.gateWrite(w, r) {
		return
	}
	if _, apiErr := s.Authorize(r, CapIngest); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	var sp SurrogateSpec
	if err := decodeBody(w, r, &sp); err != nil {
		writeError(w, err)
		return
	}
	if err := s.engine.store.PutSurrogate(sp); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sp)
}

// LineageNode is one node of a lineage answer.
type LineageNode struct {
	ID        string            `json:"id"`
	Features  map[string]string `json:"features,omitempty"`
	Surrogate bool              `json:"surrogate,omitempty"`
}

// LineageEdge is one edge of a lineage answer.
type LineageEdge struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Label     string `json:"label,omitempty"`
	Surrogate bool   `json:"surrogate,omitempty"`
}

// LineageTiming reports the Figure 10 decomposition in microseconds.
type LineageTiming struct {
	DBAccessUS int64 `json:"dbAccessUs"`
	BuildUS    int64 `json:"buildUs"`
	ProtectUS  int64 `json:"protectUs"`
	TotalUS    int64 `json:"totalUs"`
}

// LineageResponse is the JSON answer to a lineage query.
type LineageResponse struct {
	Start string `json:"start"`
	// StartName echoes a name-seeded (multi-seed) request.
	StartName   string        `json:"startName,omitempty"`
	Viewer      string        `json:"viewer"`
	Mode        string        `json:"mode"`
	Nodes       []LineageNode `json:"nodes"`
	Edges       []LineageEdge `json:"edges"`
	PathUtility float64       `json:"pathUtility"`
	NodeUtility float64       `json:"nodeUtility"`
	Timing      LineageTiming `json:"timing"`
}

func parseDirection(s string) (graph.Direction, error) {
	switch s {
	case "", "ancestors":
		return graph.Backward, nil
	case "descendants":
		return graph.Forward, nil
	case "both":
		return graph.Undirected, nil
	default:
		return 0, fmt.Errorf("plus: unknown direction %q", s)
	}
}

func (s *Server) handleLineage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		MethodNotAllowed(w, http.MethodGet)
		return
	}
	q := r.URL.Query()
	asserted := privilege.Predicate(q.Get("viewer"))
	// v1 carries a client-asserted viewer; under required auth the token
	// must hold the query capability and dominate the asserted viewer.
	if apiErr := s.AuthorizeAsserted(r, CapQuery, asserted); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	req, err := parseLineageParams(q)
	if err != nil {
		writeError(w, err)
		return
	}
	req.Viewer = asserted
	if req.Viewer != "" && !s.engine.lattice.Known(req.Viewer) {
		// The engine rejects the request below; the warning gives operators
		// a trail for clients sending viewers the lattice never declared
		// (v2 additionally answers these with a structured 400).
		log.Printf("plus: /v1/lineage: unknown viewer predicate %q from %s", req.Viewer, r.RemoteAddr)
	}
	res, err := s.answerer.LineageContext(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	// v1 echoes the viewer exactly as the query string spelled it (empty
	// when absent), preserved for compatibility.
	writeJSON(w, http.StatusOK, buildLineageResponse(req, res))
}

// handleOPM exports the store as an OPM document (GET) or imports one
// (POST).
func (s *Server) handleOPM(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		// The export carries raw records — the replication capability.
		if _, apiErr := s.Authorize(r, CapReplicate); apiErr != nil {
			WriteAPIError(w, apiErr)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := ExportOPM(s.engine.store, w); err != nil {
			// Headers may already be out; best effort.
			writeError(w, err)
		}
	case http.MethodPost:
		if s.gateWrite(w, r) {
			return
		}
		if _, apiErr := s.Authorize(r, CapIngest); apiErr != nil {
			WriteAPIError(w, apiErr)
			return
		}
		// OPM documents can be large but not unbounded; allow 64 MiB.
		if err := ImportOPM(s.engine.store, http.MaxBytesReader(w, r.Body, 64<<20)); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "imported"})
	default:
		MethodNotAllowed(w, http.MethodGet, http.MethodPost)
	}
}

// ChangeFeedHealth reports the change feed's retention state: the
// backend epoch and revision a cursor must match, and the resident
// window (base/depth/horizon). A follower holding cursor rev r computes
// its lag as Revision-r and knows it must resync once r < Base.
type ChangeFeedHealth struct {
	Epoch    string `json:"epoch"`
	Revision uint64 `json:"revision"`
	// Base is the oldest change-feed position the backend can still
	// serve; Depth is the resident change count; Horizon the configured
	// retention capacity.
	Base    uint64 `json:"base"`
	Depth   int    `json:"depth"`
	Horizon int    `json:"horizon"`
}

// changeFeedHealth assembles the block (nil when the backend exposes no
// window introspection).
func (s *Server) changeFeedHealth() *ChangeFeedHealth {
	b := s.engine.store
	w, ok := backendChangeWindow(b)
	if !ok {
		return nil
	}
	return &ChangeFeedHealth{
		Epoch:    b.Epoch(),
		Revision: b.Revision(),
		Base:     w.Base,
		Depth:    w.Depth,
		Horizon:  w.Horizon,
	}
}

// StatsResponse summarises the store.
type StatsResponse struct {
	Objects   int   `json:"objects"`
	Edges     int   `json:"edges"`
	LogBytes  int64 `json:"logBytes"`
	UptimeSec int64 `json:"uptimeSec"`
	// ChangeFeed reports feed retention so followers can compute lag;
	// absent when the backend has no window introspection.
	ChangeFeed *ChangeFeedHealth `json:"changeFeed,omitempty"`
}

var serverStart = time.Now()

// QueryCacheHealth mirrors the PLUSQL view-cache counters
// (plusql.ViewCacheStats) in the healthz payload; it lives here so the
// probe response stays typed without an import cycle.
type QueryCacheHealth struct {
	Views           int    `json:"views"`
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Advanced        uint64 `json:"advanced"`
	AdvanceRebuilds uint64 `json:"advanceRebuilds"`
	FullBuilds      uint64 `json:"fullBuilds"`
	Fallbacks       uint64 `json:"fallbacks"`
}

// InternHealth reports the global string-intern table: how many distinct
// strings the store's kinds, names and features collapsed into, and the
// bytes they occupy.
type InternHealth struct {
	Strings int   `json:"strings"`
	Bytes   int64 `json:"bytes"`
}

// HealthzResponse is the readiness-probe answer: whether the backend is
// open plus the live counts, revision and cache/delta activity a
// deployment can alert on.
type HealthzResponse struct {
	Status   string `json:"status"` // "ok" or "unavailable"
	Objects  int    `json:"objects"`
	Edges    int    `json:"edges"`
	Revision uint64 `json:"revision"`
	// Index reports the storage secondary indexes (present when the
	// backend maintains them).
	Index *IndexStats `json:"index,omitempty"`
	// Intern reports the global string-intern table.
	Intern *InternHealth `json:"intern,omitempty"`
	// LineageCache reports the delta-scoped lineage answer cache (present
	// when the server fronts a CachedEngine).
	LineageCache *LineageCacheStats `json:"lineageCache,omitempty"`
	// QueryCache reports the PLUSQL protected-view cache (present when
	// the query subsystem is attached).
	QueryCache *QueryCacheHealth `json:"queryCache,omitempty"`
	// ChangeFeed reports feed retention state (epoch, revision, resident
	// window) so followers can compute lag without guessing.
	ChangeFeed *ChangeFeedHealth `json:"changeFeed,omitempty"`
	// Replica reports replication state (present only on followers).
	Replica *ReplicaHealth `json:"replica,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		MethodNotAllowed(w, http.MethodGet)
		return
	}
	b := s.engine.store
	if err := b.Ping(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, HealthzResponse{
			Status:   "unavailable",
			Revision: b.Revision(),
		})
		return
	}
	resp := HealthzResponse{
		Status:   "ok",
		Objects:  b.NumObjects(),
		Edges:    b.NumEdges(),
		Revision: b.Revision(),
	}
	if ip, ok := unwrapBackend(b).(indexStatsProvider); ok {
		st := ip.IndexStats()
		resp.Index = &st
	}
	resp.Intern = &InternHealth{Strings: intern.Count(), Bytes: intern.Bytes()}
	if ce, ok := s.answerer.(*CachedEngine); ok {
		st := ce.Stats()
		resp.LineageCache = &st
	}
	if s.queryStats != nil {
		st := s.queryStats()
		resp.QueryCache = &st
	}
	resp.ChangeFeed = s.changeFeedHealth()
	if s.replicaHealth != nil {
		resp.Replica = s.replicaHealth()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		MethodNotAllowed(w, http.MethodGet)
		return
	}
	if _, apiErr := s.Authorize(r, CapAdmin); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Objects:    s.engine.store.NumObjects(),
		Edges:      s.engine.store.NumEdges(),
		LogBytes:   s.engine.store.Size(),
		UptimeSec:  int64(time.Since(serverStart).Seconds()),
		ChangeFeed: s.changeFeedHealth(),
	})
}

package plus_test

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/plus"
	"repro/internal/workload"
)

// TestIndexMaintenanceOverheadGuard bounds what keeping the secondary
// indexes fresh costs on a write-heavy mix: batches are ingested and the
// index is forced to catch up (an indexed probe after every batch, so
// an advance covers at most a few batches' deltas). The cumulative
// advance time must stay under 10% of the cumulative ingest time —
// maintenance rides the change feed, it must never rival the write path.
//
// The ingest path itself never touches the index (maintenance is lazy,
// amortised onto query probes), so this guard measures the advances
// directly instead of comparing two ingest runs.
func TestIndexMaintenanceOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under -race")
	}
	// Ingest goes through the durable log store — the backend a deployed
	// server opens — so the bound relates index upkeep to what a batch
	// write actually costs end to end (encode, checksum, log append,
	// in-memory apply).
	const nodes = 20_000
	b, err := plus.Open(filepath.Join(t.TempDir(), "plus.log"), plus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })

	var ingest, maintain time.Duration
	probes := 0
	err = workload.GenerateLarge(workload.LargeConfig{Nodes: nodes, Seed: 3, BatchSize: 256},
		func(batch plus.Batch) error {
			start := time.Now()
			if _, err := b.Apply(batch); err != nil {
				return err
			}
			ingest += time.Since(start)

			sn, err := b.Snapshot()
			if err != nil {
				return err
			}
			start = time.Now()
			// The probe advances the index by exactly this batch's delta
			// (or builds it, on the first probe).
			sn.FindByName(workload.LargeName(0))
			maintain += time.Since(start)
			probes++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	sn, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := sn.FindByName(workload.LargeName(0)); len(got) == 0 {
		t.Fatalf("no %q objects indexed after ingest", workload.LargeName(0))
	}
	// The upkeep must have been incremental: one initial build, the rest
	// advances, never a hazard rebuild. (Early probes may short-circuit
	// without advancing — until the probed name is first stored, the
	// intern table proves there is nothing to find — so the exact advance
	// count varies with where the name first appears in the stream.)
	st := b.IndexStats()
	if st.Builds != 1 || st.Rebuilds != 0 || st.Advances < 1 {
		t.Fatalf("index stats = %+v, want exactly 1 build, no rebuilds and incremental advances", st)
	}
	ratio := float64(maintain) / float64(ingest)
	t.Logf("ingest %v, index maintenance %v over %d batches (%.1f%%)",
		ingest, maintain, probes, 100*ratio)
	if ratio >= 0.10 {
		t.Errorf("index maintenance costs %.1f%% of ingest, want < 10%%", 100*ratio)
	}
}

package plus

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/privilege"
)

// This file is the single server-side authorization middleware of the
// API. Every handler resolves its caller through Server.Authorize with
// the capability the endpoint needs; there is deliberately exactly one
// resolution path, so a missing token, a bad signature, an expired
// token, a viewer conflict and a missing capability fail identically on
// every endpoint — structured {error, code} bodies, never a silent
// Public fallback.
//
// Three server modes, selected by AuthConfig:
//
//   - Open (default, no keyring configured): back-compat. Principals
//     are validated but client-asserted (X-Plus-Viewer), every caller
//     holds every capability, and POST /v2/sessions signs tokens with
//     an ephemeral per-process key — the stateless replacement for the
//     old in-memory session table, with identical process-bound
//     lifetime.
//   - Authenticated (Require): every request needs a token signed by
//     the configured keyring. Missing/invalid tokens are 401; a valid
//     token without the endpoint's capability is 403.
//   - Authenticated + AnonymousRead: as above, but tokenless requests
//     keep the legacy read-only surface — the query capability with a
//     client-asserted (validated) viewer. Writes, replication and admin
//     still demand tokens.

// AuthConfig configures the server's trust surface.
type AuthConfig struct {
	// Keyring verifies and signs session tokens. Nil means an ephemeral
	// per-process key (open mode's session signer).
	Keyring *Keyring
	// Require rejects requests that do not carry a valid token (401).
	Require bool
	// AnonymousRead, with Require, lets tokenless requests keep the
	// legacy read-only surface: query endpoints with a client-asserted
	// validated viewer. Ingest, replication and admin still need tokens.
	// CAUTION: "client-asserted" means exactly what it meant in open
	// mode — an anonymous caller may assert ANY lattice-known viewer and
	// read at that privilege. The flag exists to migrate deployments
	// whose readers live inside the legacy trust boundary; it is not an
	// access-control mode for reads.
	AnonymousRead bool
	// DefaultTTL is the session lifetime POST /v2/sessions grants when
	// the request names none (default 1h).
	DefaultTTL time.Duration
	// MaxTTL caps requested session lifetimes (default 24h).
	MaxTTL time.Duration
}

// Auth config defaults.
const (
	DefaultSessionTTL = time.Hour
	DefaultMaxTTL     = 24 * time.Hour
)

// normalize fills config defaults; the keyring falls back to an
// ephemeral per-process key.
func (c AuthConfig) normalize() AuthConfig {
	if c.Keyring == nil {
		c.Keyring = ephemeralKeyring()
	}
	if c.DefaultTTL <= 0 {
		c.DefaultTTL = DefaultSessionTTL
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = DefaultMaxTTL
	}
	if c.DefaultTTL > c.MaxTTL {
		c.DefaultTTL = c.MaxTTL
	}
	return c
}

// Principal is the resolved identity of one request: who is asking and
// what they may do.
type Principal struct {
	// Viewer is the privilege-predicate answers are protected for.
	Viewer privilege.Predicate
	// Capabilities is what the caller may do.
	Capabilities []Capability
	// Token holds the verified claims when the caller authenticated
	// with a signed token; nil for open-mode and anonymous-read
	// principals (client-asserted, validated only).
	Token *Claims
}

// Can reports whether the principal holds capability cap.
func (p Principal) Can(cap Capability) bool { return capsHave(p.Capabilities, cap) }

// Authorize resolves the request principal and requires capability
// need. It is the only authorization path of the API:
//
//   - An X-Plus-Session token is verified against the keyring
//     (constant-time): expired is 401 token_expired, unknown key id or
//     bad signature 401 bad_token, a viewer the lattice does not know
//     403, an X-Plus-Viewer header contradicting the token 400.
//   - Without a token: 401 unauthorized when auth is required (unless
//     AnonymousRead covers a query-capability request); otherwise the
//     legacy open-mode principal — validated X-Plus-Viewer header or
//     Public, holding every capability.
//   - A resolved principal missing need is 403 forbidden.
func (s *Server) Authorize(r *http.Request, need Capability) (Principal, *APIError) {
	p, apiErr := s.principal(r)
	if apiErr != nil {
		s.obs.authz.With(string(need), "unauthorized").Inc()
		return Principal{}, apiErr
	}
	if !p.Can(need) {
		s.obs.authz.With(string(need), "forbidden").Inc()
		if s.auth.Require && p.Token == nil {
			// An anonymous-read principal outside its read-only surface:
			// the fix is to authenticate, so answer 401, not 403.
			return Principal{}, v2Errorf(http.StatusUnauthorized, CodeUnauthorized,
				"plus: the %q capability requires an authenticated session token", need)
		}
		return Principal{}, v2Errorf(http.StatusForbidden, CodeForbidden,
			"plus: principal %q lacks the %q capability", p.Viewer, need)
	}
	s.obs.authz.With(string(need), "ok").Inc()
	return p, nil
}

// AuthorizeAsserted is Authorize for the v1 endpoints that still carry a
// client-asserted viewer (query parameter or request body): the caller
// must hold need, and — when authenticated — may only assert viewers its
// token's viewer dominates. It returns nil when the asserted viewer may
// be served.
func (s *Server) AuthorizeAsserted(r *http.Request, need Capability, asserted privilege.Predicate) *APIError {
	p, apiErr := s.Authorize(r, need)
	if apiErr != nil {
		return apiErr
	}
	if asserted != "" && p.Token != nil && asserted != p.Viewer &&
		!s.engine.lattice.Dominates(p.Viewer, asserted) {
		return v2Errorf(http.StatusForbidden, CodeForbidden,
			"plus: asserted viewer %q exceeds the token's viewer %q", asserted, p.Viewer)
	}
	return nil
}

// principal resolves who is asking, before any capability check.
func (s *Server) principal(r *http.Request) (Principal, *APIError) {
	token := r.Header.Get(HeaderSession)
	header := privilege.Predicate(r.Header.Get(HeaderViewer))
	if token != "" {
		claims, err := s.Keyring().Verify(token, time.Now())
		if err != nil {
			outcome := "bad"
			if errors.Is(err, ErrTokenExpired) {
				outcome = "expired"
			}
			s.obs.tokenVerify.With(outcome).Inc()
			return Principal{}, tokenError(err)
		}
		s.obs.tokenVerify.With("ok").Inc()
		viewer := privilege.Predicate(claims.Viewer)
		if header != "" && header != viewer {
			return Principal{}, v2Errorf(http.StatusBadRequest, CodeViewerConflict,
				"plus: %s %q contradicts the token's viewer %q", HeaderViewer, header, viewer)
		}
		if !s.engine.lattice.Known(viewer) {
			// A well-signed token for a predicate this node's lattice never
			// declared: the credential is real but grants nothing here.
			return Principal{}, v2Errorf(http.StatusForbidden, CodeForbidden,
				"plus: token viewer %q is not in this server's lattice", viewer)
		}
		return Principal{Viewer: viewer, Capabilities: claims.Capabilities, Token: &claims}, nil
	}
	if s.auth.Require && !s.auth.AnonymousRead {
		return Principal{}, v2Errorf(http.StatusUnauthorized, CodeUnauthorized,
			"plus: missing session token (mint one with POST /v2/sessions or plusctl session mint)")
	}
	viewer := privilege.Public
	if header != "" {
		if !s.engine.lattice.Known(header) {
			return Principal{}, v2Errorf(http.StatusBadRequest, CodeUnknownViewer,
				"plus: unknown viewer predicate %q", header)
		}
		viewer = header
	}
	if s.auth.Require {
		// AnonymousRead: the legacy client-asserted surface, read-only.
		return Principal{Viewer: viewer, Capabilities: []Capability{CapQuery}}, nil
	}
	// Open mode: back-compat, every capability.
	return Principal{Viewer: viewer, Capabilities: AllCapabilities()}, nil
}

// tokenError maps a keyring verification failure onto its 401.
func tokenError(err error) *APIError {
	code := CodeBadToken
	if errors.Is(err, ErrTokenExpired) {
		code = CodeTokenExpired
	}
	return v2Errorf(http.StatusUnauthorized, code, "%s", err)
}

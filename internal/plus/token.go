package plus

import (
	"bufio"
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// This file is the stateless session-token layer of the v2 trust surface.
// A token is a signed statement — "the holder acts as viewer V with
// capabilities C until T" — that any server sharing the keyring can
// verify without shared session state: principal, capability set, expiry
// and signing-key id travel inside the token, and the HMAC-SHA256
// signature proves a keyring holder minted it. That makes request
// authentication shared-nothing: a fleet of plusd nodes behind a load
// balancer accepts each other's tokens with no session replication, and
// a server restart invalidates nothing (the keyring, not process memory,
// is the root of trust).
//
// Key rotation is first-class: a keyring holds several keys, the first
// is the signing (active) key, and verification accepts any listed key
// by its id. Rotating means prepending a new key while keeping the old
// one listed until every token signed with it has expired, then dropping
// it — at which point those tokens stop verifying.

// Capability names one operation class a token is allowed to perform.
// The capability model splits the surface into provider and consumer
// roles: an organisation's ingest pipeline holds "ingest", a replica
// holds "replicate", an analyst's tool holds "query", an operator holds
// "admin" — none of them needs the others' powers.
type Capability string

const (
	// CapIngest authorises writes: POST /v2/batch, the v1 mutation
	// endpoints and OPM import.
	CapIngest Capability = "ingest"
	// CapReplicate authorises raw-record reads: GET /v2/changes,
	// GET /v2/snapshot and OPM export — the replication surface, which
	// bypasses protection because a replica must hold the full graph.
	CapReplicate Capability = "replicate"
	// CapQuery authorises protected reads: lineage, PLUSQL and point
	// fetches, always scoped to the token's viewer.
	CapQuery Capability = "query"
	// CapAdmin authorises operational endpoints: compaction and stats.
	CapAdmin Capability = "admin"
)

// AllCapabilities returns every defined capability, sorted.
func AllCapabilities() []Capability {
	return []Capability{CapAdmin, CapIngest, CapQuery, CapReplicate}
}

// ParseCapabilities validates, dedupes and sorts a wire capability list.
func ParseCapabilities(names []string) ([]Capability, error) {
	seen := map[Capability]bool{}
	for _, n := range names {
		c := Capability(strings.TrimSpace(n))
		switch c {
		case CapIngest, CapReplicate, CapQuery, CapAdmin:
			seen[c] = true
		case "":
			// Ignore empty entries (trailing commas in CLI lists).
		default:
			return nil, fmt.Errorf("plus: unknown capability %q", n)
		}
	}
	out := make([]Capability, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// capsHave reports whether caps contains c.
func capsHave(caps []Capability, c Capability) bool {
	for _, have := range caps {
		if have == c {
			return true
		}
	}
	return false
}

// capsSubset reports whether every capability in want is present in have.
func capsSubset(want, have []Capability) bool {
	for _, c := range want {
		if !capsHave(have, c) {
			return false
		}
	}
	return true
}

// capStrings renders a capability list for wire payloads.
func capStrings(caps []Capability) []string {
	out := make([]string, len(caps))
	for i, c := range caps {
		out[i] = string(c)
	}
	return out
}

// minSecretLen is the smallest accepted HMAC key: anything shorter is
// guessable enough to defeat the point of signing.
const minSecretLen = 16

// Key is one keyring entry: an operator-chosen id (it travels in every
// token, so keep it short) and the HMAC secret.
type Key struct {
	ID     string
	Secret []byte
}

// Keyring is an ordered set of signing keys. The first key signs new
// tokens; every listed key verifies, which is what makes rotation
// gapless: prepend the new key, keep the old until its tokens expire,
// then drop it.
type Keyring struct {
	keys []Key
	byID map[string][]byte
}

// NewKeyring builds a keyring from keys, first key active.
func NewKeyring(keys ...Key) (*Keyring, error) {
	if len(keys) == 0 {
		return nil, errors.New("plus: keyring needs at least one key")
	}
	kr := &Keyring{byID: make(map[string][]byte, len(keys))}
	for _, k := range keys {
		if k.ID == "" || strings.ContainsAny(k.ID, ": \t\n") {
			return nil, fmt.Errorf("plus: bad key id %q (no colons or whitespace)", k.ID)
		}
		if len(k.Secret) < minSecretLen {
			return nil, fmt.Errorf("plus: key %q secret is %d bytes, need >= %d", k.ID, len(k.Secret), minSecretLen)
		}
		if _, dup := kr.byID[k.ID]; dup {
			return nil, fmt.Errorf("plus: duplicate key id %q", k.ID)
		}
		kr.keys = append(kr.keys, Key{ID: k.ID, Secret: append([]byte(nil), k.Secret...)})
		kr.byID[k.ID] = kr.keys[len(kr.keys)-1].Secret
	}
	return kr, nil
}

// ParseKeyring reads the keyring file format: one "id:secret" pair per
// line, first entry the active signing key; blank lines and #-comments
// are skipped. Secrets are opaque strings (>= 16 bytes); generate them
// with e.g. `openssl rand -hex 32`.
func ParseKeyring(data []byte) (*Keyring, error) {
	var keys []Key
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		id, secret, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("plus: keyring line %d: want id:secret", line)
		}
		keys = append(keys, Key{ID: strings.TrimSpace(id), Secret: []byte(strings.TrimSpace(secret))})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("plus: keyring: %w", err)
	}
	if len(keys) == 0 {
		return nil, errors.New("plus: keyring file holds no keys")
	}
	return NewKeyring(keys...)
}

// LoadKeyring reads a keyring file (see ParseKeyring for the format).
func LoadKeyring(path string) (*Keyring, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("plus: keyring: %w", err)
	}
	kr, err := ParseKeyring(data)
	if err != nil {
		return nil, fmt.Errorf("plus: keyring %s: %w", path, err)
	}
	return kr, nil
}

// ephemeralKeyring mints a single-key keyring with a random secret. A
// server with no configured keyring signs its sessions with one: tokens
// then die with the process, which is exactly the lifetime the old
// in-memory session table gave them, through the same code path the
// durable keyring uses.
func ephemeralKeyring() *Keyring {
	var secret [32]byte
	if _, err := rand.Read(secret[:]); err != nil {
		panic(fmt.Sprintf("plus: keyring entropy unavailable: %v", err))
	}
	var id [4]byte
	if _, err := rand.Read(id[:]); err != nil {
		panic(fmt.Sprintf("plus: keyring entropy unavailable: %v", err))
	}
	kr, err := NewKeyring(Key{ID: "eph-" + hex.EncodeToString(id[:]), Secret: secret[:]})
	if err != nil {
		panic(err) // unreachable: the key is well-formed by construction
	}
	return kr
}

// Active returns the signing key's id.
func (kr *Keyring) Active() string { return kr.keys[0].ID }

// KeyIDs lists every verifying key id, active first.
func (kr *Keyring) KeyIDs() []string {
	out := make([]string, len(kr.keys))
	for i, k := range kr.keys {
		out[i] = k.ID
	}
	return out
}

// Claims is the signed content of a session token.
type Claims struct {
	// Viewer is the privilege-predicate the holder acts as.
	Viewer string `json:"viewer"`
	// Capabilities lists what the holder may do (sorted).
	Capabilities []Capability `json:"caps"`
	// IssuedAt / ExpiresAt bound the token's life (unix seconds).
	IssuedAt  int64 `json:"iat"`
	ExpiresAt int64 `json:"exp"`
	// KeyID names the keyring entry that signed the token.
	KeyID string `json:"kid"`
}

// Expiry returns ExpiresAt as a time.
func (c Claims) Expiry() time.Time { return time.Unix(c.ExpiresAt, 0) }

// Can reports whether the claims grant capability cap.
func (c Claims) Can(cap Capability) bool { return capsHave(c.Capabilities, cap) }

// Token verification errors. Handlers map them onto 401s with distinct
// codes so clients can tell "re-mint" (expired) from "misconfigured"
// (bad signature / unknown key).
var (
	// ErrBadToken reports a malformed token or a signature no keyring
	// key reproduces.
	ErrBadToken = errors.New("plus: invalid session token")
	// ErrTokenExpired reports a well-signed token past its expiry.
	ErrTokenExpired = errors.New("plus: session token expired")
	// ErrUnknownKey reports a token signed by a key id the keyring does
	// not list (rotated out, or another keyring entirely).
	ErrUnknownKey = errors.New("plus: token signed with unknown key")
)

// tokenPrefix versions the wire encoding of session tokens.
const tokenPrefix = "plusv2t."

// Mint signs claims with the keyring's active key (or c.KeyID when set,
// which must be listed) and returns the wire token:
//
//	plusv2t.<base64url(claims JSON)>.<base64url(HMAC-SHA256)>
func (kr *Keyring) Mint(c Claims) (string, error) {
	if c.Viewer == "" {
		return "", errors.New("plus: mint: empty viewer")
	}
	if len(c.Capabilities) == 0 {
		return "", errors.New("plus: mint: empty capability set")
	}
	if c.ExpiresAt <= 0 {
		return "", errors.New("plus: mint: missing expiry")
	}
	if c.KeyID == "" {
		c.KeyID = kr.Active()
	}
	secret, ok := kr.byID[c.KeyID]
	if !ok {
		return "", fmt.Errorf("plus: mint: %w (%q)", ErrUnknownKey, c.KeyID)
	}
	sort.Slice(c.Capabilities, func(i, j int) bool { return c.Capabilities[i] < c.Capabilities[j] })
	body, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("plus: mint: %w", err)
	}
	payload := tokenPrefix + base64.RawURLEncoding.EncodeToString(body)
	return payload + "." + base64.RawURLEncoding.EncodeToString(sign(secret, payload)), nil
}

// sign computes the HMAC-SHA256 tag of payload under secret.
func sign(secret []byte, payload string) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(payload))
	return mac.Sum(nil)
}

// DecodeTokenClaims parses a token's claims WITHOUT verifying the
// signature or expiry — for inspection and debugging only (plusctl
// session inspect). Never authorise anything off an unverified decode.
func DecodeTokenClaims(token string) (Claims, error) {
	payload, _, err := splitToken(token)
	if err != nil {
		return Claims{}, err
	}
	return decodeClaims(payload)
}

// splitToken separates a wire token into its signed payload and its
// signature bytes.
func splitToken(token string) (payload string, sig []byte, err error) {
	if !strings.HasPrefix(token, tokenPrefix) {
		return "", nil, fmt.Errorf("%w: missing %q prefix", ErrBadToken, tokenPrefix)
	}
	dot := strings.LastIndexByte(token, '.')
	if dot <= len(tokenPrefix) {
		return "", nil, fmt.Errorf("%w: missing signature", ErrBadToken)
	}
	sig, err = base64.RawURLEncoding.DecodeString(token[dot+1:])
	if err != nil {
		return "", nil, fmt.Errorf("%w: bad signature encoding", ErrBadToken)
	}
	return token[:dot], sig, nil
}

// decodeClaims parses the payload half of a token.
func decodeClaims(payload string) (Claims, error) {
	body, err := base64.RawURLEncoding.DecodeString(strings.TrimPrefix(payload, tokenPrefix))
	if err != nil {
		return Claims{}, fmt.Errorf("%w: bad payload encoding", ErrBadToken)
	}
	var c Claims
	if err := json.Unmarshal(body, &c); err != nil {
		return Claims{}, fmt.Errorf("%w: bad payload", ErrBadToken)
	}
	if c.Viewer == "" || c.KeyID == "" || c.ExpiresAt <= 0 {
		return Claims{}, fmt.Errorf("%w: incomplete claims", ErrBadToken)
	}
	return c, nil
}

// Verify checks a wire token against the keyring at time now: the key id
// must be listed, the HMAC must match (constant-time), and the expiry
// must be in the future. It returns the verified claims.
func (kr *Keyring) Verify(token string, now time.Time) (Claims, error) {
	payload, sig, err := splitToken(token)
	if err != nil {
		return Claims{}, err
	}
	c, err := decodeClaims(payload)
	if err != nil {
		return Claims{}, err
	}
	secret, ok := kr.byID[c.KeyID]
	if !ok {
		return Claims{}, fmt.Errorf("%w: %q", ErrUnknownKey, c.KeyID)
	}
	if !hmac.Equal(sig, sign(secret, payload)) {
		return Claims{}, fmt.Errorf("%w: signature mismatch", ErrBadToken)
	}
	if !now.Before(c.Expiry()) {
		return Claims{}, fmt.Errorf("%w (at %s)", ErrTokenExpired, c.Expiry().UTC().Format(time.RFC3339))
	}
	return c, nil
}

package plus

import (
	"errors"
	"testing"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/privilege"
)

// lineageFixture stores a small provenance chain with one sensitive
// invocation in the middle:
//
//	src(data) -> proc(invocation, Protected, role surrogated)
//	          -> out(data) -> report(data)
//
// plus a surrogate for proc.
func lineageFixture(t *testing.T) *Engine {
	t.Helper()
	s, _ := openTemp(t)
	objs := []Object{
		{ID: "src", Kind: Data, Name: "raw feed"},
		{ID: "proc", Kind: Invocation, Name: "secret analytic", Lowest: "Protected", Protect: "surrogate"},
		{ID: "out", Kind: Data, Name: "derived table"},
		{ID: "report", Kind: Data, Name: "final report"},
	}
	for _, o := range objs {
		if err := s.PutObject(o); err != nil {
			t.Fatal(err)
		}
	}
	edges := []Edge{
		{From: "src", To: "proc", Label: "input-to"},
		{From: "proc", To: "out", Label: "generated"},
		{From: "out", To: "report", Label: "input-to"},
	}
	for _, e := range edges {
		if err := s.PutEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutSurrogate(SurrogateSpec{ForID: "proc", ID: "proc'", Name: "an analytic", InfoScore: 0.4}); err != nil {
		t.Fatal(err)
	}
	return NewEngine(s, privilege.TwoLevel())
}

func TestLineageAncestorsSurrogate(t *testing.T) {
	en := lineageFixture(t)
	res, err := en.Lineage(Request{Start: "report", Direction: graph.Backward, Viewer: privilege.Public})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Account
	if a.Graph.HasNode("proc") {
		t.Error("sensitive invocation leaked")
	}
	// The surrogate-marked incidences contract around proc'; proc' itself
	// appears (it has a registered surrogate) but its edges do not.
	if !a.Graph.HasNode("proc'") {
		t.Errorf("surrogate node missing: %v", a.Graph.Nodes())
	}
	if !a.Graph.HasEdge("src", "out") {
		t.Errorf("surrogate edge src->out missing: %v", a.Graph.Edges())
	}
	if !a.Graph.HasEdge("out", "report") {
		t.Error("public edge out->report missing")
	}
	if err := account.VerifySound(res.Spec, a); err != nil {
		t.Errorf("unsound lineage answer: %v", err)
	}
	// Timing fields are populated and consistent.
	tm := res.Timing
	if tm.Total <= 0 || tm.DBAccess < 0 || tm.Build < 0 || tm.Protect < 0 {
		t.Errorf("bad timing %+v", tm)
	}
	if tm.DBAccess+tm.Build+tm.Protect > tm.Total+tm.Total {
		t.Errorf("timing parts exceed total: %+v", tm)
	}
}

func TestLineageHideMode(t *testing.T) {
	en := lineageFixture(t)
	res, err := en.Lineage(Request{Start: "report", Direction: graph.Backward, Viewer: privilege.Public, Mode: ModeHide})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Account
	if a.Graph.HasNode("proc") || a.Graph.HasNode("proc'") {
		t.Error("hide mode must not use surrogates")
	}
	if a.Graph.HasEdge("src", "out") {
		t.Error("hide mode interposed a surrogate edge")
	}
	// src is cut off from the rest.
	if a.Graph.HasPath("src", "report") {
		t.Error("hide mode should break the path")
	}
}

func TestLineagePrivilegedViewerSeesAll(t *testing.T) {
	en := lineageFixture(t)
	res, err := en.Lineage(Request{Start: "report", Direction: graph.Backward, Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Account
	if !a.Graph.HasNode("proc") || !a.Graph.HasEdge("src", "proc") || !a.Graph.HasEdge("proc", "out") {
		t.Errorf("privileged viewer should see the original: %v", a.Graph.Edges())
	}
	if a.Graph.HasNode("proc'") {
		t.Error("privileged viewer should not get the surrogate")
	}
}

func TestLineageDirectionAndDepth(t *testing.T) {
	en := lineageFixture(t)
	// Descendants of src (full privilege to see sizes plainly).
	res, err := en.Lineage(Request{Start: "src", Direction: graph.Forward, Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Account.Graph.NumNodes() != 4 {
		t.Errorf("descendants of src = %v", res.Account.Graph.Nodes())
	}
	// Depth-limited: one hop back from report.
	res, err = en.Lineage(Request{Start: "report", Direction: graph.Backward, Depth: 1, Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Account.Graph.NumNodes() != 2 || !res.Account.Graph.HasEdge("out", "report") {
		t.Errorf("depth-1 lineage = %v", res.Account.Graph.Nodes())
	}
	// Undirected closure from out reaches everything.
	res, err = en.Lineage(Request{Start: "out", Direction: graph.Undirected, Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Account.Graph.NumNodes() != 4 {
		t.Errorf("undirected closure = %v", res.Account.Graph.Nodes())
	}
}

func TestLineageFilters(t *testing.T) {
	en := lineageFixture(t)
	// Label filter: only "input-to" edges are followed from report.
	res, err := en.Lineage(Request{
		Start: "report", Direction: graph.Backward, Viewer: "Protected", LabelFilter: "input-to",
	})
	if err != nil {
		t.Fatal(err)
	}
	// report <- out via input-to; out <- proc is "generated" and blocked.
	if res.Account.Graph.NumNodes() != 2 {
		t.Errorf("label-filtered lineage = %v", res.Account.Graph.Nodes())
	}
	// Kind filter: traversal only through data objects; the invocation
	// proc blocks the walk.
	res, err = en.Lineage(Request{
		Start: "report", Direction: graph.Backward, Viewer: "Protected", KindFilter: Data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Account.Graph.HasNode("proc") {
		t.Errorf("kind filter leaked an invocation: %v", res.Account.Graph.Nodes())
	}
	if !res.Account.Graph.HasNode("out") {
		t.Errorf("kind filter dropped a data ancestor: %v", res.Account.Graph.Nodes())
	}
}

func TestLineageErrors(t *testing.T) {
	en := lineageFixture(t)
	if _, err := en.Lineage(Request{Start: "nope"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing start = %v", err)
	}
	if _, err := en.Lineage(Request{Start: "report", Viewer: "Bogus"}); err == nil {
		t.Error("unknown viewer accepted")
	}
	if _, err := en.Lineage(Request{Start: "report", Mode: "banana"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestLineageBadEdgeMarking(t *testing.T) {
	s, _ := openTemp(t)
	for _, id := range []string{"a", "b"} {
		if err := s.PutObject(Object{ID: id, Kind: Data, Name: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutEdge(Edge{From: "a", To: "b", Marking: "banana"}); err != nil {
		t.Fatal(err) // the store accepts it; the engine rejects at build
	}
	en := NewEngine(s, privilege.TwoLevel())
	if _, err := en.Lineage(Request{Start: "b", Direction: graph.Backward}); err == nil {
		t.Error("unknown stored marking not rejected at query time")
	}
}

package plus

import (
	"fmt"
	"sort"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// applyObjectRecord installs one stored object into the spec components,
// replacing any previous version: features, lowest() labeling and the
// protection threshold all track the new record, including clearing what
// it no longer carries. buildSpec (whole snapshot) and ApplyDelta (change
// feed) share this translation so the two paths cannot drift apart.
func applyObjectRecord(g *graph.Graph, lb *privilege.Labeling, pol *policy.Policy, o Object) error {
	id := graph.NodeID(o.ID)
	feats := graph.Features{"name": o.Name, "kind": string(o.Kind)}
	for k, v := range o.Features {
		feats[k] = v
	}
	g.AddNode(graph.Node{ID: id, Features: feats})
	if o.Lowest != "" {
		if err := lb.SetNode(id, privilege.Predicate(o.Lowest)); err != nil {
			return err
		}
	} else {
		lb.ClearNode(id)
	}
	if o.Protect != "" {
		below := policy.Surrogate
		if o.Protect == string(ModeHide) {
			below = policy.Hide
		}
		lowest := privilege.Predicate(o.Lowest)
		if o.Lowest == "" {
			lowest = privilege.Public
		}
		return pol.SetNodeThreshold(id, lowest, below)
	}
	pol.ClearNodeThreshold(id)
	return nil
}

// applyEdgeRecord installs one stored edge and its optional incidence
// marking. Shared by buildSpec and ApplyDelta.
func applyEdgeRecord(g *graph.Graph, pol *policy.Policy, e Edge) error {
	ge := graph.Edge{From: graph.NodeID(e.From), To: graph.NodeID(e.To), Label: e.Label}
	if err := g.AddEdge(ge); err != nil {
		return err
	}
	if e.Marking == "" {
		return nil
	}
	lowest := privilege.Predicate(e.Lowest)
	if e.Lowest == "" {
		lowest = privilege.Public
	}
	var below policy.Marking
	switch e.Marking {
	case string(ModeSurrogate):
		below = policy.Surrogate
	case string(ModeHide):
		below = policy.Hide
	default:
		return fmt.Errorf("plus: edge %s->%s has unknown marking %q", e.From, e.To, e.Marking)
	}
	return pol.SetIncidenceThreshold(ge.To, ge.ID(), lowest, below)
}

// applySurrogateRecord registers one stored surrogate. Shared by
// buildSpec and ApplyDelta.
func applySurrogateRecord(reg *surrogate.Registry, sp SurrogateSpec) error {
	lowest := privilege.Predicate(sp.Lowest)
	if sp.Lowest == "" {
		lowest = privilege.Public
	}
	feats := graph.Features{"name": sp.Name}
	for k, v := range sp.Features {
		feats[k] = v
	}
	return reg.Add(graph.NodeID(sp.ForID), surrogate.Surrogate{
		ID:        graph.NodeID(sp.ID),
		Features:  feats,
		Lowest:    lowest,
		InfoScore: sp.InfoScore,
	})
}

// SpecFromSnapshot assembles the account.Spec of an entire snapshot:
// every object, edge and surrogate, with the same labeling and
// policy-threshold translation the lineage engine applies to a fetched
// closure. PLUSQL builds its viewer-protected query views from this, so
// declarative queries and lineage queries protect records identically.
// Records are added in sorted object order, keeping the spec (and
// everything derived from it) deterministic.
func SpecFromSnapshot(sn *Snapshot, lattice *privilege.Lattice) (*account.Spec, error) {
	f := &fetched{objects: sn.Objects()}
	sort.Slice(f.objects, func(i, j int) bool { return f.objects[i].ID < f.objects[j].ID })
	for _, o := range f.objects {
		// Out covers each edge exactly once (edges are keyed by From).
		f.edges = append(f.edges, sn.Out(o.ID)...)
		f.surrogates = append(f.surrogates, sn.Surrogates(o.ID)...)
	}
	return buildSpec(lattice, f)
}

// ClassifyDelta translates a storage delta into account terms against the
// spec it is about to be applied to: which nodes are new versus replaced,
// which edges and surrogate registrations were added. Call it BEFORE
// ApplyDelta mutates the spec.
func ClassifyDelta(spec *account.Spec, d *Delta) account.Delta {
	var ad account.Delta
	seenObj := map[graph.NodeID]bool{}
	seenSur := map[graph.NodeID]bool{}
	for _, c := range d.Changes {
		switch c.Kind {
		case ChangeObject:
			id := graph.NodeID(c.Object.ID)
			if seenObj[id] {
				continue // a node stored twice in one delta is still one node
			}
			seenObj[id] = true
			if spec.Graph.HasNode(id) {
				ad.UpdatedNodes = append(ad.UpdatedNodes, id)
			} else {
				ad.NewNodes = append(ad.NewNodes, id)
			}
		case ChangeEdge:
			ad.NewEdges = append(ad.NewEdges, graph.EdgeID{
				From: graph.NodeID(c.Edge.From), To: graph.NodeID(c.Edge.To)})
		case ChangeSurrogate:
			id := graph.NodeID(c.Surrogate.ForID)
			if !seenSur[id] {
				seenSur[id] = true
				ad.SurrogateFor = append(ad.SurrogateFor, id)
			}
		}
	}
	return ad
}

// ApplyDelta advances a spec assembled by SpecFromSnapshot to the delta's
// end revision, mirroring the whole-snapshot translation record for
// record: graph nodes and edges, lowest() labeling, protection thresholds
// and surrogate registrations. Applying the delta for revision window
// (A, B] to the spec of snapshot A yields a spec semantically equal to
// SpecFromSnapshot at B. The spec is mutated in place; on error it may be
// partially advanced and must be discarded.
func ApplyDelta(spec *account.Spec, d *Delta) error {
	for _, c := range d.Changes {
		var err error
		switch c.Kind {
		case ChangeObject:
			err = applyObjectRecord(spec.Graph, spec.Labeling, spec.Policy, c.Object)
		case ChangeEdge:
			err = applyEdgeRecord(spec.Graph, spec.Policy, c.Edge)
		case ChangeSurrogate:
			err = applySurrogateRecord(spec.Surrogates, c.Surrogate)
		default:
			err = fmt.Errorf("plus: unknown change kind %d", c.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

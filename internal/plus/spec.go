package plus

import (
	"sort"

	"repro/internal/account"
	"repro/internal/privilege"
)

// SpecFromSnapshot assembles the account.Spec of an entire snapshot:
// every object, edge and surrogate, with the same labeling and
// policy-threshold translation the lineage engine applies to a fetched
// closure. PLUSQL builds its viewer-protected query views from this, so
// declarative queries and lineage queries protect records identically.
// Records are added in sorted object order, keeping the spec (and
// everything derived from it) deterministic.
func SpecFromSnapshot(sn *Snapshot, lattice *privilege.Lattice) (*account.Spec, error) {
	f := &fetched{objects: sn.Objects()}
	sort.Slice(f.objects, func(i, j int) bool { return f.objects[i].ID < f.objects[j].ID })
	for _, o := range f.objects {
		// Out covers each edge exactly once (edges are keyed by From).
		f.edges = append(f.edges, sn.Out(o.ID)...)
		f.surrogates = append(f.surrogates, sn.Surrogates(o.ID)...)
	}
	return buildSpec(lattice, f)
}

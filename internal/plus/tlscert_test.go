package plus

import (
	"crypto/tls"
	"crypto/x509"
	"encoding/pem"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func TestSelfSignedCertHandshake(t *testing.T) {
	certPEM, keyPEM, err := SelfSignedCert()
	if err != nil {
		t.Fatal(err)
	}
	pair, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		t.Fatalf("generated pair does not load: %v", err)
	}

	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	ts.TLS = &tls.Config{Certificates: []tls.Certificate{pair}}
	ts.StartTLS()
	defer ts.Close()

	// The cert doubles as its own CA bundle: trusting cert.pem alone must
	// complete the handshake (that is what -tls-ca hands to clients).
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		t.Fatal("cert.pem not usable as a CA bundle")
	}
	hc := &http.Client{Transport: &http.Transport{TLSClientConfig: &tls.Config{RootCAs: pool}}}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("handshake with cert-as-CA failed: %v", err)
	}
	resp.Body.Close()

	// An empty pool must refuse: the cert is self-signed, not public.
	hc = &http.Client{Transport: &http.Transport{TLSClientConfig: &tls.Config{RootCAs: x509.NewCertPool()}}}
	if resp, err := hc.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Fatal("handshake succeeded without trusting the cert")
	}
}

func TestSelfSignedCertCustomHosts(t *testing.T) {
	certPEM, _, err := SelfSignedCert("replica-1.internal", "10.0.0.7")
	if err != nil {
		t.Fatal(err)
	}
	cert := decodeFirstCert(t, certPEM)
	if err := cert.VerifyHostname("replica-1.internal"); err != nil {
		t.Errorf("DNS SAN missing: %v", err)
	}
	if err := cert.VerifyHostname("10.0.0.7"); err != nil {
		t.Errorf("IP SAN missing: %v", err)
	}
	if err := cert.VerifyHostname("localhost"); err == nil {
		t.Error("custom-host cert unexpectedly covers localhost")
	}
}

func decodeFirstCert(t *testing.T, certPEM []byte) *x509.Certificate {
	t.Helper()
	block, _ := pem.Decode(certPEM)
	if block == nil {
		t.Fatal("bad PEM")
	}
	cert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

func TestWriteSelfSignedCertIdempotent(t *testing.T) {
	dir := t.TempDir()
	certPath, keyPath, err := WriteSelfSignedCert(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(certPath) != dir || filepath.Dir(keyPath) != dir {
		t.Fatalf("paths outside dir: %s %s", certPath, keyPath)
	}
	first, err := os.ReadFile(certPath)
	if err != nil {
		t.Fatal(err)
	}
	// A second call must keep the existing material, or every restart
	// would invalidate the CA file already distributed to clients.
	if _, _, err := WriteSelfSignedCert(dir); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(certPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("restart regenerated the certificate")
	}
}

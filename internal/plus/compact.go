package plus

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// Compact rewrites the log so it contains exactly one record per live
// object (objects are replace-on-put, so a busy store accumulates
// superseded versions) plus every edge and surrogate, then atomically
// swaps it in. The store stays usable afterwards; readers and writers are
// blocked for the duration.
func (s *LogBackend) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}

	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("plus: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename

	var written int64
	writeRec := func(kind byte, v interface{}) error {
		body, err := json.Marshal(v)
		if err != nil {
			return err
		}
		payload := append([]byte{kind}, body...)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := tmp.Write(payload); err != nil {
			return err
		}
		written += int64(8 + len(payload))
		return nil
	}

	ids := make([]string, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Compaction renumbers history: replaying the rewritten log yields one
	// record per live object instead of every superseded version, so old
	// revision numbers stop naming the same prefixes. Rotate the epoch
	// (stranded cursors get a 410-resync instead of silently wrong deltas)
	// and record the replay base so the counter resumes at its current
	// height — in-process consumers keep their revision-numbered state.
	live := uint64(len(s.objects))
	for _, id := range ids {
		live += uint64(len(s.out[id]) + len(s.surrogates[id]))
	}
	nextEpoch := newEpoch()
	if err := writeRec(recEpoch, epochRecord{Epoch: nextEpoch, Base: s.revision.Load() - live}); err != nil {
		tmp.Close()
		return fmt.Errorf("plus: compact: %w", err)
	}
	for _, id := range ids {
		if err := writeRec(recObject, s.objects[id]); err != nil {
			tmp.Close()
			return fmt.Errorf("plus: compact: %w", err)
		}
	}
	for _, id := range ids {
		for _, e := range s.out[id] {
			if err := writeRec(recEdge, e); err != nil {
				tmp.Close()
				return fmt.Errorf("plus: compact: %w", err)
			}
		}
		for _, sp := range s.surrogates[id] {
			if err := writeRec(recSurrogate, sp); err != nil {
				tmp.Close()
				return fmt.Errorf("plus: compact: %w", err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("plus: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("plus: compact close: %w", err)
	}

	// Swap the compacted log in and repoint the store's handle.
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("plus: compact: close old log: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fmt.Errorf("plus: compact rename: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("plus: compact reopen: %w", err)
	}
	if _, err := f.Seek(written, 0); err != nil {
		f.Close()
		return fmt.Errorf("plus: compact seek: %w", err)
	}
	s.f = f
	s.size = written
	// The compacted log holds only live state; drop the in-memory history
	// so it matches what a reopen would reconstruct.
	s.history = map[string][]Object{}
	s.epoch = nextEpoch
	// Drop the resident change window too: its entries carry pre-compact
	// revision numbers, which the rewritten log no longer reproduces — a
	// reopen replays the compacted records into those same revision slots.
	// Serving them under the new epoch would hand out cursors that resolve
	// to different records after a restart. With the window rebased to the
	// current revision, readers behind it get ErrTooFarBehind (HTTP 410)
	// and rebuild from a snapshot, which is always correct.
	s.changes = nil
	s.changesBase = s.revision.Load()
	// Wake parked change-feed followers: their streams are pinned to the
	// old epoch, and the handler ends them when it notices the rotation
	// (the client then reconnects and resyncs through the 410 path).
	s.broadcast()
	return nil
}

// EdgesFrom returns the outgoing edges of an object, in insertion order.
func (s *LogBackend) EdgesFrom(id string) []Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Edge(nil), s.out[id]...)
}

// EdgesTo returns the incoming edges of an object, in insertion order.
func (s *LogBackend) EdgesTo(id string) []Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Edge(nil), s.in[id]...)
}

// SurrogatesOf returns the stored surrogate specs for an object.
func (s *LogBackend) SurrogatesOf(id string) []SurrogateSpec {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SurrogateSpec(nil), s.surrogates[id]...)
}

package plus

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/privilege"
)

// This file is the shared Backend conformance suite: every storage
// implementation must pass the same contract tests, so a future backend
// (a networked shard, say) plugs in with confidence. Durable backends
// additionally run the crash-recovery battery (torn tail, bad CRC,
// mid-log corruption) through the Backend seam rather than against the
// concrete log type.

// backendHarness describes one implementation under test.
type backendHarness struct {
	name string
	// open creates a fresh, empty backend. For durable backends it also
	// returns the path a reopen must recover from; volatile backends
	// return "".
	open func(t *testing.T) (Backend, string)
	// reopen closes nothing: it opens a new backend over the durable
	// state at path. Nil for volatile backends, which skips the
	// durability battery.
	reopen func(t *testing.T, path string) Backend
}

func conformanceHarnesses() []backendHarness {
	return []backendHarness{
		{
			name: "log",
			open: func(t *testing.T) (Backend, string) {
				path := filepath.Join(t.TempDir(), "conformance.log")
				b, err := Open(path, Options{})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { b.Close() })
				return b, path
			},
			reopen: func(t *testing.T, path string) Backend {
				b, err := Open(path, Options{})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				t.Cleanup(func() { b.Close() })
				return b
			},
		},
		{
			name: "mem",
			open: func(t *testing.T) (Backend, string) {
				b := NewMemBackend(4)
				t.Cleanup(func() { b.Close() })
				return b, ""
			},
		},
	}
}

// TestBackendConformance runs the whole contract against every backend.
func TestBackendConformance(t *testing.T) {
	for _, h := range conformanceHarnesses() {
		t.Run(h.name, func(t *testing.T) {
			t.Run("PutGetValidate", func(t *testing.T) { conformPutGetValidate(t, h) })
			t.Run("AdjacencyAndSurrogates", func(t *testing.T) { conformAdjacency(t, h) })
			t.Run("HistoryAndReplace", func(t *testing.T) { conformHistory(t, h) })
			t.Run("BatchApply", func(t *testing.T) { conformBatch(t, h) })
			t.Run("RevisionMonotonic", func(t *testing.T) { conformRevision(t, h) })
			t.Run("SnapshotIsolation", func(t *testing.T) { conformSnapshotIsolation(t, h) })
			t.Run("CloseSemantics", func(t *testing.T) { conformClose(t, h) })
			t.Run("ConcurrentReadersWriters", func(t *testing.T) { conformConcurrency(t, h) })
			t.Run("NotifyOnWrite", func(t *testing.T) { conformNotify(t, h) })
			t.Run("ChangesContiguous", func(t *testing.T) { conformChangesContiguous(t, h) })
			t.Run("ChangesMatchSnapshotDiff", func(t *testing.T) { conformChangesSnapshotDiff(t, h) })
			t.Run("ChangesErrors", func(t *testing.T) { conformChangesErrors(t, h) })
			t.Run("WalkMatchesChanges", func(t *testing.T) { conformWalkChanges(t, h) })
			t.Run("LineageEngine", func(t *testing.T) { conformLineage(t, h) })
			t.Run("OPMRoundTrip", func(t *testing.T) { conformOPM(t, h) })
			if h.reopen != nil {
				t.Run("ReopenRecovers", func(t *testing.T) { conformReopen(t, h) })
				t.Run("TornTailTruncated", func(t *testing.T) { conformTornTail(t, h) })
				t.Run("BadCRCTailTruncated", func(t *testing.T) { conformBadCRCTail(t, h) })
				t.Run("MidLogCorruptionFails", func(t *testing.T) { conformMidLogCorruption(t, h) })
			}
		})
	}
}

// conformNotify: every mutation path closes the armed Notify channel
// (the /v2/changes long-poll wakeup), an idle backend never fires, and
// Close wakes parked waiters.
func conformNotify(t *testing.T, h backendHarness) {
	b, _ := h.open(t)

	waitClosed := func(ch <-chan struct{}, what string) {
		t.Helper()
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s did not broadcast", what)
		}
	}

	ch := b.Notify()
	if err := b.PutObject(Object{ID: "n1", Kind: Data}); err != nil {
		t.Fatal(err)
	}
	waitClosed(ch, "PutObject")

	// A write BETWEEN arming and waiting is still observed: the channel
	// returned before the write is already closed.
	ch = b.Notify()
	if err := b.PutObject(Object{ID: "n2", Kind: Data}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("pre-armed channel not closed by an intervening write")
	}

	ch = b.Notify()
	if err := b.PutEdge(Edge{From: "n1", To: "n2"}); err != nil {
		t.Fatal(err)
	}
	waitClosed(ch, "PutEdge")

	ch = b.Notify()
	if err := b.PutSurrogate(SurrogateSpec{ForID: "n1", ID: "n1'", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	waitClosed(ch, "PutSurrogate")

	ch = b.Notify()
	if _, err := b.Apply(Batch{Objects: []Object{{ID: "n3", Kind: Data}}}); err != nil {
		t.Fatal(err)
	}
	waitClosed(ch, "Apply")

	// Idle: no broadcast.
	ch = b.Notify()
	select {
	case <-ch:
		t.Fatal("idle backend broadcast")
	case <-time.After(20 * time.Millisecond):
	}

	// Close wakes parked waiters.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	waitClosed(ch, "Close")
}

func seedChain(t *testing.T, b Backend, ids ...string) {
	t.Helper()
	for _, id := range ids {
		if err := b.PutObject(Object{ID: id, Kind: Data, Name: "obj " + id}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := b.PutEdge(Edge{From: ids[i], To: ids[i+1], Label: "input-to"}); err != nil {
			t.Fatal(err)
		}
	}
}

// conformChangesContiguous: the change feed covers every revision bump
// exactly once, in order, with the revision window semantics of the
// ChangesSince contract.
func conformChangesContiguous(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	seedChain(t, b, "a", "b", "c") // 3 objects + 2 edges
	if err := b.PutSurrogate(SurrogateSpec{ForID: "b", ID: "b'", Name: "anon", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutObject(Object{ID: "a", Kind: Data, Name: "a v2"}); err != nil {
		t.Fatal(err)
	}
	rev := b.Revision()
	if rev != 7 {
		t.Fatalf("revision = %d, want 7", rev)
	}
	changes, err := b.ChangesSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 7 {
		t.Fatalf("ChangesSince(0) = %d changes, want 7", len(changes))
	}
	for i, c := range changes {
		if c.Rev != uint64(i)+1 {
			t.Fatalf("changes[%d].Rev = %d, want %d", i, c.Rev, i+1)
		}
	}
	// Kinds in application order.
	wantKinds := []ChangeKind{ChangeObject, ChangeObject, ChangeObject, ChangeEdge, ChangeEdge, ChangeSurrogate, ChangeObject}
	for i, c := range changes {
		if c.Kind != wantKinds[i] {
			t.Errorf("changes[%d].Kind = %d, want %d", i, c.Kind, wantKinds[i])
		}
	}
	if changes[6].Object.Name != "a v2" {
		t.Errorf("replacement change carries %q, want the new record", changes[6].Object.Name)
	}
	// Suffix windows.
	tail, err := b.ChangesSince(5)
	if err != nil || len(tail) != 2 || tail[0].Rev != 6 {
		t.Fatalf("ChangesSince(5) = %v, %v", tail, err)
	}
	empty, err := b.ChangesSince(rev)
	if err != nil || len(empty) != 0 {
		t.Fatalf("ChangesSince(rev) = %v, %v, want empty", empty, err)
	}
	if _, err := b.ChangesSince(rev + 1); err == nil {
		t.Error("future revision accepted")
	}
}

// conformChangesSnapshotDiff: replaying the change window (a, b] onto
// snapshot A's contents reproduces snapshot B exactly.
func conformChangesSnapshotDiff(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	seedChain(t, b, "a", "b")
	snA, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if err := b.PutObject(Object{ID: "c", Kind: Data, Name: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutEdge(Edge{From: "b", To: "c", Label: "input-to"}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutObject(Object{ID: "a", Kind: Data, Name: "a v2"}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutSurrogate(SurrogateSpec{ForID: "a", ID: "a'", Name: "anon", InfoScore: 0.3}); err != nil {
		t.Fatal(err)
	}
	snB, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	delta, err := snB.DeltaSince(snA.Revision())
	if err != nil {
		t.Fatal(err)
	}
	if delta.Since != snA.Revision() || delta.Rev != snB.Revision() {
		t.Fatalf("delta window = (%d, %d], want (%d, %d]", delta.Since, delta.Rev, snA.Revision(), snB.Revision())
	}

	// Reconstruct B's contents from A plus the delta.
	objects := map[string]Object{}
	out := map[string][]Edge{}
	surr := map[string][]SurrogateSpec{}
	for _, o := range snA.Objects() {
		objects[o.ID] = o
		out[o.ID] = append([]Edge(nil), snA.Out(o.ID)...)
		surr[o.ID] = append([]SurrogateSpec(nil), snA.Surrogates(o.ID)...)
	}
	for _, c := range delta.Changes {
		switch c.Kind {
		case ChangeObject:
			objects[c.Object.ID] = c.Object
		case ChangeEdge:
			out[c.Edge.From] = append(out[c.Edge.From], c.Edge)
		case ChangeSurrogate:
			surr[c.Surrogate.ForID] = append(surr[c.Surrogate.ForID], c.Surrogate)
		}
	}
	if len(objects) != snB.NumObjects() {
		t.Fatalf("reconstructed %d objects, snapshot B has %d", len(objects), snB.NumObjects())
	}
	for id, o := range objects {
		got, ok := snB.Object(id)
		if !ok || got.Name != o.Name {
			t.Errorf("object %s: reconstructed %+v, snapshot %+v (ok=%v)", id, o, got, ok)
		}
		if fmt.Sprint(out[id]) != fmt.Sprint(snB.Out(id)) {
			t.Errorf("out(%s): reconstructed %v, snapshot %v", id, out[id], snB.Out(id))
		}
		if fmt.Sprint(surr[id]) != fmt.Sprint(snB.Surrogates(id)) {
			t.Errorf("surrogates(%s): reconstructed %v, snapshot %v", id, surr[id], snB.Surrogates(id))
		}
	}

	// A snapshot never reports changes past its own revision even after
	// the backend advances.
	if err := b.PutObject(Object{ID: "late", Kind: Data, Name: "late"}); err != nil {
		t.Fatal(err)
	}
	again, err := snB.DeltaSince(snA.Revision())
	if err != nil {
		t.Fatal(err)
	}
	if again.Rev != snB.Revision() || len(again.Changes) != len(delta.Changes) {
		t.Errorf("delta after later writes = (%d, %d] with %d changes; want the original window",
			again.Since, again.Rev, len(again.Changes))
	}
}

// conformChangesErrors: the feed fails cleanly after Close.
// conformWalkChanges: the zero-copy walk visits exactly the changes the
// materialized feed reports — each revision once, same-id changes in
// revision order — honours the upTo bound, and reports an evicted window
// as ErrTooFarBehind.
func conformWalkChanges(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	w, ok := b.(changeWalker)
	if !ok {
		t.Fatalf("%T does not implement changeWalker", b)
	}
	seedChain(t, b, "a", "b", "c") // 3 objects + 2 edges
	if err := b.PutSurrogate(SurrogateSpec{ForID: "b", ID: "b'", Name: "anon", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutObject(Object{ID: "a", Kind: Data, Name: "a v2"}); err != nil {
		t.Fatal(err)
	}
	rev := b.Revision()

	collect := func(since, upTo uint64) map[uint64]Change {
		t.Helper()
		got := map[uint64]Change{}
		err := w.walkChangesSince(since, upTo, func(c *Change) {
			if _, dup := got[c.Rev]; dup {
				t.Fatalf("revision %d visited twice", c.Rev)
			}
			got[c.Rev] = *c
		})
		if err != nil {
			t.Fatalf("walkChangesSince(%d, %d): %v", since, upTo, err)
		}
		return got
	}

	want, err := b.ChangesSince(0)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(0, rev)
	if len(got) != len(want) {
		t.Fatalf("walk visited %d changes, ChangesSince reports %d", len(got), len(want))
	}
	for _, c := range want {
		g, visited := got[c.Rev]
		if !visited {
			t.Fatalf("revision %d not visited", c.Rev)
		}
		if g.Kind != c.Kind || g.Object.ID != c.Object.ID || g.Object.Name != c.Object.Name ||
			g.Edge != c.Edge || g.Surrogate.ID != c.Surrogate.ID {
			t.Errorf("revision %d: walk saw %+v, feed reports %+v", c.Rev, g, c)
		}
	}

	// The upTo bound truncates, and an empty window visits nothing.
	mid := collect(2, 5)
	if len(mid) != 3 {
		t.Fatalf("walk of (2, 5] visited %d changes, want 3", len(mid))
	}
	for r := uint64(3); r <= 5; r++ {
		if _, visited := mid[r]; !visited {
			t.Errorf("walk of (2, 5] missed revision %d", r)
		}
	}
	if empty := collect(rev, rev); len(empty) != 0 {
		t.Errorf("walk of the empty window visited %d changes", len(empty))
	}

	// Changes to one id arrive in revision order (here: the store of "a"
	// before its replacement).
	var aRevs []uint64
	if err := w.walkChangesSince(0, rev, func(c *Change) {
		if c.Kind == ChangeObject && c.Object.ID == "a" {
			aRevs = append(aRevs, c.Rev)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(aRevs) != 2 || aRevs[0] >= aRevs[1] {
		t.Errorf("changes of %q visited at revisions %v, want two in order", "a", aRevs)
	}

	if err := w.walkChangesSince(rev+1, rev+1, func(*Change) {}); err == nil {
		t.Error("future since accepted")
	}

	// An evicted window must surface as ErrTooFarBehind, the rebuild
	// signal.
	b.(interface{ SetChangeHorizon(int) }).SetChangeHorizon(1)
	if err := w.walkChangesSince(0, rev, func(*Change) {}); !errors.Is(err, ErrTooFarBehind) {
		t.Errorf("walk over the evicted window = %v, want ErrTooFarBehind", err)
	}
}

func conformChangesErrors(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	seedChain(t, b, "a", "b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ChangesSince(0); !errors.Is(err, ErrClosed) {
		t.Errorf("ChangesSince after Close = %v, want ErrClosed", err)
	}
}

// TestLogBackendChangeHorizon exercises the durable backend's bounded
// resident window: the log keeps the full history on disk, but only the
// recent window answers ChangesSince — older requests take the
// too-far-behind rebuild path.
func TestLogBackendChangeHorizon(t *testing.T) {
	path := filepath.Join(t.TempDir(), "horizon.log")
	b, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if b.ChangeHorizon() != DefaultLogChangeHorizon {
		t.Fatalf("default horizon = %d", b.ChangeHorizon())
	}
	b.SetChangeHorizon(4)
	for i := 0; i < 20; i++ {
		if err := b.PutObject(Object{ID: fmt.Sprintf("o%d", i), Kind: Data, Name: "o"}); err != nil {
			t.Fatal(err)
		}
	}
	rev := b.Revision()
	if got, err := b.ChangesSince(rev - 4); err != nil || len(got) != 4 {
		t.Fatalf("ChangesSince(rev-4) = %d changes, %v", len(got), err)
	}
	if _, err := b.ChangesSince(0); !errors.Is(err, ErrTooFarBehind) {
		t.Errorf("ChangesSince(0) = %v, want ErrTooFarBehind", err)
	}
	// Shrinking discards the oldest retained entries.
	b.SetChangeHorizon(1)
	if _, err := b.ChangesSince(rev - 2); !errors.Is(err, ErrTooFarBehind) {
		t.Errorf("after shrink, ChangesSince(rev-2) = %v, want ErrTooFarBehind", err)
	}
	if got, err := b.ChangesSince(rev - 1); err != nil || len(got) != 1 {
		t.Errorf("after shrink, ChangesSince(rev-1) = %d changes, %v", len(got), err)
	}
	// The log itself still holds everything: a reopen replays the full
	// history (fresh window, fresh revision numbering).
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() })
	if b2.NumObjects() != 20 {
		t.Fatalf("reopened objects = %d, want 20", b2.NumObjects())
	}
	if got, err := b2.ChangesSince(0); err != nil || len(got) != 20 {
		t.Errorf("reopened ChangesSince(0) = %d changes, %v", len(got), err)
	}
}

// TestMemBackendChangeHorizon exercises the bounded ring: requests inside
// the retained window are served, requests past it fail with
// ErrTooFarBehind (the full-rebuild escape hatch), and concurrent writers
// keep the merged feed contiguous.
func TestMemBackendChangeHorizon(t *testing.T) {
	m := NewMemBackend(2)
	t.Cleanup(func() { m.Close() })
	m.SetChangeHorizon(4)

	for i := 0; i < 20; i++ {
		if err := m.PutObject(Object{ID: fmt.Sprintf("o%d", i), Kind: Data, Name: "o"}); err != nil {
			t.Fatal(err)
		}
	}
	rev := m.Revision()
	// The last few revisions are always retained (per-shard horizon 4 on
	// 2 shards retains at least the 4 newest overall).
	tail, err := m.ChangesSince(rev - 2)
	if err != nil || len(tail) != 2 {
		t.Fatalf("ChangesSince(rev-2) = %d changes, %v", len(tail), err)
	}
	// Far past the ring: too far behind.
	if _, err := m.ChangesSince(0); !errors.Is(err, ErrTooFarBehind) {
		t.Errorf("ChangesSince(0) = %v, want ErrTooFarBehind", err)
	}
	// DeltaSince through a snapshot surfaces the same escape hatch.
	sn, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sn.DeltaSince(0); !errors.Is(err, ErrTooFarBehind) {
		t.Errorf("DeltaSince(0) = %v, want ErrTooFarBehind", err)
	}

	// Shrinking the horizon discards the oldest retained entries. With a
	// per-shard capacity of 1 on 2 shards at most 2 changes survive, so a
	// deep window is gone while the newest change is always retained.
	m.SetChangeHorizon(1)
	if _, err := m.ChangesSince(rev - 10); !errors.Is(err, ErrTooFarBehind) {
		t.Errorf("after shrink, ChangesSince(rev-10) = %v, want ErrTooFarBehind", err)
	}
	if got, err := m.ChangesSince(rev - 1); err != nil || len(got) != 1 {
		t.Errorf("after shrink, ChangesSince(rev-1) = %d changes, %v", len(got), err)
	}

	// Concurrent writers on different shards: merged feed stays contiguous
	// within the retained window.
	m2 := NewMemBackend(4)
	t.Cleanup(func() { m2.Close() })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = m2.PutObject(Object{ID: fmt.Sprintf("w%d-%d", w, i), Kind: Data, Name: "w"})
			}
		}(w)
	}
	wg.Wait()
	all, err := m2.ChangesSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 200 {
		t.Fatalf("merged feed has %d changes, want 200", len(all))
	}
	for i, c := range all {
		if c.Rev != uint64(i)+1 {
			t.Fatalf("merged feed gap at %d: rev %d", i, c.Rev)
		}
	}
}

func conformPutGetValidate(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	o := Object{ID: "d1", Kind: Data, Name: "report", Features: map[string]string{"fmt": "pdf"}, Lowest: "Secret"}
	if err := b.PutObject(o); err != nil {
		t.Fatal(err)
	}
	got, err := b.GetObject("d1")
	if err != nil || got.Name != "report" || got.Features["fmt"] != "pdf" {
		t.Errorf("GetObject = %+v, %v", got, err)
	}
	if _, err := b.GetObject("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object error = %v", err)
	}
	if err := b.PutObject(Object{ID: "", Kind: Data}); err == nil {
		t.Error("empty id accepted")
	}
	if err := b.PutObject(Object{ID: "x", Kind: "banana"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := b.PutObject(Object{ID: "x", Kind: Data, Protect: "mangle"}); err == nil {
		t.Error("unknown protect mode accepted")
	}
	seedChain(t, b, "a", "b")
	if err := b.PutEdge(Edge{From: "a", To: "zzz"}); err == nil {
		t.Error("edge to missing object accepted")
	}
	if err := b.PutEdge(Edge{From: "zzz", To: "a"}); err == nil {
		t.Error("edge from missing object accepted")
	}
	if err := b.PutEdge(Edge{From: "a", To: "a"}); err == nil {
		t.Error("self edge accepted")
	}
	if err := b.PutEdge(Edge{From: "a", To: "b"}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := b.PutSurrogate(SurrogateSpec{ForID: "zzz", ID: "z'"}); err == nil {
		t.Error("surrogate for missing object accepted")
	}
	if err := b.PutSurrogate(SurrogateSpec{ForID: "a", ID: "a"}); err == nil {
		t.Error("surrogate id == original accepted")
	}
	if err := b.PutSurrogate(SurrogateSpec{ForID: "a", ID: "a'", InfoScore: 2}); err == nil {
		t.Error("bad infoScore accepted")
	}
}

func conformAdjacency(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	seedChain(t, b, "a", "b", "c")
	if err := b.PutSurrogate(SurrogateSpec{ForID: "b", ID: "b'", Name: "anon", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := b.EdgesFrom("a"); len(got) != 1 || got[0].To != "b" {
		t.Errorf("EdgesFrom(a) = %+v", got)
	}
	if got := b.EdgesTo("c"); len(got) != 1 || got[0].From != "b" {
		t.Errorf("EdgesTo(c) = %+v", got)
	}
	if got := b.SurrogatesOf("b"); len(got) != 1 || got[0].ID != "b'" {
		t.Errorf("SurrogatesOf(b) = %+v", got)
	}
	if b.NumObjects() != 3 || b.NumEdges() != 2 {
		t.Errorf("counts = %d objects %d edges, want 3, 2", b.NumObjects(), b.NumEdges())
	}
	if got := b.Objects(); len(got) != 3 {
		t.Errorf("Objects() = %d items", len(got))
	}
}

func conformHistory(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	if err := b.PutObject(Object{ID: "v", Kind: Data, Name: "v1"}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutObject(Object{ID: "v", Kind: Data, Name: "v2"}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutObject(Object{ID: "v", Kind: Data, Name: "v3"}); err != nil {
		t.Fatal(err)
	}
	hist := b.History("v")
	if len(hist) != 2 || hist[0].Name != "v1" || hist[1].Name != "v2" {
		t.Errorf("History = %+v", hist)
	}
	live, err := b.GetObject("v")
	if err != nil || live.Name != "v3" {
		t.Errorf("live = %+v, %v", live, err)
	}
	if b.NumObjects() != 1 {
		t.Errorf("NumObjects = %d, want 1 (replace, not insert)", b.NumObjects())
	}
}

func conformBatch(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	batch := Batch{
		Objects: []Object{
			{ID: "x", Kind: Data, Name: "x"},
			{ID: "y", Kind: Invocation, Name: "y"},
		},
		Edges:      []Edge{{From: "x", To: "y", Label: "input-to"}},
		Surrogates: []SurrogateSpec{{ForID: "y", ID: "y'", Name: "anon", InfoScore: 0.3}},
	}
	if _, err := b.Apply(batch); err != nil {
		t.Fatal(err)
	}
	if b.NumObjects() != 2 || b.NumEdges() != 1 {
		t.Errorf("after batch: %d objects %d edges", b.NumObjects(), b.NumEdges())
	}
	if got := b.SurrogatesOf("y"); len(got) != 1 {
		t.Errorf("surrogates = %+v", got)
	}

	// A bad batch must leave the backend untouched.
	rev := b.Revision()
	bad := Batch{
		Objects: []Object{{ID: "z", Kind: Data, Name: "z"}},
		Edges:   []Edge{{From: "z", To: "missing"}},
	}
	if _, err := b.Apply(bad); err == nil {
		t.Fatal("bad batch accepted")
	}
	if b.Revision() != rev {
		t.Error("failed batch moved the revision")
	}
	if _, err := b.GetObject("z"); !errors.Is(err, ErrNotFound) {
		t.Error("failed batch left partial state")
	}
	// Empty batch is a no-op.
	if _, err := b.Apply(Batch{}); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func conformRevision(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	r0 := b.Revision()
	if err := b.PutObject(Object{ID: "a", Kind: Data, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	r1 := b.Revision()
	if r1 <= r0 {
		t.Errorf("revision did not advance: %d -> %d", r0, r1)
	}
	seedChain(t, b, "b", "c")
	if b.Revision() != r1+3 { // 2 objects + 1 edge
		t.Errorf("revision = %d, want %d (one bump per record)", b.Revision(), r1+3)
	}
}

func conformSnapshotIsolation(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	seedChain(t, b, "a", "b")
	sn1, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn1.Revision() != b.Revision() {
		t.Errorf("snapshot rev %d != store rev %d", sn1.Revision(), b.Revision())
	}
	// Repeated snapshots with no writes are the same clone (cached).
	sn1b, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn1 != sn1b {
		t.Error("unchanged store returned a fresh snapshot clone")
	}

	// Writes are invisible to the old snapshot...
	if err := b.PutObject(Object{ID: "c", Kind: Data, Name: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutEdge(Edge{From: "b", To: "c"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := sn1.Object("c"); ok {
		t.Error("old snapshot sees later object")
	}
	if len(sn1.Out("b")) != 0 {
		t.Error("old snapshot sees later edge")
	}
	if got, ok := sn1.Object("a"); !ok || got.Name != "obj a" {
		t.Errorf("old snapshot lost object a: %+v %v", got, ok)
	}

	// ...and a fresh snapshot sees them.
	sn2, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn2 == sn1 {
		t.Error("snapshot not invalidated by write")
	}
	if _, ok := sn2.Object("c"); !ok {
		t.Error("new snapshot missing new object")
	}
	if len(sn2.Out("b")) != 1 {
		t.Error("new snapshot missing new edge")
	}
	if sn2.Revision() <= sn1.Revision() {
		t.Errorf("snapshot revisions not monotonic: %d then %d", sn1.Revision(), sn2.Revision())
	}
}

func conformClose(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	seedChain(t, b, "a", "b")
	if err := b.Ping(); err != nil {
		t.Errorf("ping on open backend: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := b.Ping(); !errors.Is(err, ErrClosed) {
		t.Errorf("ping after close = %v", err)
	}
	if err := b.PutObject(Object{ID: "x", Kind: Data}); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close = %v", err)
	}
	if _, err := b.GetObject("a"); !errors.Is(err, ErrClosed) {
		t.Errorf("get after close = %v", err)
	}
	if _, err := b.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Errorf("snapshot after close = %v", err)
	}
	if _, err := b.Apply(Batch{Objects: []Object{{ID: "y", Kind: Data}}}); !errors.Is(err, ErrClosed) {
		t.Errorf("batch after close = %v", err)
	}
}

func conformConcurrency(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := b.PutObject(Object{ID: id, Kind: Data, Name: id}); err != nil {
					t.Errorf("put %s: %v", id, err)
					return
				}
				if _, err := b.GetObject(id); err != nil {
					t.Errorf("get %s: %v", id, err)
					return
				}
				if _, err := b.Snapshot(); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if b.NumObjects() != workers*25 {
		t.Errorf("objects = %d, want %d", b.NumObjects(), workers*25)
	}
	sn, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.NumObjects() != workers*25 {
		t.Errorf("snapshot objects = %d, want %d", sn.NumObjects(), workers*25)
	}
}

// conformLineage runs the query engine over the backend: the same
// protected-lineage answer must come out of every implementation.
func conformLineage(t *testing.T, h backendHarness) {
	b, _ := h.open(t)
	_, err := b.Apply(Batch{
		Objects: []Object{
			{ID: "src", Kind: Data, Name: "raw feed"},
			{ID: "proc", Kind: Invocation, Name: "secret analytic", Lowest: "Protected", Protect: "surrogate"},
			{ID: "out", Kind: Data, Name: "derived table"},
			{ID: "report", Kind: Data, Name: "final report"},
		},
		Edges: []Edge{
			{From: "src", To: "proc", Label: "input-to"},
			{From: "proc", To: "out", Label: "generated"},
			{From: "out", To: "report", Label: "input-to"},
		},
		Surrogates: []SurrogateSpec{
			{ForID: "proc", ID: "proc'", Name: "an analytic", InfoScore: 0.4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	en := NewEngine(b, privilege.TwoLevel())
	res, err := en.Lineage(Request{Start: "report", Direction: graph.Backward, Viewer: privilege.Public})
	if err != nil {
		t.Fatal(err)
	}
	// The public viewer sees the full ancestry with the secret analytic
	// replaced by its surrogate.
	if n := res.Account.Graph.NumNodes(); n != 4 {
		t.Errorf("account nodes = %d, want 4", n)
	}
	if _, ok := res.Account.Graph.NodeByID("proc'"); !ok {
		t.Error("surrogate proc' missing from public account")
	}
	if _, ok := res.Account.Graph.NodeByID("proc"); ok {
		t.Error("protected node leaked into public account")
	}
	// A privileged viewer sees the original.
	priv, err := en.Lineage(Request{Start: "report", Direction: graph.Backward, Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := priv.Account.Graph.NodeByID("proc"); !ok {
		t.Error("privileged viewer lost the original node")
	}
}

func conformOPM(t *testing.T, h backendHarness) {
	src, _ := h.open(t)
	seedChain(t, src, "a", "b", "c")
	var buf bytes.Buffer
	if err := ExportOPM(src, &buf); err != nil {
		t.Fatal(err)
	}
	dst, _ := h.open(t)
	if err := ImportOPM(dst, &buf); err != nil {
		t.Fatal(err)
	}
	if dst.NumObjects() != 3 || dst.NumEdges() != 2 {
		t.Errorf("round trip = %d objects %d edges, want 3, 2", dst.NumObjects(), dst.NumEdges())
	}
}

// --- durability battery (durable backends only) ---

func conformReopen(t *testing.T, h backendHarness) {
	b, path := h.open(t)
	seedChain(t, b, "a", "b", "c")
	if err := b.PutSurrogate(SurrogateSpec{ForID: "b", ID: "b'", Name: "anon", InfoScore: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := h.reopen(t, path)
	if b2.NumObjects() != 3 || b2.NumEdges() != 2 {
		t.Errorf("recovered %d objects %d edges, want 3, 2", b2.NumObjects(), b2.NumEdges())
	}
	if got := b2.SurrogatesOf("b"); len(got) != 1 {
		t.Error("surrogate lost on reopen")
	}
	// The backend stays writable after recovery.
	if err := b2.PutObject(Object{ID: "d", Kind: Invocation, Name: "proc"}); err != nil {
		t.Fatal(err)
	}
}

func conformTornTail(t *testing.T, h backendHarness) {
	b, path := h.open(t)
	seedChain(t, b, "a", "b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a half-written record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b2 := h.reopen(t, path)
	if b2.NumObjects() != 2 || b2.NumEdges() != 1 {
		t.Errorf("recovered %d objects %d edges, want 2, 1", b2.NumObjects(), b2.NumEdges())
	}
	// New appends land where the torn tail was removed, and survive
	// another reopen.
	if err := b2.PutObject(Object{ID: "c", Kind: Data, Name: "after-crash"}); err != nil {
		t.Fatal(err)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}
	b3 := h.reopen(t, path)
	if b3.NumObjects() != 3 {
		t.Errorf("objects after re-recovery = %d, want 3", b3.NumObjects())
	}
}

func conformBadCRCTail(t *testing.T, h backendHarness) {
	b, path := h.open(t)
	seedChain(t, b, "a", "b")
	sizeBefore := b.Size()
	if err := b.PutObject(Object{ID: "c", Kind: Data, Name: "victim"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the final record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[sizeBefore+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	b2 := h.reopen(t, path)
	if b2.NumObjects() != 2 {
		t.Errorf("objects = %d, want 2 (corrupt tail dropped)", b2.NumObjects())
	}
	sn, err := b2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sn.Object("c"); ok {
		t.Error("corrupt record resurrected in snapshot")
	}
}

func conformMidLogCorruption(t *testing.T, h backendHarness) {
	b, path := h.open(t)
	seedChain(t, b, "a", "b", "c", "d")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte early in the log (inside the first record).
	data[10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("mid-log corruption silently accepted")
	}
}

package plus

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Batch is a group of records applied with one lock acquisition, one
// buffered write and (with Options.Sync) one fsync — the group-commit path
// for bulk provenance ingestion. Objects are applied before edges and
// surrogates, so intra-batch references work.
type Batch struct {
	Objects    []Object
	Edges      []Edge
	Surrogates []SurrogateSpec
}

// Len reports the total number of records in the batch.
func (b *Batch) Len() int {
	return len(b.Objects) + len(b.Edges) + len(b.Surrogates)
}

// validate checks the whole batch against a backend's current state
// (seen through the two callbacks) plus the batch's own objects. It is
// shared by every Backend implementation; callers hold whatever locks
// make the callbacks stable.
func (b *Batch) validate(stored func(id string) bool, hasEdge func(from, to string) bool) error {
	have := func(id string) bool {
		if stored(id) {
			return true
		}
		for _, o := range b.Objects {
			if o.ID == id {
				return true
			}
		}
		return false
	}
	for _, o := range b.Objects {
		if err := validateObject(o); err != nil {
			return fmt.Errorf("plus: batch: %w", err)
		}
	}
	batchEdges := map[[2]string]bool{}
	for _, e := range b.Edges {
		if e.From == e.To {
			return fmt.Errorf("plus: batch self edge %s", e.From)
		}
		if !have(e.From) || !have(e.To) {
			return fmt.Errorf("plus: batch edge %s->%s references missing object", e.From, e.To)
		}
		key := [2]string{e.From, e.To}
		if batchEdges[key] {
			return fmt.Errorf("plus: batch duplicate edge %s->%s", e.From, e.To)
		}
		batchEdges[key] = true
		if hasEdge(e.From, e.To) {
			return fmt.Errorf("plus: batch edge %s->%s already stored", e.From, e.To)
		}
	}
	for _, sp := range b.Surrogates {
		if err := validateSurrogate(sp); err != nil {
			return fmt.Errorf("plus: batch: %w", err)
		}
		if !have(sp.ForID) {
			return fmt.Errorf("plus: batch surrogate for missing object %s", sp.ForID)
		}
	}
	return nil
}

// Apply validates the whole batch against the store's current state (plus
// the batch's own objects), then appends every record with a single
// buffered write, returning the revision after the batch's last record.
// Validation failures leave the store untouched. A crash mid-write leaves
// a torn tail that replay truncates, so a batch is atomic-on-recovery
// only up to the records that fully made it to disk — the same guarantee
// individual appends give.
func (s *LogBackend) Apply(b Batch) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	err := b.validate(
		func(id string) bool {
			_, ok := s.objects[id]
			return ok
		},
		func(from, to string) bool {
			for _, prev := range s.out[from] {
				if prev.To == to {
					return true
				}
			}
			return false
		},
	)
	if err != nil {
		return 0, err
	}

	// Encode everything into one buffer, then write once.
	var buf []byte
	type applied struct {
		kind byte
		body []byte
	}
	var records []applied
	encode := func(kind byte, v interface{}) error {
		body, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("plus: batch encode: %w", err)
		}
		payload := append([]byte{kind}, body...)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
		records = append(records, applied{kind: kind, body: body})
		return nil
	}
	for _, o := range b.Objects {
		if err := encode(recObject, o); err != nil {
			return 0, err
		}
	}
	for _, e := range b.Edges {
		if err := encode(recEdge, e); err != nil {
			return 0, err
		}
	}
	for _, sp := range b.Surrogates {
		if err := encode(recSurrogate, sp); err != nil {
			return 0, err
		}
	}
	if len(buf) == 0 {
		return s.revision.Load(), nil
	}
	if _, err := s.f.Write(buf); err != nil {
		return 0, fmt.Errorf("plus: batch write: %w", err)
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			return 0, fmt.Errorf("plus: batch sync: %w", err)
		}
	}
	s.size += int64(len(buf))
	for _, r := range records {
		if err := s.apply(r.kind, r.body); err != nil {
			// Unreachable: the same bytes were just validated and encoded.
			return 0, err
		}
	}
	s.broadcast()
	return s.revision.Load(), nil
}

package plus

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Batch is a group of records applied with one lock acquisition, one
// buffered write and (with Options.Sync) one fsync — the group-commit path
// for bulk provenance ingestion. Objects are applied before edges and
// surrogates, so intra-batch references work.
type Batch struct {
	Objects    []Object
	Edges      []Edge
	Surrogates []SurrogateSpec
}

// Len reports the total number of records in the batch.
func (b *Batch) Len() int {
	return len(b.Objects) + len(b.Edges) + len(b.Surrogates)
}

// Apply validates the whole batch against the store's current state (plus
// the batch's own objects), then appends every record with a single
// buffered write. Validation failures leave the store untouched. A crash
// mid-write leaves a torn tail that replay truncates, so a batch is
// atomic-on-recovery only up to the records that fully made it to disk —
// the same guarantee individual appends give.
func (s *Store) Apply(b Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}

	// Validate against a view that includes the batch's own objects.
	have := func(id string) bool {
		if _, ok := s.objects[id]; ok {
			return true
		}
		for _, o := range b.Objects {
			if o.ID == id {
				return true
			}
		}
		return false
	}
	for _, o := range b.Objects {
		if o.ID == "" {
			return fmt.Errorf("plus: batch object with empty id")
		}
		if o.Kind != Data && o.Kind != Invocation {
			return fmt.Errorf("plus: batch object %s has unknown kind %q", o.ID, o.Kind)
		}
		if o.Protect != "" && o.Protect != string(ModeHide) && o.Protect != string(ModeSurrogate) {
			return fmt.Errorf("plus: batch object %s has unknown protect mode %q", o.ID, o.Protect)
		}
	}
	batchEdges := map[[2]string]bool{}
	for _, e := range b.Edges {
		if e.From == e.To {
			return fmt.Errorf("plus: batch self edge %s", e.From)
		}
		if !have(e.From) || !have(e.To) {
			return fmt.Errorf("plus: batch edge %s->%s references missing object", e.From, e.To)
		}
		key := [2]string{e.From, e.To}
		if batchEdges[key] {
			return fmt.Errorf("plus: batch duplicate edge %s->%s", e.From, e.To)
		}
		batchEdges[key] = true
		for _, prev := range s.out[e.From] {
			if prev.To == e.To {
				return fmt.Errorf("plus: batch edge %s->%s already stored", e.From, e.To)
			}
		}
	}
	for _, sp := range b.Surrogates {
		if sp.ID == "" || sp.ID == sp.ForID {
			return fmt.Errorf("plus: batch surrogate for %s has bad id %q", sp.ForID, sp.ID)
		}
		if !have(sp.ForID) {
			return fmt.Errorf("plus: batch surrogate for missing object %s", sp.ForID)
		}
		if sp.InfoScore < 0 || sp.InfoScore > 1 {
			return fmt.Errorf("plus: batch surrogate %s infoScore %v out of [0,1]", sp.ID, sp.InfoScore)
		}
	}

	// Encode everything into one buffer, then write once.
	var buf []byte
	type applied struct {
		kind byte
		body []byte
	}
	var records []applied
	encode := func(kind byte, v interface{}) error {
		body, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("plus: batch encode: %w", err)
		}
		payload := append([]byte{kind}, body...)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
		records = append(records, applied{kind: kind, body: body})
		return nil
	}
	for _, o := range b.Objects {
		if err := encode(recObject, o); err != nil {
			return err
		}
	}
	for _, e := range b.Edges {
		if err := encode(recEdge, e); err != nil {
			return err
		}
	}
	for _, sp := range b.Surrogates {
		if err := encode(recSurrogate, sp); err != nil {
			return err
		}
	}
	if len(buf) == 0 {
		return nil
	}
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("plus: batch write: %w", err)
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("plus: batch sync: %w", err)
		}
	}
	s.size += int64(len(buf))
	for _, r := range records {
		if err := s.apply(r.kind, r.body); err != nil {
			// Unreachable: the same bytes were just validated and encoded.
			return err
		}
	}
	return nil
}

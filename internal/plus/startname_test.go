package plus

import (
	"errors"
	"fmt"
	"net/url"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/privilege"
)

// startNameFixture builds two disjoint chains whose sinks share the name
// "report" (a1 -> a2 -> a3, b1 -> b2 -> b3) plus an unrelated object.
func startNameFixture(t *testing.T) *MemBackend {
	t.Helper()
	b := NewMemBackend(4)
	t.Cleanup(func() { b.Close() })
	for _, chain := range []string{"a", "b"} {
		for i := 1; i <= 3; i++ {
			o := Object{ID: fmt.Sprintf("%s%d", chain, i), Kind: Data}
			if i == 3 {
				o.Name = "report"
			}
			if err := b.PutObject(o); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i < 3; i++ {
			e := Edge{
				From:  fmt.Sprintf("%s%d", chain, i),
				To:    fmt.Sprintf("%s%d", chain, i+1),
				Label: "input-to",
			}
			if err := b.PutEdge(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.PutObject(Object{ID: "c1", Kind: Data, Name: "other"}); err != nil {
		t.Fatal(err)
	}
	return b
}

func lineageNodeIDs(t *testing.T, res *Result) []string {
	t.Helper()
	var ids []string
	for _, id := range res.Spec.Graph.Nodes() {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return ids
}

// TestLineageStartName checks the multi-seed traversal: a name-seeded
// request must return the union of the per-seed closures, deterministic
// across runs, and hit ErrNotFound when the name matches nothing.
func TestLineageStartName(t *testing.T) {
	b := startNameFixture(t)
	en := NewEngine(b, privilege.TwoLevel())

	multi, err := en.Lineage(Request{StartName: "report", Direction: graph.Backward})
	if err != nil {
		t.Fatal(err)
	}
	got := lineageNodeIDs(t, multi)
	want := []string{"a1", "a2", "a3", "b1", "b2", "b3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("StartName closure = %v, want %v", got, want)
	}

	// The multi-seed answer must equal the union of single-seed answers.
	union := map[string]bool{}
	for _, start := range []string{"a3", "b3"} {
		res, err := en.Lineage(Request{Start: start, Direction: graph.Backward})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range lineageNodeIDs(t, res) {
			union[id] = true
		}
	}
	if len(union) != len(got) {
		t.Fatalf("union of single-seed closures has %d nodes, multi-seed %d", len(union), len(got))
	}
	for _, id := range got {
		if !union[id] {
			t.Fatalf("multi-seed node %s missing from single-seed union", id)
		}
	}

	// Determinism: the fetched closure must not depend on posting order.
	again, err := en.Lineage(Request{StartName: "report", Direction: graph.Backward})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(multi.Spec.Graph.Nodes(), again.Spec.Graph.Nodes()) {
		t.Fatal("name-seeded lineage is not deterministic")
	}

	// An explicit Start wins over StartName.
	single, err := en.Lineage(Request{Start: "a3", StartName: "report", Direction: graph.Backward})
	if err != nil {
		t.Fatal(err)
	}
	if got := lineageNodeIDs(t, single); !reflect.DeepEqual(got, []string{"a1", "a2", "a3"}) {
		t.Fatalf("Start+StartName closure = %v, want the Start chain only", got)
	}

	// No object carries the name: the request must fail, not answer empty.
	if _, err := en.Lineage(Request{StartName: "nope"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown StartName error = %v, want ErrNotFound", err)
	}
	if _, err := en.Lineage(Request{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty request error = %v, want ErrNotFound", err)
	}
}

// TestLineageStartNameCacheKey ensures name-seeded answers get their own
// cache entries instead of colliding with id-seeded ones.
func TestLineageStartNameCacheKey(t *testing.T) {
	b := startNameFixture(t)
	ce := NewCachedEngine(NewEngine(b, privilege.TwoLevel()))

	byID, err := ce.Lineage(Request{Start: "a3", Direction: graph.Backward})
	if err != nil {
		t.Fatal(err)
	}
	byName, err := ce.Lineage(Request{StartName: "report", Direction: graph.Backward})
	if err != nil {
		t.Fatal(err)
	}
	if nid, nname := len(lineageNodeIDs(t, byID)), len(lineageNodeIDs(t, byName)); nid == nname {
		t.Fatalf("cache served the same closure (%d nodes) for distinct seed specs", nid)
	}
	// Both answers must now be cache hits.
	for _, req := range []Request{
		{Start: "a3", Direction: graph.Backward},
		{StartName: "report", Direction: graph.Backward},
	} {
		if _, err := ce.Lineage(req); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _, _ := ce.CacheStats(); hits != 2 {
		t.Fatalf("cache hits = %d, want 2", hits)
	}
}

// TestParseLineageStartName covers the HTTP parameter plumbing.
func TestParseLineageStartName(t *testing.T) {
	req, err := parseLineageParams(url.Values{"startName": {"report"}})
	if err != nil {
		t.Fatal(err)
	}
	if req.Start != "" || req.StartName != "report" {
		t.Fatalf("parsed request = %+v, want StartName=report", req)
	}
	if _, err := parseLineageParams(url.Values{}); err == nil {
		t.Fatal("missing start/startName must be rejected")
	}
	if _, err := parseLineageParams(url.Values{"start": {"a3"}, "startName": {"report"}}); err == nil {
		t.Fatal("start and startName together must be rejected")
	}
}

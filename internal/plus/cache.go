package plus

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/privilege"
)

// CachedEngine wraps an Engine with per-query memoisation of protected
// lineage answers, invalidated by the change feed: a write evicts only the
// cached answers whose lineage closure the delta touches.
//
// This realises the §7 advantage the paper claims over view-based
// protection ("view recomputation when object sensitivity changes" versus
// having "the appropriate views constructed automatically"): accounts are
// derived on demand and cached, and a store mutation — including new
// surrogates or re-stored objects with different sensitivity — invalidates
// exactly the accounts whose region it touches. A closure can only grow
// through objects already inside it, so an answer whose closure is
// disjoint from the delta's touched set is still exact and stays cached.
// Only when the backend no longer retains the revision window does the
// cache fall back to a full wipe.
type CachedEngine struct {
	*Engine

	mu      sync.Mutex
	rev     uint64
	entries map[cacheKey]*cacheEntry
	stats   LineageCacheStats
}

// LineageCacheStats reports the lineage cache counters.
type LineageCacheStats struct {
	// Entries is the live cached answer count.
	Entries int `json:"entries"`
	// Hits / Misses count lineage lookups.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// DeltaEvictions counts entries evicted because a change-feed delta
	// touched their closure; Wipes counts full invalidations (change feed
	// too far behind or unavailable).
	DeltaEvictions uint64 `json:"deltaEvictions"`
	Wipes          uint64 `json:"wipes"`
}

type cacheEntry struct {
	res *Result
	// closure holds the original object ids the answer was derived from;
	// a delta invalidates the entry iff it touches one of them.
	closure map[string]bool
}

type cacheKey struct {
	start     string
	startName string
	direction graph.Direction
	depth     int
	viewer    privilege.Predicate
	mode      Mode
	label     string
	kind      ObjectKind
}

// NewCachedEngine wraps the engine with a delta-scoped invalidating cache.
func NewCachedEngine(engine *Engine) *CachedEngine {
	return &CachedEngine{Engine: engine, entries: map[cacheKey]*cacheEntry{}}
}

// refreshLocked brings the cache up to revision rev, evicting the entries
// whose closure the intervening changes touch. Callers hold ce.mu. A rev
// below the cache generation (a caller that read the revision before a
// concurrent refresh) never regresses it: the newer refresh already
// processed those changes.
func (ce *CachedEngine) refreshLocked(rev uint64) {
	if rev <= ce.rev {
		return
	}
	changes, err := ce.store.ChangesSince(ce.rev)
	if err != nil {
		// Too far behind the retained feed (or the backend is closing):
		// scope is unknown, wipe everything.
		ce.entries = map[cacheKey]*cacheEntry{}
		ce.stats.Wipes++
		ce.rev = rev
		return
	}
	touched := (&Delta{Changes: changes}).Touched()
	for k, ent := range ce.entries {
		if intersects(ent.closure, touched) {
			delete(ce.entries, k)
			ce.stats.DeltaEvictions++
		}
	}
	ce.rev = rev
}

// intersects reports whether the two id sets share a member.
func intersects(a, b map[string]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for id := range a {
		if b[id] {
			return true
		}
	}
	return false
}

// Lineage answers like Engine.Lineage but serves repeated queries from the
// cache while their lineage region is unchanged. Cached results share the
// account — callers must treat answers as read-only (which they are over
// HTTP, where each answer is serialised).
func (ce *CachedEngine) Lineage(req Request) (*Result, error) {
	return ce.LineageContext(context.Background(), req)
}

// LineageContext is Lineage with cancellation and deadline propagation
// into the underlying engine; cache hits ignore the context (they cost
// one map lookup).
func (ce *CachedEngine) LineageContext(ctx context.Context, req Request) (*Result, error) {
	// A closed backend must not keep answering out of the cache.
	if err := ce.store.Ping(); err != nil {
		return nil, err
	}
	if req.Viewer == "" {
		req.Viewer = privilege.Public
	}
	if req.Mode == "" {
		req.Mode = ModeSurrogate
	}
	key := cacheKey{
		start:     req.Start,
		startName: req.StartName,
		direction: req.Direction,
		depth:     req.Depth,
		viewer:    req.Viewer,
		mode:      req.Mode,
		label:     req.LabelFilter,
		kind:      req.KindFilter,
	}
	rev := ce.store.Revision()

	ce.mu.Lock()
	ce.refreshLocked(rev)
	if ent, ok := ce.entries[key]; ok {
		ce.stats.Hits++
		ce.mu.Unlock()
		return ent.res, nil
	}
	ce.stats.Misses++
	ce.mu.Unlock()

	res, err := ce.Engine.LineageContext(ctx, req)
	if err != nil {
		return nil, err
	}

	closure := map[string]bool{}
	for _, id := range res.Spec.Graph.Nodes() {
		closure[string(id)] = true
	}
	ce.mu.Lock()
	// Only cache when the store has not moved under the computation: the
	// answer's snapshot sits between rev (observed before computing) and
	// the current revision, so equality pins it to the cache generation.
	if ce.rev == rev && ce.store.Revision() == rev {
		ce.entries[key] = &cacheEntry{res: res, closure: closure}
	}
	ce.mu.Unlock()
	return res, nil
}

// CacheStats reports hit/miss counters and the live entry count.
func (ce *CachedEngine) CacheStats() (hits, misses uint64, entries int) {
	st := ce.Stats()
	return st.Hits, st.Misses, st.Entries
}

// Stats reports the full lineage-cache counters, including delta-scoped
// eviction activity.
func (ce *CachedEngine) Stats() LineageCacheStats {
	ce.mu.Lock()
	defer ce.mu.Unlock()
	st := ce.stats
	st.Entries = len(ce.entries)
	return st
}

// String summarises the cache state for logs.
func (ce *CachedEngine) String() string {
	st := ce.Stats()
	return fmt.Sprintf("plus cache: %d entries, %d hits, %d misses, %d delta-evicted, %d wiped",
		st.Entries, st.Hits, st.Misses, st.DeltaEvictions, st.Wipes)
}

package plus

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/privilege"
)

// CachedEngine wraps an Engine with per-query memoisation of protected
// lineage answers, invalidated automatically when the store changes.
//
// This realises the §7 advantage the paper claims over view-based
// protection ("view recomputation when object sensitivity changes" versus
// having "the appropriate views constructed automatically"): accounts are
// derived on demand and cached, and any store mutation — including new
// surrogates or re-stored objects with different sensitivity — simply
// bumps the store revision and lets stale accounts fall out.
type CachedEngine struct {
	*Engine

	mu      sync.Mutex
	rev     uint64
	entries map[cacheKey]*Result
	hits    uint64
	misses  uint64
}

type cacheKey struct {
	start     string
	direction graph.Direction
	depth     int
	viewer    privilege.Predicate
	mode      Mode
	label     string
	kind      ObjectKind
}

// NewCachedEngine wraps the engine with an invalidating cache.
func NewCachedEngine(engine *Engine) *CachedEngine {
	return &CachedEngine{Engine: engine, entries: map[cacheKey]*Result{}}
}

// Lineage answers like Engine.Lineage but serves repeated queries from the
// cache while the store is unchanged. Cached results share the account —
// callers must treat answers as read-only (which they are over HTTP, where
// each answer is serialised).
func (ce *CachedEngine) Lineage(req Request) (*Result, error) {
	// A closed backend must not keep answering out of the cache.
	if err := ce.store.Ping(); err != nil {
		return nil, err
	}
	if req.Viewer == "" {
		req.Viewer = privilege.Public
	}
	if req.Mode == "" {
		req.Mode = ModeSurrogate
	}
	key := cacheKey{
		start:     req.Start,
		direction: req.Direction,
		depth:     req.Depth,
		viewer:    req.Viewer,
		mode:      req.Mode,
		label:     req.LabelFilter,
		kind:      req.KindFilter,
	}
	rev := ce.store.Revision()

	ce.mu.Lock()
	if rev != ce.rev {
		// The store changed: every cached account may be stale.
		ce.entries = map[cacheKey]*Result{}
		ce.rev = rev
	}
	if res, ok := ce.entries[key]; ok {
		ce.hits++
		ce.mu.Unlock()
		return res, nil
	}
	ce.misses++
	ce.mu.Unlock()

	res, err := ce.Engine.Lineage(req)
	if err != nil {
		return nil, err
	}

	ce.mu.Lock()
	// Only cache when the store has not moved under the computation.
	if ce.store.Revision() == ce.rev {
		ce.entries[key] = res
	}
	ce.mu.Unlock()
	return res, nil
}

// CacheStats reports hit/miss counters and the live entry count.
func (ce *CachedEngine) CacheStats() (hits, misses uint64, entries int) {
	ce.mu.Lock()
	defer ce.mu.Unlock()
	return ce.hits, ce.misses, len(ce.entries)
}

// String summarises the cache state for logs.
func (ce *CachedEngine) String() string {
	h, m, n := ce.CacheStats()
	return fmt.Sprintf("plus cache: %d entries, %d hits, %d misses", n, h, m)
}
